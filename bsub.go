// Package bsub is a Go implementation of B-SUB, the Bloom-filter-based
// content-based publish-subscribe system for human networks (HUNETs) of
// Zhao and Wu, "B-SUB: A Practical Bloom-Filter-Based Publish-Subscribe
// System for Human Networks" (ICDCS 2010), together with the full
// simulation substrate its evaluation runs on.
//
// The package re-exports the public surface of the internal modules:
//
//   - TCBF — the Temporal Counting Bloom Filter, the paper's core data
//     structure: counting Bloom filter with time-decaying counters,
//     additive and maximum merges, and preferential queries.
//   - Protocol — the B-SUB routing protocol (broker election, interest
//     propagation, preferential forwarding) plus the PUSH and PULL
//     baselines.
//   - Simulator — a deterministic, bandwidth-aware contact-trace replay
//     engine with the paper's evaluation metrics.
//   - Traces — contact-trace modelling, text I/O, statistics, and
//     synthetic generators calibrated to the Haggle (Infocom'06) and MIT
//     Reality datasets.
//   - Analysis — the closed-form model of Eq. 1–10 (FPR, fill ratio,
//     decaying factor, joint FPR, memory, optimal filter allocation).
//
// Quick start: build a fixture, run the three protocols, print a report.
//
//	fixture, err := bsub.NewSmallFixture(1)
//	if err != nil { ... }
//	report, err := bsub.Simulate(fixture, bsub.NewBSub(bsub.DefaultProtocolConfig(0.1)), 4*time.Hour)
//	fmt.Println(report)
//
// See the examples/ directory for complete programs and EXPERIMENTS.md for
// the paper-reproduction results.
package bsub

import (
	"time"

	"bsub/internal/analysis"
	"bsub/internal/bloom"
	"bsub/internal/core"
	"bsub/internal/engine"
	"bsub/internal/experiments"
	"bsub/internal/livenode"
	"bsub/internal/mesh"
	"bsub/internal/metrics"
	"bsub/internal/protocol"
	"bsub/internal/sim"
	"bsub/internal/tcbf"
	"bsub/internal/trace"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

// --- Filters ---------------------------------------------------------------

type (
	// BloomFilter is the classic Bloom filter of Section III.
	BloomFilter = bloom.Filter
	// CountingBloomFilter is the Counting Bloom filter of Section III.
	CountingBloomFilter = bloom.CountingFilter
	// TCBF is the Temporal Counting Bloom Filter of Section IV.
	TCBF = tcbf.Filter
	// TCBFConfig parameterizes a TCBF.
	TCBFConfig = tcbf.Config
	// TCBFPool is the dynamic multi-filter allocation of Section VI-D.
	TCBFPool = tcbf.Pool
	// PartitionedTCBF hash-routes keys across h sub-filters (Section VI-D
	// made protocol-usable); ProtocolConfig.RelayPartitions applies it to
	// B-SUB's relay filters.
	PartitionedTCBF = tcbf.Partitioned
	// CounterMode selects the wire encoding of a TCBF's counters.
	CounterMode = tcbf.CounterMode
)

// Counter wire modes (Section VI-C optimizations).
const (
	CountersNone    = tcbf.CountersNone
	CountersUniform = tcbf.CountersUniform
	CountersFull    = tcbf.CountersFull
)

// NewBloomFilter returns an empty classic Bloom filter.
func NewBloomFilter(m, k int) (*BloomFilter, error) { return bloom.NewFilter(m, k) }

// NewCountingBloomFilter returns an empty Counting Bloom filter.
func NewCountingBloomFilter(m, k int) (*CountingBloomFilter, error) { return bloom.NewCounting(m, k) }

// NewTCBF returns an empty Temporal Counting Bloom Filter with its clock at
// now.
func NewTCBF(cfg TCBFConfig, now time.Duration) (*TCBF, error) { return tcbf.New(cfg, now) }

// DecodeTCBF reconstructs a TCBF from its wire form.
func DecodeTCBF(data []byte, cfg TCBFConfig, now time.Duration) (*TCBF, error) {
	return tcbf.Decode(data, cfg, now)
}

// NewTCBFPool returns a dynamic TCBF pool that allocates a fresh filter
// when the fill ratio exceeds threshold.
func NewTCBFPool(cfg TCBFConfig, threshold float64, now time.Duration) (*TCBFPool, error) {
	return tcbf.NewPool(cfg, threshold, now)
}

// NewPartitionedTCBF returns an empty partitioned TCBF with h partitions.
func NewPartitionedTCBF(cfg TCBFConfig, h int, now time.Duration) (*PartitionedTCBF, error) {
	return tcbf.NewPartitioned(cfg, h, now)
}

// Preference runs the preferential query of Section IV-A.
func Preference(key string, peer, self *TCBF, now time.Duration) (float64, error) {
	return tcbf.Preference(key, peer, self, now)
}

// --- Protocols ---------------------------------------------------------------

type (
	// Protocol is a routing scheme runnable by the simulator.
	Protocol = sim.Protocol
	// BSubProtocol is the B-SUB protocol of Section V.
	BSubProtocol = core.BSub
	// ProtocolConfig holds B-SUB's tunables.
	ProtocolConfig = core.Config
)

// Decaying-factor policies (Sections VI-B and VII-B).
const (
	// DFFixed uses ProtocolConfig.DecayPerMinute unchanged.
	DFFixed = core.DFFixed
	// DFOnlineEq5 lets each broker recompute its DF from its own contact
	// history via Eq. 5.
	DFOnlineEq5 = core.DFOnlineEq5
	// DFFeedback steers the DF toward ProtocolConfig.TargetFPR.
	DFFeedback = core.DFFeedback
)

// NewBSub returns a B-SUB protocol instance.
func NewBSub(cfg ProtocolConfig) *BSubProtocol { return core.New(cfg) }

// --- Engine ------------------------------------------------------------------
//
// The transport-agnostic protocol core shared by the simulator driver and
// the live TCP node. Downstream users can drive it over their own
// transport: open an EngineSession per contact, move each step's byte
// encoding to the peer however the medium allows, and settle the claims.

type (
	// Engine owns one node's complete B-SUB protocol state: interests,
	// relay filter, broker role, and message stores with copy accounting.
	Engine = engine.Node
	// EngineSession is one side of a contact: the typed protocol steps in
	// contact order, producing and consuming wire encodings.
	EngineSession = engine.Session
	// EngineClaim is a message copy pending transmission: Commit spends
	// it, Abort refunds it.
	EngineClaim = engine.Claim
	// EngineBudget meters the bytes a contact may move.
	EngineBudget = engine.Budget
)

// NewEngine returns a protocol engine for one node.
func NewEngine(id int, cfg ProtocolConfig, ttl time.Duration) (*Engine, error) {
	return engine.NewNode(id, cfg, ttl)
}

// DefaultProtocolConfig returns the paper's evaluation parameters with the
// given decaying factor (per minute).
func DefaultProtocolConfig(decayPerMinute float64) ProtocolConfig {
	return core.DefaultConfig(decayPerMinute)
}

// NewPush returns the epidemic-flooding baseline.
func NewPush() Protocol { return protocol.NewPush() }

// NewPull returns the one-hop pulling baseline.
func NewPull() Protocol { return protocol.NewPull() }

// --- Traces -------------------------------------------------------------------

type (
	// Trace is a contact trace.
	Trace = trace.Trace
	// Contact is one pairwise meeting.
	Contact = trace.Contact
	// NodeID identifies a node in a trace.
	NodeID = trace.NodeID
	// TraceStats summarizes a trace (Table I).
	TraceStats = trace.Stats
	// TraceGenConfig parameterizes the synthetic generator.
	TraceGenConfig = tracegen.Config
)

// NewTrace validates and sorts contacts into a Trace.
func NewTrace(name string, nodes int, contacts []Contact) (*Trace, error) {
	return trace.New(name, nodes, contacts)
}

// GenerateTrace synthesizes a contact trace.
func GenerateTrace(cfg TraceGenConfig) (*Trace, error) { return tracegen.Generate(cfg) }

// HaggleConfig returns the generator preset for the Haggle (Infocom'06)
// stand-in.
func HaggleConfig(seed int64) TraceGenConfig { return tracegen.HaggleInfocom06(seed) }

// MITRealityConfig returns the generator preset for the MIT Reality
// stand-in.
func MITRealityConfig(seed int64) TraceGenConfig { return tracegen.MITRealityFull(seed) }

// SmallTraceConfig returns the compact 20-node preset.
func SmallTraceConfig(seed int64) TraceGenConfig { return tracegen.Small(seed) }

// --- Workload -------------------------------------------------------------------

type (
	// Key identifies message content.
	Key = workload.Key
	// Message is a content-addressed message.
	Message = workload.Message
	// KeySet is a weighted key population.
	KeySet = workload.KeySet
)

// NewTrendKeySet returns the paper's 38-key Twitter-Trend workload.
func NewTrendKeySet() *KeySet { return workload.NewTrendKeySet() }

// --- Simulation -----------------------------------------------------------------

type (
	// SimConfig assembles one simulation run.
	SimConfig = sim.Config
	// Failure is a node outage window for failure-injection runs.
	Failure = sim.Failure
	// Report is a metrics summary.
	Report = metrics.Report
	// Fixture bundles a trace with its workload.
	Fixture = experiments.Fixture
)

// Run replays cfg against proto.
func Run(cfg SimConfig, proto Protocol) (Report, error) { return sim.Run(cfg, proto) }

// NewHaggleFixture builds the Haggle evaluation fixture.
func NewHaggleFixture(seed int64) (*Fixture, error) { return experiments.NewHaggleFixture(seed) }

// NewMITFixture builds the MIT Reality evaluation fixture (busiest 3-day
// window).
func NewMITFixture(seed int64) (*Fixture, error) { return experiments.NewMITFixture(seed) }

// NewSmallFixture builds the compact test fixture.
func NewSmallFixture(seed int64) (*Fixture, error) { return experiments.NewSmallFixture(seed) }

// Simulate runs proto over a fixture with the given TTL.
func Simulate(f *Fixture, proto Protocol, ttl time.Duration) (Report, error) {
	return sim.Run(sim.Config{
		Trace:     f.Trace,
		Interests: f.Interests,
		Messages:  f.Messages,
		TTL:       ttl,
		Seed:      f.Seed,
	}, proto)
}

// --- Live prototype ---------------------------------------------------------------

type (
	// LiveNode is a wire-level B-SUB node running over real TCP — the
	// prototype HUNET system the paper names as future work. It runs
	// contact sessions with distinct peers concurrently, bounded by
	// LiveNodeConfig.MaxSessions.
	LiveNode = livenode.Node
	// LiveNodeConfig parameterizes a LiveNode.
	LiveNodeConfig = livenode.Config
	// LiveDelivery is a message that reached a LiveNode's subscriptions.
	LiveDelivery = livenode.Delivery
	// LiveSessionStats records one contact attempt of a LiveNode: peer,
	// initiator, deepest phase, frames/bytes, duration, and outcome.
	LiveSessionStats = livenode.SessionStats
	// LiveCounters is a snapshot of a LiveNode's session activity, from
	// LiveNode.Stats.
	LiveCounters = livenode.Counters
)

// Sentinel errors of the live node, for errors.Is matching by callers
// implementing their own retry policies.
var (
	// ErrLiveBusy: the local node is at MaxSessions capacity.
	ErrLiveBusy = livenode.ErrBusy
	// ErrLivePeerBusy: the remote node answered BUSY.
	ErrLivePeerBusy = livenode.ErrPeerBusy
	// ErrLiveCorruptFrame: a frame failed its CRC check — link noise or
	// a torn write; the session is aborted and unacknowledged copies are
	// refunded to the sender.
	ErrLiveCorruptFrame = livenode.ErrCorruptFrame
	// ErrLiveVersionMismatch: the peer's HELLO carries a different wire
	// protocol version.
	ErrLiveVersionMismatch = livenode.ErrVersionMismatch
)

// ListenNode starts a live B-SUB node serving contact sessions on addr.
func ListenNode(addr string, cfg LiveNodeConfig) (*LiveNode, error) {
	return livenode.Listen(addr, cfg)
}

// --- Mesh daemon -------------------------------------------------------------------

type (
	// Mesh is a long-running HUNET daemon wrapped around a LiveNode:
	// gossip-fed membership with alive/suspect/dead transitions, one
	// backpressured outbound worker per live peer, and flood/relay
	// dissemination of stored messages. It keeps running through peer
	// churn; see Mesh.Close for shutdown.
	Mesh = mesh.Mesh
	// MeshConfig holds the mesh daemon's knobs (gossip cadence and
	// fanout, contact cadence, queue depth, reconnect backoff, and the
	// suspect/dead/forget timeouts).
	MeshConfig = mesh.Config
	// MeshCounters is a snapshot of a mesh daemon's lifetime activity,
	// from Mesh.Stats.
	MeshCounters = mesh.Counters
	// MeshPeer is a point-in-time snapshot of one membership entry.
	MeshPeer = mesh.Peer
	// MeshPeerState is a membership entry's health: alive, suspect, or
	// dead.
	MeshPeerState = mesh.PeerState
	// MeshPeerEvent reports one membership transition through
	// MeshConfig.OnPeerChange.
	MeshPeerEvent = mesh.PeerEvent
)

// Membership states of a mesh peer.
const (
	MeshStateAlive   = mesh.StateAlive
	MeshStateSuspect = mesh.StateSuspect
	MeshStateDead    = mesh.StateDead
)

// StartMesh listens a live node on addr and runs the mesh daemon around
// it: periodic gossip keeps the membership table fresh, per-peer workers
// schedule contacts, and newly stored messages are flooded to live
// brokers.
func StartMesh(addr string, nodeCfg LiveNodeConfig, cfg MeshConfig) (*Mesh, error) {
	return mesh.Start(addr, nodeCfg, cfg)
}

// --- Analysis --------------------------------------------------------------------

// FPR returns the Eq. 1 false-positive rate of an (m, k) Bloom filter
// holding n keys.
func FPR(m, k, n int) float64 { return analysis.FPR(m, k, n) }

// DecayFactor derives the Eq. 5 decaying factor.
func DecayFactor(initial float64, nKeys, m, k int, tMinutes, delta float64) (float64, error) {
	return analysis.DecayFactor(initial, nKeys, m, k, tMinutes, delta)
}

// OptimalAllocation solves the Eq. 9–10 filter-allocation problem.
func OptimalAllocation(m, k, n int, maxBits float64) (analysis.Allocation, error) {
	return analysis.OptimalAllocation(m, k, n, maxBits)
}

// GeometryFor recommends the smallest (m, k) whose Eq. 1 FPR at n keys
// stays within targetFPR — the design-time sizing helper.
func GeometryFor(n int, targetFPR float64) (analysis.Geometry, error) {
	return analysis.GeometryFor(n, targetFPR)
}
