package bsub_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example program end to end so the
// documentation cannot rot. Each must exit zero and print its expected
// marker. Skipped in -short mode (each run takes a few seconds).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full programs")
	}
	tests := []struct {
		dir    string
		args   []string
		marker string
	}{
		{dir: "./examples/quickstart", marker: "decayed away"},
		{dir: "./examples/trendfeed", args: []string{"-small"}, marker: "Fig. 7 story"},
		{dir: "./examples/tuning", marker: "joint FPR"},
		{dir: "./examples/citybus", marker: "bridge lines"},
		{dir: "./examples/livemesh", marker: "real TCP connection"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(strings.TrimPrefix(tt.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", tt.dir}, tt.args...)
			cmd := exec.Command("go", args...)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				defer close(done)
				out, err = cmd.CombinedOutput()
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				<-done
				t.Fatalf("%s timed out", tt.dir)
			}
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tt.dir, err, out)
			}
			if !strings.Contains(string(out), tt.marker) {
				t.Errorf("%s output missing marker %q:\n%s", tt.dir, tt.marker, out)
			}
		})
	}
}
