package bsub_test

import (
	"sync/atomic"
	"testing"
	"time"

	"bsub"
)

// TestFacadeSurface exercises every wrapper the root package re-exports,
// so the public API cannot silently drift from the internals.
func TestFacadeSurface(t *testing.T) {
	// Filters.
	bf, err := bsub.NewBloomFilter(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	bf.Insert("k")
	if !bf.Contains("k") {
		t.Error("bloom filter lost key")
	}
	cbf, err := bsub.NewCountingBloomFilter(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	cbf.Insert("k")
	if err := cbf.Delete("k"); err != nil {
		t.Errorf("counting delete: %v", err)
	}

	cfg := bsub.TCBFConfig{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	tf, err := bsub.NewTCBF(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.Insert("k", 0); err != nil {
		t.Fatal(err)
	}
	data, err := tf.Encode(bsub.CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	back, err := bsub.DecodeTCBF(data, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := back.Contains("k", 0); err != nil || !ok {
		t.Error("decode round trip lost key")
	}
	if _, err := bsub.Preference("k", tf, back, 0); err != nil {
		t.Errorf("preference: %v", err)
	}
	pool, err := bsub.NewTCBFPool(cfg, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Insert("k", 0); err != nil {
		t.Fatal(err)
	}

	// Traces.
	tr, err := bsub.NewTrace("t", 2, []bsub.Contact{
		{A: 0, B: 1, Start: 0, End: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Nodes != 2 {
		t.Error("trace stats broken")
	}
	gen, err := bsub.GenerateTrace(bsub.SmallTraceConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if gen.Nodes != 20 {
		t.Error("small preset changed")
	}
	if bsub.HaggleConfig(1).Nodes != 79 || bsub.MITRealityConfig(1).Nodes != 97 {
		t.Error("trace presets changed")
	}

	// Workload.
	if bsub.NewTrendKeySet().Len() != 38 {
		t.Error("trend key set changed")
	}

	// Protocols + simulation.
	fixture, err := bsub.NewSmallFixture(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []bsub.Protocol{
		bsub.NewPush(), bsub.NewPull(), bsub.NewBSub(bsub.DefaultProtocolConfig(0.1)),
	} {
		rep, err := bsub.Simulate(fixture, proto, time.Hour)
		if err != nil {
			t.Fatalf("%s: %v", proto.Name(), err)
		}
		if rep.Created == 0 {
			t.Errorf("%s: no messages created", proto.Name())
		}
	}
	// Run with explicit config + failure injection.
	rep, err := bsub.Run(bsub.SimConfig{
		Trace:     fixture.Trace,
		Interests: fixture.Interests,
		Messages:  fixture.Messages,
		TTL:       time.Hour,
		Seed:      1,
		Failures:  []bsub.Failure{{Node: 0, From: 0, Until: time.Hour}},
	}, bsub.NewPull())
	if err != nil {
		t.Fatal(err)
	}
	_ = rep

	// Adaptive DF modes compile and run.
	adaptive := bsub.DefaultProtocolConfig(0)
	adaptive.DFMode = bsub.DFOnlineEq5
	if _, err := bsub.Simulate(fixture, bsub.NewBSub(adaptive), time.Hour); err != nil {
		t.Fatalf("online-Eq5 mode: %v", err)
	}

	// Analysis.
	if got := bsub.FPR(256, 4, 0); got != 0 {
		t.Error("FPR(empty) != 0")
	}
	if _, err := bsub.DecayFactor(10, 20, 256, 4, 600, 0); err != nil {
		t.Errorf("decay factor: %v", err)
	}
	if _, err := bsub.OptimalAllocation(256, 4, 38, 1e6); err != nil {
		t.Errorf("allocation: %v", err)
	}

	// Fixtures' derived config.
	if df := fixture.BSubConfig(time.Hour).DecayPerMinute; df <= 0 {
		t.Errorf("fixture DF = %g", df)
	}
}

// TestFacadeLiveNode runs a two-node live mesh through the facade.
func TestFacadeLiveNode(t *testing.T) {
	var clockNS atomic.Int64
	clockNS.Store(int64(time.Hour))
	clock := func() time.Duration { return time.Duration(clockNS.Load()) }

	var delivered atomic.Int32
	consumer, err := bsub.ListenNode("127.0.0.1:0", bsub.LiveNodeConfig{
		ID:       2,
		Protocol: bsub.DefaultProtocolConfig(0.01),
		TTL:      time.Hour,
		Clock:    clock,
		OnDeliver: func(d bsub.LiveDelivery) {
			if string(d.Payload) == "hi" {
				delivered.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	consumer.Subscribe("greetings")

	producer, err := bsub.ListenNode("127.0.0.1:0", bsub.LiveNodeConfig{
		ID:       1,
		Protocol: bsub.DefaultProtocolConfig(0.01),
		TTL:      time.Hour,
		Clock:    clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	if _, err := producer.Publish([]byte("hi"), "greetings"); err != nil {
		t.Fatal(err)
	}
	if err := producer.Meet(consumer.Addr()); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != 1 {
		t.Errorf("delivered %d, want 1", delivered.Load())
	}
}

// TestFacadeMesh runs a two-daemon gossip mesh through the facade:
// bootstrap via seeds, wait for the membership tables to see each other,
// and let flood dissemination carry a publish across without an explicit
// Meet.
func TestFacadeMesh(t *testing.T) {
	var delivered, freshPeers atomic.Int32
	meshCfg := bsub.MeshConfig{
		GossipInterval:  20 * time.Millisecond,
		ContactInterval: 50 * time.Millisecond,
		OnPeerChange: func(ev bsub.MeshPeerEvent) {
			if ev.Fresh && ev.To == bsub.MeshStateAlive {
				freshPeers.Add(1)
			}
		},
	}
	consumer, err := bsub.StartMesh("127.0.0.1:0", bsub.LiveNodeConfig{
		ID:       2,
		Protocol: bsub.DefaultProtocolConfig(0.01),
		TTL:      time.Hour,
		OnDeliver: func(d bsub.LiveDelivery) {
			if string(d.Payload) == "hi" {
				delivered.Add(1)
			}
		},
	}, meshCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	consumer.Subscribe("greetings")

	prodCfg := meshCfg
	prodCfg.Seeds = []string{consumer.Addr()}
	producer, err := bsub.StartMesh("127.0.0.1:0", bsub.LiveNodeConfig{
		ID:       1,
		Protocol: bsub.DefaultProtocolConfig(0.01),
		TTL:      time.Hour,
	}, prodCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()

	deadline := time.Now().Add(10 * time.Second)
	for len(producer.Peers()) == 0 || len(consumer.Peers()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("membership never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if producer.Peers()[0].State != bsub.MeshStateAlive {
		t.Errorf("peer state = %v, want alive", producer.Peers()[0].State)
	}
	if _, err := producer.Publish([]byte("hi"), "greetings"); err != nil {
		t.Fatal(err)
	}
	for delivered.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("publish never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats := producer.Stats()
	if stats.GossipAbsorbed == 0 {
		t.Error("producer absorbed no gossip")
	}
	if freshPeers.Load() == 0 {
		t.Error("no fresh-peer events fired")
	}
}
