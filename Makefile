GO ?= go
SHADOW := $(shell command -v shadow 2>/dev/null)

.PHONY: build test race vet vet-shadow parity chaos fuzz check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet-shadow runs the variable-shadowing analyzer when the shadow vettool
# is installed; otherwise it falls back to a stricter flag subset of the
# stock vet (still useful, and always available offline).
vet-shadow:
ifdef SHADOW
	$(GO) vet -vettool=$(SHADOW) ./...
else
	$(GO) vet -unreachable -unusedresult -lostcancel ./...
endif

# parity replays one deterministic contact sequence through the simulator
# adapter and through live TCP-framed nodes under the race detector and
# asserts byte-identical protocol state after every contact.
parity:
	$(GO) test -race -count=1 -run TestSimLiveParity ./internal/livenode

# chaos runs the fault-injection suite (faultnet wrappers over live
# contact sessions) under the race detector: copies conserved, no
# duplicate deliveries, nodes recover after severed contacts.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Sever|TimedOut|Corrupt|Faultnet|Truncation' ./internal/livenode ./internal/faultnet

# fuzz gives each wire-format fuzzer a short smoke budget; go only
# accepts one -fuzz target per invocation.
fuzz:
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzReadFrame -fuzztime 5s
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 5s
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzDecodeHello -fuzztime 5s
	$(GO) test ./internal/engine -run '^$$' -fuzz FuzzSessionSteps -fuzztime 5s

# check is the PR gate: vet (plus the shadow pass) and the full suite
# under the race detector, then sim/live parity, the chaos suite, and a
# fuzz smoke pass over the wire decoders and the engine state machine.
# The livenode session adapter is concurrent; never ship it unraced.
check: vet vet-shadow race parity chaos fuzz

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
