GO ?= go

.PHONY: build test race vet chaos fuzz check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# chaos runs the fault-injection suite (faultnet wrappers over live
# contact sessions) under the race detector: copies conserved, no
# duplicate deliveries, nodes recover after severed contacts.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Sever|TimedOut|Corrupt|Faultnet|Truncation' ./internal/livenode ./internal/faultnet

# fuzz gives each wire-format fuzzer a short smoke budget; go only
# accepts one -fuzz target per invocation.
fuzz:
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzReadFrame -fuzztime 5s
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 5s
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzDecodeHello -fuzztime 5s

# check is the PR gate: vet plus the full suite under the race detector,
# then the chaos suite and a fuzz smoke pass over the wire decoders.
# The livenode session engine is concurrent; never ship it unraced.
check: vet race chaos fuzz

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
