GO ?= go
SHADOW := $(shell command -v shadow 2>/dev/null)

.PHONY: build test race vet vet-shadow lint lint-fast lint-one lint-timing parity chaos chaos-mesh fuzz golden bench-smoke determinism scale ablation ablation-smoke check bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet-shadow runs the variable-shadowing analyzer when the shadow vettool
# is installed; otherwise it falls back to a stricter flag subset of the
# stock vet (still useful, and always available offline; the flag set is
# verified against go1.24, which accepts all three).
vet-shadow:
ifdef SHADOW
	$(GO) vet -vettool=$(SHADOW) ./...
else
	$(GO) vet -unreachable -unusedresult -lostcancel ./...
endif

# The linter is built once into bin/bsublint and shared by lint,
# lint-one, and lint-fast; the binary rebuilds only when its sources
# change, so repeated lint invocations skip the `go run` build step.
BSUBLINT := bin/bsublint
LINT_SRC := $(wildcard cmd/bsublint/*.go internal/lint/*.go) go.mod

$(BSUBLINT): $(LINT_SRC)
	$(GO) build -o $@ ./cmd/bsublint

# lint runs the repo-specific analyzers (cmd/bsublint): claims settled on
# every path, allocation-free //bsub:hotpath functions, deterministic
# core, no blocking I/O under locks, no dropped wire errors, goroutines
# tied to shutdown paths, //bsub:lockrank ordering, and wire-tainted
# lengths validated before use. See DESIGN.md §9 for the invariant
# table. Always a full cold run — the authoritative gate.
lint: $(BSUBLINT)
	$(BSUBLINT) ./...

# lint-fast is the incremental developer loop: findings are cached in
# bin/.lintcache keyed by content hashes of each package's files and
# transitive deps, so a warm run with no changes replays the stored
# findings (byte-identical to `make lint`) without loading or
# type-checking anything. Any edit falls back to a full run that
# refreshes the cache.
lint-fast: $(BSUBLINT)
	$(BSUBLINT) -cache bin/.lintcache ./...

# lint-one runs a single analyzer, e.g. `make lint-one ANALYZER=lockio`.
lint-one: $(BSUBLINT)
	$(BSUBLINT) -analyzers $(ANALYZER) ./...

# lint-timing records the full-vs-incremental linter wall time in
# BENCH_PR10.json: one cold run that rebuilds the cache, then one warm
# full-hit run.
lint-timing: $(BSUBLINT)
	@rm -rf bin/.lintcache
	@t0=$$(date +%s%N); $(BSUBLINT) -cache bin/.lintcache ./... >/dev/null; \
	t1=$$(date +%s%N); $(BSUBLINT) -cache bin/.lintcache ./... >/dev/null; \
	t2=$$(date +%s%N); \
	printf '{\n  "lint_full_cold_ms": %d,\n  "lint_fast_warm_ms": %d\n}\n' \
		$$(( (t1 - t0) / 1000000 )) $$(( (t2 - t1) / 1000000 )) > BENCH_PR10.json
	@cat BENCH_PR10.json

# parity replays one deterministic contact sequence through the simulator
# adapter and through live TCP-framed nodes under the race detector and
# asserts byte-identical protocol state after every contact.
parity:
	$(GO) test -race -count=1 -run TestSimLiveParity ./internal/livenode

# chaos runs the fault-injection suite (faultnet wrappers over live
# contact sessions) under the race detector: copies conserved, no
# duplicate deliveries, nodes recover after severed contacts.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Sever|TimedOut|Corrupt|Faultnet|Truncation|Fabric' ./internal/livenode ./internal/faultnet

# chaos-mesh runs the churn controller: a 100+ node in-process mesh under
# the race detector with partitions, kills, and restarts, asserting
# exactly-once delivery per incarnation, copy conservation, zero goroutine
# leaks, and eventual delivery to rejoined peers. Takes a few minutes.
chaos-mesh:
	$(GO) test -race -count=1 -timeout 20m -run TestMeshChurn ./internal/mesh

# fuzz gives each wire-format fuzzer a short smoke budget; go only
# accepts one -fuzz target per invocation.
fuzz:
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzReadFrame -fuzztime 5s
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 5s
	$(GO) test ./internal/livenode -run '^$$' -fuzz FuzzDecodeHello -fuzztime 5s
	$(GO) test ./internal/engine -run '^$$' -fuzz FuzzSessionSteps -fuzztime 5s
	$(GO) test ./internal/tcbf -run '^$$' -fuzz FuzzTCBFModel -fuzztime 5s
	$(GO) test ./internal/filtertest -run '^$$' -fuzz FuzzFilterModel -fuzztime 5s
	$(GO) test ./internal/faultnet -run '^$$' -fuzz FuzzFabricHealDuringHandshake -fuzztime 5s

# golden regenerates the quick-mode experiment CSVs (seed 1) and compares
# them byte-for-byte against the committed goldens: the figure series in
# cmd/experiments/testdata, pinning the zero-allocation contact path to
# the exact results of the straightforward implementation it replaced,
# and the filter-backend ablation grid in internal/experiments/testdata,
# pinning the filter seam itself.
golden:
	$(GO) test -count=1 -run TestGoldenCSVs ./cmd/experiments
	$(GO) test -count=1 -run TestBackendAblationGolden ./internal/experiments

# bench-smoke runs the contact benchmark a handful of iterations so a PR
# that breaks the benchmark harness (or its zero-alloc assumptions, see
# TestContactAllocationFree) fails the gate without a full bench run.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkEngineContact -benchtime 10x ./internal/engine

# determinism is the quick-mode sharded-runner gate: the same seeded scale
# config must produce byte-identical reports at workers=1 and workers=8,
# across epoch widths, and streamed vs materialized (DESIGN.md §11).
determinism:
	$(GO) test -count=1 -short -run 'TestShardedDeterminism|TestStreamedMatchesMaterialized|TestScaleRunDeterministicAcrossWorkers' \
		./internal/sim ./internal/experiments

# scale runs the full ROADMAP population sweep (10k / 100k / 1M nodes,
# takes minutes and a few GB of RAM) and leaves scale.csv + scale.json in
# artifacts/; bench-json embeds artifacts/scale.json when present.
scale:
	$(GO) run ./cmd/experiments -run scale -csv artifacts

# ablation runs the full ablation battery — including the filter-backend
# matrix over the fig7/fig9 traces and the 10k-node streamed population —
# leaving the CSV grids in artifacts/ and the backend comparison in
# BENCH_PR9.json. Takes minutes.
ablation:
	$(GO) run ./cmd/experiments -run ablation -csv artifacts -bench-json BENCH_PR9.json

# ablation-smoke is the quick-mode backend-matrix gate: the conformance
# subjects build, every backend survives a full trace replay and the
# streamed-population leg, and the quick grid matches its golden.
ablation-smoke:
	$(GO) test -count=1 -run 'TestFilterBackendsMatrix|TestBackendAblationGolden|TestBackendScaleSweepQuick' ./internal/experiments

# check is the PR gate: vet (plus the shadow pass), the repo-specific
# analyzers (full cold run, then the incremental cache path so a stale
# or corrupt cache can never pass the gate silently), the quick
# sharded-determinism gate, and the full suite under the race detector,
# then sim/live parity, the chaos suite, the mesh churn controller, a
# fuzz smoke pass over the wire decoders, the engine state machine, the
# TCBF differential model, and the cross-backend filter conformance
# suite, the golden-CSV comparisons, the filter-backend ablation smoke,
# and a benchmark smoke run. The livenode session adapter and the mesh
# daemon are concurrent; never ship them unraced.
check: vet vet-shadow lint lint-fast determinism race parity chaos chaos-mesh fuzz golden ablation-smoke bench-smoke

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-json captures the hot-path benchmarks plus end-to-end simulator
# throughput (contacts/s at 10k and 100k nodes) as a JSON document for
# checking in (BENCH_PR8.json; BENCH_PR6.json recorded the packed-counter
# contact path). When `make scale` has left artifacts/scale.json behind,
# the full 10k/100k/1M sweep is embedded as the document's "scale" field.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkEngineContact|InsertPre|ContainsPre|MMergeInPlace|EncodeTo|DecodeInto|EncodeFull|DecodeFull' \
		-benchmem -count=1 ./internal/engine ./internal/tcbf ; \
	  $(GO) test -run '^$$' -bench BenchmarkScaleSim -benchtime 1x -count=1 ./internal/experiments ; } \
		| $(GO) run ./cmd/benchjson $(if $(wildcard artifacts/scale.json),-scale artifacts/scale.json) > BENCH_PR8.json
