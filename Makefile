GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the PR gate: vet plus the full suite under the race detector.
# The livenode session engine is concurrent; never ship it unraced.
check: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
