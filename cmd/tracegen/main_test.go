package main

import (
	"testing"
	"time"

	"bsub/internal/tracegen"
)

func TestBuildPresets(t *testing.T) {
	custom := tracegen.Small(1)
	tests := []struct {
		preset    string
		wantNodes int
	}{
		{preset: "", wantNodes: custom.Nodes},
		{preset: "small", wantNodes: 20},
		{preset: "mit3day", wantNodes: 97},
	}
	for _, tt := range tests {
		t.Run("preset="+tt.preset, func(t *testing.T) {
			tr, err := build(tt.preset, custom, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Nodes != tt.wantNodes {
				t.Errorf("nodes = %d, want %d", tr.Nodes, tt.wantNodes)
			}
		})
	}
}

func TestBuildFullPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("haggle/mit generation in -short mode")
	}
	for preset, wantNodes := range map[string]int{"haggle": 79, "mit": 97} {
		tr, err := build(preset, tracegen.Config{}, 1)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if tr.Nodes != wantNodes {
			t.Errorf("%s nodes = %d, want %d", preset, tr.Nodes, wantNodes)
		}
	}
}

func TestBuildUnknownPreset(t *testing.T) {
	if _, err := build("bogus", tracegen.Config{}, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestBuildInvalidCustom(t *testing.T) {
	bad := tracegen.Small(1)
	bad.Span = -time.Hour
	if _, err := build("", bad, 1); err == nil {
		t.Error("invalid custom config accepted")
	}
}
