// Command tracegen synthesizes human contact traces in the repository's
// text format.
//
// Usage:
//
//	tracegen -preset haggle -seed 1 -out haggle.trace
//	tracegen -nodes 50 -span 24h -contacts 10000 -out custom.trace
//
// Presets reproduce the Table I datasets: "haggle" (79 nodes, 3 days,
// ~67,360 contacts), "mit" (97 nodes, 246 days, ~54,667 contacts),
// "mit3day" (the busy 3-day MIT window used in the paper's simulations),
// and "small" (20 nodes, 12 hours).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bsub/internal/trace"
	"bsub/internal/tracegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		preset   = flag.String("preset", "", "preset: haggle | mit | mit3day | small (overrides the custom flags)")
		nodes    = flag.Int("nodes", 20, "custom: number of nodes")
		span     = flag.Duration("span", 12*time.Hour, "custom: trace length")
		contacts = flag.Int("contacts", 2000, "custom: target contact count")
		comms    = flag.Int("communities", 3, "custom: number of communities")
		bias     = flag.Float64("bias", 3, "custom: same-community rate multiplier (>= 1)")
		meanDur  = flag.Duration("mean-contact", 3*time.Minute, "custom: mean contact duration")
		alpha    = flag.Float64("alpha", 1.7, "custom: Pareto activity shape")
		diurnal  = flag.Bool("diurnal", true, "custom: apply day/night cycle")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
		stats    = flag.Bool("stats", false, "print Table I style statistics to stderr")
	)
	flag.Parse()

	tr, err := build(*preset, tracegen.Config{
		Name:                "custom",
		Nodes:               *nodes,
		Span:                *span,
		TargetContacts:      *contacts,
		Communities:         *comms,
		CommunityBias:       *bias,
		MeanContactDuration: *meanDur,
		ActivityAlpha:       *alpha,
		Diurnal:             *diurnal,
		Seed:                *seed,
	}, *seed)
	if err != nil {
		return err
	}

	if *stats {
		s := tr.Stats()
		ict := tr.InterContactTimes()
		fmt.Fprintf(os.Stderr, "trace %s: %d nodes, %d contacts, span %v, mean contact %v, mean degree %.1f\n",
			s.Name, s.Nodes, s.Contacts, s.Span.Round(time.Minute), s.MeanDuration.Round(time.Second), s.MeanDegree)
		fmt.Fprintf(os.Stderr, "pair coverage %.2f; inter-contact mean %v, median %v, p90 %v (%d gaps)\n",
			tr.PairCoverage(), ict.Mean.Round(time.Minute), ict.Median.Round(time.Minute),
			ict.P90.Round(time.Minute), ict.Samples)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.Write(w, tr)
}

func build(preset string, custom tracegen.Config, seed int64) (*trace.Trace, error) {
	switch preset {
	case "":
		return tracegen.Generate(custom)
	case "haggle":
		return tracegen.Generate(tracegen.HaggleInfocom06(seed))
	case "mit":
		return tracegen.Generate(tracegen.MITRealityFull(seed))
	case "mit3day":
		return tracegen.Generate(tracegen.MITReality3Day(seed))
	case "small":
		return tracegen.Generate(tracegen.Small(seed))
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}
