// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark results can be checked in
// and diffed across PRs (make bench-json writes BENCH_PR4.json this way).
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics holds any custom units reported
// via b.ReportMetric (e.g. the sim throughput benchmarks' contacts/s).
type Result struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the checked-in document. Scale carries the population-sweep
// points from `make scale` (a JSON array of experiments.ScalePoint) when
// -scale names their file.
type Report struct {
	Goos       string          `json:"goos,omitempty"`
	Goarch     string          `json:"goarch,omitempty"`
	CPU        string          `json:"cpu,omitempty"`
	Benchmarks []Result        `json:"benchmarks"`
	Scale      json.RawMessage `json:"scale,omitempty"`
}

func main() {
	scalePath := flag.String("scale", "", "embed this scale-sweep JSON file (from make scale) as the document's \"scale\" field")
	flag.Parse()
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *scalePath != "" {
		raw, err := os.ReadFile(*scalePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *scalePath)
			os.Exit(1)
		}
		report.Scale = json.RawMessage(raw)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	report := &Report{Benchmarks: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			r.Pkg = pkg
			report.Benchmarks = append(report.Benchmarks, *r)
		}
	}
	return report, sc.Err()
}

// parseBench reads a result line:
//
//	BenchmarkEngineContact/mmerge-8   89407   13886 ns/op   70 B/op   0 allocs/op
func parseBench(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("want at least 4 fields, got %d", len(fields))
	}
	name := fields[0]
	// Strip the trailing -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iterations: %w", err)
	}
	r := &Result{Name: name, Iterations: iters}
	// The remainder is unit-tagged value pairs: <value> <unit>.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return nil, fmt.Errorf("ns/op: %w", err)
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return nil, fmt.Errorf("B/op: %w", err)
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return nil, fmt.Errorf("allocs/op: %w", err)
			}
		default:
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", unit, err)
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}
