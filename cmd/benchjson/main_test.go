package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: bsub/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineContact/mmerge-8         	   89407	     13886 ns/op	      70 B/op	       0 allocs/op
BenchmarkEngineContact/amerge-8         	   85626	     13150 ns/op	      70 B/op	       0 allocs/op
PASS
ok  	bsub/internal/engine	2.652s
pkg: bsub/internal/tcbf
BenchmarkContainsPre-8   	79945028	        14.35 ns/op	       0 B/op	       0 allocs/op
PASS
`
	report, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" {
		t.Errorf("platform = %s/%s", report.Goos, report.Goarch)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	first := report.Benchmarks[0]
	if first.Name != "BenchmarkEngineContact/mmerge" ||
		first.Pkg != "bsub/internal/engine" ||
		first.Iterations != 89407 || first.NsPerOp != 13886 ||
		first.BytesPerOp != 70 || first.AllocsPerOp != 0 {
		t.Errorf("first result = %+v", first)
	}
	last := report.Benchmarks[2]
	if last.Pkg != "bsub/internal/tcbf" || last.NsPerOp != 14.35 {
		t.Errorf("last result = %+v", last)
	}
}

func TestParseBenchCustomMetrics(t *testing.T) {
	r, err := parseBench("BenchmarkScaleSim/10k-8   	       1	1021312625 ns/op	    131072 contacts/s	       142.5 RSSbytes/node	 8011216 B/op	   90176 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "BenchmarkScaleSim/10k" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Metrics["contacts/s"] != 131072 || r.Metrics["RSSbytes/node"] != 142.5 {
		t.Errorf("custom metrics = %v", r.Metrics)
	}
	if r.BytesPerOp != 8011216 || r.AllocsPerOp != 90176 {
		t.Errorf("standard units mislaid: %+v", r)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	if _, err := parseBench("BenchmarkX only three"); err == nil {
		t.Error("iteration garbage accepted")
	}
	if _, err := parseBench("BenchmarkX"); err == nil {
		t.Error("short line accepted")
	}
}
