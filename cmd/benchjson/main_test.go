package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: bsub/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineContact/mmerge-8         	   89407	     13886 ns/op	      70 B/op	       0 allocs/op
BenchmarkEngineContact/amerge-8         	   85626	     13150 ns/op	      70 B/op	       0 allocs/op
PASS
ok  	bsub/internal/engine	2.652s
pkg: bsub/internal/tcbf
BenchmarkContainsPre-8   	79945028	        14.35 ns/op	       0 B/op	       0 allocs/op
PASS
`
	report, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" {
		t.Errorf("platform = %s/%s", report.Goos, report.Goarch)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	first := report.Benchmarks[0]
	if first.Name != "BenchmarkEngineContact/mmerge" ||
		first.Pkg != "bsub/internal/engine" ||
		first.Iterations != 89407 || first.NsPerOp != 13886 ||
		first.BytesPerOp != 70 || first.AllocsPerOp != 0 {
		t.Errorf("first result = %+v", first)
	}
	last := report.Benchmarks[2]
	if last.Pkg != "bsub/internal/tcbf" || last.NsPerOp != 14.35 {
		t.Errorf("last result = %+v", last)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	if _, err := parseBench("BenchmarkX only three"); err == nil {
		t.Error("iteration garbage accepted")
	}
	if _, err := parseBench("BenchmarkX"); err == nil {
		t.Error("short line accepted")
	}
}
