// Package fixturemod is the bsublint integration fixture: a tiny module
// with one planted finding per layer the driver must report.
package fixturemod

import "fmt"

//bsub:hotpath
func hotFormat(x int) {
	s := fmt.Sprintf("%d", x)
	_ = s
}
