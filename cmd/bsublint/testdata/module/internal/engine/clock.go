// Package engine plants a determinism finding inside the analyzer's
// scoped package set.
package engine

import "time"

func stamp() time.Time {
	return time.Now()
}
