package main

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var fixtureDir = filepath.Join("testdata", "module")

func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(dir, args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunReportsPlantedFindings(t *testing.T) {
	code, stdout, stderr := runIn(t, fixtureDir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	lineFormat := regexp.MustCompile(`^[^:]+\.go:\d+: bsub/[a-z]+: .+$`)
	var lines []string
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if line == "" {
			continue
		}
		if !lineFormat.MatchString(line) {
			t.Errorf("malformed diagnostic line: %q", line)
		}
		lines = append(lines, line)
	}
	for _, want := range []string{
		`hot.go:\d+: bsub/hotpathalloc: hotpath function calls fmt.Sprintf, which allocates`,
		`internal/engine/clock.go:\d+: bsub/determinism: time.Now reads the wall clock`,
	} {
		re := regexp.MustCompile(want)
		found := false
		for _, line := range lines {
			if re.MatchString(line) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
}

func TestRunAnalyzerSubsetClean(t *testing.T) {
	// The fixture module has no livenode package, so the lockio-only run
	// comes back clean.
	code, stdout, stderr := runIn(t, fixtureDir, "-analyzers", "lockio", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed: %q", stdout)
	}
}

func TestRunList(t *testing.T) {
	code, stdout, _ := runIn(t, fixtureDir, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"claimsettle", "hotpathalloc", "determinism", "lockio", "wireerr"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code, _, _ := runIn(t, fixtureDir, "-analyzers", "nosuch"); code != 2 {
		t.Errorf("unknown analyzer: exit = %d, want 2", code)
	}
	if code, _, _ := runIn(t, fixtureDir, "-bogusflag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
}
