package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bsub/internal/lint"
)

var fixtureDir = filepath.Join("testdata", "module")

func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(dir, args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunReportsPlantedFindings(t *testing.T) {
	code, stdout, stderr := runIn(t, fixtureDir, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	lineFormat := regexp.MustCompile(`^[^:]+\.go:\d+: bsub/[a-z]+: .+$`)
	var lines []string
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if line == "" {
			continue
		}
		if !lineFormat.MatchString(line) {
			t.Errorf("malformed diagnostic line: %q", line)
		}
		lines = append(lines, line)
	}
	for _, want := range []string{
		`hot.go:\d+: bsub/hotpathalloc: hotpath function calls fmt.Sprintf, which allocates`,
		`internal/engine/clock.go:\d+: bsub/determinism: time.Now reads the wall clock`,
	} {
		re := regexp.MustCompile(want)
		found := false
		for _, line := range lines {
			if re.MatchString(line) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
}

func TestRunAnalyzerSubsetClean(t *testing.T) {
	// The fixture module has no livenode package, so the lockio-only run
	// comes back clean.
	code, stdout, stderr := runIn(t, fixtureDir, "-analyzers", "lockio", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed: %q", stdout)
	}
}

func TestRunList(t *testing.T) {
	code, stdout, _ := runIn(t, fixtureDir, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"claimsettle", "hotpathalloc", "determinism", "lockio", "wireerr"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code, _, _ := runIn(t, fixtureDir, "-analyzers", "nosuch"); code != 2 {
		t.Errorf("unknown analyzer: exit = %d, want 2", code)
	}
	if code, _, _ := runIn(t, fixtureDir, "-bogusflag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code, _, _ := runIn(t, fixtureDir, "-format", "yaml"); code != 2 {
		t.Errorf("unknown format: exit = %d, want 2", code)
	}
}

func TestRunFormatJSON(t *testing.T) {
	code, stdout, _ := runIn(t, fixtureDir, "-format", "json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, stdout)
	}
	var got []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("stdout is not a JSON finding array: %v\n%s", err, stdout)
	}
	if len(got) == 0 {
		t.Fatal("json output has no findings; the fixture plants several")
	}
	for _, f := range got {
		if f.File == "" || f.Line <= 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if !strings.HasPrefix(f.Analyzer, "bsub/") {
			t.Errorf("analyzer %q missing bsub/ prefix", f.Analyzer)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("file %q should be module-relative", f.File)
		}
	}
	found := false
	for _, f := range got {
		if f.File == "hot.go" && f.Analyzer == "bsub/hotpathalloc" {
			found = true
		}
	}
	if !found {
		t.Errorf("planted hot.go hotpathalloc finding missing from:\n%s", stdout)
	}
	// Findings must agree one-to-one with text mode, in the same order.
	_, text, _ := runIn(t, fixtureDir, "./...")
	textLines := strings.Split(strings.TrimSpace(text), "\n")
	if len(textLines) != len(got) {
		t.Fatalf("json has %d findings, text has %d lines", len(got), len(textLines))
	}
	for i, f := range got {
		want := regexp.MustCompile(regexp.QuoteMeta(f.File) + `:\d+: ` + regexp.QuoteMeta(f.Analyzer))
		if !want.MatchString(textLines[i]) {
			t.Errorf("finding %d: json %+v does not match text line %q", i, f, textLines[i])
		}
	}
}

func TestRunFormatJSONCleanEmitsEmptyArray(t *testing.T) {
	code, stdout, _ := runIn(t, fixtureDir, "-format", "json", "-analyzers", "lockio", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean json run printed %q, want []", stdout)
	}
}

func TestRunFormatTextIsDefault(t *testing.T) {
	_, implicit, _ := runIn(t, fixtureDir, "./...")
	_, explicit, _ := runIn(t, fixtureDir, "-format", "text", "./...")
	if implicit != explicit {
		t.Errorf("-format text output differs from default:\n%q\nvs\n%q", explicit, implicit)
	}
}

// copyFixture clones the fixture module into a temp dir so cache tests
// can mutate source files without touching the checked-in tree.
func copyFixture(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(fixtureDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(fixtureDir, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestRunCacheWarmIsByteIdenticalAndInvalidates(t *testing.T) {
	dir := copyFixture(t)
	cache := filepath.Join(t.TempDir(), "lintcache")

	code, cold, _ := runIn(t, dir, "-cache", cache, "./...")
	if code != 1 {
		t.Fatalf("cold exit = %d, want 1\n%s", code, cold)
	}
	if _, err := os.Stat(filepath.Join(cache, "manifest.json")); err != nil {
		t.Fatalf("cold run wrote no manifest: %v", err)
	}
	if _, ok := lint.TryCache(dir, cache, lint.All()); !ok {
		t.Fatal("cache misses immediately after a cold run")
	}

	code, warm, _ := runIn(t, dir, "-cache", cache, "./...")
	if code != 1 {
		t.Fatalf("warm exit = %d, want 1", code)
	}
	if warm != cold {
		t.Errorf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// Mutating a source file must invalidate, and the refreshed run must
	// report the new finding — no stale replay.
	hot := filepath.Join(dir, "hot.go")
	data, err := os.ReadFile(hot)
	if err != nil {
		t.Fatal(err)
	}
	// Assignment form: allocations inside a return subtree are the
	// analyzer's cold-exit exemption and would not be flagged.
	extra := "\n//bsub:hotpath\nfunc hotFormat2(x int) { s := fmt.Sprintf(\"%d\", x); _ = s }\n"
	if err := os.WriteFile(hot, append(data, extra...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := lint.TryCache(dir, cache, lint.All()); ok {
		t.Fatal("cache still hits after mutating hot.go")
	}
	code, mutated, _ := runIn(t, dir, "-cache", cache, "./...")
	if code != 1 {
		t.Fatalf("post-mutation exit = %d, want 1", code)
	}
	if !strings.Contains(mutated, "hotFormat2") && strings.Count(mutated, "hotpathalloc") < 2 {
		t.Errorf("post-mutation run missing the new finding:\n%s", mutated)
	}
	if mutated == cold {
		t.Error("post-mutation output identical to pre-mutation output")
	}
	if _, ok := lint.TryCache(dir, cache, lint.All()); !ok {
		t.Error("cache not refreshed by the post-mutation run")
	}
	code, rewarm, _ := runIn(t, dir, "-cache", cache, "./...")
	if code != 1 || rewarm != mutated {
		t.Errorf("re-warmed output differs from its cold run (exit %d)", code)
	}

	// A brand-new package — one nothing imports yet — must also force a
	// miss: the warm path walks the module tree, not just the manifest.
	newPkg := filepath.Join(dir, "internal", "fresh")
	if err := os.MkdirAll(newPkg, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(newPkg, "fresh.go"), []byte("package fresh\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := lint.TryCache(dir, cache, lint.All()); ok {
		t.Error("cache still hits after adding a new package directory")
	}
}

func TestRunCacheSkippedForExplicitPackages(t *testing.T) {
	dir := copyFixture(t)
	cache := filepath.Join(t.TempDir(), "lintcache")
	code, _, _ := runIn(t, dir, "-cache", cache, ".")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if _, err := os.Stat(filepath.Join(cache, "manifest.json")); err == nil {
		t.Error("narrow package pattern wrote a whole-module cache")
	}
}

func TestRunCacheAnalyzerSubsetKeyed(t *testing.T) {
	dir := copyFixture(t)
	cache := filepath.Join(t.TempDir(), "lintcache")
	if code, _, _ := runIn(t, dir, "-cache", cache, "-analyzers", "lockio", "./..."); code != 0 {
		t.Fatal("lockio-only run should be clean")
	}
	// A full-set run must not replay the lockio-only (empty) result.
	code, stdout, _ := runIn(t, dir, "-cache", cache, "./...")
	if code != 1 || !strings.Contains(stdout, "hotpathalloc") {
		t.Errorf("full run replayed subset cache: exit %d\n%s", code, stdout)
	}
}
