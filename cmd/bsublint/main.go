// Command bsublint runs the repo-specific static analyzers over the
// module in the current directory and prints findings as
// file:line: analyzer: message, exiting non-zero when anything is
// flagged. See internal/lint for the analyzers and DESIGN.md §9 for the
// invariants they enforce.
//
// Usage:
//
//	bsublint [-analyzers name,name] [-format text|json] [-cache dir] [-list] [packages ...]
//
// -format json emits the findings as a JSON array of
// {file, line, analyzer, message} objects on stdout (an empty run emits
// []); exit codes are unchanged. -cache dir enables the incremental
// findings cache: a warm run whose package contents are byte-identical
// to the cached run replays the stored findings without loading or
// type-checking anything, and any change falls back to a full run that
// refreshes the cache. The cache only engages for the default ./...
// package pattern — an explicit pattern always runs cold.
//
// Findings can be suppressed at the site with
// //lint:ignore bsub/<analyzer> reason — the directive covers its own
// line and the line below it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"bsub/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -format json element schema. It is flat on purpose:
// CI consumers match on file/line/analyzer without knowing about
// go/token positions.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is the testable driver body: 0 clean, 1 findings, 2 usage or
// load failure.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("bsublint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	names := flags.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	format := flags.String("format", "text", "output format: text or json")
	cacheDir := flags.String("cache", "", "findings cache directory (empty: no caching)")
	list := flags.Bool("list", false, "list analyzers and exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "bsublint: unknown -format %q (want text or json)\n", *format)
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(*names)
		if err != nil {
			fmt.Fprintln(stderr, "bsublint:", err)
			return 2
		}
	}

	// The cache stores whole-module results, so it only applies to the
	// default ./... run (spelled out or implied); narrower package
	// patterns bypass it.
	wholeModule := len(flags.Args()) == 0 ||
		(len(flags.Args()) == 1 && flags.Args()[0] == "./...")
	var findings []lint.Diagnostic
	var suppressed int
	cached := false
	if *cacheDir != "" && wholeModule {
		if run, ok := lint.TryCache(dir, *cacheDir, analyzers); ok {
			findings, suppressed = run.Findings, run.Suppressed
			cached = true
		}
	}
	if !cached {
		prog, err := lint.LoadModule(dir, flags.Args()...)
		if err != nil {
			fmt.Fprintln(stderr, "bsublint:", err)
			return 2
		}
		results := prog.RunPackages(prog.Module, analyzers...)
		for _, r := range results {
			findings = append(findings, r.Findings...)
			suppressed += r.Suppressed
		}
		if *cacheDir != "" && wholeModule {
			if err := lint.WriteCache(dir, *cacheDir, prog, results, analyzers); err != nil {
				fmt.Fprintln(stderr, "bsublint: cache write:", err)
			}
		}
		lint.Relativize(dir, findings)
		lint.SortDiagnostics(findings)
	}

	switch *format {
	case "json":
		out := make([]jsonFinding, 0, len(findings))
		for _, d := range findings {
			out = append(out, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Analyzer: "bsub/" + d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "bsublint:", err)
			return 2
		}
	default:
		for _, d := range findings {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(stderr, "bsublint: %d finding(s)", n)
		if suppressed > 0 {
			fmt.Fprintf(stderr, ", %d suppressed", suppressed)
		}
		fmt.Fprintln(stderr)
		return 1
	}
	return 0
}
