// Command bsublint runs the repo-specific static analyzers over the
// module in the current directory and prints findings as
// file:line: analyzer: message, exiting non-zero when anything is
// flagged. See internal/lint for the analyzers and DESIGN.md §9 for the
// invariants they enforce.
//
// Usage:
//
//	bsublint [-analyzers name,name] [-list] [packages ...]
//
// Findings can be suppressed at the site with
// //lint:ignore bsub/<analyzer> reason — the directive covers its own
// line and the line below it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bsub/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: 0 clean, 1 findings, 2 usage or
// load failure.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("bsublint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	names := flags.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flags.Bool("list", false, "list analyzers and exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.ByName(*names)
		if err != nil {
			fmt.Fprintln(stderr, "bsublint:", err)
			return 2
		}
	}
	prog, err := lint.LoadModule(dir, flags.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "bsublint:", err)
		return 2
	}
	findings, suppressed := prog.Run(analyzers...)
	lint.Relativize(dir, findings)
	for _, d := range findings {
		fmt.Fprintln(stdout, d.String())
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(stderr, "bsublint: %d finding(s)", n)
		if suppressed > 0 {
			fmt.Fprintf(stderr, ", %d suppressed", suppressed)
		}
		fmt.Fprintln(stderr)
		return 1
	}
	return 0
}
