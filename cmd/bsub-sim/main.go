// Command bsub-sim runs one simulation of a protocol over a contact trace
// and prints the Section VII metrics.
//
// Usage:
//
//	bsub-sim -protocol bsub -ttl 2h -df 0.138 trace.txt
//	bsub-sim -protocol push -preset haggle -ttl 10h
//	bsub-sim -nodes 100000 -workers 8 -epoch 10m -ttl 6h
//
// The trace comes either from a file argument (the repository's text
// format, see cmd/tracegen), from a -preset, or — for population-scale
// runs — from -nodes, which streams a synthetic community trace and
// workload without ever materializing them (DESIGN.md §11). The workload
// follows the paper: one weighted Twitter-Trend interest per node,
// message rates proportional to centrality, sizes up to 140 bytes.
// -workers shards contact execution across goroutines and -epoch sets the
// barrier width; results are byte-identical for any setting of either.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"bsub/internal/core"
	"bsub/internal/experiments"
	"bsub/internal/protocol"
	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/tracegen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bsub-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protoName = flag.String("protocol", "bsub", "protocol: bsub | push | pull")
		preset    = flag.String("preset", "", "trace preset: haggle | mit3day | small (alternative to a trace file)")
		ttl       = flag.Duration("ttl", 2*time.Hour, "message TTL (= maximum tolerable delay)")
		df        = flag.Float64("df", -1, "B-SUB decaying factor per minute (-1 = derive from TTL via Eq. 5)")
		bandwidth = flag.Int("bandwidth", sim.DefaultBandwidthBps, "effective link rate in bits/s")
		seed      = flag.Int64("seed", 1, "random seed for workload and protocol")
		nodes     = flag.Int("nodes", 0, "stream a synthetic scale trace with this many nodes (alternative to a trace file or -preset)")
		workers   = flag.Int("workers", 0, "execution goroutines; 0 = 1; output is identical for any value")
		epoch     = flag.Duration("epoch", 0, "sharding epoch width; 0 = default; output is identical for any value")
	)
	flag.Parse()

	switch {
	case *nodes < 0 || *nodes == 1:
		return fmt.Errorf("-nodes must be at least 2, got %d", *nodes)
	case *nodes > 0 && (*preset != "" || flag.Arg(0) != ""):
		return errors.New("-nodes streams its own trace; drop the -preset/file argument")
	case *workers < 0 || *workers > sim.MaxWorkers:
		return fmt.Errorf("-workers must be in [0,%d], got %d", sim.MaxWorkers, *workers)
	case *epoch < 0:
		return fmt.Errorf("-epoch must be non-negative, got %v", *epoch)
	}

	if *nodes > 0 {
		return runScale(*nodes, *workers, *epoch, *protoName, *ttl, *df, *bandwidth, *seed)
	}

	tr, err := loadTrace(*preset, flag.Arg(0), *seed)
	if err != nil {
		return err
	}
	fixture, err := experiments.NewFixture(tr.Name, tr, *seed)
	if err != nil {
		return err
	}

	var proto sim.Protocol
	switch *protoName {
	case "push":
		proto = protocol.NewPush()
	case "pull":
		proto = protocol.NewPull()
	case "bsub":
		var cfg core.Config
		if *df >= 0 {
			cfg = core.DefaultConfig(*df)
		} else {
			cfg = fixture.BSubConfig(*ttl)
			fmt.Fprintf(os.Stderr, "derived DF = %.4f/min for TTL %v (Eq. 5)\n", cfg.DecayPerMinute, *ttl)
		}
		proto = core.New(cfg)
	default:
		return fmt.Errorf("unknown protocol %q", *protoName)
	}

	report, err := sim.Run(sim.Config{
		Trace:        fixture.Trace,
		Interests:    fixture.Interests,
		Messages:     fixture.Messages,
		TTL:          *ttl,
		BandwidthBps: *bandwidth,
		Seed:         *seed,
		Workers:      *workers,
		Epoch:        *epoch,
	}, proto)
	if err != nil {
		return err
	}

	s := tr.Stats()
	fmt.Printf("trace:     %s (%d nodes, %d contacts, span %v)\n",
		s.Name, s.Nodes, s.Contacts, s.Span.Round(time.Minute))
	fmt.Printf("workload:  %d messages, TTL %v\n", len(fixture.Messages), *ttl)
	fmt.Printf("result:    %s\n", report)
	fmt.Printf("traffic:   control %d B, data %d B\n", report.ControlBytes, report.DataBytes)
	return nil
}

// runScale simulates a protocol over a streamed -nodes population: the
// contact and message streams are generated on the fly, so memory stays
// proportional to the population, not the event count.
func runScale(nodes, workers int, epoch time.Duration, protoName string, ttl time.Duration, df float64, bandwidth int, seed int64) error {
	ts, interests, msgs, err := experiments.ScaleStreams(nodes, seed)
	if err != nil {
		return err
	}
	var proto sim.Protocol
	switch protoName {
	case "push":
		proto = protocol.NewPush()
	case "pull":
		proto = protocol.NewPull()
	case "bsub":
		if df < 0 {
			df = 0.1 // Eq. 5 derivation needs a materialized trace; use the tuned default
			fmt.Fprintf(os.Stderr, "streamed trace: using default DF = %.4f/min (pass -df to override)\n", df)
		}
		proto = core.New(core.DefaultConfig(df))
	default:
		return fmt.Errorf("unknown protocol %q", protoName)
	}
	started := time.Now()
	report, err := sim.Run(sim.Config{
		Source:       ts,
		MsgSource:    msgs,
		Interests:    interests,
		TTL:          ttl,
		BandwidthBps: bandwidth,
		Seed:         seed,
		Workers:      workers,
		Epoch:        epoch,
	}, proto)
	if err != nil {
		return err
	}
	wall := time.Since(started)
	fmt.Printf("trace:     scale-%d (streamed, %d nodes, %d linked pairs, %d contacts)\n",
		nodes, nodes, ts.Links(), report.Contacts)
	fmt.Printf("workload:  %d messages (streamed), TTL %v\n", report.Created, ttl)
	fmt.Printf("result:    %s\n", report)
	fmt.Printf("traffic:   control %d B, data %d B\n", report.ControlBytes, report.DataBytes)
	fmt.Printf("engine:    %d workers, %v wall, %.0f contacts/s\n",
		max(workers, 1), wall.Round(time.Millisecond), float64(report.Contacts)/wall.Seconds())
	return nil
}

func loadTrace(preset, path string, seed int64) (*trace.Trace, error) {
	switch {
	case preset != "" && path != "":
		return nil, errors.New("give either -preset or a trace file, not both")
	case preset == "" && path == "":
		return nil, errors.New("need a trace: pass a file or -preset haggle|mit3day|small")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	case preset == "haggle":
		return tracegen.Generate(tracegen.HaggleInfocom06(seed))
	case preset == "mit3day":
		return tracegen.Generate(tracegen.MITReality3Day(seed))
	case preset == "small":
		return tracegen.Generate(tracegen.Small(seed))
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
}
