package main

import (
	"os"
	"path/filepath"
	"testing"

	"bsub/internal/trace"
	"bsub/internal/tracegen"
)

func TestLoadTracePresets(t *testing.T) {
	tr, err := loadTrace("small", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 20 {
		t.Errorf("small preset nodes = %d", tr.Nodes)
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	gen, err := tracegen.Generate(tracegen.Small(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := loadTrace("", path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != gen.Nodes || len(got.Contacts) != len(gen.Contacts) {
		t.Errorf("loaded %d/%d, want %d/%d",
			got.Nodes, len(got.Contacts), gen.Nodes, len(gen.Contacts))
	}
}

func TestLoadTraceErrors(t *testing.T) {
	if _, err := loadTrace("", "", 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadTrace("small", "also-a-file", 1); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadTrace("bogus", "", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := loadTrace("", "/nonexistent/file", 1); err == nil {
		t.Error("missing file accepted")
	}
}
