package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenCSVs regenerates the quick-mode CSV artifacts that emit files
// (seed 1) and compares them byte-for-byte against the committed goldens
// in testdata/. The goldens pin the hot-path refactors — scratch filters,
// in-place encode/decode, precomputed digests — to the exact simulation
// results of the straightforward implementation. They were regenerated
// once when the packed fixed-point counters landed: quantizing counters to
// Initial/1024 units shifts a handful of marginal forwarding decisions
// (delivery/delay deltas under 2%), which is an intentional semantic
// change, not drift. They were regenerated again when replication
// exhaustion stopped evicting produced messages: a producer now serves
// subscribers directly until the TTL even after its copy budget is spent,
// nudging delivery ratios up and delays down by similar margins. The
// latest regeneration came with streaming fixture generation: traces and
// workloads are now drawn from per-pair/per-node derived RNG streams so
// they can be produced lazily at million-node scale, which resamples the
// synthetic Poisson processes. Delivery-ratio deltas stay within ~3%
// (most cells under 2%) and every qualitative trend the figures assert —
// PUSH > B-SUB > PULL delivery, delay orderings, DF sensitivity — is
// unchanged.
// Regenerate with:
//
//	go run ./cmd/experiments -run fig7 -seed 1 -quick -csv cmd/experiments/testdata
//	go run ./cmd/experiments -run fig9 -seed 1 -quick -csv cmd/experiments/testdata
func TestGoldenCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-mode simulations still take a few seconds")
	}
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		_ = null.Close()
	}()

	dir := t.TempDir()
	files := map[string][]string{
		"fig7": {"fig7.csv"},
		"fig9": {"fig9-haggle.csv", "fig9-mit.csv"},
	}
	for _, artifact := range []string{"fig7", "fig9"} {
		artifact := artifact
		t.Run(artifact, func(t *testing.T) {
			if err := runArtifact(artifact, 1, true, dir, ""); err != nil {
				t.Fatalf("%s: %v", artifact, err)
			}
			for _, name := range files[artifact] {
				got, err := os.ReadFile(filepath.Join(dir, name))
				if err != nil {
					t.Fatalf("regenerated %s: %v", name, err)
				}
				want, err := os.ReadFile(filepath.Join("testdata", name))
				if err != nil {
					t.Fatalf("golden %s: %v", name, err)
				}
				if string(got) != string(want) {
					t.Errorf("%s diverged from testdata golden:\ngot:\n%s\nwant:\n%s",
						name, got, want)
				}
			}
		})
	}
}
