package main

import (
	"os"
	"testing"
	"time"
)

func TestRunArtifactQuick(t *testing.T) {
	// Smoke-run every artifact at quick scale; output goes to the test's
	// stdout, correctness of the numbers is asserted in
	// internal/experiments.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		_ = null.Close()
	}()

	for _, artifact := range []string{
		"table2", "fig7", "fig9", "memory", "analysis", "allocation",
	} {
		artifact := artifact
		t.Run(artifact, func(t *testing.T) {
			if err := runArtifact(artifact, 1, true, t.TempDir(), ""); err != nil {
				t.Fatalf("%s: %v", artifact, err)
			}
		})
	}
}

func TestRunArtifactUnknown(t *testing.T) {
	if err := runArtifact("bogus", 1, true, "", ""); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestSweepAxes(t *testing.T) {
	if got := ttls(true); len(got) == 0 || got[0] != 30*time.Minute {
		t.Errorf("quick ttls = %v", got)
	}
	if got := ttls(false); len(got) != 7 {
		t.Errorf("full ttls = %v", got)
	}
	if got := dfs(false); len(got) != 8 || got[0] != 0 {
		t.Errorf("full dfs = %v", got)
	}
}

func TestFixtureSelector(t *testing.T) {
	f, err := fixture("haggle", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace.Nodes != 20 {
		t.Errorf("quick fixture nodes = %d, want the small 20", f.Trace.Nodes)
	}
}
