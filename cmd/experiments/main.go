// Command experiments regenerates every table and figure of the B-SUB
// paper's evaluation (Section VII). Output is textual: one block per
// artifact with the same rows/series the paper plots.
//
// Usage:
//
//	experiments                 # run everything (minutes)
//	experiments -run fig7       # one artifact: table1 table2 fig7 fig8 fig9 memory analysis allocation
//	experiments -quick          # small fixture + reduced sweeps (seconds)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"bsub/internal/analysis"
	"bsub/internal/experiments"
	"bsub/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only     = flag.String("run", "", "run a single artifact: table1 | table2 | fig7 | fig8 | fig9 | memory | analysis | allocation | ablation | scale")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "use the small fixture and reduced sweeps")
		csvDir   = flag.String("csv", "", "also write the figure series as CSV files into this directory")
		benchOut = flag.String("bench-json", "", "write the filter-backend ablation (grid + population leg) as JSON to this file; ablation artifact only")
	)
	flag.Parse()

	artifacts := []string{"table1", "table2", "fig7", "fig8", "fig9", "memory", "analysis", "allocation", "ablation"}
	if *only == "scale" {
		// The million-node sweep is not part of the run-everything default;
		// it is requested explicitly.
		artifacts = append(artifacts, "scale")
	}
	if *only != "" {
		found := false
		for _, a := range artifacts {
			if a == *only {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown artifact %q (have %s)", *only, strings.Join(artifacts, ", "))
		}
		artifacts = []string{*only}
	}

	for _, a := range artifacts {
		started := time.Now()
		if err := runArtifact(a, *seed, *quick, *csvDir, *benchOut); err != nil {
			return fmt.Errorf("%s: %w", a, err)
		}
		fmt.Printf("-- %s done in %v --\n\n", a, time.Since(started).Round(time.Millisecond))
	}
	return nil
}

// writeCSV persists a figure's series when a CSV directory is configured.
func writeCSV(dir, file string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csv dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, file))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func runArtifact(name string, seed int64, quick bool, csvDir, benchOut string) error {
	switch name {
	case "table1":
		rows, err := experiments.Table1(seed)
		if err != nil {
			return err
		}
		return experiments.WriteTable1(os.Stdout, rows)

	case "table2":
		return experiments.WriteTable2(os.Stdout, experiments.Table2(4))

	case "fig7":
		f, err := fixture("haggle", seed, quick)
		if err != nil {
			return err
		}
		points, err := experiments.TTLSweep(f, ttls(quick))
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig7.csv", func(w io.Writer) error {
			return experiments.WriteTTLSweepCSV(w, points)
		}); err != nil {
			return err
		}
		return experiments.WriteTTLSweep(os.Stdout,
			fmt.Sprintf("Fig. 7: PUSH vs B-SUB vs PULL on %s", f.Name), points)

	case "fig8":
		f, err := fixture("mit", seed, quick)
		if err != nil {
			return err
		}
		points, err := experiments.TTLSweep(f, ttls(quick))
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig8.csv", func(w io.Writer) error {
			return experiments.WriteTTLSweepCSV(w, points)
		}); err != nil {
			return err
		}
		return experiments.WriteTTLSweep(os.Stdout,
			fmt.Sprintf("Fig. 8: PUSH vs B-SUB vs PULL on %s", f.Name), points)

	case "fig9":
		for _, which := range []string{"haggle", "mit"} {
			f, err := fixture(which, seed, quick)
			if err != nil {
				return err
			}
			ttl := experiments.Fig9TTL
			if quick {
				ttl = 4 * time.Hour
			}
			points, err := experiments.DFSweep(f, dfs(quick), ttl)
			if err != nil {
				return err
			}
			if err := writeCSV(csvDir, "fig9-"+which+".csv", func(w io.Writer) error {
				return experiments.WriteDFSweepCSV(w, points)
			}); err != nil {
				return err
			}
			if err := experiments.WriteDFSweep(os.Stdout,
				fmt.Sprintf("Fig. 9: B-SUB vs decaying factor on %s", f.Name), points); err != nil {
				return err
			}
		}
		return nil

	case "memory":
		m, err := experiments.MemoryComparison()
		if err != nil {
			return err
		}
		return experiments.WriteMemory(os.Stdout, m)

	case "analysis":
		n := workload.NewTrendKeySet().Len()
		fmt.Printf("A1: Eq. 1-3 at the evaluation geometry (m=256, k=4)\n")
		fmt.Printf("keys=%d  FPR=%.4f (paper: 0.04)  fill ratio=%.3f  expected set bits=%.1f\n",
			n, analysis.FPR(256, 4, n), analysis.FillRatio(256, 4, n), analysis.ExpectedSetBits(256, 4, n))
		fmt.Printf("wasted-delivery estimates at FPR=0.04: completely wasted %.4f, partially useful %.4f\n",
			analysis.CompletelyWastedRatio(0.04), analysis.PartiallyUsefulRatio(0.04))
		return nil

	case "allocation":
		points, err := experiments.AllocationSweep([]int{235, 250, 265, 275, 285, 300, 500})
		if err != nil {
			return err
		}
		return experiments.WriteAllocation(os.Stdout, points)

	case "ablation":
		f, err := fixture("mit", seed, quick)
		if err != nil {
			return err
		}
		ttl := 8 * time.Hour
		if quick {
			ttl = 4 * time.Hour
		}
		runs := []struct {
			title string
			fn    func() ([]experiments.AblationResult, error)
		}{
			{"ablation: broker merge operation (Fig. 6 argument)", func() ([]experiments.AblationResult, error) {
				return experiments.AblateMerge(f, ttl)
			}},
			{"ablation: decaying factor (Section VI-A)", func() ([]experiments.AblationResult, error) {
				return experiments.AblateDecay(f, ttl)
			}},
			{"ablation: producer copy limit C", func() ([]experiments.AblationResult, error) {
				return experiments.AblateCopyLimit(f, ttl, []int{1, 3, 8})
			}},
			{"ablation: broker election thresholds (T_l, T_u)", func() ([]experiments.AblationResult, error) {
				return experiments.AblateBrokerThresholds(f, ttl, [][2]int{{1, 2}, {3, 5}, {8, 12}})
			}},
			{"ablation: TCBF geometry (m, k)", func() ([]experiments.AblationResult, error) {
				return experiments.AblateGeometry(f, ttl, [][2]int{{64, 4}, {256, 2}, {256, 4}, {1024, 4}})
			}},
			{"ablation: DF policy (fixed vs online Eq. 5 vs FPR feedback)", func() ([]experiments.AblationResult, error) {
				return experiments.AblateDFPolicy(f, ttl, 0.04)
			}},
			{"ablation: relay-filter partitions (Section VI-D)", func() ([]experiments.AblationResult, error) {
				return experiments.AblateRelayPartitions(f, ttl, []int{1, 2, 4})
			}},
		}
		for i, r := range runs {
			results, err := r.fn()
			if err != nil {
				return err
			}
			if err := writeCSV(csvDir, fmt.Sprintf("ablation-%d.csv", i+1), func(w io.Writer) error {
				return experiments.WriteAblationCSV(w, results)
			}); err != nil {
				return err
			}
			if err := experiments.WriteAblation(os.Stdout, r.title, results); err != nil {
				return err
			}
			fmt.Println()
		}
		return backendAblation(seed, quick, csvDir, benchOut)

	case "scale":
		sizes := experiments.DefaultScaleSizes
		if quick {
			sizes = experiments.QuickScaleSizes
		}
		points, err := experiments.ScaleSweep(sizes, 0, seed)
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "scale.csv", func(w io.Writer) error {
			return experiments.WriteScaleCSV(w, points)
		}); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "scale.json", func(w io.Writer) error {
			return experiments.WriteScaleJSON(w, points)
		}); err != nil {
			return err
		}
		return experiments.WriteScale(os.Stdout,
			"Scale sweep: B-SUB over streamed traces (ROADMAP item 1)", points)
	}
	return fmt.Errorf("unknown artifact %q", name)
}

// backendAblation runs the filter-backend matrix (ISSUE 9): every
// backend over the fig7 and fig9 traces at a fixed TTL, then over the
// streamed 10k-node population, emitting the grid as CSV and — when
// -bench-json is set — the BENCH_PR9.json document.
func backendAblation(seed int64, quick bool, csvDir, benchOut string) error {
	ttl := 8 * time.Hour
	if quick {
		ttl = 4 * time.Hour
	}
	var rows []experiments.BackendTraceRow
	for _, which := range []string{"haggle", "mit"} {
		f, err := fixture(which, seed, quick)
		if err != nil {
			return err
		}
		results, err := experiments.AblateFilterBackends(f, ttl)
		if err != nil {
			return err
		}
		rows = append(rows, experiments.BackendTraceRows(which, ttl, results)...)
		if err := experiments.WriteAblation(os.Stdout,
			fmt.Sprintf("ablation: filter backend on %s (ISSUE 9)", f.Name), results); err != nil {
			return err
		}
		fmt.Println()
	}
	if err := writeCSV(csvDir, "ablation-backends.csv", func(w io.Writer) error {
		return experiments.WriteBackendAblationCSV(w, rows)
	}); err != nil {
		return err
	}

	nodes := 10_000
	if quick {
		nodes = 1_000
	}
	points, err := experiments.BackendScaleSweep(nodes, 0, seed)
	if err != nil {
		return err
	}
	if err := experiments.WriteBackendScale(os.Stdout,
		fmt.Sprintf("ablation: filter backend at %d streamed nodes", nodes), points); err != nil {
		return err
	}
	fmt.Println()

	if benchOut == "" {
		return nil
	}
	f, err := os.Create(benchOut)
	if err != nil {
		return err
	}
	doc := experiments.BackendBench{TraceRows: rows, Scale: points}
	if err := experiments.WriteBackendBenchJSON(f, doc); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func fixture(which string, seed int64, quick bool) (*experiments.Fixture, error) {
	if quick {
		return experiments.NewSmallFixture(seed)
	}
	if which == "mit" {
		return experiments.NewMITFixture(seed)
	}
	return experiments.NewHaggleFixture(seed)
}

func ttls(quick bool) []time.Duration {
	if quick {
		return []time.Duration{30 * time.Minute, 2 * time.Hour, 8 * time.Hour}
	}
	return experiments.DefaultTTLs()
}

func dfs(quick bool) []float64 {
	if quick {
		return []float64{0, 0.5, 2}
	}
	return experiments.DefaultDFs()
}
