// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Benchmarks exercise the exact code paths that regenerate each artifact.
// To keep `go test -bench=.` tractable they run on the 20-node fixture and
// reduced sweeps; the full-scale artifacts (79-node Haggle, 97-node MIT,
// complete axes) are produced by `go run ./cmd/experiments`, which shares
// these code paths, and recorded in EXPERIMENTS.md.
//
// Custom metrics attached to the figure benchmarks (delivery ratio,
// forwardings, FPR) expose the reproduced series directly in benchmark
// output.
package bsub

import (
	"sync/atomic"
	"testing"
	"time"

	"bsub/internal/analysis"
	"bsub/internal/core"
	"bsub/internal/experiments"
	"bsub/internal/livenode"
	"bsub/internal/protocol"
	"bsub/internal/sim"
	"bsub/internal/tcbf"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

func benchFixture(b *testing.B) *experiments.Fixture {
	b.Helper()
	f, err := experiments.NewSmallFixture(1)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkTable1TraceStats regenerates Table I: both synthetic traces and
// their parameters.
func BenchmarkTable1TraceStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("table 1 malformed")
		}
	}
}

// BenchmarkTable2KeyDistribution regenerates Table II: the workload key
// weights.
func BenchmarkTable2KeyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(4)
		if rows[0].Weight < 0.131 || rows[0].Weight > 0.133 {
			b.Fatal("table 2 malformed")
		}
	}
}

// benchTTLSweep runs the Fig. 7/8 pipeline at one representative TTL and
// reports the three series as custom metrics.
func benchTTLSweep(b *testing.B, f *experiments.Fixture) {
	b.Helper()
	var last []experiments.TTLPoint
	for i := 0; i < b.N; i++ {
		points, err := experiments.TTLSweep(f, []time.Duration{2 * time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		last = points
	}
	if len(last) > 0 {
		p := last[0]
		b.ReportMetric(p.Push.DeliveryRatio(), "push-delivery")
		b.ReportMetric(p.BSub.DeliveryRatio(), "bsub-delivery")
		b.ReportMetric(p.Pull.DeliveryRatio(), "pull-delivery")
		b.ReportMetric(p.BSub.ForwardingsPerDelivered(), "bsub-fwd")
	}
}

// BenchmarkFig7HaggleTTLSweep exercises the Fig. 7 pipeline (PUSH vs B-SUB
// vs PULL across TTL) on the bench fixture.
func BenchmarkFig7HaggleTTLSweep(b *testing.B) {
	benchTTLSweep(b, benchFixture(b))
}

// BenchmarkFig8MITTTLSweep exercises the Fig. 8 pipeline. The full MIT
// fixture takes minutes to generate, so the bench shares the small fixture
// with a different seed (the pipeline is identical; only the trace
// differs).
func BenchmarkFig8MITTTLSweep(b *testing.B) {
	f, err := experiments.NewSmallFixture(2)
	if err != nil {
		b.Fatal(err)
	}
	benchTTLSweep(b, f)
}

// BenchmarkFig9DFSweep exercises the Fig. 9 pipeline (B-SUB across the
// decaying factor) and reports the FPR series endpoint.
func BenchmarkFig9DFSweep(b *testing.B) {
	f := benchFixture(b)
	var last []experiments.DFPoint
	for i := 0; i < b.N; i++ {
		points, err := experiments.DFSweep(f, []float64{0, 1}, 4*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		last = points
	}
	if len(last) == 2 {
		b.ReportMetric(last[0].Report.FPR(), "fpr-df0")
		b.ReportMetric(last[1].Report.FPR(), "fpr-df1")
		b.ReportMetric(experiments.TheoreticalWorstFPR(), "fpr-bound")
	}
}

// BenchmarkMemoryEncoding regenerates the M1 comparison: TCBF vs raw-string
// interest storage.
func BenchmarkMemoryEncoding(b *testing.B) {
	var m experiments.MemoryResult
	var err error
	for i := 0; i < b.N; i++ {
		m, err = experiments.MemoryComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.PerKeyTCBFBytes, "tcbf-B/key")
	b.ReportMetric(m.RawBytes/float64(m.Keys), "raw-B/key")
}

// BenchmarkOptimalAllocation regenerates the A2 optimizer sweep.
func BenchmarkOptimalAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AllocationSweep([]int{250, 280, 320, 500}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisFPR regenerates the A1 numbers (Eq. 1–3 at the
// evaluation geometry).
func BenchmarkAnalysisFPR(b *testing.B) {
	var fpr float64
	for i := 0; i < b.N; i++ {
		fpr = analysis.FPR(256, 4, 38)
	}
	b.ReportMetric(fpr, "fpr")
}

// --- Micro-benchmarks: the hot paths behind the figures ---------------------

// BenchmarkProtocolContact measures one B-SUB contact session end to end.
func BenchmarkProtocolContact(b *testing.B) {
	tr, err := tracegen.Generate(tracegen.Small(1))
	if err != nil {
		b.Fatal(err)
	}
	f, err := experiments.NewFixture("bench", tr, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Trace:     f.Trace,
		Interests: f.Interests,
		Messages:  f.Messages,
		TTL:       2 * time.Hour,
		Seed:      1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, core.New(core.DefaultConfig(0.1))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(f.Trace.Contacts)), "contacts/op")
}

// BenchmarkPushFlood measures the flooding baseline on the same fixture,
// the simulator's worst-case load.
func BenchmarkPushFlood(b *testing.B) {
	f := benchFixture(b)
	cfg := sim.Config{
		Trace:     f.Trace,
		Interests: f.Interests,
		Messages:  f.Messages,
		TTL:       2 * time.Hour,
		Seed:      1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, protocol.NewPush()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCBFRoundTrip measures the filter wire path a single contact
// pays: build genuine filter, encode, decode, merge.
func BenchmarkTCBFRoundTrip(b *testing.B) {
	cfg := tcbf.Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 0.1}
	relay := tcbf.MustNew(cfg, 0)
	keys := workload.NewTrendKeySet().Keys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		genuine := tcbf.MustNew(cfg, 0)
		if err := genuine.Insert(keys[i%len(keys)], 0); err != nil {
			b.Fatal(err)
		}
		data, err := genuine.Encode(tcbf.CountersUniform)
		if err != nil {
			b.Fatal(err)
		}
		decoded, err := tcbf.Decode(data, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := relay.AMerge(decoded, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionedTCBF measures the Section VI-D partitioned filter's
// insert + query path.
func BenchmarkPartitionedTCBF(b *testing.B) {
	cfg := tcbf.Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 0.1}
	p := tcbf.MustNewPartitioned(cfg, 4, 0)
	keys := workload.NewTrendKeySet().Keys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if err := p.Insert(k, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Contains(k, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSession measures one full contact session of the prototype
// node over loopback TCP: handshake, election, filter exchange, message
// transfer.
func BenchmarkLiveSession(b *testing.B) {
	var clockNS atomic.Int64
	clockNS.Store(int64(time.Hour))
	clock := func() time.Duration { return time.Duration(clockNS.Load()) }
	mk := func(id uint32) *livenode.Node {
		n, err := livenode.Listen("127.0.0.1:0", livenode.Config{
			ID:       id,
			Protocol: core.DefaultConfig(0.01),
			TTL:      time.Hour,
			Clock:    clock,
		})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	producer := mk(1)
	defer producer.Close()
	consumer := mk(2)
	defer consumer.Close()
	consumer.Subscribe("bench")
	if _, err := producer.Publish([]byte("payload"), "bench"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := producer.Meet(consumer.Addr()); err != nil {
			b.Fatal(err)
		}
	}
}
