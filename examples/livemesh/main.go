// Livemesh: the prototype HUNET the paper names as future work, running
// for real.
//
// Six B-SUB nodes listen on localhost TCP ports. A mobility script walks
// them through a day of simulated contacts (two social circles bridged by
// one commuter); every contact is a real wire session — HELLO, election,
// TCBF exchange, preferential forwarding — over a TCP connection. Watch
// trend posts hop producer -> broker -> subscriber.
//
// Run with:
//
//	go run ./examples/livemesh
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"bsub"
)

const nodes = 6

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// All nodes share a scripted clock so the mesh agrees on decay and
	// TTLs without waiting out a real day.
	var clockNS atomic.Int64
	clockNS.Store(int64(8 * time.Hour)) // the day starts at 08:00
	clock := func() time.Duration { return time.Duration(clockNS.Load()) }
	advance := func(d time.Duration) { clockNS.Add(int64(d)) }

	// The live node runs the full paper protocol, including the Section
	// VI-D partitioned relay filters (two sub-filters per broker here).
	proto := bsub.DefaultProtocolConfig(0.01)
	proto.RelayPartitions = 2

	names := []string{"alice", "bob", "carla", "daniel", "erin", "frank"}
	mesh := make([]*bsub.LiveNode, nodes)
	for i := range mesh {
		i := i
		node, err := bsub.ListenNode("127.0.0.1:0", bsub.LiveNodeConfig{
			ID:       uint32(i + 1),
			Protocol: proto,
			TTL:      8 * time.Hour,
			Clock:    clock,
			OnDeliver: func(d bsub.LiveDelivery) {
				via := "via broker"
				if d.Direct {
					via = "direct"
				}
				fmt.Printf("  %s received %q [%s] (%s)\n",
					names[i], d.Payload, d.Message.Key, via)
			},
		})
		if err != nil {
			return err
		}
		defer node.Close()
		mesh[i] = node
	}

	// Interests (Fig. 1 of the paper, roughly): each person follows one
	// topic.
	subs := map[int]string{
		0: "Thanksgiving", // alice
		1: "Phillies",     // bob
		2: "NewMoon",      // carla
		3: "MichaelJackson",
		4: "NewMoon", // erin shares carla's taste
		5: "Phillies",
	}
	for i, topic := range subs {
		mesh[i].Subscribe(topic)
	}

	// Two circles: {alice,bob,carla} at the office, {daniel,erin,frank} at
	// the gym; bob commutes between them. meet() runs one real TCP contact.
	meet := func(a, b int) {
		if err := mesh[a].Meet(mesh[b].Addr()); err != nil {
			fmt.Printf("  contact %s-%s failed: %v\n", names[a], names[b], err)
		}
	}

	fmt.Println("morning: circles mingle, brokers get elected, interests spread")
	for round := 0; round < 3; round++ {
		meet(0, 1)
		meet(1, 2)
		meet(0, 2)
		meet(3, 4)
		meet(4, 5)
		meet(3, 5)
		advance(20 * time.Minute)
	}
	for i, n := range mesh {
		if n.IsBroker() {
			fmt.Printf("  %s is serving as a broker\n", names[i])
		}
	}

	fmt.Println("\nnoon: alice posts about NewMoon; erin follows it from the other circle")
	if _, err := mesh[0].Publish([]byte("NewMoon premiere tonight!"), "NewMoon"); err != nil {
		return err
	}
	meet(0, 1) // alice -> bob (the commuting broker picks up a copy)
	advance(30 * time.Minute)

	fmt.Println("\nafternoon: bob commutes to the gym circle carrying the post")
	meet(1, 4) // bob -> erin: broker-mediated delivery across circles
	meet(1, 3)
	advance(30 * time.Minute)

	fmt.Println("\nevening: daniel posts for bob's topic; it flows back the same way")
	if _, err := mesh[3].Publish([]byte("Phillies win game 5"), "Phillies"); err != nil {
		return err
	}
	meet(3, 4)
	meet(4, 5) // frank (same circle) gets it directly or via a broker
	meet(1, 3) // bob meets daniel in person: direct delivery
	advance(30 * time.Minute)

	fmt.Println("\ndone: every transfer above crossed a real TCP connection")
	fmt.Println("\nsession counters (per node: completed sessions, frames in/out, bytes in/out, failures):")
	for i, n := range mesh {
		c := n.Stats()
		fmt.Printf("  %-7s %2d sessions, frames %3d/%3d, bytes %5d/%5d, timed-out %d, severed %d, corrupt %d, refunded %d\n",
			names[i], c.Completed, c.FramesIn, c.FramesOut, c.BytesIn, c.BytesOut,
			c.TimedOut, c.Severed, c.Corrupt, c.MsgsRefunded)
	}
	return nil
}
