// Livemesh: the prototype HUNET the paper names as future work, running
// for real — now as autonomous daemons.
//
// Six B-SUB mesh daemons listen on localhost TCP ports. Nobody scripts
// their contacts: a gossip protocol builds the membership table, per-peer
// workers schedule wire sessions — HELLO, election, TCBF exchange,
// preferential forwarding — and published posts flood through elected
// brokers on their own. Then one node is killed to show the failure
// model: the survivors mark it suspect, then dead, and when it comes
// back on a fresh port the gossip rediscovers it and deliveries resume.
//
// Run with:
//
//	go run ./examples/livemesh
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bsub"
)

const nodes = 6

var names = []string{"alice", "bob", "carla", "daniel", "erin", "frank"}

// deliveries records which node received which payload, across restarts.
type deliveries struct {
	mu    sync.Mutex
	byMsg map[string][]string
}

func (d *deliveries) record(who, payload string) {
	d.mu.Lock()
	d.byMsg[payload] = append(d.byMsg[payload], who)
	d.mu.Unlock()
}

func (d *deliveries) got(who, payload string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, w := range d.byMsg[payload] {
		if w == who {
			return true
		}
	}
	return false
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// meshConfig returns the shared fast-paced knobs: gossip every 50ms, a
// full contact with each live peer every 300ms, suspicion after 0.5s of
// silence, death after 1.5s. QueueDepth 1 keeps the per-peer queues tiny
// so flood tokens landing on a busy worker coalesce visibly.
func meshConfig(seeds ...string) bsub.MeshConfig {
	return bsub.MeshConfig{
		GossipInterval:      50 * time.Millisecond,
		ContactInterval:     300 * time.Millisecond,
		SuspectAfter:        500 * time.Millisecond,
		DeadAfter:           1500 * time.Millisecond,
		QueueDepth:          1,
		ReconnectBackoff:    25 * time.Millisecond,
		MaxReconnectBackoff: 250 * time.Millisecond,
		Seeds:               seeds,
	}
}

func run() error {
	proto := bsub.DefaultProtocolConfig(0.01)
	proto.RelayPartitions = 2

	delivered := &deliveries{byMsg: map[string][]string{}}

	// Peer events from every daemon funnel into one printer, so the
	// failure story below narrates itself.
	var printMu sync.Mutex
	var quietEvents atomic.Bool
	onPeerChange := func(who string) func(bsub.MeshPeerEvent) {
		return func(ev bsub.MeshPeerEvent) {
			if quietEvents.Load() {
				return
			}
			printMu.Lock()
			defer printMu.Unlock()
			if ev.Fresh {
				fmt.Printf("  %s discovered %s\n", who, names[ev.Peer.ID-1])
				return
			}
			fmt.Printf("  %s: %s is now %s\n", who, names[ev.Peer.ID-1], ev.To)
		}
	}

	// Interests (Fig. 1 of the paper, roughly): each person follows one
	// topic.
	subs := map[int]string{
		0: "Thanksgiving", // alice
		1: "Phillies",     // bob
		2: "NewMoon",      // carla
		3: "MichaelJackson",
		4: "NewMoon", // erin shares carla's taste
		5: "Phillies",
	}

	start := func(i int, seeds ...string) (*bsub.Mesh, error) {
		who := names[i]
		cfg := meshConfig(seeds...)
		cfg.OnPeerChange = onPeerChange(who)
		cfg.Seed = int64(i + 1)
		m, err := bsub.StartMesh("127.0.0.1:0", bsub.LiveNodeConfig{
			ID:       uint32(i + 1),
			Protocol: proto,
			TTL:      8 * time.Hour,
			OnDeliver: func(d bsub.LiveDelivery) {
				delivered.record(who, string(d.Payload))
				via := "via broker"
				if d.Direct {
					via = "direct"
				}
				printMu.Lock()
				fmt.Printf("  %s received %q [%s] (%s)\n", who, d.Payload, d.Message.Key, via)
				printMu.Unlock()
			},
		}, cfg)
		if err != nil {
			return nil, err
		}
		m.Subscribe(bsub.Key(subs[i]))
		return m, nil
	}

	fmt.Println("boot: six daemons, seeded in a chain; gossip does the rest")
	quietEvents.Store(true) // the discovery burst is noisy; summarize it instead
	mesh := make([]*bsub.Mesh, nodes)
	for i := range mesh {
		var seeds []string
		if i > 0 {
			seeds = append(seeds, mesh[i-1].Addr())
		}
		m, err := start(i, seeds...)
		if err != nil {
			return err
		}
		defer m.Close()
		mesh[i] = m
	}

	if err := waitFor(30*time.Second, "membership convergence", func() bool {
		for _, m := range mesh {
			if len(m.Peers()) != nodes-1 {
				return false
			}
			for _, p := range m.Peers() {
				if p.State != bsub.MeshStateAlive {
					return false
				}
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Printf("  every daemon sees all %d peers alive\n", nodes-1)
	quietEvents.Store(false)

	// Let a few contact rounds run so interests propagate and brokers
	// get elected before the first post.
	time.Sleep(2 * time.Second)
	for i, m := range mesh {
		if m.Node().IsBroker() {
			fmt.Printf("  %s is serving as a broker\n", names[i])
		}
	}

	fmt.Println("\nalice posts about NewMoon; no contacts are scripted — flood and")
	fmt.Println("the contact scheduler carry it to carla and erin on their own")
	post1 := "NewMoon premiere tonight!"
	if _, err := mesh[0].Publish([]byte(post1), "NewMoon"); err != nil {
		return err
	}
	if err := waitFor(60*time.Second, "NewMoon delivery", func() bool {
		return delivered.got("carla", post1) && delivered.got("erin", post1)
	}); err != nil {
		return err
	}

	fmt.Println("\nfrank goes dark (battery died); the mesh notices on its own")
	if err := mesh[5].Close(); err != nil {
		return err
	}
	if err := waitFor(60*time.Second, "failure detection", func() bool {
		for _, m := range mesh[:5] {
			for _, p := range m.Peers() {
				if p.ID == 6 && p.State == bsub.MeshStateAlive {
					return false
				}
			}
		}
		return true
	}); err != nil {
		return err
	}

	fmt.Println("\ndaniel posts for the Phillies fans while frank is away")
	post2 := "Phillies win game 5"
	if _, err := mesh[3].Publish([]byte(post2), "Phillies"); err != nil {
		return err
	}
	if err := waitFor(60*time.Second, "delivery to bob", func() bool {
		return delivered.got("bob", post2)
	}); err != nil {
		return err
	}

	fmt.Println("\nfrank comes back on a new port; gossip rediscovers him and the")
	fmt.Println("undelivered post catches up")
	m, err := start(5, mesh[0].Addr())
	if err != nil {
		return err
	}
	defer m.Close()
	mesh[5] = m
	if err := waitFor(60*time.Second, "catch-up delivery to frank", func() bool {
		return delivered.got("frank", post2)
	}); err != nil {
		return err
	}

	fmt.Println("\ndone: every transfer above crossed a real TCP connection")
	fmt.Println("\nmesh counters (alive/suspect/dead now; lifetime gossip, contacts, failure handling):")
	for i, m := range mesh {
		c := m.Stats()
		n := m.Node().Stats()
		fmt.Printf("  %-7s peers %d/%d/%d, gossip in %3d (sent %3d, answered %3d), contacts %3d, reconnect retries %2d, coalesced %2d, flood tokens %2d, suspected %d, died %d, rejoined %d\n",
			names[i], c.Alive, c.Suspect, c.Dead,
			c.GossipAbsorbed, n.GossipSent, n.GossipAnswered,
			c.Contacts, c.Reconnects, c.QueueCoalesced, c.FloodTokens,
			c.Suspected, c.Died, c.Rejoined)
	}
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "gave up waiting for %s\n", what)
			return fmt.Errorf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}
