// Citybus: using the library on your own mobility model.
//
// The paper evaluates on conference and campus traces; this example shows
// the extension path a downstream user takes: define a custom synthetic
// network (commuters who share buses on a handful of lines), generate it
// with the trace generator, attach a custom interest workload (commuters
// follow their own line's service alerts), and run B-SUB over it.
//
// Run with:
//
//	go run ./examples/citybus
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"bsub"
)

const (
	lines         = 4  // bus lines = communities
	ridersPerLine = 15 // commuters per line
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nodes := lines * ridersPerLine

	// Riders on the same line share buses morning and evening: a strongly
	// community-structured, diurnal contact process. Rider i rides line
	// i % lines, pinned via the explicit community assignment.
	assignment := make([]int, nodes)
	for i := range assignment {
		assignment[i] = i % lines
	}
	tr, err := bsub.GenerateTrace(bsub.TraceGenConfig{
		Name:                "citybus",
		Nodes:               nodes,
		Span:                48 * time.Hour,
		TargetContacts:      9000,
		Communities:         lines,
		CommunityAssignment: assignment,
		CommunityBias:       12, // same-line riders meet an order of magnitude more
		MeanContactDuration: 8 * time.Minute,
		ActivityAlpha:       1.6,
		Diurnal:             true,
		Seed:                3,
	})
	if err != nil {
		return err
	}

	// Custom workload: every rider subscribes to one line's alerts —
	// usually their own line, sometimes a transfer line.
	rng := rand.New(rand.NewSource(3))
	interests := make([]bsub.Key, nodes)
	for i := range interests {
		line := i % lines
		if rng.Float64() < 0.2 {
			line = rng.Intn(lines)
		}
		interests[i] = alertKey(line)
	}

	// Alerts originate from the most central rider of each line (a proxy
	// for the driver's device).
	centrality := tr.Centrality()
	var msgs []bsub.Message
	id := 0
	for line := 0; line < lines; line++ {
		driver := mostCentralOnLine(centrality, line)
		for hour := 1; hour <= 46; hour += 3 {
			msgs = append(msgs, bsub.Message{
				ID:        id,
				Key:       alertKey(line),
				Origin:    driver,
				Size:      90,
				CreatedAt: time.Duration(hour) * time.Hour,
			})
			id++
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].CreatedAt < msgs[j].CreatedAt })
	for i := range msgs {
		msgs[i].ID = i
	}

	stats := tr.Stats()
	fmt.Printf("city bus network: %d riders on %d lines, %d contacts over %v\n",
		stats.Nodes, lines, stats.Contacts, stats.Span.Round(time.Hour))
	fmt.Printf("workload: %d service alerts\n\n", len(msgs))

	const ttl = 5 * time.Hour
	for _, proto := range []bsub.Protocol{
		bsub.NewPush(),
		bsub.NewBSub(bsub.DefaultProtocolConfig(0.03)),
		bsub.NewPull(),
	} {
		report, err := bsub.Run(bsub.SimConfig{
			Trace:     tr,
			Interests: interests,
			Messages:  msgs,
			TTL:       ttl,
			Seed:      3,
		}, proto)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	fmt.Println("\nalerts ride along with commuters; B-SUB's brokers (the most")
	fmt.Println("social riders) bridge lines without flooding every phone.")
	return nil
}

func alertKey(line int) bsub.Key {
	return fmt.Sprintf("line-%d-alerts", line)
}

// mostCentralOnLine picks the line's highest-centrality rider.
func mostCentralOnLine(centrality []float64, line int) int {
	best, bestC := line, -1.0
	for i := line; i < len(centrality); i += lines {
		// Riders are assigned to lines round-robin by index in this model.
		if centrality[i] > bestC {
			best, bestC = i, centrality[i]
		}
	}
	return best
}
