// Trendfeed: the paper's motivating scenario end to end — a Twitter-style
// trend feed over a conference-scale human network (the synthetic Haggle
// Infocom'06 stand-in).
//
// It reproduces a slice of Fig. 7: for a few TTL values, it compares
// B-SUB's delivery ratio, delay, and overhead against the PUSH (flooding)
// and PULL (one-hop) baselines, and reports how much bandwidth B-SUB's
// TCBF control traffic actually used.
//
// Run with:
//
//	go run ./examples/trendfeed          # conference trace, a few minutes
//	go run ./examples/trendfeed -small   # 20-node trace, seconds
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"bsub"
)

func main() {
	small := flag.Bool("small", false, "use the 20-node trace instead of the 79-node conference")
	flag.Parse()
	if err := run(*small); err != nil {
		log.Fatal(err)
	}
}

func run(small bool) error {
	var (
		fixture *bsub.Fixture
		err     error
	)
	if small {
		fixture, err = bsub.NewSmallFixture(7)
	} else {
		fixture, err = bsub.NewHaggleFixture(7)
	}
	if err != nil {
		return err
	}

	stats := fixture.Trace.Stats()
	fmt.Printf("human network: %d attendees, %d Bluetooth contacts over %v\n",
		stats.Nodes, stats.Contacts, stats.Span.Round(time.Hour))
	fmt.Printf("workload: %d trend posts (max 140 B), %d topics\n\n",
		len(fixture.Messages), fixture.Keys.Len())

	ttls := []time.Duration{30 * time.Minute, 2 * time.Hour, 8 * time.Hour}
	for _, ttl := range ttls {
		fmt.Printf("== posts expire after %v ==\n", ttl)
		cfg := fixture.BSubConfig(ttl)
		fmt.Printf("   (Eq. 5 decaying factor: %.4f/min)\n", cfg.DecayPerMinute)
		for _, proto := range []bsub.Protocol{
			bsub.NewPush(),
			bsub.NewBSub(cfg),
			bsub.NewPull(),
		} {
			report, err := bsub.Simulate(fixture, proto, ttl)
			if err != nil {
				return err
			}
			fmt.Printf("%-6s delivery %.3f   delay %-9v  fwd/delivered %6.2f   control %6.1f KiB\n",
				report.Protocol,
				report.DeliveryRatio(),
				report.MeanDelay().Round(time.Second),
				report.ForwardingsPerDelivered(),
				float64(report.ControlBytes)/1024)
		}
		fmt.Println()
	}
	fmt.Println("B-SUB tracks PUSH's delivery at a fraction of its forwardings;")
	fmt.Println("PULL is cheapest but slow and short-sighted — the Fig. 7 story.")
	return nil
}
