// Tuning: the DF–FPR trade-off of Sections VI-B and VI-D, hands-on.
//
// Part 1 sweeps the decaying factor on a live simulation (a miniature of
// Fig. 9) to show the knob the paper gives operators: higher DF means less
// traffic and fewer false positives, at some delivery cost.
//
// Part 2 runs the Eq. 9–10 optimizer: given a device storage budget, how
// many TCBFs should interests be split across, and what joint
// false-positive rate does that buy?
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"bsub"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fixture, err := bsub.NewSmallFixture(11)
	if err != nil {
		return err
	}

	fmt.Println("Part 1: decaying factor sweep (miniature Fig. 9)")
	fmt.Printf("%-10s %10s %12s %8s %8s\n", "DF(/min)", "delivery", "delay", "fwd", "FPR")
	const ttl = 6 * time.Hour
	for _, df := range []float64{0, 0.05, 0.2, 0.5, 1.0, 2.0} {
		report, err := bsub.Simulate(fixture, bsub.NewBSub(bsub.DefaultProtocolConfig(df)), ttl)
		if err != nil {
			return err
		}
		fmt.Printf("%-10.2f %10.3f %12v %8.2f %8.4f\n",
			df, report.DeliveryRatio(), report.MeanDelay().Round(time.Minute),
			report.ForwardingsPerDelivered(), report.FPR())
	}
	fmt.Printf("theoretical worst-case FPR (38 keys, m=256, k=4): %.4f\n\n", bsub.FPR(256, 4, 38))

	fmt.Println("Part 2: optimal TCBF allocation under a storage budget (Eq. 9-10)")
	fmt.Printf("%-12s %8s %14s %12s\n", "budget", "filters", "keys/filter", "joint FPR")
	for _, budgetBytes := range []int{250, 280, 320, 500} {
		alloc, err := bsub.OptimalAllocation(256, 4, 38, float64(budgetBytes)*8)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8d %14.1f %12.6f\n",
			fmt.Sprintf("%d B", budgetBytes), alloc.Filters, alloc.KeysPerFilter, alloc.JointFPR)
	}
	fmt.Println("\nmore filters within the budget -> exponentially lower joint FPR;")
	fmt.Println("the fill-ratio threshold tells the node when to open a new filter.")

	fmt.Println("\nPart 3: letting the system tune itself")
	fmt.Printf("%-28s %10s %8s %8s\n", "policy", "delivery", "fwd", "FPR")
	fixed := fixture.BSubConfig(ttl)
	online := bsub.DefaultProtocolConfig(0)
	online.DFMode = bsub.DFOnlineEq5
	feedback := bsub.DefaultProtocolConfig(0)
	feedback.DFMode = bsub.DFFeedback
	feedback.TargetFPR = 0.04
	for _, p := range []struct {
		name string
		cfg  bsub.ProtocolConfig
	}{
		{name: "fixed Eq. 5 (precomputed)", cfg: fixed},
		{name: "online Eq. 5 (per broker)", cfg: online},
		{name: "FPR feedback (target .04)", cfg: feedback},
	} {
		report, err := bsub.Simulate(fixture, bsub.NewBSub(p.cfg), ttl)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %10.3f %8.2f %8.4f\n",
			p.name, report.DeliveryRatio(), report.ForwardingsPerDelivered(), report.FPR())
	}
	fmt.Println("\nno offline trace analysis needed: brokers can derive the DF from")
	fmt.Println("their own contact history, or steer it by the FPR they observe.")
	return nil
}
