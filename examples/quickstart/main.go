// Quickstart: the smallest useful B-SUB program.
//
// It builds a TCBF by hand to show the data structure's temporal
// behaviour, then runs the full protocol stack (B-SUB vs PUSH vs PULL) on
// a small synthetic human-contact trace and prints the evaluation metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bsub"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: the Temporal Counting Bloom Filter -----------------------
	// A TCBF stores keys with counters that decay over time; merge
	// operations combine filters additively (reinforcement) or by maximum
	// (safe gossip between brokers).
	cfg := bsub.TCBFConfig{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	filter, err := bsub.NewTCBF(cfg, 0)
	if err != nil {
		return err
	}
	if err := filter.Insert("coffee", 0); err != nil {
		return err
	}

	for _, at := range []time.Duration{0, 5 * time.Minute, 11 * time.Minute} {
		ok, err := filter.Contains("coffee", at)
		if err != nil {
			return err
		}
		fmt.Printf("t=%-4v contains(coffee) = %v\n", at, ok)
	}
	fmt.Println("(the interest decayed away after 10 minutes: C=10, DF=1/min)")

	// --- Part 2: the full pub-sub system -----------------------------------
	// A 20-node, 12-hour synthetic human network with the paper's
	// Twitter-Trend workload: every node subscribes to one topic and
	// publishes at a rate proportional to its social activity.
	fixture, err := bsub.NewSmallFixture(42)
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace: %d nodes, %d contacts, %d messages\n",
		fixture.Trace.Nodes, len(fixture.Trace.Contacts), len(fixture.Messages))

	const ttl = 4 * time.Hour
	for _, proto := range []bsub.Protocol{
		bsub.NewPush(),
		bsub.NewBSub(fixture.BSubConfig(ttl)),
		bsub.NewPull(),
	} {
		report, err := bsub.Simulate(fixture, proto, ttl)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	return nil
}
