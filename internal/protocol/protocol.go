// Package protocol implements the two baselines B-SUB is evaluated
// against in Section VII:
//
//   - PUSH: epidemic flooding — "a node replicates an event it stores to
//     every node it encounters that has not received a copy". Its delivery
//     ratio and delay are the best achievable; its overhead is the worst.
//   - PULL: one-hop interest pulling — "a node only collects messages that
//     it is interested in from its directly encountered neighbors". Its
//     overhead is minimal (one forwarding per delivery) but delivery ratio
//     and delay suffer.
//
// Both keep strictly per-node state — stores indexed by node, duplicate
// tracking keyed by the receiving node — so they run unsynchronized under
// the sharded simulator: contacts executed concurrently never share a
// node, hence never share any of this state.
package protocol

import (
	"math/rand"

	"bsub/internal/msgstore"
	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// matches reports whether any of the message's keys is in node n's
// interest set (multi-key extension; reduces to equality for the paper's
// one-key workload).
func matches(pop sim.Population, m *workload.Message, n trace.NodeID) bool {
	for _, want := range pop.InterestSet(n) {
		for _, k := range m.MatchKeys() {
			if k == want {
				return true
			}
		}
	}
	return false
}

// Push is the epidemic flooding baseline.
type Push struct {
	stores []*msgstore.Store
}

var _ sim.Protocol = (*Push)(nil)

// NewPush returns a PUSH instance.
func NewPush() *Push { return &Push{} }

// Name implements sim.Protocol.
func (p *Push) Name() string { return "PUSH" }

// Init implements sim.Protocol.
func (p *Push) Init(pop sim.Population, _ *rand.Rand) error {
	p.stores = make([]*msgstore.Store, pop.Nodes())
	for i := range p.stores {
		p.stores[i] = msgstore.New()
	}
	return nil
}

// OnMessage stores the new message at its origin.
func (p *Push) OnMessage(env sim.Env, msg workload.Message) {
	p.stores[msg.Origin].Add(msg, msg.CreatedAt+env.TTL(), 0)
}

// OnContact replicates every message each side stores to the other, budget
// permitting, and delivers to interested receivers.
func (p *Push) OnContact(env sim.Env, a, b trace.NodeID, budget *sim.Budget) {
	p.replicate(env, a, b, budget)
	p.replicate(env, b, a, budget)
}

func (p *Push) replicate(env sim.Env, from, to trace.NodeID, budget *sim.Budget) {
	now := env.Now()
	src, dst := p.stores[from], p.stores[to]
	for _, m := range src.Live(now) {
		if dst.Has(m.ID) {
			continue
		}
		if !budget.Spend(m.Size) {
			return
		}
		m := m
		dst.Add(m, m.CreatedAt+env.TTL(), 0)
		env.RecordForwarding(&m)
		if matches(env, &m, to) {
			env.Deliver(&m, to)
		}
	}
}

// Pull is the one-hop interest-pulling baseline.
type Pull struct {
	stores []*msgstore.Store
	// sent tracks which (message, receiver) transfers already happened so
	// a producer does not repeat a transfer to the same consumer. It is
	// keyed by the receiving node, which makes it per-node state: only a
	// contact involving that node can read or write its map.
	sent []map[int]struct{}
}

var _ sim.Protocol = (*Pull)(nil)

// NewPull returns a PULL instance.
func NewPull() *Pull { return &Pull{} }

// Name implements sim.Protocol.
func (p *Pull) Name() string { return "PULL" }

// Init implements sim.Protocol.
func (p *Pull) Init(pop sim.Population, _ *rand.Rand) error {
	p.stores = make([]*msgstore.Store, pop.Nodes())
	for i := range p.stores {
		p.stores[i] = msgstore.New()
	}
	p.sent = make([]map[int]struct{}, pop.Nodes())
	return nil
}

// OnMessage stores the new message at its producer; in PULL only producers
// hold messages.
func (p *Pull) OnMessage(env sim.Env, msg workload.Message) {
	p.stores[msg.Origin].Add(msg, msg.CreatedAt+env.TTL(), 0)
}

// OnContact lets each side pull the other's matching messages.
func (p *Pull) OnContact(env sim.Env, a, b trace.NodeID, budget *sim.Budget) {
	p.pull(env, a, b, budget)
	p.pull(env, b, a, budget)
}

// pull transfers from's stored messages that match to's interests.
func (p *Pull) pull(env sim.Env, to, from trace.NodeID, budget *sim.Budget) {
	now := env.Now()
	for _, m := range p.stores[from].Live(now) {
		m := m
		if !matches(env, &m, to) {
			continue
		}
		if _, dup := p.sent[to][m.ID]; dup {
			continue
		}
		if !budget.Spend(m.Size) {
			return
		}
		if p.sent[to] == nil {
			p.sent[to] = make(map[int]struct{})
		}
		p.sent[to][m.ID] = struct{}{}
		env.RecordForwarding(&m)
		env.Deliver(&m, to)
	}
}
