// Package protocol implements the two baselines B-SUB is evaluated
// against in Section VII:
//
//   - PUSH: epidemic flooding — "a node replicates an event it stores to
//     every node it encounters that has not received a copy". Its delivery
//     ratio and delay are the best achievable; its overhead is the worst.
//   - PULL: one-hop interest pulling — "a node only collects messages that
//     it is interested in from its directly encountered neighbors". Its
//     overhead is minimal (one forwarding per delivery) but delivery ratio
//     and delay suffer.
package protocol

import (
	"math/rand"

	"bsub/internal/msgstore"
	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// matches reports whether any of the message's keys is in node n's
// interest set (multi-key extension; reduces to equality for the paper's
// one-key workload).
func matches(env sim.Env, m *workload.Message, n trace.NodeID) bool {
	for _, want := range env.InterestSet(n) {
		for _, k := range m.MatchKeys() {
			if k == want {
				return true
			}
		}
	}
	return false
}

// Push is the epidemic flooding baseline.
type Push struct {
	env    sim.Env
	stores []*msgstore.Store
}

var _ sim.Protocol = (*Push)(nil)

// NewPush returns a PUSH instance.
func NewPush() *Push { return &Push{} }

// Name implements sim.Protocol.
func (p *Push) Name() string { return "PUSH" }

// Init implements sim.Protocol.
func (p *Push) Init(env sim.Env, _ *rand.Rand) error {
	p.env = env
	p.stores = make([]*msgstore.Store, env.Nodes())
	for i := range p.stores {
		p.stores[i] = msgstore.New()
	}
	return nil
}

// OnMessage stores the new message at its origin.
func (p *Push) OnMessage(msg workload.Message) {
	p.stores[msg.Origin].Add(msg, msg.CreatedAt+p.env.TTL(), 0)
}

// OnContact replicates every message each side stores to the other, budget
// permitting, and delivers to interested receivers.
func (p *Push) OnContact(a, b trace.NodeID, budget *sim.Budget) {
	p.replicate(a, b, budget)
	p.replicate(b, a, budget)
}

func (p *Push) replicate(from, to trace.NodeID, budget *sim.Budget) {
	now := p.env.Now()
	src, dst := p.stores[from], p.stores[to]
	for _, m := range src.Live(now) {
		if dst.Has(m.ID) {
			continue
		}
		if !budget.Spend(m.Size) {
			return
		}
		m := m
		dst.Add(m, m.CreatedAt+p.env.TTL(), 0)
		p.env.RecordForwarding(&m)
		if matches(p.env, &m, to) {
			p.env.Deliver(&m, to)
		}
	}
}

// Pull is the one-hop interest-pulling baseline.
type Pull struct {
	env    sim.Env
	stores []*msgstore.Store
	// sent tracks which (message, node) transfers already happened so a
	// producer does not repeat a transfer to the same consumer.
	sent map[int]map[trace.NodeID]struct{}
}

var _ sim.Protocol = (*Pull)(nil)

// NewPull returns a PULL instance.
func NewPull() *Pull { return &Pull{} }

// Name implements sim.Protocol.
func (p *Pull) Name() string { return "PULL" }

// Init implements sim.Protocol.
func (p *Pull) Init(env sim.Env, _ *rand.Rand) error {
	p.env = env
	p.stores = make([]*msgstore.Store, env.Nodes())
	for i := range p.stores {
		p.stores[i] = msgstore.New()
	}
	p.sent = make(map[int]map[trace.NodeID]struct{})
	return nil
}

// OnMessage stores the new message at its producer; in PULL only producers
// hold messages.
func (p *Pull) OnMessage(msg workload.Message) {
	p.stores[msg.Origin].Add(msg, msg.CreatedAt+p.env.TTL(), 0)
}

// OnContact lets each side pull the other's matching messages.
func (p *Pull) OnContact(a, b trace.NodeID, budget *sim.Budget) {
	p.pull(a, b, budget)
	p.pull(b, a, budget)
}

// pull transfers from's stored messages that match to's interests.
func (p *Pull) pull(to, from trace.NodeID, budget *sim.Budget) {
	now := p.env.Now()
	for _, m := range p.stores[from].Live(now) {
		m := m
		if !matches(p.env, &m, to) {
			continue
		}
		if _, dup := p.sent[m.ID][to]; dup {
			continue
		}
		if !budget.Spend(m.Size) {
			return
		}
		if p.sent[m.ID] == nil {
			p.sent[m.ID] = make(map[trace.NodeID]struct{})
		}
		p.sent[m.ID][to] = struct{}{}
		p.env.RecordForwarding(&m)
		p.env.Deliver(&m, to)
	}
}
