package protocol

import (
	"math/rand"
	"testing"
	"time"

	"bsub/internal/metrics"
	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

// lineTrace builds a 4-node chain: 0-1, 1-2, 2-3 meeting in sequence, then
// repeating once more. Multi-hop protocols can cross it; one-hop cannot.
func lineTrace(t *testing.T) *trace.Trace {
	t.Helper()
	mk := func(a, b int, startMin int) trace.Contact {
		return trace.Contact{
			A:     trace.NodeID(a),
			B:     trace.NodeID(b),
			Start: time.Duration(startMin) * time.Minute,
			End:   time.Duration(startMin+2) * time.Minute,
		}
	}
	tr, err := trace.New("line", 4, []trace.Contact{
		mk(0, 1, 10), mk(1, 2, 20), mk(2, 3, 30),
		mk(0, 1, 40), mk(1, 2, 50), mk(2, 3, 60),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func lineConfig(t *testing.T) sim.Config {
	return sim.Config{
		Trace:     lineTrace(t),
		Interests: []workload.Key{"w", "x", "y", "z"},
		Messages: []workload.Message{
			// Node 0 produces a message for node 3's interest "z": only a
			// multi-hop protocol can deliver it.
			{ID: 0, Key: "z", Origin: 0, Size: 100, CreatedAt: 5 * time.Minute},
			// Node 2 produces a message for its neighbour 3: one hop.
			{ID: 1, Key: "z", Origin: 2, Size: 100, CreatedAt: 25 * time.Minute},
		},
		TTL:  2 * time.Hour,
		Seed: 1,
	}
}

func TestPushDeliversMultiHop(t *testing.T) {
	rep, err := sim.Run(lineConfig(t), NewPush())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 2 {
		t.Errorf("PUSH delivered %d/2 pairs: %s", rep.Delivered, rep)
	}
	if rep.FalseDeliveries != 0 {
		t.Errorf("PUSH made %d false deliveries", rep.FalseDeliveries)
	}
	// Flooding a 4-node chain costs more forwardings than deliveries.
	if rep.Forwardings <= rep.Delivered {
		t.Errorf("PUSH forwardings %d suspiciously low", rep.Forwardings)
	}
}

func TestPullOnlyOneHop(t *testing.T) {
	rep, err := sim.Run(lineConfig(t), NewPull())
	if err != nil {
		t.Fatal(err)
	}
	// Message 0 (0 -> 3) is out of PULL's reach; message 1 (2 -> 3) is one
	// hop and delivered.
	if rep.Delivered != 1 {
		t.Errorf("PULL delivered %d pairs, want exactly 1: %s", rep.Delivered, rep)
	}
	if rep.Forwardings != 1 {
		t.Errorf("PULL forwardings = %d, want 1 (one per delivery)", rep.Forwardings)
	}
}

func TestPushRespectsTTL(t *testing.T) {
	cfg := lineConfig(t)
	cfg.TTL = 10 * time.Minute // message 0 dies before the 1-2 contact at 20m
	rep, err := sim.Run(cfg, NewPush())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []int{rep.Delivered} {
		if pair > 1 {
			t.Errorf("PUSH delivered expired message: %s", rep)
		}
	}
}

func TestPushRespectsBandwidth(t *testing.T) {
	cfg := lineConfig(t)
	cfg.BandwidthBps = 1 // effectively zero: nothing fits
	rep, err := sim.Run(cfg, NewPush())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 || rep.Forwardings != 0 {
		t.Errorf("PUSH moved data with no bandwidth: %s", rep)
	}
}

func TestPullNoDuplicateTransfers(t *testing.T) {
	// Contacts 0-1 repeat; PULL must not re-send (and re-count) the same
	// message to the same consumer.
	tr, err := trace.New("rep", 2, []trace.Contact{
		{A: 0, B: 1, Start: 10 * time.Minute, End: 12 * time.Minute},
		{A: 0, B: 1, Start: 20 * time.Minute, End: 22 * time.Minute},
		{A: 0, B: 1, Start: 30 * time.Minute, End: 32 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(sim.Config{
		Trace:     tr,
		Interests: []workload.Key{"a", "b"},
		Messages:  []workload.Message{{ID: 0, Key: "b", Origin: 0, Size: 10, CreatedAt: time.Minute}},
		TTL:       time.Hour,
		Seed:      1,
	}, NewPull())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Forwardings != 1 {
		t.Errorf("PULL re-sent a delivered message: %d forwardings", rep.Forwardings)
	}
}

// Integration: on a realistic small trace, PUSH must dominate PULL on
// delivery ratio and PULL must have the lowest overhead — the Fig. 7
// ordering.
func TestBaselineOrderingOnSyntheticTrace(t *testing.T) {
	tr, err := tracegen.Generate(tracegen.Small(21))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(21))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
	cfg := sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages:  msgs,
		TTL:       4 * time.Hour,
		Seed:      21,
	}
	push, err := sim.Run(cfg, NewPush())
	if err != nil {
		t.Fatal(err)
	}
	pull, err := sim.Run(cfg, NewPull())
	if err != nil {
		t.Fatal(err)
	}
	if push.Delivered == 0 {
		t.Fatal("PUSH delivered nothing on a dense 12h trace")
	}
	if push.DeliveryRatio() < pull.DeliveryRatio() {
		t.Errorf("PUSH delivery %.3f below PULL %.3f", push.DeliveryRatio(), pull.DeliveryRatio())
	}
	if push.ForwardingsPerDelivered() <= pull.ForwardingsPerDelivered() {
		t.Errorf("PUSH overhead %.2f not above PULL %.2f",
			push.ForwardingsPerDelivered(), pull.ForwardingsPerDelivered())
	}
	assertSane(t, push)
	assertSane(t, pull)
}

func assertSane(t *testing.T, r metrics.Report) {
	t.Helper()
	if ratio := r.DeliveryRatio(); ratio < 0 || ratio > 1 {
		t.Errorf("%s: delivery ratio %g out of [0,1]", r.Protocol, ratio)
	}
	if r.MeanDelay() < 0 {
		t.Errorf("%s: negative delay", r.Protocol)
	}
}
