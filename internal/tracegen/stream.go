package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bsub/internal/trace"
	"bsub/internal/xrand"
)

// maxLinkedPairs caps the linked-pair graph a Stream will instantiate.
// Memory is O(linked pairs) (~56 bytes each), so the cap bounds setup to a
// few GB; configurations that exceed it (huge fully-connected populations)
// need a sparser CrossLinkProb or smaller communities.
const maxLinkedPairs = 1 << 27

// minContactDuration floors the exponential contact-length draw; Bluetooth
// loggers cannot record contacts shorter than their scan interval.
const minContactDuration = 10 * time.Second

// crossSalt decorrelates the cross-link sampling stream from the per-pair
// contact streams derived from the same root seed.
const crossSalt = 0xb5ad4eceda1ce2a9

// pairSeed derives the deterministic, order-independent RNG for pair (a, b)
// from the root seed; a pair's contact sequence does not depend on when its
// stream is instantiated or what other pairs exist.
func pairSeed(seed int64, a, b int32) xrand.PRNG {
	return xrand.New(uint64(seed) ^ (uint64(uint32(a))<<32 | uint64(uint32(b))))
}

// pairStream is one linked pair's lazily evaluated Poisson contact process:
// the buffered next contact [start, end), the candidate-arrival clock t (in
// hours), the previous emitted contact's end (pairs cannot overlap
// themselves), the pair's own generator, and its calibrated peak rate.
type pairStream struct {
	start, end time.Duration
	prevEnd    time.Duration
	t          float64
	rng        xrand.PRNG
	rate       float64 // contacts per hour at peak activity
	a, b       int32
}

// advance draws candidate arrivals until one is accepted (diurnal thinning,
// no self-overlap) or the span is exhausted, buffering the accepted contact
// in start/end. Durations are drawn eagerly with acceptance so the heap
// comparator below is total.
//
//bsub:hotpath
func (p *pairStream) advance(s *Stream) bool {
	for {
		p.t += p.rng.Exp() / p.rate
		if p.t >= s.limitHours {
			return false
		}
		if s.diurnal && p.rng.Float64() >= diurnalActivity(p.t) {
			continue
		}
		start := time.Duration(p.t * float64(time.Hour))
		if start <= p.prevEnd {
			continue // pairs cannot be in two simultaneous contacts
		}
		d := time.Duration(p.rng.Exp() * s.meanDur)
		if d < minContactDuration {
			d = minContactDuration
		}
		p.start, p.end = start, start+d
		p.prevEnd = p.end
		return true
	}
}

// Stream produces a synthetic trace's contacts one at a time in the exact
// order trace.New sorts into — (Start, End, A, B) ascending — without ever
// materializing the schedule. It holds one pairStream per *linked* pair
// (same-community pairs plus the sparse sampled cross links) merged through
// a binary heap keyed on each pair's buffered next contact, so memory is
// O(linked pairs) and per-contact cost is O(log linked pairs).
type Stream struct {
	cfg        Config
	limitHours float64
	meanDur    float64 // MeanContactDuration in time.Duration units
	diurnal    bool
	pairs      []pairStream
	heap       []int32   // indices into pairs, min-heap on buffered contact
	rates      []float64 // lazily computed by ActivityRates
	emitted    int
}

var _ trace.Source = (*Stream)(nil)

// NewStream validates cfg and instantiates the linked-pair graph. The
// weight and community draws reuse the same root-seeded math/rand stream
// the materializing generator always used; per-pair contact randomness
// comes from derived compact generators (see pairSeed).
func NewStream(cfg Config) (*Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := activityWeights(rng, cfg.Nodes, cfg.ActivityAlpha)
	community := cfg.CommunityAssignment
	if community == nil {
		community = assignCommunities(rng, cfg.Nodes, cfg.Communities)
	}

	comms := cfg.Communities
	if comms < 1 {
		comms = 1
	}
	members := make([][]int32, comms)
	for i, c := range community {
		members[c] = append(members[c], int32(i))
	}

	crossLink := cfg.CrossLinkProb
	if crossLink == 0 {
		crossLink = 1 // legacy meaning: fully connected
	}

	// Guard the linked-pair budget before enumerating anything.
	var sameLinks int64
	for _, m := range members {
		sameLinks += int64(len(m)) * int64(len(m)-1) / 2
	}
	totalPairs := int64(cfg.Nodes) * int64(cfg.Nodes-1) / 2
	expLinks := sameLinks + int64(crossLink*float64(totalPairs-sameLinks))
	if expLinks > maxLinkedPairs {
		return nil, fmt.Errorf("tracegen: ~%d linked pairs exceeds the %d cap; lower CrossLinkProb or use more, smaller communities", expLinks, maxLinkedPairs)
	}

	s := &Stream{
		cfg:        cfg,
		limitHours: cfg.Span.Hours(),
		meanDur:    float64(cfg.MeanContactDuration),
		diurnal:    cfg.Diurnal,
		pairs:      make([]pairStream, 0, expLinks),
	}

	shapeSum := 0.0
	addPair := func(a, b int32, same bool) {
		sh := weights[a] * weights[b]
		if same {
			sh *= cfg.CommunityBias
		}
		// rate temporarily holds the uncalibrated shape.
		s.pairs = append(s.pairs, pairStream{a: a, b: b, rate: sh})
		shapeSum += sh
	}

	// Same-community pairs are always linked. Member lists are built in
	// node order, so m is ascending and a < b holds.
	for _, m := range members {
		for x := 0; x < len(m); x++ {
			for y := x + 1; y < len(m); y++ {
				addPair(m[x], m[y], true)
			}
		}
	}

	if crossLink >= 1 {
		for i := 0; i < cfg.Nodes; i++ {
			for j := i + 1; j < cfg.Nodes; j++ {
				if community[i] != community[j] {
					addPair(int32(i), int32(j), false)
				}
			}
		}
	} else {
		// Sample each cross-community pair independently with probability
		// crossLink by jumping geometric gaps through the triangular pair
		// index space: O(links) work instead of O(n²) coin flips, and
		// exactly the same per-pair inclusion law.
		crossRng := xrand.New(uint64(cfg.Seed) ^ crossSalt)
		lnq := math.Log1p(-crossLink)
		k := int64(-1)
		for {
			gap := math.Log(1 - crossRng.Float64()) / lnq
			if gap >= float64(totalPairs-k) {
				break // jumped past the last pair
			}
			k += 1 + int64(gap)
			if k >= totalPairs {
				break
			}
			i, j := pairAt(int64(cfg.Nodes), k)
			if community[i] == community[j] {
				continue // already linked unconditionally
			}
			addPair(int32(i), int32(j), false)
		}
	}

	if len(s.pairs) == 0 {
		return nil, fmt.Errorf("tracegen: configuration produced no linked pairs")
	}

	// Calibrate the base rate so the expected accepted contact count hits
	// the target (same law as the materializing generator), then start
	// every pair stream and heapify the ones with a contact inside the span.
	meanAct := 1.0
	if cfg.Diurnal {
		meanAct = meanDiurnalActivity()
	}
	base := float64(cfg.TargetContacts) / (shapeSum * s.limitHours * meanAct)
	s.heap = make([]int32, 0, len(s.pairs))
	for idx := range s.pairs {
		p := &s.pairs[idx]
		p.rate *= base
		p.rng = pairSeed(cfg.Seed, p.a, p.b)
		p.prevEnd = -1
		if p.rate > 0 && p.advance(s) {
			s.heap = append(s.heap, int32(idx))
		}
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	return s, nil
}

// Nodes returns the population size.
func (s *Stream) Nodes() int { return s.cfg.Nodes }

// Links returns the number of linked pairs the stream instantiated — the
// quantity generation memory is proportional to.
func (s *Stream) Links() int { return len(s.pairs) }

// Emitted returns the number of contacts produced so far.
func (s *Stream) Emitted() int { return s.emitted }

// ActivityRates returns each node's expected contact rate (contacts per
// hour at peak activity, summed over its linked pairs) — the scale
// workload's stand-in for trace centrality, available without materializing
// a single contact.
func (s *Stream) ActivityRates() []float64 {
	if s.rates == nil {
		s.rates = make([]float64, s.cfg.Nodes)
		for i := range s.pairs {
			p := &s.pairs[i]
			s.rates[p.a] += p.rate
			s.rates[p.b] += p.rate
		}
	}
	return s.rates
}

// Next pops the earliest buffered contact, advances that pair's stream, and
// restores the heap. Allocation-free.
//
//bsub:hotpath
func (s *Stream) Next() (trace.Contact, bool) {
	if len(s.heap) == 0 {
		return trace.Contact{}, false
	}
	top := s.heap[0]
	p := &s.pairs[top]
	c := trace.Contact{A: trace.NodeID(p.a), B: trace.NodeID(p.b), Start: p.start, End: p.end}
	if p.advance(s) {
		s.siftDown(0)
	} else {
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		if last > 0 {
			s.siftDown(0)
		}
	}
	s.emitted++
	return c, true
}

// less orders heap entries by their buffered contact: (Start, End, A, B),
// the same total order trace.New sorts materialized traces into. Distinct
// pairs differ in (A, B), so the order is total.
//
//bsub:hotpath
func (s *Stream) less(x, y int32) bool {
	px, py := &s.pairs[x], &s.pairs[y]
	if px.start != py.start {
		return px.start < py.start
	}
	if px.end != py.end {
		return px.end < py.end
	}
	if px.a != py.a {
		return px.a < py.a
	}
	return px.b < py.b
}

//bsub:hotpath
func (s *Stream) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(s.heap) {
			return
		}
		least := l
		if r := l + 1; r < len(s.heap) && s.less(s.heap[r], s.heap[l]) {
			least = r
		}
		if !s.less(s.heap[least], s.heap[i]) {
			return
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		i = least
	}
}

// pairAt maps a triangular pair index k in [0, n(n-1)/2) to the pair
// (i, j), i < j, in lexicographic order. Row i occupies indices
// [rowStart(i), rowStart(i+1)). The float inversion is corrected with
// integer comparisons, so boundary precision cannot misplace a pair.
func pairAt(n, k int64) (int64, int64) {
	fi := math.Floor((float64(2*n-1) - math.Sqrt(float64((2*n-1)*(2*n-1)-8*k))) / 2)
	i := int64(fi)
	if i < 0 {
		i = 0
	}
	for i > 0 && rowStart(n, i) > k {
		i--
	}
	for rowStart(n, i+1) <= k {
		i++
	}
	return i, i + 1 + (k - rowStart(n, i))
}

func rowStart(n, i int64) int64 { return i * (2*n - 1 - i) / 2 }
