package tracegen

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestGenerateValidation(t *testing.T) {
	base := Small(1)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "one node", mutate: func(c *Config) { c.Nodes = 1 }},
		{name: "zero span", mutate: func(c *Config) { c.Span = 0 }},
		{name: "zero target", mutate: func(c *Config) { c.TargetContacts = 0 }},
		{name: "bias below one", mutate: func(c *Config) { c.CommunityBias = 0.5 }},
		{name: "zero duration", mutate: func(c *Config) { c.MeanContactDuration = 0 }},
		{name: "zero alpha", mutate: func(c *Config) { c.ActivityAlpha = 0 }},
		{name: "negative communities", mutate: func(c *Config) { c.Communities = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatalf("contact counts differ: %d vs %d", len(a.Contacts), len(b.Contacts))
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs: %+v vs %+v", i, a.Contacts[i], b.Contacts[i])
		}
	}
	c, err := Generate(Small(43))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contacts) == len(c.Contacts) {
		same := true
		for i := range a.Contacts {
			if a.Contacts[i] != c.Contacts[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateHitsTarget(t *testing.T) {
	cfg := Small(7)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(tr.Contacts))
	want := float64(cfg.TargetContacts)
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("generated %d contacts, target %d (off by > 25%%)", len(tr.Contacts), cfg.TargetContacts)
	}
}

func TestGenerateStructuralInvariants(t *testing.T) {
	tr, err := Generate(Small(11))
	if err != nil {
		t.Fatal(err)
	}
	// trace.New already validates; double-check pair non-overlap, which is
	// tracegen's own invariant.
	type pairKey struct{ a, b int }
	lastEnd := make(map[pairKey]time.Duration)
	byPair := make(map[pairKey][]int)
	for i, c := range tr.Contacts {
		k := pairKey{int(c.A), int(c.B)}
		if c.A > c.B {
			k = pairKey{int(c.B), int(c.A)}
		}
		byPair[k] = append(byPair[k], i)
		_ = lastEnd
	}
	for k, idxs := range byPair {
		sort.Slice(idxs, func(x, y int) bool {
			return tr.Contacts[idxs[x]].Start < tr.Contacts[idxs[y]].Start
		})
		for x := 1; x < len(idxs); x++ {
			prev, cur := tr.Contacts[idxs[x-1]], tr.Contacts[idxs[x]]
			if cur.Start <= prev.End {
				t.Fatalf("pair %v has overlapping contacts: %v..%v then %v..%v",
					k, prev.Start, prev.End, cur.Start, cur.End)
			}
		}
	}
}

func TestGenerateSkewedActivity(t *testing.T) {
	// The social-activity tail must be heavy enough that the busiest decile
	// of nodes sees several times the contacts of the quietest decile —
	// that skew is what broker election exploits.
	tr, err := Generate(Small(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.ContactCounts()
	sort.Ints(counts)
	lowDecile := counts[len(counts)/10]
	highDecile := counts[len(counts)-1-len(counts)/10]
	if highDecile < 2*lowDecile {
		t.Errorf("activity skew too flat: p10=%d p90=%d", lowDecile, highDecile)
	}
}

func TestHagglePreset(t *testing.T) {
	if testing.Short() {
		t.Skip("full Haggle generation in -short mode")
	}
	cfg := HaggleInfocom06(1)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Nodes != 79 {
		t.Errorf("nodes = %d, want 79", s.Nodes)
	}
	if math.Abs(float64(s.Contacts)-67360)/67360 > 0.15 {
		t.Errorf("contacts = %d, want within 15%% of 67360", s.Contacts)
	}
	if s.Span > 76*time.Hour {
		t.Errorf("span = %v, want about 3 days", s.Span)
	}
}

func TestMITPresetAndBusiestWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("full MIT generation in -short mode")
	}
	tr, err := Generate(MITRealityFull(1))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Nodes != 97 {
		t.Errorf("nodes = %d, want 97", s.Nodes)
	}
	if math.Abs(float64(s.Contacts)-54667)/54667 > 0.15 {
		t.Errorf("contacts = %d, want within 15%% of 54667", s.Contacts)
	}

	win, err := BusiestWindow(tr, 72*time.Hour, "mit-3day")
	if err != nil {
		t.Fatal(err)
	}
	if win.Span() > 72*time.Hour+12*time.Hour {
		t.Errorf("window span %v exceeds 3 days (+duration tail)", win.Span())
	}
	// The busy window must be denser than the trace average.
	avgPer3Days := float64(s.Contacts) / (s.Span.Hours() / 72)
	if float64(len(win.Contacts)) < avgPer3Days {
		t.Errorf("busiest window has %d contacts, below the 3-day average %.0f",
			len(win.Contacts), avgPer3Days)
	}
	// And sparser than Haggle, per the paper's qualitative comparison.
	if len(win.Contacts) > 40000 {
		t.Errorf("MIT 3-day window unexpectedly dense: %d contacts", len(win.Contacts))
	}
}

func TestBusiestWindowValidation(t *testing.T) {
	tr, err := Generate(Small(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BusiestWindow(tr, 0, "x"); err == nil {
		t.Error("zero window accepted")
	}
	win, err := BusiestWindow(tr, time.Hour, "hour")
	if err != nil {
		t.Fatal(err)
	}
	if win.Contacts[0].Start < 0 {
		t.Error("window not rebased")
	}
}

func TestDiurnalProfile(t *testing.T) {
	if diurnalActivity(3) != nightActivity { // 3 AM
		t.Error("3 AM should be night")
	}
	if diurnalActivity(12) != 1 { // noon
		t.Error("noon should be day")
	}
	if diurnalActivity(23) != nightActivity {
		t.Error("11 PM should be night")
	}
	if diurnalActivity(26) != nightActivity { // 2 AM next day
		t.Error("2 AM (day 2) should be night")
	}
	mean := meanDiurnalActivity()
	if mean <= nightActivity || mean >= 1 {
		t.Errorf("mean activity %g out of (%g, 1)", mean, nightActivity)
	}
}

func TestDiurnalTraceIsQuietAtNight(t *testing.T) {
	cfg := Small(9)
	cfg.Diurnal = true
	cfg.Span = 48 * time.Hour
	cfg.TargetContacts = 4000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	night, day := 0, 0
	for _, c := range tr.Contacts {
		hod := math.Mod(c.Start.Hours(), 24)
		if hod >= nightStartHour || hod < nightEndHour {
			night++
		} else {
			day++
		}
	}
	// Night covers 10/24 of the day at 15% intensity; expect day >> night.
	if night*3 > day {
		t.Errorf("night contacts %d not well below day contacts %d", night, day)
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := Small(1)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCrossLinkSparsity(t *testing.T) {
	// The Haggle preset must produce a sparse pair graph (most
	// cross-community pairs never meet) — the property that separates
	// multi-hop B-SUB from one-hop PULL on real traces.
	if testing.Short() {
		t.Skip("full Haggle generation in -short mode")
	}
	tr, err := Generate(HaggleInfocom06(2))
	if err != nil {
		t.Fatal(err)
	}
	cov := tr.PairCoverage()
	if cov > 0.75 {
		t.Errorf("Haggle pair coverage %.2f too dense; CrossLinkProb not biting", cov)
	}
	if cov < 0.15 {
		t.Errorf("Haggle pair coverage %.2f implausibly sparse", cov)
	}

	dense := Small(2) // CrossLinkProb 0 -> fully linked
	dtr, err := Generate(dense)
	if err != nil {
		t.Fatal(err)
	}
	if dcov := dtr.PairCoverage(); dcov < 0.9 {
		t.Errorf("fully-linked small trace coverage %.2f, want near 1", dcov)
	}
}

func TestCrossLinkValidation(t *testing.T) {
	cfg := Small(1)
	cfg.CrossLinkProb = 1.5
	if _, err := Generate(cfg); err == nil {
		t.Error("cross-link probability above 1 accepted")
	}
	cfg.CrossLinkProb = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative cross-link probability accepted")
	}
}

func TestCommunityAssignmentValidation(t *testing.T) {
	cfg := Small(1)
	cfg.CommunityAssignment = []int{0, 1} // wrong length
	if _, err := Generate(cfg); err == nil {
		t.Error("wrong-length community assignment accepted")
	}
	cfg = Small(1)
	bad := make([]int, cfg.Nodes)
	bad[3] = cfg.Communities + 7
	cfg.CommunityAssignment = bad
	if _, err := Generate(cfg); err == nil {
		t.Error("out-of-range community accepted")
	}
	cfg = Small(1)
	good := make([]int, cfg.Nodes)
	for i := range good {
		good[i] = i % cfg.Communities
	}
	cfg.CommunityAssignment = good
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if tr.Nodes != cfg.Nodes {
		t.Error("trace malformed")
	}
}

func TestMIT3DayPreset(t *testing.T) {
	tr, err := Generate(MITReality3Day(1))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Nodes != 97 {
		t.Errorf("nodes = %d, want 97", s.Nodes)
	}
	if s.Span > 76*time.Hour {
		t.Errorf("span %v exceeds 3 days", s.Span)
	}
	if math.Abs(float64(s.Contacts)-9000)/9000 > 0.3 {
		t.Errorf("contacts = %d, want ~9000", s.Contacts)
	}
}
