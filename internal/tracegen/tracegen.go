// Package tracegen synthesizes human contact traces with the externally
// visible characteristics of the two CRAWDAD datasets the B-SUB paper
// evaluates on (Table I): Haggle (Infocom'06) and MIT Reality.
//
// The real datasets require registration and this module is offline, so we
// substitute a community-structured heterogeneous contact process (see
// DESIGN.md §2). Each node draws a heavy-tailed social-activity weight; a
// pair's contact process is Poisson with rate proportional to the product
// of weights, boosted when the pair shares a community, and optionally
// modulated by a diurnal day/night cycle. Contact durations are
// exponential. The process reproduces the three trace properties B-SUB
// exploits: skewed per-node contact frequency (broker election), repeated
// pair contacts (interest reinforcement), and finite contact durations
// (bandwidth budgeting).
//
// Generation is fully deterministic given Config.Seed.
package tracegen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bsub/internal/trace"
)

// Config parameterizes a synthetic trace.
type Config struct {
	// Name labels the resulting trace.
	Name string
	// Nodes is the population size.
	Nodes int
	// Span is the trace length.
	Span time.Duration
	// TargetContacts calibrates the pairwise rates so the expected total
	// contact count matches; the realized count varies by a few percent.
	TargetContacts int
	// Communities is the number of social groups nodes are assigned to
	// (uniformly at random). Zero means a single implicit community.
	Communities int
	// CommunityAssignment, when non-nil, pins each node's community
	// explicitly (length must equal Nodes, values in [0, Communities)) and
	// overrides the random assignment. Useful when the caller's workload
	// is community-correlated.
	CommunityAssignment []int
	// CommunityBias multiplies the contact rate of same-community pairs;
	// 1 disables community structure.
	CommunityBias float64
	// CrossLinkProb is the probability that a pair from different
	// communities has any contact relationship at all. Real human traces
	// concentrate contacts on a sparse pair graph — most strangers never
	// meet — and this is the knob that reproduces it. Zero means 1 (fully
	// connected); same-community pairs are always linked.
	CrossLinkProb float64
	// MeanContactDuration is the mean of the exponential contact-length
	// distribution.
	MeanContactDuration time.Duration
	// ActivityAlpha is the Pareto shape of the per-node social-activity
	// weights; smaller values give heavier tails (a few very social nodes).
	// Typical: 1.5–3.
	ActivityAlpha float64
	// Diurnal, when true, suppresses night-time (22:00–08:00) contacts to
	// 15% of the daytime rate.
	Diurnal bool
	// Seed drives all randomness.
	Seed int64
}

func (c Config) validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("tracegen: need at least 2 nodes, got %d", c.Nodes)
	case c.Span <= 0:
		return fmt.Errorf("tracegen: span must be positive, got %v", c.Span)
	case c.TargetContacts < 1:
		return fmt.Errorf("tracegen: target contacts must be positive, got %d", c.TargetContacts)
	case c.CommunityBias < 1:
		return fmt.Errorf("tracegen: community bias must be >= 1, got %g", c.CommunityBias)
	case c.MeanContactDuration <= 0:
		return fmt.Errorf("tracegen: mean contact duration must be positive, got %v", c.MeanContactDuration)
	case c.ActivityAlpha <= 0:
		return fmt.Errorf("tracegen: activity alpha must be positive, got %g", c.ActivityAlpha)
	case c.Communities < 0:
		return fmt.Errorf("tracegen: communities must be non-negative, got %d", c.Communities)
	case c.CrossLinkProb < 0 || c.CrossLinkProb > 1:
		return fmt.Errorf("tracegen: cross-link probability must be in [0,1], got %g", c.CrossLinkProb)
	}
	if c.CommunityAssignment != nil {
		if len(c.CommunityAssignment) != c.Nodes {
			return fmt.Errorf("tracegen: community assignment has %d entries for %d nodes",
				len(c.CommunityAssignment), c.Nodes)
		}
		for i, comm := range c.CommunityAssignment {
			if comm < 0 || (c.Communities > 0 && comm >= c.Communities) {
				return fmt.Errorf("tracegen: node %d community %d out of [0,%d)", i, comm, c.Communities)
			}
		}
	}
	return nil
}

const (
	nightActivity  = 0.15
	nightStartHour = 22
	nightEndHour   = 8
	// maxWeight caps the Pareto activity weights so a single node cannot
	// absorb the whole contact budget.
	maxWeight = 20.0
)

// HaggleInfocom06 returns the configuration matching the paper's Table I
// row for Haggle (Infocom'06): 79 iMotes over 3 conference days, 67,360
// Bluetooth contacts. Conferences are dense and weakly diurnal (sessions
// all day, socializing at night too), with short contact durations.
func HaggleInfocom06(seed int64) Config {
	return Config{
		Name:                "haggle-infocom06",
		Nodes:               79,
		Span:                72 * time.Hour,
		TargetContacts:      67360,
		Communities:         6, // parallel conference tracks
		CommunityBias:       3,
		CrossLinkProb:       0.3, // most attendees from other tracks never meet
		MeanContactDuration: 4 * time.Minute,
		ActivityAlpha:       2,
		Diurnal:             true,
		Seed:                seed,
	}
}

// MITRealityFull returns the configuration matching the paper's Table I row
// for MIT Reality: 97 phones over 246 days, 54,667 contacts. Campus life is
// strongly diurnal and community-structured (labs, dorms), with longer
// co-location durations and far lower contact frequency than a conference.
func MITRealityFull(seed int64) Config {
	return Config{
		Name:                "mit-reality",
		Nodes:               97,
		Span:                246 * 24 * time.Hour,
		TargetContacts:      54667,
		Communities:         10,
		CommunityBias:       6,
		CrossLinkProb:       0.15, // campus: labs and dorms rarely mix
		MeanContactDuration: 15 * time.Minute,
		ActivityAlpha:       1.7,
		Diurnal:             true,
		Seed:                seed,
	}
}

// MITReality3Day returns the configuration for the slice the paper
// simulates on: "the 3 day records from the MIT Reality trace". The
// paper's delivery results imply a busy-period slice far denser than the
// 246-day average, so the window is generated directly at busy-campus
// density rather than cut uniformly from the full trace.
func MITReality3Day(seed int64) Config {
	return Config{
		Name:                "mit-reality-3day",
		Nodes:               97,
		Span:                72 * time.Hour,
		TargetContacts:      9000,
		Communities:         10,
		CommunityBias:       6,
		CrossLinkProb:       0.15,
		MeanContactDuration: 15 * time.Minute,
		ActivityAlpha:       1.7,
		Diurnal:             true,
		Seed:                seed,
	}
}

// Scale returns a configuration for population-scale sweeps: communities
// of ~40 nodes, sparse cross links (~4 per node), ~10 contacts per node
// over a diurnal 24-hour span. Designed for the streaming generator: the
// linked-pair graph is O(nodes), never O(nodes²), so a million-node
// stream instantiates ~2×10⁷ pair streams instead of 5×10¹¹.
func Scale(nodes int, seed int64) Config {
	comms := nodes / 40
	if comms < 1 {
		comms = 1
	}
	return Config{
		Name:                fmt.Sprintf("scale-%d", nodes),
		Nodes:               nodes,
		Span:                24 * time.Hour,
		TargetContacts:      10 * nodes,
		Communities:         comms,
		CommunityBias:       3,
		CrossLinkProb:       4.0 / float64(nodes),
		MeanContactDuration: 2 * time.Minute,
		ActivityAlpha:       2,
		Diurnal:             true,
		Seed:                seed,
	}
}

// Small returns a compact configuration for tests and examples: 20 nodes,
// 12 hours, ~2,000 contacts.
func Small(seed int64) Config {
	return Config{
		Name:                "small",
		Nodes:               20,
		Span:                12 * time.Hour,
		TargetContacts:      2000,
		Communities:         3,
		CommunityBias:       3,
		MeanContactDuration: 3 * time.Minute,
		ActivityAlpha:       1.3,
		Diurnal:             false,
		Seed:                seed,
	}
}

// Generate synthesizes a trace from cfg by collecting the streaming
// generator, so materialized and streamed generation are the same process
// observed two ways: Generate(cfg).Contacts == trace.Collect(NewStream(cfg)).
func Generate(cfg Config) (*trace.Trace, error) {
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	contacts := trace.Collect(s)
	if len(contacts) == 0 {
		return nil, fmt.Errorf("tracegen: configuration produced no contacts")
	}
	return trace.New(cfg.Name, cfg.Nodes, contacts)
}

// BusiestWindow returns the window of the given length with the most
// contact starts, rebased to time zero. It mirrors the paper's use of "the
// 3 day records from the MIT Reality trace": a busy slice of a long trace.
func BusiestWindow(t *trace.Trace, window time.Duration, name string) (*trace.Trace, error) {
	if window <= 0 {
		return nil, fmt.Errorf("tracegen: window must be positive, got %v", window)
	}
	starts := make([]time.Duration, len(t.Contacts))
	for i, c := range t.Contacts {
		starts[i] = c.Start
	}
	// Slide over contact starts (they are sorted): for each i, count starts
	// within [starts[i], starts[i]+window).
	bestStart, bestCount := time.Duration(0), 0
	j := 0
	for i := range starts {
		for j < len(starts) && starts[j] < starts[i]+window {
			j++
		}
		if j-i > bestCount {
			bestCount = j - i
			bestStart = starts[i]
		}
	}
	return t.Slice(name, bestStart, bestStart+window)
}

// activityWeights draws capped Pareto(alpha) social-activity weights.
func activityWeights(rng *rand.Rand, n int, alpha float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		w := math.Pow(u, -1/alpha) // Pareto with x_min = 1
		if w > maxWeight {
			w = maxWeight
		}
		out[i] = w
	}
	return out
}

func assignCommunities(rng *rand.Rand, nodes, communities int) []int {
	out := make([]int, nodes)
	if communities <= 1 {
		return out
	}
	for i := range out {
		out[i] = rng.Intn(communities)
	}
	return out
}

// diurnalActivity returns the relative contact intensity at hour-offset t
// (hours since trace epoch, which is taken to be midnight).
//
//bsub:hotpath
func diurnalActivity(tHours float64) float64 {
	hod := math.Mod(tHours, 24)
	if hod >= nightStartHour || hod < nightEndHour {
		return nightActivity
	}
	return 1
}

// meanDiurnalActivity integrates the step profile over one day.
func meanDiurnalActivity() float64 {
	nightHours := float64((24 - nightStartHour) + nightEndHour)
	dayHours := 24 - nightHours
	return (nightHours*nightActivity + dayHours) / 24
}
