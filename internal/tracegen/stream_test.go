package tracegen

import (
	"math"
	"runtime"
	"testing"
	"time"

	"bsub/internal/trace"
)

// TestStreamMatchesGenerate is the streamed-vs-materialized equivalence
// check: collecting the stream must reproduce Generate's contact sequence
// exactly. Generate collects a stream and then re-sorts through trace.New,
// so equality also proves the heap emits contacts already in trace.New's
// (Start, End, A, B) order.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, cfg := range []Config{Small(3), MITReality3Day(7)} {
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := trace.Collect(s)
		if len(got) != len(tr.Contacts) {
			t.Fatalf("%s: stream emitted %d contacts, Generate %d", cfg.Name, len(got), len(tr.Contacts))
		}
		for i := range got {
			if got[i] != tr.Contacts[i] {
				t.Fatalf("%s: contact %d differs: stream %+v vs generate %+v",
					cfg.Name, i, got[i], tr.Contacts[i])
			}
		}
		if s.Emitted() != len(got) {
			t.Errorf("Emitted() = %d, want %d", s.Emitted(), len(got))
		}
	}
}

// TestStreamOrderIsSorted double-checks the stream's emission order against
// the trace.New comparator directly.
func TestStreamOrderIsSorted(t *testing.T) {
	s, err := NewStream(Small(11))
	if err != nil {
		t.Fatal(err)
	}
	prev, ok := s.Next()
	if !ok {
		t.Fatal("empty stream")
	}
	for {
		c, ok := s.Next()
		if !ok {
			break
		}
		if c.Start < prev.Start ||
			(c.Start == prev.Start && c.End < prev.End) ||
			(c.Start == prev.Start && c.End == prev.End && c.A < prev.A) ||
			(c.Start == prev.Start && c.End == prev.End && c.A == prev.A && c.B <= prev.B) {
			t.Fatalf("out of order: %+v after %+v", c, prev)
		}
		prev = c
	}
}

// TestStreamNextAllocFree pins the per-contact cost of the hot path:
// popping and re-heapifying must not allocate.
func TestStreamNextAllocFree(t *testing.T) {
	cfg := Small(5)
	cfg.TargetContacts = 50_000
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(10_000, func() {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream exhausted mid-measurement")
		}
	})
	if got != 0 {
		t.Errorf("Next allocates %.1f objects per contact, want 0", got)
	}
}

// TestStreamMemoryIsActivePairs is the memory-ceiling smoke test: a
// 100k-node population has ~5×10⁹ node pairs, but the stream must
// instantiate only the linked ones (~10 per node here). The heap growth
// bound (128 MB) is ~50 bytes per linked pair with slack — materializing
// pair state for all pairs would need hundreds of GB.
func TestStreamMemoryIsActivePairs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 100k-node stream")
	}
	const nodes = 100_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	s, err := NewStream(Scale(nodes, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Draw a slice of the schedule to prove generation works lazily.
	for i := 0; i < 10_000; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("stream exhausted after %d contacts", i)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(s)

	links := s.Links()
	totalPairs := int64(nodes) * (nodes - 1) / 2
	if int64(links) > totalPairs/100 {
		t.Fatalf("stream linked %d of %d pairs; pair graph is not sparse", links, totalPairs)
	}
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const ceiling = 128 << 20
	if grew > ceiling {
		t.Errorf("stream setup grew the heap by %d MB for %d linked pairs; want O(linked pairs) under %d MB",
			grew>>20, links, ceiling>>20)
	}
}

// TestPairAt exhaustively checks the triangular index decode against the
// lexicographic pair enumeration for several population sizes, plus the
// float-precision-sensitive boundary rows of a million-node population.
func TestPairAt(t *testing.T) {
	for _, n := range []int64{2, 3, 5, 17, 64} {
		k := int64(0)
		for i := int64(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				gi, gj := pairAt(n, k)
				if gi != i || gj != j {
					t.Fatalf("pairAt(%d, %d) = (%d, %d), want (%d, %d)", n, k, gi, gj, i, j)
				}
				k++
			}
		}
	}
	const big = int64(1_000_000)
	total := big * (big - 1) / 2
	for _, k := range []int64{0, 1, big - 2, big - 1, big, total / 2, total - 2, total - 1} {
		i, j := pairAt(big, k)
		if i < 0 || j <= i || j >= big {
			t.Fatalf("pairAt(%d, %d) = (%d, %d) out of range", big, k, i, j)
		}
		if got := rowStart(big, i) + (j - i - 1); got != k {
			t.Fatalf("pairAt(%d, %d) = (%d, %d) encodes back to %d", big, k, i, j, got)
		}
	}
}

// TestCrossLinkSamplingLaw checks the geometric-gap sampler: the realized
// cross-link count must match the binomial expectation, and links must be
// deterministic for a seed.
func TestCrossLinkSamplingLaw(t *testing.T) {
	cfg := Small(21)
	cfg.Nodes = 400
	cfg.Communities = 40
	cfg.TargetContacts = 4000
	cfg.CrossLinkProb = 0.05
	a, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Links() != b.Links() {
		t.Fatalf("same seed linked %d vs %d pairs", a.Links(), b.Links())
	}
	// ~40 communities of ~10: same-community links ≈ 40·C(10,2) ≈ 1800;
	// cross links ≈ 0.05 · (C(400,2) − 1800) ≈ 3900. Allow ±25%.
	sameApprox := 1800.0
	crossExp := 0.05 * (float64(400*399/2) - sameApprox)
	crossGot := float64(a.Links()) - sameApprox
	if math.Abs(crossGot-crossExp)/crossExp > 0.25 {
		t.Errorf("cross links ≈ %.0f, want within 25%% of %.0f", crossGot, crossExp)
	}
}

// TestScalePreset sanity-checks the sweep configuration at a small size.
func TestScalePreset(t *testing.T) {
	cfg := Scale(10_000, 1)
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 10_000 {
		t.Fatalf("nodes = %d", s.Nodes())
	}
	rates := s.ActivityRates()
	if len(rates) != 10_000 {
		t.Fatalf("rates length %d", len(rates))
	}
	positive := 0
	for _, r := range rates {
		if r > 0 {
			positive++
		}
	}
	if positive < 9_000 {
		t.Errorf("only %d/10000 nodes have linked pairs", positive)
	}
	n := 0
	var last time.Duration
	for {
		c, ok := s.Next()
		if !ok {
			break
		}
		last = c.Start
		n++
	}
	if math.Abs(float64(n)-100_000)/100_000 > 0.25 {
		t.Errorf("scale stream emitted %d contacts, want ~100000", n)
	}
	if last > cfg.Span {
		t.Errorf("contact starts at %v, past span %v", last, cfg.Span)
	}
}

// TestLinkedPairCapRejectsDensePopulations: a huge fully-connected config
// must be refused up front instead of attempting an O(n²) enumeration.
func TestLinkedPairCapRejectsDensePopulations(t *testing.T) {
	cfg := Scale(1_000_000, 1)
	cfg.CrossLinkProb = 0 // legacy "fully connected"
	if _, err := NewStream(cfg); err == nil {
		t.Fatal("10¹¹-pair configuration accepted")
	}
}
