package tcbf

import (
	"fmt"
	"testing"
	"time"
)

// Hot-path benchmarks for the zero-allocation variants: precomputed-key
// queries, in-place merge targets, and the append/in-place wire codecs.
// BenchmarkEncodeFull/BenchmarkDecodeFull in encode_test.go cover the
// allocating counterparts.

func benchFilter(b *testing.B, keys int) *Filter {
	b.Helper()
	f := MustNew(Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}, 0)
	for i := 0; i < keys; i++ {
		if err := f.Insert(fmt.Sprintf("key-%03d", i), 0); err != nil {
			b.Fatal(err)
		}
	}
	return f
}

func BenchmarkInsertPre(b *testing.B) {
	f := benchFilter(b, 0)
	pre := Precompute("bench-key")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reset(0)
		if err := f.InsertPre(pre, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainsPre(b *testing.B) {
	f := benchFilter(b, 32)
	pre := Precompute("key-007")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ContainsPre(pre, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMMergeInPlace(b *testing.B) {
	f := benchFilter(b, 32)
	other := benchFilter(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.MMerge(other, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeTo(b *testing.B) {
	f := benchFilter(b, 32)
	var buf []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = f.EncodeTo(buf[:0], CountersFull)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	f := benchFilter(b, 32)
	data, err := f.Encode(CountersFull)
	if err != nil {
		b.Fatal(err)
	}
	dst := MustNew(f.Config(), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.DecodeInto(data, time.Duration(0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionedEncodeTo(b *testing.B) {
	p := MustNewPartitioned(Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}, 4, 0)
	for i := 0; i < 64; i++ {
		if err := p.Insert(fmt.Sprintf("key-%03d", i), 0); err != nil {
			b.Fatal(err)
		}
	}
	var buf []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = p.EncodeTo(buf[:0], CountersFull)
		if err != nil {
			b.Fatal(err)
		}
	}
}
