package tcbf

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// Tests for the packed SWAR counter representation: the word-parallel
// primitives against longhand lane arithmetic, the saturation edges, and
// regression tests for the wire-decode invariant fixes that landed with it.

// lanes unpacks a word into its four lane values.
func lanes(w uint64) [4]uint32 {
	return [4]uint32{
		uint32(w) & laneMask,
		uint32(w>>16) & laneMask,
		uint32(w>>32) & laneMask,
		uint32(w>>48) & laneMask,
	}
}

func packLanes(l [4]uint32) uint64 {
	return uint64(l[0]) | uint64(l[1])<<16 | uint64(l[2])<<32 | uint64(l[3])<<48
}

func TestSWARPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randLane := func() uint32 {
		// Mix uniform draws with boundary values so saturation and
		// equality edges come up constantly.
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return laneMax
		case 2:
			return uint32(rng.Intn(4)) // tiny
		default:
			return uint32(rng.Intn(laneMax + 1))
		}
	}
	for trial := 0; trial < 100000; trial++ {
		var la, lb [4]uint32
		for i := range la {
			la[i], lb[i] = randLane(), randLane()
		}
		a, b := packLanes(la), packLanes(lb)

		got := lanes(satSubWord(a, b))
		for i := range got {
			want := uint32(0)
			if la[i] > lb[i] {
				want = la[i] - lb[i]
			}
			if got[i] != want {
				t.Fatalf("satSub lane %d: %d-%d = %d, want %d", i, la[i], lb[i], got[i], want)
			}
		}
		got = lanes(satAddWord(a, b))
		for i := range got {
			want := la[i] + lb[i]
			if want > laneMax {
				want = laneMax
			}
			if got[i] != want {
				t.Fatalf("satAdd lane %d: %d+%d = %d, want %d", i, la[i], lb[i], got[i], want)
			}
		}
		got = lanes(maxWord(a, b))
		for i := range got {
			want := la[i]
			if lb[i] > want {
				want = lb[i]
			}
			if got[i] != want {
				t.Fatalf("max lane %d: max(%d,%d) = %d, want %d", i, la[i], lb[i], got[i], want)
			}
		}
		nz := nzLanes(a)
		for i := range la {
			want := uint64(0)
			if la[i] != 0 {
				want = 1
			}
			if (nz>>(16*i))&1 != want {
				t.Fatalf("nzLanes lane %d of %#x = %d, want %d", i, a, (nz>>(16*i))&1, want)
			}
		}
		if nz&^laneLSB != 0 {
			t.Fatalf("nzLanes %#x has bits outside lane LSBs: %#x", a, nz)
		}
	}
}

func TestAMergeSaturatesAtLaneMax(t *testing.T) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	f := MustNew(cfg, 0)
	if err := f.Insert("sat-key", 0); err != nil {
		t.Fatal(err)
	}
	src := MustNew(cfg, 0)
	if err := src.Insert("sat-key", 0); err != nil {
		t.Fatal(err)
	}
	// 40 reinforcements would reach 41*1024 ticks; the lanes must pin at
	// laneMax = 32767 ticks = 32*Initial-ish instead of wrapping.
	for i := 0; i < 40; i++ {
		if err := f.AMerge(src, 0); err != nil {
			t.Fatal(err)
		}
	}
	wantMax := float64(laneMax) * (cfg.Initial / initTicks)
	mc, err := f.MinCounter("sat-key", 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc != wantMax {
		t.Fatalf("saturated min counter = %v, want %v", mc, wantMax)
	}
	// A saturated counter still decays normally and the full-counter wire
	// round-trip preserves it within quantization tolerance.
	data, err := f.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	mcDec, err := dec.MinCounter("sat-key", 0)
	if err != nil {
		t.Fatal(err)
	}
	if mcDec != wantMax {
		t.Fatalf("decoded saturated counter = %v, want %v", mcDec, wantMax)
	}
	mcLater, err := f.MinCounter("sat-key", 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantMax - 5; mcLater != want {
		t.Fatalf("saturated counter after 5m = %v, want %v", mcLater, want)
	}
}

func TestDecayFarPastZeroThenReinsert(t *testing.T) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	f := MustNew(cfg, 0)
	if err := f.Insert("k", 0); err != nil {
		t.Fatal(err)
	}
	// 10 minutes clears the counter; run 100x past that, through multiple
	// Advance calls, so the pending-tick cap and the remainder carry both
	// see debts far larger than any lane.
	for m := 100; m <= 1000; m += 100 {
		if err := f.Advance(time.Duration(m) * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := f.Contains("k", 1000*time.Minute); ok {
		t.Fatal("key survived 1000 minutes of decay")
	}
	if n := f.SetBits(); n != 0 {
		t.Fatalf("SetBits = %d after full decay, want 0", n)
	}
	if err := f.Insert("k", 1000*time.Minute); err != nil {
		t.Fatal(err)
	}
	mc, err := f.MinCounter("k", 1000*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if mc != cfg.Initial {
		t.Fatalf("reinserted min counter = %v, want %v", mc, cfg.Initial)
	}
	// The fresh insert must not inherit any stale decay debt: one minute
	// later it has lost exactly the whole ticks one minute buys (one
	// minute is 102.4 ticks at this config, so 102 whole ticks).
	mc, err = f.MinCounter("k", 1001*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	quantum := cfg.Initial / initTicks
	ticks := float64(time.Minute.Nanoseconds() / tickNanosFor(quantum, cfg.DecayPerMinute))
	if want := cfg.Initial - ticks*quantum; mc != want {
		t.Fatalf("min counter one minute after reinsert = %v, want %v", mc, want)
	}
}

func TestQuantizationScaleBoundaries(t *testing.T) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	// Drive one key down to its very last tick: 10 minutes is 1024 ticks,
	// so stop one tick's worth of nanoseconds short.
	f := MustNew(cfg, 0)
	if err := f.Insert("edge", 0); err != nil {
		t.Fatal(err)
	}
	tickNs := time.Duration(tickNanosFor(cfg.Initial/initTicks, cfg.DecayPerMinute))
	almost := 10*time.Minute - tickNs
	ok, err := f.Contains("edge", almost)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("key gone one tick before its lifetime")
	}
	mc, err := f.MinCounter("edge", almost)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Initial / initTicks; mc != want {
		t.Fatalf("last-tick min counter = %v, want one quantum %v", mc, want)
	}
	// A one-tick counter survives the full-counter wire round trip: the
	// quantized byte floors at 1 and re-quantization floors at one tick.
	data, err := f.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data, cfg, almost)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = dec.Contains("edge", almost)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("one-tick counter lost in wire round trip")
	}
	// One more tick and the key is gone.
	if ok, _ := f.Contains("edge", almost+tickNs); ok {
		t.Fatal("key survived past its exact lifetime")
	}
}

// Regression: a zero counter byte in CountersFull mode is corruption (the
// encoder reserves 0 for unset), not a silent unset bit.
func TestDecodeRejectsZeroCounterByte(t *testing.T) {
	f := MustNew(testConfig(), 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := f.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	data, err := f.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	// Counter bytes are the tail of the encoding, one per set bit.
	data[len(data)-1] = 0
	_, err = Decode(data, testConfig(), 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero counter byte decoded: err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "zero counter") {
		t.Fatalf("error %q does not name the zero counter byte", err)
	}
}

// Regression: a CountersUniform encoding whose uniform value is zero while
// claiming set bits is corruption, not a filter of zero-valued "set" bits.
func TestDecodeRejectsZeroUniform(t *testing.T) {
	f := MustNew(testConfig(), 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := f.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	data, err := f.Encode(CountersUniform)
	if err != nil {
		t.Fatal(err)
	}
	// The uniform value is the trailing float64; zero it.
	for i := len(data) - 8; i < len(data); i++ {
		data[i] = 0
	}
	if _, err := Decode(data, testConfig(), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero uniform decoded: err = %v, want ErrCorrupt", err)
	}

	// An empty filter legitimately encodes a zero uniform value and must
	// keep decoding.
	empty := MustNew(testConfig(), 0)
	data, err = empty.Encode(CountersUniform)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(data, testConfig(), 0)
	if err != nil {
		t.Fatalf("empty uniform filter rejected: %v", err)
	}
	if dec.SetBits() != 0 {
		t.Fatalf("empty decode has %d set bits", dec.SetBits())
	}
}

// Regression: CountersUniform encoding refuses a filter whose set counters
// are not actually uniform instead of silently flattening them to the max.
func TestEncodeUniformRefusesNonUniform(t *testing.T) {
	cfg := testConfig()
	f := MustNew(cfg, 0)
	if err := f.Insert("old", 0); err != nil {
		t.Fatal(err)
	}
	// Decay, then reinforce a second key: two distinct counter values.
	fresh := MustNew(cfg, 2*time.Minute)
	if err := fresh.Insert("new", 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := f.AMerge(fresh, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Encode(CountersUniform); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("non-uniform filter encoded as uniform: err = %v", err)
	}
	if _, err := f.EncodeTo(nil, CountersUniform); !errors.Is(err, ErrNotUniform) {
		t.Fatalf("EncodeTo accepted non-uniform filter: err = %v", err)
	}
	// The other modes still work.
	if _, err := f.Encode(CountersFull); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Encode(CountersNone); err != nil {
		t.Fatal(err)
	}
	// And a genuinely uniform filter still encodes.
	u := MustNew(cfg, 0)
	if err := u.Insert("only", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Encode(CountersUniform); err != nil {
		t.Fatal(err)
	}
}

// Regression: DecodePartitioned with a wildcard cfg (zero M/K) must not
// produce a Partitioned whose partitions disagree on geometry; the wire's
// first non-empty partition pins it and later partitions must match.
func TestDecodePartitionedValidatesGeometry(t *testing.T) {
	mk := func(m int, key string) []byte {
		f := MustNew(Config{M: m, K: 4, Initial: 10, DecayPerMinute: 1}, 0)
		if err := f.Insert(key, 0); err != nil {
			t.Fatal(err)
		}
		data, err := f.Encode(CountersFull)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	frame := func(encs ...[]byte) []byte {
		out := []byte{wireMagic ^ 0x0F, byte(len(encs))}
		for _, e := range encs {
			out = binary.BigEndian.AppendUint32(out, uint32(len(e)))
			out = append(out, e...)
		}
		return out
	}
	wildcard := Config{Initial: 10, DecayPerMinute: 1}

	// Mixed geometry on the wire: corrupt under a wildcard cfg.
	mixed := frame(mk(256, "a"), mk(128, "b"))
	if _, err := DecodePartitioned(mixed, wildcard, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mixed-geometry wire decoded: err = %v, want ErrCorrupt", err)
	}

	// Consistent geometry with a leading empty partition: the first
	// non-empty partition pins it, and every decoded partition agrees.
	consistent := frame(nil, mk(256, "a"), mk(256, "b"))
	p, err := DecodePartitioned(consistent, wildcard, 0)
	if err != nil {
		t.Fatalf("consistent wire rejected: %v", err)
	}
	for i := 0; i < p.Partitions(); i++ {
		if p.parts[i].M() != 256 || p.parts[i].K() != 4 {
			t.Fatalf("partition %d geometry (%d,%d), want (256,4)",
				i, p.parts[i].M(), p.parts[i].K())
		}
	}
	// The filled-in empty partition must be usable (merge-compatible).
	q := MustNewPartitioned(Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}, 3, 0)
	if err := q.MMerge(p, 0); err != nil {
		t.Fatalf("decoded partitioned not merge-compatible: %v", err)
	}

	// All-empty wire with a wildcard cfg: nothing pins the geometry.
	if _, err := DecodePartitioned(frame(nil, nil), wildcard, 0); err == nil {
		t.Fatal("all-empty wildcard decode succeeded")
	}
	// With an explicit cfg the all-empty wire is fine.
	full := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	if _, err := DecodePartitioned(frame(nil, nil), full, 0); err != nil {
		t.Fatalf("all-empty explicit decode failed: %v", err)
	}
}

// Regression: New validates cfg before building the hasher, so an invalid
// Initial is reported even when M is also invalid.
func TestNewValidatesConfigFirst(t *testing.T) {
	_, err := New(Config{M: 0, K: 0, Initial: -1}, 0)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !strings.Contains(err.Error(), "initial counter") {
		t.Fatalf("error %q should report the invalid Initial, not the hasher geometry", err)
	}
}
