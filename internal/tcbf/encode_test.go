package tcbf

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTripFull(t *testing.T) {
	cfg := testConfig()
	f := MustNew(cfg, 0)
	keys := []string{"NewMoon", "Twitter'sNew", "funnybutnotcool", "openwebawards"}
	for _, k := range keys {
		mustInsert(t, f, k, 0)
	}
	// Give the counters distinct values via decay + reinforcement.
	refresh := MustNew(cfg, 4*time.Minute)
	mustInsert(t, refresh, "NewMoon", 4*time.Minute)
	if err := f.AMerge(refresh, 4*time.Minute); err != nil {
		t.Fatal(err)
	}

	data, err := f.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, cfg, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got.SetBits() != f.SetBits() {
		t.Fatalf("set bits: got %d, want %d", got.SetBits(), f.SetBits())
	}
	for _, k := range keys {
		ok, err := got.Contains(k, 4*time.Minute)
		if err != nil || !ok {
			t.Errorf("decoded filter lost %q", k)
		}
	}
	// Counters survive within quantization error (max/255).
	for p := 0; p < f.M(); p++ {
		want := f.Counter(p)
		gotC := got.Counter(p)
		if (want == 0) != (gotC == 0) {
			t.Fatalf("bit %d: set-ness changed (%g vs %g)", p, want, gotC)
		}
		if want > 0 && math.Abs(want-gotC) > 16.0/255+1e-9 {
			t.Errorf("bit %d: counter %g decoded as %g", p, want, gotC)
		}
	}
	if !got.Merged() {
		t.Error("decoded filter should be marked merged")
	}
}

func TestEncodeDecodeUniform(t *testing.T) {
	cfg := testConfig()
	f := MustNew(cfg, 0)
	mustInsert(t, f, "a", 0)
	mustInsert(t, f, "b", 0)
	data, err := f.Encode(CountersUniform)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < got.M(); p++ {
		if c := got.Counter(p); c != 0 && c != cfg.Initial {
			t.Errorf("uniform decode: counter %g, want %g", c, cfg.Initial)
		}
	}
}

func TestEncodeDecodeCounterless(t *testing.T) {
	cfg := testConfig()
	f := MustNew(cfg, 0)
	mustInsert(t, f, "a", 0)
	data, err := f.Encode(CountersNone)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := got.Contains("a", 0)
	if err != nil || !ok {
		t.Error("counter-less round trip lost key")
	}
	min, err := got.MinCounter("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if min != cfg.Initial {
		t.Errorf("counter-less decode counter %g, want initial %g", min, cfg.Initial)
	}
}

func TestEncodeEmptyFilter(t *testing.T) {
	cfg := testConfig()
	f := MustNew(cfg, 0)
	for _, mode := range []CounterMode{CountersNone, CountersUniform, CountersFull} {
		data, err := f.Encode(mode)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		got, err := Decode(data, cfg, 0)
		if err != nil {
			t.Fatalf("mode %d decode: %v", mode, err)
		}
		if got.SetBits() != 0 {
			t.Errorf("mode %d: empty filter decoded with %d set bits", mode, got.SetBits())
		}
	}
}

func TestEncodeModesAreOrderedBySize(t *testing.T) {
	f := MustNew(testConfig(), 0)
	for i := 0; i < 8; i++ {
		mustInsert(t, f, fmt.Sprintf("key-%d", i), 0)
	}
	none, _ := f.WireSize(CountersNone)
	uniform, _ := f.WireSize(CountersUniform)
	full, _ := f.WireSize(CountersFull)
	if !(none < uniform && uniform < full) {
		t.Errorf("sizes not ordered: none=%d uniform=%d full=%d", none, uniform, full)
	}
}

func TestEncodeFallsBackToBitmapWhenDense(t *testing.T) {
	// With m=64 and many keys, the location list exceeds the bitmap and the
	// encoder must switch form. Both forms must round-trip.
	cfg := Config{M: 64, K: 4, Initial: 10, DecayPerMinute: 1}
	f := MustNew(cfg, 0)
	for i := 0; i < 40; i++ {
		mustInsert(t, f, fmt.Sprintf("dense-%d", i), 0)
	}
	if f.SetBits()*bitsFor(64) < 64 {
		t.Skip("filter unexpectedly sparse")
	}
	data, err := f.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	if data[1]&flagBitmap == 0 {
		t.Error("dense filter did not use bitmap form")
	}
	got, err := Decode(data, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.SetBits() != f.SetBits() {
		t.Errorf("bitmap round trip: %d set bits, want %d", got.SetBits(), f.SetBits())
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	cfg := testConfig()
	f := MustNew(cfg, 0)
	mustInsert(t, f, "k", 0)
	good, err := f.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "short header", data: good[:5]},
		{name: "bad magic", data: append([]byte{0x00}, good[1:]...)},
		{name: "truncated body", data: good[:len(good)-3]},
		{name: "bad mode", data: corruptByte(good, 1, 0x00)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.data, cfg, 0); !errors.Is(err, ErrCorrupt) {
				t.Errorf("Decode(%s) error = %v, want ErrCorrupt", tt.name, err)
			}
		})
	}
}

func TestDecodeGeometryMismatch(t *testing.T) {
	f := MustNew(Config{M: 128, K: 2, Initial: 10}, 0)
	mustInsert(t, f, "k", 0)
	data, err := f.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, Config{M: 256, K: 2, Initial: 10}, 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("m mismatch: error = %v, want ErrCorrupt", err)
	}
	if _, err := Decode(data, Config{M: 128, K: 4, Initial: 10}, 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("k mismatch: error = %v, want ErrCorrupt", err)
	}
	// Zero M/K in cfg means "accept the wire geometry".
	if _, err := Decode(data, Config{Initial: 10}, 0); err != nil {
		t.Errorf("wildcard geometry rejected: %v", err)
	}
}

func TestPaperWireBits(t *testing.T) {
	// Section VII-A: a 256-bit vector with 4 hashes encodes a single key in
	// at most 4 locations x 8 bits = 4 bytes (5 with the uniform counter).
	if got := PaperWireBits(4, 256, CountersNone); got != 32 {
		t.Errorf("single-key location bits = %d, want 32", got)
	}
	if got := PaperWireBits(4, 256, CountersUniform); got != 40 {
		t.Errorf("single-key uniform bits = %d, want 40", got)
	}
	if got := PaperWireBits(4, 256, CountersFull); got != 64 {
		t.Errorf("single-key full bits = %d, want 64", got)
	}
	// Dense filters cap at the raw bitmap.
	if got := PaperWireBits(200, 256, CountersNone); got != 256 {
		t.Errorf("dense filter bits = %d, want bitmap 256", got)
	}
}

func TestBitsFor(t *testing.T) {
	tests := []struct{ m, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9}, {1024, 10},
	}
	for _, tt := range tests {
		if got := bitsFor(tt.m); got != tt.want {
			t.Errorf("bitsFor(%d) = %d, want %d", tt.m, got, tt.want)
		}
	}
}

// bitWriter is the test-side inverse of bitReader: EncodeTo packs location
// bits inline, so the round-trip partner lives here.
type bitWriter struct {
	out  []byte
	cur  uint64
	ncur int
}

func (w *bitWriter) write(v uint64, bits int) {
	for i := bits - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | (v>>uint(i))&1
		w.ncur++
		if w.ncur == 8 {
			w.out = append(w.out, byte(w.cur))
			w.cur, w.ncur = 0, 0
		}
	}
}

func (w *bitWriter) finish() []byte {
	if w.ncur > 0 {
		w.out = append(w.out, byte(w.cur<<uint(8-w.ncur)))
		w.cur, w.ncur = 0, 0
	}
	return w.out
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w bitWriter
	vals := []uint64{0, 1, 255, 13, 200, 7}
	for _, v := range vals {
		w.write(v, 8)
	}
	r := bitReader{data: w.finish()}
	for i, want := range vals {
		got, ok := r.read(8)
		if !ok || got != want {
			t.Errorf("value %d: got %d (ok=%v), want %d", i, got, ok, want)
		}
	}
	if _, ok := r.read(8); ok {
		t.Error("read past end succeeded")
	}
}

func TestBitWriterOddWidths(t *testing.T) {
	var w bitWriter
	vals := []uint64{5, 2, 7, 0, 6, 1}
	for _, v := range vals {
		w.write(v, 3)
	}
	r := bitReader{data: w.finish()}
	for i, want := range vals {
		got, ok := r.read(3)
		if !ok || got != want {
			t.Errorf("value %d: got %d (ok=%v), want %d", i, got, ok, want)
		}
	}
}

// Property: encode/decode round-trips membership for arbitrary key sets in
// all counter modes.
func TestEncodeRoundTripProperty(t *testing.T) {
	cfg := Config{M: 512, K: 4, Initial: 10, DecayPerMinute: 1}
	for _, mode := range []CounterMode{CountersNone, CountersUniform, CountersFull} {
		mode := mode
		prop := func(keys []string) bool {
			f := MustNew(cfg, 0)
			for _, k := range keys {
				_ = f.Insert(k, 0)
			}
			data, err := f.Encode(mode)
			if err != nil {
				return false
			}
			got, err := Decode(data, cfg, 0)
			if err != nil {
				return false
			}
			for _, k := range keys {
				ok, err := got.Contains(k, 0)
				if err != nil || !ok {
					return false
				}
			}
			return got.SetBits() == f.SetBits()
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
	}
}

// Property: Decode never panics on arbitrary byte soup.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	cfg := testConfig()
	prop := func(data []byte) bool {
		_, _ = Decode(data, cfg, 0)
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func corruptByte(data []byte, idx int, val byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	out[idx] = val
	return out
}

func BenchmarkEncodeFull(b *testing.B) {
	f := MustNew(Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}, 0)
	for i := 0; i < 10; i++ {
		_ = f.Insert(fmt.Sprintf("k%d", i), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = f.Encode(CountersFull)
	}
}

func BenchmarkDecodeFull(b *testing.B) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	f := MustNew(cfg, 0)
	for i := 0; i < 10; i++ {
		_ = f.Insert(fmt.Sprintf("k%d", i), 0)
	}
	data, _ := f.Encode(CountersFull)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Decode(data, cfg, 0)
	}
}

func TestDecodeRejectsHugeGeometry(t *testing.T) {
	// Regression: a hostile header declaring a multi-gigabyte bit-vector
	// must be rejected before allocation (found by FuzzDecode).
	data := []byte{wireMagic, byte(CountersFull), 0xA5, 0xD9, 0xF2, 0x40, 0x24, 0, 0, 0, 0, 0, 0, 0xA5}
	if _, err := Decode(data, Config{Initial: 10}, 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge-m header: error = %v, want ErrCorrupt", err)
	}
}
