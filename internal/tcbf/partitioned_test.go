package tcbf

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPartitionedValidation(t *testing.T) {
	cfg := testConfig()
	for _, h := range []int{0, -1, 256} {
		if _, err := NewPartitioned(cfg, h, 0); err == nil {
			t.Errorf("h=%d accepted", h)
		}
	}
	bad := cfg
	bad.M = 0
	if _, err := NewPartitioned(bad, 2, 0); err == nil {
		t.Error("invalid per-partition config accepted")
	}
	p, err := NewPartitioned(cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partitions() != 4 {
		t.Errorf("partitions = %d", p.Partitions())
	}
}

func TestPartitionedInsertContains(t *testing.T) {
	p := MustNewPartitioned(testConfig(), 4, 0)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	if err := p.InsertAll(keys, 0); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		ok, err := p.Contains(k, 0)
		if err != nil || !ok {
			t.Errorf("lost %q", k)
		}
	}
}

func TestPartitionedRoutingIsStableAndSpread(t *testing.T) {
	p := MustNewPartitioned(testConfig(), 4, 0)
	used := make(map[int]int)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		r := p.route(k)
		if r != p.route(k) {
			t.Fatalf("routing unstable for %q", k)
		}
		if r < 0 || r >= 4 {
			t.Fatalf("route %d out of range", r)
		}
		used[r]++
	}
	if len(used) < 3 {
		t.Errorf("64 keys landed in only %d of 4 partitions: %v", len(used), used)
	}
}

func TestPartitionedDecay(t *testing.T) {
	p := MustNewPartitioned(testConfig(), 3, 0) // C=10, DF=1/min
	if err := p.Insert("fleeting", 0); err != nil {
		t.Fatal(err)
	}
	ok, err := p.Contains("fleeting", 11*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("key survived decay")
	}
}

func TestPartitionedMerges(t *testing.T) {
	cfg := testConfig()
	a := MustNewPartitioned(cfg, 4, 0)
	b := MustNewPartitioned(cfg, 4, 0)
	if err := a.Insert("shared", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("shared", 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert("b-only", 0); err != nil {
		t.Fatal(err)
	}

	am := MustNewPartitioned(cfg, 4, 0)
	if err := am.AMerge(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := am.AMerge(b, 0); err != nil {
		t.Fatal(err)
	}
	min, err := am.MinCounter("shared", 0)
	if err != nil {
		t.Fatal(err)
	}
	if min != 20 {
		t.Errorf("A-merged counter = %g, want 20", min)
	}

	mm := MustNewPartitioned(cfg, 4, 0)
	if err := mm.MMerge(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := mm.MMerge(b, 0); err != nil {
		t.Fatal(err)
	}
	min, err = mm.MinCounter("shared", 0)
	if err != nil {
		t.Fatal(err)
	}
	if min != 10 {
		t.Errorf("M-merged counter = %g, want max 10", min)
	}
	ok, err := mm.Contains("b-only", 0)
	if err != nil || !ok {
		t.Error("M-merge lost b-only")
	}
}

func TestPartitionedMergeMismatch(t *testing.T) {
	cfg := testConfig()
	a := MustNewPartitioned(cfg, 2, 0)
	b := MustNewPartitioned(cfg, 4, 0)
	if err := a.AMerge(b, 0); !errors.Is(err, ErrGeometry) {
		t.Errorf("A-merge mismatch error = %v", err)
	}
	if err := a.MMerge(b, 0); !errors.Is(err, ErrGeometry) {
		t.Errorf("M-merge mismatch error = %v", err)
	}
	if _, err := PreferencePartitioned("k", b, a, 0); !errors.Is(err, ErrGeometry) {
		t.Errorf("preference mismatch error = %v", err)
	}
}

func TestPreferencePartitioned(t *testing.T) {
	cfg := testConfig()
	self := MustNewPartitioned(cfg, 4, 0)
	peer := MustNewPartitioned(cfg, 4, 0)
	if err := peer.Insert("k", 0); err != nil {
		t.Fatal(err)
	}
	pref, err := PreferencePartitioned("k", peer, self, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pref != 10 {
		t.Errorf("preference = %g, want 10", pref)
	}
}

func TestPartitionedLowersJointFPR(t *testing.T) {
	// The whole point of VI-D: the same keys split over 4 partitions give
	// a lower estimated FPR than crammed into one filter of the same
	// per-filter geometry.
	cfg := Config{M: 128, K: 4, Initial: 10, DecayPerMinute: 0}
	one := MustNewPartitioned(cfg, 1, 0)
	four := MustNewPartitioned(cfg, 4, 0)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := one.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
		if err := four.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if four.EstimatedFPR() >= one.EstimatedFPR() {
		t.Errorf("4 partitions FPR %.4f not below 1 partition %.4f",
			four.EstimatedFPR(), one.EstimatedFPR())
	}
}

func TestPartitionedEncodeDecodeRoundTrip(t *testing.T) {
	cfg := testConfig()
	p := MustNewPartitioned(cfg, 4, 0)
	keys := []string{"alpha", "beta", "gamma"}
	if err := p.InsertAll(keys, 0); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []CounterMode{CountersNone, CountersUniform, CountersFull} {
		data, err := p.Encode(mode)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		got, err := DecodePartitioned(data, cfg, 0)
		if err != nil {
			t.Fatalf("mode %d decode: %v", mode, err)
		}
		if got.Partitions() != 4 {
			t.Fatalf("partitions = %d", got.Partitions())
		}
		for _, k := range keys {
			ok, err := got.Contains(k, 0)
			if err != nil || !ok {
				t.Errorf("mode %d lost %q", mode, k)
			}
		}
	}
}

func TestPartitionedEncodeSkipsEmptyPartitions(t *testing.T) {
	cfg := testConfig()
	p := MustNewPartitioned(cfg, 8, 0)
	if err := p.Insert("only", 0); err != nil {
		t.Fatal(err)
	}
	sparse, err := p.WireSize(CountersUniform)
	if err != nil {
		t.Fatal(err)
	}
	single := MustNewPartitioned(cfg, 1, 0)
	if err := single.Insert("only", 0); err != nil {
		t.Fatal(err)
	}
	dense, err := single.WireSize(CountersUniform)
	if err != nil {
		t.Fatal(err)
	}
	// 7 empty partitions cost 4 bytes each, not a full filter encoding.
	if sparse > dense+8*4+2 {
		t.Errorf("sparse pool wire size %d B; empties not compressed (single: %d B)", sparse, dense)
	}
}

func TestDecodePartitionedRejectsCorrupt(t *testing.T) {
	cfg := testConfig()
	p := MustNewPartitioned(cfg, 2, 0)
	if err := p.Insert("k", 0); err != nil {
		t.Fatal(err)
	}
	good, err := p.Encode(CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "bad magic", data: append([]byte{0xAA}, good[1:]...)},
		{name: "zero partitions", data: []byte{wireMagic ^ 0x0F, 0}},
		{name: "truncated length", data: good[:3]},
		{name: "truncated body", data: good[:len(good)-2]},
		{name: "trailing bytes", data: append(append([]byte{}, good...), 0xFF)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodePartitioned(tt.data, cfg, 0); !errors.Is(err, ErrCorrupt) {
				t.Errorf("error = %v, want ErrCorrupt", err)
			}
		})
	}
}

// Property: partitioned membership round-trips across arbitrary key sets.
func TestPartitionedRoundTripProperty(t *testing.T) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	prop := func(keys []string, hRaw uint8) bool {
		h := int(hRaw)%8 + 1
		p := MustNewPartitioned(cfg, h, 0)
		for _, k := range keys {
			if err := p.Insert(k, 0); err != nil {
				return false
			}
		}
		data, err := p.Encode(CountersFull)
		if err != nil {
			return false
		}
		got, err := DecodePartitioned(data, cfg, 0)
		if err != nil {
			return false
		}
		for _, k := range keys {
			ok, err := got.Contains(k, 0)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: DecodePartitioned never panics on arbitrary bytes.
func TestDecodePartitionedNeverPanicsProperty(t *testing.T) {
	cfg := testConfig()
	prop := func(data []byte) bool {
		_, _ = DecodePartitioned(data, cfg, 0)
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
