// Package tcbf implements the Temporal Counting Bloom Filter (TCBF), the
// core data structure of the B-SUB paper (Section IV).
//
// A TCBF associates a counter with every bit of a Bloom filter, but unlike a
// Counting Bloom filter the counters do not track insertion multiplicity.
// Instead:
//
//   - Insert sets the counters of the key's hashed bits to an initial value
//     C; counters that are already set are left unchanged.
//   - A-merge (additive) combines two filters by OR-ing the bit-vectors and
//     summing counters; it is used when a broker absorbs a consumer's
//     genuine filter, so repeated meetings "reinforce" the interest.
//   - M-merge (maximum) takes the counter-wise maximum; it is used between
//     brokers to prevent the bogus-counter feedback loop of Fig. 6.
//   - Decaying constantly decrements every non-zero counter at the decaying
//     factor (DF); a bit whose counter reaches zero is reset, which is the
//     only form of deletion the TCBF supports.
//
// Queries come in two forms: the existential query (is the key present?)
// and the preferential query (Section IV-A), which compares the minimum
// counter of a key's bits across two filters and drives forwarding
// decisions between brokers.
//
// Counters are fixed-point: a counter is an integer number of ticks of
// quantum = Initial/1024 counter units, packed four 16-bit lanes to a
// uint64 word (see packed.go), so decay and both merges are word-parallel
// SWAR passes over M/4 words instead of M floating-point counters.
//
// All temporal behaviour is driven by an explicit clock passed by the
// caller (a time.Duration offset from an arbitrary epoch). Decay is doubly
// lazy: Advance only converts elapsed time into a pending whole-tick debt
// (integer nanosecond arithmetic, so decay composes exactly across
// arbitrary Advance sequences), and the debt is settled word-at-a-time on
// the next insert, folded for free into the next merge pass, or applied
// on the fly by queries without touching the stored words at all. A TCBF
// is a pure data structure with no background goroutines.
package tcbf

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"bsub/internal/bloom"
	"bsub/internal/hashkit"
)

var (
	// ErrMerged is returned by Insert on a filter that has been the target
	// of a merge. The paper: "We can only insert a key into a filter that
	// has never been merged before"; insert into a fresh TCBF and merge it
	// instead.
	ErrMerged = errors.New("tcbf: cannot insert into a merged filter")

	// ErrGeometry is returned when two filters with different bit-vector
	// lengths, hash counts, or counter scales are combined.
	ErrGeometry = errors.New("tcbf: filter geometry mismatch")

	// ErrClockSkew is returned when an operation's clock precedes the
	// filter's last-observed clock; simulated time must be monotonic.
	ErrClockSkew = errors.New("tcbf: clock moved backwards")
)

// Config holds the tunable parameters of a TCBF.
type Config struct {
	// M is the bit-vector length. The paper's evaluation uses 256.
	M int
	// K is the number of hash functions. The paper's evaluation uses 4.
	K int
	// Initial is the value C a counter is set to on insertion.
	Initial float64
	// DecayPerMinute is the decaying factor (DF): the amount subtracted
	// from every non-zero counter per minute of elapsed time. Zero disables
	// decay (the DF = 0 configuration of Fig. 9).
	DecayPerMinute float64
}

func (c Config) validate() error {
	if c.Initial <= 0 {
		return fmt.Errorf("tcbf: initial counter value must be positive, got %g", c.Initial)
	}
	if c.DecayPerMinute < 0 {
		return fmt.Errorf("tcbf: decay factor must be non-negative, got %g", c.DecayPerMinute)
	}
	return nil
}

// Validate reports whether New would accept the configuration: the
// counter scale and decay factor must be usable and the geometry must be
// accepted by the hasher. It is exposed so higher layers — notably the
// filter-backend seam — can reject an inconsistent configuration before
// any filter is built or any engine state depends on it.
func (c Config) Validate() error {
	if err := c.validate(); err != nil {
		return err
	}
	if _, err := hashkit.New(c.M, c.K); err != nil {
		return fmt.Errorf("tcbf: %w", err)
	}
	return nil
}

// Filter is a Temporal Counting Bloom Filter. It is not safe for concurrent
// use; in the simulator each node owns its filters.
type Filter struct {
	hasher  hashkit.Hasher
	words   []uint64 // packed 16-bit tick lanes, four per word (packed.go)
	cfg     Config
	last    time.Duration
	merged  bool
	scratch []uint32

	quantum    float64 // counter units per tick: Initial / initTicks
	invQuantum float64 // ticks per counter unit
	tickNanos  int64   // elapsed nanoseconds per tick of decay; 0 when DF == 0

	pendingNanos int64  // elapsed decay time not yet converted into whole ticks
	pendingTicks uint32 // whole ticks of decay not yet applied to the words
}

// New returns an empty TCBF configured by cfg, with its clock at now.
func New(cfg Config, now time.Duration) (*Filter, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hasher, err := hashkit.New(cfg.M, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("tcbf: %w", err)
	}
	f := &Filter{
		hasher:  hasher,
		words:   make([]uint64, wordsFor(cfg.M)),
		cfg:     cfg,
		last:    now,
		scratch: make([]uint32, 0, cfg.K),
		quantum: cfg.Initial / initTicks,
	}
	f.invQuantum = initTicks / cfg.Initial
	f.tickNanos = tickNanosFor(f.quantum, cfg.DecayPerMinute)
	return f, nil
}

// tickNanosFor returns how many nanoseconds must elapse for one tick of
// decay: the time DF takes to erode one quantum of counter value. Decay is
// then pure integer arithmetic — floor(elapsed/tickNanos) ticks with the
// remainder carried — so splitting an interval across Advance calls decays
// exactly as much as one combined call.
//
//bsub:hotpath
func tickNanosFor(quantum, perMinute float64) int64 {
	if perMinute <= 0 {
		return 0
	}
	t := math.Round(quantum / perMinute * float64(time.Minute))
	if t < 1 {
		return 1
	}
	if t >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(t)
}

// MustNew is New for parameters known to be valid; it panics on invalid
// input and is intended for tests and package-level defaults.
//
//bsub:coldpath
func MustNew(cfg Config, now time.Duration) *Filter {
	f, err := New(cfg, now)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the bit-vector length.
//
//bsub:hotpath
func (f *Filter) M() int { return f.hasher.M() }

// K returns the number of hash functions.
//
//bsub:hotpath
func (f *Filter) K() int { return f.hasher.K() }

// Config returns the filter's configuration.
//
//bsub:hotpath
func (f *Filter) Config() Config { return f.cfg }

// Merged reports whether the filter has been the target of a merge and can
// therefore no longer accept direct insertions.
//
//bsub:hotpath
func (f *Filter) Merged() bool { return f.merged }

// SetDecayFactor retunes the DF after settling decay up to now. The paper
// (Section VI-B) recommends adjusting the DF online by observing the
// resulting FPR. Partial progress toward the next tick carries over and is
// re-interpreted at the new rate.
//
//bsub:hotpath
func (f *Filter) SetDecayFactor(perMinute float64, now time.Duration) error {
	if perMinute < 0 {
		return fmt.Errorf("tcbf: decay factor must be non-negative, got %g", perMinute)
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	f.cfg.DecayPerMinute = perMinute
	f.tickNanos = tickNanosFor(f.quantum, perMinute)
	return nil
}

// Advance records decay for the time elapsed since the filter was last
// touched. It is O(1): elapsed time is banked as a pending whole-tick debt
// (plus a sub-tick nanosecond remainder), and the counter words are only
// swept when something next needs them. Every other temporal method calls
// it implicitly; it is exported so callers can settle a filter before
// inspecting counters directly.
//
//bsub:hotpath
func (f *Filter) Advance(now time.Duration) error {
	if now < f.last {
		return fmt.Errorf("%w: filter at %v, operation at %v", ErrClockSkew, f.last, now)
	}
	elapsed := now - f.last
	f.last = now
	if elapsed == 0 || f.tickNanos == 0 {
		return nil
	}
	f.pendingNanos += int64(elapsed)
	if f.pendingNanos < 0 {
		// Overflow; a debt this large clears every counter regardless.
		f.pendingNanos = math.MaxInt64
	}
	if f.pendingNanos >= f.tickNanos {
		t := uint64(f.pendingNanos/f.tickNanos) + uint64(f.pendingTicks)
		f.pendingNanos %= f.tickNanos
		if t > laneMax {
			t = laneMax // lanes cannot exceed laneMax, so deeper debt is moot
		}
		f.pendingTicks = uint32(t)
	}
	return nil
}

// settle applies the pending decay debt to the stored words, one saturating
// subtract per four counters.
//
//bsub:hotpath
func (f *Filter) settle() {
	if f.pendingTicks == 0 {
		return
	}
	d := bcast(f.pendingTicks)
	for i, w := range f.words {
		if w != 0 {
			f.words[i] = satSubWord(w, d)
		}
	}
	f.pendingTicks = 0
}

// rawTick returns the stored lane at position p, ignoring pending decay.
//
//bsub:hotpath
func (f *Filter) rawTick(p uint32) uint32 {
	return uint32(f.words[p>>laneShift]>>((p&(lanesPerWord-1))*laneBits)) & laneMask
}

// effTick returns the lane at position p with pending decay applied on the
// fly — the counter value an eager implementation would hold.
//
//bsub:hotpath
func (f *Filter) effTick(p uint32) uint32 {
	if r := f.rawTick(p); r > f.pendingTicks {
		return r - f.pendingTicks
	}
	return 0
}

// setLane stores v into the lane at position p.
//
//bsub:hotpath
func (f *Filter) setLane(p, v uint32) {
	sh := (p & (lanesPerWord - 1)) * laneBits
	f.words[p>>laneShift] = f.words[p>>laneShift]&^(uint64(laneMask)<<sh) | uint64(v)<<sh
}

// PreKey is a key whose hashes — the double-hashing digest that decides
// its filter bits and the routing hash that picks its partition — have
// been computed once up front. Hot paths that probe the same key against
// many filters, or the same filter across many contacts, precompute keys
// at subscription/store time and never touch the key bytes again.
type PreKey struct {
	// Key is the original key string.
	Key string

	dig   hashkit.Digest
	route uint32
}

// Precompute hashes key once for both bit derivation and partition
// routing. The resulting PreKey behaves identically to the plain string
// key in every filter operation.
func Precompute(key string) PreKey {
	return PreKey{Key: key, dig: hashkit.DigestOf(key), route: routeHash(key)}
}

// Insert adds key at time now, setting the counters of its hashed bits to
// the initial value C. Counters that are already non-zero are left
// unchanged ("the results of insertions are always a TCBF with identical
// counters of a value of C"). Inserting into a merged filter returns
// ErrMerged.
func (f *Filter) Insert(key string, now time.Duration) error {
	return f.insertDigest(key, hashkit.DigestOf(key), now)
}

// InsertPre is Insert for a precomputed key.
//
//bsub:hotpath
func (f *Filter) InsertPre(k PreKey, now time.Duration) error {
	return f.insertDigest(k.Key, k.dig, now)
}

//bsub:hotpath
func (f *Filter) insertDigest(key string, d hashkit.Digest, now time.Duration) error {
	if f.merged {
		return fmt.Errorf("insert %q: %w", key, ErrMerged)
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	// Settle before writing: a fresh lane must start its decay from now,
	// not inherit the debt banked before it existed.
	f.settle()
	f.scratch = f.hasher.PositionsDigest(f.scratch[:0], d)
	for _, p := range f.scratch {
		if f.rawTick(p) == 0 {
			f.setLane(p, initTicks)
		}
	}
	return nil
}

// InsertAll inserts each key in keys at time now.
func (f *Filter) InsertAll(keys []string, now time.Duration) error {
	for _, k := range keys {
		if err := f.Insert(k, now); err != nil {
			return err
		}
	}
	return nil
}

// InsertAllPre inserts every precomputed key at time now in a single pass:
// one clock advance, one decay settlement, then back-to-back lane writes —
// the batch path an engine contact uses for its whole message set.
//
//bsub:hotpath
func (f *Filter) InsertAllPre(keys []PreKey, now time.Duration) error {
	if len(keys) == 0 {
		return f.Advance(now)
	}
	if f.merged {
		return fmt.Errorf("insert %q: %w", keys[0].Key, ErrMerged)
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	f.settle()
	for i := range keys {
		f.scratch = f.hasher.PositionsDigest(f.scratch[:0], keys[i].dig)
		for _, p := range f.scratch {
			if f.rawTick(p) == 0 {
				f.setLane(p, initTicks)
			}
		}
	}
	return nil
}

// Contains answers the existential query: it reports whether key may be in
// the filter at time now. The TCBF bears the same FPR as the classic BF for
// existential queries, but the FPR tends to decrease over time as decayed
// elements are removed.
func (f *Filter) Contains(key string, now time.Duration) (bool, error) {
	return f.containsDigest(hashkit.DigestOf(key), now)
}

// ContainsPre is Contains for a precomputed key.
//
//bsub:hotpath
func (f *Filter) ContainsPre(k PreKey, now time.Duration) (bool, error) {
	return f.containsDigest(k.dig, now)
}

//bsub:hotpath
func (f *Filter) containsDigest(d hashkit.Digest, now time.Duration) (bool, error) {
	if err := f.Advance(now); err != nil {
		return false, err
	}
	return f.containsAdvanced(d), nil
}

// containsAdvanced answers the existential query against an already-advanced
// filter without settling: a lane survives pending decay iff it exceeds the
// pending debt.
//
//bsub:hotpath
func (f *Filter) containsAdvanced(d hashkit.Digest) bool {
	f.scratch = f.hasher.PositionsDigest(f.scratch[:0], d)
	for _, p := range f.scratch {
		if f.rawTick(p) <= f.pendingTicks {
			return false
		}
	}
	return true
}

// ContainsAllPre reports whether every precomputed key may be in the filter
// at time now, advancing the clock once for the whole batch.
//
//bsub:hotpath
func (f *Filter) ContainsAllPre(keys []PreKey, now time.Duration) (bool, error) {
	if err := f.Advance(now); err != nil {
		return false, err
	}
	for i := range keys {
		if !f.containsAdvanced(keys[i].dig) {
			return false, nil
		}
	}
	return true, nil
}

// ContainsAnyPre reports whether at least one precomputed key may be in the
// filter at time now, advancing the clock once for the whole batch — the
// one-pass probe an engine contact runs over its message set.
//
//bsub:hotpath
func (f *Filter) ContainsAnyPre(keys []PreKey, now time.Duration) (bool, error) {
	if err := f.Advance(now); err != nil {
		return false, err
	}
	for i := range keys {
		if f.containsAdvanced(keys[i].dig) {
			return true, nil
		}
	}
	return false, nil
}

// MinCounter returns the minimum counter value over key's hashed bits at
// time now; it is zero when the key is absent. A key's remaining lifetime
// under decay is MinCounter/DF, which is why the minimum (not the sum)
// defines both removal (Section IV-A) and preference.
func (f *Filter) MinCounter(key string, now time.Duration) (float64, error) {
	return f.minCounterDigest(hashkit.DigestOf(key), now)
}

// MinCounterPre is MinCounter for a precomputed key.
//
//bsub:hotpath
func (f *Filter) MinCounterPre(k PreKey, now time.Duration) (float64, error) {
	return f.minCounterDigest(k.dig, now)
}

//bsub:hotpath
func (f *Filter) minCounterDigest(d hashkit.Digest, now time.Duration) (float64, error) {
	if err := f.Advance(now); err != nil {
		return 0, err
	}
	f.scratch = f.hasher.PositionsDigest(f.scratch[:0], d)
	minT := uint32(laneMax + 1)
	for _, p := range f.scratch {
		if t := f.effTick(p); t < minT {
			minT = t
		}
	}
	if minT > laneMax {
		return 0, nil
	}
	return float64(minT) * f.quantum, nil
}

// mergeCheck validates that two filters can be combined and advances both
// clocks to now. Filters must also agree on the counter scale (Initial):
// tick counts quantized against different C values are not comparable.
//
//bsub:hotpath
func (f *Filter) mergeCheck(other *Filter, now time.Duration) error {
	if f.M() != other.M() || f.K() != other.K() {
		return fmt.Errorf("%w: (%d,%d) vs (%d,%d)", ErrGeometry, f.M(), f.K(), other.M(), other.K())
	}
	if f.cfg.Initial != other.cfg.Initial {
		return fmt.Errorf("%w: counter scale C=%g vs C=%g", ErrGeometry, f.cfg.Initial, other.cfg.Initial)
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	return other.Advance(now)
}

// AMerge merges other into f additively: the bit-vectors are OR-ed and the
// counters summed, saturating at the lane maximum (32x the insertion value
// C). Used when a broker absorbs a consumer's genuine filter, so that
// repeated meetings reinforce the consumer's interests (Section V-C). Both
// filters' pending decay is folded into the merge pass; f becomes a merged
// filter.
//
//bsub:hotpath
func (f *Filter) AMerge(other *Filter, now time.Duration) error {
	if err := f.mergeCheck(other, now); err != nil {
		return err
	}
	fw := f.words
	if f.pendingTicks == 0 && other.pendingTicks == 0 {
		// Nothing to fold: pure word-parallel sum, skipping empty source
		// words (satAddWord(a, 0) == a for guard-clear lanes).
		for i, b := range other.words {
			if b != 0 {
				fw[i] = satAddWord(fw[i], b)
			}
		}
	} else {
		pf, po := bcast(f.pendingTicks), bcast(other.pendingTicks)
		for i, b := range other.words {
			fw[i] = satAddWord(satSubWord(fw[i], pf), satSubWord(b, po))
		}
		f.pendingTicks = 0
	}
	f.merged = true
	return nil
}

// MMerge merges other into f by taking the counter-wise maximum. Used
// between brokers so frequently-meeting broker pairs do not inflate each
// other's counters in a loop (the bogus-counter problem of Fig. 6). Both
// filters' pending decay is folded into the merge pass; f becomes a merged
// filter.
//
//bsub:hotpath
func (f *Filter) MMerge(other *Filter, now time.Duration) error {
	if err := f.mergeCheck(other, now); err != nil {
		return err
	}
	fw := f.words
	if f.pendingTicks == 0 && other.pendingTicks == 0 {
		// Nothing to fold: pure word-parallel max, skipping empty source
		// words (maxWord(a, 0) == a for guard-clear lanes).
		for i, b := range other.words {
			if b != 0 {
				fw[i] = maxWord(fw[i], b)
			}
		}
	} else {
		pf, po := bcast(f.pendingTicks), bcast(other.pendingTicks)
		for i, b := range other.words {
			fw[i] = maxWord(satSubWord(fw[i], pf), satSubWord(b, po))
		}
		f.pendingTicks = 0
	}
	f.merged = true
	return nil
}

// Preference implements the preferential query of Section IV-A: for key x
// it compares peer's minimum counter f against self's minimum counter g and
// returns f-g when g is non-zero, or f when g is zero. A positive
// preference means the peer is a better carrier for messages matching x.
func Preference(key string, peer, self *Filter, now time.Duration) (float64, error) {
	return preferenceDigest(hashkit.DigestOf(key), peer, self, now)
}

// PreferencePre is Preference for a precomputed key.
//
//bsub:hotpath
func PreferencePre(k PreKey, peer, self *Filter, now time.Duration) (float64, error) {
	return preferenceDigest(k.dig, peer, self, now)
}

//bsub:hotpath
func preferenceDigest(d hashkit.Digest, peer, self *Filter, now time.Duration) (float64, error) {
	pf, err := peer.minCounterDigest(d, now)
	if err != nil {
		return 0, fmt.Errorf("peer: %w", err)
	}
	g, err := self.minCounterDigest(d, now)
	if err != nil {
		return 0, fmt.Errorf("self: %w", err)
	}
	if g == 0 {
		return pf, nil
	}
	return pf - g, nil
}

// Counter returns the counter at bit position p; p must be in [0, M). The
// value reflects the last Advance'd clock, with any still-pending decay
// applied on the fly.
func (f *Filter) Counter(p int) float64 {
	return float64(f.effTick(uint32(p))) * f.quantum
}

// SetBits returns the number of positions with non-zero counters as of the
// last Advance'd clock, four lanes per popcount.
//
//bsub:hotpath
func (f *Filter) SetBits() int {
	d := bcast(f.pendingTicks)
	n := 0
	for _, w := range f.words {
		if w != 0 {
			n += bits.OnesCount64(nzLanes(satSubWord(w, d)))
		}
	}
	return n
}

// FillRatio returns the ratio of set bits to vector length.
//
//bsub:hotpath
func (f *Filter) FillRatio() float64 {
	return float64(f.SetBits()) / float64(f.M())
}

// EstimatedFPR estimates the existential-query false-positive rate from the
// observed fill ratio (FillRatio^K).
//
//bsub:hotpath
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.K()))
}

// ToBloom projects the TCBF onto a counter-less classic Bloom filter with
// the same geometry — "ripping the counters from the TCBFs" (Section V-D),
// used when only membership matters and bandwidth is precious. The
// projection is word-parallel: each counter word's four non-zero-lane flags
// compress to a 4-bit group OR-ed into the Bloom filter's word.
func (f *Filter) ToBloom() *bloom.Filter {
	out := bloom.MustNewFilter(f.M(), f.K())
	d := bcast(f.pendingTicks)
	for i, w := range f.words {
		if w == 0 {
			continue
		}
		nz := nzLanes(satSubWord(w, d))
		// Lane flags sit at bits 0,16,32,48; fold them down to bits 0..3.
		g := (nz | nz>>15 | nz>>30 | nz>>45) & 0xF
		out.OrBits(i*lanesPerWord, g)
	}
	return out
}

// Clone returns a deep copy of the filter, preserving clock, merge status,
// counters, and pending decay.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		hasher:       f.hasher,
		words:        make([]uint64, len(f.words)),
		cfg:          f.cfg,
		last:         f.last,
		merged:       f.merged,
		scratch:      make([]uint32, 0, f.cfg.K),
		quantum:      f.quantum,
		invQuantum:   f.invQuantum,
		tickNanos:    f.tickNanos,
		pendingNanos: f.pendingNanos,
		pendingTicks: f.pendingTicks,
	}
	copy(c.words, f.words)
	return c
}

// Retouch applies the Retouched-Bloom-Filter trade (Donnet et al.): when
// more than maxFill of the vector is set, the set positions with the
// lowest counters are cleared — whole counter-value classes at a time —
// until the fill ratio is back at or below maxFill. Clearing bits converts
// false positives into potential false negatives, but only on the keys
// with the least remaining lifetime: a key whose minimum counter exceeds
// every cleared value still has all of its bits set. Retouch returns the
// largest counter value it cleared (zero when the filter was already
// under the bound), which is exactly that false-negative cutoff.
func (f *Filter) Retouch(maxFill float64, now time.Duration) (float64, error) {
	if maxFill <= 0 || maxFill > 1 {
		return 0, fmt.Errorf("tcbf: retouch fill bound %g outside (0,1]", maxFill)
	}
	if err := f.Advance(now); err != nil {
		return 0, err
	}
	// Settle so raw lanes equal effective counters; the scans below then
	// compare stored ticks directly.
	f.settle()
	target := int(maxFill * float64(f.M()))
	cleared := uint32(0)
	for f.SetBits() > target {
		minT := uint32(laneMax + 1)
		for p := 0; p < f.M(); p++ {
			if t := f.rawTick(uint32(p)); t != 0 && t < minT {
				minT = t
			}
		}
		if minT > laneMax {
			break
		}
		for p := 0; p < f.M(); p++ {
			if t := f.rawTick(uint32(p)); t != 0 && t <= minT {
				f.setLane(uint32(p), 0)
			}
		}
		cleared = minT
	}
	return float64(cleared) * f.quantum, nil
}

// Reset clears all counters, pending decay, and the merged flag and sets
// the clock to now, returning the filter to the state New would produce —
// which is what lets scratch filters be reused across contacts instead of
// reallocated.
//
//bsub:hotpath
func (f *Filter) Reset(now time.Duration) {
	for i := range f.words {
		f.words[i] = 0
	}
	f.merged = false
	f.last = now
	f.pendingNanos = 0
	f.pendingTicks = 0
}
