// Package tcbf implements the Temporal Counting Bloom Filter (TCBF), the
// core data structure of the B-SUB paper (Section IV).
//
// A TCBF associates a counter with every bit of a Bloom filter, but unlike a
// Counting Bloom filter the counters do not track insertion multiplicity.
// Instead:
//
//   - Insert sets the counters of the key's hashed bits to an initial value
//     C; counters that are already set are left unchanged.
//   - A-merge (additive) combines two filters by OR-ing the bit-vectors and
//     summing counters; it is used when a broker absorbs a consumer's
//     genuine filter, so repeated meetings "reinforce" the interest.
//   - M-merge (maximum) takes the counter-wise maximum; it is used between
//     brokers to prevent the bogus-counter feedback loop of Fig. 6.
//   - Decaying constantly decrements every non-zero counter at the decaying
//     factor (DF); a bit whose counter reaches zero is reset, which is the
//     only form of deletion the TCBF supports.
//
// Queries come in two forms: the existential query (is the key present?)
// and the preferential query (Section IV-A), which compares the minimum
// counter of a key's bits across two filters and drives forwarding
// decisions between brokers.
//
// All temporal behaviour is driven by an explicit clock passed by the
// caller (a time.Duration offset from an arbitrary epoch); decay is applied
// lazily, so a TCBF is a pure data structure with no background goroutines.
package tcbf

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bsub/internal/bloom"
	"bsub/internal/hashkit"
)

var (
	// ErrMerged is returned by Insert on a filter that has been the target
	// of a merge. The paper: "We can only insert a key into a filter that
	// has never been merged before"; insert into a fresh TCBF and merge it
	// instead.
	ErrMerged = errors.New("tcbf: cannot insert into a merged filter")

	// ErrGeometry is returned when two filters with different bit-vector
	// lengths or hash counts are combined.
	ErrGeometry = errors.New("tcbf: filter geometry mismatch")

	// ErrClockSkew is returned when an operation's clock precedes the
	// filter's last-observed clock; simulated time must be monotonic.
	ErrClockSkew = errors.New("tcbf: clock moved backwards")
)

// Config holds the tunable parameters of a TCBF.
type Config struct {
	// M is the bit-vector length. The paper's evaluation uses 256.
	M int
	// K is the number of hash functions. The paper's evaluation uses 4.
	K int
	// Initial is the value C a counter is set to on insertion.
	Initial float64
	// DecayPerMinute is the decaying factor (DF): the amount subtracted
	// from every non-zero counter per minute of elapsed time. Zero disables
	// decay (the DF = 0 configuration of Fig. 9).
	DecayPerMinute float64
}

func (c Config) validate() error {
	if c.Initial <= 0 {
		return fmt.Errorf("tcbf: initial counter value must be positive, got %g", c.Initial)
	}
	if c.DecayPerMinute < 0 {
		return fmt.Errorf("tcbf: decay factor must be non-negative, got %g", c.DecayPerMinute)
	}
	return nil
}

// Filter is a Temporal Counting Bloom Filter. It is not safe for concurrent
// use; in the simulator each node owns its filters.
type Filter struct {
	hasher   hashkit.Hasher
	counters []float64
	cfg      Config
	last     time.Duration
	merged   bool
	scratch  []uint32
}

// New returns an empty TCBF configured by cfg, with its clock at now.
func New(cfg Config, now time.Duration) (*Filter, error) {
	hasher, err := hashkit.New(cfg.M, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("tcbf: %w", err)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Filter{
		hasher:   hasher,
		counters: make([]float64, cfg.M),
		cfg:      cfg,
		last:     now,
		scratch:  make([]uint32, 0, cfg.K),
	}, nil
}

// MustNew is New for parameters known to be valid; it panics on invalid
// input and is intended for tests and package-level defaults.
//
//bsub:coldpath
func MustNew(cfg Config, now time.Duration) *Filter {
	f, err := New(cfg, now)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the bit-vector length.
//
//bsub:hotpath
func (f *Filter) M() int { return f.hasher.M() }

// K returns the number of hash functions.
//
//bsub:hotpath
func (f *Filter) K() int { return f.hasher.K() }

// Config returns the filter's configuration.
//
//bsub:hotpath
func (f *Filter) Config() Config { return f.cfg }

// Merged reports whether the filter has been the target of a merge and can
// therefore no longer accept direct insertions.
//
//bsub:hotpath
func (f *Filter) Merged() bool { return f.merged }

// SetDecayFactor retunes the DF after settling decay up to now. The paper
// (Section VI-B) recommends adjusting the DF online by observing the
// resulting FPR.
//
//bsub:hotpath
func (f *Filter) SetDecayFactor(perMinute float64, now time.Duration) error {
	if perMinute < 0 {
		return fmt.Errorf("tcbf: decay factor must be non-negative, got %g", perMinute)
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	f.cfg.DecayPerMinute = perMinute
	return nil
}

// Advance applies decay for the time elapsed since the filter was last
// touched. Every other temporal method calls it implicitly; it is exported
// so callers can settle a filter before inspecting counters directly.
//
//bsub:hotpath
func (f *Filter) Advance(now time.Duration) error {
	if now < f.last {
		return fmt.Errorf("%w: filter at %v, operation at %v", ErrClockSkew, f.last, now)
	}
	elapsed := now - f.last
	f.last = now
	if elapsed == 0 || f.cfg.DecayPerMinute == 0 {
		return nil
	}
	dec := f.cfg.DecayPerMinute * elapsed.Minutes()
	for i, c := range f.counters {
		if c == 0 {
			continue
		}
		c -= dec
		if c < 0 {
			c = 0
		}
		f.counters[i] = c
	}
	return nil
}

// PreKey is a key whose hashes — the double-hashing digest that decides
// its filter bits and the routing hash that picks its partition — have
// been computed once up front. Hot paths that probe the same key against
// many filters, or the same filter across many contacts, precompute keys
// at subscription/store time and never touch the key bytes again.
type PreKey struct {
	// Key is the original key string.
	Key string

	dig   hashkit.Digest
	route uint32
}

// Precompute hashes key once for both bit derivation and partition
// routing. The resulting PreKey behaves identically to the plain string
// key in every filter operation.
func Precompute(key string) PreKey {
	return PreKey{Key: key, dig: hashkit.DigestOf(key), route: routeHash(key)}
}

// Insert adds key at time now, setting the counters of its hashed bits to
// the initial value C. Counters that are already non-zero are left
// unchanged ("the results of insertions are always a TCBF with identical
// counters of a value of C"). Inserting into a merged filter returns
// ErrMerged.
func (f *Filter) Insert(key string, now time.Duration) error {
	return f.insertDigest(key, hashkit.DigestOf(key), now)
}

// InsertPre is Insert for a precomputed key.
//
//bsub:hotpath
func (f *Filter) InsertPre(k PreKey, now time.Duration) error {
	return f.insertDigest(k.Key, k.dig, now)
}

//bsub:hotpath
func (f *Filter) insertDigest(key string, d hashkit.Digest, now time.Duration) error {
	if f.merged {
		return fmt.Errorf("insert %q: %w", key, ErrMerged)
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	f.scratch = f.hasher.PositionsDigest(f.scratch[:0], d)
	for _, p := range f.scratch {
		if f.counters[p] == 0 {
			f.counters[p] = f.cfg.Initial
		}
	}
	return nil
}

// InsertAll inserts each key in keys at time now.
func (f *Filter) InsertAll(keys []string, now time.Duration) error {
	for _, k := range keys {
		if err := f.Insert(k, now); err != nil {
			return err
		}
	}
	return nil
}

// Contains answers the existential query: it reports whether key may be in
// the filter at time now. The TCBF bears the same FPR as the classic BF for
// existential queries, but the FPR tends to decrease over time as decayed
// elements are removed.
func (f *Filter) Contains(key string, now time.Duration) (bool, error) {
	return f.containsDigest(hashkit.DigestOf(key), now)
}

// ContainsPre is Contains for a precomputed key.
//
//bsub:hotpath
func (f *Filter) ContainsPre(k PreKey, now time.Duration) (bool, error) {
	return f.containsDigest(k.dig, now)
}

//bsub:hotpath
func (f *Filter) containsDigest(d hashkit.Digest, now time.Duration) (bool, error) {
	if err := f.Advance(now); err != nil {
		return false, err
	}
	f.scratch = f.hasher.PositionsDigest(f.scratch[:0], d)
	for _, p := range f.scratch {
		if f.counters[p] == 0 {
			return false, nil
		}
	}
	return true, nil
}

// MinCounter returns the minimum counter value over key's hashed bits at
// time now; it is zero when the key is absent. A key's remaining lifetime
// under decay is MinCounter/DF, which is why the minimum (not the sum)
// defines both removal (Section IV-A) and preference.
func (f *Filter) MinCounter(key string, now time.Duration) (float64, error) {
	return f.minCounterDigest(hashkit.DigestOf(key), now)
}

// MinCounterPre is MinCounter for a precomputed key.
//
//bsub:hotpath
func (f *Filter) MinCounterPre(k PreKey, now time.Duration) (float64, error) {
	return f.minCounterDigest(k.dig, now)
}

//bsub:hotpath
func (f *Filter) minCounterDigest(d hashkit.Digest, now time.Duration) (float64, error) {
	if err := f.Advance(now); err != nil {
		return 0, err
	}
	f.scratch = f.hasher.PositionsDigest(f.scratch[:0], d)
	minC := math.Inf(1)
	for _, p := range f.scratch {
		if f.counters[p] < minC {
			minC = f.counters[p]
		}
	}
	if math.IsInf(minC, 1) {
		return 0, nil
	}
	return minC, nil
}

// AMerge merges other into f additively: the bit-vectors are OR-ed and the
// counters summed. Used when a broker absorbs a consumer's genuine filter,
// so that repeated meetings reinforce the consumer's interests (Section
// V-C). Both filters are settled to now first; f becomes a merged filter.
//
//bsub:hotpath
func (f *Filter) AMerge(other *Filter, now time.Duration) error {
	return f.merge(other, now, func(a, b float64) float64 { return a + b })
}

// MMerge merges other into f by taking the counter-wise maximum. Used
// between brokers so frequently-meeting broker pairs do not inflate each
// other's counters in a loop (the bogus-counter problem of Fig. 6). Both
// filters are settled to now first; f becomes a merged filter.
//
//bsub:hotpath
func (f *Filter) MMerge(other *Filter, now time.Duration) error {
	return f.merge(other, now, math.Max)
}

//bsub:hotpath
func (f *Filter) merge(other *Filter, now time.Duration, combine func(a, b float64) float64) error {
	if f.M() != other.M() || f.K() != other.K() {
		return fmt.Errorf("%w: (%d,%d) vs (%d,%d)", ErrGeometry, f.M(), f.K(), other.M(), other.K())
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	if err := other.Advance(now); err != nil {
		return err
	}
	for i, c := range other.counters {
		if c == 0 {
			continue
		}
		if f.counters[i] == 0 {
			f.counters[i] = c
			continue
		}
		f.counters[i] = combine(f.counters[i], c)
	}
	f.merged = true
	return nil
}

// Preference implements the preferential query of Section IV-A: for key x
// it compares peer's minimum counter f against self's minimum counter g and
// returns f-g when g is non-zero, or f when g is zero. A positive
// preference means the peer is a better carrier for messages matching x.
func Preference(key string, peer, self *Filter, now time.Duration) (float64, error) {
	return preferenceDigest(hashkit.DigestOf(key), peer, self, now)
}

// PreferencePre is Preference for a precomputed key.
//
//bsub:hotpath
func PreferencePre(k PreKey, peer, self *Filter, now time.Duration) (float64, error) {
	return preferenceDigest(k.dig, peer, self, now)
}

//bsub:hotpath
func preferenceDigest(d hashkit.Digest, peer, self *Filter, now time.Duration) (float64, error) {
	pf, err := peer.minCounterDigest(d, now)
	if err != nil {
		return 0, fmt.Errorf("peer: %w", err)
	}
	g, err := self.minCounterDigest(d, now)
	if err != nil {
		return 0, fmt.Errorf("self: %w", err)
	}
	if g == 0 {
		return pf, nil
	}
	return pf - g, nil
}

// Counter returns the counter at bit position p; p must be in [0, M). The
// value reflects the last settled clock; call Advance first for current
// values.
func (f *Filter) Counter(p int) float64 { return f.counters[p] }

// SetBits returns the number of positions with non-zero counters as of the
// last settled clock.
//
//bsub:hotpath
func (f *Filter) SetBits() int {
	n := 0
	for _, c := range f.counters {
		if c > 0 {
			n++
		}
	}
	return n
}

// FillRatio returns the ratio of set bits to vector length.
//
//bsub:hotpath
func (f *Filter) FillRatio() float64 {
	return float64(f.SetBits()) / float64(f.M())
}

// EstimatedFPR estimates the existential-query false-positive rate from the
// observed fill ratio (FillRatio^K).
//
//bsub:hotpath
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.K()))
}

// ToBloom projects the TCBF onto a counter-less classic Bloom filter with
// the same geometry — "ripping the counters from the TCBFs" (Section V-D),
// used when only membership matters and bandwidth is precious.
func (f *Filter) ToBloom() *bloom.Filter {
	out := bloom.MustNewFilter(f.M(), f.K())
	for p, c := range f.counters {
		if c > 0 {
			out.SetBit(p)
		}
	}
	return out
}

// Clone returns a deep copy of the filter, preserving clock, merge status,
// and counters.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		hasher:   f.hasher,
		counters: make([]float64, len(f.counters)),
		cfg:      f.cfg,
		last:     f.last,
		merged:   f.merged,
		scratch:  make([]uint32, 0, f.cfg.K),
	}
	copy(c.counters, f.counters)
	return c
}

// Reset clears all counters and the merged flag and sets the clock to now,
// returning the filter to the state New would produce — which is what lets
// scratch filters be reused across contacts instead of reallocated.
//
//bsub:hotpath
func (f *Filter) Reset(now time.Duration) {
	for i := range f.counters {
		f.counters[i] = 0
	}
	f.merged = false
	f.last = now
}
