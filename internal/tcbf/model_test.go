package tcbf

import (
	"bytes"
	"errors"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"
)

// This file checks the TCBF against a deliberately naive reference model: a
// map of position → counter, straight-line reimplementations of insert,
// decay, both merges, and both queries, and an independent stdlib-FNV
// reimplementation of the double-hashing position derivation. A randomized
// op tape drives the real filter and the model in lockstep, comparing the
// full counter state bit-for-bit after every op — so every fast-path
// shortcut in the production code (inline FNV, precomputed digests, scratch
// reuse, in-place encode/decode) must agree exactly with the obvious
// implementation. FuzzTCBFModel feeds the same interpreter
// coverage-guided tapes.

// refPositions derives the k bit positions for key with hash/fnv and
// uint64 arithmetic — independent of hashkit's inline FNV and
// overflow-avoiding modular stepping.
func refPositions(m, k int, key string) []int {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	sum := h.Sum64()
	h1 := uint64(uint32(sum))
	h2 := uint64(uint32(sum>>32) | 1)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = int((h1%uint64(m) + uint64(i)*(h2%uint64(m))) % uint64(m))
	}
	return out
}

// refTCBF is the reference model. Counters live in a map (absent == 0);
// every temporal rule is written out longhand.
type refTCBF struct {
	m, k   int
	cfg    Config
	c      map[int]float64
	last   time.Duration
	merged bool
}

func newRefTCBF(cfg Config, now time.Duration) *refTCBF {
	return &refTCBF{m: cfg.M, k: cfg.K, cfg: cfg, c: make(map[int]float64), last: now}
}

func (r *refTCBF) advance(now time.Duration) {
	elapsed := now - r.last
	r.last = now
	if elapsed == 0 || r.cfg.DecayPerMinute == 0 {
		return
	}
	dec := r.cfg.DecayPerMinute * elapsed.Minutes()
	for p, c := range r.c {
		c -= dec
		if c <= 0 {
			delete(r.c, p)
		} else {
			r.c[p] = c
		}
	}
}

func (r *refTCBF) insert(key string, now time.Duration) error {
	if r.merged {
		return ErrMerged
	}
	r.advance(now)
	for _, p := range refPositions(r.m, r.k, key) {
		if r.c[p] == 0 {
			r.c[p] = r.cfg.Initial
		}
	}
	return nil
}

func (r *refTCBF) merge(other *refTCBF, now time.Duration, additive bool) {
	r.advance(now)
	other.advance(now)
	for p, c := range other.c {
		switch {
		case r.c[p] == 0:
			r.c[p] = c
		case additive:
			r.c[p] = r.c[p] + c
		default:
			r.c[p] = math.Max(r.c[p], c)
		}
	}
	r.merged = true
}

func (r *refTCBF) contains(key string, now time.Duration) bool {
	r.advance(now)
	for _, p := range refPositions(r.m, r.k, key) {
		if r.c[p] == 0 {
			return false
		}
	}
	return true
}

func (r *refTCBF) minCounter(key string, now time.Duration) float64 {
	r.advance(now)
	minC := math.Inf(1)
	for _, p := range refPositions(r.m, r.k, key) {
		if r.c[p] < minC {
			minC = r.c[p]
		}
	}
	if math.IsInf(minC, 1) {
		return 0
	}
	return minC
}

func (r *refTCBF) setDF(perMinute float64, now time.Duration) {
	r.advance(now)
	r.cfg.DecayPerMinute = perMinute
}

func (r *refTCBF) reset(now time.Duration) {
	r.c = make(map[int]float64)
	r.last = now
	r.merged = false
}

// modelState is the interpreter state: two filter/model pairs (so merges
// have a source), a monotonic clock, and a scratch filter for DecodeInto.
type modelState struct {
	f1, f2  *Filter
	r1, r2  *refTCBF
	scratch *Filter
	now     time.Duration
}

func newModelState(cfg Config) *modelState {
	return &modelState{
		f1:      MustNew(cfg, 0),
		f2:      MustNew(cfg, 0),
		r1:      newRefTCBF(cfg, 0),
		r2:      newRefTCBF(cfg, 0),
		scratch: MustNew(cfg, 0),
	}
}

func (st *modelState) compare(t *testing.T, tag string) {
	t.Helper()
	pairs := []struct {
		name string
		f    *Filter
		r    *refTCBF
	}{{"f1", st.f1, st.r1}, {"f2", st.f2, st.r2}}
	for _, pr := range pairs {
		if pr.f.Merged() != pr.r.merged {
			t.Fatalf("%s: %s merged = %v, model %v", tag, pr.name, pr.f.Merged(), pr.r.merged)
		}
		for p := 0; p < pr.r.m; p++ {
			if got, want := pr.f.Counter(p), pr.r.c[p]; got != want {
				t.Fatalf("%s: %s counter[%d] = %v, model %v (diff %g)",
					tag, pr.name, p, got, want, got-want)
			}
		}
	}
}

// modelKeys is the small key universe; collisions in a 64-bit filter are
// frequent, which is the point.
var modelKeys = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
	"golf", "hotel", "india", "juliet", "kilo", "lima",
}

// step applies one (op, arg) pair to the filter and the model and fails the
// test on any divergence — in errors, results, or full counter state.
func (st *modelState) step(t *testing.T, op, arg byte) {
	t.Helper()
	key := modelKeys[int(arg)%len(modelKeys)]
	switch op % 10 {
	case 0, 1: // insert into f1 / f2
		f, r := st.f1, st.r1
		if op%10 == 1 {
			f, r = st.f2, st.r2
		}
		ferr := f.Insert(key, st.now)
		rerr := r.insert(key, st.now)
		if (ferr != nil) != (rerr != nil) || (ferr != nil && !errors.Is(ferr, ErrMerged)) {
			t.Fatalf("insert %q: filter err %v, model err %v", key, ferr, rerr)
		}
	case 2: // time passes (fractional minutes exercise decay rounding)
		st.now += time.Duration(arg) * time.Second
		if err := st.f1.Advance(st.now); err != nil {
			t.Fatalf("advance f1: %v", err)
		}
		if err := st.f2.Advance(st.now); err != nil {
			t.Fatalf("advance f2: %v", err)
		}
		st.r1.advance(st.now)
		st.r2.advance(st.now)
	case 3: // A-merge f2 into f1
		if err := st.f1.AMerge(st.f2, st.now); err != nil {
			t.Fatalf("amerge: %v", err)
		}
		st.r1.merge(st.r2, st.now, true)
	case 4: // M-merge f2 into f1
		if err := st.f1.MMerge(st.f2, st.now); err != nil {
			t.Fatalf("mmerge: %v", err)
		}
		st.r1.merge(st.r2, st.now, false)
	case 5: // existential query, plain and precomputed
		got, err := st.f1.Contains(key, st.now)
		if err != nil {
			t.Fatalf("contains: %v", err)
		}
		gotPre, err := st.f1.ContainsPre(Precompute(key), st.now)
		if err != nil {
			t.Fatalf("contains pre: %v", err)
		}
		if want := st.r1.contains(key, st.now); got != want || gotPre != want {
			t.Fatalf("contains %q = %v/%v, model %v", key, got, gotPre, want)
		}
	case 6: // min-counter query
		got, err := st.f1.MinCounter(key, st.now)
		if err != nil {
			t.Fatalf("min counter: %v", err)
		}
		if want := st.r1.minCounter(key, st.now); got != want {
			t.Fatalf("min counter %q = %v, model %v", key, got, want)
		}
	case 7: // preferential query f2 (peer) vs f1 (self)
		got, err := Preference(key, st.f2, st.f1, st.now)
		if err != nil {
			t.Fatalf("preference: %v", err)
		}
		peer := st.r2.minCounter(key, st.now)
		self := st.r1.minCounter(key, st.now)
		want := peer
		if self != 0 {
			want = peer - self
		}
		if got != want {
			t.Fatalf("preference %q = %v, model %v", key, got, want)
		}
	case 8: // wire round-trip: Encode==EncodeTo, Decode==DecodeInto
		mode := CountersNone + CounterMode(arg)%3
		st.checkWire(t, mode)
	case 9: // retune DF (coarse grid keeps decay values interesting)
		df := float64(arg%40) / 8.0
		if err := st.f1.SetDecayFactor(df, st.now); err != nil {
			t.Fatalf("set df: %v", err)
		}
		st.r1.setDF(df, st.now)
		// f2 must stay merge-compatible in geometry only; its DF is
		// independent, so also reset it occasionally to unlock inserts.
		if arg%4 == 0 {
			st.f2.Reset(st.now)
			st.r2.reset(st.now)
		}
	}
	st.compare(t, "after op")
}

// checkWire pins the append-style encoder and the in-place decoder to
// their allocating counterparts on f1's current state.
func (st *modelState) checkWire(t *testing.T, mode CounterMode) {
	t.Helper()
	plain, err := st.f1.Encode(mode)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	prefix := []byte{0xDE, 0xAD}
	appended, err := st.f1.EncodeTo(prefix, mode)
	if err != nil {
		t.Fatalf("encode to: %v", err)
	}
	if !bytes.Equal(appended[:2], prefix) || !bytes.Equal(appended[2:], plain) {
		t.Fatalf("EncodeTo bytes diverge from Encode (mode %d)", mode)
	}
	fresh, err := Decode(plain, st.f1.Config(), st.now)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := st.scratch.DecodeInto(plain, st.now); err != nil {
		t.Fatalf("decode into: %v", err)
	}
	for p := 0; p < st.f1.M(); p++ {
		if fresh.Counter(p) != st.scratch.Counter(p) {
			t.Fatalf("DecodeInto counter[%d] = %v, Decode %v (mode %d)",
				p, st.scratch.Counter(p), fresh.Counter(p), mode)
		}
	}
	if fresh.Merged() != st.scratch.Merged() {
		t.Fatalf("DecodeInto merged = %v, Decode %v", st.scratch.Merged(), fresh.Merged())
	}
}

// runModelTape interprets a byte tape as (op, arg) pairs.
func runModelTape(t *testing.T, tape []byte) {
	t.Helper()
	cfg := Config{M: 64, K: 4, Initial: 3, DecayPerMinute: 1}
	st := newModelState(cfg)
	for i := 0; i+1 < len(tape); i += 2 {
		st.step(t, tape[i], tape[i+1])
	}
}

// TestTCBFDifferentialModel drives long random op tapes; it runs under
// -race in make check.
func TestTCBFDifferentialModel(t *testing.T) {
	const ops = 400
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tape := make([]byte, 2*ops)
		rng.Read(tape)
		t.Run("", func(t *testing.T) {
			runModelTape(t, tape)
		})
	}
}

// FuzzTCBFModel hands the differential interpreter to the fuzzer: any
// coverage-guided tape on which the filter and the naive model disagree is
// a real bug.
func FuzzTCBFModel(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 0, 5, 1, 8, 2})                   // insert, merge, query, wire
	f.Add([]byte{0, 0, 2, 90, 6, 0, 4, 0, 7, 0})                  // decay then M-merge
	f.Add([]byte{0, 3, 9, 16, 2, 200, 5, 3, 8, 0, 8, 1, 8, 2})    // DF retune + all wire modes
	f.Add([]byte{1, 5, 3, 0, 0, 5, 9, 4, 1, 7, 4, 0, 2, 30, 7, 5}) // merged-insert rejection path
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 4096 {
			t.Skip("tape longer than useful")
		}
		runModelTape(t, tape)
	})
}
