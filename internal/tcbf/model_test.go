package tcbf

import (
	"bytes"
	"errors"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"
)

// This file checks the TCBF against a deliberately naive reference model: a
// map of position → counter ticks, straight-line reimplementations of
// insert, decay, both merges, and both queries, and an independent
// stdlib-FNV reimplementation of the double-hashing position derivation.
// The reference mirrors the documented fixed-point semantics — integer
// ticks of quantum Initial/1024, eager whole-tick decay with a nanosecond
// remainder, saturation at laneMax — with longhand arithmetic and none of
// the production shortcuts (no SWAR words, no lazy settlement, no guard
// bits, no inline FNV, no scratch reuse). A randomized op tape drives the
// real filter and the model in lockstep, comparing the full effective
// counter state tick-for-tick after every op — so every word-parallel pass
// and every lazy-decay fold in the production code must agree exactly with
// the obvious per-counter implementation. FuzzTCBFModel feeds the same
// interpreter coverage-guided tapes.

// refPositions derives the k bit positions for key with hash/fnv and
// uint64 arithmetic — independent of hashkit's inline FNV and
// overflow-avoiding modular stepping.
func refPositions(m, k int, key string) []int {
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	sum := h.Sum64()
	h1 := uint64(uint32(sum))
	h2 := uint64(uint32(sum>>32) | 1)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = int((h1%uint64(m) + uint64(i)*(h2%uint64(m))) % uint64(m))
	}
	return out
}

// refInitTicks and refLaneMax restate the packed representation's documented
// constants independently: Insert writes 1024 ticks and a counter can never
// exceed 32767 ticks.
const (
	refInitTicks = 1024
	refLaneMax   = 32767
)

// refTickNanos restates tickNanosFor longhand: the nanoseconds DF takes to
// erode one tick's worth (Initial/1024) of counter value, rounded to the
// nearest nanosecond, clamped to at least 1 and at most MaxInt64.
func refTickNanos(initial, perMinute float64) int64 {
	if perMinute <= 0 {
		return 0
	}
	quantum := initial / refInitTicks
	t := math.Round(quantum / perMinute * float64(time.Minute))
	if t < 1 {
		return 1
	}
	if t >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(t)
}

// refTCBF is the reference model. Counter ticks live in a map (absent ==
// 0); every temporal rule is written out longhand, and decay is applied
// eagerly on every advance — the opposite of the production filter's lazy
// pending-debt scheme, which must be observationally identical.
type refTCBF struct {
	m, k      int
	cfg       Config
	c         map[int]uint32 // position → counter ticks
	last      time.Duration
	merged    bool
	tickNanos int64
	remNanos  int64 // progress toward the next whole tick
}

func newRefTCBF(cfg Config, now time.Duration) *refTCBF {
	return &refTCBF{
		m: cfg.M, k: cfg.K, cfg: cfg,
		c:         make(map[int]uint32),
		last:      now,
		tickNanos: refTickNanos(cfg.Initial, cfg.DecayPerMinute),
	}
}

func (r *refTCBF) advance(now time.Duration) {
	elapsed := now - r.last
	r.last = now
	if elapsed == 0 || r.tickNanos == 0 {
		return
	}
	r.remNanos += int64(elapsed)
	if r.remNanos < 0 {
		r.remNanos = math.MaxInt64
	}
	ticks := uint64(r.remNanos / r.tickNanos)
	r.remNanos %= r.tickNanos
	if ticks == 0 {
		return
	}
	if ticks > refLaneMax {
		ticks = refLaneMax // no counter exceeds refLaneMax, so deeper decay is moot
	}
	for p, c := range r.c {
		if uint64(c) <= ticks {
			delete(r.c, p)
		} else {
			r.c[p] = c - uint32(ticks)
		}
	}
}

func (r *refTCBF) insert(key string, now time.Duration) error {
	if r.merged {
		return ErrMerged
	}
	r.advance(now)
	for _, p := range refPositions(r.m, r.k, key) {
		if r.c[p] == 0 {
			r.c[p] = refInitTicks
		}
	}
	return nil
}

func (r *refTCBF) merge(other *refTCBF, now time.Duration, additive bool) {
	r.advance(now)
	other.advance(now)
	for p, c := range other.c {
		switch {
		case r.c[p] == 0:
			r.c[p] = c
		case additive:
			sum := uint64(r.c[p]) + uint64(c)
			if sum > refLaneMax {
				sum = refLaneMax
			}
			r.c[p] = uint32(sum)
		case c > r.c[p]:
			r.c[p] = c
		}
	}
	r.merged = true
}

func (r *refTCBF) contains(key string, now time.Duration) bool {
	r.advance(now)
	for _, p := range refPositions(r.m, r.k, key) {
		if r.c[p] == 0 {
			return false
		}
	}
	return true
}

func (r *refTCBF) minCounter(key string, now time.Duration) float64 {
	r.advance(now)
	minT := uint32(math.MaxUint32)
	for _, p := range refPositions(r.m, r.k, key) {
		if r.c[p] < minT {
			minT = r.c[p]
		}
	}
	return float64(minT) * (r.cfg.Initial / refInitTicks)
}

func (r *refTCBF) setDF(perMinute float64, now time.Duration) {
	r.advance(now)
	r.cfg.DecayPerMinute = perMinute
	r.tickNanos = refTickNanos(r.cfg.Initial, perMinute)
}

func (r *refTCBF) reset(now time.Duration) {
	r.c = make(map[int]uint32)
	r.last = now
	r.merged = false
	r.remNanos = 0
}

// uniform reports whether all set counters share one tick value (vacuously
// true when empty) — the precondition CountersUniform encoding enforces.
func (r *refTCBF) uniform() bool {
	first := uint32(0)
	for _, c := range r.c {
		if first == 0 {
			first = c
		} else if c != first {
			return false
		}
	}
	return true
}

// modelState is the interpreter state: two filter/model pairs (so merges
// have a source), a monotonic clock, and a scratch filter for DecodeInto.
type modelState struct {
	f1, f2  *Filter
	r1, r2  *refTCBF
	scratch *Filter
	now     time.Duration
}

func newModelState(cfg Config) *modelState {
	return &modelState{
		f1:      MustNew(cfg, 0),
		f2:      MustNew(cfg, 0),
		r1:      newRefTCBF(cfg, 0),
		r2:      newRefTCBF(cfg, 0),
		scratch: MustNew(cfg, 0),
	}
}

func (st *modelState) compare(t *testing.T, tag string) {
	t.Helper()
	pairs := []struct {
		name string
		f    *Filter
		r    *refTCBF
	}{{"f1", st.f1, st.r1}, {"f2", st.f2, st.r2}}
	for _, pr := range pairs {
		if pr.f.Merged() != pr.r.merged {
			t.Fatalf("%s: %s merged = %v, model %v", tag, pr.name, pr.f.Merged(), pr.r.merged)
		}
		for p := 0; p < pr.r.m; p++ {
			// Effective ticks must match the model exactly — the packed
			// filter's lazily pending decay is invisible from outside.
			if got, want := pr.f.effTick(uint32(p)), pr.r.c[p]; got != want {
				t.Fatalf("%s: %s ticks[%d] = %d, model %d", tag, pr.name, p, got, want)
			}
			// And the float view is the same multiple of the same quantum.
			if got, want := pr.f.Counter(p), float64(pr.r.c[p])*(pr.r.cfg.Initial/refInitTicks); got != want {
				t.Fatalf("%s: %s counter[%d] = %v, model %v", tag, pr.name, p, got, want)
			}
		}
	}
}

// modelKeys is the small key universe; collisions in a 64-bit filter are
// frequent, which is the point.
var modelKeys = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
	"golf", "hotel", "india", "juliet", "kilo", "lima",
}

// step applies one (op, arg) pair to the filter and the model and fails the
// test on any divergence — in errors, results, or full counter state.
func (st *modelState) step(t *testing.T, op, arg byte) {
	t.Helper()
	key := modelKeys[int(arg)%len(modelKeys)]
	switch op % 12 {
	case 0, 1: // insert into f1 / f2
		f, r := st.f1, st.r1
		if op%12 == 1 {
			f, r = st.f2, st.r2
		}
		ferr := f.Insert(key, st.now)
		rerr := r.insert(key, st.now)
		if (ferr != nil) != (rerr != nil) || (ferr != nil && !errors.Is(ferr, ErrMerged)) {
			t.Fatalf("insert %q: filter err %v, model err %v", key, ferr, rerr)
		}
	case 2: // time passes (fractional minutes exercise decay rounding)
		st.now += time.Duration(arg) * time.Second
		if err := st.f1.Advance(st.now); err != nil {
			t.Fatalf("advance f1: %v", err)
		}
		if err := st.f2.Advance(st.now); err != nil {
			t.Fatalf("advance f2: %v", err)
		}
		st.r1.advance(st.now)
		st.r2.advance(st.now)
	case 3: // A-merge f2 into f1
		if err := st.f1.AMerge(st.f2, st.now); err != nil {
			t.Fatalf("amerge: %v", err)
		}
		st.r1.merge(st.r2, st.now, true)
	case 4: // M-merge f2 into f1
		if err := st.f1.MMerge(st.f2, st.now); err != nil {
			t.Fatalf("mmerge: %v", err)
		}
		st.r1.merge(st.r2, st.now, false)
	case 5: // existential query, plain, precomputed, and batched
		got, err := st.f1.Contains(key, st.now)
		if err != nil {
			t.Fatalf("contains: %v", err)
		}
		gotPre, err := st.f1.ContainsPre(Precompute(key), st.now)
		if err != nil {
			t.Fatalf("contains pre: %v", err)
		}
		batch := []PreKey{Precompute(key)}
		gotAny, err := st.f1.ContainsAnyPre(batch, st.now)
		if err != nil {
			t.Fatalf("contains any pre: %v", err)
		}
		gotAll, err := st.f1.ContainsAllPre(batch, st.now)
		if err != nil {
			t.Fatalf("contains all pre: %v", err)
		}
		if want := st.r1.contains(key, st.now); got != want || gotPre != want || gotAny != want || gotAll != want {
			t.Fatalf("contains %q = %v/%v/%v/%v, model %v", key, got, gotPre, gotAny, gotAll, want)
		}
	case 6: // min-counter query
		got, err := st.f1.MinCounter(key, st.now)
		if err != nil {
			t.Fatalf("min counter: %v", err)
		}
		if want := st.r1.minCounter(key, st.now); got != want {
			t.Fatalf("min counter %q = %v, model %v", key, got, want)
		}
	case 7: // preferential query f2 (peer) vs f1 (self)
		got, err := Preference(key, st.f2, st.f1, st.now)
		if err != nil {
			t.Fatalf("preference: %v", err)
		}
		peer := st.r2.minCounter(key, st.now)
		self := st.r1.minCounter(key, st.now)
		want := peer
		if self != 0 {
			want = peer - self
		}
		if got != want {
			t.Fatalf("preference %q = %v, model %v", key, got, want)
		}
	case 8: // wire round-trip: Encode==EncodeTo, Decode==DecodeInto
		mode := CountersNone + CounterMode(arg)%3
		st.checkWire(t, mode)
	case 9: // retune DF (coarse grid keeps decay values interesting)
		df := float64(arg%40) / 8.0
		if err := st.f1.SetDecayFactor(df, st.now); err != nil {
			t.Fatalf("set df: %v", err)
		}
		st.r1.setDF(df, st.now)
		// f2 must stay merge-compatible in geometry only; its DF is
		// independent, so also reset it occasionally to unlock inserts.
		if arg%4 == 0 {
			st.f2.Reset(st.now)
			st.r2.reset(st.now)
		}
	case 10: // reinforcement burst: drive counters into saturation
		for j := 0; j < 40; j++ {
			if err := st.f1.AMerge(st.f2, st.now); err != nil {
				t.Fatalf("amerge burst: %v", err)
			}
			st.r1.merge(st.r2, st.now, true)
		}
	case 11: // sub-tick time: exercise the nanosecond remainder carry
		st.now += time.Duration(arg) * 37 * time.Millisecond
		if err := st.f1.Advance(st.now); err != nil {
			t.Fatalf("advance f1: %v", err)
		}
		if err := st.f2.Advance(st.now); err != nil {
			t.Fatalf("advance f2: %v", err)
		}
		st.r1.advance(st.now)
		st.r2.advance(st.now)
	}
	st.compare(t, "after op")
}

// checkWire pins the append-style encoder and the in-place decoder to
// their allocating counterparts on f1's current state, and the uniform
// mode's refusal of non-uniform counters to the model's view.
func (st *modelState) checkWire(t *testing.T, mode CounterMode) {
	t.Helper()
	st.r1.advance(st.now) // encoding reflects the advanced clock
	plain, err := st.f1.Encode(mode)
	if mode == CountersUniform {
		if wantErr := !st.r1.uniform(); wantErr != (err != nil) || (err != nil && !errors.Is(err, ErrNotUniform)) {
			t.Fatalf("uniform encode err = %v, model uniform %v", err, st.r1.uniform())
		}
		if err != nil {
			if _, err2 := st.f1.EncodeTo(nil, mode); !errors.Is(err2, ErrNotUniform) {
				t.Fatalf("EncodeTo uniform err = %v, Encode refused", err2)
			}
			return
		}
	} else if err != nil {
		t.Fatalf("encode: %v", err)
	}
	prefix := []byte{0xDE, 0xAD}
	appended, err := st.f1.EncodeTo(prefix, mode)
	if err != nil {
		t.Fatalf("encode to: %v", err)
	}
	if !bytes.Equal(appended[:2], prefix) || !bytes.Equal(appended[2:], plain) {
		t.Fatalf("EncodeTo bytes diverge from Encode (mode %d)", mode)
	}
	fresh, err := Decode(plain, st.f1.Config(), st.now)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := st.scratch.DecodeInto(plain, st.now); err != nil {
		t.Fatalf("decode into: %v", err)
	}
	for p := 0; p < st.f1.M(); p++ {
		if fresh.Counter(p) != st.scratch.Counter(p) {
			t.Fatalf("DecodeInto counter[%d] = %v, Decode %v (mode %d)",
				p, st.scratch.Counter(p), fresh.Counter(p), mode)
		}
		// Decoding must preserve the set-bit structure exactly.
		if (fresh.Counter(p) > 0) != (st.f1.Counter(p) > 0) {
			t.Fatalf("decode flipped bit %d (mode %d)", p, mode)
		}
	}
	if fresh.Merged() != st.scratch.Merged() {
		t.Fatalf("DecodeInto merged = %v, Decode %v", st.scratch.Merged(), fresh.Merged())
	}
}

// runModelTape interprets a byte tape as (op, arg) pairs.
func runModelTape(t *testing.T, tape []byte) {
	t.Helper()
	cfg := Config{M: 64, K: 4, Initial: 3, DecayPerMinute: 1}
	st := newModelState(cfg)
	for i := 0; i+1 < len(tape); i += 2 {
		st.step(t, tape[i], tape[i+1])
	}
}

// TestTCBFDifferentialModel drives long random op tapes; it runs under
// -race in make check.
func TestTCBFDifferentialModel(t *testing.T) {
	const ops = 400
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tape := make([]byte, 2*ops)
		rng.Read(tape)
		t.Run("", func(t *testing.T) {
			runModelTape(t, tape)
		})
	}
}

// FuzzTCBFModel hands the differential interpreter to the fuzzer: any
// coverage-guided tape on which the filter and the naive model disagree is
// a real bug.
func FuzzTCBFModel(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 3, 0, 5, 1, 8, 2})                                             // insert, merge, query, wire
	f.Add([]byte{0, 0, 2, 90, 6, 0, 4, 0, 7, 0})                                            // decay then M-merge
	f.Add([]byte{0, 3, 9, 16, 2, 200, 5, 3, 8, 0, 8, 1, 8, 2})                              // DF retune + all wire modes
	f.Add([]byte{1, 5, 3, 0, 0, 5, 9, 4, 1, 7, 4, 0, 2, 30, 7, 5})                          // merged-insert rejection path
	f.Add([]byte{0, 1, 1, 1, 10, 0, 6, 1, 10, 0, 10, 0, 6, 1, 8, 2, 2, 255, 6, 1})          // saturation at laneMax, then decay back down
	f.Add([]byte{0, 0, 11, 1, 5, 0, 11, 255, 6, 0, 11, 3, 2, 1, 6, 0, 9, 9, 11, 100, 6, 0}) // sub-tick remainder carry across DF retune
	f.Add([]byte{1, 2, 3, 0, 2, 240, 2, 240, 2, 240, 5, 2, 0, 2, 8, 2})                     // decay far past zero, reinsert, wire
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 4096 {
			t.Skip("tape longer than useful")
		}
		runModelTape(t, tape)
	})
}
