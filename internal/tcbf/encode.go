package tcbf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// CounterMode selects how much counter information accompanies a filter on
// the wire (Section VI-C's optimizations).
type CounterMode uint8

const (
	// CountersNone strips counters entirely: the receiver only needs
	// membership, e.g. a broker requesting messages from a producer. The
	// paper: "it does not need to report the counters, which cuts the size".
	CountersNone CounterMode = iota + 1
	// CountersUniform transmits a single counter value shared by all set
	// bits, e.g. a freshly built genuine filter whose counters all equal C.
	// The paper: "If all the counters of a filter are identical, we merely
	// save one value".
	CountersUniform
	// CountersFull transmits one quantized byte per set bit, the general
	// case for relay filters.
	CountersFull
)

const (
	wireMagic   = 0xB5
	flagBitmap  = 0x04 // bit-vector sent raw instead of as a location list
	counterBits = 8    // "We use a 1-byte counter" (Section VI-C)
	// maxWireM caps the bit-vector length a decoder will allocate for; a
	// hostile header must not be able to demand gigabytes. Far above any
	// realistic TCBF (the paper uses 256 bits).
	maxWireM = 1 << 24
)

var (
	// ErrCorrupt is returned by Decode for malformed input.
	ErrCorrupt = errors.New("tcbf: corrupt encoding")
)

// Encode serializes the filter's set bits (and, per mode, counters) into
// the compact wire format of Section VI-C. Instead of shipping the raw
// m-bit vector, the encoder writes the locations of the set bits, each in
// ceil(log2 m) bits, whenever that is smaller (n_set * ceil(log2 m) < m);
// otherwise it falls back to the raw bitmap. Counters are quantized to one
// byte relative to the filter's maximum counter.
//
// The filter should be settled (Advance) before encoding; Encode reads the
// counters as they are.
func (f *Filter) Encode(mode CounterMode) ([]byte, error) {
	if mode < CountersNone || mode > CountersFull {
		return nil, fmt.Errorf("tcbf: unknown counter mode %d", mode)
	}
	set := make([]uint32, 0, f.SetBits())
	maxC := 0.0
	for p, c := range f.counters {
		if c > 0 {
			set = append(set, uint32(p))
			if c > maxC {
				maxC = c
			}
		}
	}
	locBits := bitsFor(f.M())
	useBitmap := len(set)*locBits >= f.M()

	var buf []byte
	buf = append(buf, wireMagic)
	flags := byte(mode)
	if useBitmap {
		flags |= flagBitmap
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.M()))
	buf = append(buf, byte(f.K()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(set)))

	if useBitmap {
		bm := make([]byte, (f.M()+7)/8)
		for _, p := range set {
			bm[p/8] |= 1 << (p % 8)
		}
		buf = append(buf, bm...)
	} else {
		var bw bitWriter
		for _, p := range set {
			bw.write(uint64(p), locBits)
		}
		buf = append(buf, bw.finish()...)
	}

	switch mode {
	case CountersNone:
	case CountersUniform:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(maxC))
	case CountersFull:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(maxC))
		for _, p := range set {
			buf = append(buf, quantize(f.counters[p], maxC))
		}
	}
	return buf, nil
}

// Decode reconstructs a filter from data. The decay configuration (initial
// value and DF) is not on the wire — peers running the same protocol share
// it — so the caller supplies cfg's Initial and DecayPerMinute; M and K are
// read from the wire and must match cfg when cfg specifies them (non-zero).
// The decoded filter's clock starts at now and it is marked merged, since
// its provenance is unknown.
//
// Filters encoded with CountersNone decode with every set counter equal to
// cfg.Initial.
func Decode(data []byte, cfg Config, now time.Duration) (*Filter, error) {
	if len(data) < 11 {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if data[0] != wireMagic {
		return nil, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, data[0])
	}
	flags := data[1]
	mode := CounterMode(flags &^ flagBitmap)
	if mode < CountersNone || mode > CountersFull {
		return nil, fmt.Errorf("%w: unknown counter mode %d", ErrCorrupt, mode)
	}
	m := int(binary.BigEndian.Uint32(data[2:6]))
	k := int(data[6])
	nSet := int(binary.BigEndian.Uint32(data[7:11]))
	if m > maxWireM {
		return nil, fmt.Errorf("%w: bit-vector length %d exceeds decoder cap %d", ErrCorrupt, m, maxWireM)
	}
	if cfg.M != 0 && cfg.M != m {
		return nil, fmt.Errorf("%w: wire m=%d, expected %d", ErrCorrupt, m, cfg.M)
	}
	if cfg.K != 0 && cfg.K != k {
		return nil, fmt.Errorf("%w: wire k=%d, expected %d", ErrCorrupt, k, cfg.K)
	}
	if nSet > m {
		return nil, fmt.Errorf("%w: %d set bits exceed vector length %d", ErrCorrupt, nSet, m)
	}
	cfg.M, cfg.K = m, k
	f, err := New(cfg, now)
	if err != nil {
		return nil, err
	}
	f.merged = true

	body := data[11:]
	set := make([]uint32, 0, nSet)
	if flags&flagBitmap != 0 {
		need := (m + 7) / 8
		if len(body) < need {
			return nil, fmt.Errorf("%w: truncated bitmap", ErrCorrupt)
		}
		for p := 0; p < m; p++ {
			if body[p/8]&(1<<(p%8)) != 0 {
				set = append(set, uint32(p))
			}
		}
		if len(set) != nSet {
			return nil, fmt.Errorf("%w: bitmap has %d set bits, header says %d", ErrCorrupt, len(set), nSet)
		}
		body = body[need:]
	} else {
		locBits := bitsFor(m)
		need := (nSet*locBits + 7) / 8
		if len(body) < need {
			return nil, fmt.Errorf("%w: truncated location list", ErrCorrupt)
		}
		br := bitReader{data: body[:need]}
		for i := 0; i < nSet; i++ {
			v, ok := br.read(locBits)
			if !ok || v >= uint64(m) {
				return nil, fmt.Errorf("%w: bad location", ErrCorrupt)
			}
			set = append(set, uint32(v))
		}
		body = body[need:]
	}

	switch mode {
	case CountersNone:
		for _, p := range set {
			f.counters[p] = cfg.Initial
		}
	case CountersUniform:
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: truncated uniform counter", ErrCorrupt)
		}
		v := math.Float64frombits(binary.BigEndian.Uint64(body[:8]))
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: bad counter value %g", ErrCorrupt, v)
		}
		for _, p := range set {
			f.counters[p] = v
		}
	case CountersFull:
		if len(body) < 8+len(set) {
			return nil, fmt.Errorf("%w: truncated counters", ErrCorrupt)
		}
		maxC := math.Float64frombits(binary.BigEndian.Uint64(body[:8]))
		if maxC < 0 || math.IsNaN(maxC) || math.IsInf(maxC, 0) {
			return nil, fmt.Errorf("%w: bad counter scale %g", ErrCorrupt, maxC)
		}
		for i, p := range set {
			f.counters[p] = dequantize(body[8+i], maxC)
		}
	}
	return f, nil
}

// WireSize returns the number of bytes Encode would produce in the given
// mode; it is what the simulator charges against a contact's bandwidth
// budget.
func (f *Filter) WireSize(mode CounterMode) (int, error) {
	b, err := f.Encode(mode)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// PaperWireBits returns the Section VI-C analytic size, in bits, of a
// filter with nSet set bits over an m-bit vector: the set-bit locations
// (ceil(log2 m) bits each, or the raw bitmap when smaller) plus counters
// per mode. It excludes framing overhead and is used by the memory
// experiment (M1) to match the paper's accounting.
func PaperWireBits(nSet, m int, mode CounterMode) int {
	locBits := nSet * bitsFor(m)
	if locBits >= m {
		locBits = m
	}
	switch mode {
	case CountersNone:
		return locBits
	case CountersUniform:
		return locBits + counterBits
	default:
		return locBits + nSet*counterBits
	}
}

// quantize maps c in [0, max] to a byte, reserving 0 for exact zero so that
// a set bit never round-trips to unset.
func quantize(c, max float64) byte {
	if max <= 0 || c <= 0 {
		return 0
	}
	q := int(math.Round(c / max * 255))
	if q < 1 {
		q = 1
	}
	if q > 255 {
		q = 255
	}
	return byte(q)
}

func dequantize(q byte, max float64) float64 {
	return float64(q) / 255 * max
}

// bitsFor returns ceil(log2 m) for m >= 1, with a floor of 1 bit.
func bitsFor(m int) int {
	b := 0
	for v := m - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

type bitWriter struct {
	out  []byte
	cur  uint64
	ncur int
}

func (w *bitWriter) write(v uint64, bits int) {
	for i := bits - 1; i >= 0; i-- {
		w.cur = w.cur<<1 | (v>>uint(i))&1
		w.ncur++
		if w.ncur == 8 {
			w.out = append(w.out, byte(w.cur))
			w.cur, w.ncur = 0, 0
		}
	}
}

func (w *bitWriter) finish() []byte {
	if w.ncur > 0 {
		w.out = append(w.out, byte(w.cur<<uint(8-w.ncur)))
		w.cur, w.ncur = 0, 0
	}
	return w.out
}

type bitReader struct {
	data []byte
	pos  int // bit position
}

func (r *bitReader) read(bits int) (uint64, bool) {
	if r.pos+bits > len(r.data)*8 {
		return 0, false
	}
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := r.pos / 8
		bitIdx := 7 - r.pos%8
		v = v<<1 | uint64(r.data[byteIdx]>>uint(bitIdx))&1
		r.pos++
	}
	return v, true
}
