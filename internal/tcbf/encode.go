package tcbf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"
)

// CounterMode selects how much counter information accompanies a filter on
// the wire (Section VI-C's optimizations).
type CounterMode uint8

const (
	// CountersNone strips counters entirely: the receiver only needs
	// membership, e.g. a broker requesting messages from a producer. The
	// paper: "it does not need to report the counters, which cuts the size".
	CountersNone CounterMode = iota + 1
	// CountersUniform transmits a single counter value shared by all set
	// bits, e.g. a freshly built genuine filter whose counters all equal C.
	// The paper: "If all the counters of a filter are identical, we merely
	// save one value".
	CountersUniform
	// CountersFull transmits one quantized byte per set bit, the general
	// case for relay filters.
	CountersFull
)

const (
	wireMagic   = 0xB5
	flagBitmap  = 0x04 // bit-vector sent raw instead of as a location list
	counterBits = 8    // "We use a 1-byte counter" (Section VI-C)
	// maxWireM caps the bit-vector length a decoder will allocate for; a
	// hostile header must not be able to demand gigabytes. Far above any
	// realistic TCBF (the paper uses 256 bits).
	maxWireM = 1 << 24
)

var (
	// ErrCorrupt is returned by Decode for malformed input.
	ErrCorrupt = errors.New("tcbf: corrupt encoding")

	// ErrNotUniform is returned by Encode in CountersUniform mode when the
	// filter's set counters are not all equal: flattening them to a single
	// value would silently discard reinforcement state. Encode with
	// CountersFull instead.
	ErrNotUniform = errors.New("tcbf: counters not uniform")
)

// Encode serializes the filter's set bits (and, per mode, counters) into
// the compact wire format of Section VI-C. Instead of shipping the raw
// m-bit vector, the encoder writes the locations of the set bits, each in
// ceil(log2 m) bits, whenever that is smaller (n_set * ceil(log2 m) < m);
// otherwise it falls back to the raw bitmap. Counters are quantized to one
// byte relative to the filter's maximum counter.
//
// Pending decay is folded into the encoded counters on the fly, so the
// bytes always reflect the last Advance'd clock.
func (f *Filter) Encode(mode CounterMode) ([]byte, error) {
	return f.EncodeTo(nil, mode)
}

// EncodeTo appends the filter's wire encoding to dst and returns the
// extended slice — the same bytes Encode produces, but into a
// caller-reused buffer, so a warm hot path encodes without allocating.
//
// In CountersUniform mode the filter's set counters must actually be
// uniform; ErrNotUniform is returned otherwise.
//
//bsub:hotpath
func (f *Filter) EncodeTo(dst []byte, mode CounterMode) ([]byte, error) {
	if mode < CountersNone || mode > CountersFull {
		return nil, fmt.Errorf("tcbf: unknown counter mode %d", mode)
	}
	// One word-parallel scan for the set-bit count, the maximum counter,
	// and uniformity, with pending decay applied on the fly: popcount of
	// the lane flags counts set bits, a running maxWord accumulates the
	// per-lane maximum, and uniformity is a whole-word compare against the
	// first value broadcast into every non-zero lane.
	pend := bcast(f.pendingTicks)
	nSet := 0
	var accMax, firstW uint64
	uniformT := true
	for _, w := range f.words {
		if w == 0 {
			continue
		}
		e := satSubWord(w, pend)
		nz := nzLanes(e)
		if nz == 0 {
			continue
		}
		nSet += bits.OnesCount64(nz)
		accMax = maxWord(accMax, e)
		if firstW == 0 {
			firstW = bcast(uint32(e>>uint(bits.TrailingZeros64(nz))) & laneMask)
		}
		if uniformT && e != firstW&(nz*laneMask) {
			uniformT = false
		}
	}
	maxT := uint32(accMax) & laneMask
	for s := laneBits; s < 64; s += laneBits {
		if v := uint32(accMax>>s) & laneMask; v > maxT {
			maxT = v
		}
	}
	if mode == CountersUniform && !uniformT {
		return nil, fmt.Errorf("%w: %d set counters span multiple values", ErrNotUniform, nSet)
	}

	locBits := bitsFor(f.M())
	useBitmap := nSet*locBits >= f.M()

	dst = append(dst, wireMagic)
	flags := byte(mode)
	if useBitmap {
		flags |= flagBitmap
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.M()))
	dst = append(dst, byte(f.K()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(nSet))

	if useBitmap {
		start := len(dst)
		for n := (f.M() + 7) / 8; n > 0; n-- {
			dst = append(dst, 0)
		}
		for wi, w := range f.words {
			if w == 0 {
				continue
			}
			nz := nzLanes(satSubWord(w, pend))
			// Lane flags sit at bits 0,16,32,48; fold them to bits 0..3.
			g := (nz | nz>>15 | nz>>30 | nz>>45) & 0xF
			p := wi * lanesPerWord
			dst[start+p/8] |= byte(g << (p % 8))
		}
	} else {
		// Pack each set position in locBits bits, MSB first, draining the
		// accumulator a byte at a time (locBits <= 24, so it never fills).
		var cur uint64
		ncur := 0
		for wi, w := range f.words {
			if w == 0 {
				continue
			}
			e := satSubWord(w, pend)
			for nz := nzLanes(e); nz != 0; nz &= nz - 1 {
				l := bits.TrailingZeros64(nz) / laneBits
				cur = cur<<locBits | uint64(wi*lanesPerWord+l)
				ncur += locBits
				for ncur >= 8 {
					ncur -= 8
					dst = append(dst, byte(cur>>ncur))
				}
			}
		}
		if ncur > 0 {
			dst = append(dst, byte(cur<<(8-ncur)))
		}
	}

	switch mode {
	case CountersNone:
	case CountersUniform:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(float64(maxT)*f.quantum))
	case CountersFull:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(float64(maxT)*f.quantum))
		qs := 255.0 / float64(maxT) // hoisted reciprocal; loop is empty when maxT == 0
		for _, w := range f.words {
			if w == 0 {
				continue
			}
			e := satSubWord(w, pend)
			for nz := nzLanes(e); nz != 0; nz &= nz - 1 {
				v := uint32(e>>uint(bits.TrailingZeros64(nz))) & laneMask
				dst = append(dst, quantizeTick(v, qs))
			}
		}
	}
	return dst, nil
}

// wireHeader is the parsed fixed-size prefix of a filter encoding.
type wireHeader struct {
	mode   CounterMode
	bitmap bool
	m, k   int
	nSet   int
	body   []byte
}

// parseHeader validates the fixed 11-byte header and returns it with the
// remaining body bytes.
//
//bsub:hotpath
func parseHeader(data []byte) (wireHeader, error) {
	var h wireHeader
	if len(data) < 11 {
		return h, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if data[0] != wireMagic {
		return h, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, data[0])
	}
	flags := data[1]
	h.mode = CounterMode(flags &^ flagBitmap)
	if h.mode < CountersNone || h.mode > CountersFull {
		return h, fmt.Errorf("%w: unknown counter mode %d", ErrCorrupt, h.mode)
	}
	h.bitmap = flags&flagBitmap != 0
	h.m = int(binary.BigEndian.Uint32(data[2:6]))
	h.k = int(data[6])
	h.nSet = int(binary.BigEndian.Uint32(data[7:11]))
	if h.m > maxWireM {
		return h, fmt.Errorf("%w: bit-vector length %d exceeds decoder cap %d", ErrCorrupt, h.m, maxWireM)
	}
	if h.nSet > h.m {
		return h, fmt.Errorf("%w: %d set bits exceed vector length %d", ErrCorrupt, h.nSet, h.m)
	}
	h.body = data[11:]
	return h, nil
}

// Decode reconstructs a filter from data. The decay configuration (initial
// value and DF) is not on the wire — peers running the same protocol share
// it — so the caller supplies cfg's Initial and DecayPerMinute; M and K are
// read from the wire and must match cfg when cfg specifies them (non-zero).
// The decoded filter's clock starts at now and it is marked merged, since
// its provenance is unknown.
//
// Filters encoded with CountersNone decode with every set counter equal to
// cfg.Initial. Wire counter values are re-quantized to the receiver's tick
// scale (cfg.Initial/1024 per tick), clamped to [1 tick, 32*Initial].
func Decode(data []byte, cfg Config, now time.Duration) (*Filter, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if cfg.M != 0 && cfg.M != h.m {
		return nil, fmt.Errorf("%w: wire m=%d, expected %d", ErrCorrupt, h.m, cfg.M)
	}
	if cfg.K != 0 && cfg.K != h.k {
		return nil, fmt.Errorf("%w: wire k=%d, expected %d", ErrCorrupt, h.k, cfg.K)
	}
	cfg.M, cfg.K = h.m, h.k
	f, err := New(cfg, now)
	if err != nil {
		return nil, err
	}
	if err := f.decodeBody(h); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto reconstructs a filter from data in place, reusing f's counter
// slab instead of allocating a fresh filter — the hot-path variant of
// Decode for a scratch filter reused across contacts. The wire geometry
// must match f's (the protocol fixes m and k globally); on any error f is
// left in an unspecified state and must be Reset before reuse. As with
// Decode, f's clock restarts at now and f is marked merged.
//
//bsub:hotpath
func (f *Filter) DecodeInto(data []byte, now time.Duration) error {
	h, err := parseHeader(data)
	if err != nil {
		return err
	}
	if h.m != f.M() || h.k != f.K() {
		return fmt.Errorf("%w: wire geometry (%d,%d), filter has (%d,%d)",
			ErrCorrupt, h.m, h.k, f.M(), f.K())
	}
	f.Reset(now)
	return f.decodeBody(h)
}

// decodeBody fills a zeroed filter of matching geometry from a parsed
// encoding, marking it merged. It allocates nothing.
//
//bsub:hotpath
func (f *Filter) decodeBody(h wireHeader) error {
	f.merged = true
	body := h.body
	locEnd := 0
	if h.bitmap {
		locEnd = (h.m + 7) / 8
		if len(body) < locEnd {
			return fmt.Errorf("%w: truncated bitmap", ErrCorrupt)
		}
		if tail := h.m & 7; tail != 0 && body[locEnd-1]>>tail != 0 {
			return fmt.Errorf("%w: bitmap bits beyond vector length", ErrCorrupt)
		}
		found := 0
		for _, b := range body[:locEnd] {
			found += bits.OnesCount8(b)
		}
		if found != h.nSet {
			return fmt.Errorf("%w: bitmap has %d set bits, header says %d", ErrCorrupt, found, h.nSet)
		}
	} else {
		locEnd = (h.nSet*bitsFor(h.m) + 7) / 8
		if len(body) < locEnd {
			return fmt.Errorf("%w: truncated location list", ErrCorrupt)
		}
	}

	// Determine the counter value source before walking the positions, so
	// positions and counters stream through in one paired pass. The wire
	// carries counter units; they become ticks at the receiver's scale.
	uniformTick := uint32(0)
	scale := 0.0 // ticks per quantized-byte unit, CountersFull only
	counters := []byte(nil)
	switch h.mode {
	case CountersNone:
		uniformTick = initTicks
	case CountersUniform:
		if len(body) < locEnd+8 {
			return fmt.Errorf("%w: truncated uniform counter", ErrCorrupt)
		}
		u := math.Float64frombits(binary.BigEndian.Uint64(body[locEnd:]))
		// Zero is only legal on an empty filter: a "set" bit with a zero
		// counter is a contradiction (decay would have cleared the bit).
		if u < 0 || (u == 0 && h.nSet > 0) || math.IsNaN(u) || math.IsInf(u, 0) {
			return fmt.Errorf("%w: bad counter value %g", ErrCorrupt, u)
		}
		if h.nSet > 0 {
			uniformTick = f.tickFromValue(u)
		}
	case CountersFull:
		if len(body) < locEnd+8+h.nSet {
			return fmt.Errorf("%w: truncated counters", ErrCorrupt)
		}
		maxC := math.Float64frombits(binary.BigEndian.Uint64(body[locEnd:]))
		if maxC < 0 || (maxC == 0 && h.nSet > 0) || math.IsNaN(maxC) || math.IsInf(maxC, 0) {
			return fmt.Errorf("%w: bad counter scale %g", ErrCorrupt, maxC)
		}
		counters = body[locEnd+8 : locEnd+8+h.nSet]
		scale = maxC / 255 * f.invQuantum
	}

	if h.bitmap {
		i := 0
		for bi := 0; bi < locEnd; bi++ {
			for b := body[bi]; b != 0; b &= b - 1 {
				p := uint32(bi*8 + bits.TrailingZeros8(b))
				if counters != nil {
					q := counters[i]
					i++
					if q == 0 {
						// The encoder reserves 0 for unset; a zero byte for
						// a set bit is always corruption.
						return fmt.Errorf("%w: zero counter byte for set bit %d", ErrCorrupt, p)
					}
					f.setLane(p, tickFromScaled(q, scale))
				} else {
					f.setLane(p, uniformTick)
				}
			}
		}
	} else {
		locBits := bitsFor(h.m)
		br := bitReader{data: body[:locEnd]}
		for i := 0; i < h.nSet; i++ {
			v, ok := br.read(locBits)
			if !ok || v >= uint64(h.m) {
				return fmt.Errorf("%w: bad location", ErrCorrupt)
			}
			if counters != nil {
				q := counters[i]
				if q == 0 {
					return fmt.Errorf("%w: zero counter byte for set bit %d", ErrCorrupt, v)
				}
				f.setLane(uint32(v), tickFromScaled(q, scale))
			} else {
				f.setLane(uint32(v), uniformTick)
			}
		}
	}
	return nil
}

// WireSize returns the number of bytes Encode would produce in the given
// mode; it is what the simulator charges against a contact's bandwidth
// budget.
func (f *Filter) WireSize(mode CounterMode) (int, error) {
	b, err := f.Encode(mode)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// PaperWireBits returns the Section VI-C analytic size, in bits, of a
// filter with nSet set bits over an m-bit vector: the set-bit locations
// (ceil(log2 m) bits each, or the raw bitmap when smaller) plus counters
// per mode. It excludes framing overhead and is used by the memory
// experiment (M1) to match the paper's accounting.
func PaperWireBits(nSet, m int, mode CounterMode) int {
	locBits := nSet * bitsFor(m)
	if locBits >= m {
		locBits = m
	}
	switch mode {
	case CountersNone:
		return locBits
	case CountersUniform:
		return locBits + counterBits
	default:
		return locBits + nSet*counterBits
	}
}

// quantizeTick maps a tick count v in [1, max] to a wire byte in [1, 255]
// by rounding v*255/max, reserving 0 for unset so that a set bit never
// round-trips to unset. qs is the caller-hoisted reciprocal 255/max, which
// turns the per-byte division into a multiply. The float path is exact:
// v*255 < 2^23 is representable, IEEE division is correctly rounded, and
// the quotient (denominator <= laneMax) is never within an ulp of a
// half-integer except when exactly equal — where truncating v*qs + 0.5
// rounds half up, matching the integer formula (v*510+max)/(2*max).
//
//bsub:hotpath
func quantizeTick(v uint32, qs float64) byte {
	q := uint32(float64(v)*qs + 0.5)
	if q < 1 {
		q = 1
	}
	return byte(q)
}

// tickFromValue converts a wire counter value (in counter units) to this
// filter's tick scale, clamping to [1, laneMax]: the bit is set on the
// wire, so it must stay set after re-quantization.
//
//bsub:hotpath
func (f *Filter) tickFromValue(c float64) uint32 {
	// c >= 0 here, so truncating c*invQuantum + 0.5 is round-half-up —
	// math.Round without its negative-zero branches.
	t := c*f.invQuantum + 0.5
	if t < 1 {
		return 1
	}
	if t > laneMax {
		return laneMax
	}
	return uint32(t)
}

// tickFromScaled converts a quantized wire byte to ticks given the
// precomputed ticks-per-byte-unit scale, clamping like tickFromValue.
//
//bsub:hotpath
func tickFromScaled(q byte, scale float64) uint32 {
	// q and scale are non-negative, so truncation after +0.5 rounds half up.
	t := float64(q)*scale + 0.5
	if t < 1 {
		return 1
	}
	if t > laneMax {
		return laneMax
	}
	return uint32(t)
}

// bitsFor returns ceil(log2 m) for m >= 1, with a floor of 1 bit.
//
//bsub:hotpath
func bitsFor(m int) int {
	b := 0
	for v := m - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

type bitReader struct {
	data []byte
	pos  int // bit position
}

// read extracts the next n bits MSB-first, a byte-sized chunk at a time
// rather than bit-by-bit.
//
//bsub:hotpath
func (r *bitReader) read(n int) (uint64, bool) {
	if r.pos+n > len(r.data)*8 {
		return 0, false
	}
	var v uint64
	for got := 0; got < n; {
		avail := 8 - r.pos&7
		take := n - got
		if take > avail {
			take = avail
		}
		chunk := uint64(r.data[r.pos>>3]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += take
		got += take
	}
	return v, true
}
