package tcbf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// CounterMode selects how much counter information accompanies a filter on
// the wire (Section VI-C's optimizations).
type CounterMode uint8

const (
	// CountersNone strips counters entirely: the receiver only needs
	// membership, e.g. a broker requesting messages from a producer. The
	// paper: "it does not need to report the counters, which cuts the size".
	CountersNone CounterMode = iota + 1
	// CountersUniform transmits a single counter value shared by all set
	// bits, e.g. a freshly built genuine filter whose counters all equal C.
	// The paper: "If all the counters of a filter are identical, we merely
	// save one value".
	CountersUniform
	// CountersFull transmits one quantized byte per set bit, the general
	// case for relay filters.
	CountersFull
)

const (
	wireMagic   = 0xB5
	flagBitmap  = 0x04 // bit-vector sent raw instead of as a location list
	counterBits = 8    // "We use a 1-byte counter" (Section VI-C)
	// maxWireM caps the bit-vector length a decoder will allocate for; a
	// hostile header must not be able to demand gigabytes. Far above any
	// realistic TCBF (the paper uses 256 bits).
	maxWireM = 1 << 24
)

var (
	// ErrCorrupt is returned by Decode for malformed input.
	ErrCorrupt = errors.New("tcbf: corrupt encoding")
)

// Encode serializes the filter's set bits (and, per mode, counters) into
// the compact wire format of Section VI-C. Instead of shipping the raw
// m-bit vector, the encoder writes the locations of the set bits, each in
// ceil(log2 m) bits, whenever that is smaller (n_set * ceil(log2 m) < m);
// otherwise it falls back to the raw bitmap. Counters are quantized to one
// byte relative to the filter's maximum counter.
//
// The filter should be settled (Advance) before encoding; Encode reads the
// counters as they are.
func (f *Filter) Encode(mode CounterMode) ([]byte, error) {
	return f.EncodeTo(nil, mode)
}

// EncodeTo appends the filter's wire encoding to dst and returns the
// extended slice — the same bytes Encode produces, but into a
// caller-reused buffer, so a warm hot path encodes without allocating.
//
//bsub:hotpath
func (f *Filter) EncodeTo(dst []byte, mode CounterMode) ([]byte, error) {
	if mode < CountersNone || mode > CountersFull {
		return nil, fmt.Errorf("tcbf: unknown counter mode %d", mode)
	}
	nSet, maxC := 0, 0.0
	for _, c := range f.counters {
		if c > 0 {
			nSet++
			if c > maxC {
				maxC = c
			}
		}
	}
	locBits := bitsFor(f.M())
	useBitmap := nSet*locBits >= f.M()

	dst = append(dst, wireMagic)
	flags := byte(mode)
	if useBitmap {
		flags |= flagBitmap
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.M()))
	dst = append(dst, byte(f.K()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(nSet))

	if useBitmap {
		start := len(dst)
		for n := (f.M() + 7) / 8; n > 0; n-- {
			dst = append(dst, 0)
		}
		for p, c := range f.counters {
			if c > 0 {
				dst[start+p/8] |= 1 << (p % 8)
			}
		}
	} else {
		// Pack each set position in locBits bits, MSB first.
		var cur uint64
		ncur := 0
		for p, c := range f.counters {
			if c <= 0 {
				continue
			}
			for i := locBits - 1; i >= 0; i-- {
				cur = cur<<1 | (uint64(p)>>uint(i))&1
				ncur++
				if ncur == 8 {
					dst = append(dst, byte(cur))
					cur, ncur = 0, 0
				}
			}
		}
		if ncur > 0 {
			dst = append(dst, byte(cur<<uint(8-ncur)))
		}
	}

	switch mode {
	case CountersNone:
	case CountersUniform:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(maxC))
	case CountersFull:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(maxC))
		for _, c := range f.counters {
			if c > 0 {
				dst = append(dst, quantize(c, maxC))
			}
		}
	}
	return dst, nil
}

// wireHeader is the parsed fixed-size prefix of a filter encoding.
type wireHeader struct {
	mode   CounterMode
	bitmap bool
	m, k   int
	nSet   int
	body   []byte
}

// parseHeader validates the fixed 11-byte header and returns it with the
// remaining body bytes.
//
//bsub:hotpath
func parseHeader(data []byte) (wireHeader, error) {
	var h wireHeader
	if len(data) < 11 {
		return h, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if data[0] != wireMagic {
		return h, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, data[0])
	}
	flags := data[1]
	h.mode = CounterMode(flags &^ flagBitmap)
	if h.mode < CountersNone || h.mode > CountersFull {
		return h, fmt.Errorf("%w: unknown counter mode %d", ErrCorrupt, h.mode)
	}
	h.bitmap = flags&flagBitmap != 0
	h.m = int(binary.BigEndian.Uint32(data[2:6]))
	h.k = int(data[6])
	h.nSet = int(binary.BigEndian.Uint32(data[7:11]))
	if h.m > maxWireM {
		return h, fmt.Errorf("%w: bit-vector length %d exceeds decoder cap %d", ErrCorrupt, h.m, maxWireM)
	}
	if h.nSet > h.m {
		return h, fmt.Errorf("%w: %d set bits exceed vector length %d", ErrCorrupt, h.nSet, h.m)
	}
	h.body = data[11:]
	return h, nil
}

// Decode reconstructs a filter from data. The decay configuration (initial
// value and DF) is not on the wire — peers running the same protocol share
// it — so the caller supplies cfg's Initial and DecayPerMinute; M and K are
// read from the wire and must match cfg when cfg specifies them (non-zero).
// The decoded filter's clock starts at now and it is marked merged, since
// its provenance is unknown.
//
// Filters encoded with CountersNone decode with every set counter equal to
// cfg.Initial.
func Decode(data []byte, cfg Config, now time.Duration) (*Filter, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if cfg.M != 0 && cfg.M != h.m {
		return nil, fmt.Errorf("%w: wire m=%d, expected %d", ErrCorrupt, h.m, cfg.M)
	}
	if cfg.K != 0 && cfg.K != h.k {
		return nil, fmt.Errorf("%w: wire k=%d, expected %d", ErrCorrupt, h.k, cfg.K)
	}
	cfg.M, cfg.K = h.m, h.k
	f, err := New(cfg, now)
	if err != nil {
		return nil, err
	}
	if err := f.decodeBody(h); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto reconstructs a filter from data in place, reusing f's counter
// slab instead of allocating a fresh filter — the hot-path variant of
// Decode for a scratch filter reused across contacts. The wire geometry
// must match f's (the protocol fixes m and k globally); on any error f is
// left in an unspecified state and must be Reset before reuse. As with
// Decode, f's clock restarts at now and f is marked merged.
//
//bsub:hotpath
func (f *Filter) DecodeInto(data []byte, now time.Duration) error {
	h, err := parseHeader(data)
	if err != nil {
		return err
	}
	if h.m != f.M() || h.k != f.K() {
		return fmt.Errorf("%w: wire geometry (%d,%d), filter has (%d,%d)",
			ErrCorrupt, h.m, h.k, f.M(), f.K())
	}
	f.Reset(now)
	return f.decodeBody(h)
}

// decodeBody fills a zeroed filter of matching geometry from a parsed
// encoding, marking it merged. It allocates nothing.
//
//bsub:hotpath
func (f *Filter) decodeBody(h wireHeader) error {
	f.merged = true
	body := h.body
	if h.bitmap {
		need := (h.m + 7) / 8
		if len(body) < need {
			return fmt.Errorf("%w: truncated bitmap", ErrCorrupt)
		}
		found := 0
		for p := 0; p < h.m; p++ {
			if body[p/8]&(1<<(p%8)) != 0 {
				found++
			}
		}
		if found != h.nSet {
			return fmt.Errorf("%w: bitmap has %d set bits, header says %d", ErrCorrupt, found, h.nSet)
		}
	} else {
		locBits := bitsFor(h.m)
		need := (h.nSet*locBits + 7) / 8
		if len(body) < need {
			return fmt.Errorf("%w: truncated location list", ErrCorrupt)
		}
	}

	// Determine the counter value source before walking the positions, so
	// positions and counters stream through in one paired pass.
	var uniform, maxC float64
	counters := []byte(nil)
	locEnd := 0
	switch h.bitmap {
	case true:
		locEnd = (h.m + 7) / 8
	case false:
		locEnd = (h.nSet*bitsFor(h.m) + 7) / 8
	}
	switch h.mode {
	case CountersNone:
		uniform = f.cfg.Initial
	case CountersUniform:
		if len(body) < locEnd+8 {
			return fmt.Errorf("%w: truncated uniform counter", ErrCorrupt)
		}
		uniform = math.Float64frombits(binary.BigEndian.Uint64(body[locEnd:]))
		if uniform < 0 || math.IsNaN(uniform) || math.IsInf(uniform, 0) {
			return fmt.Errorf("%w: bad counter value %g", ErrCorrupt, uniform)
		}
	case CountersFull:
		if len(body) < locEnd+8+h.nSet {
			return fmt.Errorf("%w: truncated counters", ErrCorrupt)
		}
		maxC = math.Float64frombits(binary.BigEndian.Uint64(body[locEnd:]))
		if maxC < 0 || math.IsNaN(maxC) || math.IsInf(maxC, 0) {
			return fmt.Errorf("%w: bad counter scale %g", ErrCorrupt, maxC)
		}
		counters = body[locEnd+8:]
	}

	if h.bitmap {
		i := 0
		for p := 0; p < h.m; p++ {
			if body[p/8]&(1<<(p%8)) == 0 {
				continue
			}
			if counters != nil {
				f.counters[p] = dequantize(counters[i], maxC)
			} else {
				f.counters[p] = uniform
			}
			i++
		}
	} else {
		locBits := bitsFor(h.m)
		br := bitReader{data: body[:locEnd]}
		for i := 0; i < h.nSet; i++ {
			v, ok := br.read(locBits)
			if !ok || v >= uint64(h.m) {
				return fmt.Errorf("%w: bad location", ErrCorrupt)
			}
			if counters != nil {
				f.counters[v] = dequantize(counters[i], maxC)
			} else {
				f.counters[v] = uniform
			}
		}
	}
	return nil
}

// WireSize returns the number of bytes Encode would produce in the given
// mode; it is what the simulator charges against a contact's bandwidth
// budget.
func (f *Filter) WireSize(mode CounterMode) (int, error) {
	b, err := f.Encode(mode)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// PaperWireBits returns the Section VI-C analytic size, in bits, of a
// filter with nSet set bits over an m-bit vector: the set-bit locations
// (ceil(log2 m) bits each, or the raw bitmap when smaller) plus counters
// per mode. It excludes framing overhead and is used by the memory
// experiment (M1) to match the paper's accounting.
func PaperWireBits(nSet, m int, mode CounterMode) int {
	locBits := nSet * bitsFor(m)
	if locBits >= m {
		locBits = m
	}
	switch mode {
	case CountersNone:
		return locBits
	case CountersUniform:
		return locBits + counterBits
	default:
		return locBits + nSet*counterBits
	}
}

// quantize maps c in [0, max] to a byte, reserving 0 for exact zero so that
// a set bit never round-trips to unset.
//
//bsub:hotpath
func quantize(c, max float64) byte {
	if max <= 0 || c <= 0 {
		return 0
	}
	q := int(math.Round(c / max * 255))
	if q < 1 {
		q = 1
	}
	if q > 255 {
		q = 255
	}
	return byte(q)
}

//bsub:hotpath
func dequantize(q byte, max float64) float64 {
	return float64(q) / 255 * max
}

// bitsFor returns ceil(log2 m) for m >= 1, with a floor of 1 bit.
//
//bsub:hotpath
func bitsFor(m int) int {
	b := 0
	for v := m - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

type bitReader struct {
	data []byte
	pos  int // bit position
}

//bsub:hotpath
func (r *bitReader) read(bits int) (uint64, bool) {
	if r.pos+bits > len(r.data)*8 {
		return 0, false
	}
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := r.pos / 8
		bitIdx := 7 - r.pos%8
		v = v<<1 | uint64(r.data[byteIdx]>>uint(bitIdx))&1
		r.pos++
	}
	return v, true
}
