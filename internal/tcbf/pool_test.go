package tcbf

import (
	"fmt"
	"testing"
	"time"
)

func TestPoolValidation(t *testing.T) {
	cfg := testConfig()
	for _, th := range []float64{0, -0.5, 1.5} {
		if _, err := NewPool(cfg, th, 0); err == nil {
			t.Errorf("threshold %g accepted", th)
		}
	}
	if _, err := NewPool(cfg, 0.5, 0); err != nil {
		t.Errorf("valid threshold rejected: %v", err)
	}
	if _, err := NewPool(Config{M: 0, K: 4, Initial: 1}, 0.5, 0); err == nil {
		t.Error("invalid filter config accepted")
	}
}

func TestPoolAllocatesOnThreshold(t *testing.T) {
	cfg := Config{M: 64, K: 4, Initial: 10, DecayPerMinute: 0}
	p, err := NewPool(cfg, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := p.Insert(fmt.Sprintf("k%d", i), 0); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if p.Len() < 2 {
		t.Errorf("pool never allocated a second filter (len=%d)", p.Len())
	}
	for i := 0; i < 30; i++ {
		ok, err := p.Contains(fmt.Sprintf("k%d", i), 0)
		if err != nil || !ok {
			t.Errorf("pool lost key k%d", i)
		}
	}
}

func TestPoolSingleFilterWhileSparse(t *testing.T) {
	cfg := Config{M: 1024, K: 4, Initial: 10, DecayPerMinute: 0}
	p, err := NewPool(cfg, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Insert(fmt.Sprintf("k%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 1 {
		t.Errorf("sparse pool allocated %d filters, want 1", p.Len())
	}
}

func TestPoolAdvanceDropsEmptyFilters(t *testing.T) {
	cfg := Config{M: 64, K: 4, Initial: 10, DecayPerMinute: 1}
	p, err := NewPool(cfg, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := p.Insert(fmt.Sprintf("k%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	grew := p.Len()
	if err := p.Advance(time.Hour); err != nil { // everything decays
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("pool kept %d filters after full decay (was %d), want 1", p.Len(), grew)
	}
	ok, err := p.Contains("k0", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("decayed pool still contains key")
	}
	if err := p.Insert("fresh", time.Hour); err != nil {
		t.Errorf("insert after full decay: %v", err)
	}
}

func TestPoolJointFPRDecreasesWithSplit(t *testing.T) {
	// Splitting the same keys across more filters lowers the joint FPR
	// (Section VI-D): compare a crammed single filter to a split pool.
	cfg := Config{M: 128, K: 4, Initial: 10, DecayPerMinute: 0}
	crammed, err := NewPool(cfg, 1, 0) // threshold 1: never splits
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewPool(cfg, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := crammed.Insert(key, 0); err != nil {
			t.Fatal(err)
		}
		if err := split.Insert(key, 0); err != nil {
			t.Fatal(err)
		}
	}
	if split.Len() < 2 {
		t.Fatalf("split pool did not split (len=%d)", split.Len())
	}
	if split.JointFPR() >= crammed.JointFPR() {
		t.Errorf("split pool FPR %.4f not below crammed FPR %.4f",
			split.JointFPR(), crammed.JointFPR())
	}
	if split.MemoryBits() <= crammed.MemoryBits() {
		t.Errorf("split pool memory %d bits not above crammed %d bits (no free lunch)",
			split.MemoryBits(), crammed.MemoryBits())
	}
}

func TestPoolClockSkew(t *testing.T) {
	p, err := NewPool(testConfig(), 0.5, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("k", 0); err == nil {
		t.Error("insert with rewound clock accepted")
	}
}
