package tcbf

import (
	"encoding/hex"
	"math"
	"testing"
	"time"
)

// Wire-compatibility goldens: the byte streams below were produced by the
// previous []float64-counter encoder (before the packed fixed-point
// representation) for cfg {M:256, K:4, Initial:10, DecayPerMinute:1}. The
// packed decoder must accept them and reconstruct the same set bits with
// counters within one quantization step of the original values, proving
// that nodes running the packed representation interoperate with peers
// (or stored state) from the float64 era.
//
// Provenance of the full-mode filter: keys NewMoon, Twitter'sNew,
// funnybutnotcool, openwebawards inserted at t=0, decayed 4 minutes at
// DF=1 (counters 6), then NewMoon reinforced via A-merge at 4m (its bits
// at 16). The uniform-mode filter is the same four keys freshly inserted
// (all counters 10). The partitioned filter is keys key-000..key-023 over
// 4 partitions, advanced 3 minutes (all counters 7).
const (
	goldenWireNone    = "b501000001000400000010060b0c2d575f7a7d9ca8b5b7babdc0ee"
	goldenWireUniform = "b502000001000400000010060b0c2d575f7a7d9ca8b5b7babdc0ee4024000000000000"
	goldenWireFull    = "b503000001000400000010060b0c2d575f7a7d9ca8b5b7babdc0ee40300000000000006060ff6060ff60ff60606060606060ff"
	goldenWirePart    = "ba0400000043b50300000100040000001803090a1835373d4e545573808288999fa0a7bebfcde4eaf2401c000000000000ffffffffffffffffffffffffffffffffffffffffffffffff00000043b503000001000400000018090b1c222328315056676d6e738c9ba1b2b9bec0d7d8e6fd401c000000000000ffffffffffffffffffffffffffffffffffffffffffffffff00000043b503000001000400000018060b0d2425334a5658696f70757e9da3b4babbc0d9e8eeff401c000000000000ffffffffffffffffffffffffffffffffffffffffffffffff00000043b5030000010004000000180107082633353b4c52535a717280979da5b6bcbdcbe8eaf0401c000000000000ffffffffffffffffffffffffffffffffffffffffffffffff"
)

var goldenWireCfg = Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad golden hex: %v", err)
	}
	return b
}

// goldenPositions is where the float64 encoder reported set bits; value 16
// at the reinforced NewMoon positions, 6 everywhere else.
var goldenCounter16 = map[int]bool{12: true, 95: true, 125: true, 238: true}

var goldenPositions = []int{
	6, 11, 12, 45, 87, 95, 122, 125, 156, 168,
	181, 183, 186, 189, 192, 238,
}

func TestDecodeFloat64EraWire(t *testing.T) {
	for _, tc := range []struct {
		name string
		hex  string
		mode CounterMode
	}{
		{"none", goldenWireNone, CountersNone},
		{"uniform", goldenWireUniform, CountersUniform},
		{"full", goldenWireFull, CountersFull},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Decode(mustHex(t, tc.hex), goldenWireCfg, 0)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if f.M() != 256 || f.K() != 4 {
				t.Fatalf("geometry (%d,%d), want (256,4)", f.M(), f.K())
			}
			want := map[int]float64{}
			for _, p := range goldenPositions {
				switch {
				case tc.mode == CountersNone:
					want[p] = 10 // decodes at cfg.Initial
				case tc.mode == CountersUniform:
					want[p] = 10
				case goldenCounter16[p]:
					want[p] = 16
				default:
					want[p] = 6
				}
			}
			// One byte-quantization step at the wire's max counter, plus
			// one tick of fixed-point re-quantization at the receiver.
			tol := 16.0/255 + goldenWireCfg.Initial/initTicks
			for p := 0; p < f.M(); p++ {
				got := f.Counter(p)
				w, set := want[p]
				if set != (got > 0) {
					t.Fatalf("bit %d set=%v, want %v", p, got > 0, set)
				}
				if set && math.Abs(got-w) > tol {
					t.Fatalf("counter[%d] = %v, want %v ± %v", p, got, w, tol)
				}
			}
			if got := f.SetBits(); got != len(goldenPositions) {
				t.Fatalf("SetBits = %d, want %d", got, len(goldenPositions))
			}
			if !f.Merged() {
				t.Fatal("decoded filter not marked merged")
			}

			// The decoded filter must keep working as a live filter:
			// survive decay and answer queries.
			ok, err := f.Contains("NewMoon", 2*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("NewMoon lost after 2 minutes of decay")
			}
		})
	}
}

func TestDecodePartitionedFloat64EraWire(t *testing.T) {
	p, err := DecodePartitioned(mustHex(t, goldenWirePart), goldenWireCfg, 0)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if p.Partitions() != 4 {
		t.Fatalf("partitions = %d, want 4", p.Partitions())
	}
	// All 24 keys were at counter 7 (10 - 3 minutes of decay) on the wire.
	tol := 7.0/255 + goldenWireCfg.Initial/initTicks
	for i := 0; i < 24; i++ {
		key := "key-" + string([]byte{'0' + byte(i/100), '0' + byte(i/10%10), '0' + byte(i%10)})
		ok, err := p.Contains(key, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s missing after decode", key)
		}
		mc, err := p.MinCounter(key, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc-7) > tol {
			t.Fatalf("%s min counter = %v, want 7 ± %v", key, mc, tol)
		}
	}
}
