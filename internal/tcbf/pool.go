package tcbf

import (
	"fmt"
	"time"
)

// Pool implements the dynamic TCBF allocation strategy of Section VI-D: a
// set of same-geometry TCBFs representing one logical key set, where a new
// filter is allocated when the fill ratio of the current filter exceeds a
// threshold. Splitting a key population across h filters lowers the joint
// false-positive rate (Eq. 7) at the cost of extra memory (Eq. 8).
type Pool struct {
	cfg       Config
	threshold float64
	filters   []*Filter

	// free holds filters whose key population fully decayed away; their
	// counter slabs are reused by the next overflow allocation instead of
	// going back to the garbage collector. In steady state a pool under
	// churn allocates no new slabs at all.
	free []*Filter
}

// NewPool returns a pool over filters configured by cfg that allocates a
// new filter whenever the current one's fill ratio exceeds threshold
// (0 < threshold <= 1).
func NewPool(cfg Config, threshold float64, now time.Duration) (*Pool, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("tcbf: fill-ratio threshold must be in (0,1], got %g", threshold)
	}
	first, err := New(cfg, now)
	if err != nil {
		return nil, err
	}
	return &Pool{cfg: cfg, threshold: threshold, filters: []*Filter{first}}, nil
}

// Insert adds key at time now, allocating a fresh filter first if the
// current filter's fill ratio exceeds the pool's threshold. Fully-decayed
// filters recycled by Advance are reused before new slabs are allocated.
func (p *Pool) Insert(key string, now time.Duration) error {
	cur := p.filters[len(p.filters)-1]
	if err := cur.Advance(now); err != nil {
		return err
	}
	if cur.FillRatio() > p.threshold {
		next, err := p.obtain(now)
		if err != nil {
			return err
		}
		p.filters = append(p.filters, next)
		cur = next
	}
	return cur.Insert(key, now)
}

// obtain returns an empty filter, recycling a retired slab when one is
// available.
func (p *Pool) obtain(now time.Duration) (*Filter, error) {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		f.Reset(now)
		return f, nil
	}
	return New(p.cfg, now)
}

// Contains reports whether any filter in the pool may contain key at now.
func (p *Pool) Contains(key string, now time.Duration) (bool, error) {
	for _, f := range p.filters {
		ok, err := f.Contains(key, now)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Advance observes the clock on every filter (decay itself is lazy and is
// settled word-parallel when a filter is next touched), retiring filters
// whose key population has fully decayed away (keeping at least one) onto
// the reuse free list.
func (p *Pool) Advance(now time.Duration) error {
	kept := p.filters[:0]
	var retired *Filter
	for _, f := range p.filters {
		if err := f.Advance(now); err != nil {
			return err
		}
		if f.SetBits() > 0 {
			kept = append(kept, f)
		} else {
			retired = f
			p.free = append(p.free, f)
		}
	}
	if len(kept) == 0 {
		// Every filter decayed away: keep the last retired one as the
		// single live filter.
		p.free = p.free[:len(p.free)-1]
		retired.Reset(now)
		kept = append(kept, retired)
	}
	p.filters = kept
	return nil
}

// Len returns the number of filters currently allocated.
func (p *Pool) Len() int { return len(p.filters) }

// Filters returns the pool's filters; callers must not mutate them.
func (p *Pool) Filters() []*Filter { return p.filters }

// JointFPR returns the pool's joint false-positive rate per Eq. 7: a query
// is a joint false positive unless every filter answers correctly, so the
// rate is 1 - prod_i (1 - fpr_i), with each fpr_i estimated from the
// filter's observed fill ratio.
func (p *Pool) JointFPR() float64 {
	correct := 1.0
	for _, f := range p.filters {
		correct *= 1 - f.EstimatedFPR()
	}
	return 1 - correct
}

// MemoryBits returns the pool's total wire memory in bits under the paper's
// Section VI-C accounting (Eq. 8): per filter, the set-bit locations plus
// one-byte counters.
func (p *Pool) MemoryBits() int {
	total := 0
	for _, f := range p.filters {
		total += PaperWireBits(f.SetBits(), f.M(), CountersFull)
	}
	return total
}
