package tcbf

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Partitioned is a collection of h same-geometry TCBFs representing one
// logical key set — the Section VI-D construction ("a collection of h BFs
// {B0, ..., Bh-1} to represent a single set of elements") made usable
// inside the protocol: every key is routed to exactly one partition by an
// independent hash, so each partition holds ~n/h keys and the joint
// false-positive rate follows Eq. 7, while all of the TCBF's temporal
// operations (decay, A-merge, M-merge, preferential query) remain
// well-defined partition-wise.
//
// Two Partitioned filters can only be merged when they agree on both the
// per-partition geometry and the partition count, which a protocol fixes
// globally (like m and k).
type Partitioned struct {
	parts []*Filter
	cfg   Config
}

// NewPartitioned returns an empty partitioned TCBF with h partitions.
func NewPartitioned(cfg Config, h int, now time.Duration) (*Partitioned, error) {
	if h < 1 || h > 255 {
		return nil, fmt.Errorf("tcbf: partition count must be in [1,255], got %d", h)
	}
	parts := make([]*Filter, h)
	for i := range parts {
		f, err := New(cfg, now)
		if err != nil {
			return nil, err
		}
		parts[i] = f
	}
	return &Partitioned{parts: parts, cfg: cfg}, nil
}

// MustNewPartitioned is NewPartitioned for known-valid parameters.
//
//bsub:coldpath
func MustNewPartitioned(cfg Config, h int, now time.Duration) *Partitioned {
	p, err := NewPartitioned(cfg, h, now)
	if err != nil {
		panic(err)
	}
	return p
}

// Partitions returns the partition count h.
//
//bsub:hotpath
func (p *Partitioned) Partitions() int { return len(p.parts) }

// Config returns the per-partition configuration.
//
//bsub:hotpath
func (p *Partitioned) Config() Config { return p.cfg }

// routeHash is an allocation-free FNV-1a/32 over a 0x7A prefix byte plus
// the key bytes — the same digest hash/fnv produced for the original
// two-Write sequence, domain-separated from hashkit's key hashing.
//
//bsub:hotpath
func routeHash(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h ^= 0x7A
	h *= prime32
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// route selects the partition for a key with a hash independent of the
// filters' bit hashing (different FNV offset via a prefix byte).
//
//bsub:hotpath
func (p *Partitioned) route(key string) int {
	if len(p.parts) == 1 {
		return 0
	}
	return int(routeHash(key) % uint32(len(p.parts)))
}

// routePre selects the partition for a precomputed key.
//
//bsub:hotpath
func (p *Partitioned) routePre(k PreKey) int {
	if len(p.parts) == 1 {
		return 0
	}
	return int(k.route % uint32(len(p.parts)))
}

// Insert adds key to its partition.
func (p *Partitioned) Insert(key string, now time.Duration) error {
	return p.parts[p.route(key)].Insert(key, now)
}

// InsertPre is Insert for a precomputed key.
//
//bsub:hotpath
func (p *Partitioned) InsertPre(k PreKey, now time.Duration) error {
	return p.parts[p.routePre(k)].InsertPre(k, now)
}

// InsertAll inserts each key.
func (p *Partitioned) InsertAll(keys []string, now time.Duration) error {
	for _, k := range keys {
		if err := p.Insert(k, now); err != nil {
			return err
		}
	}
	return nil
}

// InsertAllPre inserts each precomputed key.
//
//bsub:hotpath
func (p *Partitioned) InsertAllPre(keys []PreKey, now time.Duration) error {
	for _, k := range keys {
		if err := p.InsertPre(k, now); err != nil {
			return err
		}
	}
	return nil
}

// Contains answers the existential query against key's partition.
func (p *Partitioned) Contains(key string, now time.Duration) (bool, error) {
	return p.parts[p.route(key)].Contains(key, now)
}

// ContainsPre is Contains for a precomputed key.
//
//bsub:hotpath
func (p *Partitioned) ContainsPre(k PreKey, now time.Duration) (bool, error) {
	return p.parts[p.routePre(k)].ContainsPre(k, now)
}

// ContainsAnyPre reports whether at least one precomputed key may be in
// the filter at time now, routing each key to its partition.
//
//bsub:hotpath
func (p *Partitioned) ContainsAnyPre(keys []PreKey, now time.Duration) (bool, error) {
	for i := range keys {
		ok, err := p.ContainsPre(keys[i], now)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// ContainsAllPre reports whether every precomputed key may be in the
// filter at time now, routing each key to its partition.
//
//bsub:hotpath
func (p *Partitioned) ContainsAllPre(keys []PreKey, now time.Duration) (bool, error) {
	for i := range keys {
		ok, err := p.ContainsPre(keys[i], now)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// MinCounter returns the key's minimum counter in its partition.
func (p *Partitioned) MinCounter(key string, now time.Duration) (float64, error) {
	return p.parts[p.route(key)].MinCounter(key, now)
}

// MinCounterPre is MinCounter for a precomputed key.
//
//bsub:hotpath
func (p *Partitioned) MinCounterPre(k PreKey, now time.Duration) (float64, error) {
	return p.parts[p.routePre(k)].MinCounterPre(k, now)
}

// Advance settles decay on every partition.
//
//bsub:hotpath
func (p *Partitioned) Advance(now time.Duration) error {
	for _, f := range p.parts {
		if err := f.Advance(now); err != nil {
			return err
		}
	}
	return nil
}

// SetDecayFactor retunes every partition's DF after settling decay.
//
//bsub:hotpath
func (p *Partitioned) SetDecayFactor(perMinute float64, now time.Duration) error {
	for _, f := range p.parts {
		if err := f.SetDecayFactor(perMinute, now); err != nil {
			return err
		}
	}
	p.cfg.DecayPerMinute = perMinute
	return nil
}

//bsub:hotpath
func (p *Partitioned) checkCompatible(other *Partitioned) error {
	if len(p.parts) != len(other.parts) {
		return fmt.Errorf("%w: %d vs %d partitions", ErrGeometry, len(p.parts), len(other.parts))
	}
	if p.parts[0].M() != other.parts[0].M() || p.parts[0].K() != other.parts[0].K() {
		return fmt.Errorf("%w: per-partition geometry (%d,%d) vs (%d,%d)", ErrGeometry,
			p.parts[0].M(), p.parts[0].K(), other.parts[0].M(), other.parts[0].K())
	}
	return nil
}

// AMerge merges other into p additively, partition-wise.
//
//bsub:hotpath
func (p *Partitioned) AMerge(other *Partitioned, now time.Duration) error {
	if err := p.checkCompatible(other); err != nil {
		return err
	}
	for i, f := range p.parts {
		if err := f.AMerge(other.parts[i], now); err != nil {
			return err
		}
	}
	return nil
}

// MMerge merges other into p by maximum, partition-wise.
//
//bsub:hotpath
func (p *Partitioned) MMerge(other *Partitioned, now time.Duration) error {
	if err := p.checkCompatible(other); err != nil {
		return err
	}
	for i, f := range p.parts {
		if err := f.MMerge(other.parts[i], now); err != nil {
			return err
		}
	}
	return nil
}

// PreferencePartitioned runs the Section IV-A preferential query against
// the key's partition in both filters.
func PreferencePartitioned(key string, peer, self *Partitioned, now time.Duration) (float64, error) {
	if err := self.checkCompatible(peer); err != nil {
		return 0, err
	}
	i := self.route(key)
	return Preference(key, peer.parts[i], self.parts[i], now)
}

// PreferencePartitionedPre is PreferencePartitioned for a precomputed key.
//
//bsub:hotpath
func PreferencePartitionedPre(k PreKey, peer, self *Partitioned, now time.Duration) (float64, error) {
	if err := self.checkCompatible(peer); err != nil {
		return 0, err
	}
	i := self.routePre(k)
	return PreferencePre(k, peer.parts[i], self.parts[i], now)
}

// Retouch applies Filter.Retouch to every partition with the same fill
// bound and returns the largest counter value cleared anywhere — the
// joint false-negative cutoff across partitions.
func (p *Partitioned) Retouch(maxFill float64, now time.Duration) (float64, error) {
	cutoff := 0.0
	for _, f := range p.parts {
		c, err := f.Retouch(maxFill, now)
		if err != nil {
			return cutoff, err
		}
		if c > cutoff {
			cutoff = c
		}
	}
	return cutoff, nil
}

// Reset clears every partition to the state NewPartitioned would produce,
// with all clocks at now; it lets a scratch partitioned filter be reused
// across contacts instead of reallocated.
//
//bsub:hotpath
func (p *Partitioned) Reset(now time.Duration) {
	for _, f := range p.parts {
		f.Reset(now)
	}
}

// Clone returns a deep copy.
func (p *Partitioned) Clone() *Partitioned {
	parts := make([]*Filter, len(p.parts))
	for i, f := range p.parts {
		parts[i] = f.Clone()
	}
	return &Partitioned{parts: parts, cfg: p.cfg}
}

// SetBits returns the total set bits across partitions.
//
//bsub:hotpath
func (p *Partitioned) SetBits() int {
	total := 0
	for _, f := range p.parts {
		total += f.SetBits()
	}
	return total
}

// EstimatedFPR returns the joint Eq. 7 false-positive rate: the query
// routes to one partition, but an adversarial (unknown) key is equally
// likely to land in any, so the expected rate is the mean of the
// partition rates.
//
//bsub:hotpath
func (p *Partitioned) EstimatedFPR() float64 {
	sum := 0.0
	for _, f := range p.parts {
		sum += f.EstimatedFPR()
	}
	return sum / float64(len(p.parts))
}

// Encode serializes all partitions: a 2-byte header (magic, h) followed by
// length-prefixed per-partition encodings, empty partitions compressed to
// a zero length.
func (p *Partitioned) Encode(mode CounterMode) ([]byte, error) {
	return p.EncodeTo(nil, mode)
}

// EncodeTo appends the partitioned wire encoding to dst and returns the
// extended slice — the same bytes Encode produces, into a caller-reused
// buffer.
//
//bsub:hotpath
func (p *Partitioned) EncodeTo(dst []byte, mode CounterMode) ([]byte, error) {
	dst = append(dst, wireMagic^0x0F, byte(len(p.parts)))
	for _, f := range p.parts {
		if f.SetBits() == 0 {
			dst = binary.BigEndian.AppendUint32(dst, 0)
			continue
		}
		// Reserve the length prefix and backpatch it once the partition's
		// actual encoded size is known.
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		var err error
		dst, err = f.EncodeTo(dst, mode)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst, nil
}

// WireSize returns the encoded size in bytes.
func (p *Partitioned) WireSize(mode CounterMode) (int, error) {
	b, err := p.Encode(mode)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// DecodePartitioned reconstructs a partitioned filter; cfg supplies the
// decay parameters as in Decode. When cfg leaves M or K zero (wildcard),
// the geometry is pinned by the first non-empty partition on the wire and
// every later partition must agree, so a decoded Partitioned can never mix
// per-partition geometries; an all-empty wire cannot be decoded with a
// wildcard cfg, since nothing pins the geometry.
func DecodePartitioned(data []byte, cfg Config, now time.Duration) (*Partitioned, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: truncated partitioned header", ErrCorrupt)
	}
	if data[0] != wireMagic^0x0F {
		return nil, fmt.Errorf("%w: bad partitioned magic 0x%02x", ErrCorrupt, data[0])
	}
	h := int(data[1])
	if h < 1 {
		return nil, fmt.Errorf("%w: zero partitions", ErrCorrupt)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	parts := make([]*Filter, h)
	rest := data[2:]
	for i := 0; i < h; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated partition length", ErrCorrupt)
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if n == 0 {
			continue // empty partition; built below once geometry is known
		}
		if len(rest) < n {
			return nil, fmt.Errorf("%w: truncated partition body", ErrCorrupt)
		}
		f, err := Decode(rest[:n], cfg, now)
		if err != nil {
			return nil, err
		}
		if cfg.M == 0 || cfg.K == 0 {
			// Pin the wildcard geometry; Decode rejects later partitions
			// that disagree with ErrCorrupt.
			cfg.M, cfg.K = f.M(), f.K()
		}
		parts[i] = f
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	if cfg.M == 0 || cfg.K == 0 {
		return nil, fmt.Errorf("tcbf: cannot decode an all-empty partitioned filter without cfg geometry")
	}
	for i, f := range parts {
		if f != nil {
			continue
		}
		nf, err := New(cfg, now)
		if err != nil {
			return nil, err
		}
		// Empty partitions carry the same unknown provenance as decoded
		// ones: the whole filter refuses genuine inserts uniformly, no
		// matter which partition a key routes to.
		nf.merged = true
		parts[i] = nf
	}
	return &Partitioned{parts: parts, cfg: cfg}, nil
}

// DecodeInto reconstructs a partitioned filter from data in place, reusing
// p's counter slabs — the hot-path variant of DecodePartitioned for a
// scratch filter reused across contacts. The wire partition count and
// per-partition geometry must match p's (the protocol fixes them
// globally); on any error p is left in an unspecified state and must be
// Reset before reuse. As with DecodePartitioned, every partition —
// empty ones included — comes back marked merged with its clock at now:
// the wire copy's provenance is unknown, so the filter refuses genuine
// inserts uniformly regardless of which partition a key routes to.
//
//bsub:hotpath
func (p *Partitioned) DecodeInto(data []byte, now time.Duration) error {
	if len(data) < 2 {
		return fmt.Errorf("%w: truncated partitioned header", ErrCorrupt)
	}
	if data[0] != wireMagic^0x0F {
		return fmt.Errorf("%w: bad partitioned magic 0x%02x", ErrCorrupt, data[0])
	}
	if h := int(data[1]); h != len(p.parts) {
		return fmt.Errorf("%w: wire has %d partitions, filter has %d", ErrCorrupt, h, len(p.parts))
	}
	rest := data[2:]
	for _, f := range p.parts {
		if len(rest) < 4 {
			return fmt.Errorf("%w: truncated partition length", ErrCorrupt)
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if n == 0 {
			f.Reset(now)
			f.merged = true
			continue
		}
		if len(rest) < n {
			return fmt.Errorf("%w: truncated partition body", ErrCorrupt)
		}
		if err := f.DecodeInto(rest[:n], now); err != nil {
			return err
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return nil
}
