package tcbf

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testConfig() Config {
	return Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
}

func mustInsert(t *testing.T, f *Filter, key string, now time.Duration) {
	t.Helper()
	if err := f.Insert(key, now); err != nil {
		t.Fatalf("insert %q: %v", key, err)
	}
}

func mustContains(t *testing.T, f *Filter, key string, now time.Duration) bool {
	t.Helper()
	ok, err := f.Contains(key, now)
	if err != nil {
		t.Fatalf("contains %q: %v", key, err)
	}
	return ok
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "paper eval", cfg: Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 0.138}},
		{name: "no decay", cfg: Config{M: 64, K: 2, Initial: 1, DecayPerMinute: 0}},
		{name: "zero m", cfg: Config{M: 0, K: 4, Initial: 10}, wantErr: true},
		{name: "zero k", cfg: Config{M: 64, K: 0, Initial: 10}, wantErr: true},
		{name: "zero initial", cfg: Config{M: 64, K: 2, Initial: 0}, wantErr: true},
		{name: "negative initial", cfg: Config{M: 64, K: 2, Initial: -3}, wantErr: true},
		{name: "negative df", cfg: Config{M: 64, K: 2, Initial: 1, DecayPerMinute: -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg, 0)
			if (err != nil) != tt.wantErr {
				t.Errorf("New() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestInsertSetsInitialValue(t *testing.T) {
	f := MustNew(testConfig(), 0)
	mustInsert(t, f, "k0", 0)
	min, err := f.MinCounter("k0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if min != 10 {
		t.Errorf("MinCounter = %g, want initial 10", min)
	}
}

func TestInsertDoesNotBumpExistingCounters(t *testing.T) {
	// "If the counter has already been set, we do not change its value."
	cfg := Config{M: 4, K: 2, Initial: 10, DecayPerMinute: 1}
	f := MustNew(cfg, 0)
	mustInsert(t, f, "a", 0)
	if err := f.Advance(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Re-inserting the same key after decay must NOT restore the counters:
	// its bits are still set (counter 5), so they are left unchanged.
	mustInsert(t, f, "a", 5*time.Minute)
	min, err := f.MinCounter("a", 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if min != 5 {
		t.Errorf("MinCounter after re-insert = %g, want 5 (unchanged)", min)
	}
}

func TestDecayRemovesKeys(t *testing.T) {
	f := MustNew(testConfig(), 0) // C=10, DF=1/min
	mustInsert(t, f, "ephemeral", 0)
	if !mustContains(t, f, "ephemeral", 9*time.Minute) {
		t.Fatal("key decayed too early (9 min, lifetime 10 min)")
	}
	if mustContains(t, f, "ephemeral", 11*time.Minute) {
		t.Error("key survived past its decay lifetime")
	}
}

func TestDecayExactBoundary(t *testing.T) {
	f := MustNew(testConfig(), 0)
	mustInsert(t, f, "k", 0)
	// At exactly C/DF minutes the counter hits zero: removed.
	if mustContains(t, f, "k", 10*time.Minute) {
		t.Error("counter should reach zero at exactly 10 minutes")
	}
}

func TestZeroDFNeverDecays(t *testing.T) {
	cfg := testConfig()
	cfg.DecayPerMinute = 0
	f := MustNew(cfg, 0)
	mustInsert(t, f, "forever", 0)
	if !mustContains(t, f, "forever", 1000*time.Hour) {
		t.Error("DF=0 filter lost a key")
	}
}

func TestClockSkewRejected(t *testing.T) {
	f := MustNew(testConfig(), time.Hour)
	err := f.Insert("x", 0)
	if !errors.Is(err, ErrClockSkew) {
		t.Errorf("error = %v, want ErrClockSkew", err)
	}
}

func TestInsertIntoMergedFilterFails(t *testing.T) {
	a := MustNew(testConfig(), 0)
	b := MustNew(testConfig(), 0)
	mustInsert(t, b, "k", 0)
	if err := a.AMerge(b, 0); err != nil {
		t.Fatal(err)
	}
	if !a.Merged() {
		t.Fatal("A-merge target not marked merged")
	}
	err := a.Insert("new", 0)
	if !errors.Is(err, ErrMerged) {
		t.Errorf("insert into merged filter: error = %v, want ErrMerged", err)
	}
	// The documented workaround: insert into a fresh filter, then merge.
	fresh := MustNew(testConfig(), 0)
	mustInsert(t, fresh, "new", 0)
	if err := a.AMerge(fresh, 0); err != nil {
		t.Fatal(err)
	}
	if !mustContains(t, a, "new", 0) {
		t.Error("workaround failed to add key")
	}
}

func TestAMergeSumsCounters(t *testing.T) {
	// Fig. 3: A-merge of two filters holding the same key doubles the
	// counters; that is the reinforcement mechanism.
	a := MustNew(testConfig(), 0)
	b := MustNew(testConfig(), 0)
	mustInsert(t, a, "k", 0)
	mustInsert(t, b, "k", 0)
	if err := a.AMerge(b, 0); err != nil {
		t.Fatal(err)
	}
	min, err := a.MinCounter("k", 0)
	if err != nil {
		t.Fatal(err)
	}
	if min != 20 {
		t.Errorf("A-merged counter = %g, want 20", min)
	}
}

func TestMMergeTakesMax(t *testing.T) {
	// Fig. 3: M-merge keeps the max counter, preventing bogus inflation.
	a := MustNew(testConfig(), 0)
	b := MustNew(testConfig(), 0)
	mustInsert(t, a, "k", 0)
	if err := a.Advance(3 * time.Minute); err != nil { // a's counter: 7
		t.Fatal(err)
	}
	mustInsert(t, b, "k", 3*time.Minute) // b's counter: 10
	if err := a.MMerge(b, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	min, err := a.MinCounter("k", 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if min != 10 {
		t.Errorf("M-merged counter = %g, want max 10", min)
	}
}

func TestMMergeIdempotent(t *testing.T) {
	a := MustNew(testConfig(), 0)
	b := MustNew(testConfig(), 0)
	mustInsert(t, b, "k0", 0)
	mustInsert(t, b, "k1", 0)
	if err := a.MMerge(b, 0); err != nil {
		t.Fatal(err)
	}
	first := snapshot(a)
	if err := a.MMerge(b, 0); err != nil {
		t.Fatal(err)
	}
	second := snapshot(a)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("M-merge not idempotent at bit %d: %g vs %g", i, first[i], second[i])
		}
	}
}

func TestBogusCounterScenario(t *testing.T) {
	// Fig. 6: brokers B and C meet each other frequently but meet consumer
	// A only once. With M-merge, repeated broker meetings must NOT inflate
	// A's interest counters; with A-merge they would (the bug the paper
	// avoids). We verify both behaviours.
	now := time.Duration(0)
	cfg := testConfig()

	genuine := func() *Filter {
		g := MustNew(cfg, now)
		if err := g.Insert("A-interest", now); err != nil {
			t.Fatal(err)
		}
		return g
	}

	// M-merge path (what B-SUB does between brokers).
	bRelay := MustNew(cfg, now)
	cRelay := MustNew(cfg, now)
	if err := bRelay.AMerge(genuine(), now); err != nil { // B meets A once
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // B and C meet repeatedly
		if err := cRelay.MMerge(bRelay, now); err != nil {
			t.Fatal(err)
		}
		if err := bRelay.MMerge(cRelay, now); err != nil {
			t.Fatal(err)
		}
	}
	mMin, err := bRelay.MinCounter("A-interest", now)
	if err != nil {
		t.Fatal(err)
	}
	if mMin > cfg.Initial {
		t.Errorf("M-merge inflated counter to %g (> initial %g): bogus counters", mMin, cfg.Initial)
	}

	// A-merge path (what the paper warns against).
	bRelay2 := MustNew(cfg, now)
	cRelay2 := MustNew(cfg, now)
	if err := bRelay2.AMerge(genuine(), now); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cRelay2.AMerge(bRelay2, now); err != nil {
			t.Fatal(err)
		}
		if err := bRelay2.AMerge(cRelay2, now); err != nil {
			t.Fatal(err)
		}
	}
	aMin, err := bRelay2.MinCounter("A-interest", now)
	if err != nil {
		t.Fatal(err)
	}
	if aMin <= cfg.Initial {
		t.Errorf("A-merge between brokers should have produced bogus counters, got %g", aMin)
	}
}

func TestReinforcement(t *testing.T) {
	// Section V-C: each time a consumer meets the same broker, A-merging
	// the genuine filter raises the broker's counters for those interests.
	cfg := testConfig()
	relay := MustNew(cfg, 0)
	for meet := 1; meet <= 3; meet++ {
		now := time.Duration(meet) * time.Minute
		g := MustNew(cfg, now)
		if err := g.Insert("news", now); err != nil {
			t.Fatal(err)
		}
		if err := relay.AMerge(g, now); err != nil {
			t.Fatal(err)
		}
	}
	// After 3 meetings with DF=1/min over 2 minutes elapsed: roughly
	// 10-2 + 10-1 + 10 = 27; must exceed a single insertion's 10.
	min, err := relay.MinCounter("news", 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if min <= cfg.Initial {
		t.Errorf("reinforced counter %g not above initial %g", min, cfg.Initial)
	}
}

func TestPreference(t *testing.T) {
	cfg := testConfig()
	now := time.Duration(0)
	peer := MustNew(cfg, now)
	self := MustNew(cfg, now)

	// Key absent from self (g=0): preference is peer's min counter.
	mustInsert(t, peer, "k", now)
	p, err := Preference("k", peer, self, now)
	if err != nil {
		t.Fatal(err)
	}
	if p != 10 {
		t.Errorf("preference with g=0: got %g, want 10", p)
	}

	// Key in both: preference is f-g.
	g := MustNew(cfg, now)
	mustInsert(t, g, "k", now)
	if err := self.AMerge(g, now); err != nil {
		t.Fatal(err)
	}
	g2 := MustNew(cfg, now)
	mustInsert(t, g2, "k", now)
	if err := peer.AMerge(g2, now); err != nil { // peer now at 20
		t.Fatal(err)
	}
	p, err = Preference("k", peer, self, now)
	if err != nil {
		t.Fatal(err)
	}
	if p != 10 {
		t.Errorf("preference f-g: got %g, want 20-10=10", p)
	}

	// Key absent from both: preference 0.
	p, err = Preference("missing", peer, self, now)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("preference of absent key: got %g, want 0", p)
	}
}

func TestGeometryMismatch(t *testing.T) {
	a := MustNew(Config{M: 256, K: 4, Initial: 10}, 0)
	b := MustNew(Config{M: 128, K: 4, Initial: 10}, 0)
	if err := a.AMerge(b, 0); !errors.Is(err, ErrGeometry) {
		t.Errorf("A-merge geometry mismatch: error = %v, want ErrGeometry", err)
	}
	if err := a.MMerge(b, 0); !errors.Is(err, ErrGeometry) {
		t.Errorf("M-merge geometry mismatch: error = %v, want ErrGeometry", err)
	}
}

func TestFigure4Scenario(t *testing.T) {
	// Fig. 4: keys inserted at different times decay; with C=10 and
	// DF=1/time-unit, k0 inserted (and re-inserted) latest survives longest.
	// We model: k0 at t=0 and reinforced via A-merge at t=9; k1 at t=0;
	// k2 at t=2. After t=19 only k0 remains.
	cfg := Config{M: 256, K: 2, Initial: 10, DecayPerMinute: 1}
	f := MustNew(cfg, 0)
	mustInsert(t, f, "k0", 0)
	mustInsert(t, f, "k1", 0)
	mustInsert(t, f, "k2", 2*time.Minute)

	refresh := MustNew(cfg, 9*time.Minute)
	mustInsert(t, refresh, "k0", 9*time.Minute)
	if err := f.AMerge(refresh, 9*time.Minute); err != nil {
		t.Fatal(err)
	}

	at := 15 * time.Minute
	if !mustContains(t, f, "k0", at) {
		t.Error("k0 should survive at t=15 (reinforced)")
	}
	if mustContains(t, f, "k1", at) {
		t.Error("k1 should have decayed by t=15")
	}
	if mustContains(t, f, "k2", at) {
		t.Error("k2 should have decayed by t=15")
	}
}

func TestToBloomProjection(t *testing.T) {
	f := MustNew(testConfig(), 0)
	mustInsert(t, f, "x", 0)
	mustInsert(t, f, "y", 0)
	bf := f.ToBloom()
	if !bf.Contains("x") || !bf.Contains("y") {
		t.Error("projection lost keys")
	}
	if bf.SetBits() != f.SetBits() {
		t.Errorf("projection set bits %d != %d", bf.SetBits(), f.SetBits())
	}
}

func TestCloneIndependence(t *testing.T) {
	f := MustNew(testConfig(), 0)
	mustInsert(t, f, "orig", 0)
	c := f.Clone()
	if err := c.Advance(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !mustContains(t, f, "orig", 0) {
		t.Error("advancing clone decayed the original")
	}
	if mustContains(t, c, "orig", 20*time.Minute) {
		t.Error("clone failed to decay")
	}
}

func TestSetDecayFactor(t *testing.T) {
	f := MustNew(testConfig(), 0) // DF=1
	mustInsert(t, f, "k", 0)
	if err := f.SetDecayFactor(0.1, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	// 5 minutes at DF=1 leaves counter 5; then DF=0.1 for 40 more minutes
	// leaves 1: still present.
	if !mustContains(t, f, "k", 45*time.Minute) {
		t.Error("key decayed despite lowered DF")
	}
	if err := f.SetDecayFactor(-1, 45*time.Minute); err == nil {
		t.Error("negative DF accepted")
	}
}

func TestResetClearsState(t *testing.T) {
	f := MustNew(testConfig(), 0)
	other := MustNew(testConfig(), 0)
	mustInsert(t, other, "k", 0)
	if err := f.AMerge(other, 0); err != nil {
		t.Fatal(err)
	}
	f.Reset(time.Minute)
	if f.SetBits() != 0 {
		t.Error("reset left set bits")
	}
	if f.Merged() {
		t.Error("reset left merged flag")
	}
	if err := f.Insert("again", time.Minute); err != nil {
		t.Errorf("insert after reset: %v", err)
	}
}

func snapshot(f *Filter) []float64 {
	out := make([]float64, f.M())
	for i := range out {
		out[i] = f.Counter(i)
	}
	return out
}

// --- Properties -----------------------------------------------------------

// Property: no false negatives while counters are alive.
func TestNoFalseNegativesProperty(t *testing.T) {
	prop := func(keys []string) bool {
		f := MustNew(Config{M: 512, K: 4, Initial: 10, DecayPerMinute: 1}, 0)
		for _, k := range keys {
			if err := f.Insert(k, 0); err != nil {
				return false
			}
		}
		for _, k := range keys {
			ok, err := f.Contains(k, 0)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: M-merge is commutative on counters.
func TestMMergeCommutativeProperty(t *testing.T) {
	prop := func(ka, kb []string) bool {
		build := func(keys []string) *Filter {
			f := MustNew(Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}, 0)
			for _, k := range keys {
				_ = f.Insert(k, 0)
			}
			return f
		}
		ab := build(ka)
		if err := ab.MMerge(build(kb), 0); err != nil {
			return false
		}
		ba := build(kb)
		if err := ba.MMerge(build(ka), 0); err != nil {
			return false
		}
		sa, sb := snapshot(ab), snapshot(ba)
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: A-merge is commutative on counters.
func TestAMergeCommutativeProperty(t *testing.T) {
	prop := func(ka, kb []string) bool {
		build := func(keys []string) *Filter {
			f := MustNew(Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}, 0)
			for _, k := range keys {
				_ = f.Insert(k, 0)
			}
			return f
		}
		ab := build(ka)
		if err := ab.AMerge(build(kb), 0); err != nil {
			return false
		}
		ba := build(kb)
		if err := ba.AMerge(build(ka), 0); err != nil {
			return false
		}
		sa, sb := snapshot(ab), snapshot(ba)
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: decay is monotone — counters never increase under Advance, and
// decaying in two steps equals decaying in one.
func TestDecayMonotoneAndComposableProperty(t *testing.T) {
	prop := func(keys []string, aMin, bMin uint8) bool {
		cfg := Config{M: 256, K: 4, Initial: 100, DecayPerMinute: 0.5}
		one := MustNew(cfg, 0)
		two := MustNew(cfg, 0)
		for _, k := range keys {
			_ = one.Insert(k, 0)
			_ = two.Insert(k, 0)
		}
		a := time.Duration(aMin) * time.Minute
		b := a + time.Duration(bMin)*time.Minute
		before := snapshot(one)
		if one.Advance(b) != nil {
			return false
		}
		if two.Advance(a) != nil || two.Advance(b) != nil {
			return false
		}
		sOne, sTwo := snapshot(one), snapshot(two)
		for i := range sOne {
			if sOne[i] > before[i] {
				return false // grew under decay
			}
			if math.Abs(sOne[i]-sTwo[i]) > 1e-6 {
				return false // not composable
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: merged filter contains everything either operand contained,
// for both merge flavours.
func TestMergeSupersetProperty(t *testing.T) {
	prop := func(ka, kb []string, useMax bool) bool {
		cfg := Config{M: 512, K: 4, Initial: 10, DecayPerMinute: 1}
		a := MustNew(cfg, 0)
		b := MustNew(cfg, 0)
		for _, k := range ka {
			_ = a.Insert(k, 0)
		}
		for _, k := range kb {
			_ = b.Insert(k, 0)
		}
		var err error
		if useMax {
			err = a.MMerge(b, 0)
		} else {
			err = a.AMerge(b, 0)
		}
		if err != nil {
			return false
		}
		for _, k := range append(ka, kb...) {
			ok, cErr := a.Contains(k, 0)
			if cErr != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	f := MustNew(Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Reset(0)
		_ = f.Insert("openwebawards", 0)
	}
}

func BenchmarkAMerge(b *testing.B) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	src := MustNew(cfg, 0)
	for i := 0; i < 10; i++ {
		_ = src.Insert(fmt.Sprintf("k%d", i), 0)
	}
	dst := MustNew(cfg, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = dst.AMerge(src, 0)
	}
}

func BenchmarkPreferentialQuery(b *testing.B) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	peer := MustNew(cfg, 0)
	self := MustNew(cfg, 0)
	_ = peer.Insert("hot-topic", 0)
	_ = self.Insert("hot-topic", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Preference("hot-topic", peer, self, 0)
	}
}
