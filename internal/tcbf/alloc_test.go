//go:build !race

package tcbf

import (
	"testing"
	"time"
)

// Allocation-regression guards for the contact hot path: once warm, the
// core TCBF operations must not allocate at all. The file is excluded
// under -race because the race runtime adds bookkeeping allocations that
// testing.AllocsPerRun observes.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, f); avg != 0 {
		t.Errorf("%s: %g allocs per run, want 0", name, avg)
	}
}

func TestFilterOpsAllocationFree(t *testing.T) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	f := MustNew(cfg, 0)
	other := MustNew(cfg, 0)
	for i, k := range modelKeys {
		target := f
		if i%2 == 0 {
			target = other
		}
		if err := target.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	pre := Precompute("alpha")
	now := time.Minute

	assertZeroAllocs(t, "Insert", func() {
		f.Reset(now)
		for _, k := range modelKeys {
			if err := f.Insert(k, now); err != nil {
				t.Fatal(err)
			}
		}
	})
	assertZeroAllocs(t, "ContainsPre", func() {
		if _, err := f.ContainsPre(pre, now); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "Contains", func() {
		if _, err := f.Contains("alpha", now); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "MMerge", func() {
		if err := f.MMerge(other, now); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "AMerge", func() {
		if err := f.AMerge(other, now); err != nil {
			t.Fatal(err)
		}
	})

	pres := make([]PreKey, len(modelKeys))
	for i, k := range modelKeys {
		pres[i] = Precompute(k)
	}
	assertZeroAllocs(t, "InsertAllPre", func() {
		f.Reset(now)
		if err := f.InsertAllPre(pres, now); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "ContainsAnyPre", func() {
		if _, err := f.ContainsAnyPre(pres, now); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "ContainsAllPre", func() {
		if _, err := f.ContainsAllPre(pres, now); err != nil {
			t.Fatal(err)
		}
	})

	// Uniform mode refuses non-uniform counters, so encode it from a
	// freshly re-inserted filter (all counters at C) and the other modes
	// from the merged state.
	var buf []byte
	var err error
	for _, mode := range []CounterMode{CountersNone, CountersUniform, CountersFull} {
		buf, err = f.EncodeTo(buf[:0], mode)
		if err != nil {
			t.Fatal(err)
		}
		mode := mode
		assertZeroAllocs(t, "EncodeTo", func() {
			buf, err = f.EncodeTo(buf[:0], mode)
			if err != nil {
				t.Fatal(err)
			}
		})
		dec := MustNew(cfg, 0)
		assertZeroAllocs(t, "DecodeInto", func() {
			if err := dec.DecodeInto(buf, now); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPartitionedOpsAllocationFree(t *testing.T) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	p := MustNewPartitioned(cfg, 4, 0)
	q := MustNewPartitioned(cfg, 4, 0)
	var pres []PreKey
	for _, k := range modelKeys {
		pres = append(pres, Precompute(k))
		if err := p.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
		if err := q.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	now := time.Minute

	assertZeroAllocs(t, "InsertAllPre", func() {
		p.Reset(now)
		if err := p.InsertAllPre(pres, now); err != nil {
			t.Fatal(err)
		}
	})
	assertZeroAllocs(t, "PreferencePartitionedPre", func() {
		if _, err := PreferencePartitionedPre(pres[0], q, p, now); err != nil {
			t.Fatal(err)
		}
	})
	var buf []byte
	var err error
	buf, err = p.EncodeTo(buf[:0], CountersFull)
	if err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, "Partitioned.EncodeTo", func() {
		buf, err = p.EncodeTo(buf[:0], CountersFull)
		if err != nil {
			t.Fatal(err)
		}
	})
	dec := MustNewPartitioned(cfg, 4, 0)
	assertZeroAllocs(t, "Partitioned.DecodeInto", func() {
		if err := dec.DecodeInto(buf, now); err != nil {
			t.Fatal(err)
		}
	})
}
