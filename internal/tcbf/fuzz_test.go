package tcbf

import (
	"encoding/hex"
	"testing"
	"time"
)

// FuzzDecode hardens the wire decoder against adversarial bytes: it must
// never panic, and any successfully decoded filter must be internally
// consistent.
func FuzzDecode(f *testing.F) {
	cfg := Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	seedFilter := MustNew(cfg, 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := seedFilter.Insert(k, 0); err != nil {
			f.Fatal(err)
		}
	}
	for _, mode := range []CounterMode{CountersNone, CountersUniform, CountersFull} {
		data, err := seedFilter.Encode(mode)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{wireMagic})

	// Packed-representation edges: a filter saturated at laneMax by
	// repeated A-merges, a filter one tick away from decaying out
	// (quantization scale boundary), and a float64-era byte stream.
	sat := MustNew(cfg, 0)
	donor := MustNew(cfg, 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := donor.Insert(k, 0); err != nil {
			f.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := sat.AMerge(donor, 0); err != nil {
			f.Fatal(err)
		}
	}
	data, err := sat.Encode(CountersFull)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)

	low := MustNew(cfg, 0)
	if err := low.Insert("a", 0); err != nil {
		f.Fatal(err)
	}
	tick := time.Duration(tickNanosFor(low.quantum, cfg.DecayPerMinute))
	if err := low.Advance(10*time.Minute - tick); err != nil {
		f.Fatal(err)
	}
	if data, err = low.Encode(CountersFull); err != nil {
		f.Fatal(err)
	}
	f.Add(data)

	if old, err := hex.DecodeString(goldenWireFull); err == nil {
		f.Add(old)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data, Config{Initial: 10, DecayPerMinute: 1}, 0)
		if err != nil {
			return
		}
		// Whatever decoded must be well-formed: geometry sane, counters
		// non-negative, set-bit count consistent.
		if decoded.M() <= 0 || decoded.K() <= 0 {
			t.Fatalf("decoded filter with geometry (%d,%d)", decoded.M(), decoded.K())
		}
		set := 0
		for p := 0; p < decoded.M(); p++ {
			c := decoded.Counter(p)
			if c < 0 {
				t.Fatalf("negative counter %g at %d", c, p)
			}
			if c > float64(laneMax)*decoded.quantum {
				t.Fatalf("counter %g at %d exceeds the lane saturation cap", c, p)
			}
			if c > 0 {
				set++
			}
		}
		if set != decoded.SetBits() {
			t.Fatalf("SetBits %d != scan %d", decoded.SetBits(), set)
		}
		// Re-encoding a decoded filter must succeed.
		if _, err := decoded.Encode(CountersFull); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks membership survival for arbitrary key
// material.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add("key-one", "key-two")
	f.Add("", "日本語")
	f.Fuzz(func(t *testing.T, k1, k2 string) {
		cfg := Config{M: 128, K: 3, Initial: 5, DecayPerMinute: 0.5}
		filter := MustNew(cfg, 0)
		if err := filter.Insert(k1, 0); err != nil {
			t.Fatal(err)
		}
		if err := filter.Insert(k2, 0); err != nil {
			t.Fatal(err)
		}
		data, err := filter.Encode(CountersFull)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{k1, k2} {
			ok, err := got.Contains(k, 0)
			if err != nil || !ok {
				t.Fatalf("round trip lost %q (err=%v)", k, err)
			}
		}
	})
}
