package tcbf

// Packed counter representation: fixed-point counters in 16-bit lanes, four
// per uint64 word, processed with SWAR (SIMD-within-a-register) passes.
//
// A counter is stored as an integer number of "ticks" where one tick is
// quantum = Initial/initTicks counter units; initTicks is a power of two so
// the quantum is exact in binary floating point and Insert's value C maps to
// exactly initTicks ticks. Lanes only ever hold values in [0, laneMax]; the
// top bit of each lane stays clear and serves as the SWAR guard bit that
// absorbs per-lane borrows and carries, so decay (saturating subtract),
// A-merge (saturating add) and M-merge (lane-wise max) each process four
// counters per word operation with no cross-lane contamination.
//
// laneMax = 32*initTicks gives 32x headroom over the insertion value C
// before an A-merge saturates, matching the paper's regime where counters
// are reinforced a handful of times between decays, not thousands.

const (
	lanesPerWord = 4
	laneBits     = 16
	laneShift    = 2      // log2(lanesPerWord)
	laneMask     = 0xFFFF // full 16-bit lane
	laneMax      = 0x7FFF // maximum counter value: 15 value bits per lane

	laneLSB   = 0x0001_0001_0001_0001 // bit 0 of every lane
	laneGuard = 0x8000_8000_8000_8000 // guard bit (bit 15) of every lane
	laneVal   = 0x7FFF_7FFF_7FFF_7FFF // value bits of every lane

	// initTicks is the tick count Insert writes: Config.Initial in ticks.
	initTicks = 1 << 10
)

// wordsFor returns the word count backing an m-lane counter vector.
//
//bsub:hotpath
func wordsFor(m int) int { return (m + lanesPerWord - 1) / lanesPerWord }

// bcast replicates a lane value (at most laneMask) into all four lanes.
//
//bsub:hotpath
func bcast(v uint32) uint64 { return uint64(v) * laneLSB }

// satSubWord computes max(a-b, 0) lane-wise. Both operands must have clear
// guard bits. Setting the guard bit before subtracting makes every lane's
// minuend at least 0x8000 >= b, so no borrow ever crosses a lane boundary;
// the guard bit survives exactly in the lanes where a >= b.
//
//bsub:hotpath
func satSubWord(a, b uint64) uint64 {
	t := (a | laneGuard) - b
	ge := (t >> 15) & laneLSB // 1 in lanes where a >= b
	return t & (ge * laneMax)
}

// satAddWord computes min(a+b, laneMax) lane-wise. Both operands must have
// clear guard bits, so per-lane sums are at most 0xFFFE and never carry
// across lanes; a sum's guard bit flags overflow past laneMax.
//
//bsub:hotpath
func satAddWord(a, b uint64) uint64 {
	s := a + b
	ov := (s >> 15) & laneLSB // 1 in lanes where the sum exceeded laneMax
	return s&^(ov*laneMask) | ov*laneMax
}

// maxWord computes max(a, b) lane-wise. Both operands must have clear guard
// bits.
//
//bsub:hotpath
func maxWord(a, b uint64) uint64 {
	t := (a | laneGuard) - b
	ge := (t >> 15) & laneLSB // 1 in lanes where a >= b
	m := ge * laneMask        // all-ones in lanes where a >= b
	return a&m | b&^m
}

// nzLanes returns a laneLSB-positioned 1 for every non-zero lane of w. The
// operand must have clear guard bits: adding laneMax to a lane overflows
// into the guard bit exactly when the lane is non-zero.
//
//bsub:hotpath
func nzLanes(w uint64) uint64 {
	return ((w + laneVal) >> 15) & laneLSB
}
