// Package testutil holds helpers shared by the repo's test suites. It is
// imported only from _test.go files; nothing here ships in a build.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// Goroutine-leak detection defaults. The slack absorbs runtime-internal
// goroutines (finalizers, netpoller threads, timer goroutines) that come
// and go outside the test's control; the deadline gives Close paths time
// to wind their sessions down.
const (
	leakSlack    = 8
	leakDeadline = 5 * time.Second
)

// CheckGoroutineLeaks records the current goroutine count and registers a
// cleanup that fails the test if the count has not returned to within a
// small slack of that baseline before a deadline. On failure it prints a
// full goroutine dump so the leaked stacks are in the log.
//
// Call it FIRST in the test, before constructing nodes or meshes: cleanups
// run last-registered-first, so the leak check must be registered before
// the t.Cleanup(Close) calls whose goroutines it polices. Not meaningful
// in tests marked t.Parallel(), where sibling tests' goroutines pollute
// the count.
func CheckGoroutineLeaks(t testing.TB) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakDeadline)
		for {
			n := runtime.NumGoroutine()
			if n <= baseline+leakSlack {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine leak: %d goroutines after cleanup, baseline %d (+%d slack)\n%s",
					n, baseline, leakSlack, buf)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}
