package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"bsub/internal/testutil"
	"bsub/internal/trace"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

// sprayProtocol is a sharding-safe reference protocol: strictly per-node
// message stores, deterministic slice iteration, and probabilistic
// forwarding drawn from env.RNG(). It exists to prove the executor's
// determinism claim with a protocol that exercises every Env method.
type sprayProtocol struct {
	stores [][]workload.Message
	seen   []map[int]struct{}
}

func (s *sprayProtocol) Name() string { return "spray" }
func (s *sprayProtocol) Init(pop Population, _ *rand.Rand) error {
	s.stores = make([][]workload.Message, pop.Nodes())
	s.seen = make([]map[int]struct{}, pop.Nodes())
	return nil
}
func (s *sprayProtocol) OnMessage(_ Env, m workload.Message) {
	s.add(trace.NodeID(m.Origin), m)
}

func (s *sprayProtocol) add(n trace.NodeID, m workload.Message) {
	s.stores[n] = append(s.stores[n], m)
	if s.seen[n] == nil {
		s.seen[n] = make(map[int]struct{})
	}
	s.seen[n][m.ID] = struct{}{}
}

func (s *sprayProtocol) OnContact(env Env, a, b trace.NodeID, budget *Budget) {
	env.RecordControl(8) // a fixed per-contact handshake
	addA := s.exchange(env, a, b, budget)
	addB := s.exchange(env, b, a, budget)
	for _, m := range addA {
		s.add(b, m)
	}
	for _, m := range addB {
		s.add(a, m)
	}
}

// exchange returns the messages src hands to dst this contact.
func (s *sprayProtocol) exchange(env Env, src, dst trace.NodeID, budget *Budget) []workload.Message {
	var added []workload.Message
	for _, m := range s.stores[src] {
		if env.Now() > m.CreatedAt+env.TTL() {
			continue
		}
		if s.holds(dst, m.ID) {
			continue
		}
		if env.RNG().Float64() > 0.8 { // probabilistic spray
			continue
		}
		if !budget.Spend(m.Size) {
			break
		}
		env.RecordForwarding(&m)
		added = append(added, m)
		for _, k := range env.InterestSet(dst) {
			if k == m.Key {
				env.Deliver(&m, dst)
				break
			}
		}
	}
	return added
}

func (s *sprayProtocol) holds(n trace.NodeID, id int) bool {
	_, ok := s.seen[n][id]
	return ok
}

// shardConfig builds a streamed population-scale config. Each call makes
// fresh streams, so two calls with the same arguments replay identically.
func shardConfig(t testing.TB, nodes int, workers int, epoch time.Duration) Config {
	t.Helper()
	cfg := tracegen.Scale(nodes, 7)
	cs, err := tracegen.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	interests := workload.Interests(ks, nodes, rand.New(rand.NewSource(7)))
	rates := make([]float64, nodes)
	for i := range rates {
		rates[i] = 2
	}
	return Config{
		Source:    cs,
		MsgSource: workload.NewStream(ks, rates, cfg.Span, 7),
		Interests: interests,
		TTL:       6 * time.Hour,
		Seed:      7,
		Workers:   workers,
		Epoch:     epoch,
	}
}

// TestShardedDeterminism is the PR's headline regression: the same seeded
// scale config must produce a byte-identical report at workers=1 and
// workers=8, and at different epoch widths. reflect.DeepEqual covers the
// unexported delay distribution too.
func TestShardedDeterminism(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	nodes := 300
	if !testing.Short() {
		nodes = 1000
	}
	base, err := Run(shardConfig(t, nodes, 1, 0), &sprayProtocol{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Contacts == 0 || base.Created == 0 {
		t.Fatalf("degenerate run: %+v", base)
	}
	for _, tc := range []struct {
		name    string
		workers int
		epoch   time.Duration
	}{
		{"workers=8", 8, 0},
		{"workers=3/epoch=7m", 3, 7 * time.Minute},
		{"workers=8/epoch=1h", 8, time.Hour},
		{"workers=1/epoch=1m", 1, time.Minute},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Run(shardConfig(t, nodes, tc.workers, tc.epoch), &sprayProtocol{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("report differs from workers=1:\ngot  %+v\nwant %+v", got, base)
			}
		})
	}
}

// TestStreamedMatchesMaterialized: driving the simulator from a
// trace.Source must equal materializing the same stream into a Trace
// first — the streaming path is an optimization, not a semantic change.
func TestStreamedMatchesMaterialized(t *testing.T) {
	nodes := 300
	streamed, err := Run(shardConfig(t, nodes, 1, 0), &sprayProtocol{})
	if err != nil {
		t.Fatal(err)
	}

	cfg := shardConfig(t, nodes, 1, 0)
	tr, err := trace.New("materialized", nodes, trace.Collect(cfg.Source))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = nil
	cfg.Trace = tr
	materialized, err := Run(cfg, &sprayProtocol{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, materialized) {
		t.Errorf("streamed run differs from materialized:\ngot  %+v\nwant %+v", streamed, materialized)
	}
}

// TestWorkerPoolGoroutineHygiene: a parallel run must not leave worker
// goroutines behind after Run returns (the pool is per-flush, joined at
// each epoch barrier).
func TestWorkerPoolGoroutineHygiene(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	if _, err := Run(shardConfig(t, 300, 8, time.Minute), &sprayProtocol{}); err != nil {
		t.Fatal(err)
	}
}

// TestComponentsShareNoNodes: within one flush, two events touching the
// same node must land in the same component (the no-shared-state
// precondition the parallel executor relies on).
func TestComponentsShareNoNodes(t *testing.T) {
	tr, err := trace.New("comp", 6, []trace.Contact{
		{A: 0, B: 1, Start: time.Minute, End: 2 * time.Minute},
		{A: 2, B: 3, Start: time.Minute, End: 2 * time.Minute},
		{A: 1, B: 2, Start: 3 * time.Minute, End: 4 * time.Minute},
		{A: 4, B: 5, Start: 3 * time.Minute, End: 4 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	type seen struct {
		nodes map[trace.NodeID]bool
	}
	comps := map[int64]*seen{}
	p := &probe{}
	p.onTouch = func(env Env, a, b trace.NodeID, _ *Budget) {
		we := env.(*workerEnv)
		c := int64(we.comp) // unique per component within this single flush
		s, ok := comps[c]
		if !ok {
			s = &seen{nodes: map[trace.NodeID]bool{}}
			comps[c] = s
		}
		s.nodes[a] = true
		s.nodes[b] = true
	}
	_, err = Run(Config{
		Trace:     tr,
		Interests: make([]workload.Key, 6),
		TTL:       time.Hour,
		Epoch:     time.Hour, // everything in one flush
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2 (0-1-2-3 chained, 4-5 separate)", len(comps))
	}
	for _, a := range comps {
		for _, b := range comps {
			if a == b {
				continue
			}
			for n := range a.nodes {
				if b.nodes[n] {
					t.Fatalf("node %d appears in two components", n)
				}
			}
		}
	}
}
