package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bsub/internal/trace"
	"bsub/internal/workload"
)

func TestBudget(t *testing.T) {
	b := NewBudget(100)
	if !b.Spend(60) {
		t.Fatal("spend within budget failed")
	}
	if b.Remaining() != 40 {
		t.Fatalf("remaining = %d, want 40", b.Remaining())
	}
	if b.Spend(41) {
		t.Fatal("overspend succeeded")
	}
	if b.Remaining() != 40 {
		t.Fatal("failed spend deducted bytes")
	}
	if !b.Spend(40) {
		t.Fatal("exact spend failed")
	}
	if b.Spend(1) {
		t.Fatal("spend from empty budget succeeded")
	}
	if b.Spend(-5) {
		t.Fatal("negative spend succeeded")
	}
	if NewBudget(-10).Remaining() != 0 {
		t.Fatal("negative budget not clamped")
	}
}

// probe records the event sequence the simulator feeds a protocol.
// Its slices are shared state, so probe tests run at Workers <= 1.
type probe struct {
	events   []string
	onMsg    func(env Env, msg workload.Message)
	onTouch  func(env Env, a, b trace.NodeID, budget *Budget)
	initErr  error
	nowAtEvt []time.Duration
}

var _ Protocol = (*probe)(nil)

func (p *probe) Name() string                            { return "probe" }
func (p *probe) Init(pop Population, _ *rand.Rand) error { return p.initErr }
func (p *probe) OnMessage(env Env, msg workload.Message) {
	p.events = append(p.events, "msg")
	p.nowAtEvt = append(p.nowAtEvt, env.Now())
	if p.onMsg != nil {
		p.onMsg(env, msg)
	}
}
func (p *probe) OnContact(env Env, a, b trace.NodeID, budget *Budget) {
	p.events = append(p.events, "contact")
	p.nowAtEvt = append(p.nowAtEvt, env.Now())
	if p.onTouch != nil {
		p.onTouch(env, a, b, budget)
	}
}

func twoNodeTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.New("t", 2, []trace.Contact{
		{A: 0, B: 1, Start: 10 * time.Minute, End: 11 * time.Minute},
		{A: 0, B: 1, Start: 30 * time.Minute, End: 31 * time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baseConfig(t *testing.T) Config {
	return Config{
		Trace:     twoNodeTrace(t),
		Interests: []workload.Key{"a", "b"},
		Messages: []workload.Message{
			{ID: 0, Key: "b", Origin: 0, Size: 100, CreatedAt: 5 * time.Minute},
			{ID: 1, Key: "a", Origin: 1, Size: 100, CreatedAt: 20 * time.Minute},
		},
		TTL:  time.Hour,
		Seed: 1,
	}
}

func TestRunEventOrdering(t *testing.T) {
	p := &probe{}
	if _, err := Run(baseConfig(t), p); err != nil {
		t.Fatal(err)
	}
	want := []string{"msg", "contact", "msg", "contact"}
	if len(p.events) != len(want) {
		t.Fatalf("events = %v", p.events)
	}
	for i := range want {
		if p.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, p.events[i], want[i], p.events)
		}
	}
	for i := 1; i < len(p.nowAtEvt); i++ {
		if p.nowAtEvt[i] < p.nowAtEvt[i-1] {
			t.Fatal("clock moved backwards across events")
		}
	}
}

func TestRunBudgetFromContactDuration(t *testing.T) {
	var got int
	p := &probe{}
	p.onTouch = func(_ Env, _, _ trace.NodeID, b *Budget) { got = b.Remaining() }
	cfg := baseConfig(t)
	cfg.BandwidthBps = 8000 // 1000 bytes/sec; contacts are 60s
	if _, err := Run(cfg, p); err != nil {
		t.Fatal(err)
	}
	if got != 60000 {
		t.Errorf("budget = %d bytes, want 60s * 1000 B/s", got)
	}
}

func TestRunDeliveryClassification(t *testing.T) {
	p := &probe{}
	p.onTouch = func(env Env, a, b trace.NodeID, _ *Budget) {
		msg0 := &workload.Message{ID: 0, Key: "b", Origin: 0, Size: 10, CreatedAt: 5 * time.Minute}
		env.Deliver(msg0, 1) // genuine
		env.Deliver(msg0, 0) // producer: classified false
	}
	rep, err := Run(baseConfig(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", rep.Delivered)
	}
	if rep.FalseDeliveries != 1 {
		t.Errorf("false deliveries = %d, want 1", rep.FalseDeliveries)
	}
	// Deliverable pairs: msg0 key "b" -> node 1; msg1 key "a" -> node 0.
	if rep.Deliverable != 2 {
		t.Errorf("deliverable = %d, want 2", rep.Deliverable)
	}
	if rep.DeliveryRatio() != 0.5 {
		t.Errorf("delivery ratio = %g", rep.DeliveryRatio())
	}
	if rep.Contacts != 2 {
		t.Errorf("contacts = %d, want 2", rep.Contacts)
	}
}

func TestRunRefusesLateDelivery(t *testing.T) {
	p := &probe{}
	p.onTouch = func(env Env, a, b trace.NodeID, _ *Budget) {
		if env.Now() < 30*time.Minute {
			return
		}
		// TTL is 15 minutes; message 0 was created at 5m, now it is 30m.
		late := &workload.Message{ID: 0, Key: "b", Origin: 0, Size: 10, CreatedAt: 5 * time.Minute}
		env.Deliver(late, 1)
	}
	cfg := baseConfig(t)
	cfg.TTL = 15 * time.Minute
	rep, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 {
		t.Errorf("late delivery accepted: %d", rep.Delivered)
	}
	if rep.LateDrops != 1 {
		t.Errorf("late drops = %d, want 1", rep.LateDrops)
	}
}

func TestRunValidation(t *testing.T) {
	good := baseConfig(t)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil trace", mutate: func(c *Config) { c.Trace = nil }},
		{name: "trace and source", mutate: func(c *Config) { c.Source = c.Trace.Source() }},
		{name: "interest count", mutate: func(c *Config) { c.Interests = c.Interests[:1] }},
		{name: "zero ttl", mutate: func(c *Config) { c.TTL = 0 }},
		{name: "negative bandwidth", mutate: func(c *Config) { c.BandwidthBps = -1 }},
		{name: "negative workers", mutate: func(c *Config) { c.Workers = -1 }},
		{name: "too many workers", mutate: func(c *Config) { c.Workers = MaxWorkers + 1 }},
		{name: "negative epoch", mutate: func(c *Config) { c.Epoch = -time.Minute }},
		{name: "unsorted messages", mutate: func(c *Config) {
			c.Messages[0].CreatedAt, c.Messages[1].CreatedAt = c.Messages[1].CreatedAt, c.Messages[0].CreatedAt
		}},
		{name: "origin out of range", mutate: func(c *Config) { c.Messages[0].Origin = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(t)
			tt.mutate(&cfg)
			if _, err := Run(cfg, &probe{}); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := Run(good, &probe{}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestRunStreamedValidation: origin-range and sort checks still fire when
// the workload arrives through a stream (checked at the pump, since the
// stream cannot be inspected up front).
func TestRunStreamedValidation(t *testing.T) {
	cfg := baseConfig(t)
	cfg.MsgSource = workload.SliceSource([]workload.Message{
		{ID: 0, Key: "b", Origin: 99, Size: 10, CreatedAt: time.Minute},
	})
	cfg.Messages = nil
	if _, err := Run(cfg, &probe{}); err == nil {
		t.Error("streamed out-of-range origin accepted")
	}

	cfg = baseConfig(t)
	cfg.MsgSource = workload.SliceSource([]workload.Message{
		{ID: 0, Key: "b", Origin: 0, Size: 10, CreatedAt: 2 * time.Minute},
		{ID: 1, Key: "a", Origin: 1, Size: 10, CreatedAt: time.Minute},
	})
	cfg.Messages = nil
	if _, err := Run(cfg, &probe{}); err == nil {
		t.Error("streamed unsorted workload accepted")
	}
}

func TestRunInitError(t *testing.T) {
	p := &probe{initErr: errInit}
	if _, err := Run(baseConfig(t), p); err == nil {
		t.Error("init error swallowed")
	}
}

var errInit = errTest("init failed")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestRunZeroBandwidthDefault(t *testing.T) {
	var got int
	p := &probe{}
	p.onTouch = func(_ Env, _, _ trace.NodeID, b *Budget) { got = b.Remaining() }
	cfg := baseConfig(t)
	cfg.BandwidthBps = 0
	if _, err := Run(cfg, p); err != nil {
		t.Fatal(err)
	}
	want := int(60 * float64(DefaultBandwidthBps) / 8)
	if got != want {
		t.Errorf("default-bandwidth budget = %d, want %d", got, want)
	}
}

func TestFailureWindowsSkipContacts(t *testing.T) {
	p := &probe{}
	cfg := baseConfig(t)
	// Node 1 is down across the first contact (at 10m) but back for the
	// second (at 30m).
	cfg.Failures = []Failure{{Node: 1, From: 5 * time.Minute, Until: 20 * time.Minute}}
	if _, err := Run(cfg, p); err != nil {
		t.Fatal(err)
	}
	contacts := 0
	for _, e := range p.events {
		if e == "contact" {
			contacts++
		}
	}
	if contacts != 1 {
		t.Errorf("got %d contacts, want 1 (first skipped during outage)", contacts)
	}
}

func TestFailureValidation(t *testing.T) {
	tests := []struct {
		name string
		f    Failure
	}{
		{name: "node out of range", f: Failure{Node: 99, From: 0, Until: time.Minute}},
		{name: "negative node", f: Failure{Node: -1, From: 0, Until: time.Minute}},
		{name: "inverted window", f: Failure{Node: 0, From: time.Hour, Until: time.Minute}},
		{name: "negative start", f: Failure{Node: 0, From: -time.Minute, Until: time.Minute}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(t)
			cfg.Failures = []Failure{tt.f}
			if _, err := Run(cfg, &probe{}); err == nil {
				t.Error("invalid failure accepted")
			}
		})
	}
}

// echoProtocol delivers every message to every interested node at the
// first contact after creation — a reference protocol used to check the
// simulator's accounting invariants across random workloads. Its pending
// queue is global, so it must run at Workers <= 1.
type echoProtocol struct {
	nodes   int
	pending []workload.Message
}

func (e *echoProtocol) Name() string { return "echo" }
func (e *echoProtocol) Init(pop Population, _ *rand.Rand) error {
	e.nodes = pop.Nodes()
	return nil
}
func (e *echoProtocol) OnMessage(_ Env, m workload.Message) { e.pending = append(e.pending, m) }
func (e *echoProtocol) OnContact(env Env, a, b trace.NodeID, _ *Budget) {
	for i := range e.pending {
		for n := 0; n < e.nodes; n++ {
			env.Deliver(&e.pending[i], trace.NodeID(n))
		}
	}
	e.pending = nil
}

// Property: across arbitrary seeds, the simulator's accounting invariants
// hold — delivered <= deliverable <= created, ratios in [0,1].
func TestAccountingInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		tr, err := traceForSeed(seed)
		if err != nil {
			return false
		}
		ks := workload.NewTrendKeySet()
		rng := rand.New(rand.NewSource(seed))
		interests := workload.Interests(ks, tr.Nodes, rng)
		rates := make([]float64, tr.Nodes)
		for i := range rates {
			rates[i] = 3
		}
		msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
		rep, err := Run(Config{
			Trace:     tr,
			Interests: interests,
			Messages:  msgs,
			TTL:       tr.Span() + time.Hour,
			Seed:      seed,
		}, &echoProtocol{})
		if err != nil {
			return false
		}
		if rep.Delivered > rep.Deliverable || rep.Deliverable > rep.Created {
			return false
		}
		if r := rep.DeliveryRatio(); r < 0 || r > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func traceForSeed(seed int64) (*trace.Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	nodes := 4 + rng.Intn(8)
	var contacts []trace.Contact
	at := time.Duration(0)
	for i := 0; i < 40; i++ {
		a := trace.NodeID(rng.Intn(nodes))
		b := trace.NodeID(rng.Intn(nodes))
		if a == b {
			b = (b + 1) % trace.NodeID(nodes)
		}
		at += time.Duration(1+rng.Intn(10)) * time.Minute
		contacts = append(contacts, trace.Contact{A: a, B: b, Start: at, End: at + time.Minute})
	}
	return trace.New("prop", nodes, contacts)
}

func TestEnvGetters(t *testing.T) {
	p := &probe{}
	p.onTouch = func(env Env, a, b trace.NodeID, _ *Budget) {
		if env.Interest(0) != "a" || env.Interest(1) != "b" {
			t.Error("Interest getter wrong")
		}
		if env.TTL() != time.Hour {
			t.Error("TTL getter wrong")
		}
		if env.Workers() != 1 {
			t.Errorf("Workers() = %d, want 1", env.Workers())
		}
		if env.Worker() != 0 {
			t.Errorf("Worker() = %d, want 0", env.Worker())
		}
		env.RecordControl(7)
		env.RecordReplication(true)
		env.RecordReplication(false)
	}
	rep, err := Run(baseConfig(t), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ControlBytes != 14 { // two contacts
		t.Errorf("control bytes = %d, want 14", rep.ControlBytes)
	}
	if rep.Replications != 4 || rep.FalseInjections != 2 {
		t.Errorf("replications/injections = %d/%d, want 4/2", rep.Replications, rep.FalseInjections)
	}
	if got := rep.InjectionFPR(); got != 0.5 {
		t.Errorf("injection FPR = %g, want 0.5", got)
	}
}
