// Package sim is the discrete-event DTN simulator the B-SUB evaluation
// runs on (Section VII-A). It replays a contact schedule against a message
// workload, handing each contact to the protocol under test as a
// bandwidth-budgeted session ("the average transmission rate is 250Kbps.
// The durations of all the contacts are already recorded in the trace"),
// and collects the Section VII metrics.
//
// Contacts and messages arrive through trace.Source and workload.Source
// streams, so populations far larger than memory-resident traces can be
// simulated. Execution is sharded: events are buffered into fixed-width
// epochs, partitioned into contact-connected node components, and the
// components run on worker goroutines that merge at the epoch barrier (see
// DESIGN.md §11). Output is byte-identical for any worker count and any
// epoch width: components within an epoch share no nodes, protocol state
// is per-node, protocol RNG streams derive from the root seed plus each
// event's own identity, and the shard-local metrics collectors merge
// exactly.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"bsub/internal/trace"
	"bsub/internal/workload"
)

// DefaultBandwidthBps is the paper's effective Bluetooth rate: 250 Kbps.
const DefaultBandwidthBps = 250_000

// DefaultEpoch is the default epoch width. Correctness never depends on
// the width — only load-balancing granularity does.
const DefaultEpoch = 10 * time.Minute

// MaxWorkers bounds Config.Workers; more workers than that is certainly a
// misconfiguration, not a parallelism request.
const MaxWorkers = 1024

// Budget is a contact session's remaining byte allowance. All transfers —
// control filters and message payloads — draw from it.
type Budget struct {
	remaining int
}

// NewBudget returns a budget of n bytes; negative n is treated as zero.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.reset(n)
	return b
}

// reset re-arms a budget in place; the sharded runner reuses one Budget
// per worker to keep the per-contact path allocation-free.
func (b *Budget) reset(n int) {
	if n < 0 {
		n = 0
	}
	b.remaining = n
}

// Spend deducts n bytes and reports success; a failed spend deducts
// nothing (the transfer does not happen at all, as a partial message is
// useless).
func (b *Budget) Spend(n int) bool {
	if n < 0 || n > b.remaining {
		return false
	}
	b.remaining -= n
	return true
}

// Remaining returns the unspent byte allowance.
func (b *Budget) Remaining() int { return b.remaining }

// Population is the static view of the simulated population a protocol
// receives at Init: size, subscriptions, lifetimes, and the worker count
// it should size any per-worker state for.
type Population interface {
	// Nodes returns the population size.
	Nodes() int
	// Interest returns the node's primary subscribed key.
	Interest(n trace.NodeID) workload.Key
	// InterestSet returns all of the node's subscriptions (the multi-key
	// extension); for the paper's one-interest workload it has length 1.
	InterestSet(n trace.NodeID) []workload.Key
	// TTL returns the message lifetime; messages expire TTL after creation.
	TTL() time.Duration
	// Workers returns the number of execution workers the simulation runs
	// with (>= 1). Protocols that keep per-worker scratch state (session
	// caches) size it from this.
	Workers() int
}

// Env is the protocol's window into the running simulation: population
// facts, the executing worker's clock, and metric recording. Each worker
// goroutine has its own Env; an Env handed to OnMessage/OnContact is only
// valid for the duration of that call.
type Env interface {
	Population
	// Now returns the current simulation time of the executing worker.
	Now() time.Duration
	// Worker returns the executing worker's index in [0, Workers()).
	Worker() int
	// RNG returns a deterministic random source for protocol decisions. It
	// is seeded from the root seed and the executing event's identity —
	// never from the worker, epoch, or component — so draws are
	// byte-identical at any worker count and epoch width.
	RNG() *rand.Rand
	// Deliver records the arrival of msg at node to. The simulator
	// classifies it as genuine (to is interested) or false, deduplicates
	// pairs, and refuses post-TTL deliveries.
	Deliver(msg *workload.Message, to trace.NodeID)
	// RecordForwarding counts one message copy moving between nodes.
	RecordForwarding(msg *workload.Message)
	// RecordReplication counts one producer-to-broker copy, flagging
	// whether the triggering filter match was a false positive against
	// protocol-maintained ground truth (Section VI-B's falsely injected
	// messages).
	RecordReplication(falsePositive bool)
	// RecordControl counts protocol control bytes (already budgeted).
	RecordControl(n int)
}

// Protocol is a routing scheme under test: PUSH, PULL, or B-SUB. Protocol
// state must be per-node: OnMessage and OnContact are invoked concurrently
// for events whose node sets are disjoint, and the env argument identifies
// the executing worker. State shared across nodes must be either
// synchronized or sized per worker (see Population.Workers).
type Protocol interface {
	// Name labels the protocol in reports.
	Name() string
	// Init prepares per-node state. It is called once before any event.
	Init(pop Population, rng *rand.Rand) error
	// OnMessage delivers a freshly created message to its origin node.
	OnMessage(env Env, msg workload.Message)
	// OnContact runs one contact session between nodes a and b. The
	// protocol spends budget on whatever control and data exchange its
	// rules dictate.
	OnContact(env Env, a, b trace.NodeID, budget *Budget)
}

// Config assembles one simulation run.
type Config struct {
	// Trace drives the contact schedule from a materialized trace.
	// Exactly one of Trace and Source must be set.
	Trace *trace.Trace
	// Source drives the contact schedule from a stream (tracegen.Stream at
	// population scale). Contacts must arrive in (Start, End, A, B) order.
	Source trace.Source
	// Interests holds one key per node.
	Interests []workload.Key
	// InterestSets optionally widens each node's subscription to several
	// keys (the multi-key extension). When set it must be node-parallel
	// and each set must contain that node's Interests entry.
	InterestSets [][]workload.Key
	// Messages is the pre-generated workload, sorted by CreatedAt. Ignored
	// when MsgSource is set.
	Messages []workload.Message
	// MsgSource streams the message workload instead of Messages.
	MsgSource workload.Source
	// TTL is the message lifetime ("identical to their maximum tolerable
	// delay").
	TTL time.Duration
	// BandwidthBps is the effective link rate; zero selects
	// DefaultBandwidthBps.
	BandwidthBps int
	// Seed feeds the protocol's RNG.
	Seed int64
	// Failures injects node outages: while a node is down its radio is
	// off, so every contact involving it is skipped (the device's stored
	// state survives — it was only powered off). Used to test the broker
	// election's self-healing.
	Failures []Failure
	// Workers is the number of execution goroutines; zero means 1. Any
	// value produces byte-identical output for the same seed.
	Workers int
	// Epoch is the sharding epoch width; zero selects DefaultEpoch. Any
	// positive value produces byte-identical output for the same seed.
	Epoch time.Duration
}

// Failure is one node outage window [From, Until).
type Failure struct {
	Node  trace.NodeID
	From  time.Duration
	Until time.Duration
}

// nodes returns the population size implied by the contact schedule.
func (c Config) nodes() int {
	if c.Source != nil {
		return c.Source.Nodes()
	}
	if c.Trace != nil {
		return c.Trace.Nodes
	}
	return 0
}

func (c Config) validate() error {
	switch {
	case c.Trace == nil && c.Source == nil:
		return fmt.Errorf("sim: nil trace and nil source")
	case c.Trace != nil && c.Source != nil:
		return fmt.Errorf("sim: both trace and source set")
	case c.TTL <= 0:
		return fmt.Errorf("sim: TTL must be positive, got %v", c.TTL)
	case c.BandwidthBps < 0:
		return fmt.Errorf("sim: bandwidth must be non-negative, got %d", c.BandwidthBps)
	case c.Workers < 0 || c.Workers > MaxWorkers:
		return fmt.Errorf("sim: workers must be in [0,%d], got %d", MaxWorkers, c.Workers)
	case c.Epoch < 0:
		return fmt.Errorf("sim: epoch must be non-negative, got %v", c.Epoch)
	}
	n := c.nodes()
	if len(c.Interests) != n {
		return fmt.Errorf("sim: %d interests for %d nodes", len(c.Interests), n)
	}
	if c.MsgSource == nil {
		for i := 1; i < len(c.Messages); i++ {
			if c.Messages[i].CreatedAt < c.Messages[i-1].CreatedAt {
				return fmt.Errorf("sim: messages not sorted at index %d", i)
			}
		}
		for i, m := range c.Messages {
			if m.Origin < 0 || m.Origin >= n {
				return fmt.Errorf("sim: message %d origin %d out of range", i, m.Origin)
			}
		}
	}
	for i, fl := range c.Failures {
		if fl.Node < 0 || int(fl.Node) >= n {
			return fmt.Errorf("sim: failure %d node %d out of range", i, fl.Node)
		}
		if fl.Until <= fl.From || fl.From < 0 {
			return fmt.Errorf("sim: failure %d window [%v,%v) invalid", i, fl.From, fl.Until)
		}
	}
	if c.InterestSets != nil {
		if len(c.InterestSets) != n {
			return fmt.Errorf("sim: %d interest sets for %d nodes", len(c.InterestSets), n)
		}
		for i, set := range c.InterestSets {
			if len(set) == 0 {
				return fmt.Errorf("sim: node %d has an empty interest set", i)
			}
			found := false
			for _, k := range set {
				if k == c.Interests[i] {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sim: node %d interest set omits its primary interest %q", i, c.Interests[i])
			}
		}
	}
	return nil
}

// down reports whether node n is inside a failure window at time t.
func down(failures []Failure, n trace.NodeID, t time.Duration) bool {
	for _, f := range failures {
		if f.Node == n && t >= f.From && t < f.Until {
			return true
		}
	}
	return false
}
