// Package sim is the discrete-event DTN simulator the B-SUB evaluation
// runs on (Section VII-A). It replays a contact trace against a
// pre-generated message workload, handing each contact to the protocol
// under test as a bandwidth-budgeted session ("the average transmission
// rate is 250Kbps. The durations of all the contacts are already recorded
// in the trace"), and collects the Section VII metrics.
//
// The simulator is deterministic: event order is fully defined by the
// trace and workload, and protocols receive a seeded RNG.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"bsub/internal/metrics"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// DefaultBandwidthBps is the paper's effective Bluetooth rate: 250 Kbps.
const DefaultBandwidthBps = 250_000

// Budget is a contact session's remaining byte allowance. All transfers —
// control filters and message payloads — draw from it.
type Budget struct {
	remaining int
}

// NewBudget returns a budget of n bytes; negative n is treated as zero.
func NewBudget(n int) *Budget {
	if n < 0 {
		n = 0
	}
	return &Budget{remaining: n}
}

// Spend deducts n bytes and reports success; a failed spend deducts
// nothing (the transfer does not happen at all, as a partial message is
// useless).
func (b *Budget) Spend(n int) bool {
	if n < 0 || n > b.remaining {
		return false
	}
	b.remaining -= n
	return true
}

// Remaining returns the unspent byte allowance.
func (b *Budget) Remaining() int { return b.remaining }

// Env is the protocol's window into the running simulation: clock,
// population facts, and metric recording. Implemented by the runner.
type Env interface {
	// Now returns the current simulation time.
	Now() time.Duration
	// Nodes returns the population size.
	Nodes() int
	// Interest returns the node's primary subscribed key.
	Interest(n trace.NodeID) workload.Key
	// InterestSet returns all of the node's subscriptions (the multi-key
	// extension); for the paper's one-interest workload it has length 1.
	InterestSet(n trace.NodeID) []workload.Key
	// TTL returns the message lifetime; messages expire TTL after creation.
	TTL() time.Duration
	// Deliver records the arrival of msg at node to. The simulator
	// classifies it as genuine (to is interested) or false, deduplicates
	// pairs, and refuses post-TTL deliveries.
	Deliver(msg *workload.Message, to trace.NodeID)
	// RecordForwarding counts one message copy moving between nodes.
	RecordForwarding(msg *workload.Message)
	// RecordReplication counts one producer-to-broker copy, flagging
	// whether the triggering filter match was a false positive against
	// protocol-maintained ground truth (Section VI-B's falsely injected
	// messages).
	RecordReplication(falsePositive bool)
	// RecordControl counts protocol control bytes (already budgeted).
	RecordControl(n int)
}

// Protocol is a routing scheme under test: PUSH, PULL, or B-SUB.
type Protocol interface {
	// Name labels the protocol in reports.
	Name() string
	// Init prepares per-node state. It is called once before any event.
	Init(env Env, rng *rand.Rand) error
	// OnMessage delivers a freshly created message to its origin node.
	OnMessage(msg workload.Message)
	// OnContact runs one contact session between nodes a and b. The
	// protocol spends budget on whatever control and data exchange its
	// rules dictate.
	OnContact(a, b trace.NodeID, budget *Budget)
}

// Config assembles one simulation run.
type Config struct {
	// Trace drives the contact schedule.
	Trace *trace.Trace
	// Interests holds one key per node.
	Interests []workload.Key
	// InterestSets optionally widens each node's subscription to several
	// keys (the multi-key extension). When set it must be node-parallel
	// and each set must contain that node's Interests entry.
	InterestSets [][]workload.Key
	// Messages is the pre-generated workload, sorted by CreatedAt.
	Messages []workload.Message
	// TTL is the message lifetime ("identical to their maximum tolerable
	// delay").
	TTL time.Duration
	// BandwidthBps is the effective link rate; zero selects
	// DefaultBandwidthBps.
	BandwidthBps int
	// Seed feeds the protocol's RNG.
	Seed int64
	// Failures injects node outages: while a node is down its radio is
	// off, so every contact involving it is skipped (the device's stored
	// state survives — it was only powered off). Used to test the broker
	// election's self-healing.
	Failures []Failure
}

// Failure is one node outage window [From, Until).
type Failure struct {
	Node  trace.NodeID
	From  time.Duration
	Until time.Duration
}

func (c Config) validate() error {
	switch {
	case c.Trace == nil:
		return fmt.Errorf("sim: nil trace")
	case len(c.Interests) != c.Trace.Nodes:
		return fmt.Errorf("sim: %d interests for %d nodes", len(c.Interests), c.Trace.Nodes)
	case c.TTL <= 0:
		return fmt.Errorf("sim: TTL must be positive, got %v", c.TTL)
	case c.BandwidthBps < 0:
		return fmt.Errorf("sim: bandwidth must be non-negative, got %d", c.BandwidthBps)
	}
	for i := 1; i < len(c.Messages); i++ {
		if c.Messages[i].CreatedAt < c.Messages[i-1].CreatedAt {
			return fmt.Errorf("sim: messages not sorted at index %d", i)
		}
	}
	for i, m := range c.Messages {
		if m.Origin < 0 || m.Origin >= c.Trace.Nodes {
			return fmt.Errorf("sim: message %d origin %d out of range", i, m.Origin)
		}
	}
	for i, fl := range c.Failures {
		if fl.Node < 0 || int(fl.Node) >= c.Trace.Nodes {
			return fmt.Errorf("sim: failure %d node %d out of range", i, fl.Node)
		}
		if fl.Until <= fl.From || fl.From < 0 {
			return fmt.Errorf("sim: failure %d window [%v,%v) invalid", i, fl.From, fl.Until)
		}
	}
	if c.InterestSets != nil {
		if len(c.InterestSets) != c.Trace.Nodes {
			return fmt.Errorf("sim: %d interest sets for %d nodes", len(c.InterestSets), c.Trace.Nodes)
		}
		for i, set := range c.InterestSets {
			if len(set) == 0 {
				return fmt.Errorf("sim: node %d has an empty interest set", i)
			}
			found := false
			for _, k := range set {
				if k == c.Interests[i] {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sim: node %d interest set omits its primary interest %q", i, c.Interests[i])
			}
		}
	}
	return nil
}

// runner implements Env.
type runner struct {
	cfg       Config
	now       time.Duration
	collector *metrics.Collector
}

var _ Env = (*runner)(nil)

func (r *runner) Now() time.Duration                   { return r.now }
func (r *runner) Nodes() int                           { return r.cfg.Trace.Nodes }
func (r *runner) Interest(n trace.NodeID) workload.Key { return r.cfg.Interests[n] }
func (r *runner) TTL() time.Duration                   { return r.cfg.TTL }
func (r *runner) RecordControl(n int)                  { r.collector.ControlBytes(n) }

func (r *runner) InterestSet(n trace.NodeID) []workload.Key {
	if r.cfg.InterestSets != nil {
		return r.cfg.InterestSets[n]
	}
	return r.cfg.Interests[n : n+1]
}

// matches reports whether any of the message's keys is subscribed by node n.
func (r *runner) matches(msg *workload.Message, n trace.NodeID) bool {
	for _, want := range r.InterestSet(n) {
		for _, k := range msg.MatchKeys() {
			if k == want {
				return true
			}
		}
	}
	return false
}

func (r *runner) Deliver(msg *workload.Message, to trace.NodeID) {
	if r.now > msg.CreatedAt+r.cfg.TTL {
		r.collector.LateDrop()
		return
	}
	r.collector.DataBytes(msg.Size)
	if int(to) != msg.Origin && r.matches(msg, to) {
		r.collector.GenuineDelivery(msg.ID, int(to), r.now-msg.CreatedAt)
		return
	}
	r.collector.FalseDelivery(msg.ID)
}

func (r *runner) RecordReplication(falsePositive bool) {
	r.collector.Replication(falsePositive)
}

func (r *runner) RecordForwarding(msg *workload.Message) {
	r.collector.Forwarding()
	r.collector.DataBytes(msg.Size)
}

// Run replays cfg against proto and returns the metrics report.
func Run(cfg Config, proto Protocol) (metrics.Report, error) {
	if err := cfg.validate(); err != nil {
		return metrics.Report{}, err
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = DefaultBandwidthBps
	}
	r := &runner{
		cfg:       cfg,
		collector: metrics.NewCollector(proto.Name()),
	}

	// Index subscribers per key to classify each message as deliverable.
	subscribers := make(map[workload.Key][]trace.NodeID, len(cfg.Interests))
	for n := 0; n < cfg.Trace.Nodes; n++ {
		for _, k := range r.InterestSet(trace.NodeID(n)) {
			subscribers[k] = append(subscribers[k], trace.NodeID(n))
		}
	}
	deliverable := func(m *workload.Message) bool {
		for _, k := range m.MatchKeys() {
			for _, n := range subscribers[k] {
				if int(n) != m.Origin {
					return true
				}
			}
		}
		return false
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := proto.Init(r, rng); err != nil {
		return metrics.Report{}, fmt.Errorf("sim: init %s: %w", proto.Name(), err)
	}

	bytesPerSec := float64(cfg.BandwidthBps) / 8

	// Merge the two time-sorted event streams: message creations and
	// contact starts.
	mi, ci := 0, 0
	msgs, contacts := cfg.Messages, cfg.Trace.Contacts
	for mi < len(msgs) || ci < len(contacts) {
		nextMsg := time.Duration(1<<62 - 1)
		if mi < len(msgs) {
			nextMsg = msgs[mi].CreatedAt
		}
		nextContact := time.Duration(1<<62 - 1)
		if ci < len(contacts) {
			nextContact = contacts[ci].Start
		}
		if nextMsg <= nextContact {
			m := msgs[mi]
			mi++
			r.now = m.CreatedAt
			r.collector.MessageCreated(deliverable(&m))
			proto.OnMessage(m)
			continue
		}
		c := contacts[ci]
		ci++
		r.now = c.Start
		if down(cfg.Failures, c.A, c.Start) || down(cfg.Failures, c.B, c.Start) {
			continue // one radio is off: the contact never happens
		}
		budget := NewBudget(int(c.Duration().Seconds() * bytesPerSec))
		proto.OnContact(c.A, c.B, budget)
	}
	return r.collector.Report(), nil
}

// down reports whether node n is inside a failure window at time t.
func down(failures []Failure, n trace.NodeID, t time.Duration) bool {
	for _, f := range failures {
		if f.Node == n && t >= f.From && t < f.Until {
			return true
		}
	}
	return false
}
