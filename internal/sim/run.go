package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bsub/internal/metrics"
	"bsub/internal/trace"
	"bsub/internal/workload"
	"bsub/internal/xrand"
)

// population implements Population: the immutable facts every worker
// shares. Reads are concurrent; nothing here mutates after Init.
type population struct {
	interests    []workload.Key
	interestSets [][]workload.Key
	subscribers  map[workload.Key][]trace.NodeID
	ttl          time.Duration
	n            int
	workers      int
}

func (p *population) Nodes() int                           { return p.n }
func (p *population) Interest(n trace.NodeID) workload.Key { return p.interests[n] }
func (p *population) TTL() time.Duration                   { return p.ttl }
func (p *population) Workers() int                         { return p.workers }

func (p *population) InterestSet(n trace.NodeID) []workload.Key {
	if p.interestSets != nil {
		return p.interestSets[n]
	}
	return p.interests[n : n+1]
}

// matches reports whether any of the message's keys is subscribed by node n.
func (p *population) matches(msg *workload.Message, n trace.NodeID) bool {
	for _, want := range p.InterestSet(n) {
		for _, k := range msg.MatchKeys() {
			if k == want {
				return true
			}
		}
	}
	return false
}

// deliverable reports whether any node other than the producer subscribes
// to one of the message's keys.
func (p *population) deliverable(m *workload.Message) bool {
	for _, k := range m.MatchKeys() {
		for _, n := range p.subscribers[k] {
			if int(n) != m.Origin {
				return true
			}
		}
	}
	return false
}

// workerEnv implements Env for one worker goroutine. The clock tracks the
// event being executed; the RNG lazily reseeds per event so protocol
// draws are independent of worker assignment and epoch width.
type workerEnv struct {
	*population
	collector *metrics.Collector
	now       time.Duration
	worker    int
	comp      int32 // executing component's epoch-local index
	budget    Budget
	evSeed    uint64
	rngSeeded bool
	rngSrc    xrand.PRNG
	rng       *rand.Rand
}

var _ Env = (*workerEnv)(nil)

func (e *workerEnv) Now() time.Duration  { return e.now }
func (e *workerEnv) Worker() int         { return e.worker }
func (e *workerEnv) RecordControl(n int) { e.collector.ControlBytes(n) }
func (e *workerEnv) RecordReplication(falsePositive bool) {
	e.collector.Replication(falsePositive)
}

func (e *workerEnv) RecordForwarding(msg *workload.Message) {
	e.collector.Forwarding()
	e.collector.DataBytes(msg.Size)
}

func (e *workerEnv) Deliver(msg *workload.Message, to trace.NodeID) {
	if e.now > msg.CreatedAt+e.ttl {
		e.collector.LateDrop()
		return
	}
	e.collector.DataBytes(msg.Size)
	if int(to) != msg.Origin && e.matches(msg, to) {
		e.collector.GenuineDelivery(msg.ID, int(to), e.now-msg.CreatedAt)
		return
	}
	e.collector.FalseDelivery(msg.ID)
}

// RNG seeds on first use within each event, from the event's own identity
// (root seed, time, node pair). The draw stream a protocol sees during a
// contact session is therefore a pure function of the contact itself —
// byte-identical at any worker count and any epoch width. The source is a
// splitmix64 PRNG, so the per-event reseed costs one multiply.
func (e *workerEnv) RNG() *rand.Rand {
	if !e.rngSeeded {
		e.rngSrc.Seed(int64(e.evSeed))
		e.rngSeeded = true
	}
	return e.rng
}

// event is one buffered epoch event: a contact (msg < 0) or a message
// creation (msg indexes the epoch's message buffer, b is unused).
type event struct {
	at   time.Duration
	end  time.Duration
	a, b trace.NodeID
	msg  int32
	comp int32
}

// executor buffers one epoch of events, partitions them into
// contact-connected components with a stamped union-find, and runs the
// components on worker goroutines. All scratch state is reused across
// epochs, so steady-state execution does not allocate per event.
type executor struct {
	proto       Protocol
	pop         *population
	envs        []*workerEnv
	epoch       time.Duration
	curEpoch    int64
	bytesPerSec float64
	seedBase    uint64

	events []event
	msgs   []workload.Message

	parent []int32
	stamp  []int32
	cur    int32

	comps     map[int32]int32 // component root -> dense component index
	compFirst []int32         // component -> epoch-local first event index
	compCount []int32
	compOff   []int32
	order     []int32 // event indices, counting-sorted by component

	next atomic.Int32 // shared component cursor during a flush
}

func newExecutor(cfg *Config, proto Protocol, pop *population, epoch time.Duration) *executor {
	ex := &executor{
		proto:       proto,
		pop:         pop,
		epoch:       epoch,
		bytesPerSec: float64(cfg.BandwidthBps) / 8,
		seedBase:    xrand.Mix64(uint64(cfg.Seed)),
		parent:      make([]int32, pop.n),
		stamp:       make([]int32, pop.n),
		comps:       make(map[int32]int32),
	}
	for w := 0; w < pop.workers; w++ {
		env := &workerEnv{
			population: pop,
			collector:  metrics.NewCollector(proto.Name()),
			worker:     w,
		}
		env.rng = rand.New(&env.rngSrc)
		ex.envs = append(ex.envs, env)
	}
	return ex
}

// eventSeed derives the RNG seed for one event from the root seed and the
// event's identity. It deliberately ignores epochs, components, and
// workers, so protocol draws survive any re-sharding of the same run.
func (ex *executor) eventSeed(ev *event) uint64 {
	h := ex.seedBase ^ uint64(ev.at)
	h = xrand.Mix64(h)
	h ^= uint64(uint32(ev.a))<<32 | uint64(uint32(ev.b))
	return xrand.Mix64(h)
}

// find returns the stamped union-find root of node x, initializing the
// node's entry on first touch in the current epoch.
func (ex *executor) find(x int32) int32 {
	if ex.stamp[x] != ex.cur {
		ex.stamp[x] = ex.cur
		ex.parent[x] = x
		return x
	}
	for ex.parent[x] != x {
		ex.parent[x] = ex.parent[ex.parent[x]] // path halving
		x = ex.parent[x]
	}
	return x
}

func (ex *executor) union(a, b int32) {
	ra, rb := ex.find(a), ex.find(b)
	if ra != rb {
		ex.parent[rb] = ra
	}
}

// flush partitions the buffered epoch into components and executes them,
// returning after every worker has passed the epoch barrier.
func (ex *executor) flush() {
	if len(ex.events) == 0 {
		return
	}
	ex.cur++
	for i := range ex.events {
		ev := &ex.events[i]
		if ev.msg < 0 {
			ex.union(int32(ev.a), int32(ev.b))
		} else {
			ex.find(int32(ev.a)) // stamp the producer's singleton
		}
	}

	// Dense component indices in first-event order: deterministic no
	// matter how the union-find shaped its trees.
	clear(ex.comps)
	ex.compFirst = ex.compFirst[:0]
	ex.compCount = ex.compCount[:0]
	for i := range ex.events {
		ev := &ex.events[i]
		r := ex.find(int32(ev.a))
		ci, ok := ex.comps[r]
		if !ok {
			ci = int32(len(ex.compFirst))
			ex.comps[r] = ci
			ex.compFirst = append(ex.compFirst, int32(i))
			ex.compCount = append(ex.compCount, 0)
		}
		ev.comp = ci
		ex.compCount[ci]++
	}

	// Stable counting sort: each component's events in buffered (global
	// time) order, all components packed into one flat index array.
	ncomp := len(ex.compFirst)
	ex.compOff = ex.compOff[:0]
	off := int32(0)
	for _, c := range ex.compCount {
		ex.compOff = append(ex.compOff, off)
		off += c
	}
	if cap(ex.order) < len(ex.events) {
		ex.order = make([]int32, len(ex.events))
	}
	ex.order = ex.order[:len(ex.events)]
	fill := append([]int32(nil), ex.compOff...)
	for i := range ex.events {
		c := ex.events[i].comp
		ex.order[fill[c]] = int32(i)
		fill[c]++
	}

	// Execute: workers pull components off a shared cursor. Which worker
	// runs which component is scheduling noise — components share no
	// nodes and collectors merge exactly — so output stays byte-identical.
	if len(ex.envs) == 1 || ncomp == 1 {
		for ci := 0; ci < ncomp; ci++ {
			ex.runComponent(ex.envs[0], int32(ci))
		}
	} else {
		ex.next.Store(0)
		var wg sync.WaitGroup
		nw := len(ex.envs)
		if nw > ncomp {
			nw = ncomp
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(env *workerEnv) {
				defer wg.Done()
				for {
					ci := ex.next.Add(1) - 1
					if int(ci) >= ncomp {
						return
					}
					ex.runComponent(env, ci)
				}
			}(ex.envs[w])
		}
		wg.Wait() // the epoch barrier
	}

	ex.events = ex.events[:0]
	ex.msgs = ex.msgs[:0]
}

// runComponent executes one component's events in global time order.
func (ex *executor) runComponent(env *workerEnv, ci int32) {
	env.comp = ci
	start := ex.compOff[ci]
	endOff := start + ex.compCount[ci]
	for _, idx := range ex.order[start:endOff] {
		ev := &ex.events[idx]
		env.now = ev.at
		env.evSeed = ex.eventSeed(ev)
		env.rngSeeded = false
		if ev.msg >= 0 {
			m := ex.msgs[ev.msg]
			env.collector.MessageCreated(ex.pop.deliverable(&m))
			ex.proto.OnMessage(env, m)
			continue
		}
		env.collector.Contact()
		env.budget.reset(int((ev.end - ev.at).Seconds() * ex.bytesPerSec))
		ex.proto.OnContact(env, ev.a, ev.b, &env.budget)
	}
}

// Run replays cfg against proto and returns the metrics report.
func Run(cfg Config, proto Protocol) (metrics.Report, error) {
	if err := cfg.validate(); err != nil {
		return metrics.Report{}, err
	}
	if cfg.BandwidthBps == 0 {
		cfg.BandwidthBps = DefaultBandwidthBps
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	epoch := cfg.Epoch
	if epoch <= 0 {
		epoch = DefaultEpoch
	}

	n := cfg.nodes()
	pop := &population{
		interests:    cfg.Interests,
		interestSets: cfg.InterestSets,
		subscribers:  make(map[workload.Key][]trace.NodeID, len(cfg.Interests)),
		ttl:          cfg.TTL,
		n:            n,
		workers:      workers,
	}
	for i := 0; i < n; i++ {
		for _, k := range pop.InterestSet(trace.NodeID(i)) {
			pop.subscribers[k] = append(pop.subscribers[k], trace.NodeID(i))
		}
	}

	if err := proto.Init(pop, rand.New(rand.NewSource(cfg.Seed))); err != nil {
		return metrics.Report{}, fmt.Errorf("sim: init %s: %w", proto.Name(), err)
	}

	src := cfg.Source
	if src == nil {
		src = cfg.Trace.Source()
	}
	msrc := cfg.MsgSource
	if msrc == nil {
		msrc = workload.SliceSource(cfg.Messages)
	}

	ex := newExecutor(&cfg, proto, pop, epoch)

	// Pump the two time-sorted streams into epoch buffers, flushing at
	// each epoch boundary. Messages win ties, matching the sequential
	// simulator's historical order.
	curMsg, haveMsg := msrc.Next()
	curC, haveC := src.Next()
	nmsgs := 0
	for haveMsg || haveC {
		takeMsg := haveMsg && (!haveC || curMsg.CreatedAt <= curC.Start)
		var at time.Duration
		if takeMsg {
			at = curMsg.CreatedAt
		} else {
			at = curC.Start
		}
		if at < 0 {
			return metrics.Report{}, fmt.Errorf("sim: negative event time %v", at)
		}
		if ei := int64(at / epoch); ei > ex.curEpoch {
			ex.flush()
			ex.curEpoch = ei
		}
		if takeMsg {
			if curMsg.Origin < 0 || curMsg.Origin >= n {
				return metrics.Report{}, fmt.Errorf("sim: message %d origin %d out of range", nmsgs, curMsg.Origin)
			}
			if nmsgs > 0 && len(ex.msgs) > 0 && curMsg.CreatedAt < ex.msgs[len(ex.msgs)-1].CreatedAt {
				return metrics.Report{}, fmt.Errorf("sim: message stream not sorted at %d", nmsgs)
			}
			ex.events = append(ex.events, event{
				at:  curMsg.CreatedAt,
				a:   trace.NodeID(curMsg.Origin),
				b:   -1,
				msg: int32(len(ex.msgs)),
			})
			ex.msgs = append(ex.msgs, curMsg)
			nmsgs++
			curMsg, haveMsg = msrc.Next()
			continue
		}
		if !(down(cfg.Failures, curC.A, curC.Start) || down(cfg.Failures, curC.B, curC.Start)) {
			ex.events = append(ex.events, event{
				at:  curC.Start,
				end: curC.End,
				a:   curC.A,
				b:   curC.B,
				msg: -1,
			})
		}
		curC, haveC = src.Next()
	}
	ex.flush()

	total := ex.envs[0].collector
	for _, env := range ex.envs[1:] {
		total.Merge(env.collector)
	}
	return total.Report(), nil
}
