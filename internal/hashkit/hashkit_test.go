package hashkit

import (
	"hash/fnv"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		m, k    int
		wantErr bool
	}{
		{name: "valid small", m: 8, k: 2},
		{name: "valid paper eval", m: 256, k: 4},
		{name: "valid max k", m: 1024, k: MaxK},
		{name: "zero m", m: 0, k: 2, wantErr: true},
		{name: "negative m", m: -5, k: 2, wantErr: true},
		{name: "zero k", m: 8, k: 0, wantErr: true},
		{name: "negative k", m: 8, k: -1, wantErr: true},
		{name: "k too large", m: 8, k: MaxK + 1, wantErr: true},
		{name: "m of one", m: 1, k: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, err := New(tt.m, tt.k)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d, %d) error = %v, wantErr %v", tt.m, tt.k, err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if h.M() != tt.m || h.K() != tt.k {
				t.Errorf("got (M,K) = (%d,%d), want (%d,%d)", h.M(), h.K(), tt.m, tt.k)
			}
		})
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0, 0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestPositionsInRange(t *testing.T) {
	h := MustNew(256, 4)
	keys := []string{"", "a", "NewMoon", "Twitter'sNew", "funnybutnotcool", "openwebawards", "日本語"}
	for _, key := range keys {
		for _, p := range h.Positions(nil, key) {
			if int(p) >= h.M() {
				t.Errorf("Positions(%q) produced out-of-range position %d (m=%d)", key, p, h.M())
			}
		}
	}
}

func TestPositionsDeterministic(t *testing.T) {
	h := MustNew(256, 4)
	a := h.Positions(nil, "Thanksgiving")
	b := h.Positions(nil, "Thanksgiving")
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("position %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPositionsCount(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7, 16} {
		h := MustNew(512, k)
		if got := len(h.Positions(nil, "key")); got != k {
			t.Errorf("k=%d: got %d positions", k, got)
		}
	}
}

func TestPositionsAppendsToDst(t *testing.T) {
	h := MustNew(64, 3)
	dst := make([]uint32, 0, 8)
	dst = append(dst, 99)
	out := h.Positions(dst, "x")
	if len(out) != 4 {
		t.Fatalf("got len %d, want 4", len(out))
	}
	if out[0] != 99 {
		t.Errorf("existing element clobbered: %d", out[0])
	}
}

func TestPositionsDistinctKeysUsuallyDiffer(t *testing.T) {
	h := MustNew(1<<16, 4)
	seen := make(map[[4]uint32]string)
	collisions := 0
	keys := []string{
		"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
		"iota", "kappa", "lambda", "mu", "nu", "xi", "omicron", "pi",
	}
	for _, key := range keys {
		ps := h.Positions(nil, key)
		var sig [4]uint32
		copy(sig[:], ps)
		if prev, ok := seen[sig]; ok {
			t.Logf("signature collision between %q and %q", prev, key)
			collisions++
		}
		seen[sig] = key
	}
	if collisions > 0 {
		t.Errorf("%d full-signature collisions among %d keys in a 2^16 space", collisions, len(keys))
	}
}

// Property: every derived position is always within [0, m) for arbitrary
// keys and a range of filter geometries.
func TestPositionsInRangeProperty(t *testing.T) {
	geometries := []struct{ m, k int }{{1, 1}, {2, 2}, {100, 3}, {256, 4}, {4096, 8}}
	for _, g := range geometries {
		h := MustNew(g.m, g.k)
		prop := func(key string) bool {
			for _, p := range h.Positions(nil, key) {
				if int(p) >= g.m {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("m=%d k=%d: %v", g.m, g.k, err)
		}
	}
}

// Property: position derivation is a pure function of the key.
func TestPositionsPureProperty(t *testing.T) {
	h := MustNew(509, 5) // prime m exercises the non-power-of-two path
	prop := func(key string) bool {
		a := h.Positions(nil, key)
		b := h.Positions(nil, key)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: the inlined FNV-1a/64 in DigestOf matches the standard
// library's hash/fnv bit-for-bit — the digest halves are a wire-visible
// protocol constant (they decide every filter bit), so the allocation-free
// rewrite must not drift from the reference implementation.
func TestDigestMatchesStdlibFNV(t *testing.T) {
	prop := func(key string) bool {
		f := fnv.New64a()
		_, _ = f.Write([]byte(key))
		sum := f.Sum64()
		d := DigestOf(key)
		return d.h1 == uint32(sum) && d.h2 == uint32(sum>>32)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	for _, key := range []string{"", "a", "openwebawards", "日本語"} {
		if !prop(key) {
			t.Errorf("DigestOf(%q) differs from hash/fnv", key)
		}
	}
}

// Property: Positions is exactly PositionsDigest over the precomputed
// digest, for arbitrary keys.
func TestPositionsDigestEquivalence(t *testing.T) {
	h := MustNew(256, 4)
	prop := func(key string) bool {
		a := h.Positions(nil, key)
		b := h.PositionsDigest(nil, DigestOf(key))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return len(a) == len(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDigestOfAllocationFree(t *testing.T) {
	h := MustNew(256, 4)
	buf := make([]uint32, 0, 4)
	if avg := testing.AllocsPerRun(100, func() {
		buf = h.PositionsDigest(buf[:0], DigestOf("openwebawards"))
	}); avg != 0 {
		t.Errorf("DigestOf+PositionsDigest allocates %.1f times per run, want 0", avg)
	}
}

func BenchmarkPositions(b *testing.B) {
	h := MustNew(256, 4)
	buf := make([]uint32, 0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.Positions(buf[:0], "openwebawards")
	}
}
