// Package hashkit derives the k independent bit positions that every
// Bloom-filter variant in this repository uses to map a key onto a
// bit-vector.
//
// The paper (Section III) assumes k hash functions that independently hash a
// key to an integer in [0, m-1]. We realize them with the standard
// Kirsch–Mitzenmacher double-hashing construction: a single 64-bit FNV-1a
// digest is split into two 32-bit halves h1 and h2, and position i is
// (h1 + i*h2) mod m. This preserves the asymptotic false-positive behaviour
// of k independent hashes while hashing the key only once.
package hashkit

import (
	"fmt"
	"math"
)

// MaxK bounds the number of hash functions a Hasher will derive. The paper
// uses k = 2 in its worked examples and k = 4 in the evaluation; 64 leaves
// generous headroom for parameter studies.
const MaxK = 64

// Hasher derives k bit positions in [0, m) for string keys.
//
// The zero value is not usable; construct with New.
type Hasher struct {
	m uint32
	k int
}

// New returns a Hasher that derives k positions over an m-bit vector.
func New(m, k int) (Hasher, error) {
	if m <= 0 {
		return Hasher{}, fmt.Errorf("hashkit: bit-vector length must be positive, got %d", m)
	}
	if m > math.MaxUint32 {
		// Positions are computed mod a 32-bit m; a longer vector would be
		// silently truncated, not used.
		return Hasher{}, fmt.Errorf("hashkit: bit-vector length %d exceeds the 32-bit position space", m)
	}
	if k <= 0 || k > MaxK {
		return Hasher{}, fmt.Errorf("hashkit: hash count must be in [1, %d], got %d", MaxK, k)
	}
	return Hasher{m: uint32(m), k: k}, nil
}

// MustNew is New for parameters known to be valid at compile time; it panics
// on invalid input and is intended for package-level defaults and tests.
//
//bsub:coldpath
func MustNew(m, k int) Hasher {
	h, err := New(m, k)
	if err != nil {
		panic(err)
	}
	return h
}

// M returns the bit-vector length this Hasher targets.
//
//bsub:hotpath
func (h Hasher) M() int { return int(h.m) }

// K returns the number of positions derived per key.
//
//bsub:hotpath
func (h Hasher) K() int { return h.k }

// Positions appends the k bit positions for key to dst and returns the
// extended slice. Positions may repeat for distinct i (the paper explicitly
// "omit[s] the probability that multiple hash functions return the same
// location"); callers that need distinct positions must deduplicate.
//
//bsub:hotpath
func (h Hasher) Positions(dst []uint32, key string) []uint32 {
	return h.PositionsDigest(dst, DigestOf(key))
}

// Digest is a key's double-hashing state — the two 32-bit halves of its
// FNV-1a/64 digest — precomputed once so hot paths that probe the same key
// against many filters (or the same filter across many contacts) never
// re-hash the key bytes. A Digest is geometry-independent: the same Digest
// yields positions for any Hasher.
type Digest struct {
	h1, h2 uint32
}

// DigestOf hashes key once with FNV-1a/64 and splits the digest into the
// two halves used by double hashing. It allocates nothing.
//
//bsub:hotpath
func DigestOf(key string) Digest {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return Digest{h1: uint32(h), h2: uint32(h >> 32)}
}

// PositionsDigest appends the k bit positions for a precomputed digest to
// dst and returns the extended slice; Positions(dst, key) is exactly
// PositionsDigest(dst, DigestOf(key)).
//
//bsub:hotpath
func (h Hasher) PositionsDigest(dst []uint32, d Digest) []uint32 {
	// Force h2 odd so the stride cycles through all residues when m is a
	// power of two, avoiding degenerate single-position keys.
	h2 := d.h2 | 1
	pos := d.h1 % h.m
	step := h2 % h.m
	for i := 0; i < h.k; i++ {
		dst = append(dst, pos)
		pos += step
		if pos >= h.m {
			pos -= h.m
		}
	}
	return dst
}
