package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFilterBackendsMatrix(t *testing.T) {
	backends := FilterBackends()
	if len(backends) != 4 {
		t.Fatalf("backend matrix has %d entries, want 4", len(backends))
	}
	if backends[0].Name() != "tcbf" {
		t.Errorf("matrix leads with %q, want the default tcbf backend", backends[0].Name())
	}
	seen := map[string]bool{}
	for _, b := range backends {
		name := b.Name()
		if name == "" {
			t.Error("backend with empty name")
		}
		if seen[name] {
			t.Errorf("duplicate backend name %q", name)
		}
		seen[name] = true
	}
}

// TestBackendAblationGolden regenerates the quick-mode backend ablation
// (small fixture, seed 1, TTL 4h) and byte-compares the CSV against the
// committed golden. The golden pins the seam itself: swapping the relay
// filter behind internal/filter must not perturb the default backend's
// simulation results, and the alternative backends' rows document their
// intended behavioral deltas. Regenerate after an intentional change
// with:
//
//	BSUB_UPDATE_GOLDEN=1 go test ./internal/experiments -run TestBackendAblationGolden
func TestBackendAblationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-mode simulations take a few seconds")
	}
	f, err := NewSmallFixture(1)
	if err != nil {
		t.Fatal(err)
	}
	results, err := AblateFilterBackends(f, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rows := BackendTraceRows("small", 4*time.Hour, results)
	if len(rows) != len(FilterBackends()) {
		t.Fatalf("got %d rows, want one per backend (%d)", len(rows), len(FilterBackends()))
	}
	for i, r := range rows {
		if want := FilterBackends()[i].Name(); r.Backend != want {
			t.Errorf("row %d backend %q, want %q", i, r.Backend, want)
		}
		if r.Delivery <= 0 || r.Delivery > 1 {
			t.Errorf("backend %s delivery %.3f out of (0,1]", r.Backend, r.Delivery)
		}
		if r.ControlBytes <= 0 {
			t.Errorf("backend %s recorded no control traffic", r.Backend)
		}
	}

	var buf bytes.Buffer
	if err := WriteBackendAblationCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "ablation-backends-quick.csv")
	if os.Getenv("BSUB_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden %s updated", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden: %v (regenerate with BSUB_UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("backend ablation diverged from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestBackendScaleSweepQuick runs the per-backend streamed-population leg
// at smoke scale: every backend consumes the identical trace and workload
// streams, so the stream-side counters must agree exactly while the
// protocol-side outcomes are backend-specific.
func TestBackendScaleSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("streamed simulations take a few seconds")
	}
	points, err := BackendScaleSweep(600, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(FilterBackends()) {
		t.Fatalf("got %d points, want one per backend (%d)", len(points), len(FilterBackends()))
	}
	for i, p := range points {
		if want := FilterBackends()[i].Name(); p.Backend != want {
			t.Errorf("point %d backend %q, want %q", i, p.Backend, want)
		}
		if p.Contacts != points[0].Contacts || p.Messages != points[0].Messages {
			t.Errorf("backend %s saw a different event stream: %+v vs %+v",
				p.Backend, p.ScalePoint, points[0].ScalePoint)
		}
		if p.Delivery <= 0 || p.Delivery > 1 {
			t.Errorf("backend %s delivery %.3f out of (0,1]", p.Backend, p.Delivery)
		}
		if p.ControlBytes <= 0 {
			t.Errorf("backend %s recorded no control traffic", p.Backend)
		}
	}

	doc := BackendBench{Scale: points}
	var buf bytes.Buffer
	if err := WriteBackendBenchJSON(&buf, doc); err != nil {
		t.Fatal(err)
	}
	var back BackendBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Scale) != len(points) || back.Scale[0].Backend != "tcbf" {
		t.Errorf("JSON round-trip mangled the scale leg: %+v", back.Scale)
	}
}
