package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"bsub/internal/bloofi"
	"bsub/internal/core"
	"bsub/internal/filter"
)

// The filter-backend ablation (ROADMAP item 4 / ISSUE 9) swaps the relay
// filter behind the internal/filter seam and replays identical traces:
// the paper's packed TCBF, the retouched decorator trading selected
// false negatives for forwarding cost, the autoscaling stack growing
// geometry with load, and the Bloofi tree the mesh broker tier uses to
// aggregate downstream interests. Every variant sees the same contacts,
// workload, and TTL, so delivery, forwarding cost, FPR, and bytes on
// the wire isolate the filter design itself.

// FilterBackends is the ablation's backend matrix. The paper's
// evaluation geometry (m=256, k=4) runs its relay filters well under
// half full, so the retouched and autoscale default triggers (0.5)
// would never engage; both bounds are lowered to 0.1 — about 25 set
// positions, six keys' worth — where the mechanisms can actually
// operate. Retouching then visibly trades delivery for forwarding
// cost. The autoscale rows still replicate tcbf exactly, and that
// equality is the finding, not a wiring bug: per-node genuine interest
// sets are one or two topics (under the trigger even at 0.02), and
// broker filters are merged aggregates that refuse genuine inserts, so
// the stack never needs to grow — the base geometry is over-provisioned
// for the paper's workload and adaptivity costs nothing when unneeded.
func FilterBackends() []filter.Backend {
	return []filter.Backend{
		filter.Packed{},
		filter.Retouched{MaxFill: 0.1},
		filter.Autoscale{GrowAt: 0.1, MaxLayers: 4},
		bloofi.Backend{},
	}
}

// AblateFilterBackends runs B-SUB once per filter backend over the
// fixture, all other configuration held at the paper's values.
func AblateFilterBackends(f *Fixture, ttl time.Duration) ([]AblationResult, error) {
	variants := make([]struct {
		name string
		cfg  core.Config
	}, 0, len(FilterBackends()))
	for _, b := range FilterBackends() {
		cfg := f.BSubConfig(ttl)
		cfg.Backend = b
		variants = append(variants, struct {
			name string
			cfg  core.Config
		}{name: b.Name(), cfg: cfg})
	}
	return runVariants(f, ttl, variants)
}

// BackendTraceRow is one (trace, backend) cell of the ablation grid —
// the flattened form the CSV and BENCH_PR9.json carry.
type BackendTraceRow struct {
	Trace           string  `json:"trace"`
	Backend         string  `json:"backend"`
	TTLMinutes      float64 `json:"ttl_minutes"`
	Delivery        float64 `json:"delivery"`
	DelayMinutes    float64 `json:"delay_minutes"`
	FwdPerDelivered float64 `json:"fwd_per_delivered"`
	FPR             float64 `json:"fpr"`
	InjectionFPR    float64 `json:"injection_fpr"`
	ControlBytes    int64   `json:"control_bytes"`
}

// BackendTraceRows flattens one fixture's ablation results into grid
// rows.
func BackendTraceRows(trace string, ttl time.Duration, results []AblationResult) []BackendTraceRow {
	rows := make([]BackendTraceRow, 0, len(results))
	for _, r := range results {
		rows = append(rows, BackendTraceRow{
			Trace:           trace,
			Backend:         r.Variant,
			TTLMinutes:      ttl.Minutes(),
			Delivery:        r.Report.DeliveryRatio(),
			DelayMinutes:    r.Report.MeanDelay().Minutes(),
			FwdPerDelivered: r.Report.ForwardingsPerDelivered(),
			FPR:             r.Report.FPR(),
			InjectionFPR:    r.Report.InjectionFPR(),
			ControlBytes:    r.Report.ControlBytes,
		})
	}
	return rows
}

// WriteBackendAblationCSV emits the backend grid as CSV, one row per
// (trace, backend) cell.
func WriteBackendAblationCSV(w io.Writer, rows []BackendTraceRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"trace", "backend", "ttl_minutes",
		"delivery", "delay_minutes", "fwd_per_delivered",
		"fpr", "injection_fpr", "control_bytes",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, r := range rows {
		row := []string{
			r.Trace, r.Backend, ftoa(r.TTLMinutes),
			ftoa(r.Delivery), ftoa(r.DelayMinutes), ftoa(r.FwdPerDelivered),
			ftoa(r.FPR), ftoa(r.InjectionFPR), strconv.FormatInt(r.ControlBytes, 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// BackendScalePoint is one backend's streamed-population outcome.
type BackendScalePoint struct {
	Backend string `json:"backend"`
	ScalePoint
}

// BackendScaleSweep runs the streamed Scale(nodes) simulation once per
// filter backend, same trace and workload streams each time.
func BackendScaleSweep(nodes, workers int, seed int64) ([]BackendScalePoint, error) {
	out := make([]BackendScalePoint, 0, len(FilterBackends()))
	for _, b := range FilterBackends() {
		cfg := core.DefaultConfig(0.1)
		cfg.Backend = b
		p, err := scaleRun(nodes, workers, seed, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: backend %s: %w", b.Name(), err)
		}
		out = append(out, BackendScalePoint{Backend: b.Name(), ScalePoint: p})
	}
	return out, nil
}

// WriteBackendScale renders the per-backend population leg as text.
func WriteBackendScale(w io.Writer, title string, points []BackendScalePoint) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %8s %10s %9s %9s %8s %7s %12s %10s\n",
		"backend", "nodes", "contacts", "messages", "delivery", "fwd/dlv", "fpr", "ctrl(KiB)", "wall_s"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-10s %8d %10d %9d %9.3f %8.2f %7.4f %12.1f %10.2f\n",
			p.Backend, p.Nodes, p.Contacts, p.Messages, p.Delivery, p.FwdPerD, p.FPR,
			float64(p.ControlBytes)/1024, p.WallSec); err != nil {
			return err
		}
	}
	return nil
}

// BackendBench is the BENCH_PR9.json document: the (trace, backend)
// ablation grid plus the streamed-population leg.
type BackendBench struct {
	TraceRows []BackendTraceRow   `json:"trace_rows"`
	Scale     []BackendScalePoint `json:"scale"`
}

// WriteBackendBenchJSON writes the document indented, ready to check in.
func WriteBackendBenchJSON(w io.Writer, b BackendBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
