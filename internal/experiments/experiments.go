// Package experiments assembles the paper's evaluation (Section VII): the
// fixtures (traces + workloads), the parameter sweeps behind every figure,
// and the table computations. Both cmd/experiments and the repository's
// benchmark harness drive these runners.
//
// Experiment index (see DESIGN.md §4):
//
//	T1   Table I   — trace parameters
//	T2   Table II  — top-4 key distribution
//	F7   Fig. 7    — delivery/delay/forwardings vs TTL, Haggle
//	F8   Fig. 8    — same, MIT Reality (busiest 3-day window)
//	F9   Fig. 9    — four metrics vs decaying factor, both traces
//	M1   §VI-C/VII — TCBF vs raw-string interest storage
//	A1   Eq. 1–3   — worst-case FPR of the evaluation filter
//	A2   Eq. 7–10  — optimal TCBF allocation under a storage bound
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"bsub/internal/analysis"
	"bsub/internal/core"
	"bsub/internal/metrics"
	"bsub/internal/protocol"
	"bsub/internal/sim"
	"bsub/internal/tcbf"
	"bsub/internal/trace"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

// Fixture bundles a trace with its Section VII-A workload.
type Fixture struct {
	Name      string
	Trace     *trace.Trace
	Interests []workload.Key
	Messages  []workload.Message
	Keys      *workload.KeySet
	Seed      int64
}

// NewFixture builds a fixture from an existing trace: interests drawn by
// key weight, message rates proportional to centrality with the paper's
// base rate, sizes uniform in [1, 140].
func NewFixture(name string, tr *trace.Trace, seed int64) (*Fixture, error) {
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(seed))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), workload.DefaultBaseRatePerHour)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
	return &Fixture{
		Name:      name,
		Trace:     tr,
		Interests: interests,
		Messages:  msgs,
		Keys:      ks,
		Seed:      seed,
	}, nil
}

// NewHaggleFixture generates the synthetic Haggle (Infocom'06) stand-in and
// its workload.
func NewHaggleFixture(seed int64) (*Fixture, error) {
	tr, err := tracegen.Generate(tracegen.HaggleInfocom06(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: haggle: %w", err)
	}
	return NewFixture("Haggle(Infocom06)", tr, seed)
}

// NewMITFixture generates the synthetic MIT Reality 3-day slice the paper
// simulates on ("the 3 day records from the MIT Reality trace"): a
// busy-campus window generated directly at the density the paper's
// delivery results imply (see tracegen.MITReality3Day).
func NewMITFixture(seed int64) (*Fixture, error) {
	window, err := tracegen.Generate(tracegen.MITReality3Day(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: mit: %w", err)
	}
	return NewFixture("MIT Reality", window, seed)
}

// NewSmallFixture generates the quick 20-node fixture used by tests,
// examples, and -short benchmarks.
func NewSmallFixture(seed int64) (*Fixture, error) {
	tr, err := tracegen.Generate(tracegen.Small(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: small: %w", err)
	}
	return NewFixture("Small", tr, seed)
}

// BSubConfig derives the paper's B-SUB configuration for a TTL: the DF is
// computed from Eq. 5 with T = TTL and the number of keys a broker collects
// estimated from the trace ("the number of encountered nodes in T is
// obtained by analyzing the traces"), plus the small constant the paper
// adds for unmodeled cases.
func (f *Fixture) BSubConfig(ttl time.Duration) core.Config {
	cfg := core.DefaultConfig(0)
	nKeys := f.meanPeersWithin(ttl)
	df, err := analysis.DecayFactor(cfg.InitialCounter, nKeys, cfg.FilterM, cfg.FilterK, ttl.Minutes(), 0.005)
	if err != nil {
		// ttl > 0 is enforced by sim.Config validation; fall back to the
		// no-accident baseline.
		df = cfg.InitialCounter / ttl.Minutes()
	}
	cfg.DecayPerMinute = df
	return cfg
}

// meanPeersWithin estimates how many distinct peers a node meets within a
// window, averaged over nodes and over eight window positions.
func (f *Fixture) meanPeersWithin(window time.Duration) int {
	span := f.Trace.Span()
	if window >= span {
		s := f.Trace.Stats()
		return int(s.MeanDegree + 0.5)
	}
	const samples = 8
	step := (span - window) / samples
	total, count := 0, 0
	for s := 0; s < samples; s++ {
		from := time.Duration(s) * step
		perNode := make(map[trace.NodeID]map[trace.NodeID]struct{})
		for _, c := range f.Trace.Contacts {
			if c.Start < from || c.Start >= from+window {
				continue
			}
			addPeer(perNode, c.A, c.B)
			addPeer(perNode, c.B, c.A)
		}
		for _, m := range perNode {
			total += len(m)
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return total / count
}

func addPeer(m map[trace.NodeID]map[trace.NodeID]struct{}, a, b trace.NodeID) {
	if m[a] == nil {
		m[a] = make(map[trace.NodeID]struct{})
	}
	m[a][b] = struct{}{}
}

func (f *Fixture) simConfig(ttl time.Duration) sim.Config {
	return sim.Config{
		Trace:     f.Trace,
		Interests: f.Interests,
		Messages:  f.Messages,
		TTL:       ttl,
		Seed:      f.Seed,
	}
}

// --- F7 / F8: TTL sweeps ---------------------------------------------------

// TTLPoint is one x-position of Figs. 7 and 8: the three protocols' metrics
// at a given TTL.
type TTLPoint struct {
	TTL  time.Duration
	Push metrics.Report
	BSub metrics.Report
	Pull metrics.Report
}

// DefaultTTLs mirrors the figures' log-scaled x-axis (minutes).
func DefaultTTLs() []time.Duration {
	mins := []int{10, 20, 50, 100, 200, 500, 1000}
	out := make([]time.Duration, len(mins))
	for i, m := range mins {
		out[i] = time.Duration(m) * time.Minute
	}
	return out
}

// TTLSweep runs PUSH, B-SUB (with Eq. 5's DF for each TTL), and PULL across
// the TTL axis. The 3·len(ttls) independent simulations run concurrently,
// bounded by GOMAXPROCS; results are deterministic regardless of
// scheduling because each simulation is self-contained and seeded.
func TTLSweep(f *Fixture, ttls []time.Duration) ([]TTLPoint, error) {
	out := make([]TTLPoint, len(ttls))
	type job struct {
		name  string
		run   func() (metrics.Report, error)
		store func(*TTLPoint, metrics.Report)
	}
	var jobs []func() error
	var mu sync.Mutex
	var firstErr error
	for i, ttl := range ttls {
		i, ttl := i, ttl
		for _, j := range []job{
			{
				name:  "push",
				run:   func() (metrics.Report, error) { return sim.Run(f.simConfig(ttl), protocol.NewPush()) },
				store: func(p *TTLPoint, r metrics.Report) { p.Push = r },
			},
			{
				name: "bsub",
				run: func() (metrics.Report, error) {
					return sim.Run(f.simConfig(ttl), core.New(f.BSubConfig(ttl)))
				},
				store: func(p *TTLPoint, r metrics.Report) { p.BSub = r },
			},
			{
				name:  "pull",
				run:   func() (metrics.Report, error) { return sim.Run(f.simConfig(ttl), protocol.NewPull()) },
				store: func(p *TTLPoint, r metrics.Report) { p.Pull = r },
			},
		} {
			j := j
			jobs = append(jobs, func() error {
				rep, err := j.run()
				if err != nil {
					return fmt.Errorf("experiments: %s ttl=%v: %w", j.name, ttl, err)
				}
				mu.Lock()
				out[i].TTL = ttl
				j.store(&out[i], rep)
				mu.Unlock()
				return nil
			})
		}
	}
	if err := runBounded(jobs, &mu, &firstErr); err != nil {
		return nil, err
	}
	return out, nil
}

// runBounded executes jobs with at most GOMAXPROCS workers, returning the
// first error.
func runBounded(jobs []func() error, mu *sync.Mutex, firstErr *error) error {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, job := range jobs {
		job := job
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := job(); err != nil {
				mu.Lock()
				if *firstErr == nil {
					*firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return *firstErr
}

// --- F9: DF sweep ------------------------------------------------------------

// DFPoint is one x-position of Fig. 9: B-SUB's metrics at a decaying
// factor.
type DFPoint struct {
	DF     float64 // per minute
	Report metrics.Report
}

// DefaultDFs mirrors Fig. 9's x-axis (per-minute decaying factors).
func DefaultDFs() []float64 {
	return []float64{0, 0.138, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}
}

// Fig9TTL is the sweep's fixed TTL: "The TTL is set to 20 hours."
const Fig9TTL = 20 * time.Hour

// DFSweep runs B-SUB across the DF axis at a fixed TTL, one concurrent
// simulation per DF value.
func DFSweep(f *Fixture, dfs []float64, ttl time.Duration) ([]DFPoint, error) {
	out := make([]DFPoint, len(dfs))
	var mu sync.Mutex
	var firstErr error
	jobs := make([]func() error, 0, len(dfs))
	for i, df := range dfs {
		i, df := i, df
		jobs = append(jobs, func() error {
			rep, err := sim.Run(f.simConfig(ttl), core.New(core.DefaultConfig(df)))
			if err != nil {
				return fmt.Errorf("experiments: bsub df=%g: %w", df, err)
			}
			mu.Lock()
			out[i] = DFPoint{DF: df, Report: rep}
			mu.Unlock()
			return nil
		})
	}
	if err := runBounded(jobs, &mu, &firstErr); err != nil {
		return nil, err
	}
	return out, nil
}

// TheoreticalWorstFPR is Fig. 9(d)'s dashed bound: the Eq. 1 FPR of the
// evaluation filter holding every key (m=256, k=4, n=38) — about 0.04.
func TheoreticalWorstFPR() float64 {
	return analysis.FPR(256, 4, workload.NewTrendKeySet().Len())
}

// --- T1 / T2: tables --------------------------------------------------------

// Table1Row mirrors one column of the paper's Table I.
type Table1Row struct {
	Name     string
	Device   string
	Method   string
	Days     float64
	Nodes    int
	Contacts int
}

// Table1 generates both traces and reports their parameters.
func Table1(seed int64) ([]Table1Row, error) {
	haggle, err := tracegen.Generate(tracegen.HaggleInfocom06(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: table1 haggle: %w", err)
	}
	mit, err := tracegen.Generate(tracegen.MITRealityFull(seed))
	if err != nil {
		return nil, fmt.Errorf("experiments: table1 mit: %w", err)
	}
	hs, ms := haggle.Stats(), mit.Stats()
	return []Table1Row{
		{Name: "Haggle(Infocom'06)", Device: "iMote", Method: "Bluetooth",
			Days: hs.Span.Hours() / 24, Nodes: hs.Nodes, Contacts: hs.Contacts},
		{Name: "MIT reality", Device: "phone", Method: "Bluetooth",
			Days: ms.Span.Hours() / 24, Nodes: ms.Nodes, Contacts: ms.Contacts},
	}, nil
}

// Table2Row is one entry of Table II: a key and its selection probability.
type Table2Row struct {
	Key    workload.Key
	Weight float64
}

// Table2 reports the top-n keys of the workload distribution.
func Table2(n int) []Table2Row {
	ks := workload.NewTrendKeySet()
	if n > ks.Len() {
		n = ks.Len()
	}
	out := make([]Table2Row, n)
	for i := 0; i < n; i++ {
		out[i] = Table2Row{Key: ks.Key(i), Weight: ks.Weight(i)}
	}
	return out
}

// --- M1: memory comparison ---------------------------------------------------

// MemoryResult compares TCBF interest storage against raw strings
// (Sections VI-C and VII-A).
type MemoryResult struct {
	Keys int
	// RawBytes is the raw-string representation: key bytes plus a 2-byte
	// length/control prefix per key.
	RawBytes float64
	// PerKeyTCBFBytes is the paper's per-key bound: k locations of
	// ceil(log2 m) bits plus the shared counter ("at most, 5 bytes are
	// used to encode a single key").
	PerKeyTCBFBytes float64
	// FilterPaperBytes is the Eq. 8 accounting for one filter holding all
	// keys with per-bit counters.
	FilterPaperBytes float64
	// FilterActualBytes is the real wire size of this repository's encoder
	// for the same filter.
	FilterActualBytes int
	// MeanKeyBytes is the average raw key length.
	MeanKeyBytes float64
}

// MemoryComparison measures interest-storage cost for the paper's 38-key
// workload in the m=256, k=4 configuration.
func MemoryComparison() (MemoryResult, error) {
	ks := workload.NewTrendKeySet()
	const perKeyControl = 2
	raw := 0.0
	for _, k := range ks.Keys() {
		raw += float64(len(k) + perKeyControl)
	}
	cfg := tcbf.Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	f, err := tcbf.New(cfg, 0)
	if err != nil {
		return MemoryResult{}, err
	}
	if err := f.InsertAll(ks.Keys(), 0); err != nil {
		return MemoryResult{}, err
	}
	actual, err := f.WireSize(tcbf.CountersFull)
	if err != nil {
		return MemoryResult{}, err
	}
	return MemoryResult{
		Keys:              ks.Len(),
		RawBytes:          raw,
		PerKeyTCBFBytes:   float64(tcbf.PaperWireBits(cfg.K, cfg.M, tcbf.CountersUniform)) / 8,
		FilterPaperBytes:  float64(tcbf.PaperWireBits(f.SetBits(), cfg.M, tcbf.CountersFull)) / 8,
		FilterActualBytes: actual,
		MeanKeyBytes:      ks.MeanKeyBytes(),
	}, nil
}

// --- A1 / A2: analytical experiments ------------------------------------------

// AllocationPoint is one storage bound of the A2 sweep.
type AllocationPoint struct {
	MaxBytes   int
	Allocation analysis.Allocation
}

// AllocationSweep runs the Eq. 9–10 optimizer over a range of storage
// bounds for the evaluation geometry and key population.
func AllocationSweep(maxBytes []int) ([]AllocationPoint, error) {
	n := workload.NewTrendKeySet().Len()
	out := make([]AllocationPoint, 0, len(maxBytes))
	for _, mb := range maxBytes {
		a, err := analysis.OptimalAllocation(256, 4, n, float64(mb)*8)
		if err != nil {
			return nil, fmt.Errorf("experiments: allocation bound %dB: %w", mb, err)
		}
		out = append(out, AllocationPoint{MaxBytes: mb, Allocation: a})
	}
	return out, nil
}
