package experiments

import (
	"bytes"
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func smallFixture(t *testing.T) *Fixture {
	t.Helper()
	f, err := NewSmallFixture(77)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFixtureWellFormed(t *testing.T) {
	f := smallFixture(t)
	if f.Trace == nil || len(f.Interests) != f.Trace.Nodes {
		t.Fatalf("fixture malformed: %d interests for %d nodes", len(f.Interests), f.Trace.Nodes)
	}
	if len(f.Messages) == 0 {
		t.Fatal("fixture has no messages")
	}
	for i := 1; i < len(f.Messages); i++ {
		if f.Messages[i].CreatedAt < f.Messages[i-1].CreatedAt {
			t.Fatal("messages not sorted")
		}
	}
}

func TestFixtureDeterministic(t *testing.T) {
	a, err := NewSmallFixture(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSmallFixture(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Messages) != len(b.Messages) {
		t.Fatalf("message counts differ: %d vs %d", len(a.Messages), len(b.Messages))
	}
	for i := range a.Messages {
		if !reflect.DeepEqual(a.Messages[i], b.Messages[i]) {
			t.Fatalf("message %d differs", i)
		}
	}
}

func TestBSubConfigDFScalesWithTTL(t *testing.T) {
	f := smallFixture(t)
	short := f.BSubConfig(time.Hour)
	long := f.BSubConfig(10 * time.Hour)
	if short.DecayPerMinute <= long.DecayPerMinute {
		t.Errorf("DF should fall as TTL grows: DF(1h)=%g DF(10h)=%g",
			short.DecayPerMinute, long.DecayPerMinute)
	}
	if short.DecayPerMinute <= 0 {
		t.Error("derived DF not positive")
	}
}

func TestTTLSweepSmall(t *testing.T) {
	f := smallFixture(t)
	ttls := []time.Duration{30 * time.Minute, 4 * time.Hour}
	points, err := TTLSweep(f, ttls)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// Delivery ratio must not fall as TTL rises, for every protocol.
	for _, get := range []func(TTLPoint) float64{
		func(p TTLPoint) float64 { return p.Push.DeliveryRatio() },
		func(p TTLPoint) float64 { return p.Pull.DeliveryRatio() },
	} {
		if get(points[1]) < get(points[0])-0.02 {
			t.Errorf("delivery ratio fell with longer TTL: %.3f -> %.3f",
				get(points[0]), get(points[1]))
		}
	}
	// Fig. 7 ordering at the long-TTL point.
	p := points[1]
	if p.Push.DeliveryRatio() < p.BSub.DeliveryRatio()-1e-9 {
		t.Errorf("PUSH %.3f below B-SUB %.3f", p.Push.DeliveryRatio(), p.BSub.DeliveryRatio())
	}
	if p.Push.ForwardingsPerDelivered() <= p.BSub.ForwardingsPerDelivered() {
		t.Errorf("PUSH overhead %.2f not above B-SUB %.2f",
			p.Push.ForwardingsPerDelivered(), p.BSub.ForwardingsPerDelivered())
	}
	if p.BSub.ForwardingsPerDelivered() < p.Pull.ForwardingsPerDelivered()-0.1 {
		t.Errorf("B-SUB overhead %.2f below PULL %.2f (PULL is minimal)",
			p.BSub.ForwardingsPerDelivered(), p.Pull.ForwardingsPerDelivered())
	}
}

func TestDFSweepSmall(t *testing.T) {
	f := smallFixture(t)
	points, err := DFSweep(f, []float64{0, 2}, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9: a huge DF reduces both delivery and overhead relative to
	// DF=0 (flood-like interest spread).
	if points[1].Report.ForwardingsPerDelivered() > points[0].Report.ForwardingsPerDelivered()+0.5 {
		t.Errorf("overhead rose with DF: %.2f -> %.2f",
			points[0].Report.ForwardingsPerDelivered(),
			points[1].Report.ForwardingsPerDelivered())
	}
	if points[1].Report.DeliveryRatio() > points[0].Report.DeliveryRatio()+0.05 {
		t.Errorf("delivery rose sharply with huge DF: %.3f -> %.3f",
			points[0].Report.DeliveryRatio(), points[1].Report.DeliveryRatio())
	}
}

func TestTheoreticalWorstFPR(t *testing.T) {
	got := TheoreticalWorstFPR()
	if math.Abs(got-0.04) > 0.01 {
		t.Errorf("worst-case FPR = %.4f, want the paper's ~0.04", got)
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(4)
	want := []float64{0.132, 0.103, 0.0887, 0.0739}
	for i, r := range rows {
		if math.Abs(r.Weight-want[i]) > 1e-9 {
			t.Errorf("row %d weight = %g, want %g", i, r.Weight, want[i])
		}
	}
	if len(Table2(1000)) != 38 {
		t.Error("Table2 over-requests keys")
	}
}

func TestMemoryComparison(t *testing.T) {
	m, err := MemoryComparison()
	if err != nil {
		t.Fatal(err)
	}
	if m.Keys != 38 {
		t.Fatalf("keys = %d", m.Keys)
	}
	// "at most, 5 bytes are used to encode a single key"
	if m.PerKeyTCBFBytes > 5+1e-9 {
		t.Errorf("per-key TCBF bytes = %g, paper says at most 5", m.PerKeyTCBFBytes)
	}
	// The TCBF representation must beat raw strings substantially
	// ("the TCBF uses half of the space used by the raw strings").
	perKeyRaw := m.RawBytes / float64(m.Keys)
	if m.PerKeyTCBFBytes > perKeyRaw*0.6 {
		t.Errorf("TCBF per key %g B not well below raw %g B", m.PerKeyTCBFBytes, perKeyRaw)
	}
	if m.FilterActualBytes <= 0 {
		t.Error("actual encoding empty")
	}
	// The whole 38-key filter should also undercut the raw list.
	if float64(m.FilterActualBytes) > m.RawBytes {
		t.Errorf("full filter %d B exceeds raw strings %.0f B", m.FilterActualBytes, m.RawBytes)
	}
}

func TestAllocationSweep(t *testing.T) {
	points, err := AllocationSweep([]int{250, 500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Allocation.Filters < points[i-1].Allocation.Filters {
			t.Errorf("filter count fell with a larger bound")
		}
		if points[i].Allocation.JointFPR > points[i-1].Allocation.JointFPR+1e-12 {
			t.Errorf("joint FPR rose with a larger bound")
		}
	}
	if _, err := AllocationSweep([]int{1}); err == nil {
		t.Error("infeasible bound accepted")
	}
}

func TestWriters(t *testing.T) {
	f := smallFixture(t)
	points, err := TTLSweep(f, []time.Duration{time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTTLSweep(&buf, "Fig 7 (small)", points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TTL(min)") {
		t.Error("TTL sweep output missing header")
	}

	dfp, err := DFSweep(f, []float64{0.5}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteDFSweep(&buf, "Fig 9 (small)", dfp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FPR") {
		t.Error("DF sweep output missing header")
	}

	buf.Reset()
	if err := WriteTable2(&buf, Table2(4)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NewMoon") {
		t.Error("Table II output missing top key")
	}

	m, err := MemoryComparison()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteMemory(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "raw strings") {
		t.Error("memory output malformed")
	}

	ap, err := AllocationSweep([]int{400})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteAllocation(&buf, ap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "joint FPR") {
		t.Error("allocation output malformed")
	}
}

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 generates both full traces")
	}
	rows, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Nodes != 79 || rows[1].Nodes != 97 {
		t.Errorf("node counts: %d, %d; want 79, 97", rows[0].Nodes, rows[1].Nodes)
	}
	if math.Abs(float64(rows[0].Contacts)-67360)/67360 > 0.15 {
		t.Errorf("haggle contacts %d off target", rows[0].Contacts)
	}
	if math.Abs(float64(rows[1].Contacts)-54667)/54667 > 0.15 {
		t.Errorf("mit contacts %d off target", rows[1].Contacts)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Haggle") {
		t.Error("Table I output malformed")
	}
}

func TestCSVWriters(t *testing.T) {
	f := smallFixture(t)
	points, err := TTLSweep(f, []time.Duration{time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTTLSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("TTL sweep CSV does not parse: %v", err)
	}
	if len(rows) != 2 || len(rows[0]) != 10 {
		t.Errorf("TTL sweep CSV shape %dx%d, want 2x10", len(rows), len(rows[0]))
	}
	if rows[1][0] != "60.000000" {
		t.Errorf("ttl column = %q", rows[1][0])
	}

	dfp, err := DFSweep(f, []float64{0.5}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteDFSweepCSV(&buf, dfp); err != nil {
		t.Fatal(err)
	}
	rows, err = csv.NewReader(&buf).ReadAll()
	if err != nil || len(rows) != 2 || len(rows[0]) != 6 {
		t.Errorf("DF sweep CSV malformed: %v rows=%d", err, len(rows))
	}

	ab, err := AblateCopyLimit(f, ablationTTL, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteAblationCSV(&buf, ab); err != nil {
		t.Fatal(err)
	}
	rows, err = csv.NewReader(&buf).ReadAll()
	if err != nil || len(rows) != 2 || rows[1][0] != "C=3" {
		t.Errorf("ablation CSV malformed: %v %v", err, rows)
	}
}

func TestDefaultAxes(t *testing.T) {
	ttls := DefaultTTLs()
	if len(ttls) != 7 || ttls[0] != 10*time.Minute || ttls[6] != 1000*time.Minute {
		t.Errorf("DefaultTTLs = %v", ttls)
	}
	dfs := DefaultDFs()
	if len(dfs) != 8 || dfs[0] != 0 || dfs[1] != 0.138 {
		t.Errorf("DefaultDFs = %v", dfs)
	}
}
