package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestScaleSweepQuick(t *testing.T) {
	points, err := ScaleSweep([]int{500, 1500}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.Contacts == 0 || p.Messages == 0 {
			t.Fatalf("scale %d ran empty: %+v", p.Nodes, p)
		}
		if p.Delivery <= 0 || p.Delivery > 1 {
			t.Errorf("scale %d delivery %.3f out of (0,1]", p.Nodes, p.Delivery)
		}
		if p.PeakRSS <= 0 || p.RSSPerNode <= 0 {
			t.Errorf("scale %d missing RSS figures: %+v", p.Nodes, p)
		}
		if p.ContactsPerSec <= 0 {
			t.Errorf("scale %d missing throughput: %+v", p.Nodes, p)
		}
	}

	var csvBuf bytes.Buffer
	if err := WriteScaleCSV(&csvBuf, points); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(csvBuf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 points
		t.Errorf("CSV has %d rows, want 3", len(rows))
	}

	var jsonBuf bytes.Buffer
	if err := WriteScaleJSON(&jsonBuf, points); err != nil {
		t.Fatal(err)
	}
	var decoded []ScalePoint
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Nodes != 500 {
		t.Errorf("JSON round-trip mangled points: %+v", decoded)
	}

	var txt bytes.Buffer
	if err := WriteScale(&txt, "scale", points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "1500") {
		t.Error("text writer dropped a row")
	}
}

// TestScaleRunDeterministicAcrossWorkers is the quick-mode determinism
// gate (make determinism): the protocol-visible outcome of a scale run
// must not depend on the worker count. Wall time and RSS of course do.
func TestScaleRunDeterministicAcrossWorkers(t *testing.T) {
	one, err := ScaleRun(800, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := ScaleRun(800, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if one.Contacts != eight.Contacts || one.Messages != eight.Messages ||
		one.Delivery != eight.Delivery || one.FwdPerD != eight.FwdPerD ||
		one.FPR != eight.FPR || one.ControlBytes != eight.ControlBytes {
		t.Errorf("workers=1 and workers=8 diverged:\n1: %+v\n8: %+v", one, eight)
	}
}

// BenchmarkScaleSim measures end-to-end simulator throughput (protocol
// work included) at the two bench-json population sizes. The interesting
// number is the contacts/s metric, not ns/op; run with -benchtime 1x.
func BenchmarkScaleSim(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			var last ScalePoint
			for i := 0; i < b.N; i++ {
				p, err := ScaleRun(n, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = p
			}
			b.ReportMetric(last.ContactsPerSec, "contacts/s")
			b.ReportMetric(last.RSSPerNode, "RSSbytes/node")
		})
	}
}

func sizeLabel(n int) string {
	if n%1000 == 0 {
		return strconv.Itoa(n/1000) + "k"
	}
	return strconv.Itoa(n)
}
