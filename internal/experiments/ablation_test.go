package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const ablationTTL = 4 * time.Hour

func TestAblateMerge(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateMerge(f, ablationTTL)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d variants", len(results))
	}
	m, a := results[0].Report, results[1].Report
	if m.Delivered == 0 || a.Delivered == 0 {
		t.Fatalf("a variant delivered nothing: M=%s A=%s", m, a)
	}
	// A-merge between brokers inflates counters (Fig. 6), making stale
	// brokers look attractive; it must not beat the paper's M-merge on
	// overhead-adjusted delivery. We assert the weaker, robust property:
	// both run, and A-merge does not reduce traffic (bogus counters never
	// make forwarding more conservative).
	if a.Forwardings < m.Forwardings/2 {
		t.Errorf("A-merge forwardings %d implausibly below M-merge %d",
			a.Forwardings, m.Forwardings)
	}
}

func TestAblateDecay(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateDecay(f, ablationTTL)
	if err != nil {
		t.Fatal(err)
	}
	withDF, noDF := results[0].Report, results[1].Report
	// The direction of the traffic difference depends on trace density
	// (decay creates the counter gradients that trigger broker-broker
	// handoffs, while no-decay saturates relay filters and injects more
	// copies), so assert only sanity here and log the comparison; the
	// full-scale ablation is in EXPERIMENTS.md.
	if withDF.Delivered == 0 || noDF.Delivered == 0 {
		t.Fatalf("a variant delivered nothing: DF=%s noDF=%s", withDF, noDF)
	}
	t.Logf("decay:    %s", withDF)
	t.Logf("no decay: %s", noDF)
}

func TestAblateCopyLimit(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateCopyLimit(f, ablationTTL, []int{1, 3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d variants", len(results))
	}
	// More copies -> at least as many forwardings.
	if results[2].Report.Forwardings < results[0].Report.Forwardings {
		t.Errorf("C=8 forwardings %d below C=1 %d",
			results[2].Report.Forwardings, results[0].Report.Forwardings)
	}
	for _, r := range results {
		if ratio := r.Report.DeliveryRatio(); ratio <= 0 || ratio > 1 {
			t.Errorf("%s: delivery ratio %g out of range", r.Variant, ratio)
		}
	}
}

func TestAblateBrokerThresholds(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateBrokerThresholds(f, ablationTTL, [][2]int{{1, 2}, {3, 5}, {8, 12}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Report.Delivered == 0 {
			t.Errorf("%s delivered nothing", r.Variant)
		}
	}
}

func TestAblateGeometry(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateGeometry(f, ablationTTL, [][2]int{{64, 4}, {256, 4}, {1024, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// A 64-bit filter holding up to 38 keys is saturated: its false
	// positives inject more useless traffic than the 1024-bit filter.
	small, large := results[0].Report, results[2].Report
	if small.FPR() < large.FPR() {
		t.Errorf("m=64 FPR %.4f below m=1024 FPR %.4f; saturation should hurt",
			small.FPR(), large.FPR())
	}
	// Larger filters cost more control bytes per exchange.
	if large.ControlBytes <= small.ControlBytes {
		t.Errorf("m=1024 control %d not above m=64 %d", large.ControlBytes, small.ControlBytes)
	}
}

func TestAblateGeometryInvalid(t *testing.T) {
	f := smallFixture(t)
	if _, err := AblateGeometry(f, ablationTTL, [][2]int{{0, 4}}); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestWriteAblation(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateCopyLimit(f, ablationTTL, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAblation(&buf, "ablation: copy limit", results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "C=3") || !strings.Contains(out, "delivery") {
		t.Errorf("ablation output malformed:\n%s", out)
	}
}

func TestAblateDFPolicy(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateDFPolicy(f, ablationTTL, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d variants", len(results))
	}
	for _, r := range results {
		if r.Report.Delivered == 0 {
			t.Errorf("%s delivered nothing", r.Variant)
		}
		t.Logf("%-32s %s", r.Variant, r.Report)
	}
}

func TestAblateRelayPartitions(t *testing.T) {
	f := smallFixture(t)
	results, err := AblateRelayPartitions(f, ablationTTL, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d variants", len(results))
	}
	for _, r := range results {
		if r.Report.Delivered == 0 {
			t.Errorf("%s delivered nothing", r.Variant)
		}
	}
}
