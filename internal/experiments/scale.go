package experiments

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bsub/internal/core"
	"bsub/internal/sim"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

// The scale sweep (ROADMAP item 1) runs B-SUB at population scale — 10k,
// 100k, 1M nodes — over streamed traces and workloads, measuring both the
// protocol (delivery, forwardings, FPR) and the instrument (contacts/sec,
// peak RSS). Nothing here materializes a contact or message list: the
// tracegen and workload streams feed the sharded runner directly, so
// memory stays proportional to nodes and active pairs, never to events.

// DefaultScaleSizes is the full ROADMAP sweep.
var DefaultScaleSizes = []int{10_000, 100_000, 1_000_000}

// QuickScaleSizes keeps the sweep under a second for tests and -quick.
var QuickScaleSizes = []int{1_000, 5_000}

// ScaleTTL is the message TTL the scale sweep runs with. The Scale trace
// spans 24 diurnal hours; 6 hours tolerates an overnight lull without
// keeping every message alive for the whole span.
const ScaleTTL = 6 * time.Hour

// scaleMsgPerTenNodes sets the workload volume: one expected message per
// ten nodes, so large populations get proportionally large workloads
// without drowning the contact stream (~10 contacts per node).
const scaleMsgPerTenNodes = 1.0

// ScalePoint is one population size's outcome.
type ScalePoint struct {
	Nodes    int     `json:"nodes"`
	Workers  int     `json:"workers"`
	Links    int     `json:"links"`
	Contacts int     `json:"contacts"`
	Messages int     `json:"messages"`
	Delivery float64 `json:"delivery"`
	FwdPerD  float64 `json:"fwd_per_delivered"`
	FPR      float64 `json:"fpr"`
	// ControlBytes is the total filter bytes exchanged during contacts —
	// the wire cost of interest dissemination at this scale.
	ControlBytes int64   `json:"control_bytes"`
	WallSec      float64 `json:"wall_seconds"`
	// ContactsPerSec is contacts executed per wall-clock second — the
	// instrument's throughput, protocol work included.
	ContactsPerSec float64 `json:"contacts_per_sec"`
	// PeakRSS is the process's high-water resident set (Linux VmHWM) after
	// the run. It is cumulative across a process, so sweeps run sizes in
	// ascending order: each point's peak is dominated by its own run.
	PeakRSS int64 `json:"peak_rss_bytes"`
	// RSSPerNode is PeakRSS divided by the population size.
	RSSPerNode float64 `json:"rss_bytes_per_node"`
}

// ScaleStreams builds the streamed fixture for a Scale(nodes) population:
// the contact stream, per-node interests, and the message stream. Shared
// by the sweep and cmd/bsub-sim's -nodes mode. Message rates follow
// contact activity (the streamed stand-in for centrality), normalized so
// the whole population produces about nodes/10 messages over the span.
func ScaleStreams(nodes int, seed int64) (*tracegen.Stream, []workload.Key, *workload.Stream, error) {
	cfg := tracegen.Scale(nodes, seed)
	ts, err := tracegen.NewStream(cfg)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: scale %d: %w", nodes, err)
	}
	ks := workload.NewTrendKeySet()
	interests := workload.Interests(ks, nodes, rand.New(rand.NewSource(seed)))
	activity := ts.ActivityRates()
	var sum float64
	for _, a := range activity {
		sum += a
	}
	target := float64(nodes) / 10 * scaleMsgPerTenNodes
	rates := make([]float64, len(activity))
	if sum > 0 {
		norm := target / (sum * cfg.Span.Hours())
		for i, a := range activity {
			rates[i] = a * norm
		}
	}
	return ts, interests, workload.NewStream(ks, rates, cfg.Span, seed), nil
}

// ScaleRun simulates B-SUB over a streamed Scale(nodes) trace and measures
// one ScalePoint. Workers and the epoch width follow sim defaults when
// zero; output is byte-identical at any worker count (see DESIGN.md §11).
func ScaleRun(nodes, workers int, seed int64) (ScalePoint, error) {
	return scaleRun(nodes, workers, seed, core.DefaultConfig(0.1))
}

// scaleRun is ScaleRun with the protocol configuration exposed, so the
// backend ablation can swap the relay filter under an otherwise
// identical streamed population.
func scaleRun(nodes, workers int, seed int64, cfg core.Config) (ScalePoint, error) {
	ts, interests, msgs, err := ScaleStreams(nodes, seed)
	if err != nil {
		return ScalePoint{}, err
	}

	proto := core.New(cfg)
	start := time.Now()
	rep, err := sim.Run(sim.Config{
		Source:    ts,
		MsgSource: msgs,
		Interests: interests,
		TTL:       ScaleTTL,
		Seed:      seed,
		Workers:   workers,
	}, proto)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("experiments: scale %d: %w", nodes, err)
	}
	wall := time.Since(start).Seconds()

	p := ScalePoint{
		Nodes:        nodes,
		Workers:      workers,
		Links:        ts.Links(),
		Contacts:     rep.Contacts,
		Messages:     rep.Created,
		Delivery:     rep.DeliveryRatio(),
		FwdPerD:      rep.ForwardingsPerDelivered(),
		FPR:          rep.FPR(),
		ControlBytes: rep.ControlBytes,
		WallSec:      wall,
		PeakRSS:      peakRSS(),
	}
	if wall > 0 {
		p.ContactsPerSec = float64(rep.Contacts) / wall
	}
	if nodes > 0 {
		p.RSSPerNode = float64(p.PeakRSS) / float64(nodes)
	}
	return p, nil
}

// ScaleSweep runs ScaleRun at each size, ascending, so the cumulative RSS
// high-water mark tracks the size that set it.
func ScaleSweep(sizes []int, workers int, seed int64) ([]ScalePoint, error) {
	out := make([]ScalePoint, 0, len(sizes))
	for _, n := range sizes {
		p, err := ScaleRun(n, workers, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// peakRSS returns the process's resident-set high-water mark in bytes:
// VmHWM from /proc/self/status on Linux, the Go heap's OS footprint
// elsewhere (an undercount, but monotone and dependency-free).
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// WriteScale renders the sweep as text.
func WriteScale(w io.Writer, title string, points []ScalePoint) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s %8s %10s %9s %9s %8s %7s %9s %12s %10s\n",
		"nodes", "workers", "contacts", "messages", "delivery", "fwd/dlv", "fpr", "wall_s", "contacts/s", "rss_mb"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%10d %8d %10d %9d %9.3f %8.2f %7.4f %9.2f %12.0f %10.1f\n",
			p.Nodes, p.Workers, p.Contacts, p.Messages, p.Delivery, p.FwdPerD, p.FPR,
			p.WallSec, p.ContactsPerSec, float64(p.PeakRSS)/(1<<20)); err != nil {
			return err
		}
	}
	return nil
}

// WriteScaleCSV emits the sweep as CSV, one row per population size.
func WriteScaleCSV(w io.Writer, points []ScalePoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"nodes", "workers", "links", "contacts", "messages",
		"delivery", "fwd_per_delivered", "fpr", "control_bytes",
		"wall_seconds", "contacts_per_sec", "peak_rss_bytes", "rss_bytes_per_node",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, p := range points {
		row := []string{
			strconv.Itoa(p.Nodes), strconv.Itoa(p.Workers),
			strconv.Itoa(p.Links), strconv.Itoa(p.Contacts), strconv.Itoa(p.Messages),
			ftoa(p.Delivery), ftoa(p.FwdPerD), ftoa(p.FPR),
			strconv.FormatInt(p.ControlBytes, 10),
			ftoa(p.WallSec), ftoa(p.ContactsPerSec),
			strconv.FormatInt(p.PeakRSS, 10), ftoa(p.RSSPerNode),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScaleJSON writes the sweep as the BENCH_PR8.json scale section: an
// indented JSON array of ScalePoints.
func WriteScaleJSON(w io.Writer, points []ScalePoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}
