package experiments

import (
	"fmt"
	"io"
	"time"

	"bsub/internal/core"
	"bsub/internal/metrics"
	"bsub/internal/sim"
)

// Ablations quantify the design choices the paper argues for
// qualitatively:
//
//   - M-merge between brokers (Fig. 6's bogus-counter argument) vs the
//     naive A-merge.
//   - Decay (Section VI-A) vs counters that never decrease.
//   - The producer copy limit C (Section V-D).
//   - The broker-election thresholds (T_l, T_u) of Section V-B.
//   - The TCBF geometry (m, k) behind the Eq. 1 FPR trade-off.
//
// Each ablation runs B-SUB variants over the same fixture and reports the
// Section VII metrics side by side.

// AblationResult is one variant's outcome.
type AblationResult struct {
	Variant string
	Report  metrics.Report
}

// runVariants executes each configured variant over the fixture.
func runVariants(f *Fixture, ttl time.Duration, variants []struct {
	name string
	cfg  core.Config
}) ([]AblationResult, error) {
	out := make([]AblationResult, 0, len(variants))
	for _, v := range variants {
		rep, err := sim.Run(f.simConfig(ttl), core.New(v.cfg))
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		out = append(out, AblationResult{Variant: v.name, Report: rep})
	}
	return out, nil
}

// AblateMerge compares M-merge (the paper's choice for broker-broker
// interest exchange) against A-merge (the bogus-counter trap of Fig. 6).
func AblateMerge(f *Fixture, ttl time.Duration) ([]AblationResult, error) {
	base := f.BSubConfig(ttl)
	aMerge := base
	aMerge.BrokerMerge = core.BrokerMergeAdditive
	return runVariants(f, ttl, []struct {
		name string
		cfg  core.Config
	}{
		{name: "M-merge (paper)", cfg: base},
		{name: "A-merge (bogus counters)", cfg: aMerge},
	})
}

// AblateDecay compares the Eq. 5 decaying factor against no decay at all
// (Section VI-A's warning: stale interests, more useless traffic).
func AblateDecay(f *Fixture, ttl time.Duration) ([]AblationResult, error) {
	withDF := f.BSubConfig(ttl)
	noDF := withDF
	noDF.DecayPerMinute = 0
	return runVariants(f, ttl, []struct {
		name string
		cfg  core.Config
	}{
		{name: fmt.Sprintf("DF=%.4f (Eq. 5)", withDF.DecayPerMinute), cfg: withDF},
		{name: "DF=0 (no decay)", cfg: noDF},
	})
}

// AblateCopyLimit sweeps the producer replication bound C.
func AblateCopyLimit(f *Fixture, ttl time.Duration, limits []int) ([]AblationResult, error) {
	variants := make([]struct {
		name string
		cfg  core.Config
	}, 0, len(limits))
	for _, c := range limits {
		cfg := f.BSubConfig(ttl)
		cfg.CopyLimit = c
		variants = append(variants, struct {
			name string
			cfg  core.Config
		}{name: fmt.Sprintf("C=%d", c), cfg: cfg})
	}
	return runVariants(f, ttl, variants)
}

// AblateBrokerThresholds sweeps the election bounds (T_l, T_u).
func AblateBrokerThresholds(f *Fixture, ttl time.Duration, bounds [][2]int) ([]AblationResult, error) {
	variants := make([]struct {
		name string
		cfg  core.Config
	}, 0, len(bounds))
	for _, b := range bounds {
		cfg := f.BSubConfig(ttl)
		cfg.BrokerLow, cfg.BrokerHigh = b[0], b[1]
		variants = append(variants, struct {
			name string
			cfg  core.Config
		}{name: fmt.Sprintf("Tl=%d Tu=%d", b[0], b[1]), cfg: cfg})
	}
	return runVariants(f, ttl, variants)
}

// AblateGeometry sweeps the TCBF bit-vector length and hash count,
// trading control bytes against false positives.
func AblateGeometry(f *Fixture, ttl time.Duration, geoms [][2]int) ([]AblationResult, error) {
	variants := make([]struct {
		name string
		cfg  core.Config
	}, 0, len(geoms))
	for _, g := range geoms {
		cfg := f.BSubConfig(ttl)
		cfg.FilterM, cfg.FilterK = g[0], g[1]
		variants = append(variants, struct {
			name string
			cfg  core.Config
		}{name: fmt.Sprintf("m=%d k=%d", g[0], g[1]), cfg: cfg})
	}
	return runVariants(f, ttl, variants)
}

// AblateDFPolicy compares the three decaying-factor policies: the paper's
// precomputed Eq. 5 DF, the Section VII-B online per-broker variant, and
// the Section VI-B FPR-feedback controller.
func AblateDFPolicy(f *Fixture, ttl time.Duration, targetFPR float64) ([]AblationResult, error) {
	fixed := f.BSubConfig(ttl)

	online := core.DefaultConfig(0)
	online.DFMode = core.DFOnlineEq5

	feedback := core.DefaultConfig(0)
	feedback.DFMode = core.DFFeedback
	feedback.TargetFPR = targetFPR

	return runVariants(f, ttl, []struct {
		name string
		cfg  core.Config
	}{
		{name: fmt.Sprintf("fixed Eq.5 (DF=%.4f)", fixed.DecayPerMinute), cfg: fixed},
		{name: "online Eq.5 (per broker)", cfg: online},
		{name: fmt.Sprintf("FPR feedback (target %.3f)", targetFPR), cfg: feedback},
	})
}

// AblateRelayPartitions sweeps the Section VI-D partition count applied to
// relay filters.
func AblateRelayPartitions(f *Fixture, ttl time.Duration, hs []int) ([]AblationResult, error) {
	variants := make([]struct {
		name string
		cfg  core.Config
	}, 0, len(hs))
	for _, h := range hs {
		cfg := f.BSubConfig(ttl)
		cfg.RelayPartitions = h
		variants = append(variants, struct {
			name string
			cfg  core.Config
		}{name: fmt.Sprintf("h=%d", h), cfg: cfg})
	}
	return runVariants(f, ttl, variants)
}

// WriteAblation renders ablation variants side by side.
func WriteAblation(w io.Writer, title string, results []AblationResult) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s %10s %12s %8s %8s %8s %10s\n",
		"variant", "delivery", "delay(min)", "fwd", "FPR", "injFPR", "ctrl(KiB)"); err != nil {
		return err
	}
	for _, r := range results {
		_, err := fmt.Fprintf(w, "%-28s %10.3f %12.1f %8.2f %8.4f %8.4f %10.1f\n",
			r.Variant, r.Report.DeliveryRatio(), r.Report.MeanDelay().Minutes(),
			r.Report.ForwardingsPerDelivered(), r.Report.FPR(), r.Report.InjectionFPR(),
			float64(r.Report.ControlBytes)/1024)
		if err != nil {
			return err
		}
	}
	return nil
}
