package experiments

import (
	"fmt"
	"io"
)

// WriteTTLSweep renders a TTL sweep as the three series of Fig. 7/8:
// delivery ratio, delay, and forwardings per delivered message.
func WriteTTLSweep(w io.Writer, title string, points []TTLPoint) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %28s %31s %28s\n", "TTL(min)",
		"delivery(PUSH/B-SUB/PULL)", "delay-min(PUSH/B-SUB/PULL)", "fwd(PUSH/B-SUB/PULL)"); err != nil {
		return err
	}
	for _, p := range points {
		_, err := fmt.Fprintf(w, "%-12.0f %8.3f %8.3f %8.3f  %9.1f %9.1f %9.1f  %8.2f %8.2f %8.2f\n",
			p.TTL.Minutes(),
			p.Push.DeliveryRatio(), p.BSub.DeliveryRatio(), p.Pull.DeliveryRatio(),
			p.Push.MeanDelay().Minutes(), p.BSub.MeanDelay().Minutes(), p.Pull.MeanDelay().Minutes(),
			p.Push.ForwardingsPerDelivered(), p.BSub.ForwardingsPerDelivered(), p.Pull.ForwardingsPerDelivered())
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteDFSweep renders a DF sweep as the four series of Fig. 9.
func WriteDFSweep(w io.Writer, title string, points []DFPoint) error {
	if _, err := fmt.Fprintf(w, "%s (TTL=%v, theoretical worst FPR %.4f)\n",
		title, Fig9TTL, TheoreticalWorstFPR()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %10s %12s %8s %8s %8s\n",
		"DF(/min)", "delivery", "delay(min)", "fwd", "FPR", "injFPR"); err != nil {
		return err
	}
	for _, p := range points {
		_, err := fmt.Fprintf(w, "%-10.3f %10.3f %12.1f %8.2f %8.4f %8.4f\n",
			p.DF, p.Report.DeliveryRatio(), p.Report.MeanDelay().Minutes(),
			p.Report.ForwardingsPerDelivered(), p.Report.FPR(), p.Report.InjectionFPR())
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTable1 renders the Table I trace parameters.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintf(w, "Table I: parameters of two data sets\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-20s %-8s %-10s %10s %8s %10s\n",
		"Data Set", "Device", "Method", "Days", "Nodes", "Contacts"); err != nil {
		return err
	}
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "%-20s %-8s %-10s %10.0f %8d %10d\n",
			r.Name, r.Device, r.Method, r.Days, r.Nodes, r.Contacts)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTable2 renders the Table II key distribution head.
func WriteTable2(w io.Writer, rows []Table2Row) error {
	if _, err := fmt.Fprintf(w, "Table II: distribution of the top %d keys\n", len(rows)); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-20s %.4f\n", r.Key, r.Weight); err != nil {
			return err
		}
	}
	return nil
}

// WriteMemory renders the M1 interest-storage comparison.
func WriteMemory(w io.Writer, m MemoryResult) error {
	_, err := fmt.Fprintf(w,
		`M1: interest storage, %d keys (m=256, k=4)
raw strings (incl. 2B control/key): %8.1f B  (mean key %.1f B)
TCBF per key (paper bound):         %8.1f B
TCBF full filter (Eq. 8):           %8.1f B
TCBF full filter (this encoder):    %8d B
per-key ratio TCBF/raw:             %8.2f
`,
		m.Keys, m.RawBytes, m.MeanKeyBytes, m.PerKeyTCBFBytes,
		m.FilterPaperBytes, m.FilterActualBytes,
		m.PerKeyTCBFBytes/(m.RawBytes/float64(m.Keys)))
	return err
}

// WriteAllocation renders the A2 optimal-allocation sweep.
func WriteAllocation(w io.Writer, points []AllocationPoint) error {
	if _, err := fmt.Fprintf(w, "A2: optimal TCBF allocation (m=256, k=4, n=38 keys)\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %8s %14s %12s %12s\n",
		"bound(B)", "filters", "keys/filter", "fill-thresh", "joint FPR"); err != nil {
		return err
	}
	for _, p := range points {
		_, err := fmt.Fprintf(w, "%-12d %8d %14.1f %12.3f %12.6f\n",
			p.MaxBytes, p.Allocation.Filters, p.Allocation.KeysPerFilter,
			p.Allocation.FillThreshold, p.Allocation.JointFPR)
		if err != nil {
			return err
		}
	}
	return nil
}
