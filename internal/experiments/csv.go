package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exporters mirror the text writers so the figures can be re-plotted
// with any tool. One row per x-position, one column per series, matching
// the paper's axes.

// WriteTTLSweepCSV emits a Fig. 7/8 sweep as CSV.
func WriteTTLSweepCSV(w io.Writer, points []TTLPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"ttl_minutes",
		"push_delivery", "bsub_delivery", "pull_delivery",
		"push_delay_minutes", "bsub_delay_minutes", "pull_delay_minutes",
		"push_fwd_per_delivered", "bsub_fwd_per_delivered", "pull_fwd_per_delivered",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, p := range points {
		row := []string{
			ftoa(p.TTL.Minutes()),
			ftoa(p.Push.DeliveryRatio()), ftoa(p.BSub.DeliveryRatio()), ftoa(p.Pull.DeliveryRatio()),
			ftoa(p.Push.MeanDelay().Minutes()), ftoa(p.BSub.MeanDelay().Minutes()), ftoa(p.Pull.MeanDelay().Minutes()),
			ftoa(p.Push.ForwardingsPerDelivered()), ftoa(p.BSub.ForwardingsPerDelivered()), ftoa(p.Pull.ForwardingsPerDelivered()),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDFSweepCSV emits a Fig. 9 sweep as CSV.
func WriteDFSweepCSV(w io.Writer, points []DFPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"df_per_minute", "delivery", "delay_minutes", "fwd_per_delivered", "fpr", "injection_fpr",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, p := range points {
		row := []string{
			ftoa(p.DF),
			ftoa(p.Report.DeliveryRatio()),
			ftoa(p.Report.MeanDelay().Minutes()),
			ftoa(p.Report.ForwardingsPerDelivered()),
			ftoa(p.Report.FPR()),
			ftoa(p.Report.InjectionFPR()),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAblationCSV emits an ablation comparison as CSV.
func WriteAblationCSV(w io.Writer, results []AblationResult) error {
	cw := csv.NewWriter(w)
	header := []string{"variant", "delivery", "delay_minutes", "fwd_per_delivered", "fpr", "injection_fpr", "control_bytes"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	for _, r := range results {
		row := []string{
			r.Variant,
			ftoa(r.Report.DeliveryRatio()),
			ftoa(r.Report.MeanDelay().Minutes()),
			ftoa(r.Report.ForwardingsPerDelivered()),
			ftoa(r.Report.FPR()),
			ftoa(r.Report.InjectionFPR()),
			strconv.FormatInt(r.Report.ControlBytes, 10),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
