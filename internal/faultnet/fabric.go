package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrPartitioned is the synthetic dial error a Fabric returns for a dial
// that crosses a partition boundary. It unwraps to a timeout-shaped
// failure the same way an unreachable radio peer does.
var ErrPartitioned = errors.New("faultnet: destination unreachable (partitioned)")

// Fabric is a test-side network controller: it hands out dial functions
// that consult a mutable partition map, so a suite can split a mesh of
// real TCP nodes into groups, let them churn, and heal the split — all
// deterministically and without touching the nodes themselves.
//
// Nodes are known by stable keys (survive restarts and address changes);
// listen addresses are bound to keys with Register. A dial from key A to
// the address of key B fails with ErrPartitioned while A and B sit in
// different groups, and every already-established connection between them
// is severed the moment Partition is called — both halves of a real
// partition. Unregistered addresses belong to the default group 0.
// No network or blocking call runs while f.mu is held; the dial in
// Dialer's closure happens between its two critical sections.
type Fabric struct {
	mu    sync.Mutex
	group map[string]int    // key -> partition group (missing = 0)
	keyOf map[string]string // listen addr -> key
	plan  func(from, to string) Plan
	conns map[*Conn][2]string // live dialed conns -> {fromKey, toKey}
}

// NewFabric returns a healed fabric: every key in group 0, no fault plans.
func NewFabric() *Fabric {
	return &Fabric{
		group: map[string]int{},
		keyOf: map[string]string{},
		conns: map[*Conn][2]string{},
	}
}

// SetPlanFunc installs a per-link fault plan source: every connection
// dialed through the fabric from key `from` to key `to` is wrapped with
// plan(from, to). Nil (the default) wraps with the zero Plan, which
// injects nothing.
func (f *Fabric) SetPlanFunc(plan func(from, to string) Plan) {
	f.mu.Lock()
	f.plan = plan
	f.mu.Unlock()
}

// Register binds a listen address to a node key. Re-registering a key
// with a new address (a restarted node) replaces nothing: old addresses
// keep resolving to the key until Forget, mirroring stale DNS.
func (f *Fabric) Register(key, addr string) {
	f.mu.Lock()
	f.keyOf[addr] = key
	f.mu.Unlock()
}

// Forget unbinds an address (e.g. a dead node's port being recycled).
func (f *Fabric) Forget(addr string) {
	f.mu.Lock()
	delete(f.keyOf, addr)
	f.mu.Unlock()
}

// Partition splits the fabric: keys listed in groups[i] join group i+1,
// every unlisted key returns to group 0. Established connections that now
// cross a group boundary are severed immediately — both endpoints see the
// link die, exactly like a mid-contact radio partition.
func (f *Fabric) Partition(groups ...[]string) {
	f.mu.Lock()
	f.group = map[string]int{}
	for i, keys := range groups {
		for _, k := range keys {
			f.group[k] = i + 1
		}
	}
	f.severCrossGroup()
	f.mu.Unlock()
}

// Heal reunites the fabric: every key returns to group 0 and future dials
// succeed again. Connections severed during the partition stay dead —
// healing restores reachability, not broken sessions.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.group = map[string]int{}
	f.mu.Unlock()
}

// Reachable reports whether a dial from key to addr would currently cross
// a partition boundary.
func (f *Fabric) Reachable(key, addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reachableLocked(key, addr)
}

func (f *Fabric) reachableLocked(key, addr string) bool {
	return f.group[key] == f.group[f.keyOf[addr]]
}

// severCrossGroup cuts every tracked connection whose endpoints sit in
// different groups and drops already-dead entries. Callers hold f.mu.
func (f *Fabric) severCrossGroup() {
	for c, link := range f.conns {
		if c.Severed() {
			delete(f.conns, c)
			continue
		}
		if f.group[link[0]] != f.group[link[1]] {
			c.Sever()
			delete(f.conns, c)
		}
	}
}

// Dialer returns a dial function for the node known as key, shaped for
// livenode's Config.Dial hook. The dial consults the partition map twice:
// before dialing, and again after the TCP handshake — a partition that
// lands mid-handshake kills the connection before the caller sees it, and
// a heal that lands mid-handshake lets it through.
func (f *Fabric) Dialer(key string) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		f.mu.Lock()
		if !f.reachableLocked(key, addr) {
			f.mu.Unlock()
			return nil, fmt.Errorf("faultnet: dial %s from %s: %w", addr, key, ErrPartitioned)
		}
		to := f.keyOf[addr]
		plan := Plan{}
		if f.plan != nil {
			plan = f.plan(key, to)
		}
		f.mu.Unlock()

		raw, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		conn := Wrap(raw, plan)

		f.mu.Lock()
		if !f.reachableLocked(key, addr) {
			f.mu.Unlock()
			conn.Sever()
			return nil, fmt.Errorf("faultnet: dial %s from %s: %w", addr, key, ErrPartitioned)
		}
		f.conns[conn] = [2]string{key, to}
		f.mu.Unlock()
		return conn, nil
	}
}
