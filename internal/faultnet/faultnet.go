// Package faultnet wraps a net.Conn with a deterministic fault plan so
// tests can drive a wire protocol through every way an opportunistic
// human contact actually ends: slowly (added latency), corruptly (bit
// flips caught by frame CRCs), torn mid-byte (partial writes, byte-exact
// cuts), or mid-conversation (frame-exact cuts, read truncation).
//
// All faults are a pure function of the Plan and the byte stream, so a
// failing chaos run reproduces from its seed. When a cut fires, the
// wrapped connection is closed too: the peer observes the severed link
// immediately instead of blocking until its own deadline, which is what
// a real radio contact ending looks like to both sides.
package faultnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// FrameHeaderLen mirrors the livenode wire format faultnet understands
// for frame-exact cuts: type (1) + big-endian body length at bytes 1–4 +
// CRC32 (4). CutWriteAfterFrames parses the write stream with this
// layout; livenode's wire tests assert the two stay in sync.
const FrameHeaderLen = 9

// Plan is a deterministic fault schedule for one connection. The zero
// value injects nothing and behaves like the bare net.Conn.
type Plan struct {
	// Seed drives the chunk sizes of PartialWrites. Two conns with equal
	// plans fault identically.
	Seed int64
	// Latency is slept before every Read and Write, modelling a slow or
	// congested link.
	Latency time.Duration
	// PartialWrites splits every Write into several smaller writes of
	// seeded-random size, exposing torn-frame assumptions.
	PartialWrites bool
	// FlipMask, when non-zero, is XORed into the byte at write-stream
	// offset FlipByte (0-indexed over the connection's lifetime) — a
	// single burst of link noise.
	FlipMask byte
	FlipByte int64
	// CutWriteAfter severs the connection once this many bytes have been
	// written; the cutting Write completes partially (a torn write).
	// Zero disables.
	CutWriteAfter int64
	// CutReadAfter severs the connection once this many bytes have been
	// read; the tail of the peer's data is truncated. Zero disables.
	CutReadAfter int64
	// CutWriteAfterFrames severs the connection after this many whole
	// frames (FrameHeaderLen headers + announced bodies) have been
	// written — a contact dying exactly between protocol steps. Zero
	// disables.
	CutWriteAfterFrames int
}

// Conn is a net.Conn that injects the faults of its Plan. Read and Write
// each serialize on an internal mutex; deadline and Close calls pass
// straight through to the wrapped conn and stay safe to call
// concurrently, matching net.Conn semantics for protocol use.
type Conn struct {
	net.Conn
	plan Plan
	rng  *rand.Rand

	mu      sync.Mutex
	read    int64 // total bytes read
	written int64 // total bytes written
	cut     bool

	// Write-stream frame parser state for CutWriteAfterFrames.
	frames  int    // whole frames written so far
	hdr     []byte // header bytes of the frame in progress
	remain  int64  // body bytes left in the frame in progress
	inFrame bool   // header complete, body in progress
}

// Wrap returns conn with plan's faults injected.
func Wrap(conn net.Conn, plan Plan) *Conn {
	return &Conn{Conn: conn, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// errCut is the error a faulted write surfaces: the OS-level broken-pipe
// error a real severed TCP link produces.
func errCut(n int64) error {
	return fmt.Errorf("faultnet: link cut after %d bytes: %w", n, syscall.EPIPE)
}

// errTruncated is the error a faulted read surfaces.
func errTruncated(n int64) error {
	return fmt.Errorf("faultnet: link truncated after %d bytes: %w", n, io.ErrUnexpectedEOF)
}

// sever marks the link dead and closes the wrapped conn so the peer sees
// the cut immediately. Callers hold mu.
func (c *Conn) sever() {
	c.cut = true
	_ = c.Conn.Close()
}

// Sever cuts the link from outside the fault plan — a Fabric partition
// landing on an established connection. Both endpoints observe the cut:
// this side's next Read/Write fails, the peer sees the close.
func (c *Conn) Sever() {
	c.mu.Lock()
	c.sever()
	c.mu.Unlock()
}

// Severed reports whether the link has been cut, by its plan or by Sever.
func (c *Conn) Severed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut
}

func (c *Conn) Read(b []byte) (int, error) {
	if c.plan.Latency > 0 {
		time.Sleep(c.plan.Latency)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, errTruncated(c.read)
	}
	limit := len(b)
	if c.plan.CutReadAfter > 0 {
		remainder := c.plan.CutReadAfter - c.read
		if remainder <= 0 {
			c.sever()
			c.mu.Unlock()
			return 0, errTruncated(c.read)
		}
		if remainder < int64(limit) {
			limit = int(remainder)
		}
	}
	c.mu.Unlock()

	n, err := c.Conn.Read(b[:limit])

	c.mu.Lock()
	c.read += int64(n)
	if c.plan.CutReadAfter > 0 && c.read >= c.plan.CutReadAfter {
		c.sever() // this call returns its data; the next read sees the cut
	}
	c.mu.Unlock()
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.plan.Latency > 0 {
		time.Sleep(c.plan.Latency)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, errCut(c.written)
	}

	// Apply faults to a copy; the caller's buffer must stay untouched.
	buf := append([]byte(nil), b...)
	if c.plan.FlipMask != 0 {
		if off := c.plan.FlipByte - c.written; off >= 0 && off < int64(len(buf)) {
			buf[off] ^= c.plan.FlipMask
		}
	}

	limit := len(buf)
	willCut := false
	if c.plan.CutWriteAfter > 0 {
		if remainder := c.plan.CutWriteAfter - c.written; remainder <= int64(len(buf)) {
			limit = int(max(remainder, 0))
			willCut = true
		}
	}
	if c.plan.CutWriteAfterFrames > 0 {
		if off := c.scanFrames(buf[:limit]); off >= 0 {
			limit = off
			willCut = true
		}
	}

	n, err := c.writeChunked(buf[:limit])
	c.written += int64(n)
	if willCut {
		c.sever()
		if err == nil {
			err = errCut(c.written)
		}
	}
	return n, err
}

// writeChunked forwards buf to the wrapped conn, split into seeded-random
// chunks when PartialWrites is set. Callers hold mu.
func (c *Conn) writeChunked(buf []byte) (int, error) {
	if !c.plan.PartialWrites {
		if len(buf) == 0 {
			return 0, nil
		}
		return c.Conn.Write(buf)
	}
	total := 0
	for len(buf) > 0 {
		chunk := 1 + c.rng.Intn(len(buf))
		n, err := c.Conn.Write(buf[:chunk])
		total += n
		if err != nil {
			return total, err
		}
		buf = buf[chunk:]
	}
	return total, nil
}

// scanFrames feeds buf through the write-stream frame parser and returns
// the offset just past the byte that completes frame number
// CutWriteAfterFrames, or -1 if it is not reached in buf. Callers hold mu.
func (c *Conn) scanFrames(buf []byte) int {
	for i, by := range buf {
		if !c.inFrame {
			c.hdr = append(c.hdr, by)
			if len(c.hdr) < FrameHeaderLen {
				continue
			}
			c.remain = int64(binary.BigEndian.Uint32(c.hdr[1:5]))
			c.hdr = c.hdr[:0]
			c.inFrame = true
		} else {
			c.remain--
		}
		if c.inFrame && c.remain == 0 {
			c.inFrame = false
			c.frames++
			if c.frames >= c.plan.CutWriteAfterFrames {
				return i + 1
			}
		}
	}
	return -1
}
