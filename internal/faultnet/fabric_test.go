package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bsub/internal/testutil"
)

// echoListener accepts connections and echoes bytes until closed.
func echoListener(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(conn, conn)
				_ = conn.Close()
			}()
		}
	}()
	return l
}

// TestFabricPartitionSchedule drives a deterministic partition/heal
// schedule over three registered nodes and checks reachability plus dial
// outcomes at every step.
func TestFabricPartitionSchedule(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	f := NewFabric()
	la, lb, lc := echoListener(t), echoListener(t), echoListener(t)
	f.Register("a", la.Addr().String())
	f.Register("b", lb.Addr().String())
	f.Register("c", lc.Addr().String())

	type probe struct {
		from, toAddr string
		want         bool // dial should succeed
	}
	steps := []struct {
		name   string
		apply  func()
		probes []probe
	}{
		{
			name:  "healed fabric is fully connected",
			apply: func() {},
			probes: []probe{
				{"a", lb.Addr().String(), true},
				{"b", lc.Addr().String(), true},
				{"c", la.Addr().String(), true},
			},
		},
		{
			name:  "a|bc: a is alone",
			apply: func() { f.Partition([]string{"a"}, []string{"b", "c"}) },
			probes: []probe{
				{"a", lb.Addr().String(), false},
				{"a", lc.Addr().String(), false},
				{"b", lc.Addr().String(), true},
				{"c", lb.Addr().String(), true},
				{"b", la.Addr().String(), false},
			},
		},
		{
			name:  "ab|c: repartition without heal",
			apply: func() { f.Partition([]string{"a", "b"}, []string{"c"}) },
			probes: []probe{
				{"a", lb.Addr().String(), true},
				{"b", lc.Addr().String(), false},
				{"c", la.Addr().String(), false},
			},
		},
		{
			name:  "unlisted keys fall back to group 0",
			apply: func() { f.Partition([]string{"a"}) },
			probes: []probe{
				{"b", lc.Addr().String(), true}, // both unlisted: group 0
				{"a", lb.Addr().String(), false},
			},
		},
		{
			name:  "heal reunites everyone",
			apply: func() { f.Heal() },
			probes: []probe{
				{"a", lb.Addr().String(), true},
				{"b", lc.Addr().String(), true},
				{"c", la.Addr().String(), true},
			},
		},
	}
	for _, step := range steps {
		step.apply()
		for _, p := range step.probes {
			if got := f.Reachable(p.from, p.toAddr); got != p.want {
				t.Errorf("%s: Reachable(%s, %s) = %v, want %v", step.name, p.from, p.toAddr, got, p.want)
			}
			conn, err := f.Dialer(p.from)(p.toAddr, time.Second)
			if p.want {
				if err != nil {
					t.Errorf("%s: dial %s->%s failed: %v", step.name, p.from, p.toAddr, err)
					continue
				}
				_ = conn.Close()
				continue
			}
			if !errors.Is(err, ErrPartitioned) {
				t.Errorf("%s: dial %s->%s: err = %v, want ErrPartitioned", step.name, p.from, p.toAddr, err)
			}
		}
	}
}

// TestFabricSeversEstablishedConnections: partitioning must kill live
// cross-group connections, not just future dials — and connections inside
// one group must survive.
func TestFabricSeversEstablishedConnections(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	f := NewFabric()
	lb, lc := echoListener(t), echoListener(t)
	f.Register("b", lb.Addr().String())
	f.Register("c", lc.Addr().String())

	ab, err := f.Dialer("a")(lb.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ab.Close()
	bc, err := f.Dialer("b")(lc.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()

	f.Partition([]string{"a"}, []string{"b", "c"})

	if _, err := ab.Write([]byte("x")); err == nil {
		t.Error("cross-partition connection survived Partition")
	}
	if _, err := bc.Write([]byte("x")); err != nil {
		t.Errorf("same-group connection severed by Partition: %v", err)
	}
	buf := make([]byte, 1)
	_ = bc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(bc, buf); err != nil || buf[0] != 'x' {
		t.Errorf("same-group echo after partition: %q, %v", buf, err)
	}

	// Healing restores dials but not the severed connection.
	f.Heal()
	if _, err := ab.Write([]byte("x")); err == nil {
		t.Error("severed connection resurrected by Heal")
	}
	conn, err := f.Dialer("a")(lb.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("fresh dial after heal: %v", err)
	}
	_ = conn.Close()
}

// TestFabricStaleAddressForgotten: Forget must drop an address binding so
// a recycled port no longer inherits the dead node's partition group.
func TestFabricStaleAddressForgotten(t *testing.T) {
	f := NewFabric()
	f.Register("x", "127.0.0.1:9999")
	f.Partition([]string{"x"})
	if f.Reachable("y", "127.0.0.1:9999") {
		t.Fatal("cross-group address reachable")
	}
	f.Forget("127.0.0.1:9999")
	if !f.Reachable("y", "127.0.0.1:9999") {
		t.Error("forgotten address still carries its old group")
	}
}

// FuzzFabricHealDuringHandshake races Partition/Heal flips against dials
// so the double reachability check around the TCP handshake is exercised
// in both directions: a partition landing mid-handshake must yield
// ErrPartitioned with the connection dead, and a heal landing
// mid-handshake must yield a usable connection. Whatever the
// interleaving, the outcome must be exactly one of those two — never a
// half-dead connection handed to the caller.
func FuzzFabricHealDuringHandshake(f *testing.F) {
	f.Add(uint8(3), false)
	f.Add(uint8(1), true)  // heal lands mid-handshake
	f.Add(uint8(7), true)  // several flips during the dial burst
	f.Add(uint8(0), false) // no flips: plain dials
	f.Fuzz(func(t *testing.T, flips uint8, healLast bool) {
		fab := NewFabric()
		l := echoListener(t)
		fab.Register("server", l.Addr().String())
		dial := fab.Dialer("client")

		var wg sync.WaitGroup
		// Flip the partition state concurrently with the dials.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < int(flips); i++ {
				fab.Partition([]string{"client"})
				fab.Heal()
			}
			if !healLast && flips > 0 {
				fab.Partition([]string{"client"})
			}
		}()

		for i := 0; i < 8; i++ {
			conn, err := dial(l.Addr().String(), time.Second)
			if err != nil {
				if !errors.Is(err, ErrPartitioned) {
					t.Fatalf("dial %d: unexpected error %v", i, err)
				}
				continue
			}
			// A handed-out connection must actually work end to end.
			if _, werr := conn.Write([]byte("k")); werr != nil {
				// The connection may die afterwards if a flip severed
				// it — that is a sever, not a handshake bug. But it must
				// be marked severed, not silently broken.
				if fc, ok := conn.(*Conn); ok && !fc.Severed() {
					t.Fatalf("dial %d: write failed on unsevered conn: %v", i, werr)
				}
			}
			_ = conn.Close()
		}
		wg.Wait()

		// After an unconditional heal every dial must succeed again.
		fab.Heal()
		conn, err := dial(l.Addr().String(), time.Second)
		if err != nil {
			t.Fatalf("post-heal dial failed: %v", err)
		}
		_ = conn.Close()
	})
}
