package faultnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// pipePair returns a faulted local end and the peer's raw end.
func pipePair(t *testing.T, plan Plan) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return Wrap(a, plan), b
}

// drain reads from conn until it errors, returning everything read.
func drain(conn net.Conn, into *bytes.Buffer, done chan<- struct{}) {
	buf := make([]byte, 256)
	for {
		n, err := conn.Read(buf)
		into.Write(buf[:n])
		if err != nil {
			close(done)
			return
		}
	}
}

func TestZeroPlanPassesThrough(t *testing.T) {
	c, peer := pipePair(t, Plan{})
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(peer, &got, done)
	msg := []byte("unfaulted bytes pass verbatim")
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	c.Close()
	<-done
	if !bytes.Equal(got.Bytes(), msg) {
		t.Errorf("peer read %q, want %q", got.Bytes(), msg)
	}
}

func TestPartialWritesDeliverIntact(t *testing.T) {
	c, peer := pipePair(t, Plan{Seed: 7, PartialWrites: true})
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(peer, &got, done)
	msg := bytes.Repeat([]byte("fragment"), 40)
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write = %d, %v", n, err)
	}
	c.Close()
	<-done
	if !bytes.Equal(got.Bytes(), msg) {
		t.Error("partial writes changed the byte stream")
	}
}

func TestFlipByteCorruptsExactlyOneByte(t *testing.T) {
	c, peer := pipePair(t, Plan{FlipMask: 0x40, FlipByte: 10})
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(peer, &got, done)
	msg := []byte("abcdefghijklmnop")
	// Two writes so the flip offset spans a write boundary state.
	if _, err := c.Write(msg[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(msg[8:]); err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-done
	want := append([]byte(nil), msg...)
	want[10] ^= 0x40
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("peer read %q, want %q", got.Bytes(), want)
	}
}

func TestCutWriteAfterTearsAndSevers(t *testing.T) {
	c, peer := pipePair(t, Plan{CutWriteAfter: 5})
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(peer, &got, done)
	n, err := c.Write([]byte("0123456789"))
	if n != 5 {
		t.Errorf("torn write wrote %d bytes, want 5", n)
	}
	if !errors.Is(err, syscall.EPIPE) {
		t.Errorf("cut write error = %v, want EPIPE", err)
	}
	<-done // peer sees the severed link without writing anything
	if got.String() != "01234" {
		t.Errorf("peer read %q, want the 5-byte torn prefix", got.String())
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, syscall.EPIPE) {
		t.Errorf("post-cut write error = %v, want EPIPE", err)
	}
}

func TestCutReadAfterTruncates(t *testing.T) {
	c, peer := pipePair(t, Plan{CutReadAfter: 4})
	go func() {
		peer.Write([]byte("0123456789"))
	}()
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "0123" {
		t.Fatalf("read = %q, %v; want the 4-byte prefix", buf[:n], err)
	}
	if _, err := c.Read(buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("post-cut read error = %v, want ErrUnexpectedEOF", err)
	}
}

// frame builds a livenode-shaped frame: FrameHeaderLen header with the
// body length at bytes 1–4, then the body.
func frame(body []byte) []byte {
	out := make([]byte, FrameHeaderLen+len(body))
	out[0] = 1
	binary.BigEndian.PutUint32(out[1:5], uint32(len(body)))
	copy(out[FrameHeaderLen:], body)
	return out
}

func TestCutWriteAfterFrames(t *testing.T) {
	c, peer := pipePair(t, Plan{CutWriteAfterFrames: 2})
	var got bytes.Buffer
	done := make(chan struct{})
	go drain(peer, &got, done)

	one, two := frame([]byte("first")), frame(nil)
	three := frame([]byte("never arrives"))
	if _, err := c.Write(one); err != nil {
		t.Fatal(err)
	}
	// The second frame and the start of the third share one write: the
	// cut must land exactly at the frame boundary inside it.
	n, err := c.Write(append(append([]byte(nil), two...), three...))
	if n != len(two) {
		t.Errorf("cutting write passed %d bytes, want %d (frame boundary)", n, len(two))
	}
	if !errors.Is(err, syscall.EPIPE) {
		t.Errorf("cut error = %v, want EPIPE", err)
	}
	<-done
	want := append(append([]byte(nil), one...), two...)
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("peer read %d bytes, want exactly the first two frames (%d)", got.Len(), len(want))
	}
}

func TestLatencyDelays(t *testing.T) {
	c, peer := pipePair(t, Plan{Latency: 20 * time.Millisecond})
	go func() {
		buf := make([]byte, 8)
		peer.Read(buf)
	}()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("latent write took %v, want >= ~20ms", d)
	}
}

func TestDeterministicChunking(t *testing.T) {
	// Same seed, same plan → identical chunk boundaries.
	sizes := func(seed int64) []int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		c := Wrap(a, Plan{Seed: seed, PartialWrites: true})
		var chunks []int
		done := make(chan struct{})
		go func() {
			buf := make([]byte, 64)
			for {
				n, err := b.Read(buf)
				if n > 0 {
					chunks = append(chunks, n)
				}
				if err != nil {
					close(done)
					return
				}
			}
		}()
		c.Write(bytes.Repeat([]byte{0xAB}, 50))
		c.Close()
		<-done
		return chunks
	}
	first, second := sizes(42), sizes(42)
	if len(first) == 0 {
		t.Fatal("no chunks observed")
	}
	if len(first) != len(second) {
		t.Fatalf("chunk counts differ: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("chunk %d differs: %v vs %v", i, first, second)
		}
	}
}
