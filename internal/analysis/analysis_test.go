package analysis

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"bsub/internal/bloom"
)

func TestFPRPaperSetting(t *testing.T) {
	// Section VII-A: "The worst case FPR of the filter storing 38 keys, in
	// theory, in this setting [m=256, k=4], is 0.04."
	got := FPR(256, 4, 38)
	if math.Abs(got-0.04) > 0.01 {
		t.Errorf("FPR(256,4,38) = %.4f, want about 0.04", got)
	}
}

func TestFPREdgeCases(t *testing.T) {
	if got := FPR(256, 4, 0); got != 0 {
		t.Errorf("empty filter FPR = %g, want 0", got)
	}
	if got := FPR(256, 4, -1); got != 0 {
		t.Errorf("negative n FPR = %g, want 0", got)
	}
	if got := FPR(8, 2, 1000000); got < 0.99 {
		t.Errorf("saturated filter FPR = %g, want near 1", got)
	}
}

func TestFPRMonotoneInN(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 200; n++ {
		cur := FPR(256, 4, n)
		if cur < prev {
			t.Fatalf("FPR decreased at n=%d: %g -> %g", n, prev, cur)
		}
		prev = cur
	}
}

func TestExpectedSetBitsAndFillRatio(t *testing.T) {
	m, k, n := 256, 4, 38
	bits := ExpectedSetBits(m, k, n)
	if bits <= 0 || bits >= float64(m) {
		t.Fatalf("ExpectedSetBits = %g out of (0, %d)", bits, m)
	}
	if fr := FillRatio(m, k, n); math.Abs(fr-bits/float64(m)) > 1e-12 {
		t.Errorf("FillRatio inconsistent with ExpectedSetBits")
	}
}

func TestKeysFromFillRatioInvertsEq3(t *testing.T) {
	m, k := 256, 4
	for _, n := range []int{1, 5, 20, 38, 60} {
		fr := FillRatio(m, k, n)
		back := KeysFromFillRatio(m, k, fr)
		if math.Abs(back-float64(n)) > 1e-6 {
			t.Errorf("round trip n=%d gave %.6f", n, back)
		}
	}
	if KeysFromFillRatio(m, k, 0) != 0 {
		t.Error("fr=0 should give 0 keys")
	}
	if !math.IsInf(KeysFromFillRatio(m, k, 1), 1) {
		t.Error("fr=1 should give +Inf keys")
	}
}

func TestFPRMatchesEmpiricalBloom(t *testing.T) {
	// Validate Eq. 1 against a real filter: measured FPR over many absent
	// probes should track the formula.
	m, k, n := 1024, 4, 80
	f := bloom.MustNewFilter(m, k)
	for i := 0; i < n; i++ {
		f.Insert(fmt.Sprintf("member-%d", i))
	}
	fp, probes := 0, 30000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	measured := float64(fp) / float64(probes)
	theory := FPR(m, k, n)
	if measured > theory*2+0.01 || measured < theory/3-0.01 {
		t.Errorf("measured FPR %.4f vs theoretical %.4f", measured, theory)
	}
}

func TestExpectedMinBinomial(t *testing.T) {
	if got := ExpectedMinBinomial(0, 0.1, 4); got != 0 {
		t.Errorf("n=0: got %g, want 0", got)
	}
	if got := ExpectedMinBinomial(100, 0, 4); got != 0 {
		t.Errorf("p=0: got %g, want 0", got)
	}
	// k=1 reduces to the plain binomial mean n*p.
	got := ExpectedMinBinomial(200, 0.05, 1)
	if math.Abs(got-10) > 0.1 {
		t.Errorf("k=1 mean: got %g, want 10", got)
	}
	// Minimum of more variables is smaller.
	one := ExpectedMinBinomial(200, 0.05, 1)
	four := ExpectedMinBinomial(200, 0.05, 4)
	if four >= one {
		t.Errorf("min of 4 (%g) not below min of 1 (%g)", four, one)
	}
	// p=1 means every draw hits: min = n regardless of k.
	if got := ExpectedMinBinomial(7, 1, 3); math.Abs(got-7) > 1e-9 {
		t.Errorf("p=1: got %g, want 7", got)
	}
}

func TestExpectedMinBinomialMonteCarlo(t *testing.T) {
	// Cross-check against a brute-force enumeration for tiny parameters:
	// n=3, p=0.5, k=2. Min of two iid Binomial(3, 1/2).
	// PMF: 1/8, 3/8, 3/8, 1/8. E[min] = sum_{c>=1} P(X>c-1)^2
	//   = P(X>=1)^2 + P(X>=2)^2 + P(X>=3)^2
	//   = (7/8)^2 + (4/8)^2 + (1/8)^2 = (49+16+1)/64 = 66/64.
	want := 66.0 / 64.0
	got := ExpectedMinBinomial(3, 0.5, 2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestDecayFactor(t *testing.T) {
	// Section VII-B: "The DF for T = 10 hours is set to 0.138/min ... which
	// is obtained by counting the number of different nodes met in 10
	// hours." With C=10, T=600 min and few accidental increments, DF should
	// land near C/T ~ 0.0167 scaled by (1+E[min]); for the paper's 0.138 the
	// accidental-increment term dominates. We check the structural
	// properties rather than the opaque constant.
	df0, err := DecayFactor(10, 0, 256, 4, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(df0-10.0/600) > 1e-9 {
		t.Errorf("no accidental keys: DF = %g, want C/T = %g", df0, 10.0/600)
	}
	dfBusy, err := DecayFactor(10, 500, 256, 4, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dfBusy <= df0 {
		t.Errorf("DF with 500 collected keys (%g) not above baseline (%g)", dfBusy, df0)
	}
	dfDelta, err := DecayFactor(10, 0, 256, 4, 600, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dfDelta-df0-0.01) > 1e-9 {
		t.Errorf("delta not added: %g vs %g+0.01", dfDelta, df0)
	}
}

func TestDecayFactorValidation(t *testing.T) {
	if _, err := DecayFactor(0, 10, 256, 4, 600, 0); err == nil {
		t.Error("zero initial accepted")
	}
	if _, err := DecayFactor(10, 10, 256, 4, 0, 0); err == nil {
		t.Error("zero T accepted")
	}
	if _, err := DecayFactor(10, 10, 256, 4, 600, -1); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestExpectedUniqueKeys(t *testing.T) {
	if got := ExpectedUniqueKeys(38, 0); got != 0 {
		t.Errorf("no draws: got %g", got)
	}
	// Far more draws than keys saturates at the key population.
	got := ExpectedUniqueKeys(38, 10000)
	if math.Abs(got-38) > 0.01 {
		t.Errorf("saturation: got %g, want ~38", got)
	}
	// One draw yields exactly one distinct key.
	if got := ExpectedUniqueKeys(38, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("one draw: got %g, want 1", got)
	}
	// Monotone in draws.
	prev := 0.0
	for n := 1; n < 200; n++ {
		cur := ExpectedUniqueKeys(38, n)
		if cur < prev {
			t.Fatalf("not monotone at n=%d", n)
		}
		prev = cur
	}
}

func TestJointFPR(t *testing.T) {
	single := JointFPR(256, 4, []int{38})
	if math.Abs(single-FPR(256, 4, 38)) > 1e-12 {
		t.Errorf("single-filter joint FPR %g != Eq. 1 %g", single, FPR(256, 4, 38))
	}
	split := JointFPR(256, 4, []int{19, 19})
	crammed := JointFPR(256, 4, []int{38})
	if split >= crammed {
		t.Errorf("splitting keys raised FPR: %g >= %g", split, crammed)
	}
	if got := JointFPR(256, 4, nil); got != 0 {
		t.Errorf("empty collection FPR = %g", got)
	}
}

func TestMemoryBitsMonotoneInH(t *testing.T) {
	prev := 0.0
	for h := 1; h <= 16; h++ {
		cur := MemoryBits(256, 4, 64, h)
		if cur < prev-1e-9 {
			t.Fatalf("memory decreased at h=%d: %g -> %g", h, prev, cur)
		}
		prev = cur
	}
	if MemoryBits(256, 4, 64, 0) != 0 {
		t.Error("h=0 should cost nothing")
	}
}

func TestOptimalAllocation(t *testing.T) {
	m, k, n := 256, 4, 64
	oneFilter := MemoryBits(m, k, n, 1)

	// Exactly one filter's worth of storage: h=1.
	a, err := OptimalAllocation(m, k, n, oneFilter)
	if err != nil {
		t.Fatal(err)
	}
	if a.Filters != 1 {
		t.Errorf("tight bound: h=%d, want 1", a.Filters)
	}

	// Generous storage: more filters, lower FPR.
	b, err := OptimalAllocation(m, k, n, oneFilter*6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Filters <= a.Filters {
		t.Errorf("generous bound did not increase h: %d vs %d", b.Filters, a.Filters)
	}
	if b.JointFPR >= a.JointFPR {
		t.Errorf("more filters did not lower FPR: %g vs %g", b.JointFPR, a.JointFPR)
	}
	if b.MemoryBits > oneFilter*6 {
		t.Errorf("allocation exceeds bound: %g > %g", b.MemoryBits, oneFilter*6)
	}
	if b.FillThreshold <= 0 || b.FillThreshold >= 1 {
		t.Errorf("fill threshold %g out of (0,1)", b.FillThreshold)
	}

	// Infeasible bound.
	if _, err := OptimalAllocation(m, k, n, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible bound: error = %v, want ErrInfeasible", err)
	}
	// Invalid arguments.
	if _, err := OptimalAllocation(0, 4, 10, 1e9); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestWastedRatios(t *testing.T) {
	fpr := 0.04
	if got := CompletelyWastedRatio(fpr); math.Abs(got-0.0016) > 1e-12 {
		t.Errorf("completely wasted = %g, want 0.0016", got)
	}
	if got := PartiallyUsefulRatio(fpr); math.Abs(got-0.0384) > 1e-12 {
		t.Errorf("partially useful = %g, want 0.0384", got)
	}
}

// Property: FPR is always a probability, for arbitrary geometry.
func TestFPRBoundedProperty(t *testing.T) {
	prop := func(m, k, n uint16) bool {
		mm, kk, nn := int(m%4096)+1, int(k%16)+1, int(n)
		f := FPR(mm, kk, nn)
		return f >= 0 && f <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: joint FPR of a split never exceeds the crammed single filter.
func TestSplitNeverWorseProperty(t *testing.T) {
	prop := func(nRaw, hRaw uint8) bool {
		n := int(nRaw)%100 + 2
		h := int(hRaw)%8 + 2
		m, k := 256, 4
		per := make([]int, h)
		for i := 0; i < h; i++ {
			per[i] = n / h
		}
		per[0] += n % h
		return JointFPR(m, k, per) <= JointFPR(m, k, []int{n})+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkOptimalAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = OptimalAllocation(256, 4, 200, 40000)
	}
}

func BenchmarkExpectedMinBinomial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ExpectedMinBinomial(500, 4.0/256, 4)
	}
}

func TestGeometryFor(t *testing.T) {
	tests := []struct {
		n      int
		target float64
	}{
		{n: 38, target: 0.04},
		{n: 38, target: 0.001},
		{n: 1, target: 0.01},
		{n: 1000, target: 0.02},
	}
	for _, tt := range tests {
		g, err := GeometryFor(tt.n, tt.target)
		if err != nil {
			t.Fatalf("GeometryFor(%d, %g): %v", tt.n, tt.target, err)
		}
		if g.FPR > tt.target {
			t.Errorf("GeometryFor(%d, %g) = %+v exceeds the target", tt.n, tt.target, g)
		}
		// The recommendation should not be grossly oversized: halving m
		// must violate the target (within rounding slack for tiny filters).
		if g.M > 16 {
			if half := FPR(g.M/2, g.K, tt.n); half <= tt.target {
				t.Errorf("GeometryFor(%d, %g) oversized: m/2=%d still meets target (fpr %g)",
					tt.n, tt.target, g.M/2, half)
			}
		}
	}
}

func TestGeometryForPaperSetting(t *testing.T) {
	// The paper's 256/4 for 38 keys yields FPR 0.04; the optimizer should
	// recommend a geometry in the same size class for that target.
	g, err := GeometryFor(38, 0.0402)
	if err != nil {
		t.Fatal(err)
	}
	if g.M < 180 || g.M > 320 {
		t.Errorf("recommended m=%d far from the paper's 256", g.M)
	}
}

func TestGeometryForValidation(t *testing.T) {
	if _, err := GeometryFor(0, 0.01); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GeometryFor(10, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := GeometryFor(10, 1); err == nil {
		t.Error("target 1 accepted")
	}
}

// Property: the recommendation always meets its target.
func TestGeometryForMeetsTargetProperty(t *testing.T) {
	prop := func(nRaw uint8, tRaw uint8) bool {
		n := int(nRaw)%200 + 1
		target := (float64(tRaw)+1)/300 + 0.0005 // (0.0005, ~0.85)
		g, err := GeometryFor(n, target)
		if err != nil {
			return false
		}
		return g.FPR <= target
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
