// Package analysis implements the closed-form model of Sections III and VI
// of the B-SUB paper: the Bloom-filter false-positive rate and fill ratio
// (Eq. 1–3), the decaying-factor derivation (Eq. 4–5), the unique-key
// estimate for a broker's relay filter (Eq. 6), the joint FPR of a filter
// collection (Eq. 7), the Section VI-C memory model (Eq. 8), and the
// optimal filter-count search (Eq. 9–10).
//
// All functions are pure and deterministic; they are validated against the
// empirical behaviour of internal/bloom and internal/tcbf in the tests.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned by OptimalAllocation when even a single filter
// exceeds the storage bound.
var ErrInfeasible = errors.New("analysis: storage bound admits no filter")

// FPR returns the false-positive rate of Eq. 1 for a Bloom filter of m
// bits and k hash functions holding n keys: (1 - e^(-kn/m))^k.
func FPR(m, k, n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// ExpectedSetBits returns Eq. 2: the expected number of set bits,
// m(1 - e^(-kn/m)).
func ExpectedSetBits(m, k, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(m) * (1 - math.Exp(-float64(k)*float64(n)/float64(m)))
}

// FillRatio returns Eq. 3: the expected fill ratio, 1 - e^(-kn/m).
func FillRatio(m, k, n int) float64 {
	return ExpectedSetBits(m, k, n) / float64(m)
}

// KeysFromFillRatio inverts Eq. 3, estimating the number of stored keys
// from an observed fill ratio: n = -(m/k) ln(1 - fr). A fill ratio of 1
// yields +Inf.
func KeysFromFillRatio(m, k int, fr float64) float64 {
	if fr <= 0 {
		return 0
	}
	if fr >= 1 {
		return math.Inf(1)
	}
	return -float64(m) / float64(k) * math.Log(1-fr)
}

// FPRFromFillRatio estimates the false-positive rate directly from an
// observed fill ratio: a query returns a false positive iff all k probed
// bits are set, so the rate is fr^k.
func FPRFromFillRatio(fr float64, k int) float64 {
	if fr <= 0 {
		return 0
	}
	if fr >= 1 {
		return 1
	}
	return math.Pow(fr, float64(k))
}

// ExpectedMinBinomial returns Eq. 4: the expectation of the minimum of k
// i.i.d. Binomial(n, p) variables,
//
//	E[min] = sum_{c=1..n} c * { [1-F(c-1)]^k - [1-F(c)]^k },
//
// computed via the equivalent tail sum sum_{c=1..n} [1-F(c-1)]^k. In the
// paper n = |N| is the number of keys a broker collects within the delay
// bound and p = k/m is the per-bit collision probability; the result is the
// expected number of accidental increments on a key's weakest counter.
//
//bsub:hotpath
func ExpectedMinBinomial(n int, p float64, k int) float64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	// Walk the Binomial(n, p) PMF once, accumulating the CDF.
	logP, logQ := math.Log(p), math.Log(1-p)
	sum := 0.0
	cdf := 0.0
	// pmf(0) computed in log space to survive large n.
	for c := 0; c < n; c++ {
		lp := logChoose(n, c) + float64(c)*logP + float64(n-c)*logQ
		cdf += math.Exp(lp)
		if cdf > 1 {
			cdf = 1
		}
		tail := 1 - cdf // P(X > c) = P(X >= c+1)
		if tail <= 0 {
			break
		}
		sum += math.Pow(tail, float64(k))
	}
	return sum
}

// DecayFactor returns Eq. 5: the DF (per minute) that removes an interest
// after the message delay bound tMinutes, accounting for accidental counter
// increments:
//
//	DF = C * (1 + E[min_{accidental increments}]) / T + delta.
//
// initial is the counter value C, nKeys the number of keys |N| a broker
// collects within T, m and k the filter geometry, and delta the small
// safety constant the paper adds for the cases the analysis ignores
// (M-merge inflation).
//
//bsub:hotpath
func DecayFactor(initial float64, nKeys, m, k int, tMinutes, delta float64) (float64, error) {
	if initial <= 0 {
		return 0, fmt.Errorf("analysis: initial counter value must be positive, got %g", initial)
	}
	if tMinutes <= 0 {
		return 0, fmt.Errorf("analysis: delay bound must be positive, got %g minutes", tMinutes)
	}
	if delta < 0 {
		return 0, fmt.Errorf("analysis: delta must be non-negative, got %g", delta)
	}
	p := float64(k) / float64(m)
	eMin := ExpectedMinBinomial(nKeys, p, k)
	return initial*(1+eMin)/tMinutes + delta, nil
}

// ExpectedUniqueKeys returns the Eq. 6 estimate of distinct interests in a
// broker's relay filter: drawing nCollected interests from a population of
// totalKeys distinct keys yields totalKeys * (1 - (1 - 1/totalKeys)^nCollected)
// distinct values in expectation.
//
// Note: the published equation is typeset ambiguously; this is the standard
// distinct-count expectation it reduces to, and it matches the equation's
// role in the DF–FPR analysis (it saturates at totalKeys and grows almost
// linearly while nCollected << totalKeys).
func ExpectedUniqueKeys(totalKeys, nCollected int) float64 {
	if totalKeys <= 0 || nCollected <= 0 {
		return 0
	}
	kTot := float64(totalKeys)
	return kTot * (1 - math.Pow(1-1/kTot, float64(nCollected)))
}

// JointFPR returns Eq. 7: the false-positive rate of a collection of
// filters representing one key set, 1 - prod_i (1 - (1 - e^(-k n_i / m))^k),
// where perFilterKeys holds each filter's key count.
func JointFPR(m, k int, perFilterKeys []int) float64 {
	correct := 1.0
	for _, n := range perFilterKeys {
		correct *= 1 - FPR(m, k, n)
	}
	return 1 - correct
}

// MemoryBits returns Eq. 8: the expected wire memory, in bits, of h filters
// of m bits and k hashes evenly holding n total keys, under the Section
// VI-C compact encoding (each set bit costs ceil(log2 m) location bits plus
// an 8-bit counter).
func MemoryBits(m, k, n, h int) float64 {
	if h <= 0 {
		return 0
	}
	perKey := float64(n) / float64(h)
	setBits := float64(m) * (1 - math.Exp(-float64(k)*perKey/float64(m)))
	return float64(h) * setBits * float64(8+ceilLog2(m))
}

// Allocation is the result of the Eq. 9–10 optimization.
type Allocation struct {
	// Filters is the optimal number of TCBFs h.
	Filters int
	// KeysPerFilter is the per-filter key budget n/h.
	KeysPerFilter float64
	// FillThreshold is the Eq. 3 fill ratio at KeysPerFilter; the dynamic
	// allocation strategy of Section VI-D allocates a new filter when the
	// current one exceeds it.
	FillThreshold float64
	// JointFPR is the resulting Eq. 7 joint false-positive rate.
	JointFPR float64
	// MemoryBits is the Eq. 8 memory consumption.
	MemoryBits float64
}

// OptimalAllocation solves Eq. 9–10: given filter geometry (m, k), a key
// population n, and a storage bound maxBits, it returns the filter count h
// that minimizes the joint FPR subject to MemoryBits <= maxBits.
//
// The joint FPR is minimized by splitting keys evenly (the paper: "FPR_sub
// achieves the maximum value when n_i = n/h"), and both memory and the
// correct-answer probability grow monotonically with h, so the optimum is
// the largest feasible h — found by binary search, as the paper prescribes.
func OptimalAllocation(m, k, n int, maxBits float64) (Allocation, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return Allocation{}, fmt.Errorf("analysis: m, k, n must be positive (got %d, %d, %d)", m, k, n)
	}
	if MemoryBits(m, k, n, 1) > maxBits {
		return Allocation{}, fmt.Errorf("%w: one filter needs %.0f bits, bound is %.0f",
			ErrInfeasible, MemoryBits(m, k, n, 1), maxBits)
	}
	// Memory is monotone non-decreasing in h, so binary search the largest
	// feasible h in [1, n] (more than n filters cannot help: each filter
	// would hold under one key).
	lo, hi := 1, n
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if MemoryBits(m, k, n, mid) <= maxBits {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	h := lo
	perKey := float64(n) / float64(h)
	keys := make([]int, h)
	base, extra := n/h, n%h
	for i := range keys {
		keys[i] = base
		if i < extra {
			keys[i]++
		}
	}
	return Allocation{
		Filters:       h,
		KeysPerFilter: perKey,
		FillThreshold: 1 - math.Exp(-float64(k)*perKey/float64(m)),
		JointFPR:      JointFPR(m, k, keys),
		MemoryBits:    MemoryBits(m, k, n, h),
	}, nil
}

// CompletelyWastedRatio returns the Section VI-B estimate of the fraction
// of falsely injected messages that are delivered to uninterested
// consumers: FPR^2 (a false match at injection and again at delivery).
func CompletelyWastedRatio(fpr float64) float64 { return fpr * fpr }

// PartiallyUsefulRatio returns the Section VI-B estimate of falsely
// injected messages that nonetheless reach genuinely interested users:
// FPR * (1 - FPR).
func PartiallyUsefulRatio(fpr float64) float64 { return fpr * (1 - fpr) }

// ceilLog2 returns ceil(log2 m) with a floor of 1.
func ceilLog2(m int) int {
	b := 0
	for v := m - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// logChoose returns ln(n choose c) via the log-gamma function.
//
//bsub:hotpath
func logChoose(n, c int) float64 {
	if c < 0 || c > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(c) - lg(n-c)
}

// Geometry is a Bloom-filter sizing recommendation.
type Geometry struct {
	// M is the bit-vector length.
	M int
	// K is the hash count.
	K int
	// FPR is the Eq. 1 false-positive rate the geometry achieves at the
	// design capacity.
	FPR float64
}

// GeometryFor returns the smallest filter geometry whose Eq. 1 FPR at n
// keys does not exceed targetFPR, using the classic optimal sizing
// m = -n ln(p) / (ln 2)^2 and k = (m/n) ln 2 as the starting point and
// verifying against the exact formula. It is the design-time counterpart
// of OptimalAllocation: use it when picking (m, k) for a deployment
// rather than splitting keys across a storage bound.
func GeometryFor(n int, targetFPR float64) (Geometry, error) {
	if n <= 0 {
		return Geometry{}, fmt.Errorf("analysis: key capacity must be positive, got %d", n)
	}
	if targetFPR <= 0 || targetFPR >= 1 {
		return Geometry{}, fmt.Errorf("analysis: target FPR must be in (0,1), got %g", targetFPR)
	}
	ln2 := math.Ln2
	m := int(math.Ceil(-float64(n) * math.Log(targetFPR) / (ln2 * ln2)))
	if m < 1 {
		m = 1
	}
	for {
		k := int(math.Round(float64(m) / float64(n) * ln2))
		if k < 1 {
			k = 1
		}
		if k > 64 {
			k = 64
		}
		if f := FPR(m, k, n); f <= targetFPR {
			return Geometry{M: m, K: k, FPR: f}, nil
		}
		// The closed form slightly undershoots for small m; grow until the
		// exact check passes.
		m += (m + 9) / 10
	}
}
