package core

import (
	"math/rand"
	"testing"
	"time"

	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// fakeEnv is a minimal sim.Env for white-box protocol tests.
type fakeEnv struct {
	nodes int
	now   time.Duration
	ttl   time.Duration
}

var _ sim.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Now() time.Duration                 { return e.now }
func (e *fakeEnv) Nodes() int                         { return e.nodes }
func (e *fakeEnv) Interest(trace.NodeID) workload.Key { return "k" }
func (e *fakeEnv) InterestSet(n trace.NodeID) []workload.Key {
	return []workload.Key{"k"}
}
func (e *fakeEnv) TTL() time.Duration                      { return e.ttl }
func (e *fakeEnv) Deliver(*workload.Message, trace.NodeID) {}
func (e *fakeEnv) RecordForwarding(*workload.Message)      {}
func (e *fakeEnv) RecordReplication(bool)                  {}
func (e *fakeEnv) RecordControl(int)                       {}

func newTestBSub(t *testing.T, nodes int) *BSub {
	t.Helper()
	p := New(DefaultConfig(0.1))
	if err := p.Init(&fakeEnv{nodes: nodes, ttl: time.Hour}, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPromoteCreatesRelayFilter(t *testing.T) {
	p := newTestBSub(t, 2)
	n := p.nodes[1]
	p.promote(n, 0)
	if !n.broker || n.relay == nil {
		t.Fatal("promotion did not install a relay filter")
	}
	relay := n.relay
	p.promote(n, 0) // idempotent
	if n.relay != relay {
		t.Error("re-promotion replaced the relay filter")
	}
}

func TestDemoteKeepsCarriedCopies(t *testing.T) {
	p := newTestBSub(t, 2)
	n := p.nodes[1]
	p.promote(n, 0)
	n.carried.Add(workload.Message{ID: 9, Key: "k"}, time.Hour, 0)
	p.demote(n)
	if n.broker || n.relay != nil {
		t.Error("demotion incomplete")
	}
	if !n.carried.Has(9) {
		t.Error("demotion dropped carried copies; they should serve until TTL")
	}
	p.demote(n) // idempotent on non-brokers
}

func TestAllocateDemotesBelowAverageBroker(t *testing.T) {
	// A user that has sighted more than T_u brokers within the window
	// demotes a broker whose degree is below the sighted average.
	p := newTestBSub(t, 10)
	user := p.nodes[0]
	weak := p.nodes[1]
	p.promote(weak, 0)

	now := 10 * time.Minute
	// Six prior sightings (count > T_u = 5) of well-connected brokers.
	for i := 2; i < 8; i++ {
		user.sightings[trace.NodeID(i)] = brokerSighting{at: now, degree: 10}
	}
	// The weak broker has degree 0 (no meetings recorded): below average.
	p.allocate(user, weak, now)
	if weak.broker {
		t.Error("below-average broker not demoted")
	}
	if _, still := user.sightings[weak.id]; still {
		t.Error("demoted broker still sighted")
	}
}

func TestAllocateSparesAboveAverageBroker(t *testing.T) {
	p := newTestBSub(t, 10)
	user := p.nodes[0]
	strong := p.nodes[1]
	p.promote(strong, 0)

	now := 10 * time.Minute
	// The strong broker has met many peers recently.
	for i := 2; i < 9; i++ {
		strong.meetings[trace.NodeID(i)] = now
	}
	// Six sightings of weaker brokers (degree 1): average is ~1.?
	for i := 2; i < 8; i++ {
		user.sightings[trace.NodeID(i)] = brokerSighting{at: now, degree: 1}
	}
	p.allocate(user, strong, now)
	if !strong.broker {
		t.Error("above-average broker was demoted")
	}
}

func TestBrokersDoNotRunAllocation(t *testing.T) {
	p := newTestBSub(t, 3)
	broker := p.nodes[0]
	peer := p.nodes[1]
	p.promote(broker, 0)
	p.allocate(broker, peer, time.Minute)
	if peer.broker {
		t.Error("a broker performed a promotion; Section V-B forbids it")
	}
}

func TestAllocatePromotesWhenFewBrokers(t *testing.T) {
	p := newTestBSub(t, 3)
	user := p.nodes[0]
	peer := p.nodes[1]
	p.allocate(user, peer, time.Minute) // zero sightings < T_l
	if !peer.broker {
		t.Error("peer not promoted despite broker scarcity")
	}
	if _, ok := user.sightings[peer.id]; !ok {
		t.Error("promotion not recorded as a sighting")
	}
}

func TestDegreePrunesOutsideWindow(t *testing.T) {
	p := newTestBSub(t, 5)
	n := p.nodes[0]
	window := p.cfg.Window
	n.meetings[1] = 0
	n.meetings[2] = window / 2
	n.meetings[3] = window
	now := window + time.Minute
	// Peers 1 (too old) pruned; 2 and 3 inside the window.
	if got := n.degree(now, window); got != 2 {
		t.Errorf("degree = %d, want 2", got)
	}
	if _, still := n.meetings[1]; still {
		t.Error("stale meeting not pruned")
	}
}

func TestBrokersInWindowPrunes(t *testing.T) {
	p := newTestBSub(t, 5)
	n := p.nodes[0]
	window := p.cfg.Window
	n.sightings[1] = brokerSighting{at: 0, degree: 4}
	n.sightings[2] = brokerSighting{at: window, degree: 8}
	count, mean := n.brokersInWindow(window+time.Minute, window)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if mean != 8 {
		t.Errorf("mean degree = %g, want 8", mean)
	}
	count, mean = n.brokersInWindow(3*window, window)
	if count != 0 || mean != 0 {
		t.Errorf("expired sightings: count=%d mean=%g", count, mean)
	}
}
