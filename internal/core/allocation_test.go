package core

import (
	"math/rand"
	"testing"
	"time"

	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// fakeEnv is a minimal sim.Env for white-box protocol tests.
type fakeEnv struct {
	nodes int
	now   time.Duration
	ttl   time.Duration
}

var _ sim.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Now() time.Duration                 { return e.now }
func (e *fakeEnv) Worker() int                        { return 0 }
func (e *fakeEnv) Workers() int                       { return 1 }
func (e *fakeEnv) RNG() *rand.Rand                    { return rand.New(rand.NewSource(1)) }
func (e *fakeEnv) Nodes() int                         { return e.nodes }
func (e *fakeEnv) Interest(trace.NodeID) workload.Key { return "k" }
func (e *fakeEnv) InterestSet(n trace.NodeID) []workload.Key {
	return []workload.Key{"k"}
}
func (e *fakeEnv) TTL() time.Duration                      { return e.ttl }
func (e *fakeEnv) Deliver(*workload.Message, trace.NodeID) {}
func (e *fakeEnv) RecordForwarding(*workload.Message)      {}
func (e *fakeEnv) RecordReplication(bool)                  {}
func (e *fakeEnv) RecordControl(int)                       {}

func newTestBSub(t *testing.T, nodes int) *BSub {
	t.Helper()
	p := New(DefaultConfig(0.1))
	if err := p.Init(&fakeEnv{nodes: nodes, ttl: time.Hour}, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	return p
}

// The broker-allocation white-box tests (promotion, demotion, window
// pruning, DF retuning) live in internal/engine, where the logic now is;
// this package keeps the adapter-level tests.

func TestAdapterTracksBrokerCensus(t *testing.T) {
	// The adapter's broker census and oracle lifecycle must follow the
	// engine's election outcomes across a contact.
	p := newTestBSub(t, 3)
	if p.BrokerCount() != 0 {
		t.Fatalf("fresh run has %d brokers", p.BrokerCount())
	}
	budget := sim.NewBudget(1 << 20)
	p.OnContact(&fakeEnv{nodes: 3, ttl: time.Hour}, 0, 1, budget)
	// Broker scarcity makes both users elect the other; the engine's
	// tie-break promotes only the higher-ID side.
	if p.BrokerCount() != 1 {
		t.Fatalf("after first contact BrokerCount = %d, want 1", p.BrokerCount())
	}
	if p.IsBroker(0) || !p.IsBroker(1) {
		t.Errorf("bootstrap roles: broker0=%v broker1=%v, want only node 1",
			p.IsBroker(0), p.IsBroker(1))
	}
	if p.nodes[0].oracle != nil {
		t.Error("user node grew an oracle")
	}
	if p.nodes[1].oracle == nil {
		t.Error("broker node missing its oracle")
	}
	if p.nodes[2].oracle != nil {
		t.Error("bystander node grew an oracle")
	}
}
