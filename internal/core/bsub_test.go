package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"bsub/internal/protocol"
	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero m", mutate: func(c *Config) { c.FilterM = 0 }},
		{name: "zero k", mutate: func(c *Config) { c.FilterK = 0 }},
		{name: "zero initial", mutate: func(c *Config) { c.InitialCounter = 0 }},
		{name: "negative df", mutate: func(c *Config) { c.DecayPerMinute = -1 }},
		{name: "zero copies", mutate: func(c *Config) { c.CopyLimit = 0 }},
		{name: "inverted thresholds", mutate: func(c *Config) { c.BrokerLow = 6; c.BrokerHigh = 2 }},
		{name: "negative low", mutate: func(c *Config) { c.BrokerLow = -1 }},
		{name: "zero window", mutate: func(c *Config) { c.Window = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(0.1)
			tt.mutate(&cfg)
			tr := pairTrace(t, 1)
			_, err := sim.Run(sim.Config{
				Trace:     tr,
				Interests: []workload.Key{"a", "b"},
				TTL:       time.Hour,
				Seed:      1,
			}, New(cfg))
			if err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// pairTrace returns a 2-node trace with n repeated generous contacts.
func pairTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	contacts := make([]trace.Contact, n)
	for i := range contacts {
		start := time.Duration(10*(i+1)) * time.Minute
		contacts[i] = trace.Contact{A: 0, B: 1, Start: start, End: start + 5*time.Minute}
	}
	tr, err := trace.New("pair", 2, contacts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBrokerBootstrapOnFirstContact(t *testing.T) {
	// Two users, zero brokers: on first contact each side sees 0 < T_l
	// brokers and designates its peer. At least one promotion must happen
	// (the first mover's peer), giving the network its first broker.
	b := New(DefaultConfig(0.1))
	_, err := sim.Run(sim.Config{
		Trace:     pairTrace(t, 1),
		Interests: []workload.Key{"a", "b"},
		TTL:       time.Hour,
		Seed:      1,
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	if b.BrokerCount() == 0 {
		t.Error("no brokers emerged from the bootstrap contact")
	}
}

func TestBrokerFractionOnRealisticTrace(t *testing.T) {
	// Section VII-A: thresholds (3, 5) maintain "about 30% of the nodes
	// being brokers". Accept a generous band around that on the synthetic
	// small trace.
	tr, err := tracegen.Generate(tracegen.Small(5))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(5))
	b := New(DefaultConfig(0.05))
	_, err = sim.Run(sim.Config{
		Trace:     tr,
		Interests: workload.Interests(ks, tr.Nodes, rng),
		TTL:       4 * time.Hour,
		Seed:      5,
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(b.BrokerCount()) / float64(tr.Nodes)
	if frac < 0.1 || frac > 0.8 {
		t.Errorf("broker fraction %.2f far outside the paper's ~0.3 regime", frac)
	}
}

func TestInterestPropagationReachesBroker(t *testing.T) {
	// After a consumer repeatedly meets a broker, the broker's relay
	// filter must contain (and reinforce) the consumer's interest.
	b := New(DefaultConfig(0.01))
	_, err := sim.Run(sim.Config{
		Trace:     pairTrace(t, 4),
		Interests: []workload.Key{"alpha", "beta"},
		TTL:       time.Hour,
		Seed:      1,
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	brokers := 0
	for id := trace.NodeID(0); id < 2; id++ {
		if !b.IsBroker(id) {
			continue
		}
		brokers++
		relay := b.RelayFilter(id)
		peer := 1 - id
		ok, err := relay.Contains(string([]workload.Key{"alpha", "beta"}[peer]), 50*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("broker %d relay filter missing peer interest", id)
		}
	}
	if brokers == 0 {
		t.Fatal("no broker formed")
	}
}

func TestEndToEndDeliveryThroughBroker(t *testing.T) {
	// 3 nodes: 1 is the hub meeting both 0 and 2 repeatedly; 0 and 2 never
	// meet. A message from 0 matching 2's interest must flow 0 -> 1 -> 2.
	mk := func(a, b int, startMin int) trace.Contact {
		return trace.Contact{
			A:     trace.NodeID(a),
			B:     trace.NodeID(b),
			Start: time.Duration(startMin) * time.Minute,
			End:   time.Duration(startMin+5) * time.Minute,
		}
	}
	tr, err := trace.New("hub", 3, []trace.Contact{
		mk(0, 1, 10), mk(1, 2, 20), mk(0, 1, 30), mk(1, 2, 40),
		mk(0, 1, 50), mk(1, 2, 60), mk(0, 1, 70), mk(1, 2, 80),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(sim.Config{
		Trace:     tr,
		Interests: []workload.Key{"x", "y", "z"},
		Messages: []workload.Message{
			// Created after the early contacts so interests have propagated.
			{ID: 0, Key: "z", Origin: 0, Size: 100, CreatedAt: 45 * time.Minute},
		},
		TTL:  3 * time.Hour,
		Seed: 1,
	}, New(DefaultConfig(0.01)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 {
		t.Errorf("multi-hop delivery failed: %s", rep)
	}
}

func TestDirectDelivery(t *testing.T) {
	// Producer and consumer meet directly: the message must be delivered
	// on the first contact after creation, regardless of broker state.
	rep, err := sim.Run(sim.Config{
		Trace:     pairTrace(t, 2),
		Interests: []workload.Key{"a", "b"},
		Messages: []workload.Message{
			{ID: 0, Key: "b", Origin: 0, Size: 100, CreatedAt: time.Minute},
		},
		TTL:  time.Hour,
		Seed: 1,
	}, New(DefaultConfig(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 {
		t.Errorf("direct delivery failed: %s", rep)
	}
	if rep.MeanDelay() > 10*time.Minute {
		t.Errorf("direct delivery delay %v, want the first contact at +9m", rep.MeanDelay())
	}
}

func TestCopyLimitBoundsReplication(t *testing.T) {
	// A producer meeting many brokers replicates at most CopyLimit copies
	// of each message. Build a star: node 0 meets nodes 1..6, all of which
	// become brokers interested in nothing useful; then count carried
	// copies of 0's message.
	nodes := 7
	var contacts []trace.Contact
	start := 10 * time.Minute
	// Warm-up meetings promote brokers and propagate the consumer interest
	// (node 0's peers all share interest "hot" so relay filters match).
	for round := 0; round < 3; round++ {
		for peer := 1; peer < nodes; peer++ {
			contacts = append(contacts, trace.Contact{
				A:     0,
				B:     trace.NodeID(peer),
				Start: start,
				End:   start + 2*time.Minute,
			})
			start += 3 * time.Minute
		}
	}
	tr, err := trace.New("star", nodes, contacts)
	if err != nil {
		t.Fatal(err)
	}
	interests := make([]workload.Key, nodes)
	interests[0] = "self"
	for i := 1; i < nodes; i++ {
		interests[i] = "hot"
	}
	cfg := DefaultConfig(0.001) // effectively no decay over the test span
	b := New(cfg)
	rep, err := sim.Run(sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages: []workload.Message{
			// Created after the first warm-up round; key "hot" matches all
			// peers, who will also claim it via direct delivery — those are
			// not copies. Replications to brokers are the copies.
			{ID: 0, Key: "hot", Origin: 0, Size: 100, CreatedAt: 30 * time.Minute},
		},
		TTL:  5 * time.Hour,
		Seed: 1,
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	carried := 0
	for id := 1; id < nodes; id++ {
		carried += b.CarriedCount(trace.NodeID(id))
	}
	if carried > cfg.CopyLimit {
		t.Errorf("%d carried copies exceed the copy limit %d", carried, cfg.CopyLimit)
	}
	if rep.Delivered == 0 {
		t.Error("star delivered nothing")
	}
}

func TestZeroBandwidthMovesNothing(t *testing.T) {
	// One-second contacts at 8 bps budget a single byte — below even the
	// identity handshake, so the whole session must be a no-op.
	var contacts []trace.Contact
	for i := 0; i < 3; i++ {
		start := time.Duration(10*(i+1)) * time.Minute
		contacts = append(contacts, trace.Contact{A: 0, B: 1, Start: start, End: start + time.Second})
	}
	tr, err := trace.New("blip", 2, contacts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(sim.Config{
		Trace:     tr,
		Interests: []workload.Key{"a", "b"},
		Messages: []workload.Message{
			{ID: 0, Key: "b", Origin: 0, Size: 100, CreatedAt: time.Minute},
		},
		TTL:          time.Hour,
		BandwidthBps: 8, // 1 byte per contact: below the handshake cost
		Seed:         1,
	}, New(DefaultConfig(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 0 || rep.Forwardings != 0 {
		t.Errorf("data moved through a zero-bandwidth contact: %s", rep)
	}
	if rep.ControlBytes != 0 {
		t.Errorf("control bytes %d spent without budget", rep.ControlBytes)
	}
}

func TestHighDecayApproachesPull(t *testing.T) {
	// Section VII-D: "When the DF is too large ... B-SUB works like PULL".
	// With an enormous DF, relay filters forget interests instantly, so
	// only direct producer-consumer contacts deliver.
	tr, err := tracegen.Generate(tracegen.Small(13))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(13))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
	base := sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages:  msgs,
		TTL:       4 * time.Hour,
		Seed:      13,
	}
	hot, err := sim.Run(base, New(DefaultConfig(1000)))
	if err != nil {
		t.Fatal(err)
	}
	pull, err := sim.Run(base, protocol.NewPull())
	if err != nil {
		t.Fatal(err)
	}
	// Forwarding overhead collapses toward PULL's ~1.
	if hot.ForwardingsPerDelivered() > pull.ForwardingsPerDelivered()*2+1 {
		t.Errorf("DF=1000 B-SUB overhead %.2f far above PULL %.2f",
			hot.ForwardingsPerDelivered(), pull.ForwardingsPerDelivered())
	}
}

func TestFullComparisonOrdering(t *testing.T) {
	// The headline result (Figs. 7–8): delivery PUSH >= B-SUB >= PULL (with
	// slack), and forwardings PUSH > B-SUB.
	tr, err := tracegen.Generate(tracegen.Small(31))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(31))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
	base := sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages:  msgs,
		TTL:       4 * time.Hour,
		Seed:      31,
	}
	push, err := sim.Run(base, protocol.NewPush())
	if err != nil {
		t.Fatal(err)
	}
	bsub, err := sim.Run(base, New(DefaultConfig(0.02)))
	if err != nil {
		t.Fatal(err)
	}
	pull, err := sim.Run(base, protocol.NewPull())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("push: %s", push)
	t.Logf("bsub: %s", bsub)
	t.Logf("pull: %s", pull)

	if bsub.Delivered == 0 {
		t.Fatal("B-SUB delivered nothing")
	}
	if bsub.DeliveryRatio() > push.DeliveryRatio()+1e-9 {
		t.Errorf("B-SUB delivery %.3f above flooding %.3f (impossible ordering)",
			bsub.DeliveryRatio(), push.DeliveryRatio())
	}
	if bsub.DeliveryRatio() < pull.DeliveryRatio()*0.8 {
		t.Errorf("B-SUB delivery %.3f well below PULL %.3f",
			bsub.DeliveryRatio(), pull.DeliveryRatio())
	}
	if bsub.ForwardingsPerDelivered() >= push.ForwardingsPerDelivered() {
		t.Errorf("B-SUB overhead %.2f not below PUSH %.2f",
			bsub.ForwardingsPerDelivered(), push.ForwardingsPerDelivered())
	}
}

func TestMultiKeyDelivery(t *testing.T) {
	// Multi-key extension: a message tagged with extra keys must reach a
	// consumer whose interest matches only an extra key, and a consumer
	// with several interests must receive messages for any of them.
	rep, err := sim.Run(sim.Config{
		Trace:     pairTrace(t, 3),
		Interests: []workload.Key{"a", "b"},
		InterestSets: [][]workload.Key{
			{"a"},
			{"b", "c"}, // node 1 also follows "c"
		},
		Messages: []workload.Message{
			// Primary key misses node 1, but the extra key "b" hits.
			{ID: 0, Key: "zzz", Extra: []workload.Key{"b"}, Origin: 0, Size: 50, CreatedAt: time.Minute},
			// Primary key "c" hits node 1's secondary interest.
			{ID: 1, Key: "c", Origin: 0, Size: 50, CreatedAt: time.Minute},
		},
		TTL:  time.Hour,
		Seed: 1,
	}, New(DefaultConfig(0.1)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 2 {
		t.Errorf("multi-key delivery: %s", rep)
	}
}

func TestInterestSetValidation(t *testing.T) {
	base := sim.Config{
		Trace:     pairTrace(t, 1),
		Interests: []workload.Key{"a", "b"},
		TTL:       time.Hour,
		Seed:      1,
	}
	bad := base
	bad.InterestSets = [][]workload.Key{{"a"}} // wrong length
	if _, err := sim.Run(bad, New(DefaultConfig(0.1))); err == nil {
		t.Error("wrong-length interest sets accepted")
	}
	bad = base
	bad.InterestSets = [][]workload.Key{{"a"}, {}} // empty set
	if _, err := sim.Run(bad, New(DefaultConfig(0.1))); err == nil {
		t.Error("empty interest set accepted")
	}
	bad = base
	bad.InterestSets = [][]workload.Key{{"a"}, {"x"}} // missing primary
	if _, err := sim.Run(bad, New(DefaultConfig(0.1))); err == nil {
		t.Error("interest set omitting the primary accepted")
	}
}

func TestMultiKeyEndToEnd(t *testing.T) {
	// Full-stack multi-key run on the synthetic small trace: multi-interest
	// consumers, multi-key messages, all three protocols stay sane and
	// B-SUB keeps its position between PUSH and PULL.
	tr, err := tracegen.Generate(tracegen.Small(47))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(47))
	sets := workload.InterestSets(ks, tr.Nodes, 3, rng)
	primaries := make([]workload.Key, len(sets))
	for i, s := range sets {
		primaries[i] = s[0]
	}
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
	msgs = workload.AttachExtraKeys(msgs, ks, 2, rng)
	cfg := sim.Config{
		Trace:        tr,
		Interests:    primaries,
		InterestSets: sets,
		Messages:     msgs,
		TTL:          4 * time.Hour,
		Seed:         47,
	}
	push, err := sim.Run(cfg, protocol.NewPush())
	if err != nil {
		t.Fatal(err)
	}
	bsub, err := sim.Run(cfg, New(DefaultConfig(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	pull, err := sim.Run(cfg, protocol.NewPull())
	if err != nil {
		t.Fatal(err)
	}
	if bsub.Delivered == 0 {
		t.Fatal("multi-key B-SUB delivered nothing")
	}
	if bsub.DeliveryRatio() > push.DeliveryRatio()+1e-9 {
		t.Errorf("B-SUB %.3f above PUSH %.3f", bsub.DeliveryRatio(), push.DeliveryRatio())
	}
	if bsub.ForwardingsPerDelivered() >= push.ForwardingsPerDelivered() {
		t.Errorf("B-SUB overhead %.2f not below PUSH %.2f",
			bsub.ForwardingsPerDelivered(), push.ForwardingsPerDelivered())
	}
	t.Logf("multi-key push: %s", push)
	t.Logf("multi-key bsub: %s", bsub)
	t.Logf("multi-key pull: %s", pull)
	_ = pull
}

func TestReElectionAfterBrokerOutage(t *testing.T) {
	// Failure injection: knock out a large slice of the population
	// mid-trace. The election must keep the network functional — messages
	// published after the outage window still get delivered, because
	// users meeting too few brokers promote replacements (Section V-B).
	tr, err := tracegen.Generate(tracegen.Small(83))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(83))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)

	// Take out the 6 most-contacted nodes (the likeliest brokers) for two
	// mid-trace hours.
	counts := tr.ContactCounts()
	type nodeCount struct{ id, n int }
	ranked := make([]nodeCount, len(counts))
	for i, n := range counts {
		ranked[i] = nodeCount{id: i, n: n}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })
	var failures []sim.Failure
	outageFrom, outageUntil := 4*time.Hour, 6*time.Hour
	for _, nc := range ranked[:6] {
		failures = append(failures, sim.Failure{
			Node: trace.NodeID(nc.id), From: outageFrom, Until: outageUntil,
		})
	}

	base := sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages:  msgs,
		TTL:       3 * time.Hour,
		Seed:      83,
	}
	healthy, err := sim.Run(base, New(DefaultConfig(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	injected := base
	injected.Failures = failures
	wounded, err := sim.Run(injected, New(DefaultConfig(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("healthy: %s", healthy)
	t.Logf("wounded: %s", wounded)

	if wounded.Delivered == 0 {
		t.Fatal("network never recovered from the broker outage")
	}
	// Losing the hubs for 2 of 12 hours must not collapse delivery: the
	// re-election keeps it within a reasonable factor of the healthy run.
	if wounded.DeliveryRatio() < healthy.DeliveryRatio()*0.6 {
		t.Errorf("delivery collapsed under outage: %.3f vs healthy %.3f",
			wounded.DeliveryRatio(), healthy.DeliveryRatio())
	}
}

func TestPartitionedRelayEndToEnd(t *testing.T) {
	// Section VI-D in-protocol: hash-partitioning the relay filters must
	// keep the protocol functional and not inflate traffic; with the same
	// workload the FPR should not rise (each partition holds fewer keys).
	tr, err := tracegen.Generate(tracegen.Small(91))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(91))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
	base := sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages:  msgs,
		TTL:       4 * time.Hour,
		Seed:      91,
	}

	single := DefaultConfig(0.02)
	partitioned := DefaultConfig(0.02)
	partitioned.RelayPartitions = 4

	repSingle, err := sim.Run(base, New(single))
	if err != nil {
		t.Fatal(err)
	}
	repPart, err := sim.Run(base, New(partitioned))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("h=1: %s", repSingle)
	t.Logf("h=4: %s", repPart)

	if repPart.Delivered == 0 {
		t.Fatal("partitioned relay delivered nothing")
	}
	if repPart.DeliveryRatio() < repSingle.DeliveryRatio()*0.85 {
		t.Errorf("partitioning collapsed delivery: %.3f vs %.3f",
			repPart.DeliveryRatio(), repSingle.DeliveryRatio())
	}
}

func TestRelayPartitionsValidation(t *testing.T) {
	cfg := DefaultConfig(0.1)
	cfg.RelayPartitions = -1
	if err := New(cfg).Init(&fakeEnv{nodes: 2, ttl: time.Hour}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative partitions accepted")
	}
	cfg.RelayPartitions = 300
	if err := New(cfg).Init(&fakeEnv{nodes: 2, ttl: time.Hour}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("oversized partitions accepted")
	}
}

func TestMeanBrokerFractionNearPaperRegime(t *testing.T) {
	// Section VII-A: "The broker allocation threshold is 3 and 5, which
	// maintains about 30% of the nodes being brokers in two traces."
	tr, err := tracegen.Generate(tracegen.Small(17))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(17))
	b := New(DefaultConfig(0.05))
	if _, err := sim.Run(sim.Config{
		Trace:     tr,
		Interests: workload.Interests(ks, tr.Nodes, rng),
		TTL:       4 * time.Hour,
		Seed:      17,
	}, b); err != nil {
		t.Fatal(err)
	}
	frac := b.MeanBrokerFraction()
	if frac < 0.1 || frac > 0.7 {
		t.Errorf("mean broker fraction %.2f far from the paper's ~0.3 regime", frac)
	}
	t.Logf("mean broker fraction: %.2f (final count %d/%d)",
		frac, b.BrokerCount(), tr.Nodes)
	if b.MeanBrokerFraction() == 0 {
		t.Error("no samples collected")
	}
}

func TestInjectionFPRTracksTheory(t *testing.T) {
	// The ground-truth oracle classifies each producer-to-broker
	// replication as genuine or falsely injected. The measured injection
	// FPR must be a sane probability and stay within shouting distance of
	// the Eq. 1 worst case for the evaluation filter (0.04 for 38 keys),
	// allowing slack for reinforcement dynamics.
	tr, err := tracegen.Generate(tracegen.Small(101))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(101))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := workload.GenerateMessages(ks, rates, tr.Span(), rng)
	rep, err := sim.Run(sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages:  msgs,
		TTL:       4 * time.Hour,
		Seed:      101,
	}, New(DefaultConfig(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications == 0 {
		t.Fatal("no replications recorded")
	}
	inj := rep.InjectionFPR()
	t.Logf("replications %d, falsely injected %d (injection FPR %.4f)",
		rep.Replications, rep.FalseInjections, inj)
	if inj < 0 || inj > 1 {
		t.Fatalf("injection FPR %g out of range", inj)
	}
	// With 38 keys in a 256/4 filter the worst-case matching FPR is 0.04;
	// measured injections should not be an order of magnitude beyond it.
	if inj > 0.3 {
		t.Errorf("injection FPR %.4f implausibly high (theory worst case 0.04)", inj)
	}
}

func TestOracleMirrorsRelayDecay(t *testing.T) {
	// White-box: an interest planted via genuine-filter A-merge must leave
	// the oracle at the same time it decays out of the relay filter.
	p := newTestBSub(t, 2)
	n := p.nodes[1]
	n.eng.Promote(0)
	p.syncRole(n, 0)

	// A full contact at t=0 pushes consumer 0's genuine filter ("k") into
	// broker 1's relay filter and oracle.
	p.OnContact(&fakeEnv{nodes: 2, ttl: time.Hour}, 0, 1, sim.NewBudget(1<<20))

	if n.oracle["k"] <= 0 {
		t.Fatalf("oracle missing planted interest: %v", n.oracle)
	}
	relay := n.eng.Relay()
	ok, err := relay.Contains("k", 0)
	if err != nil || !ok {
		t.Fatal("relay filter missing planted interest")
	}

	// DF = 0.1/min, C = 10 -> lifetime 100 minutes.
	later := 101 * time.Minute
	ok, err = relay.Contains("k", later)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("relay filter kept the interest past its lifetime")
	}
	p.advanceOracle(n, later)
	if c := n.oracle["k"]; c > 0 {
		t.Errorf("oracle counter %g survived past the filter's lifetime", c)
	}
}
