// Package core adapts the transport-agnostic B-SUB engine
// (internal/engine) to the discrete-event simulator: it is the
// sim.Protocol driver for the Section VII evaluation.
//
// All protocol logic — broker election, relay-filter merges, preferential
// forwarding, copy accounting — lives in the engine's session state
// machine. This package only:
//
//   - maps trace.NodeID contacts onto engine sessions and moves the
//     sessions' wire encodings across a function call (the live node moves
//     the same bytes across TCP frames);
//   - charges every transfer to the contact's bandwidth Budget and
//     reports control/forwarding/delivery traffic to the sim.Env metrics;
//   - maintains the simulator-side ground-truth "oracle" of each relay
//     filter — the exact multiset of relayed interests with
//     TCBF-identical counter semantics but no hash collisions — used
//     solely to classify producer-to-broker matches as genuine or falsely
//     injected (Section VI-B); the protocol never reads it.
package core

import (
	"math/rand"
	"sync"
	"time"

	"bsub/internal/engine"
	"bsub/internal/filter"
	"bsub/internal/sim"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// Config re-exports the engine's parameter set; see engine.Config for the
// per-field paper references.
type Config = engine.Config

// DFMode selects the decaying-factor policy.
type DFMode = engine.DFMode

// DF policies (see engine's docs).
const (
	DFFixed     = engine.DFFixed
	DFOnlineEq5 = engine.DFOnlineEq5
	DFFeedback  = engine.DFFeedback
)

// BrokerMergeMode selects the broker-broker relay-filter merge operation.
type BrokerMergeMode = engine.BrokerMergeMode

// Broker merge modes (see engine's docs).
const (
	BrokerMergeMax      = engine.BrokerMergeMax
	BrokerMergeAdditive = engine.BrokerMergeAdditive
)

// DefaultConfig returns the paper's evaluation parameters with the given
// decaying factor.
func DefaultConfig(decayPerMinute float64) Config {
	return engine.DefaultConfig(decayPerMinute)
}

// node pairs a protocol engine with the simulator-side oracle state.
type node struct {
	id  trace.NodeID
	eng *engine.Node

	// oracle mirrors the relay filter's content exactly (no collisions);
	// non-nil iff the node is a broker. oracleAt is its decay clock.
	oracle   map[workload.Key]float64
	oracleAt time.Duration
}

// BSub is the simulator driver; per-node protocol state lives in the
// engine.
type BSub struct {
	cfg   Config
	nodes []*node

	// caches holds one engine.SessionCache per simulator worker, so a
	// handful of warm scratch arenas serve the whole population instead
	// of one arena lingering per node.
	caches []*engine.SessionCache

	// The broker census below is cross-node diagnostic state, so it is the
	// one piece of BSub that contacts in disjoint components still share;
	// censusMu keeps it race-free under the sharded simulator. Under
	// workers > 1 the per-contact fraction samples depend on cross-
	// component interleaving, so MeanBrokerFraction is reproducible only
	// at Workers <= 1 — it feeds diagnostics, never the metrics Report.
	censusMu          sync.Mutex
	brokerFractionSum float64
	brokerSamples     int
	brokerCount       int
}

var _ sim.Protocol = (*BSub)(nil)

// New returns a B-SUB instance with the given configuration.
func New(cfg Config) *BSub { return &BSub{cfg: cfg} }

// Name implements sim.Protocol.
func (p *BSub) Name() string { return "B-SUB" }

// Init implements sim.Protocol.
func (p *BSub) Init(pop sim.Population, _ *rand.Rand) error {
	p.nodes = make([]*node, pop.Nodes())
	for i := range p.nodes {
		eng, err := engine.NewNode(i, p.cfg, pop.TTL())
		if err != nil {
			return err
		}
		eng.Subscribe(pop.InterestSet(trace.NodeID(i))...)
		p.nodes[i] = &node{id: trace.NodeID(i), eng: eng}
	}
	p.caches = make([]*engine.SessionCache, pop.Workers())
	for i := range p.caches {
		p.caches[i] = engine.NewSessionCache()
	}
	return nil
}

// OnMessage stores the fresh message at its producer with the full copy
// budget. Simulated messages carry no payload bytes; budgets charge the
// workload's Size field.
func (p *BSub) OnMessage(_ sim.Env, msg workload.Message) {
	p.nodes[msg.Origin].eng.AddProduced(msg, nil)
}

// OnContact runs one contact session: handshake, election, interest
// propagation or relay exchange, then per-side delivery and replication
// pulls — the same step sequence the live node frames over TCP, with a
// the session initiator.
func (p *BSub) OnContact(env sim.Env, aID, bID trace.NodeID, budget *sim.Budget) {
	now := env.Now()
	a, b := p.nodes[aID], p.nodes[bID]

	// 1. Identity handshake. A contact too short even for this carries
	// nothing.
	if !budget.Spend(engine.HandshakeBytes) {
		return
	}
	env.RecordControl(engine.HandshakeBytes)

	// 2. Broker allocation: both sides elect on the hello snapshots, then
	// apply the exchanged verdicts — the same simultaneous round trip the
	// live node performs. Sessions draw their scratch arenas from the
	// executing worker's cache.
	cache := p.caches[env.Worker()]
	sa := a.eng.BeginContactFrom(cache, budget, now)
	sb := b.eng.BeginContactFrom(cache, budget, now)
	sa.SetPeer(sb.Hello())
	sb.SetPeer(sa.Hello())
	actA, actB := sa.Elect(), sb.Elect()
	sa.Apply(actA, actB)
	sb.Apply(actB, actA)
	p.syncRoles(a, b, now)

	// 3. Interest propagation: brokers exchange relay filters and forward
	// preferentially; mixed contacts push the consumer's genuine filter.
	if sa.RelayExchange() {
		p.exchangeRelays(env, a, sa, b, sb, now)
	} else {
		p.propagateGenuine(env, a, sa, b, sb, now)
		p.propagateGenuine(env, b, sb, a, sa, now)
	}

	// 4. Pulls, initiator first: each side asks for deliveries matching
	// its interest BF, then (brokers only) for replicas matching its
	// relay advert.
	p.deliveryPull(env, a, sa, b, sb, now)
	p.replicationPull(env, a, sa, b, sb, now)
	p.deliveryPull(env, b, sb, a, sa, now)
	p.replicationPull(env, b, sb, a, sa, now)

	// 5. Contact over: recycle both sessions' scratch arenas. Every claim
	// above was committed inline, so Release refunds nothing.
	sa.Release()
	sb.Release()
}

// syncRoles reconciles both contact sides' oracles and the broker census
// with the engines' post-election roles; oracle non-nilness marks "was
// broker". One mutex hold covers the role flips and the census sample.
func (p *BSub) syncRoles(a, b *node, now time.Duration) {
	p.censusMu.Lock()
	defer p.censusMu.Unlock()
	p.syncRole(a, now)
	p.syncRole(b, now)
	p.brokerFractionSum += float64(p.brokerCount) / float64(len(p.nodes))
	p.brokerSamples++
}

// syncRole updates one node under censusMu.
func (p *BSub) syncRole(n *node, now time.Duration) {
	switch {
	case n.eng.IsBroker() && n.oracle == nil:
		n.oracle = make(map[workload.Key]float64)
		n.oracleAt = now
		p.brokerCount++
	case !n.eng.IsBroker() && n.oracle != nil:
		n.oracle = nil
		p.brokerCount--
	}
}

// advanceOracle mirrors the relay filter's lazy decay on the ground-truth
// oracle, using the DF currently in effect (the engine settles the filter
// before retuning the DF, and this is called at the same points).
func (p *BSub) advanceOracle(n *node, now time.Duration) {
	if n.oracle == nil {
		return
	}
	elapsed := now - n.oracleAt
	n.oracleAt = now
	df := n.eng.RelayDF()
	if elapsed <= 0 || df == 0 {
		return
	}
	dec := df * elapsed.Minutes()
	for k, c := range n.oracle {
		c -= dec
		if c <= 0 {
			delete(n.oracle, k)
		} else {
			n.oracle[k] = c
		}
	}
}

// mergeOracle applies the broker merge semantics to ground-truth counters.
func mergeOracle(dst, src map[workload.Key]float64, mode BrokerMergeMode) {
	for k, c := range src {
		switch {
		case mode == BrokerMergeAdditive:
			dst[k] += c
		case c > dst[k]:
			dst[k] = c
		}
	}
}

// propagateGenuine pushes the consumer side's genuine filter to the peer
// broker, which A-merges it into its relay filter (reinforcement), and
// mirrors the reinforcement on the broker's oracle.
func (p *BSub) propagateGenuine(env sim.Env, c *node, sc *engine.Session, br *node, sbr *engine.Session, now time.Duration) {
	if !sc.SendsGenuine() {
		return
	}
	data, err := sc.GenuineOut()
	if err != nil || data == nil {
		return
	}
	env.RecordControl(len(data))
	if err := sbr.AbsorbGenuine(data); err != nil {
		return
	}
	if br.oracle == nil {
		return
	}
	p.advanceOracle(br, now)
	for _, k := range c.eng.Interests() {
		br.oracle[k] += p.cfg.InitialCounter
	}
}

// exchangeRelays handles a broker-broker meeting: exchange relay filters,
// make forwarding decisions against the peer's pre-merge filter, then
// merge — mirroring the merges on the ground-truth oracles.
func (p *BSub) exchangeRelays(env sim.Env, a *node, sa *engine.Session, b *node, sb *engine.Session, now time.Duration) {
	dataA, errA := sa.RelayOut()
	dataB, errB := sb.RelayOut()
	if errA != nil || errB != nil || dataA == nil || dataB == nil {
		return
	}
	env.RecordControl(len(dataA) + len(dataB))
	if sa.SetPeerRelay(dataB) != nil || sb.SetPeerRelay(dataA) != nil {
		return
	}

	p.forward(env, a, sa, b, now)
	p.forward(env, b, sb, a, now)

	if sa.MergeRelay() != nil || sb.MergeRelay() != nil {
		return
	}

	// Mirror the merge on the oracles (pre-merge snapshots, like the
	// filters).
	p.advanceOracle(a, now)
	p.advanceOracle(b, now)
	snapA := make(map[workload.Key]float64, len(a.oracle))
	for k, c := range a.oracle {
		snapA[k] = c
	}
	mergeOracle(a.oracle, b.oracle, p.cfg.BrokerMerge)
	mergeOracle(b.oracle, snapA, p.cfg.BrokerMerge)
}

// forward moves src's preferential-forwarding candidates to dst, largest
// preference first. Forwarded messages leave src's memory ("this is to
// prevent excessive copies in the network"); a copy dst already holds is
// collapsed at src without spending budget.
func (p *BSub) forward(env sim.Env, src *node, ss *engine.Session, dst *node, now time.Duration) {
	cands, err := ss.ForwardCandidates()
	if err != nil {
		return
	}
	for _, cand := range cands {
		if dst.eng.HasCarried(cand.Msg.ID) {
			src.eng.DropCarried(cand.Msg.ID) // duplicate copy: collapse it
			continue
		}
		claim, ok := ss.ClaimCarried(cand.Msg.ID)
		if !ok {
			return // out of budget
		}
		if claim == nil {
			continue
		}
		claim.Commit()
		m := claim.Msg()
		acc := dst.eng.AcceptCarried(m, claim.Payload(), now)
		env.RecordForwarding(&m)
		if acc.Delivered {
			env.Deliver(&m, dst.id)
		}
	}
}

// deliveryPull serves the asker from the peer's own and carried messages
// matching the asker's counter-less interest BF; matching is what
// introduces delivery-side false positives, and env.Deliver classifies
// them.
func (p *BSub) deliveryPull(env sim.Env, asker *node, sAsker *engine.Session, server *node, sServer *engine.Session, now time.Duration) {
	data, err := sAsker.InterestOut()
	if err != nil || data == nil {
		return
	}
	env.RecordControl(len(data))
	matches, err := sServer.DeliveryMatches(data)
	if err != nil {
		return
	}
	for _, t := range matches {
		var claim *engine.Claim
		var ok bool
		if t.Carried {
			claim, ok = sServer.ClaimCarried(t.Msg.ID)
		} else {
			claim, ok = sServer.ClaimDirect(t.Msg.ID)
		}
		if !ok {
			return // out of budget
		}
		if claim == nil {
			continue
		}
		claim.Commit()
		m := claim.Msg()
		env.RecordForwarding(&m)
		env.Deliver(&m, asker.id)
		asker.eng.ReceiveDelivery(m, int(server.id), now)
	}
}

// replicationPull replicates the peer's matching produced messages to the
// asker broker, bounded by the per-message copy limit. The broker
// advertises its relay filter as a counter-less BF; false positives here
// are what inject useless traffic, and the oracle classifies each
// replication as genuine or injected.
func (p *BSub) replicationPull(env sim.Env, asker *node, sAsker *engine.Session, server *node, sServer *engine.Session, now time.Duration) {
	if !sAsker.SelfBroker() {
		return
	}
	data, err := sAsker.RelayAdvertOut()
	if err != nil || data == nil {
		return
	}
	env.RecordControl(len(data))
	matches, err := sServer.ReplicationMatches(data)
	if err != nil {
		return
	}
	for _, t := range matches {
		claim, ok := sServer.ClaimReplication(t.Msg.ID)
		if !ok {
			return // out of budget
		}
		if claim == nil {
			continue
		}
		claim.Commit()
		m := claim.Msg()
		acc := asker.eng.AcceptCarried(m, claim.Payload(), now)
		env.RecordForwarding(&m)
		p.advanceOracle(asker, now)
		genuineMatch := false
		if asker.oracle != nil {
			for _, k := range m.MatchKeys() {
				if asker.oracle[k] > 0 {
					genuineMatch = true
					break
				}
			}
		}
		env.RecordReplication(!genuineMatch)
		if acc.Delivered {
			env.Deliver(&m, asker.id)
		}
	}
}

// --- Introspection (tests and experiments) --------------------------------

// IsBroker reports whether node id currently serves as a broker.
func (p *BSub) IsBroker(id trace.NodeID) bool { return p.nodes[id].eng.IsBroker() }

// BrokerCount returns the number of current brokers.
func (p *BSub) BrokerCount() int { return p.brokerCount }

// MeanBrokerFraction returns the broker share of the population averaged
// over all contacts — the quantity behind the paper's "[the thresholds]
// maintain about 30% of the nodes being brokers in two traces".
func (p *BSub) MeanBrokerFraction() float64 {
	if p.brokerSamples == 0 {
		return 0
	}
	return p.brokerFractionSum / float64(p.brokerSamples)
}

// RelayFilter returns node id's relay filter, or nil for non-brokers.
// Callers must not mutate it.
func (p *BSub) RelayFilter(id trace.NodeID) filter.Filter { return p.nodes[id].eng.Relay() }

// Engine returns node id's protocol engine, for white-box tests (notably
// the sim/live parity test). Callers must not mutate it.
func (p *BSub) Engine(id trace.NodeID) *engine.Node { return p.nodes[id].eng }

// CarriedCount returns how many message copies node id currently carries.
func (p *BSub) CarriedCount(id trace.NodeID) int { return p.nodes[id].eng.CarriedCount() }
