// Package core implements the B-SUB protocol of Section V: a content-based
// publish-subscribe system for human networks built on the Temporal
// Counting Bloom Filter.
//
// B-SUB has two logical components:
//
//   - Broker allocation (Section V-B): an election. Each user tracks the
//     brokers it meets within a time window W; meeting fewer than a lower
//     bound T_l makes it designate the next node it meets as a broker,
//     while meeting more than an upper bound T_u makes it demote
//     below-average-degree brokers back to users. Socially active nodes
//     thereby gravitate toward broker duty.
//
//   - Pub-sub forwarding (Sections V-C, V-D): consumers push their
//     interests to brokers as TCBF "genuine filters" that brokers absorb
//     into "relay filters" with A-merge (reinforcement); brokers exchange
//     relay filters with M-merge (no bogus counters); producers replicate
//     up to C copies of each message to brokers whose relay filter matches;
//     brokers hand messages to better brokers by preferential query and
//     deliver to consumers whose interest Bloom filter matches.
//
// Every transfer — filters and messages alike — is charged against the
// contact session's bandwidth budget, and all temporal behaviour (decay,
// TTL) is driven by the simulator clock.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"bsub/internal/analysis"
	"bsub/internal/bloom"
	"bsub/internal/msgstore"
	"bsub/internal/sim"
	"bsub/internal/tcbf"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// Config holds B-SUB's tunable parameters with the paper's evaluation
// defaults documented per field.
type Config struct {
	// FilterM is the TCBF bit-vector length ("a bit-vector of 256 bits").
	FilterM int
	// FilterK is the TCBF hash count ("4 hash functions").
	FilterK int
	// InitialCounter is the TCBF insertion value C.
	InitialCounter float64
	// DecayPerMinute is the decaying factor DF. Zero disables decay
	// (interests never leave relay filters).
	DecayPerMinute float64
	// CopyLimit is the producer replication bound C ("the maximum number
	// of copies that can be forwarded by producers is 3").
	CopyLimit int
	// BrokerLow is T_l: meeting fewer brokers than this within Window
	// triggers a promotion.
	BrokerLow int
	// BrokerHigh is T_u: meeting more brokers than this within Window
	// triggers a demotion attempt.
	BrokerHigh int
	// Window is the broker-allocation time window W ("the time window is
	// 5 hours").
	Window time.Duration
	// BrokerMerge selects how brokers combine each other's relay filters.
	// The paper uses the maximum (M-merge) to avoid the bogus-counter
	// feedback loop of Fig. 6; the additive variant exists for ablation.
	// The zero value means BrokerMergeMax.
	BrokerMerge BrokerMergeMode
	// DFMode selects how the decaying factor is maintained. The zero
	// value (DFFixed) uses DecayPerMinute as given.
	DFMode DFMode
	// TargetFPR is the relay-filter false-positive rate the DFFeedback
	// controller steers toward (Section VI-B: "we can tentatively adjust
	// the DF, then re-adjust its value by observing the resultant FPR;
	// until a desirable FPR is achieved"). Required positive when DFMode
	// is DFFeedback.
	TargetFPR float64
	// RelayPartitions applies the Section VI-D multi-filter allocation to
	// relay filters: interests are hash-routed across this many TCBFs,
	// lowering the joint false-positive rate (Eq. 7) at the cost of more
	// control bytes. Zero or one means a single filter (the paper's
	// evaluation setting).
	RelayPartitions int
}

// DFMode selects the decaying-factor policy.
type DFMode int

const (
	// DFFixed uses Config.DecayPerMinute unchanged (the paper's
	// evaluation setting, with the DF precomputed from Eq. 5).
	DFFixed DFMode = iota
	// DFOnlineEq5 recomputes each broker's DF from its own contact
	// history: "it is straightforward to set an appropriate DF online by
	// counting the number of nodes a broker meets in the time window"
	// (Section VII-B). The TTL plays the role of the delay bound T.
	DFOnlineEq5
	// DFFeedback steers the DF so the relay filter's estimated FPR tracks
	// Config.TargetFPR (Section VI-B's observe-and-adjust loop): too many
	// false positives -> decay faster; comfortably below target -> decay
	// slower and let interests propagate further.
	DFFeedback
)

// BrokerMergeMode selects the broker-broker relay-filter merge operation.
type BrokerMergeMode int

const (
	// BrokerMergeMax is the paper's M-merge (the default).
	BrokerMergeMax BrokerMergeMode = iota
	// BrokerMergeAdditive is the A-merge the paper warns against between
	// brokers (Fig. 6); provided for the ablation study.
	BrokerMergeAdditive
)

// DefaultConfig returns the paper's evaluation parameters with the given
// decaying factor.
func DefaultConfig(decayPerMinute float64) Config {
	return Config{
		FilterM:        256,
		FilterK:        4,
		InitialCounter: 10,
		DecayPerMinute: decayPerMinute,
		CopyLimit:      3,
		BrokerLow:      3,
		BrokerHigh:     5,
		Window:         5 * time.Hour,
	}
}

func (c Config) validate() error {
	switch {
	case c.FilterM <= 0 || c.FilterK <= 0:
		return fmt.Errorf("core: filter geometry (%d,%d) invalid", c.FilterM, c.FilterK)
	case c.InitialCounter <= 0:
		return fmt.Errorf("core: initial counter must be positive, got %g", c.InitialCounter)
	case c.DecayPerMinute < 0:
		return fmt.Errorf("core: decay factor must be non-negative, got %g", c.DecayPerMinute)
	case c.CopyLimit < 1:
		return fmt.Errorf("core: copy limit must be at least 1, got %d", c.CopyLimit)
	case c.BrokerLow < 0 || c.BrokerHigh < c.BrokerLow:
		return fmt.Errorf("core: broker thresholds (%d,%d) invalid", c.BrokerLow, c.BrokerHigh)
	case c.Window <= 0:
		return fmt.Errorf("core: window must be positive, got %v", c.Window)
	case c.BrokerMerge != BrokerMergeMax && c.BrokerMerge != BrokerMergeAdditive:
		return fmt.Errorf("core: unknown broker merge mode %d", c.BrokerMerge)
	case c.DFMode < DFFixed || c.DFMode > DFFeedback:
		return fmt.Errorf("core: unknown DF mode %d", c.DFMode)
	case c.DFMode == DFFeedback && c.TargetFPR <= 0:
		return fmt.Errorf("core: DF feedback requires a positive target FPR, got %g", c.TargetFPR)
	case c.RelayPartitions < 0 || c.RelayPartitions > 255:
		return fmt.Errorf("core: relay partitions must be in [0,255], got %d", c.RelayPartitions)
	}
	return nil
}

// brokerSighting is a user's record of a broker it met: when, and the
// degree the broker reported at that meeting.
type brokerSighting struct {
	at     time.Duration
	degree int
}

// node is the per-device protocol state.
type node struct {
	id        trace.NodeID
	interests []workload.Key
	broker    bool

	// relay is the broker's relay filter (possibly partitioned per
	// Section VI-D); nil for plain users.
	relay *tcbf.Partitioned

	// produced holds the node's own messages with their remaining
	// replication budget; carried holds broker-relayed copies.
	produced *msgstore.Store
	carried  *msgstore.Store

	// oracle is the simulator-side ground truth of the relay filter: the
	// exact multiset of relayed interests with TCBF-identical counter
	// semantics but no hash collisions. It exists only to classify
	// producer-to-broker matches as genuine or falsely injected
	// (Section VI-B); the protocol never reads it for forwarding.
	oracle   map[workload.Key]float64
	oracleAt time.Duration

	// meetings maps peers to their last meeting time; a node's degree is
	// the number of peers met within the window.
	meetings map[trace.NodeID]time.Duration
	// sightings maps broker IDs to the user's latest sighting of them.
	sightings map[trace.NodeID]brokerSighting
}

func (n *node) degree(now, window time.Duration) int {
	d := 0
	for peer, at := range n.meetings {
		if now-at <= window {
			d++
		} else {
			delete(n.meetings, peer)
		}
	}
	return d
}

// countPeers counts distinct peers met within window without pruning, so
// it can use a different horizon than the election's Window. Entries older
// than the election window may already be pruned; the count is then a
// conservative lower bound.
func (n *node) countPeers(now, window time.Duration) int {
	d := 0
	for _, at := range n.meetings {
		if now-at <= window {
			d++
		}
	}
	return d
}

// brokersInWindow returns the number of distinct brokers sighted within
// the window and the mean of their last-reported degrees.
func (n *node) brokersInWindow(now, window time.Duration) (count int, meanDegree float64) {
	sum := 0
	for id, s := range n.sightings {
		if now-s.at > window {
			delete(n.sightings, id)
			continue
		}
		count++
		sum += s.degree
	}
	if count > 0 {
		meanDegree = float64(sum) / float64(count)
	}
	return count, meanDegree
}

// handshakeBytes is the identity/role/degree exchange at contact start.
const handshakeBytes = 16

// BSub is the protocol driver; it owns all node state.
type BSub struct {
	cfg   Config
	env   sim.Env
	nodes []*node

	// sentDirect dedups producer-to-consumer direct transfers per
	// (message, consumer).
	sentDirect map[int]map[trace.NodeID]struct{}

	filterCfg tcbf.Config

	// brokerFractionSum accumulates the broker fraction observed at each
	// contact, for MeanBrokerFraction.
	brokerFractionSum float64
	brokerSamples     int
	brokerCount       int
}

var _ sim.Protocol = (*BSub)(nil)

// New returns a B-SUB instance with the given configuration.
func New(cfg Config) *BSub { return &BSub{cfg: cfg} }

// Name implements sim.Protocol.
func (p *BSub) Name() string { return "B-SUB" }

// Init implements sim.Protocol.
func (p *BSub) Init(env sim.Env, _ *rand.Rand) error {
	if err := p.cfg.validate(); err != nil {
		return err
	}
	if p.cfg.RelayPartitions == 0 {
		p.cfg.RelayPartitions = 1
	}
	p.env = env
	p.filterCfg = tcbf.Config{
		M:              p.cfg.FilterM,
		K:              p.cfg.FilterK,
		Initial:        p.cfg.InitialCounter,
		DecayPerMinute: p.cfg.DecayPerMinute,
	}
	p.nodes = make([]*node, env.Nodes())
	for i := range p.nodes {
		p.nodes[i] = &node{
			id:        trace.NodeID(i),
			interests: env.InterestSet(trace.NodeID(i)),
			produced:  msgstore.New(),
			carried:   msgstore.New(),
			meetings:  make(map[trace.NodeID]time.Duration),
			sightings: make(map[trace.NodeID]brokerSighting),
		}
	}
	p.sentDirect = make(map[int]map[trace.NodeID]struct{})
	return nil
}

// OnMessage stores the fresh message at its producer with the full copy
// budget.
func (p *BSub) OnMessage(msg workload.Message) {
	p.nodes[msg.Origin].produced.Add(msg, msg.CreatedAt+p.env.TTL(), p.cfg.CopyLimit)
}

// OnContact runs one contact session.
func (p *BSub) OnContact(aID, bID trace.NodeID, budget *sim.Budget) {
	now := p.env.Now()
	a, b := p.nodes[aID], p.nodes[bID]

	// 1. Identity handshake. A contact too short even for this carries
	// nothing.
	if !budget.Spend(handshakeBytes) {
		return
	}
	p.env.RecordControl(handshakeBytes)
	a.meetings[bID] = now
	b.meetings[aID] = now

	// 2. Broker allocation (election).
	p.allocate(a, b, now)
	p.allocate(b, a, now)

	// 2b. Online DF maintenance (Sections VI-B / VII-B).
	p.retuneDF(a, now)
	p.retuneDF(b, now)

	p.brokerFractionSum += float64(p.brokerCount) / float64(len(p.nodes))
	p.brokerSamples++

	// 3. Interest propagation.
	if a.broker && b.broker {
		p.exchangeRelays(a, b, now, budget)
	} else {
		p.propagateInterest(a, b, now, budget) // a's interests -> broker b
		p.propagateInterest(b, a, now, budget)
	}

	// 4. Message forwarding, most-targeted flows first: broker-to-consumer
	// delivery, broker-to-broker preferential handoff, producer-to-broker
	// replication, and finally direct producer-to-consumer delivery.
	p.brokerToConsumer(a, b, now, budget)
	p.brokerToConsumer(b, a, now, budget)
	p.producerToBroker(a, b, now, budget)
	p.producerToBroker(b, a, now, budget)
	p.direct(a, b, now, budget)
	p.direct(b, a, now, budget)
}

// allocate performs u's broker-allocation step against peer. Brokers
// themselves do not perform these operations.
func (p *BSub) allocate(u, peer *node, now time.Duration) {
	if u.broker {
		return
	}
	if peer.broker {
		u.sightings[peer.id] = brokerSighting{
			at:     now,
			degree: peer.degree(now, p.cfg.Window),
		}
	}
	count, meanDegree := u.brokersInWindow(now, p.cfg.Window)
	switch {
	case count < p.cfg.BrokerLow && !peer.broker:
		// Too few brokers around: designate the node we are meeting.
		p.promote(peer, now)
		u.sightings[peer.id] = brokerSighting{
			at:     now,
			degree: peer.degree(now, p.cfg.Window),
		}
	case count > p.cfg.BrokerHigh && peer.broker:
		// Too many brokers: demote this one if it is less popular than
		// the average broker we have seen.
		if float64(peer.degree(now, p.cfg.Window)) < meanDegree {
			p.demote(peer)
			delete(u.sightings, peer.id)
		}
	}
}

// Bounds for the DFFeedback controller: never decay slower than the Eq. 5
// no-accident baseline C/T, never faster than one initial-value per
// minute's worth of decay scaled by feedbackCeil.
const (
	feedbackGrow   = 1.25
	feedbackShrink = 0.85
	feedbackCeil   = 10.0 // x the baseline
)

// retuneDF maintains a broker's decaying factor per the configured policy.
func (p *BSub) retuneDF(n *node, now time.Duration) {
	if p.cfg.DFMode == DFFixed || !n.broker || n.relay == nil {
		return
	}
	ttlMin := p.env.TTL().Minutes()
	baseline := p.cfg.InitialCounter / ttlMin
	switch p.cfg.DFMode {
	case DFOnlineEq5:
		// Count the distinct peers met within the delay bound T (= TTL),
		// the broker's own live estimate of the keys it collects.
		nKeys := n.countPeers(now, p.env.TTL())
		df, err := analysis.DecayFactor(
			p.cfg.InitialCounter, nKeys, p.cfg.FilterM, p.cfg.FilterK, ttlMin, 0.005)
		if err != nil {
			return
		}
		_ = n.relay.SetDecayFactor(df, now)
	case DFFeedback:
		if err := n.relay.Advance(now); err != nil {
			return
		}
		df := n.relay.Config().DecayPerMinute
		if df <= 0 {
			df = baseline
		}
		est := n.relay.EstimatedFPR()
		switch {
		case est > p.cfg.TargetFPR:
			df *= feedbackGrow
		case est < p.cfg.TargetFPR/2:
			df *= feedbackShrink
		default:
			return
		}
		if df < baseline {
			df = baseline
		}
		if max := baseline * feedbackCeil; df > max {
			df = max
		}
		_ = n.relay.SetDecayFactor(df, now)
	}
}

func (p *BSub) promote(n *node, now time.Duration) {
	if n.broker {
		return
	}
	n.broker = true
	n.relay = tcbf.MustNewPartitioned(p.filterCfg, p.cfg.RelayPartitions, now)
	n.oracle = make(map[workload.Key]float64)
	n.oracleAt = now
	p.brokerCount++
}

// advanceOracle mirrors the relay filter's lazy decay on the ground-truth
// oracle, using the DF currently in effect (retuneDF settles the filter
// before changing the DF, and this is called at the same points).
func (p *BSub) advanceOracle(n *node, now time.Duration) {
	if n.oracle == nil || n.relay == nil {
		return
	}
	elapsed := now - n.oracleAt
	n.oracleAt = now
	df := n.relay.Config().DecayPerMinute
	if elapsed <= 0 || df == 0 {
		return
	}
	dec := df * elapsed.Minutes()
	for k, c := range n.oracle {
		c -= dec
		if c <= 0 {
			delete(n.oracle, k)
		} else {
			n.oracle[k] = c
		}
	}
}

func (p *BSub) demote(n *node) {
	if !n.broker {
		return
	}
	n.broker = false
	n.relay = nil
	n.oracle = nil
	p.brokerCount--
	// Carried copies remain until TTL so already-replicated messages can
	// still reach consumers the ex-broker meets directly.
}

// propagateInterest sends consumer's genuine filter to broker, which
// A-merges it into its relay filter (reinforcement).
func (p *BSub) propagateInterest(consumer, broker *node, now time.Duration, budget *sim.Budget) {
	if !broker.broker || broker.relay == nil {
		return
	}
	genuine := tcbf.MustNewPartitioned(p.filterCfg, p.cfg.RelayPartitions, now)
	if err := genuine.InsertAll(consumer.interests, now); err != nil {
		return // cannot happen: fresh filter, monotone clock
	}
	size, err := genuine.WireSize(tcbf.CountersUniform)
	if err != nil || !budget.Spend(size) {
		return
	}
	p.env.RecordControl(size)
	if err := broker.relay.AMerge(genuine, now); err != nil {
		return
	}
	p.advanceOracle(broker, now)
	for _, k := range consumer.interests {
		broker.oracle[k] += p.cfg.InitialCounter
	}
}

// exchangeRelays handles a broker-broker meeting: exchange relay filters,
// make forwarding decisions against the peer's pre-merge filter, then
// M-merge.
func (p *BSub) exchangeRelays(a, b *node, now time.Duration, budget *sim.Budget) {
	sizeA, errA := a.relay.WireSize(tcbf.CountersFull)
	sizeB, errB := b.relay.WireSize(tcbf.CountersFull)
	if errA != nil || errB != nil {
		return
	}
	if !budget.Spend(sizeA + sizeB) {
		return
	}
	p.env.RecordControl(sizeA + sizeB)

	// Snapshot the pre-merge filters: "The two brokers ... make message
	// forwarding decisions before merging their relay filters."
	relayA := a.relay.Clone()
	relayB := b.relay.Clone()

	p.preferentialForward(a, relayB, b, now, budget)
	p.preferentialForward(b, relayA, a, now, budget)

	merge := (*tcbf.Partitioned).MMerge
	if p.cfg.BrokerMerge == BrokerMergeAdditive {
		merge = (*tcbf.Partitioned).AMerge
	}
	if err := merge(a.relay, relayB, now); err != nil {
		return
	}
	if err := merge(b.relay, relayA, now); err != nil {
		return
	}

	// Mirror the merge on the ground-truth oracles (pre-merge snapshots,
	// like the filters).
	p.advanceOracle(a, now)
	p.advanceOracle(b, now)
	snapA := make(map[workload.Key]float64, len(a.oracle))
	for k, c := range a.oracle {
		snapA[k] = c
	}
	mergeOracle(a.oracle, b.oracle, p.cfg.BrokerMerge)
	mergeOracle(b.oracle, snapA, p.cfg.BrokerMerge)
}

// mergeOracle applies the broker merge semantics to ground-truth counters.
func mergeOracle(dst, src map[workload.Key]float64, mode BrokerMergeMode) {
	for k, c := range src {
		switch {
		case mode == BrokerMergeAdditive:
			dst[k] += c
		case c > dst[k]:
			dst[k] = c
		}
	}
}

// preferentialForward moves the messages src carries toward dst when dst's
// relay filter shows a strictly positive preference, largest first.
// Forwarded messages leave src's memory ("this is to prevent excessive
// copies in the network").
func (p *BSub) preferentialForward(src *node, dstRelay *tcbf.Partitioned, dst *node, now time.Duration, budget *sim.Budget) {
	type candidate struct {
		msg  workload.Message
		pref float64
	}
	var cands []candidate
	for _, m := range src.carried.Live(now) {
		// Multi-key messages take the best preference over their keys.
		best, ok := 0.0, false
		for _, k := range m.MatchKeys() {
			pref, err := tcbf.PreferencePartitioned(k, dstRelay, src.relay, now)
			if err != nil {
				ok = false
				break
			}
			if pref > best {
				best, ok = pref, true
			}
		}
		if !ok || best <= 0 {
			continue
		}
		cands = append(cands, candidate{msg: m, pref: best})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pref != cands[j].pref {
			return cands[i].pref > cands[j].pref
		}
		return cands[i].msg.ID < cands[j].msg.ID
	})
	for _, c := range cands {
		if dst.carried.Has(c.msg.ID) {
			src.carried.Remove(c.msg.ID) // duplicate copy: collapse it
			continue
		}
		if !budget.Spend(c.msg.Size) {
			return
		}
		m := c.msg
		dst.carried.Add(m, m.CreatedAt+p.env.TTL(), 0)
		src.carried.Remove(m.ID)
		p.env.RecordForwarding(&m)
	}
}

// brokerToConsumer delivers the broker's carried messages that match the
// consumer's interest Bloom filter. Ex-brokers keep serving their carried
// copies the same way.
func (p *BSub) brokerToConsumer(broker, consumer *node, now time.Duration, budget *sim.Budget) {
	if broker.carried.Len() == 0 {
		return
	}
	// The broker requests the consumer's interests as a counter-less BF.
	size, filter, ok := p.interestBF(consumer, now, budget)
	if !ok {
		return
	}
	p.env.RecordControl(size)
	for _, m := range broker.carried.Live(now) {
		if !anyKeyIn(&m, filter) {
			continue
		}
		if !budget.Spend(m.Size) {
			return
		}
		m := m
		broker.carried.Remove(m.ID)
		p.env.RecordForwarding(&m)
		p.env.Deliver(&m, consumer.id)
	}
}

// producerToBroker replicates the producer's matching messages to the
// broker, bounded by the per-message copy limit. The broker advertises its
// relay filter as a counter-less BF; false positives here are what inject
// useless traffic.
func (p *BSub) producerToBroker(producer, broker *node, now time.Duration, budget *sim.Budget) {
	if !broker.broker || broker.relay == nil || producer.produced.Len() == 0 {
		return
	}
	if err := broker.relay.Advance(now); err != nil {
		return
	}
	size, err := broker.relay.WireSize(tcbf.CountersNone)
	if err != nil || !budget.Spend(size) {
		return
	}
	p.env.RecordControl(size)
	for _, m := range producer.produced.Live(now) {
		if producer.produced.Copies(m.ID) == 0 {
			continue
		}
		match := false
		for _, k := range m.MatchKeys() {
			ok, err := broker.relay.Contains(k, now)
			if err != nil {
				return
			}
			if ok {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		if broker.carried.Has(m.ID) {
			continue
		}
		if !budget.Spend(m.Size) {
			return
		}
		m := m
		broker.carried.Add(m, m.CreatedAt+p.env.TTL(), 0)
		p.env.RecordForwarding(&m)
		p.advanceOracle(broker, now)
		genuineMatch := false
		for _, k := range m.MatchKeys() {
			if broker.oracle[k] > 0 {
				genuineMatch = true
				break
			}
		}
		p.env.RecordReplication(!genuineMatch)
		if left := producer.produced.DecrementCopies(m.ID); left == 0 {
			producer.produced.Remove(m.ID)
		}
	}
}

// direct serves the consumer from the producer's own messages when they
// meet: the consumer reports its interests in a BF, the producer forwards
// every match. Direct deliveries are not counted against the copy limit.
func (p *BSub) direct(producer, consumer *node, now time.Duration, budget *sim.Budget) {
	if producer.produced.Len() == 0 {
		return
	}
	size, filter, ok := p.interestBF(consumer, now, budget)
	if !ok {
		return
	}
	p.env.RecordControl(size)
	for _, m := range producer.produced.Live(now) {
		if !anyKeyIn(&m, filter) {
			continue
		}
		if _, dup := p.sentDirect[m.ID][consumer.id]; dup {
			continue
		}
		if !budget.Spend(m.Size) {
			return
		}
		m := m
		if p.sentDirect[m.ID] == nil {
			p.sentDirect[m.ID] = make(map[trace.NodeID]struct{})
		}
		p.sentDirect[m.ID][consumer.id] = struct{}{}
		p.env.RecordForwarding(&m)
		p.env.Deliver(&m, consumer.id)
	}
}

// interestBF builds and budgets the consumer's counter-less interest Bloom
// filter ("the consumer reports its interests in a BF (not TCBF)");
// matching against it is what introduces delivery-side false positives. It
// returns the wire size, the filter, and whether the transfer fit the
// budget.
func (p *BSub) interestBF(consumer *node, now time.Duration, budget *sim.Budget) (int, *bloom.Filter, bool) {
	genuine := tcbf.MustNew(p.filterCfg, now)
	if err := genuine.InsertAll(consumer.interests, now); err != nil {
		return 0, nil, false
	}
	size, err := genuine.WireSize(tcbf.CountersNone)
	if err != nil || !budget.Spend(size) {
		return 0, nil, false
	}
	return size, genuine.ToBloom(), true
}

// anyKeyIn reports whether any of the message's keys matches the Bloom
// filter.
func anyKeyIn(m *workload.Message, f *bloom.Filter) bool {
	for _, k := range m.MatchKeys() {
		if f.Contains(k) {
			return true
		}
	}
	return false
}

// --- Introspection (tests and experiments) --------------------------------

// IsBroker reports whether node id currently serves as a broker.
func (p *BSub) IsBroker(id trace.NodeID) bool { return p.nodes[id].broker }

// BrokerCount returns the number of current brokers.
func (p *BSub) BrokerCount() int { return p.brokerCount }

// MeanBrokerFraction returns the broker share of the population averaged
// over all contacts — the quantity behind the paper's "[the thresholds]
// maintain about 30% of the nodes being brokers in two traces".
func (p *BSub) MeanBrokerFraction() float64 {
	if p.brokerSamples == 0 {
		return 0
	}
	return p.brokerFractionSum / float64(p.brokerSamples)
}

// RelayFilter returns node id's relay filter, or nil for non-brokers.
// Callers must not mutate it.
func (p *BSub) RelayFilter(id trace.NodeID) *tcbf.Partitioned { return p.nodes[id].relay }

// CarriedCount returns how many message copies node id currently carries.
func (p *BSub) CarriedCount(id trace.NodeID) int { return p.nodes[id].carried.Len() }
