package core

import (
	"math/rand"
	"testing"
	"time"

	"bsub/internal/sim"
	"bsub/internal/tracegen"
	"bsub/internal/workload"
)

func adaptiveFixture(t *testing.T, seed int64) sim.Config {
	t.Helper()
	tr, err := tracegen.Generate(tracegen.Small(seed))
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.NewTrendKeySet()
	rng := rand.New(rand.NewSource(seed))
	interests := workload.Interests(ks, tr.Nodes, rng)
	rates, err := workload.Rates(tr.Centrality(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Trace:     tr,
		Interests: interests,
		Messages:  workload.GenerateMessages(ks, rates, tr.Span(), rng),
		TTL:       4 * time.Hour,
		Seed:      seed,
	}
}

func TestDFModeValidation(t *testing.T) {
	cfg := DefaultConfig(0.1)
	cfg.DFMode = DFFeedback // without TargetFPR
	b := New(cfg)
	if err := b.Init(&fakeEnv{nodes: 2, ttl: time.Hour}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("DFFeedback without a target FPR accepted")
	}
	cfg = DefaultConfig(0.1)
	cfg.DFMode = DFMode(99)
	b = New(cfg)
	if err := b.Init(&fakeEnv{nodes: 2, ttl: time.Hour}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown DF mode accepted")
	}
}

func TestDFOnlineEq5EndToEnd(t *testing.T) {
	// The online Eq. 5 mode (Section VII-B) must run a full simulation
	// sanely and stay in the same delivery regime as a hand-tuned fixed
	// DF.
	simCfg := adaptiveFixture(t, 61)

	fixed, err := sim.Run(simCfg, New(DefaultConfig(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCfg := DefaultConfig(0) // DF recomputed per broker online
	adaptiveCfg.DFMode = DFOnlineEq5
	adaptive, err := sim.Run(simCfg, New(adaptiveCfg))
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Delivered == 0 {
		t.Fatal("online-Eq.5 mode delivered nothing")
	}
	if adaptive.DeliveryRatio() < fixed.DeliveryRatio()*0.7 {
		t.Errorf("online-Eq.5 delivery %.3f far below fixed-DF %.3f",
			adaptive.DeliveryRatio(), fixed.DeliveryRatio())
	}
	t.Logf("fixed:    %s", fixed)
	t.Logf("adaptive: %s", adaptive)
}

func TestDFFeedbackEndToEnd(t *testing.T) {
	simCfg := adaptiveFixture(t, 62)
	cfg := DefaultConfig(0)
	cfg.DFMode = DFFeedback
	cfg.TargetFPR = 0.02
	rep, err := sim.Run(simCfg, New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered == 0 {
		t.Fatal("feedback mode delivered nothing")
	}
	t.Logf("feedback: %s", rep)
}

// The white-box DF-retuning tests (feedback direction, online Eq. 5
// degree scaling) live in internal/engine with the retuning logic.
