// Package mesh grows a livenode from a one-shot pairwise dialer into a
// long-running broker-overlay daemon: the fleet-scale robustness layer
// the paper's "practical pub-sub for human networks" needs.
//
// A Mesh wraps one livenode.Node with three cooperating mechanisms:
//
//   - Membership. A table of known peers (ID, address, role, degree,
//     last-seen) fed by periodic gossip datagrams — push-pull digests in
//     the SWIM/Serf style, riding livenode's frameGossip outside contact
//     sessions so heartbeats flow even when every contact slot is busy.
//     Peers move Alive → Suspect → Dead as heartbeats go missing, and
//     back to Alive the moment fresher evidence (a gossip entry, a
//     completed session, a BUSY answer) arrives; Dead entries linger so
//     their death keeps gossiping, then age out entirely.
//
//   - Per-peer outbound workers with backpressure. Every reachable peer
//     owns one worker goroutine and a bounded job queue (the go-ipfs
//     bitswap PubManager idiom). The scheduler and flood paths enqueue
//     "contact due" and "gossip due" tokens without ever blocking: a
//     full queue coalesces overflow into a single pending token, because
//     one contact session moves every eligible message anyway. Workers
//     reconnect on failure under capped, jittered exponential backoff.
//
//   - Flood/relay dissemination. When a fresh copy lands (published
//     locally or stored off a relay), the mesh immediately schedules
//     contacts with its live broker peers instead of waiting for the
//     periodic tick. Dissemination still runs through ordinary contact
//     sessions, so the engine's claim commit/abort discipline holds: a
//     peer dying mid-hand-off refunds the copy, and copy conservation
//     survives arbitrary churn.
//
// What degrades and what never breaks: under overload the mesh coalesces
// work (fewer, later contacts) and under partition it suspects and
// eventually declares peers dead — but it never blocks a producer, never
// drops a claimed message copy, and never delivers a message twice to
// one subscription (the engine's invariants, untouched here).
package mesh

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bsub/internal/livenode"
	"bsub/internal/workload"
)

// Defaults for the mesh knobs; selected when the corresponding Config
// field is zero.
const (
	DefaultGossipInterval      = 250 * time.Millisecond
	DefaultGossipFanout        = 3
	DefaultGossipEntries       = 32
	DefaultContactInterval     = time.Second
	DefaultContactFanout       = 2
	DefaultQueueDepth          = 8
	DefaultReconnectBackoff    = 50 * time.Millisecond
	DefaultMaxReconnectBackoff = 2 * time.Second
)

// Default suspicion and probing thresholds as multiples of GossipInterval.
const (
	defaultSuspectTicks   = 6
	defaultDeadTicks      = 20
	defaultForgetTicks    = 80
	defaultDeadProbeTicks = 8
)

// Config parameterizes the mesh layer; the wrapped node keeps its own
// livenode.Config.
type Config struct {
	// GossipInterval is the event-loop tick: membership transitions are
	// evaluated and gossip heartbeats scheduled once per interval.
	GossipInterval time.Duration
	// GossipFanout is how many peers (alive and suspect — suspects get
	// probed, not abandoned) are gossiped with per tick.
	GossipFanout int
	// GossipEntries caps the membership rows carried per datagram.
	GossipEntries int
	// ContactInterval is how often a full contact session with each live
	// peer comes due.
	ContactInterval time.Duration
	// ContactFanout caps how many due contacts are scheduled per tick,
	// bounding the dial storm a large membership table could trigger.
	ContactFanout int
	// SuspectAfter / DeadAfter / ForgetAfter are the membership
	// freshness thresholds: a peer unheard-of for SuspectAfter turns
	// Suspect, for DeadAfter turns Dead (its worker stops), and a Dead
	// peer unheard-of for ForgetAfter leaves the table. Zero selects
	// 6, 20, and 80 gossip intervals respectively.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	ForgetAfter  time.Duration
	// DeadProbeInterval is the anti-entropy cadence: every interval, one
	// dead member (round-robin, least recently tried) gets a single
	// gossip probe at its last known address. Without it a healed
	// partition never remerges — both sides consider the other dead, and
	// dead members receive no gossip or contacts. Zero selects 8 gossip
	// intervals; negative disables probing.
	DeadProbeInterval time.Duration
	// QueueDepth bounds each per-peer job queue; overflow coalesces.
	QueueDepth int
	// ReconnectBackoff / MaxReconnectBackoff shape the workers' jittered
	// exponential reconnect backoff.
	ReconnectBackoff    time.Duration
	MaxReconnectBackoff time.Duration
	// NoFlood disables eager dissemination: with flood on (the default),
	// a freshly stored or published copy immediately schedules contacts
	// with live broker peers instead of waiting for ContactInterval.
	NoFlood bool
	// Seeds are addresses gossiped with at start to bootstrap the
	// membership table.
	Seeds []string
	// Seed drives the scheduler's and the workers' jitter; zero selects 1.
	Seed int64
	// OnPeerChange, when set, receives one event per membership state
	// transition. Called from mesh goroutines with no mesh locks held.
	OnPeerChange func(PeerEvent)
}

func (c Config) withDefaults() Config {
	if c.GossipInterval <= 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = DefaultGossipFanout
	}
	if c.GossipEntries <= 0 {
		c.GossipEntries = DefaultGossipEntries
	}
	if c.ContactInterval <= 0 {
		c.ContactInterval = DefaultContactInterval
	}
	if c.ContactFanout <= 0 {
		c.ContactFanout = DefaultContactFanout
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = defaultSuspectTicks * c.GossipInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = defaultDeadTicks * c.GossipInterval
	}
	if c.ForgetAfter <= 0 {
		c.ForgetAfter = defaultForgetTicks * c.GossipInterval
	}
	if c.DeadProbeInterval == 0 {
		c.DeadProbeInterval = defaultDeadProbeTicks * c.GossipInterval
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = DefaultReconnectBackoff
	}
	if c.MaxReconnectBackoff <= 0 {
		c.MaxReconnectBackoff = DefaultMaxReconnectBackoff
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Mesh is a long-running B-SUB mesh daemon: one live node plus
// membership, per-peer outbound workers, and eager dissemination. Create
// with Start, stop with Close.
type Mesh struct {
	node     *livenode.Node
	cfg      Config
	clock    func() time.Duration
	selfID   uint32
	selfAddr string

	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup

	// mu guards the membership table and the scheduler rng. Nothing
	// blocking — dials, channel ops, hook calls — runs while it is held
	// (enforced by bsublint's lockio analyzer), and it is always the
	// first lock taken: mu, then a worker's mu, then statsMu (enforced
	// by bsublint's lockorder analyzer via the rank below).
	//bsub:lockrank 10
	mu            sync.Mutex
	members       map[uint32]*member
	rng           *rand.Rand
	lastDeadProbe time.Duration

	// interests aggregates downstream subscriber interest filters into a
	// Bloofi tree for flood targeting (see interests.go). It has its own
	// lock and is never touched while mu is held.
	interests *interestIndex

	// statsMu guards the counters (see stats.go). Callers may hold mu
	// and a worker's mu; statsMu is always innermost.
	//bsub:lockrank 30
	statsMu  sync.Mutex
	counters Counters
}

// Start listens a live node on addr and wraps it in a mesh daemon. The
// mesh installs its own gossip handler and session/store observers into
// nodeCfg (wrapping, not replacing, any hooks already set), then begins
// gossiping with cfg.Seeds.
func Start(addr string, nodeCfg livenode.Config, cfg Config) (*Mesh, error) {
	cfg = cfg.withDefaults()
	parts := nodeCfg.Protocol.RelayPartitions
	if parts < 1 {
		parts = 1
	}
	m := &Mesh{
		cfg:       cfg,
		selfID:    nodeCfg.ID,
		closed:    make(chan struct{}),
		members:   map[uint32]*member{},
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		interests: newInterestIndex(nodeCfg.Protocol.FilterConfig(), parts),
	}

	clock := nodeCfg.Clock
	if clock == nil {
		epoch := time.Unix(0, 0)
		clock = func() time.Duration { return time.Since(epoch) }
		nodeCfg.Clock = clock
	}
	m.clock = clock

	nodeCfg.GossipHandler = m.handleGossip
	userSession := nodeCfg.OnSession
	nodeCfg.OnSession = func(st livenode.SessionStats) {
		m.observeSession(st)
		if userSession != nil {
			userSession(st)
		}
	}
	userStored := nodeCfg.OnStored
	nodeCfg.OnStored = func(msg workload.Message) {
		m.flood(msg.MatchKeys()...)
		if userStored != nil {
			userStored(msg)
		}
	}
	userGenuine := nodeCfg.OnPeerGenuine
	nodeCfg.OnPeerGenuine = func(peer uint32, encoded []byte) {
		m.interests.observe(peer, encoded, clock())
		m.bump(&m.counters.InterestFilters)
		if userGenuine != nil {
			userGenuine(peer, encoded)
		}
	}

	node, err := livenode.Listen(addr, nodeCfg)
	if err != nil {
		return nil, fmt.Errorf("mesh: %w", err)
	}
	m.node = node
	m.selfAddr = node.Addr()

	m.wg.Add(1)
	go m.run()
	if len(cfg.Seeds) > 0 {
		m.wg.Add(1)
		go m.bootstrap(cfg.Seeds)
	}
	return m, nil
}

// Node exposes the wrapped live node (stats, engine inspection). The
// mesh owns its lifecycle; do not Close it directly.
func (m *Mesh) Node() *livenode.Node { return m.node }

// ID returns the node's mesh-unique identifier.
func (m *Mesh) ID() uint32 { return m.selfID }

// Addr returns the node's listen address.
func (m *Mesh) Addr() string { return m.selfAddr }

// Subscribe adds interest keys on the wrapped node.
func (m *Mesh) Subscribe(keys ...workload.Key) { m.node.Subscribe(keys...) }

// Publish stores a message for dissemination and, with flood enabled,
// immediately schedules contacts with live broker peers to move it.
func (m *Mesh) Publish(payload []byte, keys ...workload.Key) (int, error) {
	id, err := m.node.Publish(payload, keys...)
	if err == nil {
		m.flood(keys...)
	}
	return id, err
}

// Close stops the event loop, every peer worker, and the wrapped node,
// then waits for all of them. Safe to call concurrently and repeatedly.
func (m *Mesh) Close() error {
	m.closeOnce.Do(func() {
		close(m.closed)
		m.mu.Lock()
		for _, mb := range m.members {
			if mb.worker != nil {
				mb.worker.stop()
				mb.worker = nil
			}
		}
		m.mu.Unlock()
		m.closeErr = m.node.Close()
	})
	m.wg.Wait()
	return m.closeErr
}

// Join gossips with a seed address once, absorbing whatever membership
// the peer answers with. Used for bootstrap and rejoin after restart.
func (m *Mesh) Join(addr string) error {
	reply, err := m.node.Gossip(addr, m.digest())
	if err != nil {
		return err
	}
	m.absorb(reply)
	return nil
}

// bootstrap retries each seed a few times under the workers' backoff
// shape; a seed that stays unreachable is dropped (gossip transitivity
// finds everyone once any seed answers).
func (m *Mesh) bootstrap(seeds []string) {
	defer m.wg.Done()
	rng := rand.New(rand.NewSource(m.cfg.Seed + 0x5eed))
	for _, addr := range seeds {
		backoff := m.cfg.ReconnectBackoff
		for attempt := 0; attempt <= maxJobRetries; attempt++ {
			if m.Join(addr) == nil {
				break
			}
			timer := time.NewTimer(jitteredDelay(backoff, rng.Float64()))
			select {
			case <-m.closed:
				timer.Stop()
				return
			case <-timer.C:
			}
			if backoff < m.cfg.MaxReconnectBackoff {
				backoff *= 2
			}
		}
	}
}

// Peers snapshots the membership table, sorted by ID.
func (m *Mesh) Peers() []Peer {
	m.mu.Lock()
	out := make([]Peer, 0, len(m.members))
	for _, mb := range m.members {
		out = append(out, mb.snapshot())
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- Event loop -------------------------------------------------------------

func (m *Mesh) run() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-ticker.C:
		}
		m.tick()
	}
}

// tick advances membership states and schedules this interval's gossip
// and contact jobs. All decisions happen under mu; all enqueues (channel
// ops) happen after it is released.
func (m *Mesh) tick() {
	now := m.clock()
	var events []PeerEvent
	var gossip, contacts []*peerWorker

	m.mu.Lock()
	// 1. Freshness-driven transitions.
	for id, mb := range m.members {
		elapsed := now - mb.lastSeen
		switch mb.state {
		case StateAlive:
			if elapsed > m.cfg.SuspectAfter {
				events = append(events, m.transition(mb, StateSuspect))
			}
		case StateSuspect:
			if elapsed > m.cfg.DeadAfter {
				events = append(events, m.transition(mb, StateDead))
			}
		case StateDead:
			if elapsed > m.cfg.DeadAfter+m.cfg.ForgetAfter {
				delete(m.members, id)
				m.bump(&m.counters.Forgotten)
			}
		}
	}
	// 2. Gossip heartbeats: fanout random reachable peers; suspects are
	// deliberately eligible — a successful probe revives them.
	var candidates []*peerWorker
	for _, mb := range m.members {
		if mb.worker != nil {
			candidates = append(candidates, mb.worker)
		}
	}
	m.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	gossip = append(gossip, candidates[:min(m.cfg.GossipFanout, len(candidates))]...)
	// 3. Due contacts, least recently contacted first, bounded by fanout.
	// A live member's worker is only nil when Close has already retired
	// the fleet under this same lock; skip, the loop is about to exit.
	var due []*member
	for _, mb := range m.members {
		if mb.state == StateAlive && mb.worker != nil && now-mb.lastContact >= m.cfg.ContactInterval {
			due = append(due, mb)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].lastContact != due[j].lastContact {
			return due[i].lastContact < due[j].lastContact
		}
		return due[i].id < due[j].id
	})
	for _, mb := range due[:min(m.cfg.ContactFanout, len(due))] {
		mb.lastContact = now
		contacts = append(contacts, mb.worker)
	}
	// 4. Dead-peer probing: suspicion alone cannot heal a partition —
	// once both sides declare the other dead, neither gossips with nor
	// contacts it again, and the split is permanent. A single low-rate
	// gossip probe of the least recently tried dead member is the
	// anti-entropy escape: one successful exchange resurrects that peer
	// and absorbs its side's fresh rows, and ordinary gossip floods the
	// remerge from there.
	var probeID uint32
	var probeAddr string
	if m.cfg.DeadProbeInterval > 0 && now-m.lastDeadProbe >= m.cfg.DeadProbeInterval {
		var probe *member
		for _, mb := range m.members {
			if mb.state != StateDead || mb.addr == "" {
				continue
			}
			if probe == nil || mb.lastContact < probe.lastContact ||
				(mb.lastContact == probe.lastContact && mb.id < probe.id) {
				probe = mb
			}
		}
		if probe != nil {
			m.lastDeadProbe = now
			probe.lastContact = now
			probeID, probeAddr = probe.id, probe.addr
		}
	}
	m.mu.Unlock()

	m.fire(events)
	for _, w := range gossip {
		w.enqueue(jobGossip)
	}
	for _, w := range contacts {
		w.enqueue(jobContact)
	}
	if probeAddr != "" {
		// One-shot goroutine rather than a worker job: dead members have
		// no worker. wg.Add here is safe against Close's Wait because
		// tick runs inside the wg-tracked run goroutine.
		m.bump(&m.counters.DeadProbes)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			_ = m.gossipPeer(probeID, probeAddr)
		}()
	}
}

// transition moves a member to a new state, manages its worker lifecycle,
// and returns the event to fire once the lock is released. Callers hold mu.
func (m *Mesh) transition(mb *member, to PeerState) PeerEvent {
	from := mb.state
	mb.state = to
	switch {
	case to == StateDead:
		if mb.worker != nil {
			mb.worker.stop()
			mb.worker = nil
		}
		m.bump(&m.counters.Died)
	case to == StateSuspect:
		m.bump(&m.counters.Suspected)
	case to == StateAlive:
		if from == StateDead {
			m.bump(&m.counters.Rejoined)
		} else {
			m.bump(&m.counters.Recovered)
		}
		if mb.worker == nil {
			mb.worker = m.startWorker(mb.id)
		}
	}
	return PeerEvent{Peer: mb.snapshot(), From: from, To: to}
}

// startWorker creates the peer's outbound worker. Its drain goroutine
// spawns lazily on the first enqueue. Callers hold mu.
func (m *Mesh) startWorker(id uint32) *peerWorker {
	return newPeerWorker(m, id, m.cfg.QueueDepth, m.cfg.Seed^int64(id))
}

// fire delivers peer events outside all mesh locks. Declaring a peer dead
// also clears the node's direct-delivery markers for it, so a restarted
// incarnation (empty delivered set) is served again; a wrongly-suspected
// live peer just dedups the repeat.
func (m *Mesh) fire(events []PeerEvent) {
	for _, e := range events {
		if e.To == StateDead {
			m.node.ForgetDeliveries(e.Peer.ID)
			m.interests.forget(e.Peer.ID)
		}
		if m.cfg.OnPeerChange != nil {
			m.cfg.OnPeerChange(e)
		}
	}
}

// --- Gossip -----------------------------------------------------------------

// digest builds this node's membership datagram: itself first (age 0),
// then the freshest table rows up to GossipEntries.
func (m *Mesh) digest() []byte {
	now := m.clock()
	self := gossipEntry{
		ID:     m.selfID,
		Broker: m.node.IsBroker(),
		Addr:   m.selfAddr,
	}
	m.mu.Lock()
	self.Degree = len(m.members)
	rows := make([]gossipEntry, 0, len(m.members)+1)
	rows = append(rows, self)
	for _, mb := range m.members {
		rows = append(rows, gossipEntry{
			ID:     mb.id,
			Broker: mb.broker,
			Degree: mb.degree,
			Age:    max(now-mb.lastSeen, 0),
			Addr:   mb.addr,
		})
	}
	m.mu.Unlock()
	sort.Slice(rows[1:], func(i, j int) bool {
		a, b := rows[1+i], rows[1+j]
		if a.Age != b.Age {
			return a.Age < b.Age
		}
		return a.ID < b.ID
	})
	if len(rows) > m.cfg.GossipEntries {
		rows = rows[:m.cfg.GossipEntries]
	}
	return encodeGossip(rows)
}

// handleGossip answers one inbound gossip datagram: absorb the sender's
// view, reply with ours. Runs on livenode connection goroutines; pure
// in-memory work.
func (m *Mesh) handleGossip(payload []byte) []byte {
	m.absorb(payload)
	return m.digest()
}

// absorb merges a gossip payload into the membership table. Entries only
// ever move a peer's evidence forward: stale rows (older last-seen than
// what the table already holds) are ignored, fresh rows update address,
// role, and degree and may revive suspect or dead peers.
func (m *Mesh) absorb(payload []byte) {
	entries, err := decodeGossip(payload)
	if err != nil {
		m.bump(&m.counters.GossipGarbage)
		return
	}
	m.bump(&m.counters.GossipAbsorbed)
	now := m.clock()
	var events []PeerEvent

	m.mu.Lock()
	for _, e := range entries {
		if e.ID == m.selfID || e.Addr == "" {
			continue
		}
		seen := max(now-e.Age, 0)
		mb := m.members[e.ID]
		if mb == nil {
			state := m.stateFor(now - seen)
			mb = &member{
				id:       e.ID,
				addr:     e.Addr,
				broker:   e.Broker,
				degree:   e.Degree,
				state:    state,
				lastSeen: seen,
			}
			if state != StateDead {
				mb.worker = m.startWorker(e.ID)
			}
			m.members[e.ID] = mb
			events = append(events, PeerEvent{Peer: mb.snapshot(), To: state, Fresh: true})
			continue
		}
		if seen <= mb.lastSeen {
			continue
		}
		mb.lastSeen = seen
		mb.addr = e.Addr
		mb.broker = e.Broker
		mb.degree = e.Degree
		if want := m.stateFor(now - seen); want == StateAlive && mb.state != StateAlive {
			events = append(events, m.transition(mb, StateAlive))
		}
	}
	m.mu.Unlock()
	m.fire(events)
}

// stateFor classifies a peer by how stale its evidence is.
func (m *Mesh) stateFor(elapsed time.Duration) PeerState {
	switch {
	case elapsed > m.cfg.DeadAfter:
		return StateDead
	case elapsed > m.cfg.SuspectAfter:
		return StateSuspect
	}
	return StateAlive
}

// peerAddr returns the current dial address for a peer still in a
// reachable state; ok is false once the peer died or left the table.
func (m *Mesh) peerAddr(id uint32) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb := m.members[id]
	if mb == nil || mb.state == StateDead {
		return "", false
	}
	return mb.addr, true
}

// observeAlive refreshes a peer's evidence with first-hand proof (a
// completed session, a BUSY answer, a gossip exchange).
func (m *Mesh) observeAlive(id uint32) {
	now := m.clock()
	var events []PeerEvent
	m.mu.Lock()
	if mb := m.members[id]; mb != nil {
		if now > mb.lastSeen {
			mb.lastSeen = now
		}
		if mb.state != StateAlive {
			events = append(events, m.transition(mb, StateAlive))
		}
	}
	m.mu.Unlock()
	m.fire(events)
}

// observeSession feeds contact outcomes back into membership: any session
// that identified its peer is proof of life.
func (m *Mesh) observeSession(st livenode.SessionStats) {
	if st.Peer == 0 {
		return
	}
	switch st.Outcome {
	case livenode.OutcomeCompleted, livenode.OutcomePeerBusy:
		m.observeAlive(st.Peer)
	}
}

// gossipPeer exchanges membership datagrams with one peer.
func (m *Mesh) gossipPeer(id uint32, addr string) error {
	reply, err := m.node.Gossip(addr, m.digest())
	if err != nil {
		m.bump(&m.counters.GossipFailed)
		return err
	}
	m.absorb(reply)
	m.observeAlive(id)
	return nil
}

// contactPeer runs one full contact session with a peer.
func (m *Mesh) contactPeer(id uint32, addr string) error {
	err := m.node.Meet(addr)
	if err != nil {
		m.bump(&m.counters.ContactFailures)
		return err
	}
	m.bump(&m.counters.Contacts)
	m.observeAlive(id)
	return nil
}

// flood eagerly schedules contacts so a fresh copy carrying the given
// keys starts moving now instead of at the next periodic tick. Live
// broker peers are always targeted (they relay on behalf of subscribers
// this node cannot see); live consumer peers are targeted when the
// interest index — one Bloofi-tree descent, then a per-peer filter check
// only on a hit — says their subscriptions match. The actual transfer
// still runs through ordinary contact sessions — claims commit on ACK
// and abort on sever — so churn mid-hand-off refunds the copy instead of
// losing it, and the periodic scheduler still visits every live peer, so
// an interest miss delays nothing but the eager contact.
func (m *Mesh) flood(keys ...workload.Key) {
	if m.cfg.NoFlood {
		return
	}
	wanted := m.interests.match(keys, m.clock())
	var targets []*peerWorker
	var direct int
	m.mu.Lock()
	for _, mb := range m.members {
		if mb.state != StateAlive || mb.worker == nil {
			continue
		}
		interested := false
		if !mb.broker {
			i := sort.Search(len(wanted), func(i int) bool { return wanted[i] >= mb.id })
			interested = i < len(wanted) && wanted[i] == mb.id
		}
		if mb.broker || interested {
			// Deliberately leave lastContact alone: a flood job the worker
			// drops (peer busy) must not suppress the periodic scheduler for
			// a whole ContactInterval.
			targets = append(targets, mb.worker)
			if interested {
				direct++
			}
		}
	}
	m.mu.Unlock()
	m.bumpN(&m.counters.FloodDirect, direct)
	for _, w := range targets {
		m.bump(&m.counters.FloodTokens)
		w.enqueue(jobContact)
	}
}
