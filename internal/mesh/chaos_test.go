package mesh

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bsub/internal/core"
	"bsub/internal/faultnet"
	"bsub/internal/livenode"
	"bsub/internal/testutil"
	"bsub/internal/workload"
)

// The churn chaos suite: a 100+ node in-process mesh wired through a
// faultnet Fabric runs a scripted kill/restart/partition schedule while
// messages disseminate. Invariants asserted:
//
//   - exactly-once: no node incarnation ever sees one message delivered
//     twice (a restarted node is a new incarnation — its dedup state
//     died with it, so re-delivery across a restart is correct, and
//     counted per incarnation);
//   - copy conservation: after the storm, each message's replication
//     copies across every surviving node sum to at most CopyLimit —
//     churn may destroy copies, never mint them;
//   - eventual delivery: subscribers that rejoined after a kill or sat
//     behind the partition still receive every matching message once the
//     mesh heals;
//   - no goroutine leaks once every mesh is closed.

const (
	churnNodes  = 104
	churnTopics = 8
)

func churnTopic(i int) workload.Key {
	return workload.Key(fmt.Sprintf("t%d", i%churnTopics))
}

// churnRec records one node incarnation's deliveries.
type churnRec struct {
	id  uint32
	inc int

	mu   sync.Mutex
	seen map[int]int
}

func (r *churnRec) deliver(d livenode.Delivery) {
	r.mu.Lock()
	r.seen[d.Message.ID]++
	r.mu.Unlock()
}

func (r *churnRec) count(id int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[id]
}

// churnHarness owns the mesh fleet, the fabric, and the delivery records.
type churnHarness struct {
	t      *testing.T
	fabric *faultnet.Fabric

	mu     sync.Mutex
	meshes map[uint32]*Mesh
	incs   map[uint32]int
	recs   []*churnRec // every incarnation ever started
	active map[uint32]*churnRec
}

func keyOf(id uint32) string { return fmt.Sprintf("n%d", id) }

// start boots (or reboots) node id with the given seed addresses. The
// node subscribes to its topic, registers its fresh listen address under
// its stable fabric key, and gets a new delivery recorder.
func (h *churnHarness) start(id uint32, seeds ...string) *Mesh {
	h.t.Helper()
	h.mu.Lock()
	h.incs[id]++
	rec := &churnRec{id: id, inc: h.incs[id], seen: map[int]int{}}
	h.recs = append(h.recs, rec)
	h.active[id] = rec
	h.mu.Unlock()

	ncfg := livenode.Config{
		ID:             id,
		Protocol:       core.DefaultConfig(0.01),
		TTL:            2 * time.Hour,
		SessionTimeout: 5 * time.Second,
		OnDeliver:      rec.deliver,
		Dial:           h.fabric.Dialer(keyOf(id)),
	}
	// The schedule is deliberately calm for a 104-node fleet under the
	// race detector, which multiplies every exchange's CPU cost ~10-20x
	// and may have a single core to spend it on. The gossip tick is the
	// event-loop clock: at 1s with fanout 2 the fleet runs ~200 gossip
	// exchanges plus ~100 contact attempts per second mesh-wide, which a
	// race-instrumented core can actually serve — at a 200ms tick the
	// timers fire on schedule but the sessions starve behind them, and
	// delivery stalls for CPU reasons indistinguishable from protocol
	// bugs. Suspicion thresholds are sized to tolerate relay-depth age
	// inflation and scheduler lag, and a contact fanout of one still
	// sweeps every peer well inside the delivery deadline.
	mcfg := Config{
		GossipInterval:      time.Second,
		GossipFanout:        2,
		GossipEntries:       64,
		ContactInterval:     5 * time.Second,
		ContactFanout:       1,
		SuspectAfter:        6 * time.Second,
		DeadAfter:           12 * time.Second,
		ForgetAfter:         10 * time.Minute,
		ReconnectBackoff:    25 * time.Millisecond,
		MaxReconnectBackoff: 500 * time.Millisecond,
		Seeds:               seeds,
		Seed:                int64(id)*1000 + int64(h.incOf(id)),
	}
	m, err := Start("127.0.0.1:0", ncfg, mcfg)
	if err != nil {
		h.t.Fatalf("start node %d: %v", id, err)
	}
	m.Subscribe(churnTopic(int(id)))
	h.fabric.Register(keyOf(id), m.Addr())

	h.mu.Lock()
	h.meshes[id] = m
	h.mu.Unlock()
	return m
}

func (h *churnHarness) incOf(id uint32) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.incs[id]
}

// kill closes node id's mesh — process death, carried copies and dedup
// state gone — and unbinds its stale address.
func (h *churnHarness) kill(id uint32) {
	h.t.Helper()
	h.mu.Lock()
	m := h.meshes[id]
	delete(h.meshes, id)
	delete(h.active, id)
	h.mu.Unlock()
	addr := m.Addr()
	if err := m.Close(); err != nil {
		h.t.Errorf("close node %d: %v", id, err)
	}
	h.fabric.Forget(addr)
}

func (h *churnHarness) mesh(id uint32) *Mesh {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.meshes[id]
}

// closeAll shuts the surviving fleet down in parallel: a single Close can
// spend seconds letting an in-flight session drain, and a hundred of
// them serially would dominate the test's runtime.
func (h *churnHarness) closeAll() {
	h.mu.Lock()
	all := make([]*Mesh, 0, len(h.meshes))
	for _, m := range h.meshes {
		all = append(all, m)
	}
	h.mu.Unlock()
	var wg sync.WaitGroup
	for _, m := range all {
		wg.Add(1)
		go func(m *Mesh) {
			defer wg.Done()
			_ = m.Close()
		}(m)
	}
	wg.Wait()
}

// activeRec returns the recorder of node id's current incarnation.
func (h *churnHarness) activeRec(id uint32) *churnRec {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.active[id]
}

func TestMeshChurnExactlyOnceAndCopyConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("churn chaos suite is long; skipped with -short")
	}
	testutil.CheckGoroutineLeaks(t)

	h := &churnHarness{
		t:      t,
		fabric: faultnet.NewFabric(),
		meshes: map[uint32]*Mesh{},
		incs:   map[uint32]int{},
		active: map[uint32]*churnRec{},
	}
	defer h.closeAll()

	// Boot the fleet from a single seed, plus a chain seed to the
	// previous node so bootstrap never depends on one hot listener.
	first := h.start(1)
	seedAddr := first.Addr()
	prevAddr := seedAddr
	for id := uint32(2); id <= churnNodes; id++ {
		m := h.start(id, seedAddr, prevAddr)
		prevAddr = m.Addr()
	}

	t.Logf("fleet booted at %s", time.Now().Format("15:04:05"))
	// Converged: every node's table holds the whole fleet and nobody has
	// been declared dead. Transient suspect flaps are tolerated — under
	// this load gossip ages breathe, and the delivery assertions below
	// are the real proof the mesh works.
	waitFor(t, 180*time.Second, "initial full membership", func() bool {
		for id := uint32(1); id <= churnNodes; id++ {
			st := h.mesh(id).Stats()
			if st.Alive+st.Suspect < churnNodes-1 || st.Dead > 0 {
				return false
			}
		}
		return true
	})

	// Batch 1: with the mesh whole, the first churnTopics nodes each
	// publish to their own topic.
	type pub struct {
		id     int
		origin uint32
		topic  workload.Key
	}
	var pubs []pub
	publish := func(origin uint32, topic workload.Key, payload string) {
		t.Helper()
		id, err := h.mesh(origin).Publish([]byte(payload), topic)
		if err != nil {
			t.Fatalf("publish from %d: %v", origin, err)
		}
		pubs = append(pubs, pub{id: id, origin: origin, topic: topic})
	}
	for i := 0; i < churnTopics; i++ {
		publish(uint32(i+1), churnTopic(i), "batch1")
	}

	// Partition the fleet into two halves. Established cross-half
	// connections die mid-flight; the engine's claim discipline must
	// refund any copy caught in an unACKed hand-off.
	var sideA, sideB []string
	for id := uint32(1); id <= churnNodes; id++ {
		if id <= churnNodes/2 {
			sideA = append(sideA, keyOf(id))
		} else {
			sideB = append(sideB, keyOf(id))
		}
	}
	t.Logf("membership converged at %s; partitioning", time.Now().Format("15:04:05"))
	h.fabric.Partition(sideA, sideB)

	// Batch 2: one producer on each side publishes while split.
	publish(10, churnTopic(3), "batch2-sideA")
	publish(60, churnTopic(5), "batch2-sideB")

	// Kill five nodes per side (never the producers), leave them dead
	// long enough for the suspicion machinery to declare it, then
	// restart them as fresh incarnations — same ID and fabric key, new
	// address, seeded from a live node on their own side.
	killed := []uint32{20, 21, 22, 23, 24, 70, 71, 72, 73, 74}
	for _, id := range killed {
		h.kill(id)
	}
	time.Sleep(18 * time.Second) // > DeadAfter plus relay-age slack

	var died, suspected uint64
	for id := uint32(1); id <= churnNodes; id++ {
		if m := h.mesh(id); m != nil {
			st := m.Stats()
			died += st.Died
			suspected += st.Suspected
		}
	}
	if suspected == 0 || died == 0 {
		t.Fatalf("churn not observed: suspected = %d, died = %d", suspected, died)
	}

	for _, id := range killed {
		if id <= churnNodes/2 {
			h.start(id, h.mesh(10).Addr())
		} else {
			h.start(id, h.mesh(60).Addr())
		}
	}

	// Heal. Everything must reconverge: rejoined incarnations and the
	// far side of the partition catch up on both batches.
	h.fabric.Heal()
	t.Logf("healed at %s; waiting for post-churn delivery", time.Now().Format("15:04:05"))

	missing := func() []string {
		var out []string
		for _, p := range pubs {
			for id := uint32(1); id <= churnNodes; id++ {
				if id == p.origin || churnTopic(int(id)) != p.topic {
					continue
				}
				if h.activeRec(id).count(p.id) == 0 {
					out = append(out, fmt.Sprintf("msg %d (topic %s, origin %d) -> node %d", p.id, p.topic, p.origin, id))
				}
			}
		}
		return out
	}
	// The budget covers roughly two full contact sweeps (103 peers at one
	// attempt per second per node) under worst-case race-detector lag;
	// the non-race run finishes in well under a minute.
	deadline := time.Now().Add(420 * time.Second)
	for {
		miss := missing()
		if len(miss) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for post-churn delivery: %d pairs undelivered, e.g.:\n  %v",
				len(miss), miss[:min(10, len(miss))])
		}
		time.Sleep(100 * time.Millisecond)
	}

	// A rejoined observer must exist: someone declared a peer dead and
	// later saw it come back.
	var rejoined uint64
	for id := uint32(1); id <= churnNodes; id++ {
		rejoined += h.mesh(id).Stats().Rejoined
	}
	if rejoined == 0 {
		t.Error("no mesh observed a dead peer rejoining")
	}

	// Exactly-once: across every incarnation that ever ran, no message
	// was delivered twice to one engine.
	h.mu.Lock()
	recs := append([]*churnRec(nil), h.recs...)
	h.mu.Unlock()
	for _, rec := range recs {
		rec.mu.Lock()
		for msgID, n := range rec.seen {
			if n > 1 {
				t.Errorf("node %d (incarnation %d) saw message %d delivered %d times",
					rec.id, rec.inc, msgID, n)
			}
		}
		rec.mu.Unlock()
	}

	// Copy conservation: quiesce the fleet, then census every message's
	// surviving replication copies. Kills and dedup collapse destroy
	// copies; the only legal mint is a refunded hand-off — the receiver
	// stored, the ACK died with the link, the sender refunded (hand-offs
	// are at-least-once; delivery dedup keeps them exactly-once). So each
	// message's census is bounded by CopyLimit plus the mesh-wide refund
	// count; anything past that is copies minted from nothing.
	t.Logf("delivery complete at %s; closing fleet", time.Now().Format("15:04:05"))
	h.closeAll()
	t.Logf("fleet closed at %s", time.Now().Format("15:04:05"))
	var refunds uint64
	for id := uint32(1); id <= churnNodes; id++ {
		if m := h.mesh(id); m != nil {
			refunds += m.Node().Stats().MsgsRefunded
		}
	}
	copyLimit := core.DefaultConfig(0.01).CopyLimit
	bound := copyLimit + int(refunds)
	for _, p := range pubs {
		total := 0
		for id := uint32(1); id <= churnNodes; id++ {
			if m := h.mesh(id); m != nil {
				total += m.Node().CopyCensus(p.id)
			}
		}
		if total > bound {
			t.Errorf("message %d (origin %d): %d copies across the mesh, want <= %d (CopyLimit %d + %d refunded hand-offs) — copies minted under churn",
				p.id, p.origin, total, bound, copyLimit, refunds)
		}
	}
}
