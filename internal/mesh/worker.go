package mesh

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"bsub/internal/livenode"
)

// job is one unit of outbound work for a peer worker.
type job uint8

const (
	// jobGossip: exchange one membership datagram with the peer.
	jobGossip job = iota + 1
	// jobContact: run one full contact session (Meet) with the peer.
	jobContact
)

// maxJobRetries bounds the reconnect loop of a single job; beyond it the
// job is abandoned and the periodic scheduler (or the suspicion state
// machine) decides what happens to the peer next.
const maxJobRetries = 4

// peerWorker is the per-peer outbound scheduler, the bitswap msgQueue
// idiom: each live peer owns one, so contact and gossip attempts to one
// destination are serialized, retried under capped jittered exponential
// backoff, and never block the mesh's event loop or the other peers.
//
// Backpressure: jobs land in a bounded queue. When it is full the
// enqueue degrades gracefully — the job collapses into a single pending
// "contact due" token (coalesced) instead of blocking the producer or
// silently dropping work. A contact session moves every eligible message
// anyway, so N coalesced contact tokens and one token do the same work.
//
// The drain goroutine parks: it exits when the queue (and the coalesced
// token) are empty and is respawned by the next enqueue. At most one
// drain runs per worker at any moment, so job execution stays serialized
// per peer while a mesh of hundreds of in-process nodes — the chaos
// suite's shape — holds goroutines proportional to in-flight work, not
// to membership table size.
type peerWorker struct {
	m  *Mesh
	id uint32

	depth int
	quit  chan struct{}
	rng   *rand.Rand // guarded by the single-drain invariant

	// mu guards the queue and lifecycle flags; nothing blocking runs
	// while it is held (enforced by bsublint's lockio analyzer). It
	// nests inside Mesh.mu (Close and peer transitions stop workers
	// under the membership lock) and outside statsMu.
	//bsub:lockrank 20
	mu        sync.Mutex
	queue     []job
	coalesced bool
	running   bool // a drain goroutine is live (or being spawned)
	stopped   bool
}

func newPeerWorker(m *Mesh, id uint32, queueDepth int, seed int64) *peerWorker {
	return &peerWorker{
		m:     m,
		id:    id,
		depth: queueDepth,
		quit:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// stop retires the worker: pending jobs are dropped, an in-flight drain
// is interrupted at its next backoff or queue check, and future enqueues
// become no-ops. Idempotent; safe to call with Mesh.mu held (nothing
// here blocks).
func (w *peerWorker) stop() {
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		close(w.quit)
	}
	w.mu.Unlock()
}

// enqueue hands the worker a job without ever blocking. On overflow a
// contact token is coalesced; gossip jobs fold into the same token — a
// contact session carries strictly more information than a heartbeat.
// The wg.Add for a fresh drain happens inside the critical section that
// checked stopped, so it is ordered before Close's stop/Wait sequence.
func (w *peerWorker) enqueue(j job) {
	var spawn, overflow bool
	w.mu.Lock()
	switch {
	case w.stopped:
		w.mu.Unlock()
		return
	case len(w.queue) < w.depth:
		w.queue = append(w.queue, j)
	default:
		w.coalesced = true
		overflow = true
	}
	if !w.running {
		w.running = true
		w.m.wg.Add(1)
		spawn = true
	}
	w.mu.Unlock()
	if overflow {
		w.m.bumpCoalesced()
	}
	if spawn {
		go func() { w.drain() }()
	}
}

// next pops the drain's next job. When queue and coalesced token are both
// empty — or the worker was stopped — it parks the drain by clearing
// running under the same lock, so no enqueued job can ever be stranded
// between "queue looked empty" and "goroutine exited".
func (w *peerWorker) next() (job, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopped {
		w.running = false
		return 0, false
	}
	if len(w.queue) > 0 {
		j := w.queue[0]
		copy(w.queue, w.queue[1:])
		w.queue = w.queue[:len(w.queue)-1]
		return j, true
	}
	if w.coalesced {
		w.coalesced = false
		return jobContact, true
	}
	w.running = false
	return 0, false
}

func (w *peerWorker) drain() {
	defer w.m.wg.Done()
	for {
		j, ok := w.next()
		if !ok {
			return
		}
		w.perform(j)
	}
}

// perform runs one job, reconnecting on failure under capped, jittered
// exponential backoff. A BUSY answer (either side at session capacity) is
// not a failure: the peer is provably alive and the contact comes due
// again on the next scheduler tick. Retries stop when the peer leaves the
// membership table's reachable states or the worker is stopped.
func (w *peerWorker) perform(j job) {
	backoff := w.m.cfg.ReconnectBackoff
	for attempt := 0; ; attempt++ {
		addr, ok := w.m.peerAddr(w.id)
		if !ok {
			return
		}
		var err error
		switch j {
		case jobGossip:
			err = w.m.gossipPeer(w.id, addr)
		case jobContact:
			err = w.m.contactPeer(w.id, addr)
		}
		if err == nil {
			return
		}
		if errors.Is(err, livenode.ErrPeerBusy) || errors.Is(err, livenode.ErrBusy) {
			w.m.observeAlive(w.id)
			return
		}
		if attempt >= maxJobRetries {
			return
		}
		w.m.bumpReconnects()
		delay := jitteredDelay(backoff, w.rng.Float64())
		timer := time.NewTimer(delay)
		select {
		case <-w.quit:
			timer.Stop()
			return
		case <-timer.C:
		}
		if backoff < w.m.cfg.MaxReconnectBackoff {
			backoff *= 2
		}
	}
}

// jitteredDelay draws a delay uniformly from [backoff/2, backoff): equal
// jitter, so workers that failed against the same peer in the same
// instant do not retry in the same instant too.
func jitteredDelay(backoff time.Duration, sample float64) time.Duration {
	half := backoff / 2
	return half + time.Duration(sample*float64(half))
}
