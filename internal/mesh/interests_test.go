package mesh

import (
	"testing"
	"time"

	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// encodeInterest builds a peer's interest-filter encoding holding keys.
func encodeInterest(t *testing.T, cfg tcbf.Config, parts int, keys []string, now time.Duration) []byte {
	t.Helper()
	f, err := tcbf.NewPartitioned(cfg, parts, now)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := f.Insert(k, now); err != nil {
			t.Fatal(err)
		}
	}
	data, err := f.Encode(tcbf.CountersNone)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInterestIndexMatch(t *testing.T) {
	cfg := tcbf.Config{M: 256, K: 4, Initial: 10}
	now := time.Hour
	ix := newInterestIndex(cfg, 1)

	ix.observe(7, encodeInterest(t, cfg, 1, []string{"news"}, now), now)
	ix.observe(9, encodeInterest(t, cfg, 1, []string{"sports"}, now), now)
	if ix.size() != 2 {
		t.Fatalf("size = %d, want 2", ix.size())
	}

	if got := ix.match([]workload.Key{"news"}, now); len(got) != 1 || got[0] != 7 {
		t.Errorf("match(news) = %v, want [7]", got)
	}
	if got := ix.match([]workload.Key{"sports"}, now); len(got) != 1 || got[0] != 9 {
		t.Errorf("match(sports) = %v, want [9]", got)
	}
	// The aggregate tree rules the whole tier out in one descent.
	if got := ix.match([]workload.Key{"opera"}, now); len(got) != 0 {
		t.Errorf("match(opera) = %v, want none", got)
	}
	if got := ix.match(nil, now); got != nil {
		t.Errorf("match(no keys) = %v, want nil", got)
	}
}

func TestInterestIndexOpaquePeer(t *testing.T) {
	cfg := tcbf.Config{M: 256, K: 4, Initial: 10}
	now := time.Hour
	ix := newInterestIndex(cfg, 1)

	// A peer running a different filter backend hands over bytes this
	// index cannot decode; it must be kept and always flooded.
	ix.observe(3, []byte{0xDE, 0xAD}, now)
	ix.observe(7, encodeInterest(t, cfg, 1, []string{"news"}, now), now)

	if got := ix.match([]workload.Key{"opera"}, now); len(got) != 1 || got[0] != 3 {
		t.Errorf("match(opera) = %v, want the opaque peer [3]", got)
	}
	got := ix.match([]workload.Key{"news"}, now)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("match(news) = %v, want [3 7] sorted", got)
	}
}

func TestInterestIndexForgetRebuilds(t *testing.T) {
	cfg := tcbf.Config{M: 256, K: 4, Initial: 10}
	now := time.Hour
	ix := newInterestIndex(cfg, 1)

	ix.observe(7, encodeInterest(t, cfg, 1, []string{"news"}, now), now)
	if got := ix.match([]workload.Key{"news"}, now); len(got) != 1 {
		t.Fatalf("match(news) = %v before forget", got)
	}
	ix.forget(7)
	if ix.size() != 0 {
		t.Errorf("size = %d after forget, want 0", ix.size())
	}
	// The stale tree must be rebuilt, not answer from the dead peer.
	if got := ix.match([]workload.Key{"news"}, now); len(got) != 0 {
		t.Errorf("match(news) = %v after forget, want none", got)
	}
	// Forgetting an unknown peer is a no-op.
	ix.forget(42)
}

func TestInterestIndexClockClamp(t *testing.T) {
	cfg := tcbf.Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	now := time.Hour
	ix := newInterestIndex(cfg, 1)

	ix.observe(7, encodeInterest(t, cfg, 1, []string{"news"}, now), now)
	// Hook and flood goroutines can observe the mesh clock out of order;
	// an earlier timestamp must not panic or corrupt the filters.
	if got := ix.match([]workload.Key{"news"}, now-30*time.Minute); len(got) != 1 {
		t.Errorf("match with stale clock = %v, want [7]", got)
	}
}

func TestInterestIndexNilTolerant(t *testing.T) {
	var ix *interestIndex
	ix.observe(1, nil, 0)
	ix.forget(1)
	if got := ix.match([]workload.Key{"news"}, time.Hour); got != nil {
		t.Errorf("nil index match = %v, want nil", got)
	}
	if ix.size() != 0 {
		t.Errorf("nil index size = %d, want 0", ix.size())
	}
}
