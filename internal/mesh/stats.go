package mesh

// Counters aggregates mesh-level behavior over a daemon's lifetime:
// membership churn, scheduler throughput, and the backpressure and
// reconnect machinery the robustness story depends on. Alive, Suspect,
// and Dead are point-in-time table sizes filled in by Stats; everything
// else accumulates monotonically.
type Counters struct {
	// Alive / Suspect / Dead are the membership table's current
	// composition at snapshot time.
	Alive   int
	Suspect int
	Dead    int

	// GossipAbsorbed counts membership datagrams decoded and merged;
	// GossipGarbage counts payloads rejected wholesale by the codec;
	// GossipFailed counts outbound gossip exchanges that died on I/O.
	GossipAbsorbed uint64
	GossipGarbage  uint64
	GossipFailed   uint64

	// Contacts counts completed outbound contact sessions scheduled by
	// the mesh; ContactFailures counts attempts that errored (busy
	// answers are neither — they reschedule).
	Contacts        uint64
	ContactFailures uint64

	// Reconnects counts backoff-then-retry rounds in the peer workers:
	// each increment is one failed attempt that the worker will retry
	// after a jittered delay.
	Reconnects uint64

	// QueueCoalesced counts jobs that arrived at a full worker queue and
	// collapsed into the single pending catch-up token instead of
	// blocking or being dropped.
	QueueCoalesced uint64

	// FloodTokens counts eager contact tokens issued by the
	// dissemination path (Publish or a newly stored copy). FloodDirect
	// is the subset aimed at non-broker peers whose interest filters —
	// aggregated in the Bloofi tree — matched the fresh message's keys.
	FloodTokens uint64
	FloodDirect uint64

	// InterestFilters counts downstream genuine (interest) filters
	// absorbed into the Bloofi interest index via contact sessions.
	InterestFilters uint64

	// DeadProbes counts anti-entropy gossip probes sent to dead members
	// (the partition-heal escape hatch; see Config.DeadProbeInterval).
	DeadProbes uint64

	// Membership transition counts: Suspected (alive → suspect), Died
	// (suspect → dead), Rejoined (dead → alive), Recovered (suspect →
	// alive), Forgotten (dead entries aged out of the table).
	Suspected uint64
	Died      uint64
	Rejoined  uint64
	Recovered uint64
	Forgotten uint64
}

// Stats snapshots the mesh counters plus the membership table's current
// state composition.
func (m *Mesh) Stats() Counters {
	m.statsMu.Lock()
	out := m.counters
	m.statsMu.Unlock()
	m.mu.Lock()
	for _, mb := range m.members {
		switch mb.state {
		case StateAlive:
			out.Alive++
		case StateSuspect:
			out.Suspect++
		case StateDead:
			out.Dead++
		}
	}
	m.mu.Unlock()
	return out
}

// bump increments one cumulative counter under statsMu. Callers may hold
// mu (lock order is always mu then statsMu, never the reverse).
func (m *Mesh) bump(field *uint64) {
	m.statsMu.Lock()
	*field++
	m.statsMu.Unlock()
}

// bumpN adds n to one cumulative counter under statsMu; a no-op for n<=0.
func (m *Mesh) bumpN(field *uint64, n int) {
	if n <= 0 {
		return
	}
	m.statsMu.Lock()
	*field += uint64(n)
	m.statsMu.Unlock()
}

func (m *Mesh) bumpCoalesced()  { m.bump(&m.counters.QueueCoalesced) }
func (m *Mesh) bumpReconnects() { m.bump(&m.counters.Reconnects) }
