package mesh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// PeerState is a membership table entry's health, driven by gossip
// freshness: Alive peers heartbeat within SuspectAfter, Suspect peers
// have missed heartbeats but get probed rather than abandoned, Dead peers
// stay in the table (so their death can be gossiped) until ForgetAfter
// expires them.
type PeerState uint8

const (
	StateAlive PeerState = iota
	StateSuspect
	StateDead
)

func (s PeerState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Peer is a point-in-time snapshot of one membership entry, surfaced by
// Mesh.Peers and in PeerEvents.
type Peer struct {
	ID       uint32
	Addr     string
	Broker   bool
	Degree   int
	State    PeerState
	LastSeen time.Duration
}

// PeerEvent reports one membership state transition through
// Config.OnPeerChange. From == To never happens; a peer first learned of
// reports From == To-less zero value with Fresh set.
type PeerEvent struct {
	Peer  Peer
	From  PeerState
	To    PeerState
	Fresh bool // first time this peer entered the table
}

// member is one row of the membership table. All fields are guarded by
// Mesh.mu.
type member struct {
	id       uint32
	addr     string
	broker   bool
	degree   int
	state    PeerState
	lastSeen time.Duration
	// lastContact is when a contact with this peer was last scheduled,
	// so the event loop does not double-book a peer whose job is still
	// queued.
	lastContact time.Duration
	worker      *peerWorker // non-nil unless state == StateDead
}

func (mb *member) snapshot() Peer {
	return Peer{
		ID:       mb.id,
		Addr:     mb.addr,
		Broker:   mb.broker,
		Degree:   mb.degree,
		State:    mb.state,
		LastSeen: mb.lastSeen,
	}
}

// --- Gossip wire format -----------------------------------------------------

// gossipVersion guards the membership codec independently of the contact
// protocol version: gossip frames are opaque to livenode.
const gossipVersion = 1

// maxGossipAddr bounds one advertised address.
const maxGossipAddr = 255

// gossipEntry is one membership row on the wire. Age (time since the
// sender last heard from the peer) travels instead of an absolute
// timestamp, so nodes need no synchronized wall clock — the SWIM/Serf
// anti-entropy idiom.
type gossipEntry struct {
	ID     uint32
	Broker bool
	Degree int
	Age    time.Duration
	Addr   string
}

// errGossipGarbage rejects undecodable gossip payloads; the exchange is
// dropped, never trusted partially.
var errGossipGarbage = errors.New("mesh: undecodable gossip payload")

// encodeGossip serializes entries:
//
//	version(1) count(1) then per entry:
//	id(4) flags(1) degree(2) ageMillis(4) addrLen(1) addr
func encodeGossip(entries []gossipEntry) []byte {
	if len(entries) > 255 {
		entries = entries[:255]
	}
	out := make([]byte, 2, 2+len(entries)*32)
	out[0] = gossipVersion
	out[1] = byte(len(entries))
	for _, e := range entries {
		out = binary.BigEndian.AppendUint32(out, e.ID)
		var flags byte
		if e.Broker {
			flags |= 1
		}
		out = append(out, flags)
		out = binary.BigEndian.AppendUint16(out, uint16(min(e.Degree, 1<<16-1)))
		ms := e.Age.Milliseconds()
		if ms < 0 {
			ms = 0
		}
		if ms > 1<<32-1 {
			ms = 1<<32 - 1
		}
		out = binary.BigEndian.AppendUint32(out, uint32(ms))
		addr := e.Addr
		if len(addr) > maxGossipAddr {
			addr = addr[:maxGossipAddr]
		}
		out = append(out, byte(len(addr)))
		out = append(out, addr...)
	}
	return out
}

// decodeGossip parses a gossip payload, rejecting truncated or
// version-mismatched bytes wholesale.
func decodeGossip(data []byte) ([]gossipEntry, error) {
	if len(data) < 2 {
		return nil, errGossipGarbage
	}
	if data[0] != gossipVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", errGossipGarbage, data[0], gossipVersion)
	}
	count := int(data[1])
	rest := data[2:]
	entries := make([]gossipEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 12 {
			return nil, fmt.Errorf("%w: truncated entry %d", errGossipGarbage, i)
		}
		var e gossipEntry
		e.ID = binary.BigEndian.Uint32(rest)
		if rest[4] > 1 {
			return nil, fmt.Errorf("%w: flags %d", errGossipGarbage, rest[4])
		}
		e.Broker = rest[4] == 1
		e.Degree = int(binary.BigEndian.Uint16(rest[5:]))
		e.Age = time.Duration(binary.BigEndian.Uint32(rest[7:])) * time.Millisecond
		addrLen := int(rest[11])
		rest = rest[12:]
		if len(rest) < addrLen {
			return nil, fmt.Errorf("%w: truncated addr in entry %d", errGossipGarbage, i)
		}
		e.Addr = string(rest[:addrLen])
		rest = rest[addrLen:]
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errGossipGarbage, len(rest))
	}
	return entries, nil
}
