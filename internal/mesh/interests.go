package mesh

import (
	"sort"
	"sync"
	"time"

	"bsub/internal/bloofi"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// interestIndex is the mesh broker tier's aggregate view of downstream
// subscriber interests: one decoded interest filter per peer (fed by the
// livenode OnPeerGenuine hook as consumers hand their genuine filters
// over during contact sessions) plus a Bloofi tree (internal/bloofi)
// whose inner nodes max-aggregate those filters. When a fresh copy lands,
// one O(log n) descent of the tree answers "does anyone downstream want
// this?" before any per-peer filter is checked, and the per-peer pass
// then picks the consumers worth an eager flood contact.
//
// The index is advisory: flooding is an acceleration of the periodic
// contact scheduler, which still visits every live peer each
// ContactInterval, so a stale or missing entry can only delay delivery,
// never lose it. Peers whose interest encoding cannot be decoded as a
// packed partitioned TCBF (a mesh running a non-default filter backend)
// are kept as opaque entries and always included in flood targeting.
//
// interestIndex has its own mutex; nothing blocking runs under it, and it
// is never held together with Mesh.mu.
type interestIndex struct {
	// mu is ranked after every Mesh lock: flood targeting reads the
	// index from code paths that already released mu, and the rank
	// guarantees no path ever reverses that.
	//bsub:lockrank 40
	mu    sync.Mutex
	cfg   tcbf.Config
	parts int
	peers map[uint32]*peerInterest
	tree  *bloofi.Tree
	stale bool
	// clock high-water mark: filters reject time moving backwards, and
	// hook and flood goroutines may observe the mesh clock out of order.
	last time.Duration
}

type peerInterest struct {
	filter *tcbf.Partitioned // nil when opaque
	opaque bool
}

func newInterestIndex(cfg tcbf.Config, parts int) *interestIndex {
	return &interestIndex{cfg: cfg, parts: parts, peers: map[uint32]*peerInterest{}}
}

// clamp keeps filter clocks monotonic under out-of-order observers.
// Callers hold ix.mu.
func (ix *interestIndex) clamp(now time.Duration) time.Duration {
	if now > ix.last {
		ix.last = now
	}
	return ix.last
}

// observe records a peer's freshest interest filter encoding. All
// methods tolerate a nil index (tests build bare Mesh values) by
// treating it as permanently empty.
func (ix *interestIndex) observe(peer uint32, encoded []byte, now time.Duration) {
	if ix == nil {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	now = ix.clamp(now)
	f, err := tcbf.DecodePartitioned(encoded, ix.cfg, now)
	if err != nil {
		ix.peers[peer] = &peerInterest{opaque: true}
		ix.stale = true
		return
	}
	ix.peers[peer] = &peerInterest{filter: f}
	ix.stale = true
}

// forget drops a dead peer's entry.
func (ix *interestIndex) forget(peer uint32) {
	if ix == nil {
		return
	}
	ix.mu.Lock()
	if _, ok := ix.peers[peer]; ok {
		delete(ix.peers, peer)
		ix.stale = true
	}
	ix.mu.Unlock()
}

// rebuild reconstitutes the Bloofi tree from the current per-peer
// filters, in peer-ID order. Callers hold ix.mu.
func (ix *interestIndex) rebuild(now time.Duration) error {
	if ix.tree == nil {
		t, err := bloofi.NewTree(bloofi.Backend{}, ix.cfg, ix.parts, now)
		if err != nil {
			return err
		}
		ix.tree = t
	} else {
		ix.tree.Reset(now)
	}
	ids := make([]uint32, 0, len(ix.peers))
	for id, p := range ix.peers {
		if p.filter != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := ix.tree.AbsorbPartitioned(ix.peers[id].filter, now); err != nil {
			return err
		}
	}
	ix.stale = false
	return nil
}

// match returns the peers worth an eager flood contact for a message
// carrying the given keys: every opaque peer (cannot be ruled out), plus
// — only when the aggregate tree's descent says some downstream filter
// holds one of the keys — each decodable peer whose own filter matches.
// Sorted by ID. A filter error degrades to "flood everyone known" rather
// than suppressing dissemination.
func (ix *interestIndex) match(keys []workload.Key, now time.Duration) []uint32 {
	if ix == nil || len(keys) == 0 {
		return nil
	}
	pres := make([]tcbf.PreKey, len(keys))
	for i, k := range keys {
		pres[i] = tcbf.Precompute(string(k))
	}

	ix.mu.Lock()
	ids := make([]uint32, 0, len(ix.peers))
	everyone := false
	now = ix.clamp(now)
	for id, p := range ix.peers {
		if p.opaque {
			ids = append(ids, id)
		}
	}
	if len(ids) < len(ix.peers) { // some peer filters are decodable
		if ix.stale {
			if err := ix.rebuild(now); err != nil {
				everyone = true
			}
		}
		if !everyone {
			hit, err := ix.tree.ContainsAnyPre(pres, now)
			switch {
			case err != nil:
				everyone = true
			case hit:
				for id, p := range ix.peers {
					if p.opaque {
						continue
					}
					ok, err := p.filter.ContainsAnyPre(pres, now)
					if err != nil {
						everyone = true
						break
					}
					if ok {
						ids = append(ids, id)
					}
				}
			}
		}
	}
	if everyone {
		ids = ids[:0]
		for id := range ix.peers {
			ids = append(ids, id)
		}
	}
	ix.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// size reports how many peers have entries (introspection for tests).
func (ix *interestIndex) size() int {
	if ix == nil {
		return 0
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.peers)
}
