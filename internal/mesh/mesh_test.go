package mesh

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsub/internal/core"
	"bsub/internal/livenode"
	"bsub/internal/testutil"
)

// fakeClock is a controllable time base for driving the tick machinery
// by hand.
type fakeClock struct {
	ns atomic.Int64
}

func (c *fakeClock) now() time.Duration      { return time.Duration(c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func newFakeClock(start time.Duration) *fakeClock {
	c := &fakeClock{}
	c.ns.Store(int64(start))
	return c
}

func nodeConfig(id uint32, clock func() time.Duration) livenode.Config {
	return livenode.Config{
		ID:       id,
		Protocol: core.DefaultConfig(0.01),
		TTL:      2 * time.Hour,
		Clock:    clock,
	}
}

// --- Gossip codec -----------------------------------------------------------

func TestGossipCodecRoundTrip(t *testing.T) {
	in := []gossipEntry{
		{ID: 1, Broker: true, Degree: 7, Age: 0, Addr: "127.0.0.1:4000"},
		{ID: 2, Broker: false, Degree: 0, Age: 1500 * time.Millisecond, Addr: "10.0.0.9:81"},
		{ID: 0xdeadbeef, Broker: true, Degree: 65535, Age: 250 * time.Millisecond, Addr: "h"},
	}
	out, err := decodeGossip(encodeGossip(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestGossipCodecClamps(t *testing.T) {
	in := []gossipEntry{{
		ID:     9,
		Degree: 1 << 20,                   // beyond uint16
		Age:    -3 * time.Second,          // clock skew must not go negative on the wire
		Addr:   string(make([]byte, 400)), // beyond maxGossipAddr
	}}
	out, err := decodeGossip(encodeGossip(in))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Degree != 1<<16-1 {
		t.Errorf("degree = %d, want clamped to %d", out[0].Degree, 1<<16-1)
	}
	if out[0].Age != 0 {
		t.Errorf("age = %v, want clamped to 0", out[0].Age)
	}
	if len(out[0].Addr) != maxGossipAddr {
		t.Errorf("addr len = %d, want truncated to %d", len(out[0].Addr), maxGossipAddr)
	}
}

func TestGossipCodecRejectsGarbage(t *testing.T) {
	valid := encodeGossip([]gossipEntry{{ID: 1, Addr: "a:1"}})
	cases := map[string][]byte{
		"empty":          {},
		"one byte":       {gossipVersion},
		"bad version":    {99, 0},
		"count beyond":   {gossipVersion, 3, 0, 0, 0, 1},
		"bad flags":      func() []byte { b := append([]byte(nil), valid...); b[6] = 7; return b }(),
		"truncated addr": valid[:len(valid)-1],
		"trailing bytes": append(append([]byte(nil), valid...), 0xff),
	}
	for name, data := range cases {
		if _, err := decodeGossip(data); !errors.Is(err, errGossipGarbage) {
			t.Errorf("%s: err = %v, want errGossipGarbage", name, err)
		}
	}
}

// --- Membership state machine -----------------------------------------------

// eventLog collects peer events thread-safely.
type eventLog struct {
	mu     sync.Mutex
	events []PeerEvent
}

func (l *eventLog) add(e PeerEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) snapshot() []PeerEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]PeerEvent(nil), l.events...)
}

// newBareMesh builds a mesh around a live node without starting the
// periodic event loop, so tests drive tick() by hand against a fake
// clock.
func newBareMesh(t *testing.T, id uint32, clock *fakeClock, cfg Config, log *eventLog) *Mesh {
	t.Helper()
	cfg.GossipInterval = time.Hour // irrelevant: tick runs manually
	if log != nil {
		cfg.OnPeerChange = log.add
	}
	ncfg := nodeConfig(id, clock.now)
	node, err := livenode.Listen("127.0.0.1:0", ncfg)
	if err != nil {
		t.Fatal(err)
	}
	m := &Mesh{
		node:     node,
		cfg:      cfg.withDefaults(),
		clock:    clock.now,
		selfID:   id,
		selfAddr: node.Addr(),
		closed:   make(chan struct{}),
		members:  map[uint32]*member{},
		rng:      rand.New(rand.NewSource(1)),
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// entry builds a single-entry gossip payload.
func entry(e gossipEntry) []byte { return encodeGossip([]gossipEntry{e}) }

func TestMembershipLifecycle(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newFakeClock(time.Hour)
	var log eventLog
	cfg := Config{
		SuspectAfter:     100 * time.Millisecond,
		DeadAfter:        300 * time.Millisecond,
		ForgetAfter:      time.Second,
		ReconnectBackoff: time.Millisecond,
	}
	m := newBareMesh(t, 1, clock, cfg, &log)

	// A fresh gossip entry lands the peer alive. "127.0.0.1:1" is a black
	// hole: jobs against it fail fast, which is fine — this test is about
	// the table, not the wire.
	m.absorb(entry(gossipEntry{ID: 2, Addr: "127.0.0.1:1", Broker: true, Degree: 3}))
	peers := m.Peers()
	if len(peers) != 1 || peers[0].State != StateAlive || !peers[0].Broker || peers[0].Degree != 3 {
		t.Fatalf("after absorb: peers = %+v", peers)
	}

	// Silence past SuspectAfter turns it suspect; past DeadAfter, dead.
	clock.advance(150 * time.Millisecond)
	m.tick()
	if s := m.Peers()[0].State; s != StateSuspect {
		t.Fatalf("after suspect window: state = %v", s)
	}
	clock.advance(200 * time.Millisecond)
	m.tick()
	if s := m.Peers()[0].State; s != StateDead {
		t.Fatalf("after dead window: state = %v", s)
	}

	// Fresh evidence revives a dead peer (rejoin), with its new address.
	m.absorb(entry(gossipEntry{ID: 2, Addr: "127.0.0.1:2"}))
	p := m.Peers()[0]
	if p.State != StateAlive || p.Addr != "127.0.0.1:2" {
		t.Fatalf("after rejoin: %+v", p)
	}

	// Dead long enough to be forgotten leaves the table entirely. States
	// advance one step per tick: suspect, dead, then the forget sweep.
	clock.advance(400 * time.Millisecond)
	m.tick() // suspect again
	clock.advance(cfg.DeadAfter + cfg.ForgetAfter)
	m.tick() // dead
	m.tick() // forgotten
	if n := len(m.Peers()); n != 0 {
		t.Fatalf("after forget window: %d peers still in table", n)
	}

	st := m.Stats()
	if st.Suspected != 2 || st.Died != 2 || st.Rejoined != 1 || st.Forgotten != 1 {
		t.Errorf("transition counters = %+v", st)
	}
	var kinds []string
	for _, e := range log.snapshot() {
		if e.Fresh {
			kinds = append(kinds, "fresh")
			continue
		}
		kinds = append(kinds, e.From.String()+">"+e.To.String())
	}
	want := []string{"fresh", "alive>suspect", "suspect>dead", "dead>alive", "alive>suspect", "suspect>dead"}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("event sequence = %v, want %v", kinds, want)
	}
}

// TestDeadProbeResurrectsDeadPeer: once a peer is declared dead it gets
// no gossip and no contacts, so without anti-entropy a healed partition
// would stay split forever. The dead-probe path must find it again.
func TestDeadProbeResurrectsDeadPeer(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newFakeClock(time.Hour)

	// The probe target is a full mesh so it answers gossip for real.
	target, err := Start("127.0.0.1:0", nodeConfig(2, nil), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	var log eventLog
	cfg := Config{
		SuspectAfter:      100 * time.Millisecond,
		DeadAfter:         300 * time.Millisecond,
		DeadProbeInterval: 50 * time.Millisecond,
		ReconnectBackoff:  time.Millisecond,
	}
	m := newBareMesh(t, 1, clock, cfg, &log)

	// Walk the target's table entry to dead through pure silence. The
	// probe may fire on the very tick the peer dies (the tick both
	// transitions and schedules), so the death is asserted via counters
	// rather than by catching the transient dead state.
	m.absorb(entry(gossipEntry{ID: 2, Addr: target.Addr()}))
	clock.advance(150 * time.Millisecond)
	m.tick()
	clock.advance(200 * time.Millisecond)
	m.tick()
	m.tick()
	waitFor(t, 5*time.Second, "dead peer resurrected by probe", func() bool {
		return m.Peers()[0].State == StateAlive
	})
	st := m.Stats()
	if st.Died != 1 {
		t.Errorf("Died = %d, want 1 (the peer must actually have been declared dead)", st.Died)
	}
	if st.DeadProbes == 0 {
		t.Error("DeadProbes counter never bumped")
	}
	if st.Rejoined != 1 {
		t.Errorf("Rejoined = %d, want 1", st.Rejoined)
	}
}

// TestDeadProbeDisabled: a negative DeadProbeInterval switches the
// anti-entropy path off.
func TestDeadProbeDisabled(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newFakeClock(time.Hour)
	cfg := Config{
		SuspectAfter:      100 * time.Millisecond,
		DeadAfter:         300 * time.Millisecond,
		DeadProbeInterval: -1,
		ReconnectBackoff:  time.Millisecond,
	}
	m := newBareMesh(t, 1, clock, cfg, nil)

	m.absorb(entry(gossipEntry{ID: 2, Addr: "127.0.0.1:1"}))
	clock.advance(150 * time.Millisecond)
	m.tick()
	clock.advance(200 * time.Millisecond)
	m.tick()
	for i := 0; i < 5; i++ {
		clock.advance(time.Second)
		m.tick()
	}
	if st := m.Stats(); st.DeadProbes != 0 {
		t.Errorf("DeadProbes = %d with probing disabled, want 0", st.DeadProbes)
	}
}

func TestStaleGossipNeverRegresses(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newFakeClock(time.Hour)
	m := newBareMesh(t, 1, clock, Config{ReconnectBackoff: time.Millisecond}, nil)

	m.absorb(entry(gossipEntry{ID: 2, Addr: "127.0.0.1:1", Age: 0}))
	// A much staler view of the same peer arrives: ignored wholesale.
	m.absorb(entry(gossipEntry{ID: 2, Addr: "127.0.0.1:9", Age: time.Minute}))
	if p := m.Peers()[0]; p.Addr != "127.0.0.1:1" {
		t.Errorf("stale gossip overwrote addr: %+v", p)
	}
	// Entries about ourselves are ignored.
	m.absorb(entry(gossipEntry{ID: 1, Addr: "127.0.0.1:9"}))
	if n := len(m.Peers()); n != 1 {
		t.Errorf("self entry entered the table: %d peers", n)
	}
	// Garbage bumps the counter and changes nothing.
	m.absorb([]byte{99, 99, 99})
	if st := m.Stats(); st.GossipGarbage != 1 || len(m.Peers()) != 1 {
		t.Errorf("garbage handling: %+v", st)
	}
}

func TestDigestSelfFirstAndBounded(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newFakeClock(time.Hour)
	cfg := Config{GossipEntries: 4, ReconnectBackoff: time.Millisecond}
	m := newBareMesh(t, 1, clock, cfg, nil)
	for id := uint32(2); id <= 10; id++ {
		m.absorb(entry(gossipEntry{ID: id, Addr: "127.0.0.1:1", Age: time.Duration(id) * time.Millisecond}))
	}
	entries, err := decodeGossip(m.digest())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("digest carries %d entries, want GossipEntries = 4", len(entries))
	}
	if entries[0].ID != 1 || entries[0].Age != 0 || entries[0].Addr != m.Addr() {
		t.Errorf("digest[0] = %+v, want self with age 0", entries[0])
	}
	// The remaining slots go to the freshest peers (smallest age).
	for i, want := range []uint32{2, 3, 4} {
		if entries[1+i].ID != want {
			t.Errorf("digest[%d].ID = %d, want %d (freshest first)", 1+i, entries[1+i].ID, want)
		}
	}
}

// --- Worker backpressure ----------------------------------------------------

func TestEnqueueCoalescesOnOverflow(t *testing.T) {
	m := &Mesh{} // counters only
	w := newPeerWorker(m, 2, 1, 1)
	// Pretend a drain is already live so enqueue never spawns one and the
	// queue state stays inspectable.
	w.mu.Lock()
	w.running = true
	w.mu.Unlock()

	w.enqueue(jobGossip)  // fills the depth-1 queue
	w.enqueue(jobContact) // overflow: coalesces
	w.enqueue(jobGossip)  // gossip overflow folds into the same token
	if st := m.Stats(); st.QueueCoalesced != 2 {
		t.Errorf("QueueCoalesced = %d, want 2", st.QueueCoalesced)
	}

	// Drain by hand: the queued job first, then the single catch-up
	// contact the overflow collapsed into, then the worker parks.
	if j, ok := w.next(); !ok || j != jobGossip {
		t.Errorf("next() = %v, %v, want the queued gossip job", j, ok)
	}
	if j, ok := w.next(); !ok || j != jobContact {
		t.Errorf("next() = %v, %v, want the coalesced catch-up contact", j, ok)
	}
	if _, ok := w.next(); ok {
		t.Error("next() produced a job from an empty worker")
	}
	w.mu.Lock()
	parked := !w.running
	w.mu.Unlock()
	if !parked {
		t.Error("drained worker did not park")
	}

	// A stopped worker swallows enqueues and produces nothing.
	w.stop()
	w.stop() // idempotent
	w.enqueue(jobContact)
	if _, ok := w.next(); ok {
		t.Error("stopped worker produced a job")
	}
}

func TestJitteredDelaySpread(t *testing.T) {
	const backoff = 100 * time.Millisecond
	for _, sample := range []float64{0, 0.25, 0.5, 0.999999} {
		d := jitteredDelay(backoff, sample)
		if d < backoff/2 || d >= backoff {
			t.Errorf("jitteredDelay(%v, %v) = %v, want in [%v, %v)", backoff, sample, d, backoff/2, backoff)
		}
	}
	if jitteredDelay(backoff, 0) == jitteredDelay(backoff, 0.9) {
		t.Error("jitter samples collapse to one delay")
	}
}

// --- Live mesh --------------------------------------------------------------

func fastConfig(seeds ...string) Config {
	return Config{
		GossipInterval:      10 * time.Millisecond,
		ContactInterval:     30 * time.Millisecond,
		SuspectAfter:        150 * time.Millisecond,
		DeadAfter:           500 * time.Millisecond,
		ForgetAfter:         5 * time.Second,
		ReconnectBackoff:    5 * time.Millisecond,
		MaxReconnectBackoff: 100 * time.Millisecond,
		Seeds:               seeds,
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMeshConvergenceAndDissemination(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	const n = 5
	meshes := make([]*Mesh, 0, n)
	var seedAddr string
	var got sink
	for i := 0; i < n; i++ {
		ncfg := nodeConfig(uint32(i+1), nil)
		var cfg Config
		if seedAddr != "" {
			cfg = fastConfig(seedAddr)
		} else {
			cfg = fastConfig()
		}
		cfg.Seed = int64(i + 1)
		if i == n-1 {
			ncfg.OnDeliver = got.deliver
		}
		m, err := Start("127.0.0.1:0", ncfg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = m.Close() })
		if seedAddr == "" {
			seedAddr = m.Addr()
		}
		meshes = append(meshes, m)
	}
	meshes[n-1].Subscribe("news")

	// Membership converges transitively from a single seed.
	waitFor(t, 10*time.Second, "full membership", func() bool {
		for _, m := range meshes {
			st := m.Stats()
			if st.Alive != n-1 {
				return false
			}
		}
		return true
	})

	// A publish on node 1 reaches node n's subscription through contact
	// sessions alone.
	if _, err := meshes[0].Publish([]byte("over the mesh"), "news"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "delivery", func() bool { return got.count() >= 1 })
	if p := got.payloads()[0]; p != "over the mesh" {
		t.Errorf("payload = %q", p)
	}
	if got.count() > 1 {
		t.Errorf("delivered %d times, want exactly once", got.count())
	}

	// Delivery can complete before node 1's own outbound contact does
	// (the subscriber may pull the message over a contact it initiated),
	// so the counters are eventually-nonzero, not instantly.
	waitFor(t, 10*time.Second, "counters on a converged mesh", func() bool {
		st := meshes[0].Stats()
		return st.GossipAbsorbed > 0 && st.Contacts > 0
	})
}

func TestMeshCloseIsIdempotent(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	m, err := Start("127.0.0.1:0", nodeConfig(1, nil), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// sink collects deliveries thread-safely.
type sink struct {
	mu   sync.Mutex
	msgs []livenode.Delivery
}

func (s *sink) deliver(d livenode.Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, d)
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) payloads() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.msgs))
	for i, d := range s.msgs {
		out[i] = string(d.Payload)
	}
	return out
}
