package filtertest

import (
	"math/rand"
	"testing"

	"bsub/internal/bloofi"
	"bsub/internal/filter"
)

// Subjects is the backend matrix under conformance: the packed TCBF
// default (single and multi-partition), the retouched decorator, the
// autoscaling stack, and the Bloofi tree. Small autoscale/bloofi knobs
// force growth and folding inside short tapes.
func subjects() []Subject {
	return []Subject{
		{Name: "tcbf", Backend: filter.Packed{}, Partitions: 1},
		{Name: "tcbf-part3", Backend: filter.Packed{}, Partitions: 3},
		{Name: "retouched", Backend: filter.Retouched{MaxFill: 0.12}, Partitions: 1},
		{Name: "autoscale", Backend: filter.Autoscale{GrowAt: 0.05, MaxLayers: 4}, Partitions: 1},
		{Name: "bloofi", Backend: bloofi.Backend{Branching: 2, MaxLeaves: 8}, Partitions: 1},
	}
}

// TestFilterConformance drives every backend through random op tapes in
// lockstep with the key-level reference model; it runs under -race in
// make check.
func TestFilterConformance(t *testing.T) {
	const ops = 300
	for _, sub := range subjects() {
		t.Run(sub.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tape := make([]byte, 2*ops)
				rng.Read(tape)
				RunTape(t, sub, tape)
			}
		})
	}
}

// FuzzFilterModel hands the conformance interpreter to the fuzzer: the
// first tape byte picks the backend, the rest is the op tape, and any
// input on which a backend violates its declared laws is a real bug.
func FuzzFilterModel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 3, 0, 5, 1, 7, 2})                // insert, merge, query, wire
	f.Add([]byte{2, 0, 0, 2, 90, 6, 0, 4, 0, 6, 0})               // retouched: decay then M-merge
	f.Add([]byte{3, 0, 3, 8, 16, 2, 200, 5, 3, 7, 0, 9, 0})       // autoscale: DF retune, burst
	f.Add([]byte{4, 1, 5, 3, 0, 0, 5, 8, 4, 1, 7, 4, 0, 2, 30})   // bloofi: merged-insert path
	f.Add([]byte{1, 0, 1, 1, 1, 9, 0, 6, 1, 9, 0, 6, 1, 2, 255})  // partitions: saturation, decay
	f.Add([]byte{3, 0, 0, 10, 1, 5, 0, 10, 255, 6, 0, 11, 3})     // sub-tick carry + monotonicity
	f.Add([]byte{4, 9, 0, 9, 1, 9, 2, 9, 3, 7, 0, 5, 0})          // bloofi: fold under burst, wire
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) < 1 {
			t.Skip("empty tape")
		}
		if len(tape) > 2048 {
			t.Skip("tape longer than useful")
		}
		subs := subjects()
		RunTape(t, subs[int(tape[0])%len(subs)], tape[1:])
	})
}
