package filtertest

import (
	"fmt"
	"math"
	"testing"
	"time"

	"bsub/internal/filter"
	"bsub/internal/tcbf"
)

// Standalone cross-backend property tests. The differential tape harness
// (filtertest.go) checks the same contract statistically; these pin each
// law directly, one property per test, so a violation fails with the
// backend's name and the property on the first line.

// newSubjectFilter builds a fresh filter for a conformance subject.
func newSubjectFilter(t *testing.T, sub Subject, now time.Duration) filter.Filter {
	t.Helper()
	f, err := sub.Backend.New(DefaultConfig(), sub.Partitions, now)
	if err != nil {
		t.Fatalf("%s: New: %v", sub.Name, err)
	}
	return f
}

// TestPropertyNoFalseNegatives: backends declaring NoFalseNegatives must
// report every inserted key present until decay takes its counter to
// zero.
func TestPropertyNoFalseNegatives(t *testing.T) {
	t0 := time.Hour
	for _, sub := range subjects() {
		laws := sub.Backend.Laws()
		if !laws.NoFalseNegatives {
			continue
		}
		t.Run(sub.Name, func(t *testing.T) {
			f := newSubjectFilter(t, sub, t0)
			for _, k := range Keys {
				if err := f.Insert(k, t0); err != nil {
					t.Fatalf("%s: insert %q: %v", sub.Name, k, err)
				}
			}
			// Initial=3, DF=1/min: every key outlives the first 2 minutes.
			for _, dt := range []time.Duration{0, 30 * time.Second, 2 * time.Minute} {
				for _, k := range Keys {
					ok, err := f.Contains(k, t0+dt)
					if err != nil {
						t.Fatalf("%s: contains %q: %v", sub.Name, k, err)
					}
					if !ok {
						t.Errorf("%s: no-false-negatives: key %q absent %v after insert",
							sub.Name, k, dt)
					}
				}
			}
		})
	}
}

// TestPropertyBoundedFalseNegatives: backends declaring
// BoundedFalseNegatives (the retouched decorator) may drop keys, but
// only keys whose true collision-free counter is at or below the
// filter's reported cutoff.
func TestPropertyBoundedFalseNegatives(t *testing.T) {
	t0 := time.Hour
	ran := false
	for _, sub := range subjects() {
		laws := sub.Backend.Laws()
		if !laws.BoundedFalseNegatives {
			continue
		}
		ran = true
		t.Run(sub.Name, func(t *testing.T) {
			f := newSubjectFilter(t, sub, t0)
			c, ok := f.(interface{ Cutoff() float64 })
			if !ok {
				t.Fatalf("%s: bounded-false-negatives declared but no Cutoff() accessor", sub.Name)
			}
			// Insert enough keys to push fill past the retouch bound so
			// clearing actually happens; all keys share one insert time, so
			// their true counter is Initial minus elapsed decay.
			keys := append([]string{}, Keys...)
			for i := 0; i < 20; i++ {
				keys = append(keys, fmt.Sprintf("bulk-%02d", i))
			}
			for _, k := range keys {
				if err := f.Insert(k, t0); err != nil {
					t.Fatalf("%s: insert %q: %v", sub.Name, k, err)
				}
			}
			now := t0 + 30*time.Second
			trueCounter := DefaultConfig().Initial - 0.5*DefaultConfig().DecayPerMinute
			dropped := 0
			for _, k := range keys {
				ok, err := f.Contains(k, now)
				if err != nil {
					t.Fatalf("%s: contains %q: %v", sub.Name, k, err)
				}
				if ok {
					continue
				}
				dropped++
				if trueCounter > c.Cutoff() {
					t.Errorf("%s: bounded-false-negatives: key %q absent with true counter %.4g above cutoff %.4g",
						sub.Name, k, trueCounter, c.Cutoff())
				}
			}
			if dropped == 0 {
				t.Errorf("%s: retouch bound %v never cleared a key out of %d — the bound is not being exercised",
					sub.Name, sub.Backend, len(keys))
			}
		})
	}
	if !ran {
		t.Fatal("no backend declares BoundedFalseNegatives; the retouched decorator is missing from the matrix")
	}
}

// TestPropertyMergeCommutative: backends declaring MergeCommutative must
// produce identical post-merge counter state whichever side absorbs the
// other, for both the additive and the maximum merge.
func TestPropertyMergeCommutative(t *testing.T) {
	t0 := time.Hour
	for _, sub := range subjects() {
		laws := sub.Backend.Laws()
		if !laws.MergeCommutative {
			continue
		}
		for _, mode := range []string{"amerge", "mmerge"} {
			mode := mode
			t.Run(sub.Name+"/"+mode, func(t *testing.T) {
				build := func(keys []string, reps int) filter.Filter {
					f := newSubjectFilter(t, sub, t0)
					for r := 0; r < reps; r++ {
						for _, k := range keys {
							if err := f.Insert(k, t0); err != nil {
								t.Fatalf("%s: insert %q: %v", sub.Name, k, err)
							}
						}
					}
					return f
				}
				// Overlapping key sets with different reinforcement depth,
				// so addition and maximum actually differ.
				ab, ba := build(Keys[:8], 2), build(Keys[4:], 1)
				a2, b2 := build(Keys[:8], 2), build(Keys[4:], 1)
				merge := func(dst, src filter.Filter) error {
					if mode == "amerge" {
						return dst.AMerge(src, t0)
					}
					return dst.MMerge(src, t0)
				}
				if err := merge(ab, ba); err != nil {
					t.Fatalf("%s: %s A<-B: %v", sub.Name, mode, err)
				}
				if err := merge(b2, a2); err != nil {
					t.Fatalf("%s: %s B<-A: %v", sub.Name, mode, err)
				}
				if ab.SetBits() != b2.SetBits() {
					t.Errorf("%s: merge-commutative: %s set bits %d vs %d by merge order",
						sub.Name, mode, ab.SetBits(), b2.SetBits())
				}
				for _, k := range Keys {
					pk := tcbf.Precompute(k)
					ca, err := ab.MinCounterPre(pk, t0)
					if err != nil {
						t.Fatal(err)
					}
					cb, err := b2.MinCounterPre(pk, t0)
					if err != nil {
						t.Fatal(err)
					}
					if ca != cb {
						t.Errorf("%s: merge-commutative: %s key %q counter %g vs %g by merge order",
							sub.Name, mode, k, ca, cb)
					}
				}
			})
		}
	}
}

// TestPropertyWireRoundTrip: encoding and decoding must never lose
// membership on any backend; backends declaring RoundTripExact must also
// reproduce membership exactly and counters within the 1-byte wire
// quantization (maxCounter/255 plus one clamp tick).
func TestPropertyWireRoundTrip(t *testing.T) {
	t0 := time.Hour
	for _, sub := range subjects() {
		laws := sub.Backend.Laws()
		t.Run(sub.Name, func(t *testing.T) {
			f := newSubjectFilter(t, sub, t0)
			for _, k := range Keys[:8] {
				if err := f.Insert(k, t0); err != nil {
					t.Fatalf("%s: insert %q: %v", sub.Name, k, err)
				}
			}
			now := t0 + 45*time.Second
			for _, mode := range []tcbf.CounterMode{tcbf.CountersNone, tcbf.CountersFull} {
				data, err := f.Encode(mode)
				if err != nil {
					t.Fatalf("%s: encode mode %d: %v", sub.Name, mode, err)
				}
				cp := newSubjectFilter(t, sub, now)
				if err := cp.DecodeInto(data, now); err != nil {
					t.Fatalf("%s: decode mode %d: %v", sub.Name, mode, err)
				}
				for _, k := range Keys {
					was, err := f.Contains(k, now)
					if err != nil {
						t.Fatal(err)
					}
					is, err := cp.Contains(k, now)
					if err != nil {
						t.Fatal(err)
					}
					if was && !is {
						t.Errorf("%s: wire-round-trip: key %q lost across the wire (mode %d)",
							sub.Name, k, mode)
					}
					if laws.RoundTripExact && was != is {
						t.Errorf("%s: wire-round-trip: key %q membership %v -> %v across the wire (mode %d)",
							sub.Name, k, was, is, mode)
					}
				}
				if laws.RoundTripExact && mode == tcbf.CountersFull {
					quantum := DefaultConfig().Initial / 1024
					tol := (32767.0/255 + 1) * quantum
					for _, k := range Keys {
						pk := tcbf.Precompute(k)
						orig, err := f.MinCounterPre(pk, now)
						if err != nil {
							t.Fatal(err)
						}
						got, err := cp.MinCounterPre(pk, now)
						if err != nil {
							t.Fatal(err)
						}
						if math.Abs(orig-got) > tol {
							t.Errorf("%s: wire-round-trip: key %q counter %g -> %g beyond quantization tolerance %g",
								sub.Name, k, orig, got, tol)
						}
					}
				}
				// A decoded filter carries a peer's interests; genuine
				// inserts must be refused uniformly.
				if err := cp.Insert("genuine-after-decode", now); err == nil {
					t.Errorf("%s: wire-round-trip: decoded filter accepted a genuine insert (mode %d)",
						sub.Name, mode)
				}
			}
		})
	}
}

// TestPropertyDecayMonotone: with no inserts, a key's counter must never
// increase as time passes, and must reach zero (membership gone) after
// its lifetime Initial/DF plus the structural slack.
func TestPropertyDecayMonotone(t *testing.T) {
	t0 := time.Hour
	for _, sub := range subjects() {
		t.Run(sub.Name, func(t *testing.T) {
			f := newSubjectFilter(t, sub, t0)
			for _, k := range Keys {
				if err := f.Insert(k, t0); err != nil {
					t.Fatalf("%s: insert %q: %v", sub.Name, k, err)
				}
			}
			last := make(map[string]float64, len(Keys))
			for _, k := range Keys {
				last[k] = math.Inf(1)
			}
			for dt := time.Duration(0); dt <= 4*time.Minute; dt += 20 * time.Second {
				now := t0 + dt
				for _, k := range Keys {
					c, err := f.MinCounterPre(tcbf.Precompute(k), now)
					if err != nil {
						t.Fatalf("%s: counter %q: %v", sub.Name, k, err)
					}
					if c > last[k] {
						t.Errorf("%s: decay-monotone: key %q counter rose %g -> %g at +%v",
							sub.Name, k, last[k], c, dt)
					}
					last[k] = c
				}
			}
			// Initial=3, DF=1/min: all counters are zero from 3min on; the
			// loop above ends at +4min, so membership must be gone now.
			for _, k := range Keys {
				ok, err := f.Contains(k, t0+4*time.Minute)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Errorf("%s: decay-monotone: key %q still present a full minute past its lifetime",
						sub.Name, k)
				}
			}
		})
	}
}
