// Package filtertest is the differential conformance harness for
// implementations of the internal/filter seam. It generalizes the TCBF's
// map-of-counters reference model (internal/tcbf's model test) from one
// concrete filter to *any* backend: a deliberately naive key-level model
// tracks every key's membership strength in integer ticks — insert
// adopts the filter's own observed post-insert minimum counter (the one
// commitment a Bloom-family insert makes: collider-held positions are
// not refreshed, so a fully covered key inherits the colliders' shorter
// lifetime, while an uncovered key gets exactly 1024 ticks), decay
// erodes whole ticks eagerly with a
// nanosecond remainder, A-merge saturate-adds when the backend declares
// AdditiveAMerge and takes the max otherwise (a Bloofi absorb or a
// layer-wise autoscale merge keeps membership but not summed strength,
// so an additive model would outlive the filter under decay), M-merge
// takes the max — and a randomized op tape drives a backend pair and the
// model pair in lockstep, checking after every op exactly the guarantees
// the backend's filter.Laws declaration claims:
//
//   - NoFalseNegatives: a key whose true counter is still comfortably
//     positive must be reported present.
//   - BoundedFalseNegatives: a false negative is allowed only for keys
//     whose true counter is at or below the backend's advertised Cutoff.
//   - ExactCounters: on keys proven collision-free (by set-bit
//     additivity probing through the backend's own API), MinCounter must
//     equal the model tick-for-tick, and the preferential query must
//     equal the Section IV-A formula on model counters.
//   - RoundTripExact: Encode→DecodeInto must reproduce membership
//     exactly and counters to within the wire format's declared
//     precision — CountersFull quantizes each counter to one byte
//     relative to the filter's maximum (Section VI-C), so a round
//     trip may move a counter by up to max/255 plus one tick, and the
//     clamp that keeps set bits set can lift a near-zero counter by
//     the same amount. For every backend, decoded state must at least
//     preserve membership and reject further inserts (the uniform
//     merged-state contract).
//
// Backends are also held to law-independent invariants: insert must fail
// with tcbf.ErrMerged exactly when the model is merged, and MinCounter
// must be positive exactly when Contains is true (which exercises, e.g.,
// Bloofi's aggregate-pruning descent against its own membership logic).
//
// Two tolerances keep the checks honest rather than lenient. Collisions
// can only ever inflate a key's filter counters above its true counter,
// so a filter value below the model is a bug — but only on collision-free
// keys is equality required. And backends that shard state across
// internal filters created at different times (autoscale layers, Bloofi
// leaves) carry independent sub-tick decay remainders, each structural
// hop (a leaf fold, a layer merge) shifting a key's expiry by up to one
// tick against the model — so membership checks grant a 16-tick boundary
// allowance (1.6% of one insert's 1024 ticks); a real false-negative bug
// (a cleared or lost key) fails by hundreds of ticks, not sixteen.
package filtertest

import (
	"errors"
	"math"
	"testing"
	"time"

	"bsub/internal/filter"
	"bsub/internal/tcbf"
)

// Model constants restating the packed representation's documented
// fixed-point scheme independently: Insert writes 1024 ticks, a counter
// saturates at 32767 ticks.
const (
	refInitTicks = 1024
	refLaneMax   = 32767
)

// refTickNanos restates the tick duration longhand: the nanoseconds DF
// takes to erode one tick's worth (Initial/1024) of counter value.
func refTickNanos(initial, perMinute float64) int64 {
	if perMinute <= 0 {
		return 0
	}
	quantum := initial / refInitTicks
	t := math.Round(quantum / perMinute * float64(time.Minute))
	if t < 1 {
		return 1
	}
	if t >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(t)
}

// refModel is the key-level reference: each key's true counter assuming
// no hash collisions ever happen. Filters can only look better than this
// (collisions inflate counters), never worse — except where a backend's
// Laws explicitly trade that away.
type refModel struct {
	cfg       tcbf.Config
	c         map[string]uint32 // key → counter ticks
	last      time.Duration
	merged    bool
	tickNanos int64
	remNanos  int64
}

func newRefModel(cfg tcbf.Config, now time.Duration) *refModel {
	return &refModel{
		cfg:       cfg,
		c:         make(map[string]uint32),
		last:      now,
		tickNanos: refTickNanos(cfg.Initial, cfg.DecayPerMinute),
	}
}

func (r *refModel) advance(now time.Duration) {
	elapsed := now - r.last
	r.last = now
	if elapsed == 0 || r.tickNanos == 0 {
		return
	}
	r.remNanos += int64(elapsed)
	if r.remNanos < 0 {
		r.remNanos = math.MaxInt64
	}
	ticks := uint64(r.remNanos / r.tickNanos)
	r.remNanos %= r.tickNanos
	if ticks == 0 {
		return
	}
	if ticks > refLaneMax {
		ticks = refLaneMax
	}
	for k, c := range r.c {
		if uint64(c) <= ticks {
			delete(r.c, k)
		} else {
			r.c[k] = c - uint32(ticks)
		}
	}
}

// insertGate advances the model and mirrors the merged-state insert
// rejection; on success the caller records the outcome per key with
// adopt.
func (r *refModel) insertGate(now time.Duration) error {
	if r.merged {
		return tcbf.ErrMerged
	}
	r.advance(now)
	return nil
}

// adopt records the filter's own post-insert minimum counter for key.
// That observation is the only membership commitment a Bloom-family
// insert makes: positions already holding collider counters are not
// refreshed, so a key whose positions are fully covered by other keys'
// bits inherits the colliders' remaining lifetime instead of a fresh
// refInitTicks — and for an uncovered key the adopted value is exactly
// refInitTicks. From the adoption on, decay erodes it deterministically
// and merges may only raise it, which is what the membership laws
// assert.
func (r *refModel) adopt(key string, ticks uint32) {
	if ticks == 0 {
		delete(r.c, key)
		return
	}
	if ticks > refLaneMax {
		ticks = refLaneMax
	}
	r.c[key] = ticks
}

func (r *refModel) merge(other *refModel, now time.Duration, additive bool) {
	r.advance(now)
	other.advance(now)
	for k, c := range other.c {
		switch {
		case r.c[k] == 0:
			r.c[k] = c
		case additive:
			sum := uint64(r.c[k]) + uint64(c)
			if sum > refLaneMax {
				sum = refLaneMax
			}
			r.c[k] = uint32(sum)
		case c > r.c[k]:
			r.c[k] = c
		}
	}
	r.merged = true
}

func (r *refModel) ticks(key string, now time.Duration) uint32 {
	r.advance(now)
	return r.c[key]
}

func (r *refModel) counter(key string, now time.Duration) float64 {
	return float64(r.ticks(key, now)) * (r.cfg.Initial / refInitTicks)
}

func (r *refModel) setDF(perMinute float64, now time.Duration) {
	r.advance(now)
	r.cfg.DecayPerMinute = perMinute
	r.tickNanos = refTickNanos(r.cfg.Initial, perMinute)
}

func (r *refModel) reset(now time.Duration) {
	r.c = make(map[string]uint32)
	r.last = now
	r.merged = false
	r.remNanos = 0
}

// Keys is the op-tape key universe. Small enough that the fuzzer can
// express every key, large enough that M=256/K=4 leaves both some
// colliding and some provably collision-free keys.
var Keys = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
	"golf", "hotel", "india", "juliet", "kilo", "lima",
}

// IsolatedKeys returns the subset of Keys sharing no filter position with
// any other universe key, probed through the backend geometry's own
// set-bit accounting: a fresh packed filter holding every key except k
// gains exactly k's solo set-bit count when k is added iff k's positions
// are untouched by the rest. Only on these keys can a backend be held to
// exact counter equality with the key-level model.
func IsolatedKeys(t *testing.T, cfg tcbf.Config, partitions int) map[string]bool {
	t.Helper()
	solo := make(map[string]int, len(Keys))
	for _, k := range Keys {
		f := filter.MustNew(filter.Packed{}, cfg, partitions, 0)
		if err := f.Insert(k, 0); err != nil {
			t.Fatalf("isolation probe insert %q: %v", k, err)
		}
		solo[k] = f.SetBits()
	}
	isolated := make(map[string]bool)
	for _, k := range Keys {
		f := filter.MustNew(filter.Packed{}, cfg, partitions, 0)
		for _, other := range Keys {
			if other != k {
				if err := f.Insert(other, 0); err != nil {
					t.Fatalf("isolation probe insert %q: %v", other, err)
				}
			}
		}
		rest := f.SetBits()
		if err := f.Insert(k, 0); err != nil {
			t.Fatalf("isolation probe insert %q: %v", k, err)
		}
		if f.SetBits() == rest+solo[k] {
			isolated[k] = true
		}
	}
	return isolated
}

// cutoffer is the optional interface a BoundedFalseNegatives backend
// exposes for its false-negative bound.
type cutoffer interface{ Cutoff() float64 }

// Subject names one backend configuration under conformance test.
type Subject struct {
	Name       string
	Backend    filter.Backend
	Partitions int
}

// state drives one backend pair and one model pair in lockstep.
type state struct {
	t        *testing.T
	sub      Subject
	laws     filter.Laws
	cfg      tcbf.Config
	quantum  float64
	f1, f2   filter.Filter
	scratch  filter.Filter
	r1, r2   *refModel
	isolated map[string]bool
	now      time.Duration
}

func newState(t *testing.T, sub Subject, cfg tcbf.Config) *state {
	t.Helper()
	st := &state{
		t:       t,
		sub:     sub,
		laws:    sub.Backend.Laws(),
		cfg:     cfg,
		quantum: cfg.Initial / refInitTicks,
		f1:      filter.MustNew(sub.Backend, cfg, sub.Partitions, 0),
		f2:      filter.MustNew(sub.Backend, cfg, sub.Partitions, 0),
		scratch: filter.MustNew(sub.Backend, cfg, sub.Partitions, 0),
		r1:      newRefModel(cfg, 0),
		r2:      newRefModel(cfg, 0),
	}
	if st.laws.ExactCounters {
		st.isolated = IsolatedKeys(t, cfg, sub.Partitions)
	}
	return st
}

// fail reports a law violation, naming the backend and the property.
func (st *state) fail(property, format string, args ...any) {
	st.t.Helper()
	st.t.Fatalf("backend=%s property=%s: "+format,
		append([]any{st.sub.Name, property}, args...)...)
}

// slack is the membership boundary allowance: internal filters created at
// different times (autoscale layers, Bloofi leaves) decay with sub-tick
// remainder phases up to one tick apart, and every structural hop — a
// Bloofi leaf fold, a layer-wise merge, a DF retune re-scaling a carried
// remainder — can shift a key's effective expiry by up to one more tick
// against the model. Sixteen ticks bounds any realistic hop count while
// staying a sliver (1.6%) of a single insert's 1024 ticks.
func (st *state) slack() float64 { return 16 * st.quantum }

// checkKey holds one filter/model pair to the declared laws for one key.
func (st *state) checkKey(tag, name string, f filter.Filter, r *refModel, key string) {
	st.t.Helper()
	pre := tcbf.Precompute(key)
	has, err := f.ContainsPre(pre, st.now)
	if err != nil {
		st.fail("query", "%s: %s contains %q: %v", tag, name, key, err)
	}
	minC, err := f.MinCounterPre(pre, st.now)
	if err != nil {
		st.fail("query", "%s: %s min counter %q: %v", tag, name, key, err)
	}
	if (minC > 0) != has {
		st.fail("counter-membership-consistency",
			"%s: %s key %q: MinCounter %v but Contains %v", tag, name, key, minC, has)
	}
	ref := r.counter(key, st.now)
	if !has && ref > 0 {
		switch {
		case st.laws.NoFalseNegatives && ref > st.slack():
			st.fail("no-false-negatives",
				"%s: %s key %q absent with true counter %v", tag, name, key, ref)
		case st.laws.BoundedFalseNegatives:
			bound := st.slack()
			if c, ok := f.(cutoffer); ok {
				bound += c.Cutoff()
			}
			if ref > bound {
				st.fail("bounded-false-negatives",
					"%s: %s key %q absent with true counter %v above cutoff bound %v",
					tag, name, key, ref, bound)
			}
		}
	}
	if st.laws.ExactCounters && st.isolated[key] && minC != ref {
		st.fail("exact-counters",
			"%s: %s key %q min counter %v, model %v", tag, name, key, minC, ref)
	}
}

// checkAll sweeps the whole key universe on both pairs after an op.
func (st *state) checkAll(tag string) {
	st.t.Helper()
	for _, key := range Keys {
		st.checkKey(tag, "f1", st.f1, st.r1, key)
		st.checkKey(tag, "f2", st.f2, st.r2, key)
	}
}

// step applies one (op, arg) tape pair to filters and models in lockstep.
func (st *state) step(op, arg byte) {
	st.t.Helper()
	key := Keys[int(arg)%len(Keys)]
	switch op % 12 {
	case 0, 1: // insert (single or batch) into f1 / f2
		f, r := st.f1, st.r1
		if op%12 == 1 {
			f, r = st.f2, st.r2
		}
		keys := []string{key}
		var ferr error
		if arg%2 == 0 {
			ferr = f.InsertPre(tcbf.Precompute(key), st.now)
		} else {
			keys = append(keys, Keys[(int(arg)+5)%len(Keys)])
			ferr = f.InsertAllPre([]tcbf.PreKey{tcbf.Precompute(keys[0]), tcbf.Precompute(keys[1])}, st.now)
		}
		rerr := r.insertGate(st.now)
		if (ferr != nil) != (rerr != nil) {
			st.fail("merged-insert-parity",
				"insert %q: filter err %v, model err %v", key, ferr, rerr)
		}
		if ferr != nil && !errors.Is(ferr, tcbf.ErrMerged) {
			st.fail("merged-insert-parity", "insert %q: err %v is not ErrMerged", key, ferr)
		}
		if ferr == nil {
			for _, k := range keys {
				minC, err := f.MinCounterPre(tcbf.Precompute(k), st.now)
				if err != nil {
					st.fail("query", "min counter after insert %q: %v", k, err)
				}
				if st.laws.NoFalseNegatives && minC <= 0 {
					st.fail("no-false-negatives",
						"key %q absent immediately after insert", k)
				}
				r.adopt(k, uint32(math.Round(minC/st.quantum)))
			}
		}
	case 2: // whole seconds pass
		st.advance(st.now + time.Duration(arg)*time.Second)
	case 3: // A-merge f2 into f1
		if err := st.f1.AMerge(st.f2, st.now); err != nil {
			st.fail("merge", "amerge: %v", err)
		}
		st.r1.merge(st.r2, st.now, st.laws.AdditiveAMerge)
	case 4: // M-merge f2 into f1
		if err := st.f1.MMerge(st.f2, st.now); err != nil {
			st.fail("merge", "mmerge: %v", err)
		}
		st.r1.merge(st.r2, st.now, false)
	case 5: // query surface consistency: plain, precomputed, batched
		pre := tcbf.Precompute(key)
		got, err := st.f1.Contains(key, st.now)
		if err != nil {
			st.fail("query", "contains: %v", err)
		}
		gotPre, err := st.f1.ContainsPre(pre, st.now)
		if err != nil {
			st.fail("query", "contains pre: %v", err)
		}
		gotAny, err := st.f1.ContainsAnyPre([]tcbf.PreKey{pre}, st.now)
		if err != nil {
			st.fail("query", "contains any pre: %v", err)
		}
		if got != gotPre || got != gotAny {
			st.fail("query-surface-consistency",
				"contains %q = %v / pre %v / any %v", key, got, gotPre, gotAny)
		}
	case 6: // preferential query, f2 as peer
		got, err := st.f1.PreferencePre(tcbf.Precompute(key), st.f2, st.now)
		if err != nil {
			st.fail("preference", "preference %q: %v", key, err)
		}
		if st.laws.ExactCounters && st.isolated[key] {
			peer := st.r2.counter(key, st.now)
			self := st.r1.counter(key, st.now)
			want := peer
			if self != 0 {
				want = peer - self
			}
			if got != want {
				st.fail("exact-counters", "preference %q = %v, model %v", key, got, want)
			}
		}
	case 7: // wire round-trip through the scratch filter
		st.checkWire()
	case 8: // retune DF on f1; occasionally reset f2 to unlock inserts
		df := float64(arg%40) / 8.0
		if err := st.f1.SetDecayFactor(df, st.now); err != nil {
			st.fail("decay", "set df: %v", err)
		}
		st.r1.setDF(df, st.now)
		if arg%4 == 0 {
			st.f2.Reset(st.now)
			st.r2.reset(st.now)
		}
	case 9: // reinforcement burst toward saturation
		for j := 0; j < 20; j++ {
			if err := st.f1.AMerge(st.f2, st.now); err != nil {
				st.fail("merge", "amerge burst: %v", err)
			}
			st.r1.merge(st.r2, st.now, st.laws.AdditiveAMerge)
		}
	case 10: // sub-tick time: the nanosecond remainder carry
		st.advance(st.now + time.Duration(arg)*37*time.Millisecond)
	case 11: // decay monotonicity across an advance
		before := make([]float64, len(Keys))
		for i, k := range Keys {
			c, err := st.f1.MinCounterPre(tcbf.Precompute(k), st.now)
			if err != nil {
				st.fail("query", "min counter %q: %v", k, err)
			}
			before[i] = c
		}
		st.advance(st.now + time.Duration(arg)*time.Second)
		for i, k := range Keys {
			after, err := st.f1.MinCounterPre(tcbf.Precompute(k), st.now)
			if err != nil {
				st.fail("query", "min counter %q: %v", k, err)
			}
			if after > before[i] {
				st.fail("decay-monotonicity",
					"key %q min counter rose %v -> %v across pure time", k, before[i], after)
			}
		}
	}
	st.checkAll("after op")
}

func (st *state) advance(to time.Duration) {
	st.t.Helper()
	st.now = to
	if err := st.f1.Advance(st.now); err != nil {
		st.fail("decay", "advance f1: %v", err)
	}
	if err := st.f2.Advance(st.now); err != nil {
		st.fail("decay", "advance f2: %v", err)
	}
	st.r1.advance(st.now)
	st.r2.advance(st.now)
}

// checkWire encodes f1 with full counters, decodes into the scratch
// filter, and holds the copy to RoundTripExact (or at least membership
// preservation) plus the decoded-state merged contract.
func (st *state) checkWire() {
	st.t.Helper()
	data, err := st.f1.Encode(tcbf.CountersFull)
	if err != nil {
		st.fail("wire", "encode: %v", err)
	}
	appended, err := st.f1.EncodeTo([]byte{0xDE, 0xAD}, tcbf.CountersFull)
	if err != nil {
		st.fail("wire", "encode to: %v", err)
	}
	if len(appended) != len(data)+2 || string(appended[2:]) != string(data) {
		st.fail("wire", "EncodeTo bytes diverge from Encode")
	}
	if err := st.scratch.DecodeInto(data, st.now); err != nil {
		st.fail("wire", "decode into: %v", err)
	}
	for _, key := range Keys {
		pre := tcbf.Precompute(key)
		hasOrig, err := st.f1.ContainsPre(pre, st.now)
		if err != nil {
			st.fail("wire", "contains orig %q: %v", key, err)
		}
		hasCopy, err := st.scratch.ContainsPre(pre, st.now)
		if err != nil {
			st.fail("wire", "contains copy %q: %v", key, err)
		}
		if hasOrig && !hasCopy {
			st.fail("round-trip-membership",
				"key %q present before encode, absent after decode", key)
		}
		if st.laws.RoundTripExact {
			if hasCopy != hasOrig {
				st.fail("round-trip-exact",
					"key %q membership %v -> %v across the wire", key, hasOrig, hasCopy)
			}
			mOrig, err := st.f1.MinCounterPre(pre, st.now)
			if err != nil {
				st.fail("wire", "min orig %q: %v", key, err)
			}
			mCopy, err := st.scratch.MinCounterPre(pre, st.now)
			if err != nil {
				st.fail("wire", "min copy %q: %v", key, err)
			}
			// CountersFull carries one quantized byte per set bit, scaled
			// to the filter's maximum counter (Section VI-C): decoding
			// moves a counter by at most max/255 plus one tick of
			// rounding, with the keep-set-bits-set clamp hitting the same
			// bound from below. max is bounded by the lane ceiling.
			wireTol := (float64(refLaneMax)/255 + 1) * st.quantum
			if math.Abs(mOrig-mCopy) > wireTol {
				st.fail("round-trip-exact",
					"key %q min counter %v -> %v across the wire, beyond quantization tolerance %v",
					key, mOrig, mCopy, wireTol)
			}
		}
	}
	// Decoded state is a peer's view: the uniform contract says it must
	// refuse further inserts with ErrMerged.
	if err := st.scratch.InsertPre(tcbf.Precompute(Keys[0]), st.now); !errors.Is(err, tcbf.ErrMerged) {
		st.fail("merged-insert-parity", "insert into decoded filter: err %v, want ErrMerged", err)
	}
}

// DefaultConfig is the conformance geometry: the paper's M=256/K=4 with a
// fast decay so short tapes cross many tick boundaries.
func DefaultConfig() tcbf.Config {
	return tcbf.Config{M: 256, K: 4, Initial: 3, DecayPerMinute: 1}
}

// RunTape interprets a byte tape as (op, arg) pairs against one subject,
// failing the test on any divergence from the declared laws.
func RunTape(t *testing.T, sub Subject, tape []byte) {
	t.Helper()
	st := newState(t, sub, DefaultConfig())
	for i := 0; i+1 < len(tape); i += 2 {
		st.step(tape[i], tape[i+1])
	}
}
