// Package bloofi implements a Bloofi-style hierarchical filter tree
// (Crainiceanu & Lemire, "Bloofi: Multidimensional Bloom filters") as a
// backend for the internal/filter seam. A Tree holds one TCBF per
// downstream subscriber interest set as a leaf, and every inner node
// carries the counter-wise maximum (M-merge) of its children — so an
// inner aggregate contains every bit any descendant holds, with at least
// the descendant's counter, and a membership query can descend the tree
// pruning whole subtrees whose aggregate already misses the key:
// O(d·log_d n) filter checks instead of n. Max-aggregation commutes with
// the TCBF's uniform decay (both operands erode at the same rate), so
// the pruning invariant survives time passing.
//
// As a relay-filter backend the tree changes A-merge's meaning: instead
// of summing a consumer's genuine filter into one flat vector (losing
// which consumer wanted what), the absorbed filter becomes its own leaf,
// and the additive-reinforcement semantics of repeated meetings is
// deliberately given up — that trade (per-subscriber resolution and
// logarithmic checks versus reinforcement) is exactly what the backend
// ablation measures. The mesh broker tier uses the same tree directly to
// aggregate downstream peer interests and route floods with logarithmic
// checks (see internal/mesh).
package bloofi

import (
	"fmt"
	"time"

	"bsub/internal/filter"
	"bsub/internal/tcbf"
)

// Defaults used when the corresponding Backend field is zero.
const (
	// DefaultBranching is the tree fan-out d.
	DefaultBranching = 4
	// DefaultMaxLeaves caps the leaf count; past it, the two smallest
	// leaves are M-merged into one.
	DefaultMaxLeaves = 64
)

// Backend builds Bloofi trees behind the internal/filter seam.
type Backend struct {
	// Branching is the inner-node fan-out d; zero means DefaultBranching.
	// Must be in [2, 16].
	Branching int
	// MaxLeaves caps the number of leaves; zero means DefaultMaxLeaves.
	// Must be at least Branching. On overflow the two leaves with the
	// fewest set bits are M-merged, trading per-subscriber resolution
	// for boundedness.
	MaxLeaves int
}

// Name implements filter.Backend.
func (Backend) Name() string { return "bloofi" }

// Laws implements filter.Backend: aggregates only ever add bits, so
// there are no false negatives; but A-merge is reinterpreted as leaf
// insertion (max-aggregated), so counters are not additive, merge order
// shows in the leaf structure, and the wire form is the root aggregate
// only (a decode yields a one-leaf tree).
func (Backend) Laws() filter.Laws {
	return filter.Laws{NoFalseNegatives: true}
}

func (b Backend) branching() int {
	if b.Branching == 0 {
		return DefaultBranching
	}
	return b.Branching
}

func (b Backend) maxLeaves() int {
	if b.MaxLeaves == 0 {
		return DefaultMaxLeaves
	}
	return b.MaxLeaves
}

// Validate implements filter.Backend.
func (b Backend) Validate(cfg tcbf.Config, partitions int) error {
	if d := b.branching(); d < 2 || d > 16 {
		return fmt.Errorf("bloofi: branching %d outside [2,16]", d)
	}
	if m := b.maxLeaves(); m < b.branching() {
		return fmt.Errorf("bloofi: leaf cap %d below branching %d", m, b.branching())
	}
	if partitions < 1 || partitions > 255 {
		return fmt.Errorf("bloofi: partition count must be in [1,255], got %d", partitions)
	}
	return cfg.Validate()
}

// New implements filter.Backend.
func (b Backend) New(cfg tcbf.Config, partitions int, now time.Duration) (filter.Filter, error) {
	t, err := NewTree(b, cfg, partitions, now)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// NewTree builds an empty tree with the concrete type exposed — the mesh
// broker tier's entry point, which needs Tree-specific absorption.
func NewTree(b Backend, cfg tcbf.Config, partitions int, now time.Duration) (*Tree, error) {
	if err := b.Validate(cfg, partitions); err != nil {
		return nil, err
	}
	root, err := tcbf.NewPartitioned(cfg, partitions, now)
	if err != nil {
		return nil, err
	}
	return &Tree{
		cfg:       cfg,
		parts:     partitions,
		branching: b.branching(),
		maxLeaves: b.maxLeaves(),
		rootAgg:   root,
	}, nil
}

// node is one tree position: a leaf's own filter or an inner node's
// max-aggregate of its children.
type node struct {
	agg      *tcbf.Partitioned
	children []*node // nil for leaves
}

// Tree is a Bloofi filter tree implementing filter.Filter. It is not
// safe for concurrent use.
type Tree struct {
	cfg       tcbf.Config
	parts     int
	branching int
	maxLeaves int

	// leaves in absorption order; root is nil until the first leaf
	// exists. rootAgg always exists and mirrors the root's aggregate (an
	// empty filter while the tree has no leaves), so encode and
	// fill-ratio queries have a stable target.
	leaves  []*node
	root    *node
	rootAgg *tcbf.Partitioned

	// own is the leaf direct inserts land in (engine-driven insertion of
	// this node's own interests); nil until the first insert.
	own *node

	merged bool
	// spare pools retired inner nodes' filters for rebuilds.
	spare []*tcbf.Partitioned
}

var _ filter.Filter = (*Tree)(nil)

// Config implements filter.Filter.
func (t *Tree) Config() tcbf.Config { return t.cfg }

// Partitions implements filter.Filter.
func (t *Tree) Partitions() int { return t.parts }

// Leaves returns the current leaf count (introspection for tests and
// the mesh tier).
func (t *Tree) Leaves() int { return len(t.leaves) }

// newFilter builds or recycles a partitioned TCBF for tree structure.
func (t *Tree) newFilter(now time.Duration) (*tcbf.Partitioned, error) {
	if k := len(t.spare); k > 0 {
		f := t.spare[k-1]
		t.spare = t.spare[:k-1]
		f.Reset(now)
		if err := f.SetDecayFactor(t.cfg.DecayPerMinute, now); err != nil {
			return nil, err
		}
		return f, nil
	}
	return tcbf.NewPartitioned(t.cfg, t.parts, now)
}

// rebuild reconstructs the inner levels bottom-up from the leaf list and
// refreshes rootAgg. Called after any structural or leaf-content change;
// n ≤ maxLeaves keeps this cheap, and queries stay logarithmic.
func (t *Tree) rebuild(now time.Duration) error {
	// Retire old inner nodes' filters into the spare pool.
	var retire func(n *node)
	retire = func(n *node) {
		if n == nil || n.children == nil {
			return
		}
		for _, c := range n.children {
			retire(c)
		}
		t.spare = append(t.spare, n.agg)
	}
	retire(t.root)
	t.root = nil

	if len(t.leaves) == 0 {
		t.rootAgg.Reset(now)
		return nil
	}
	level := t.leaves
	for len(level) > 1 {
		next := make([]*node, 0, (len(level)+t.branching-1)/t.branching)
		for i := 0; i < len(level); i += t.branching {
			end := i + t.branching
			if end > len(level) {
				end = len(level)
			}
			agg, err := t.newFilter(now)
			if err != nil {
				return err
			}
			inner := &node{agg: agg, children: level[i:end:end]}
			for _, c := range inner.children {
				if err := inner.agg.MMerge(c.agg, now); err != nil {
					return err
				}
			}
			next = append(next, inner)
		}
		level = next
	}
	t.root = level[0]
	// Mirror the root aggregate into the stable rootAgg filter.
	t.rootAgg.Reset(now)
	return t.rootAgg.MMerge(t.root.agg, now)
}

// addLeaf absorbs f (taking ownership) as a new leaf, merging the two
// smallest leaves first when the cap is reached.
func (t *Tree) addLeaf(f *tcbf.Partitioned, now time.Duration) error {
	if len(t.leaves) >= t.maxLeaves {
		// Find the two leaves with the fewest set bits (ties by index:
		// older first) and fold the second into the first.
		a, b := -1, -1
		for i, l := range t.leaves {
			sb := l.agg.SetBits()
			switch {
			case a < 0 || sb < t.leaves[a].agg.SetBits():
				b = a
				a = i
			case b < 0 || sb < t.leaves[b].agg.SetBits():
				b = i
			}
		}
		if t.leaves[a] == t.own {
			// Never fold the direct-insert leaf away; take the runner-up.
			a, b = b, a
		}
		if err := t.leaves[b].agg.MMerge(t.leaves[a].agg, now); err != nil {
			return err
		}
		if t.leaves[b] == t.own {
			// The fold target absorbed own's content but own must stay
			// insertable; the merged filter becomes a plain leaf.
			t.own = nil
		}
		t.spare = append(t.spare, t.leaves[a].agg)
		t.leaves[a] = t.leaves[len(t.leaves)-1]
		t.leaves[len(t.leaves)-1] = nil
		t.leaves = t.leaves[:len(t.leaves)-1]
	}
	t.leaves = append(t.leaves, &node{agg: f})
	return t.rebuild(now)
}

// Reset implements filter.Filter.
func (t *Tree) Reset(now time.Duration) {
	var retire func(n *node)
	retire = func(n *node) {
		if n == nil {
			return
		}
		for _, c := range n.children {
			retire(c)
		}
		t.spare = append(t.spare, n.agg)
	}
	retire(t.root)
	if t.root == nil {
		for _, l := range t.leaves {
			t.spare = append(t.spare, l.agg)
		}
	}
	t.leaves = t.leaves[:0]
	t.root = nil
	t.own = nil
	t.rootAgg.Reset(now)
	t.merged = false
}

// each visits every filter in the tree (leaves, inner aggregates, and
// the root mirror).
func (t *Tree) each(fn func(*tcbf.Partitioned) error) error {
	var walk func(n *node) error
	walk = func(n *node) error {
		if n == nil {
			return nil
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return fn(n.agg)
	}
	if t.root != nil {
		if err := walk(t.root); err != nil {
			return err
		}
	} else {
		for _, l := range t.leaves {
			if err := fn(l.agg); err != nil {
				return err
			}
		}
	}
	return fn(t.rootAgg)
}

// Advance implements filter.Filter.
func (t *Tree) Advance(now time.Duration) error {
	return t.each(func(f *tcbf.Partitioned) error { return f.Advance(now) })
}

// SetDecayFactor implements filter.Filter.
func (t *Tree) SetDecayFactor(perMinute float64, now time.Duration) error {
	if err := t.each(func(f *tcbf.Partitioned) error {
		return f.SetDecayFactor(perMinute, now)
	}); err != nil {
		return err
	}
	t.cfg.DecayPerMinute = perMinute
	return nil
}

// Insert implements filter.Filter: direct inserts land in a dedicated
// leaf (the tree owner's own interests).
func (t *Tree) Insert(key string, now time.Duration) error {
	return t.InsertPre(tcbf.Precompute(key), now)
}

// InsertAll implements filter.Filter.
func (t *Tree) InsertAll(keys []string, now time.Duration) error {
	for _, k := range keys {
		if err := t.Insert(k, now); err != nil {
			return err
		}
	}
	return nil
}

// InsertPre implements filter.Filter.
func (t *Tree) InsertPre(k tcbf.PreKey, now time.Duration) error {
	return t.insertAllPre([]tcbf.PreKey{k}, now)
}

// InsertAllPre implements filter.Filter.
func (t *Tree) InsertAllPre(keys []tcbf.PreKey, now time.Duration) error {
	return t.insertAllPre(keys, now)
}

func (t *Tree) insertAllPre(keys []tcbf.PreKey, now time.Duration) error {
	if t.merged {
		key := ""
		if len(keys) > 0 {
			key = keys[0].Key
		}
		return fmt.Errorf("bloofi: insert %q: %w", key, tcbf.ErrMerged)
	}
	if len(keys) == 0 {
		return t.Advance(now)
	}
	if t.own == nil {
		f, err := t.newFilter(now)
		if err != nil {
			return err
		}
		t.own = &node{agg: f}
		t.leaves = append(t.leaves, t.own)
	}
	if err := t.own.agg.InsertAllPre(keys, now); err != nil {
		return err
	}
	return t.rebuild(now)
}

// ContainsPre implements filter.Filter with the Bloofi descent: an inner
// aggregate that misses the key prunes its whole subtree.
func (t *Tree) ContainsPre(k tcbf.PreKey, now time.Duration) (bool, error) {
	if t.root == nil {
		_, err := t.rootAgg.ContainsPre(k, now)
		return false, err
	}
	var descend func(n *node) (bool, error)
	descend = func(n *node) (bool, error) {
		ok, err := n.agg.ContainsPre(k, now)
		if err != nil || !ok {
			return false, err
		}
		if n.children == nil {
			return true, nil
		}
		for _, c := range n.children {
			ok, err := descend(c)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	return descend(t.root)
}

// Contains implements filter.Filter.
func (t *Tree) Contains(key string, now time.Duration) (bool, error) {
	return t.ContainsPre(tcbf.Precompute(key), now)
}

// ContainsAnyPre implements filter.Filter.
func (t *Tree) ContainsAnyPre(keys []tcbf.PreKey, now time.Duration) (bool, error) {
	for i := range keys {
		ok, err := t.ContainsPre(keys[i], now)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// MinCounterPre implements filter.Filter: the key's strength is the best
// minimum counter any single leaf gives it, found by descent — subtrees
// whose aggregate cannot beat the current best are pruned (an aggregate's
// min counter bounds every descendant's from above).
func (t *Tree) MinCounterPre(k tcbf.PreKey, now time.Duration) (float64, error) {
	if t.root == nil {
		return 0, t.rootAgg.Advance(now)
	}
	best := 0.0
	var descend func(n *node) error
	descend = func(n *node) error {
		c, err := n.agg.MinCounterPre(k, now)
		if err != nil || c <= best {
			return err
		}
		if n.children == nil {
			best = c
			return nil
		}
		for _, ch := range n.children {
			if err := descend(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := descend(t.root); err != nil {
		return 0, err
	}
	return best, nil
}

// PreferencePre implements filter.Filter with the receiver as self.
func (t *Tree) PreferencePre(k tcbf.PreKey, peer filter.Filter, now time.Duration) (float64, error) {
	o, ok := peer.(*Tree)
	if !ok {
		return 0, fmt.Errorf("bloofi: backend cannot operate on a %T peer", peer)
	}
	pf, err := o.MinCounterPre(k, now)
	if err != nil {
		return 0, fmt.Errorf("peer: %w", err)
	}
	g, err := t.MinCounterPre(k, now)
	if err != nil {
		return 0, fmt.Errorf("self: %w", err)
	}
	if g == 0 {
		return pf, nil
	}
	return pf - g, nil
}

// AMerge implements filter.Filter: the absorbed filter's aggregate
// becomes a new leaf. This is where the tree departs from the paper's
// A-merge — repeated absorption of the same consumer adds (and
// eventually folds) leaves instead of summing counters; see the package
// comment.
func (t *Tree) AMerge(other filter.Filter, now time.Duration) error {
	return t.absorb(other, now)
}

// MMerge implements filter.Filter: identical to AMerge here, since leaf
// aggregation is already by maximum.
func (t *Tree) MMerge(other filter.Filter, now time.Duration) error {
	return t.absorb(other, now)
}

func (t *Tree) absorb(other filter.Filter, now time.Duration) error {
	o, ok := other.(*Tree)
	if !ok {
		return fmt.Errorf("bloofi: backend cannot operate on a %T peer", other)
	}
	if err := o.rootAgg.Advance(now); err != nil {
		return err
	}
	leaf, err := t.newFilter(now)
	if err != nil {
		return err
	}
	if err := leaf.MMerge(o.rootAgg, now); err != nil {
		return err
	}
	if err := t.addLeaf(leaf, now); err != nil {
		return err
	}
	t.merged = true
	return nil
}

// AbsorbPartitioned adds a decoded partitioned TCBF as a leaf (by
// max-copy; the source is advanced but not retained).
func (t *Tree) AbsorbPartitioned(f *tcbf.Partitioned, now time.Duration) error {
	leaf, err := t.newFilter(now)
	if err != nil {
		return err
	}
	if err := leaf.MMerge(f, now); err != nil {
		return err
	}
	if err := t.addLeaf(leaf, now); err != nil {
		return err
	}
	t.merged = true
	return nil
}

// AbsorbEncoded adds a wire-encoded partitioned TCBF (a downstream
// peer's interest or relay filter, as produced by the engine's *Out
// steps) directly as a leaf — the mesh broker tier's entry point, which
// skips the scratch-tree decode a filter.Filter round-trip would need.
func (t *Tree) AbsorbEncoded(data []byte, now time.Duration) error {
	leaf, err := t.newFilter(now)
	if err != nil {
		return err
	}
	if err := leaf.DecodeInto(data, now); err != nil {
		return err
	}
	if err := t.addLeaf(leaf, now); err != nil {
		return err
	}
	t.merged = true
	return nil
}

// Encode implements filter.Filter.
func (t *Tree) Encode(mode tcbf.CounterMode) ([]byte, error) {
	return t.EncodeTo(nil, mode)
}

// EncodeTo implements filter.Filter: the wire form is the root aggregate
// alone (the membership superset of every leaf); per-leaf structure
// never crosses the wire, so a decode yields a one-leaf tree.
func (t *Tree) EncodeTo(dst []byte, mode tcbf.CounterMode) ([]byte, error) {
	return t.rootAgg.EncodeTo(dst, mode)
}

// DecodeInto implements filter.Filter: the tree collapses to a single
// leaf holding the decoded aggregate.
func (t *Tree) DecodeInto(data []byte, now time.Duration) error {
	t.Reset(now)
	leaf, err := t.newFilter(now)
	if err != nil {
		return err
	}
	if err := leaf.DecodeInto(data, now); err != nil {
		return err
	}
	if err := t.addLeaf(leaf, now); err != nil {
		return err
	}
	t.merged = true
	return nil
}

// SetBits implements filter.Filter (the root aggregate's view).
func (t *Tree) SetBits() int { return t.rootAgg.SetBits() }

// EstimatedFPR implements filter.Filter (the root aggregate's view —
// what a descent's first check sees).
func (t *Tree) EstimatedFPR() float64 { return t.rootAgg.EstimatedFPR() }
