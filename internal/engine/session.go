package engine

import (
	"fmt"
	"slices"
	"time"

	"bsub/internal/filter"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// Budget meters the bytes a contact may move; the simulator's
// sim.Budget satisfies it. A failed Spend must deduct nothing.
type Budget interface {
	Spend(n int) bool
}

// Unlimited is the Budget for transports that do not meter bytes (the
// live TCP node).
type Unlimited struct{}

// Spend always succeeds.
func (Unlimited) Spend(int) bool { return true }

// Transfer is a message copy a session step selected for the peer.
type Transfer struct {
	Msg     workload.Message
	Payload []byte
	// Carried distinguishes a relayed copy (claim it with ClaimCarried)
	// from one of the node's own messages (ClaimDirect).
	Carried bool
}

// Forward is a preferential-forwarding candidate with its preference
// value (Section VI-B's counter difference).
type Forward struct {
	Msg     workload.Message
	Payload []byte
	Pref    float64
}

// Session is one side of a contact: a pinned view of the node's role plus
// the typed protocol steps, in the order the contact runs them:
//
//	BeginContact → Hello/SetPeer → Elect/Apply →
//	  both brokers:  RelayOut/SetPeerRelay → ForwardCandidates +
//	                 ClaimCarried → MergeRelay
//	  mixed roles:   GenuineOut → AbsorbGenuine
//	  both, per side: InterestOut → DeliveryMatches → ClaimDirect /
//	                 ClaimCarried; RelayAdvertOut → ReplicationMatches →
//	                 ClaimReplication
//
// Each *Out step returns the Section VI-C wire encoding (charged to the
// Budget; nil, nil when the budget refuses) and each consuming step
// decodes it, so the two adapters exchange identical bytes. Claims remove
// copies from the node's stores immediately; Commit settles them, Abort
// (or Session.Abort after a severed contact) refunds them. Spent budget
// is never refunded: a severed contact still transmitted the bytes.
//
// A session owns a scratch arena — filters, encode buffers, candidate and
// transfer lists, claim records — that Release returns to the node for the
// next contact, so a warm BeginContact → … → Release cycle allocates
// nothing. The arena implies an aliasing contract: bytes returned by an
// *Out step are valid until the same step runs again on this session (or
// the session is released), and the slices returned by ForwardCandidates,
// DeliveryMatches, and ReplicationMatches are valid until the same kind of
// step runs again.
type Session struct {
	n      *Node
	budget Budget
	now    time.Duration
	// cache, when non-nil, is where Release returns this session instead
	// of the node's own freelist (see SessionCache).
	cache *SessionCache

	// helloBroker pins the role announced at contact start; concurrent
	// sessions on a live node may change n.broker underneath us, and the
	// election must act on what the peer was told.
	helloBroker bool
	hello       Hello

	peer    Hello
	peerSet bool

	// selfBroker/peerBroker are the post-election roles every later step
	// keys off; relay/peerRelay are the filters pinned for this contact.
	selfBroker bool
	peerBroker bool
	relay      filter.Filter
	peerRelay  filter.Filter // points at peerRelayBuf once set

	claims   []*Claim
	poisoned bool
	released bool

	// --- scratch arena, recycled across contacts by Release ---------------
	// Filters are allocated lazily (a plain user's sessions never build the
	// partitioned scratch); each *Out step owns a byte buffer, and decoded
	// peer state lives in its own filter so one step cannot clobber state a
	// later step still reads (SetPeerRelay's decode must survive until
	// ForwardCandidates/MergeRelay, which may interleave with the pulls).
	peerRelayBuf filter.Filter // SetPeerRelay decode target
	genuineBuf   filter.Filter // GenuineOut build / AbsorbGenuine decode
	advertBuf    filter.Filter // ReplicationMatches decode target
	interestBuf  *tcbf.Filter  // InterestOut build (protocol-fixed plain BF)
	deliveryBuf  *tcbf.Filter  // DeliveryMatches decode target

	relayEnc    []byte
	genuineEnc  []byte
	interestEnc []byte
	advertEnc   []byte

	cands     []Forward
	transfers []Transfer

	claimArena claimArena
}

// BeginContact opens a contact session at the given time, reusing a
// released session's scratch arena when one is available. The hello
// snapshot (role, degree) is taken before the meeting itself is recorded.
//
//bsub:hotpath
func (n *Node) BeginContact(budget Budget, now time.Duration) *Session {
	var s *Session
	if k := len(n.freeSessions); k > 0 {
		s = n.freeSessions[k-1]
		n.freeSessions[k-1] = nil
		n.freeSessions = n.freeSessions[:k-1]
	} else {
		s = &Session{n: n}
	}
	s.cache = nil
	return s.begin(budget, now)
}

// SessionCache pools released sessions' scratch arenas across nodes.
// Per-node freelists (BeginContact) keep one warm arena per node — at
// million-node populations that is gigabytes of idle scratch filters. An
// adapter that serializes its contacts (or runs one cache per worker, as
// the sharded simulator does) needs only as many arenas as it has
// concurrent contacts, whatever the population size. A cache must not be
// used from concurrent goroutines, and every node it serves must run the
// same filter geometry (Config.FilterM/FilterK/Partitions); a session
// rebound to a node with different geometry drops its arena and rebuilds
// lazily.
type SessionCache struct {
	free []*Session
}

// NewSessionCache returns an empty cache.
func NewSessionCache() *SessionCache { return &SessionCache{} }

// BeginContactFrom opens a contact session like BeginContact, drawing the
// scratch arena from c instead of the node's own freelist; Release will
// return it to c. A nil cache falls back to BeginContact. Rebinding a
// cached arena to a different node is safe: every scratch filter is
// Reset/DecodeInto'd (which re-pins its clock) before use, so the arena
// carries no state — and in particular no time obligation — between nodes.
//
//bsub:hotpath
func (n *Node) BeginContactFrom(c *SessionCache, budget Budget, now time.Duration) *Session {
	if c == nil {
		return n.BeginContact(budget, now)
	}
	var s *Session
	if k := len(c.free); k > 0 {
		s = c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
		if s.n != n {
			if s.n.fcfg != n.fcfg || s.n.cfg.partitions() != n.cfg.partitions() ||
				s.n.cfg.backend() != n.cfg.backend() {
				s.dropArena()
			}
			s.n = n
		}
	} else {
		s = &Session{n: n}
	}
	s.cache = c
	return s.begin(budget, now)
}

// dropArena discards geometry-dependent scratch state so the next use
// rebuilds it for the session's current node.
//
//bsub:coldpath
func (s *Session) dropArena() {
	s.peerRelayBuf = nil
	s.genuineBuf = nil
	s.advertBuf = nil
	s.interestBuf = nil
	s.deliveryBuf = nil
}

// begin (re)initializes a session for one contact.
//
//bsub:hotpath
func (s *Session) begin(budget Budget, now time.Duration) *Session {
	if budget == nil {
		budget = Unlimited{}
	}
	n := s.n
	s.budget = budget
	s.now = now
	s.ratchet()
	s.helloBroker = n.broker
	s.hello = Hello{ID: n.id, Broker: n.broker, Degree: n.Degree(now)}
	s.peer = Hello{}
	s.peerSet = false
	s.selfBroker, s.peerBroker = false, false
	s.relay, s.peerRelay = nil, nil
	s.claims = s.claims[:0]
	s.claimArena.reset()
	s.poisoned = false
	s.released = false
	return s
}

// claimLeakHook, when non-nil, observes the number of unsettled claims a
// Release had to refund. Well-behaved adapters settle every claim before
// releasing, so a non-zero count is a copy-accounting bug waiting to
// happen under the conservation invariant. Tests install an observer to
// assert hygiene; builds with the bsubdebug tag install a panicking hook
// at init so leaks fail loudly during development runs.
var claimLeakHook func(leaked int)

// Release ends the session's lifecycle: any unsettled claim is refunded
// (as by Abort) and the session's scratch arena returns to the node, where
// the next BeginContact reuses its filters, buffers, and claim records.
// The session, its claims, and any slice a step returned must not be used
// after Release. Idempotent.
//
// Release forgives unsettled claims only as a severed-contact backstop:
// the refund keeps conservation intact, but leaving claims for Release to
// mop up is a bug in the caller. claimLeakHook (always-on under the
// bsubdebug build tag) asserts that the count is zero.
//
//bsub:hotpath
func (s *Session) Release() {
	if s.released {
		return
	}
	leaked := s.Abort()
	if leaked > 0 && claimLeakHook != nil {
		claimLeakHook(leaked)
	}
	s.released = true
	if s.cache != nil {
		s.cache.free = append(s.cache.free, s)
		return
	}
	s.n.freeSessions = append(s.n.freeSessions, s)
}

// ratchet clamps the session's pinned time to the node's high-water mark.
// Live adapters run sessions concurrently: each pins its clock at
// BeginContact, then interleaves engine steps with peers' sessions on the
// same node. Shared state (the relay filter) and recycled scratch filters
// remember the latest time they were touched at, so a step running with an
// older pinned clock would trip tcbf's monotonic-clock check mid-contact.
// Ratcheting at each TCBF-touching step keeps per-node time non-decreasing;
// under serialized monotone time the ratchet never fires.
//
//bsub:hotpath
func (s *Session) ratchet() {
	if s.n.clockHigh > s.now {
		s.now = s.n.clockHigh
	} else {
		s.n.clockHigh = s.now
	}
}

// scratchRelay lazily builds the backend scratch filter in slot.
//
//bsub:coldpath
func (s *Session) scratchRelay(slot *filter.Filter) filter.Filter {
	if *slot == nil {
		*slot = filter.MustNew(s.n.cfg.backend(), s.n.fcfg, s.n.cfg.partitions(), s.now)
	}
	return *slot
}

// scratchFilter lazily builds the plain scratch filter in slot.
//
//bsub:coldpath
func (s *Session) scratchFilter(slot **tcbf.Filter) *tcbf.Filter {
	if *slot == nil {
		*slot = tcbf.MustNew(s.n.fcfg, s.now)
	}
	return *slot
}

// Hello returns the announcement this side opens the contact with.
//
//bsub:hotpath
func (s *Session) Hello() Hello { return s.hello }

// Peer returns the peer's announcement (zero until SetPeer).
//
//bsub:hotpath
func (s *Session) Peer() Hello { return s.peer }

// Now returns the contact time.
//
//bsub:hotpath
func (s *Session) Now() time.Duration { return s.now }

// SetPeer ingests the peer's hello and records the meeting.
//
//bsub:hotpath
func (s *Session) SetPeer(peer Hello) {
	s.peer = peer
	s.peerSet = true
	s.n.RecordMeeting(peer.ID, s.now)
}

// Elect runs the broker-allocation rule (Section VI-A) and returns this
// side's verdict for the peer. Brokers never run allocation; users count
// the distinct brokers sighted within the window and promote the peer
// below T_l, or demote a below-mean-degree broker peer above T_u.
//
//bsub:hotpath
func (s *Session) Elect() Action {
	if !s.peerSet || s.helloBroker {
		return ActNone
	}
	if s.peer.Broker {
		s.n.RecordBrokerSighting(s.peer.ID, s.peer.Degree, s.now)
	}
	count, meanDegree := s.n.brokersInWindow(s.now)
	switch {
	case count < s.n.cfg.BrokerLow && !s.peer.Broker:
		return ActPromote
	case count > s.n.cfg.BrokerHigh && s.peer.Broker && float64(s.peer.Degree) < meanDegree:
		// The demoted broker leaves our sighting window immediately.
		delete(s.n.sightings, s.peer.ID)
		return ActDemote
	}
	return ActNone
}

// Apply settles the election: own is this side's verdict from Elect, peer
// is the verdict the peer sent for us. It fixes the roles every later
// step uses, runs the DF retuning policy, and pins the relay filter.
//
//bsub:hotpath
func (s *Session) Apply(own, peer Action) {
	s.ratchet()
	if own == ActPromote && peer == ActPromote {
		// Mutual designation (two users in a broker-scarce neighbourhood
		// each elect the other): promote only the higher-ID side, so a
		// two-user bootstrap yields one broker and keeps a consumer. Both
		// sides compute the same tie-break from the exchanged hellos.
		if s.n.id > s.peer.ID {
			own = ActNone
		} else {
			peer = ActNone
		}
	}
	switch peer {
	case ActPromote:
		s.n.Promote(s.now)
		s.selfBroker = true
	case ActDemote:
		s.n.Demote()
		s.selfBroker = false
	default:
		// Use the announced role, not n.broker: a concurrent session may
		// have changed it since, but this contact agreed on the hello.
		s.selfBroker = s.helloBroker
	}
	switch own {
	case ActPromote:
		s.peerBroker = true
		s.n.RecordBrokerSighting(s.peer.ID, s.peer.Degree, s.now)
	case ActDemote:
		s.peerBroker = false
	default:
		s.peerBroker = s.peer.Broker
	}
	s.n.RetuneDF(s.now)
	if s.selfBroker {
		s.relay = s.n.relay
		if s.relay == nil {
			// Demoted by a concurrent session after our hello: run the
			// contact as announced against a throwaway filter.
			s.relay = filter.MustNew(s.n.cfg.backend(), s.n.fcfg, s.n.cfg.partitions(), s.now)
		}
	}
}

// SelfBroker reports this side's post-election role.
//
//bsub:hotpath
func (s *Session) SelfBroker() bool { return s.selfBroker }

// PeerBroker reports the peer's post-election role.
//
//bsub:hotpath
func (s *Session) PeerBroker() bool { return s.peerBroker }

// RelayExchange reports whether this contact is broker-broker.
//
//bsub:hotpath
func (s *Session) RelayExchange() bool { return s.selfBroker && s.peerBroker }

// SendsGenuine reports whether this side propagates its genuine interest
// filter (consumer meeting a broker).
//
//bsub:hotpath
func (s *Session) SendsGenuine() bool { return s.peerBroker && !s.selfBroker }

// ReceivesGenuine reports whether this side absorbs the peer's genuine
// interest filter (broker meeting a consumer).
//
//bsub:hotpath
func (s *Session) ReceivesGenuine() bool { return s.selfBroker && !s.peerBroker }

// GenuineOut encodes this node's genuine interest filter (counters at
// the uniform initial value) for A-merge into the peer broker's relay
// filter. Returns nil, nil when the budget refuses the transfer.
//
//bsub:hotpath
func (s *Session) GenuineOut() ([]byte, error) {
	s.ratchet()
	g := s.scratchRelay(&s.genuineBuf)
	g.Reset(s.now)
	if err := g.InsertAllPre(s.n.preInterests, s.now); err != nil {
		return nil, err
	}
	data, err := g.EncodeTo(s.genuineEnc[:0], tcbf.CountersUniform)
	if err != nil {
		return nil, err
	}
	s.genuineEnc = data
	if !s.budget.Spend(len(data)) {
		return nil, nil
	}
	return data, nil
}

// AbsorbGenuine A-merges a peer consumer's genuine filter into the relay
// filter ("brokers use A-merge to merge the genuine filters of
// consumers"). A nil/empty input (peer budget refusal) is a no-op.
//
//bsub:hotpath
func (s *Session) AbsorbGenuine(data []byte) error {
	s.ratchet()
	if len(data) == 0 || s.relay == nil {
		return nil
	}
	// genuineBuf is safe to reuse as the decode target: a session either
	// sends or receives genuine filters, never both (the roles are fixed
	// by Apply), and the merge consumes the decoded state immediately.
	g := s.scratchRelay(&s.genuineBuf)
	if err := g.DecodeInto(data, s.now); err != nil {
		return err
	}
	return s.relay.AMerge(g, s.now)
}

// RelayOut advances and encodes this broker's relay filter with full
// counters for the broker-broker exchange. Returns nil, nil when the
// budget refuses.
//
//bsub:hotpath
func (s *Session) RelayOut() ([]byte, error) {
	s.ratchet()
	if s.relay == nil {
		return nil, nil
	}
	if err := s.relay.Advance(s.now); err != nil {
		return nil, err
	}
	data, err := s.relay.EncodeTo(s.relayEnc[:0], tcbf.CountersFull)
	if err != nil {
		return nil, err
	}
	s.relayEnc = data
	if !s.budget.Spend(len(data)) {
		return nil, nil
	}
	return data, nil
}

// SetPeerRelay ingests the peer broker's encoded relay filter — its
// pre-merge state, which forwarding decisions and MergeRelay both use.
// nil/empty input leaves the peer relay unset (no exchange happened).
//
//bsub:hotpath
func (s *Session) SetPeerRelay(data []byte) error {
	s.ratchet()
	if len(data) == 0 {
		return nil
	}
	pr := s.scratchRelay(&s.peerRelayBuf)
	if err := pr.DecodeInto(data, s.now); err != nil {
		// The in-place decode may have left a partial mix of old and new
		// state in the scratch filter; unpin it so later steps cannot act
		// on corrupt data.
		s.peerRelay = nil
		return err
	}
	s.peerRelay = pr
	return nil
}

// ForwardCandidates returns the carried messages to preferentially
// forward to the peer broker — strictly positive preference against the
// peer's pre-merge relay filter, largest first (ties by ascending ID).
// "The two brokers ... make message forwarding decisions before merging
// their relay filters."
//
//bsub:hotpath
func (s *Session) ForwardCandidates() ([]Forward, error) {
	s.ratchet()
	if s.relay == nil || s.peerRelay == nil {
		return nil, nil
	}
	cands := s.cands[:0]
	for _, e := range s.n.carried.live(s.now) {
		best, ok := 0.0, false
		for _, k := range e.pre {
			pref, err := s.relay.PreferencePre(k, s.peerRelay, s.now)
			if err != nil {
				return nil, err
			}
			if pref > best {
				best, ok = pref, true
			}
		}
		if !ok || best <= 0 {
			continue
		}
		cands = append(cands, Forward{Msg: e.msg, Payload: e.payload, Pref: best})
	}
	slices.SortFunc(cands, func(a, b Forward) int {
		switch {
		case a.Pref > b.Pref:
			return -1
		case a.Pref < b.Pref:
			return 1
		case a.Msg.ID < b.Msg.ID:
			return -1
		case a.Msg.ID > b.Msg.ID:
			return 1
		}
		return 0
	})
	s.cands = cands
	return cands, nil
}

// MergeRelay folds the peer's pre-merge relay filter into this broker's
// (M-merge by default; A-merge between brokers is the Fig. 6 ablation).
// Run it after forwarding decisions. No-op without a completed exchange.
//
//bsub:hotpath
func (s *Session) MergeRelay() error {
	s.ratchet()
	if s.relay == nil || s.peerRelay == nil {
		return nil
	}
	if s.n.cfg.BrokerMerge == BrokerMergeAdditive {
		return s.relay.AMerge(s.peerRelay, s.now)
	}
	return s.relay.MMerge(s.peerRelay, s.now)
}

// InterestOut encodes this node's interests as a counter-less Bloom
// filter ("the consumer reports its interests in a BF (not TCBF)") to
// pull deliveries from the peer. Returns nil, nil when the budget
// refuses.
//
//bsub:hotpath
func (s *Session) InterestOut() ([]byte, error) {
	s.ratchet()
	f := s.scratchFilter(&s.interestBuf)
	f.Reset(s.now)
	if err := f.InsertAllPre(s.n.preInterests, s.now); err != nil {
		return nil, err
	}
	data, err := f.EncodeTo(s.interestEnc[:0], tcbf.CountersNone)
	if err != nil {
		return nil, err
	}
	s.interestEnc = data
	if !s.budget.Spend(len(data)) {
		return nil, nil
	}
	return data, nil
}

// DeliveryMatches decodes the peer's interest BF and returns the messages
// to serve it: the node's own messages not yet sent to this peer, then
// carried copies (which the peer consumes — a carried delivery hands the
// copy off). Matching is probabilistic; the receiver decides whether a
// delivery was genuine.
//
//bsub:hotpath
func (s *Session) DeliveryMatches(data []byte) ([]Transfer, error) {
	s.ratchet()
	if !s.peerSet {
		return nil, fmt.Errorf("engine: delivery matches before peer hello")
	}
	if len(data) == 0 {
		return nil, nil
	}
	f := s.scratchFilter(&s.deliveryBuf)
	if err := f.DecodeInto(data, s.now); err != nil {
		return nil, err
	}
	out := s.transfers[:0]
	for _, e := range s.n.produced.live(s.now) {
		if e.sentTo(s.peer.ID) {
			continue
		}
		match, err := f.ContainsAnyPre(e.pre, s.now)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		out = append(out, Transfer{Msg: e.msg, Payload: e.payload})
	}
	for _, e := range s.n.carried.live(s.now) {
		if e.msg.Origin == s.peer.ID {
			continue
		}
		match, err := f.ContainsAnyPre(e.pre, s.now)
		if err != nil {
			return nil, err
		}
		if !match {
			continue
		}
		out = append(out, Transfer{Msg: e.msg, Payload: e.payload, Carried: true})
	}
	s.transfers = out
	return out, nil
}

// RelayAdvertOut advances and encodes this broker's relay filter as a
// counter-less BF advert; producers answer with matching messages to
// replicate ("false positives here are what inject useless traffic").
// Returns nil, nil when the budget refuses or the node has no relay.
//
//bsub:hotpath
func (s *Session) RelayAdvertOut() ([]byte, error) {
	s.ratchet()
	if s.relay == nil {
		return nil, nil
	}
	if err := s.relay.Advance(s.now); err != nil {
		return nil, err
	}
	data, err := s.relay.EncodeTo(s.advertEnc[:0], tcbf.CountersNone)
	if err != nil {
		return nil, err
	}
	s.advertEnc = data
	if !s.budget.Spend(len(data)) {
		return nil, nil
	}
	return data, nil
}

// ReplicationMatches decodes the peer broker's relay advert and returns
// this producer's own messages with remaining copy budget that match it.
//
//bsub:hotpath
func (s *Session) ReplicationMatches(data []byte) ([]Transfer, error) {
	s.ratchet()
	if !s.peerSet {
		return nil, fmt.Errorf("engine: replication matches before peer hello")
	}
	if len(data) == 0 {
		return nil, nil
	}
	adv := s.scratchRelay(&s.advertBuf)
	if err := adv.DecodeInto(data, s.now); err != nil {
		return nil, err
	}
	out := s.transfers[:0]
	for _, e := range s.n.produced.live(s.now) {
		if e.copies <= 0 {
			continue
		}
		match, err := adv.ContainsAnyPre(e.pre, s.now)
		if err != nil {
			return nil, err
		}
		if match {
			out = append(out, Transfer{Msg: e.msg, Payload: e.payload})
		}
	}
	s.transfers = out
	return out, nil
}

// --- Claims ---------------------------------------------------------------

// claimKind selects the Abort (refund) action of a claim.
type claimKind uint8

const (
	claimCarried claimKind = iota + 1
	claimDirect
	claimReplication
)

// Claim is a message copy removed from its store pending transmission.
// Commit settles it; Abort puts it back. Exactly one of the two runs —
// later calls are no-ops.
type Claim struct {
	msg     workload.Message
	payload []byte
	settled bool

	// kind, entry, and peer fully describe the refund action; a typed
	// record instead of a closure keeps claims allocation-free.
	kind  claimKind
	n     *Node
	entry *stored
	peer  NodeID
}

// Msg returns the claimed message.
//
//bsub:hotpath
func (c *Claim) Msg() workload.Message { return c.msg }

// Payload returns the claimed message's payload bytes.
//
//bsub:hotpath
func (c *Claim) Payload() []byte { return c.payload }

// Commit settles the claim: the copy is spent for good.
//
//bsub:hotpath
func (c *Claim) Commit() { c.settled = true }

// Abort refunds an unsettled claim.
//
//bsub:hotpath
func (c *Claim) Abort() {
	if c.settled {
		return
	}
	c.settled = true
	switch c.kind {
	case claimCarried:
		c.n.carried.add(c.entry)
	case claimDirect:
		delete(c.entry.sent, c.peer)
	case claimReplication:
		c.entry.copies++
	}
}

// claimArena hands out Claim records from fixed-size chunks, so the
// pointers a session returns stay stable while the backing memory is
// reused across contacts. (A plain slice would not do: append growth
// relocates earlier records, dangling the *Claim pointers already handed
// to the adapter.)
type claimArena struct {
	chunks [][]Claim
	used   int
}

const claimChunkSize = 16

//bsub:hotpath
func (a *claimArena) take() *Claim {
	ci, off := a.used/claimChunkSize, a.used%claimChunkSize
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Claim, claimChunkSize))
	}
	a.used++
	c := &a.chunks[ci][off]
	*c = Claim{}
	return c
}

//bsub:hotpath
func (a *claimArena) reset() { a.used = 0 }

// claim charges the budget and records the refund action. The (claim, ok)
// shape is shared by all three claim steps: (nil, true) means "skip this
// message, keep going"; (nil, false) means "stop — no budget left (or the
// session is aborted)".
//
//bsub:hotpath
func (s *Session) claim(e *stored, kind claimKind) (*Claim, bool) {
	if !s.budget.Spend(e.msg.Size) {
		return nil, false
	}
	c := s.claimArena.take()
	c.msg, c.payload = e.msg, e.payload
	c.kind, c.n, c.entry, c.peer = kind, s.n, e, s.peer.ID
	s.claims = append(s.claims, c)
	return c, true
}

// ClaimCarried removes carried copy id for hand-off to the peer
// (preferential forward or carried delivery). Abort restores the copy.
//
//bsub:hotpath
func (s *Session) ClaimCarried(id int) (*Claim, bool) {
	if s.poisoned {
		return nil, false
	}
	e := s.n.carried.get(id)
	if e == nil {
		return nil, true
	}
	c, ok := s.claim(e, claimCarried)
	if c != nil {
		s.n.carried.remove(id)
	}
	return c, ok
}

// ClaimDirect marks own message id as served directly to this peer
// ("direct deliveries are not counted against the copy limit"). Abort
// clears the mark so a later contact can retry.
//
//bsub:hotpath
func (s *Session) ClaimDirect(id int) (*Claim, bool) {
	if s.poisoned {
		return nil, false
	}
	e := s.n.produced.get(id)
	if e == nil || e.sentTo(s.peer.ID) {
		return nil, true
	}
	c, ok := s.claim(e, claimDirect)
	if c != nil {
		e.markSent(s.peer.ID)
	}
	return c, ok
}

// ClaimReplication spends one producer copy of own message id for
// replication to the peer broker. Exhausting the budget ends replication
// only: the message stays in the produced store (at zero copies) until its
// TTL, so later contacts can still serve matching subscribers directly —
// "direct deliveries are not counted against the copy limit". Abort
// restores the copy (MSGACK refund).
//
//bsub:hotpath
func (s *Session) ClaimReplication(id int) (*Claim, bool) {
	if s.poisoned {
		return nil, false
	}
	e := s.n.produced.get(id)
	if e == nil || e.copies <= 0 {
		return nil, true
	}
	c, ok := s.claim(e, claimReplication)
	if c != nil {
		e.copies--
	}
	return c, ok
}

// Abort refunds every unsettled claim (a severed contact's MSGACKs never
// arrived) and poisons the session against further claims. It returns the
// number of copies refunded. Spent budget is not returned: the bytes of a
// severed contact were still transmitted.
//
//bsub:hotpath
func (s *Session) Abort() int {
	s.poisoned = true
	refunded := 0
	for _, c := range s.claims {
		if !c.settled {
			c.Abort()
			refunded++
		}
	}
	return refunded
}
