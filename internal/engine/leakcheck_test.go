package engine

import (
	"testing"
	"time"

	"bsub/internal/workload"
)

// TestReleaseLeakHook is the dynamic twin of the claimsettle analyzer: the
// static check proves adapter code settles every claim on every path, and
// this hook proves Release can tell when somebody didn't.
func TestReleaseLeakHook(t *testing.T) {
	record := func() (*[]int, func()) {
		var got []int
		prev := claimLeakHook
		claimLeakHook = func(leaked int) { got = append(got, leaked) }
		return &got, func() { claimLeakHook = prev }
	}

	cfg := DefaultConfig(0.1)

	t.Run("leaked claims reach the hook", func(t *testing.T) {
		got, restore := record()
		defer restore()
		n := mustNode(t, 0, cfg, time.Hour)
		peer := mustNode(t, 1, cfg, time.Hour)
		n.AcceptCarried(workload.Message{ID: 1, Key: "k", Origin: 9, Size: 10}, nil, 0)
		n.AddProduced(workload.Message{ID: 2, Key: "k", Origin: 0, Size: 10}, nil)

		s, sp := contact(n, peer, Unlimited{}, time.Minute)
		if c, ok := s.ClaimCarried(1); c == nil || !ok {
			t.Fatal("carried claim refused")
		}
		if c, ok := s.ClaimDirect(2); c == nil || !ok {
			t.Fatal("direct claim refused")
		}
		s.Release()
		sp.Release()
		if len(*got) != 1 || (*got)[0] != 2 {
			t.Fatalf("hook observed %v, want one call with 2 leaked claims", *got)
		}
	})

	t.Run("settled sessions stay silent", func(t *testing.T) {
		got, restore := record()
		defer restore()
		n := mustNode(t, 0, cfg, time.Hour)
		peer := mustNode(t, 1, cfg, time.Hour)
		n.AcceptCarried(workload.Message{ID: 1, Key: "k", Origin: 9, Size: 10}, nil, 0)

		s, sp := contact(n, peer, Unlimited{}, time.Minute)
		c, ok := s.ClaimCarried(1)
		if c == nil || !ok {
			t.Fatal("carried claim refused")
		}
		c.Commit()
		s.Release()
		sp.Release()
		if len(*got) != 0 {
			t.Fatalf("hook observed %v, want no calls", *got)
		}
	})

	t.Run("explicit Abort counts as settling", func(t *testing.T) {
		got, restore := record()
		defer restore()
		n := mustNode(t, 0, cfg, time.Hour)
		peer := mustNode(t, 1, cfg, time.Hour)
		n.AcceptCarried(workload.Message{ID: 1, Key: "k", Origin: 9, Size: 10}, nil, 0)

		s, sp := contact(n, peer, Unlimited{}, time.Minute)
		if c, ok := s.ClaimCarried(1); c == nil || !ok {
			t.Fatal("carried claim refused")
		}
		s.Abort() // the severed-contact idiom: refund everything, then release
		s.Release()
		sp.Release()
		if len(*got) != 0 {
			t.Fatalf("hook observed %v, want no calls", *got)
		}
	})
}
