package engine

import (
	"sort"
	"sync"
	"time"

	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// stored is one message copy held by a node: the message, its payload (nil
// inside the simulator, real bytes on a live node), its match keys with
// precomputed filter digests, its expiry, the producer-side replication
// budget, and the set of peers the copy was directly served to.
type stored struct {
	msg       workload.Message
	payload   []byte
	pre       []tcbf.PreKey
	expiresAt time.Duration
	copies    int
	sent      map[NodeID]struct{}
}

// preKeyCache interns the one-element PreKey slice of each single-key
// message and subscription. The key universe is small (a workload KeySet)
// while copies are legion — at million-node scale, interning collapses
// what would be one 56-byte slice per stored copy and per node into one
// per distinct key. The cached slices are immutable by contract: they are
// handed out at len == cap == 1, so any append relocates instead of
// scribbling on the shared array. sync.Map because live-node adapters
// drive engines from concurrent goroutines; the value is a pure function
// of the key, so racing fills agree.
var preKeyCache sync.Map // workload.Key -> []tcbf.PreKey

// internPre returns the shared digest slice for a single key.
func internPre(k workload.Key) []tcbf.PreKey {
	if v, ok := preKeyCache.Load(k); ok {
		return v.([]tcbf.PreKey)
	}
	pre := make([]tcbf.PreKey, 1)
	pre[0] = tcbf.Precompute(k)
	v, _ := preKeyCache.LoadOrStore(k, pre)
	return v.([]tcbf.PreKey)
}

// keySliceCache interns one-element interest slices the same way, for
// Node.Subscribe's single-subscription fast path.
var keySliceCache sync.Map // workload.Key -> []workload.Key

// internKeySlice returns the shared one-element slice holding k, at
// len == cap == 1 (append relocates, never mutates).
func internKeySlice(k workload.Key) []workload.Key {
	if v, ok := keySliceCache.Load(k); ok {
		return v.([]workload.Key)
	}
	v, _ := keySliceCache.LoadOrStore(k, []workload.Key{k})
	return v.([]workload.Key)
}

// precomputeKeys hashes all of a message's match keys once at store time,
// so per-contact filter queries reuse the digests instead of rehashing.
// Single-key messages (the paper's workload) share interned digests.
func precomputeKeys(m *workload.Message) []tcbf.PreKey {
	if len(m.Extra) == 0 {
		return internPre(m.Key)
	}
	out := make([]tcbf.PreKey, 1, 1+len(m.Extra))
	out[0] = tcbf.Precompute(m.Key)
	for _, k := range m.Extra {
		out = append(out, tcbf.Precompute(k))
	}
	return out
}

//bsub:hotpath
func (e *stored) sentTo(peer NodeID) bool {
	_, ok := e.sent[peer]
	return ok
}

//bsub:coldpath
func (e *stored) markSent(peer NodeID) {
	if e.sent == nil {
		e.sent = make(map[NodeID]struct{})
	}
	e.sent[peer] = struct{}{}
}

// store is a keyed message buffer with lazy TTL expiry and deterministic
// (ID-ordered) iteration — msgstore.Store's incremental-index design,
// extended with payloads and direct-send bookkeeping. live is called once
// or twice per contact on hot paths, so new IDs accumulate in a small
// pending list merged into the sorted index on the next read instead of
// re-sorting the whole buffer every contact.
//
// Read methods are nil-receiver-safe (a nil store reads as empty), which
// is what lets Node allocate its stores lazily: most nodes in a
// million-node population never hold a message, and pay nothing.
type store struct {
	entries map[int]*stored
	sorted  []int
	pending []int
	// liveBuf backs the slice live returns, reused call to call.
	liveBuf []*stored
}

func newStore() *store { return &store{entries: make(map[int]*stored)} }

// add inserts (or replaces) a copy.
//
//bsub:hotpath
func (s *store) add(e *stored) {
	if _, exists := s.entries[e.msg.ID]; !exists {
		s.pending = append(s.pending, e.msg.ID)
	}
	s.entries[e.msg.ID] = e
}

//bsub:hotpath
func (s *store) has(id int) bool {
	if s == nil {
		return false
	}
	_, ok := s.entries[id]
	return ok
}

//bsub:hotpath
func (s *store) get(id int) *stored {
	if s == nil {
		return nil
	}
	return s.entries[id]
}

//bsub:hotpath
func (s *store) remove(id int) {
	if s == nil {
		return
	}
	delete(s.entries, id)
}

//bsub:hotpath
func (s *store) len() int {
	if s == nil {
		return 0
	}
	return len(s.entries)
}

// live returns the unexpired copies sorted by ID, purging expired entries
// (and sweeping stale index slots) as a side effect. The returned slice is
// valid until the next store call — the backing buffer is reused by the
// next live call.
//
//bsub:hotpath
func (s *store) live(now time.Duration) []*stored {
	if s == nil {
		return nil
	}
	s.settleIndex()
	out := s.liveBuf[:0]
	kept := s.sorted[:0]
	for _, id := range s.sorted {
		e, ok := s.entries[id]
		if !ok {
			continue // removed: sweep
		}
		if now > e.expiresAt {
			delete(s.entries, id)
			continue
		}
		kept = append(kept, id)
		out = append(out, e)
	}
	s.sorted = kept
	s.liveBuf = out
	return out
}

// ids returns all present IDs (possibly expired) in ascending order.
func (s *store) ids() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, len(s.entries))
	for id := range s.entries {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// settleIndex merges pending IDs into the sorted index.
//
//bsub:coldpath
func (s *store) settleIndex() {
	if len(s.pending) == 0 {
		return
	}
	sort.Ints(s.pending)
	if len(s.sorted) == 0 {
		s.sorted = append(s.sorted, s.pending...)
		s.pending = s.pending[:0]
		return
	}
	merged := make([]int, 0, len(s.sorted)+len(s.pending))
	i, j := 0, 0
	for i < len(s.sorted) && j < len(s.pending) {
		switch {
		case s.sorted[i] < s.pending[j]:
			merged = append(merged, s.sorted[i])
			i++
		case s.sorted[i] > s.pending[j]:
			merged = append(merged, s.pending[j])
			j++
		default: // re-added ID already indexed
			merged = append(merged, s.sorted[i])
			i, j = i+1, j+1
		}
	}
	merged = append(merged, s.sorted[i:]...)
	merged = append(merged, s.pending[j:]...)
	s.sorted = merged
	s.pending = s.pending[:0]
}
