// Package engine is the transport-agnostic B-SUB protocol core shared by
// the simulator adapter (internal/core) and the live TCP node
// (internal/livenode).
//
// The engine owns all per-node protocol state — interests, the partitioned
// TCBF relay filter (Section VI-D), broker role and election bookkeeping,
// and the produced/carried message stores with copy accounting — and
// exposes a pure session state machine: BeginContact pins a contact
// session, whose typed steps (hello/election, genuine-filter propagation,
// relay exchange with preferential forwarding, interest-BF pulls) each
// produce or consume the Section VI-C wire encodings directly. Adapters
// decide only how those bytes travel: the simulator hands them across a
// function call, the live node wraps them in CRC-framed TCP messages.
// Because both adapters exchange the very same bytes, they make identical
// protocol decisions on identical contact sequences — the property the
// parity test in internal/livenode pins down.
//
// Every transfer is charged against a Budget (the simulator's bandwidth
// accountant or the live node's Unlimited), and message hand-off is split
// into claim/commit/abort so the live node's MSGACK refund semantics plug
// in unchanged: a claim removes the copy from its store, Commit spends it
// for good, Abort refunds it.
//
// The engine itself is not safe for concurrent use; adapters serialize
// access (the live node holds one mutex around every engine call, never
// across network I/O).
package engine

import (
	"fmt"
	"time"

	"bsub/internal/filter"
	"bsub/internal/tcbf"
)

// Config holds B-SUB's tunable parameters with the paper's evaluation
// defaults documented per field.
type Config struct {
	// FilterM is the TCBF bit-vector length ("a bit-vector of 256 bits").
	FilterM int
	// FilterK is the TCBF hash count ("4 hash functions").
	FilterK int
	// InitialCounter is the TCBF insertion value C.
	InitialCounter float64
	// DecayPerMinute is the decaying factor DF. Zero disables decay
	// (interests never leave relay filters).
	DecayPerMinute float64
	// CopyLimit is the producer replication bound C ("the maximum number
	// of copies that can be forwarded by producers is 3").
	CopyLimit int
	// BrokerLow is T_l: meeting fewer brokers than this within Window
	// triggers a promotion.
	BrokerLow int
	// BrokerHigh is T_u: meeting more brokers than this within Window
	// triggers a demotion attempt.
	BrokerHigh int
	// Window is the broker-allocation time window W ("the time window is
	// 5 hours").
	Window time.Duration
	// BrokerMerge selects how brokers combine each other's relay filters.
	// The paper uses the maximum (M-merge) to avoid the bogus-counter
	// feedback loop of Fig. 6; the additive variant exists for ablation.
	// The zero value means BrokerMergeMax.
	BrokerMerge BrokerMergeMode
	// DFMode selects how the decaying factor is maintained. The zero
	// value (DFFixed) uses DecayPerMinute as given.
	DFMode DFMode
	// TargetFPR is the relay-filter false-positive rate the DFFeedback
	// controller steers toward (Section VI-B: "we can tentatively adjust
	// the DF, then re-adjust its value by observing the resultant FPR;
	// until a desirable FPR is achieved"). Required positive when DFMode
	// is DFFeedback.
	TargetFPR float64
	// RelayPartitions applies the Section VI-D multi-filter allocation to
	// relay filters: interests are hash-routed across this many TCBFs,
	// lowering the joint false-positive rate (Eq. 7) at the cost of more
	// control bytes. Zero or one means a single filter (the paper's
	// evaluation setting).
	RelayPartitions int
	// Backend selects the relay-filter implementation behind the
	// internal/filter seam. Nil means filter.Default (the paper's packed
	// partitioned TCBF). Backends must be comparable value types: two
	// engines share contact scratch arenas only when their backends are
	// equal.
	Backend filter.Backend
}

// DFMode selects the decaying-factor policy.
type DFMode int

const (
	// DFFixed uses Config.DecayPerMinute unchanged (the paper's
	// evaluation setting, with the DF precomputed from Eq. 5).
	DFFixed DFMode = iota
	// DFOnlineEq5 recomputes each broker's DF from its own contact
	// history: "it is straightforward to set an appropriate DF online by
	// counting the number of nodes a broker meets in the time window"
	// (Section VII-B). The TTL plays the role of the delay bound T.
	DFOnlineEq5
	// DFFeedback steers the DF so the relay filter's estimated FPR tracks
	// Config.TargetFPR (Section VI-B's observe-and-adjust loop): too many
	// false positives -> decay faster; comfortably below target -> decay
	// slower and let interests propagate further.
	DFFeedback
)

// BrokerMergeMode selects the broker-broker relay-filter merge operation.
type BrokerMergeMode int

const (
	// BrokerMergeMax is the paper's M-merge (the default).
	BrokerMergeMax BrokerMergeMode = iota
	// BrokerMergeAdditive is the A-merge the paper warns against between
	// brokers (Fig. 6); provided for the ablation study.
	BrokerMergeAdditive
)

// DefaultConfig returns the paper's evaluation parameters with the given
// decaying factor.
func DefaultConfig(decayPerMinute float64) Config {
	return Config{
		FilterM:        256,
		FilterK:        4,
		InitialCounter: 10,
		DecayPerMinute: decayPerMinute,
		CopyLimit:      3,
		BrokerLow:      3,
		BrokerHigh:     5,
		Window:         5 * time.Hour,
	}
}

// Validate rejects unusable parameter combinations.
func (c Config) Validate() error {
	switch {
	case c.FilterM <= 0 || c.FilterK <= 0:
		return fmt.Errorf("engine: filter geometry (%d,%d) invalid", c.FilterM, c.FilterK)
	case c.InitialCounter <= 0:
		return fmt.Errorf("engine: initial counter must be positive, got %g", c.InitialCounter)
	case c.DecayPerMinute < 0:
		return fmt.Errorf("engine: decay factor must be non-negative, got %g", c.DecayPerMinute)
	case c.CopyLimit < 1:
		return fmt.Errorf("engine: copy limit must be at least 1, got %d", c.CopyLimit)
	case c.BrokerLow < 0 || c.BrokerHigh < c.BrokerLow:
		return fmt.Errorf("engine: broker thresholds (%d,%d) invalid", c.BrokerLow, c.BrokerHigh)
	case c.Window <= 0:
		return fmt.Errorf("engine: window must be positive, got %v", c.Window)
	case c.BrokerMerge != BrokerMergeMax && c.BrokerMerge != BrokerMergeAdditive:
		return fmt.Errorf("engine: unknown broker merge mode %d", c.BrokerMerge)
	case c.DFMode < DFFixed || c.DFMode > DFFeedback:
		return fmt.Errorf("engine: unknown DF mode %d", c.DFMode)
	case c.DFMode == DFFeedback && c.TargetFPR <= 0:
		return fmt.Errorf("engine: DF feedback requires a positive target FPR, got %g", c.TargetFPR)
	case c.RelayPartitions < 0 || c.RelayPartitions > 255:
		return fmt.Errorf("engine: relay partitions must be in [0,255], got %d", c.RelayPartitions)
	}
	// Geometry validation is enforced at the filter seam: whatever backend
	// is configured must accept the filter geometry before any engine
	// state is built on it.
	if err := c.backend().Validate(c.FilterConfig(), c.partitions()); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	return nil
}

// backend normalizes the configured filter backend (nil means the packed
// TCBF default).
//
//bsub:hotpath
func (c Config) backend() filter.Backend {
	if c.Backend == nil {
		return filter.Default
	}
	return c.Backend
}

// FilterConfig returns the per-filter TCBF geometry the protocol runs on.
func (c Config) FilterConfig() tcbf.Config {
	return tcbf.Config{
		M:              c.FilterM,
		K:              c.FilterK,
		Initial:        c.InitialCounter,
		DecayPerMinute: c.DecayPerMinute,
	}
}

// partitions normalizes the configured partition count (zero means one).
//
//bsub:hotpath
func (c Config) partitions() int {
	if c.RelayPartitions < 1 {
		return 1
	}
	return c.RelayPartitions
}

// HandshakeBytes is the cost of the identity/role/degree exchange at
// contact start.
const HandshakeBytes = 16

// Bounds for the DFFeedback controller: never decay slower than the Eq. 5
// no-accident baseline C/T, never faster than one initial-value per
// minute's worth of decay scaled by feedbackCeil.
const (
	feedbackGrow   = 1.25
	feedbackShrink = 0.85
	feedbackCeil   = 10.0 // x the baseline
)
