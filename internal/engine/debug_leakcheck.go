//go:build bsubdebug

package engine

import "fmt"

// Under the bsubdebug tag, a Release that has to refund unsettled claims
// panics instead of silently mopping up. Severed live contacts legitimately
// release mid-claim, so this stays out of production builds; simulator and
// test runs compiled with -tags bsubdebug turn claim leaks into crashes.
func init() {
	claimLeakHook = func(leaked int) {
		panic(fmt.Sprintf("engine: Release refunded %d unsettled claim(s); callers must Commit or Abort every claim", leaked))
	}
}
