package engine

import (
	"fmt"
	"sort"
	"time"

	"bsub/internal/analysis"
	"bsub/internal/filter"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// NodeID identifies a node across the mesh. It aliases int so the
// simulator's trace.NodeID indices and the live node's uint32 identifiers
// both convert trivially.
type NodeID = int

// Hello is the identity/role/degree announcement that opens a contact.
type Hello struct {
	ID     NodeID
	Broker bool
	// Degree is the number of distinct peers met within the election
	// window, excluding the contact being opened.
	Degree int
}

// Action is one side's election verdict for its peer.
type Action int

// Election actions; the values match the livenode wire bytes.
const (
	ActNone Action = iota
	ActPromote
	ActDemote
)

// Accept reports what happened to a message copy handed to a node.
type Accept struct {
	// Stored reports that the copy entered the carried store.
	Stored bool
	// Delivered reports a first-time delivery to this node's own
	// subscriptions; the adapter should surface the message to the
	// application (or the simulator's collector) exactly once.
	Delivered bool
	// Direct reports that the message came straight from its producer.
	Direct bool
}

// sighting is a user's record of a broker it met: when, and the degree
// the broker announced at that meeting.
type sighting struct {
	at     time.Duration
	degree int
}

// Node is the per-device B-SUB protocol state. It is not safe for
// concurrent use; adapters serialize access.
type Node struct {
	cfg  Config
	fcfg tcbf.Config
	ttl  time.Duration
	id   NodeID

	interests []workload.Key
	// preInterests mirrors interests with precomputed filter digests, so
	// per-contact filter builds (GenuineOut, InterestOut) hash nothing.
	preInterests []tcbf.PreKey
	broker       bool

	// relay is the broker's relay filter, built by the configured
	// internal/filter backend (the default is the Section VI-D
	// partitioned TCBF); nil for plain users.
	relay filter.Filter

	// produced holds the node's own messages with their remaining
	// replication budget; carried holds broker-relayed copies. Both are
	// nil until first use (store reads are nil-safe): at million-node
	// scale most nodes never hold a message.
	produced *store
	carried  *store

	// delivered dedups application deliveries by message ID. Lazy, like
	// the two maps below: nil reads as empty, first write allocates.
	delivered map[int]struct{}

	// meetings maps peers to their last meeting time; a node's degree is
	// the number of peers met within the window.
	meetings map[NodeID]time.Duration
	// sightings maps broker IDs to this node's latest sighting of them.
	sightings map[NodeID]sighting

	// freeSessions holds released sessions whose scratch arenas (filters,
	// encode buffers, claim records) the next BeginContact reuses.
	freeSessions []*Session

	// clockHigh is the node's time high-water mark. Every session step that
	// touches TCBF state ratchets its pinned time up to this mark (and
	// advances the mark), so concurrent sessions interleaving on one node —
	// each with a slightly older pinned clock — can never run a filter
	// operation backwards in time. Under a serialized monotone clock (the
	// simulator) the ratchet is a no-op.
	clockHigh time.Duration
}

// NewNode validates cfg and returns a fresh user node. The node's stores
// and bookkeeping maps allocate lazily on first use, so an idle node costs
// one struct — the property the million-node simulator depends on.
func NewNode(id NodeID, cfg Config, ttl time.Duration) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("engine: TTL must be positive, got %v", ttl)
	}
	return &Node{
		cfg:  cfg,
		fcfg: cfg.FilterConfig(),
		ttl:  ttl,
		id:   id,
	}, nil
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Config returns the protocol parameters the node runs.
func (n *Node) Config() Config { return n.cfg }

// TTL returns the message lifetime.
func (n *Node) TTL() time.Duration { return n.ttl }

// Subscribe adds interest keys, deduplicating. A node's first (and, in
// the paper's workload, only) subscription shares the interned digest
// slice for its key; the shared slice has cap 1, so a second Subscribe
// relocates rather than mutating it.
func (n *Node) Subscribe(keys ...workload.Key) {
	for _, k := range keys {
		dup := false
		for _, have := range n.interests {
			if have == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if n.interests == nil {
			n.interests = internKeySlice(k)
			n.preInterests = internPre(k)
			continue
		}
		n.interests = append(n.interests, k)
		n.preInterests = append(n.preInterests, tcbf.Precompute(k))
	}
}

// Interests returns a copy of the node's subscriptions.
func (n *Node) Interests() []workload.Key {
	return append([]workload.Key(nil), n.interests...)
}

// Wants reports whether the message matches the node's interests.
func (n *Node) Wants(m *workload.Message) bool {
	for _, want := range n.interests {
		for _, k := range m.MatchKeys() {
			if k == want {
				return true
			}
		}
	}
	return false
}

// AddProduced stores one of the node's own messages with the full copy
// budget; it expires TTL after creation.
func (n *Node) AddProduced(msg workload.Message, payload []byte) {
	if n.produced == nil {
		n.produced = newStore()
	}
	n.produced.add(&stored{
		msg:       msg,
		payload:   payload,
		pre:       precomputeKeys(&msg),
		expiresAt: msg.CreatedAt + n.ttl,
		copies:    n.cfg.CopyLimit,
	})
}

// AcceptCarried ingests a relayed copy (preferential forward or
// replication). Post-TTL copies are dropped; a copy the node itself wants
// is marked delivered (once); duplicates collapse into the existing copy.
func (n *Node) AcceptCarried(msg workload.Message, payload []byte, now time.Duration) Accept {
	var acc Accept
	if now > msg.CreatedAt+n.ttl {
		return acc
	}
	acc.Delivered = n.markDelivered(&msg)
	if n.carried.has(msg.ID) {
		return acc
	}
	if n.carried == nil {
		n.carried = newStore()
	}
	n.carried.add(&stored{
		msg:       msg,
		payload:   payload,
		pre:       precomputeKeys(&msg),
		expiresAt: msg.CreatedAt + n.ttl,
	})
	acc.Stored = true
	return acc
}

// ReceiveDelivery ingests a message served from a delivery pull. The match
// was probabilistic (Bloom filter), so the copy counts as delivered only
// if the node really wants it and has not seen it before.
func (n *Node) ReceiveDelivery(msg workload.Message, from NodeID, now time.Duration) Accept {
	var acc Accept
	if now > msg.CreatedAt+n.ttl {
		return acc
	}
	acc.Direct = msg.Origin == from
	acc.Delivered = n.markDelivered(&msg)
	return acc
}

// markDelivered records a first-time delivery of a wanted message. A node
// never delivers its own message to itself, even when a broker carries a
// copy back to the producer.
func (n *Node) markDelivered(msg *workload.Message) bool {
	if msg.Origin == n.id || !n.Wants(msg) {
		return false
	}
	if _, dup := n.delivered[msg.ID]; dup {
		return false
	}
	if n.delivered == nil {
		n.delivered = make(map[int]struct{})
	}
	n.delivered[msg.ID] = struct{}{}
	return true
}

// IsBroker reports whether the node currently serves as a broker.
func (n *Node) IsBroker() bool { return n.broker }

// Relay returns the node's relay filter, or nil for non-brokers. Callers
// must not mutate it.
func (n *Node) Relay() filter.Filter { return n.relay }

// RelayDF returns the decaying factor currently in effect on the relay
// filter, or zero for non-brokers.
func (n *Node) RelayDF() float64 {
	if n.relay == nil {
		return 0
	}
	return n.relay.Config().DecayPerMinute
}

// Promote installs a fresh relay filter and makes the node a broker.
// Idempotent. Exported for adapters and tests; inside a contact the
// election (Session.Apply) calls it.
//
//bsub:coldpath
func (n *Node) Promote(now time.Duration) {
	if n.broker {
		return
	}
	n.broker = true
	n.relay = filter.MustNew(n.cfg.backend(), n.fcfg, n.cfg.partitions(), now)
}

// Demote returns the node to plain-user duty. Carried copies remain until
// TTL so already-replicated messages can still reach consumers the
// ex-broker meets directly. Idempotent.
//
//bsub:coldpath
func (n *Node) Demote() {
	n.broker = false
	n.relay = nil
}

// RecordMeeting notes a contact with peer at the given time (Session
// records it automatically; exported for tests and adapters seeding
// history).
//
//bsub:hotpath
func (n *Node) RecordMeeting(peer NodeID, at time.Duration) {
	if n.meetings == nil {
		n.growMeetings()
	}
	n.meetings[peer] = at
}

// growMeetings allocates the meeting history on a node's first contact.
//
//bsub:coldpath
func (n *Node) growMeetings() { n.meetings = make(map[NodeID]time.Duration) }

// RecordBrokerSighting seeds the election history with a broker sighting
// (tests and adapters; Session records sightings automatically).
//
//bsub:hotpath
func (n *Node) RecordBrokerSighting(peer NodeID, degree int, at time.Duration) {
	if n.sightings == nil {
		n.growSightings()
	}
	n.sightings[peer] = sighting{at: at, degree: degree}
}

// growSightings allocates the sighting history on first use.
//
//bsub:coldpath
func (n *Node) growSightings() { n.sightings = make(map[NodeID]sighting) }

// Degree counts (and prunes) the distinct peers met within the election
// window ending at now.
//
//bsub:hotpath
func (n *Node) Degree(now time.Duration) int {
	d := 0
	for peer, at := range n.meetings {
		if now-at <= n.cfg.Window {
			d++
		} else {
			delete(n.meetings, peer)
		}
	}
	return d
}

// countPeers counts distinct peers met within window without pruning, so
// it can use a different horizon than the election's Window. Entries older
// than the election window may already be pruned; the count is then a
// conservative lower bound.
//
//bsub:hotpath
func (n *Node) countPeers(now, window time.Duration) int {
	d := 0
	for _, at := range n.meetings {
		if now-at <= window {
			d++
		}
	}
	return d
}

// brokersInWindow returns the number of distinct brokers sighted within
// the window and the mean of their last-reported degrees, pruning expired
// sightings.
//
//bsub:hotpath
func (n *Node) brokersInWindow(now time.Duration) (count int, meanDegree float64) {
	sum := 0
	for id, s := range n.sightings {
		if now-s.at > n.cfg.Window {
			delete(n.sightings, id)
			continue
		}
		count++
		sum += s.degree
	}
	if count > 0 {
		meanDegree = float64(sum) / float64(count)
	}
	return count, meanDegree
}

// RetuneDF maintains the broker's decaying factor per the configured
// policy (Sections VI-B / VII-B). Session.Apply calls it once per contact;
// exported for tests.
//
//bsub:hotpath
func (n *Node) RetuneDF(now time.Duration) {
	if n.cfg.DFMode == DFFixed || !n.broker || n.relay == nil {
		return
	}
	ttlMin := n.ttl.Minutes()
	baseline := n.cfg.InitialCounter / ttlMin
	switch n.cfg.DFMode {
	case DFOnlineEq5:
		// Count the distinct peers met within the delay bound T (= TTL),
		// the broker's own live estimate of the keys it collects.
		nKeys := n.countPeers(now, n.ttl)
		df, err := analysis.DecayFactor(
			n.cfg.InitialCounter, nKeys, n.cfg.FilterM, n.cfg.FilterK, ttlMin, 0.005)
		if err != nil {
			return
		}
		_ = n.relay.SetDecayFactor(df, now)
	case DFFeedback:
		if err := n.relay.Advance(now); err != nil {
			return
		}
		df := n.relay.Config().DecayPerMinute
		if df <= 0 {
			df = baseline
		}
		est := n.relay.EstimatedFPR()
		switch {
		case est > n.cfg.TargetFPR:
			df *= feedbackGrow
		case est < n.cfg.TargetFPR/2:
			df *= feedbackShrink
		default:
			return
		}
		if df < baseline {
			df = baseline
		}
		if max := baseline * feedbackCeil; df > max {
			df = max
		}
		_ = n.relay.SetDecayFactor(df, now)
	}
}

// --- Store introspection (adapters and tests) -----------------------------

// CarriedCount returns how many relayed copies the node holds (possibly
// including not-yet-purged expired ones).
func (n *Node) CarriedCount() int { return n.carried.len() }

// CarriedIDs returns the IDs of all carried copies in ascending order.
func (n *Node) CarriedIDs() []int { return n.carried.ids() }

// HasCarried reports whether the node carries a copy of message id.
func (n *Node) HasCarried(id int) bool { return n.carried.has(id) }

// DropCarried removes a carried copy without a session (the simulator
// collapses duplicate copies this way).
func (n *Node) DropCarried(id int) { n.carried.remove(id) }

// ProducedCount returns how many own messages the node still holds.
func (n *Node) ProducedCount() int { return n.produced.len() }

// ProducedIDs returns the IDs of all held own messages in ascending order.
func (n *Node) ProducedIDs() []int { return n.produced.ids() }

// ProducedCopies returns the remaining replication budget of message id,
// or zero if the message is gone.
func (n *Node) ProducedCopies(id int) int {
	if e := n.produced.get(id); e != nil {
		return e.copies
	}
	return 0
}

// DeliveredIDs returns the IDs of all messages delivered to this node's
// subscriptions, ascending.
func (n *Node) DeliveredIDs() []int {
	out := make([]int, 0, len(n.delivered))
	for id := range n.delivered {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Purge drops expired copies from both stores, driven by the same
// TTL-from-creation rule the stores' lazy expiry uses (no separate
// wall-clock bookkeeping).
func (n *Node) Purge(now time.Duration) {
	n.produced.live(now)
	n.carried.live(now)
}

// ClearSentTo forgets that any produced message was served directly to
// peer. Call it when the peer is declared dead: a restarted incarnation
// starts with an empty delivered set, so the stale sent-marker would
// otherwise block redelivery forever. A live peer that was wrongly
// suspected simply dedups the repeat delivery (exactly-once per
// incarnation is the receiver's job).
func (n *Node) ClearSentTo(peer NodeID) {
	if n.produced == nil {
		return
	}
	for _, e := range n.produced.entries {
		delete(e.sent, peer)
	}
}
