//go:build !race

package engine

import (
	"fmt"
	"testing"
	"time"

	"bsub/internal/bloofi"
	"bsub/internal/filter"
	"bsub/internal/workload"
)

// TestContactAllocationFree pins the tentpole property of the contact hot
// path: a warm BeginContact → full broker-broker exchange → Release cycle
// performs zero heap allocations on the default packed TCBF backend, in
// both broker merge modes. The alternative filter backends ride the same
// cycle: retouching works in place and a stationary autoscaling stack
// never grows, so both stay at zero; the Bloofi tree allocates by design
// (per-insert rebuilds, absorb-as-leaf clones) and is pinned to a budget
// with ~2x headroom so a hot-path regression still trips the guard.
// Excluded under -race (the race runtime allocates during bookkeeping).
func TestContactAllocationFree(t *testing.T) {
	for _, m := range []struct {
		name    string
		mode    BrokerMergeMode
		backend filter.Backend // nil = the default packed TCBF
		budget  float64        // max allocs per warm contact cycle
	}{
		{"mmerge", BrokerMergeMax, nil, 0},
		{"amerge", BrokerMergeAdditive, nil, 0},
		{"retouched", BrokerMergeMax, filter.Retouched{}, 0},
		{"autoscale", BrokerMergeMax, filter.Autoscale{}, 0},
		{"bloofi", BrokerMergeMax, bloofi.Backend{}, allocBudgetBloofi},
	} {
		t.Run(m.name, func(t *testing.T) {
			const ttl = 100 * time.Hour
			now := time.Hour
			cfg := DefaultConfig(0.01)
			cfg.BrokerMerge = m.mode
			cfg.Backend = m.backend
			left, err := NewNode(1, cfg, ttl)
			if err != nil {
				t.Fatal(err)
			}
			right, err := NewNode(2, cfg, ttl)
			if err != nil {
				t.Fatal(err)
			}
			left.Subscribe("news")
			right.Subscribe("sports")
			left.Promote(now)
			right.Promote(now)
			var topics []workload.Key
			for i := 0; i < 32; i++ {
				topics = append(topics, workload.Key(fmt.Sprintf("topic-%02d", i)))
			}
			for r := 0; r < 3; r++ {
				if err := left.Relay().InsertAll(topics, now); err != nil {
					t.Fatal(err)
				}
			}
			if err := right.Relay().InsertAll(topics, now); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				right.AcceptCarried(workload.Message{
					ID:        1000 + i,
					Key:       topics[i],
					Origin:    3,
					Size:      100,
					CreatedAt: now,
				}, nil, now)
			}

			contact := func() {
				sl := left.BeginContact(nil, now)
				sr := right.BeginContact(nil, now)
				sl.SetPeer(sr.Hello())
				sr.SetPeer(sl.Hello())
				actL, actR := sl.Elect(), sr.Elect()
				sl.Apply(actL, actR)
				sr.Apply(actR, actL)
				dl, err := sl.RelayOut()
				if err != nil {
					t.Fatal(err)
				}
				dr, err := sr.RelayOut()
				if err != nil {
					t.Fatal(err)
				}
				if err := sl.SetPeerRelay(dr); err != nil {
					t.Fatal(err)
				}
				if err := sr.SetPeerRelay(dl); err != nil {
					t.Fatal(err)
				}
				cands, err := sr.ForwardCandidates()
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range cands {
					if claim, ok := sr.ClaimCarried(c.Msg.ID); claim == nil && !ok {
						t.Fatal("claim refused")
					}
				}
				if err := sl.MergeRelay(); err != nil {
					t.Fatal(err)
				}
				if err := sr.MergeRelay(); err != nil {
					t.Fatal(err)
				}
				for _, pair := range [][2]*Session{{sl, sr}, {sr, sl}} {
					asker, server := pair[0], pair[1]
					in, err := asker.InterestOut()
					if err != nil {
						t.Fatal(err)
					}
					if _, err := server.DeliveryMatches(in); err != nil {
						t.Fatal(err)
					}
					adv, err := asker.RelayAdvertOut()
					if err != nil {
						t.Fatal(err)
					}
					if _, err := server.ReplicationMatches(adv); err != nil {
						t.Fatal(err)
					}
				}
				// Abort refunds the carried-copy claims, so the stores
				// return to the seeded state for the next run; Release then
				// recycles the (claim-free) sessions.
				sr.Abort()
				sl.Abort()
				sr.Release()
				sl.Release()
			}
			contact() // warm the arenas
			if avg := testing.AllocsPerRun(50, contact); avg > m.budget {
				t.Errorf("warm contact: %g allocs per run, want <= %g", avg, m.budget)
			}
		})
	}
}

// Per-backend allocation ceilings for a warm contact cycle. The
// autoscaling stack allocates only when it grows a layer, which a warm
// stationary contact never does, so its steady state is zero like the
// packed backends. The Bloofi tree rebuilds aggregate levels on every
// insert and absorbs peers as cloned leaves (46 allocs measured); its
// ceiling sits at ~2x so noise passes and a hot-path regression fails.
const allocBudgetBloofi = 100
