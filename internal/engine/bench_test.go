package engine

import (
	"fmt"
	"testing"
	"time"

	"bsub/internal/bloofi"
	"bsub/internal/filter"
	"bsub/internal/workload"
)

// BenchmarkEngineContact measures one full broker-broker contact session
// through the engine — hello/election, relay-filter encode/decode
// exchange, preferential-forwarding decisions with copy claims, the
// configured merge, and both sides' delivery and replication pulls — in
// both broker merge modes on the default packed TCBF backend (the
// mmerge/amerge cases, whose names are the PR 6 baseline), and once per
// alternative filter backend. Claims are aborted at the end of each
// iteration so the stores stay stationary and iterations are comparable.
func BenchmarkEngineContact(b *testing.B) {
	modes := []struct {
		name    string
		mode    BrokerMergeMode
		backend filter.Backend // nil = the default packed TCBF
	}{
		{"mmerge", BrokerMergeMax, nil},
		{"amerge", BrokerMergeAdditive, nil},
		{"retouched", BrokerMergeMax, filter.Retouched{}},
		{"autoscale", BrokerMergeMax, filter.Autoscale{}},
		{"bloofi", BrokerMergeMax, bloofi.Backend{}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			const ttl = 100 * time.Hour
			now := time.Hour
			cfg := DefaultConfig(0.01)
			cfg.BrokerMerge = m.mode
			cfg.Backend = m.backend
			left, err := NewNode(1, cfg, ttl)
			if err != nil {
				b.Fatal(err)
			}
			right, err := NewNode(2, cfg, ttl)
			if err != nil {
				b.Fatal(err)
			}
			left.Subscribe("news")
			right.Subscribe("sports")
			left.Promote(now)
			right.Promote(now)

			// Seed realistic state: 32 relayed interests on each side
			// (reinforced on the left so forwarding has positive
			// preferences), and 16 carried copies at the right broker.
			var topics []workload.Key
			for i := 0; i < 32; i++ {
				topics = append(topics, workload.Key(fmt.Sprintf("topic-%02d", i)))
			}
			reseed := func() {
				left.Demote()
				right.Demote()
				left.Promote(now)
				right.Promote(now)
				for r := 0; r < 3; r++ {
					if err := left.Relay().InsertAll(topics, now); err != nil {
						b.Fatal(err)
					}
				}
				if err := right.Relay().InsertAll(topics, now); err != nil {
					b.Fatal(err)
				}
			}
			reseed()
			for i := 0; i < 16; i++ {
				right.AcceptCarried(workload.Message{
					ID:        1000 + i,
					Key:       topics[i],
					Origin:    3,
					Size:      100,
					CreatedAt: now,
				}, nil, now)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%64 == 0 && i > 0 {
					// Merges accumulate counters across iterations (the
					// additive mode exponentially); a periodic amortized
					// reseed keeps the filters in a realistic regime.
					reseed()
				}
				sl := left.BeginContact(nil, now)
				sr := right.BeginContact(nil, now)
				sl.SetPeer(sr.Hello())
				sr.SetPeer(sl.Hello())
				actL, actR := sl.Elect(), sr.Elect()
				sl.Apply(actL, actR)
				sr.Apply(actR, actL)

				dl, err := sl.RelayOut()
				if err != nil {
					b.Fatal(err)
				}
				dr, err := sr.RelayOut()
				if err != nil {
					b.Fatal(err)
				}
				if err := sl.SetPeerRelay(dr); err != nil {
					b.Fatal(err)
				}
				if err := sr.SetPeerRelay(dl); err != nil {
					b.Fatal(err)
				}
				cands, err := sr.ForwardCandidates()
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range cands {
					if claim, ok := sr.ClaimCarried(c.Msg.ID); claim == nil && !ok {
						b.Fatal("claim refused")
					}
				}
				if err := sl.MergeRelay(); err != nil {
					b.Fatal(err)
				}
				if err := sr.MergeRelay(); err != nil {
					b.Fatal(err)
				}

				for _, pair := range [][2]*Session{{sl, sr}, {sr, sl}} {
					asker, server := pair[0], pair[1]
					in, err := asker.InterestOut()
					if err != nil {
						b.Fatal(err)
					}
					if _, err := server.DeliveryMatches(in); err != nil {
						b.Fatal(err)
					}
					adv, err := asker.RelayAdvertOut()
					if err != nil {
						b.Fatal(err)
					}
					if _, err := server.ReplicationMatches(adv); err != nil {
						b.Fatal(err)
					}
				}

				// Abort refunds the forwarding claims — the stores return
				// to their seeded state — and Release recycles both
				// sessions' scratch arenas, so warm iterations measure the
				// steady-state (allocation-free) contact path.
				sr.Abort()
				sl.Abort()
				sr.Release()
				sl.Release()
			}
		})
	}
}
