package engine

import (
	"testing"
	"time"

	"bsub/internal/workload"
)

// FuzzSessionSteps drives two engine nodes through arbitrary session step
// orderings, truncated wire inputs, interleaved claims, and mid-contact
// aborts, and asserts the copy-conservation invariant after every
// operation: for every published message, the copies in the producer
// store, the carried stores, in flight under unsettled claims, and
// consumed by committed hand-offs sum exactly to the copy limit. A failed
// or truncated step may error, but it must never create or destroy a
// copy.
func FuzzSessionSteps(f *testing.F) {
	// Reach the deep paths quickly: promote both, contact, relay
	// exchange, forward, settle.
	f.Add([]byte{
		1, 0, // publish at A
		2, 0, 2, 1, // promote A, promote B
		0, 0, // begin contact
		5, 1, // relay exchange
		8, 0, // replication claim
		9, 0, // commit it
		0, 0, // fresh contact
		6, 0, // forward claim
		9, 0, // commit it
		11, 0, // abort sessions
	})
	f.Add([]byte{1, 0, 0, 0, 3, 0, 4, 0, 7, 0, 10, 0, 12, 9, 13, 0})
	f.Add([]byte{1, 1, 1, 2, 0, 0, 7, 3, 9, 0, 9, 1, 11, 0, 0, 0, 7, 0, 10, 0})
	// Scratch-arena reuse: claim, sever (refund + release), then run a new
	// contact on the recycled session memory and claim/commit again.
	f.Add([]byte{
		1, 0, 1, 1, // publish at A and B
		2, 0, 2, 1, // promote both
		0, 0, 5, 1, 6, 0, // contact, relay exchange, forward claim
		11, 0, // sever: abort the claim, release both arenas
		0, 0, 5, 1, 6, 0, // fresh contact reusing the arenas
		9, 0, 11, 0, // commit, sever again
	})
	f.Add([]byte{
		1, 0, 0, 0, 7, 0, // publish, contact, delivery claims
		11, 0, // sever: release with claims outstanding
		0, 0, 7, 1, 9, 0, 10, 0, // reused arena: claim both ways, settle
		11, 0, 0, 0, 8, 0, 9, 0, // third reuse: replication claim + commit
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		const ttl = 1000 * time.Hour
		cfg := DefaultConfig(0.05)
		a, err := NewNode(1, cfg, ttl)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewNode(2, cfg, ttl)
		if err != nil {
			t.Fatal(err)
		}
		a.Subscribe("alpha", "news")
		b.Subscribe("beta")
		nodes := [2]*Node{a, b}

		// recvMode distinguishes how a committed claim's copy lands at the
		// receiver, mirroring what each adapter does with the bytes.
		type recvMode int
		const (
			recvStore   recvMode = iota // AcceptCarried: forward / replication
			recvDeliver                 // ReceiveDelivery: delivery pull
			recvNone                    // direct claim: no copy accounting
		)
		type pend struct {
			claim   *Claim
			session *Session
			recv    *Node
			sender  *Node
			mode    recvMode
			counts  bool // claim moved a real copy (carried/replication)
		}

		var (
			now      = time.Hour
			sa, sb   *Session
			pending  []pend
			born     = map[int]int{}
			consumed = map[int]int{}
			msgs     = map[int]workload.Message{}
			nextID   = 1
		)
		keys := []workload.Key{"news", "beta", "mix"}

		settleSessions := func() {
			// Drop the severed sessions' claims from the pending list
			// first: Release refunds exactly the unsettled ones and then
			// recycles the claim arena, so the next contact reuses the
			// records and our stale pointers must be gone by then.
			kept := pending[:0]
			for _, p := range pending {
				if p.session != sa && p.session != sb {
					kept = append(kept, p)
				}
			}
			pending = kept
			for _, s := range []*Session{sa, sb} {
				if s != nil {
					// Abort plays the adapter's part on a severed contact —
					// refund whatever was claimed — so Release never has
					// leftovers to mop up (see claimLeakHook).
					s.Abort()
					s.Release()
				}
			}
			sa, sb = nil, nil
		}
		truncate := func(data []byte, arg byte) []byte {
			if data == nil || arg&3 != 3 {
				return data
			}
			n := int(arg) % (len(data) + 1)
			return data[:n]
		}
		checkConservation := func(op int) {
			inflight := map[int]int{}
			for _, p := range pending {
				if p.counts {
					inflight[p.claim.Msg().ID]++
				}
			}
			for id, want := range born {
				total := inflight[id] + consumed[id]
				for _, n := range nodes {
					total += n.ProducedCopies(id)
					if n.HasCarried(id) {
						total++
					}
				}
				if total != want {
					t.Fatalf("op %d: message %d copies not conserved: %d != %d "+
						"(inflight %d, consumed %d)",
						op, id, total, want, inflight[id], consumed[id])
				}
			}
		}

		for op := 0; op+1 < len(data) && op < 1000; op += 2 {
			code, arg := data[op], data[op+1]
			switch code % 14 {
			case 0: // begin a fresh contact (prior sessions sever)
				settleSessions()
				sa = a.BeginContact(nil, now)
				sb = b.BeginContact(nil, now)
				sa.SetPeer(sb.Hello())
				sb.SetPeer(sa.Hello())
				actA, actB := sa.Elect(), sb.Elect()
				sa.Apply(actA, actB)
				sb.Apply(actB, actA)
			case 1: // publish
				origin := nodes[int(arg)&1]
				msg := workload.Message{
					ID:        nextID,
					Key:       keys[int(arg)%len(keys)],
					Origin:    origin.ID(),
					Size:      10,
					CreatedAt: now,
				}
				origin.AddProduced(msg, nil)
				born[nextID] = cfg.CopyLimit
				msgs[nextID] = msg
				nextID++
			case 2: // flip a role outside the contact
				n := nodes[int(arg)&1]
				if arg&2 == 0 {
					n.Promote(now)
				} else {
					n.Demote()
				}
			case 3: // genuine A -> B
				if sa != nil && sa.SendsGenuine() {
					if data, err := sa.GenuineOut(); err == nil {
						_ = sb.AbsorbGenuine(truncate(data, arg))
					}
				}
			case 4: // genuine B -> A
				if sb != nil && sb.SendsGenuine() {
					if data, err := sb.GenuineOut(); err == nil {
						_ = sa.AbsorbGenuine(truncate(data, arg))
					}
				}
			case 5: // relay filter exchange, possibly truncated
				if sa != nil {
					da, errA := sa.RelayOut()
					db, errB := sb.RelayOut()
					if errA == nil && errB == nil {
						_ = sa.SetPeerRelay(truncate(db, arg))
						_ = sb.SetPeerRelay(truncate(da, arg>>2))
					}
				}
			case 6: // claim one preferential-forward candidate
				if sa == nil {
					break
				}
				s, sender, recv := sa, a, b
				if arg&1 == 1 {
					s, sender, recv = sb, b, a
				}
				cands, err := s.ForwardCandidates()
				if err != nil || len(cands) == 0 {
					break
				}
				cand := cands[int(arg>>1)%len(cands)]
				if claim, _ := s.ClaimCarried(cand.Msg.ID); claim != nil {
					pending = append(pending, pend{
						claim: claim, session: s, recv: recv, sender: sender,
						mode: recvStore, counts: true,
					})
				}
			case 7: // delivery pull: match and claim up to two transfers
				if sa == nil {
					break
				}
				asker, server := sa, sb
				askN, servN := a, b
				if arg&1 == 1 {
					asker, server, askN, servN = sb, sa, b, a
				}
				out, err := asker.InterestOut()
				if err != nil {
					break
				}
				transfers, err := server.DeliveryMatches(truncate(out, arg))
				if err != nil {
					break
				}
				for i, tr := range transfers {
					if i == 2 {
						break
					}
					var claim *Claim
					mode, counts := recvNone, false
					if tr.Carried {
						claim, _ = server.ClaimCarried(tr.Msg.ID)
						mode, counts = recvDeliver, true
					} else {
						claim, _ = server.ClaimDirect(tr.Msg.ID)
					}
					if claim != nil {
						pending = append(pending, pend{
							claim: claim, session: server, recv: askN,
							sender: servN, mode: mode, counts: counts,
						})
					}
				}
			case 8: // replication pull: broker advert, producer claims a copy
				if sa == nil {
					break
				}
				asker, server := sa, sb
				askN, servN := a, b
				if arg&1 == 1 {
					asker, server, askN, servN = sb, sa, b, a
				}
				out, err := asker.RelayAdvertOut()
				if err != nil || out == nil {
					break
				}
				transfers, err := server.ReplicationMatches(truncate(out, arg))
				if err != nil || len(transfers) == 0 {
					break
				}
				tr := transfers[int(arg>>1)%len(transfers)]
				if claim, _ := server.ClaimReplication(tr.Msg.ID); claim != nil {
					pending = append(pending, pend{
						claim: claim, session: server, recv: askN, sender: servN,
						mode: recvStore, counts: true,
					})
				}
			case 9: // commit a pending claim: receiver processes, then ACK
				if len(pending) == 0 {
					break
				}
				i := int(arg) % len(pending)
				p := pending[i]
				pending = append(pending[:i], pending[i+1:]...)
				id := p.claim.Msg().ID
				switch p.mode {
				case recvStore:
					acc := p.recv.AcceptCarried(p.claim.Msg(), p.claim.Payload(), now)
					if p.counts && !acc.Stored {
						consumed[id]++
					}
				case recvDeliver:
					p.recv.ReceiveDelivery(p.claim.Msg(), p.sender.ID(), now)
					if p.counts {
						consumed[id]++
					}
				case recvNone:
					p.recv.ReceiveDelivery(p.claim.Msg(), p.sender.ID(), now)
				}
				p.claim.Commit()
			case 10: // abort a pending claim: the ACK never came
				if len(pending) == 0 {
					break
				}
				i := int(arg) % len(pending)
				pending[i].claim.Abort()
				pending = append(pending[:i], pending[i+1:]...)
			case 11: // sever the contact: refund everything unsettled
				settleSessions()
			case 12: // time passes
				now += time.Duration(1+int(arg)%10) * time.Minute
			case 13: // purge both stores
				a.Purge(now)
				b.Purge(now)
			}
			checkConservation(op)
		}
	})
}
