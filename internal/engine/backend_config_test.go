package engine

import (
	"strings"
	"testing"
	"time"

	"bsub/internal/bloofi"
	"bsub/internal/filter"
)

// TestConfigValidatePropagatesBackend pins the seam's boundary contract:
// engine.Config.Validate hands the filter geometry to whatever backend is
// configured, so a backend-specific broken tuning is rejected before any
// node state exists, and NewNode refuses the same configuration.
func TestConfigValidatePropagatesBackend(t *testing.T) {
	cases := []struct {
		name    string
		backend filter.Backend
		wantErr string
	}{
		{"retouched-fill", filter.Retouched{MaxFill: 2}, "fill bound"},
		{"autoscale-trigger", filter.Autoscale{GrowAt: 1.5}, "growth trigger"},
		{"autoscale-layers", filter.Autoscale{MaxLayers: 99}, "layer cap"},
		{"bloofi-branching", bloofi.Backend{Branching: 1}, "branching"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(0.1)
			cfg.Backend = tc.backend
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Config.Validate accepted broken %s tuning", tc.backend.Name())
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name the problem (want %q)", err, tc.wantErr)
			}
			if _, err := NewNode(1, cfg, time.Hour); err == nil {
				t.Errorf("NewNode built a node on a config Validate rejects")
			}
		})
	}
}

// TestConfigValidateAcceptsBackends is the positive control: every
// backend at default tuning passes through Config.Validate and NewNode.
func TestConfigValidateAcceptsBackends(t *testing.T) {
	for _, b := range []filter.Backend{
		nil, // the default packed TCBF
		filter.Packed{}, filter.Retouched{}, filter.Autoscale{}, bloofi.Backend{},
	} {
		cfg := DefaultConfig(0.1)
		cfg.Backend = b
		if err := cfg.Validate(); err != nil {
			t.Errorf("Config.Validate rejected backend %v: %v", b, err)
			continue
		}
		if _, err := NewNode(1, cfg, time.Hour); err != nil {
			t.Errorf("NewNode failed for backend %v: %v", b, err)
		}
	}
}
