package engine

import (
	"testing"
	"time"

	"bsub/internal/filter"
	"bsub/internal/workload"
)

func mustNode(t *testing.T, id NodeID, cfg Config, ttl time.Duration) *Node {
	t.Helper()
	n, err := NewNode(id, cfg, ttl)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// contact runs the hello/election round trip between two nodes and
// returns the two sessions, post-election.
func contact(a, b *Node, budget Budget, now time.Duration) (*Session, *Session) {
	sa := a.BeginContact(budget, now)
	sb := b.BeginContact(budget, now)
	sa.SetPeer(sb.Hello())
	sb.SetPeer(sa.Hello())
	actA, actB := sa.Elect(), sb.Elect()
	sa.Apply(actA, actB)
	sb.Apply(actB, actA)
	return sa, sb
}

func TestNodeValidation(t *testing.T) {
	cfg := DefaultConfig(0.1)
	if _, err := NewNode(0, cfg, 0); err == nil {
		t.Error("zero TTL accepted")
	}
	cfg.CopyLimit = 0
	if _, err := NewNode(0, cfg, time.Hour); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPromoteCreatesRelayFilter(t *testing.T) {
	n := mustNode(t, 1, DefaultConfig(0.1), time.Hour)
	n.Promote(0)
	if !n.IsBroker() || n.Relay() == nil {
		t.Fatal("promotion did not install a relay filter")
	}
	relay := n.Relay()
	n.Promote(0) // idempotent
	if n.Relay() != relay {
		t.Error("re-promotion replaced the relay filter")
	}
}

func TestDemoteKeepsCarriedCopies(t *testing.T) {
	n := mustNode(t, 1, DefaultConfig(0.1), time.Hour)
	n.Promote(0)
	n.AcceptCarried(workload.Message{ID: 9, Key: "k"}, nil, 0)
	n.Demote()
	if n.IsBroker() || n.Relay() != nil {
		t.Error("demotion incomplete")
	}
	if !n.HasCarried(9) {
		t.Error("demotion dropped carried copies; they should serve until TTL")
	}
	n.Demote() // idempotent on non-brokers
}

func TestElectDemotesBelowAverageBroker(t *testing.T) {
	// A user that has sighted more than T_u brokers within the window
	// demotes a broker whose degree is below the sighted average.
	cfg := DefaultConfig(0.1)
	user := mustNode(t, 0, cfg, time.Hour)
	weak := mustNode(t, 1, cfg, time.Hour)
	weak.Promote(0)

	now := 10 * time.Minute
	// Six prior sightings (count > T_u = 5) of well-connected brokers.
	for i := 2; i < 8; i++ {
		user.RecordBrokerSighting(i, 10, now)
	}
	// The weak broker announces degree 0 (no meetings): below average.
	su, sw := contact(user, weak, Unlimited{}, now)
	if weak.IsBroker() {
		t.Error("below-average broker not demoted")
	}
	if su.PeerBroker() || sw.SelfBroker() {
		t.Error("sessions did not settle on the demotion")
	}
	if _, still := user.sightings[weak.id]; still {
		t.Error("demoted broker still sighted")
	}
}

func TestElectSparesAboveAverageBroker(t *testing.T) {
	cfg := DefaultConfig(0.1)
	user := mustNode(t, 0, cfg, time.Hour)
	strong := mustNode(t, 1, cfg, time.Hour)
	strong.Promote(0)

	now := 10 * time.Minute
	// The strong broker has met many peers recently.
	for i := 2; i < 9; i++ {
		strong.RecordMeeting(i, now)
	}
	// Six sightings of weaker brokers (degree 1).
	for i := 2; i < 8; i++ {
		user.RecordBrokerSighting(i, 1, now)
	}
	contact(user, strong, Unlimited{}, now)
	if !strong.IsBroker() {
		t.Error("above-average broker was demoted")
	}
}

func TestBrokersDoNotElect(t *testing.T) {
	cfg := DefaultConfig(0.1)
	broker := mustNode(t, 0, cfg, time.Hour)
	peer := mustNode(t, 1, cfg, time.Hour)
	broker.Promote(0)
	sb := broker.BeginContact(Unlimited{}, time.Minute)
	sp := peer.BeginContact(Unlimited{}, time.Minute)
	sb.SetPeer(sp.Hello())
	if act := sb.Elect(); act != ActNone {
		t.Errorf("a broker elected %v; Section V-B forbids it", act)
	}
}

func TestElectPromotesWhenFewBrokers(t *testing.T) {
	cfg := DefaultConfig(0.1)
	user := mustNode(t, 0, cfg, time.Hour)
	peer := mustNode(t, 1, cfg, time.Hour)
	su, sp := contact(user, peer, Unlimited{}, time.Minute)
	if !peer.IsBroker() {
		t.Error("peer not promoted despite broker scarcity")
	}
	if !su.PeerBroker() || !sp.SelfBroker() {
		t.Error("sessions did not settle on the promotion")
	}
	if _, ok := user.sightings[peer.id]; !ok {
		t.Error("promotion not recorded as a sighting")
	}
}

func TestMutualPromotionTieBreak(t *testing.T) {
	// Two broker-scarce users each elect the other; only the higher-ID
	// side may take broker duty, or a two-user network loses its consumer.
	cfg := DefaultConfig(0.1)
	a := mustNode(t, 4, cfg, time.Hour)
	b := mustNode(t, 7, cfg, time.Hour)
	sa, sb := contact(a, b, Unlimited{}, time.Minute)
	if a.IsBroker() {
		t.Error("lower-ID side promoted on a mutual designation")
	}
	if !b.IsBroker() {
		t.Error("higher-ID side not promoted")
	}
	if !sa.SendsGenuine() || !sb.ReceivesGenuine() {
		t.Error("post-election roles inconsistent with the tie-break")
	}
}

func TestDegreePrunesOutsideWindow(t *testing.T) {
	cfg := DefaultConfig(0.1)
	n := mustNode(t, 0, cfg, time.Hour)
	window := cfg.Window
	n.RecordMeeting(1, 0)
	n.RecordMeeting(2, window/2)
	n.RecordMeeting(3, window)
	now := window + time.Minute
	// Peer 1 (too old) pruned; 2 and 3 inside the window.
	if got := n.Degree(now); got != 2 {
		t.Errorf("degree = %d, want 2", got)
	}
	if _, still := n.meetings[1]; still {
		t.Error("stale meeting not pruned")
	}
}

func TestBrokersInWindowPrunes(t *testing.T) {
	cfg := DefaultConfig(0.1)
	n := mustNode(t, 0, cfg, time.Hour)
	window := cfg.Window
	n.RecordBrokerSighting(1, 4, 0)
	n.RecordBrokerSighting(2, 8, window)
	count, mean := n.brokersInWindow(window + time.Minute)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if mean != 8 {
		t.Errorf("mean degree = %g, want 8", mean)
	}
	count, mean = n.brokersInWindow(3 * window)
	if count != 0 || mean != 0 {
		t.Errorf("expired sightings: count=%d mean=%g", count, mean)
	}
}

func TestRetuneDFFeedbackDirection(t *testing.T) {
	// A saturated relay filter must raise the DF; an empty one must lower
	// it toward the baseline. Start well above the C/TTL floor so both
	// directions are observable.
	cfg := DefaultConfig(1.0)
	cfg.DFMode = DFFeedback
	cfg.TargetFPR = 0.002
	n := mustNode(t, 0, cfg, time.Hour)
	n.Promote(0)

	// Saturate the relay filter well past the target FPR.
	genuine := filter.MustNew(filter.Packed{}, cfg.FilterConfig(), 1, 0)
	for _, k := range workload.NewTrendKeySet().Keys() {
		if err := genuine.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Relay().AMerge(genuine, 0); err != nil {
		t.Fatal(err)
	}
	before := n.RelayDF()
	n.RetuneDF(0)
	after := n.RelayDF()
	if after <= before {
		t.Errorf("saturated filter: DF %g -> %g, want increase", before, after)
	}

	// Drain the filter (huge decay interval) and retune: DF must shrink
	// back toward the baseline.
	if err := n.Relay().Advance(100 * time.Hour); err != nil {
		t.Fatal(err)
	}
	before = n.RelayDF()
	n.RetuneDF(100 * time.Hour)
	after = n.RelayDF()
	if after >= before {
		t.Errorf("empty filter: DF %g -> %g, want decrease", before, after)
	}
}

func TestRetuneDFOnlineScalesWithDegree(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.DFMode = DFOnlineEq5
	quiet := mustNode(t, 0, cfg, time.Hour)
	busy := mustNode(t, 1, cfg, time.Hour)
	quiet.Promote(0)
	busy.Promote(0)
	now := 30 * time.Minute
	for i := 2; i < 12; i++ {
		busy.RecordMeeting(i, now)
	}
	quiet.RetuneDF(now)
	busy.RetuneDF(now)
	if busy.RelayDF() <= quiet.RelayDF() {
		t.Errorf("busy broker DF %g not above quiet broker DF %g "+
			"(more collected keys -> faster decay per Eq. 5)", busy.RelayDF(), quiet.RelayDF())
	}
}

func TestHelloSnapshotExcludesCurrentContact(t *testing.T) {
	// The degree a node announces must not count the meeting being opened:
	// both sides snapshot their hello before SetPeer records the peer.
	cfg := DefaultConfig(0.1)
	a := mustNode(t, 0, cfg, time.Hour)
	b := mustNode(t, 1, cfg, time.Hour)
	a.RecordMeeting(5, time.Minute)
	sa := a.BeginContact(Unlimited{}, 2*time.Minute)
	if got := sa.Hello().Degree; got != 1 {
		t.Fatalf("hello degree = %d, want 1", got)
	}
	sb := b.BeginContact(Unlimited{}, 2*time.Minute)
	sa.SetPeer(sb.Hello())
	if got := a.Degree(2 * time.Minute); got != 2 {
		t.Errorf("post-SetPeer degree = %d, want 2", got)
	}
}

func TestGenuinePropagationRoundTrip(t *testing.T) {
	// Consumer -> broker genuine propagation must plant the consumer's
	// interests in the broker's relay filter, through the wire encoding.
	cfg := DefaultConfig(0.01)
	consumer := mustNode(t, 0, cfg, time.Hour)
	broker := mustNode(t, 1, cfg, time.Hour)
	consumer.Subscribe("alpha", "beta")
	broker.Promote(0)

	sc, sb := contact(consumer, broker, Unlimited{}, time.Minute)
	if !sc.SendsGenuine() || !sb.ReceivesGenuine() {
		t.Fatal("mixed contact did not settle on genuine propagation")
	}
	data, err := sc.GenuineOut()
	if err != nil || data == nil {
		t.Fatalf("GenuineOut: %v (data=%v)", err, data)
	}
	if err := sb.AbsorbGenuine(data); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"alpha", "beta"} {
		ok, err := broker.Relay().Contains(k, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("relay filter missing propagated interest %q", k)
		}
	}
}

func TestClaimAbortRefundsCopies(t *testing.T) {
	// Every claim type must refund on abort: carried copies return, direct
	// sends unmark, replication budgets restore.
	cfg := DefaultConfig(0.1)
	n := mustNode(t, 0, cfg, time.Hour)
	peer := mustNode(t, 1, cfg, time.Hour)
	msgC := workload.Message{ID: 1, Key: "k", Origin: 9, Size: 10}
	msgP := workload.Message{ID: 2, Key: "k", Origin: 0, Size: 10}
	n.AcceptCarried(msgC, nil, 0)
	n.AddProduced(msgP, nil)

	s, _ := contact(n, peer, Unlimited{}, time.Minute)

	cc, ok := s.ClaimCarried(1)
	if cc == nil || !ok {
		t.Fatal("carried claim refused")
	}
	if n.HasCarried(1) {
		t.Fatal("claim left the carried copy in the store")
	}
	cd, ok := s.ClaimDirect(2)
	if cd == nil || !ok {
		t.Fatal("direct claim refused")
	}
	cr, ok := s.ClaimReplication(2)
	if cr == nil || !ok {
		t.Fatal("replication claim refused")
	}
	if got := n.ProducedCopies(2); got != cfg.CopyLimit-1 {
		t.Fatalf("copies after claim = %d, want %d", got, cfg.CopyLimit-1)
	}

	if refunded := s.Abort(); refunded != 3 {
		t.Fatalf("Abort refunded %d claims, want 3", refunded)
	}
	if !n.HasCarried(1) {
		t.Error("aborted carried claim not restored")
	}
	if got := n.ProducedCopies(2); got != cfg.CopyLimit {
		t.Errorf("aborted replication left copies at %d, want %d", got, cfg.CopyLimit)
	}
	if c, _ := s.ClaimDirect(2); c != nil {
		t.Error("poisoned session handed out a claim")
		c.Abort()
	}
	// The aborted direct send must be retryable in a fresh session.
	s2, _ := contact(n, peer, Unlimited{}, 2*time.Minute)
	if c, ok := s2.ClaimDirect(2); c == nil || !ok {
		t.Error("aborted direct send not retryable")
	}
}

func TestClaimReplicationExhaustsBudgetOnly(t *testing.T) {
	// Exhaustion ends replication, not direct service: the message stays
	// in the produced store at zero copies until TTL, further replication
	// claims are refused, and an abort of the last claim restores the copy.
	cfg := DefaultConfig(0.1)
	cfg.CopyLimit = 1
	n := mustNode(t, 0, cfg, time.Hour)
	peer := mustNode(t, 1, cfg, time.Hour)
	n.AddProduced(workload.Message{ID: 3, Key: "k", Origin: 0, Size: 5}, nil)
	s, _ := contact(n, peer, Unlimited{}, time.Minute)
	c, ok := s.ClaimReplication(3)
	if c == nil || !ok {
		t.Fatal("replication claim refused")
	}
	if n.ProducedCount() != 1 {
		t.Fatal("exhausted message evicted from the produced store")
	}
	if n.ProducedCopies(3) != 0 {
		t.Fatal("claimed last copy still counted")
	}
	c.Abort()
	if n.ProducedCopies(3) != 1 {
		t.Fatal("aborted last-copy claim not restored")
	}
	// Re-claim and commit: replication is over, but the message remains
	// for direct delivery until its TTL.
	c, _ = s.ClaimReplication(3)
	if c == nil {
		t.Fatal("re-claim refused")
	}
	c.Commit()
	if n.ProducedCount() != 1 {
		t.Error("committed last copy evicted the message")
	}
	if c2, ok := s.ClaimReplication(3); c2 != nil || !ok {
		t.Error("exhausted message still claimable for replication")
	}
	if c2, ok := s.ClaimDirect(3); c2 == nil || !ok {
		t.Error("exhausted message not claimable for direct delivery")
	} else {
		c2.Abort()
	}
	// Past the TTL the store finally lets go.
	if n.Purge(2 * time.Hour); n.ProducedCount() != 0 {
		t.Error("expired message still stored")
	}
}

func TestClearSentToReopensDirectDelivery(t *testing.T) {
	// A committed direct delivery pins a per-peer sent-marker; declaring
	// the peer dead clears it so a restarted incarnation is served again.
	cfg := DefaultConfig(0.1)
	n := mustNode(t, 0, cfg, time.Hour)
	peer := mustNode(t, 1, cfg, time.Hour)
	n.AddProduced(workload.Message{ID: 7, Key: "k", Origin: 0, Size: 5}, nil)
	s, _ := contact(n, peer, Unlimited{}, time.Minute)
	c, ok := s.ClaimDirect(7)
	if c == nil || !ok {
		t.Fatal("direct claim refused")
	}
	c.Commit()
	if c2, ok := s.ClaimDirect(7); c2 != nil || !ok {
		t.Fatal("served message claimable again without a reset")
	}
	n.ClearSentTo(1)
	s2, _ := contact(n, peer, Unlimited{}, 2*time.Minute)
	c3, ok := s2.ClaimDirect(7)
	if c3 == nil || !ok {
		t.Fatal("cleared sent-marker did not reopen direct delivery")
	}
	c3.Abort()
}

// budgetN is a test Budget with a fixed byte pool.
type budgetN struct{ left int }

func (b *budgetN) Spend(n int) bool {
	if n > b.left {
		return false
	}
	b.left -= n
	return true
}

func TestBudgetRefusalReturnsNil(t *testing.T) {
	cfg := DefaultConfig(0.1)
	consumer := mustNode(t, 0, cfg, time.Hour)
	broker := mustNode(t, 1, cfg, time.Hour)
	consumer.Subscribe("x")
	broker.Promote(0)
	sc, _ := contact(consumer, broker, &budgetN{left: 1}, time.Minute)
	data, err := sc.GenuineOut()
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Error("budget refusal still produced wire bytes")
	}
	if c, ok := sc.ClaimDirect(99); c != nil || !ok {
		t.Error("missing message should skip, not stop")
	}
}

func TestPurgeDropsExpired(t *testing.T) {
	// TTL expiry is decay-driven (CreatedAt + TTL), not a wall-clock loop.
	cfg := DefaultConfig(0.1)
	n := mustNode(t, 0, cfg, time.Hour)
	n.AcceptCarried(workload.Message{ID: 1, Key: "k", Origin: 2, CreatedAt: 0}, nil, 0)
	n.AddProduced(workload.Message{ID: 2, Key: "k", Origin: 0, CreatedAt: 30 * time.Minute}, nil)
	n.Purge(61 * time.Minute)
	if n.CarriedCount() != 0 {
		t.Error("expired carried copy survived purge")
	}
	if n.ProducedCount() != 1 {
		t.Error("live produced message purged")
	}
	n.Purge(91 * time.Minute)
	if n.ProducedCount() != 0 {
		t.Error("expired produced message survived purge")
	}
}

func TestAcceptCarriedSemantics(t *testing.T) {
	cfg := DefaultConfig(0.1)
	n := mustNode(t, 5, cfg, time.Hour)
	n.Subscribe("want")

	// Post-TTL copies are dropped outright.
	acc := n.AcceptCarried(workload.Message{ID: 1, Key: "x", CreatedAt: 0}, nil, 2*time.Hour)
	if acc.Stored || acc.Delivered {
		t.Error("post-TTL copy accepted")
	}
	// A wanted message delivers exactly once, and duplicates collapse.
	m := workload.Message{ID: 2, Key: "want", Origin: 1, CreatedAt: 0}
	acc = n.AcceptCarried(m, nil, time.Minute)
	if !acc.Stored || !acc.Delivered {
		t.Errorf("first copy: %+v", acc)
	}
	acc = n.AcceptCarried(m, nil, 2*time.Minute)
	if acc.Stored || acc.Delivered {
		t.Errorf("duplicate copy: %+v", acc)
	}
	if n.CarriedCount() != 1 {
		t.Error("duplicate grew the carried store")
	}
	// A node's own message never delivers to itself.
	own := workload.Message{ID: 3, Key: "want", Origin: 5, CreatedAt: 0}
	if acc := n.AcceptCarried(own, nil, time.Minute); acc.Delivered {
		t.Error("node delivered its own message to itself")
	}
}
