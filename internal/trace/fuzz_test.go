package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the trace parser: arbitrary text must either parse into
// a structurally valid trace or return an error — never panic, never
// yield an invalid trace.
func FuzzRead(f *testing.F) {
	f.Add("trace demo 3\n0 1 0.0 60.0\n1 2 30.0 90.0\n")
	f.Add("# comment\n\ntrace x 2\n0 1 0 1\n")
	f.Add("")
	f.Add("trace demo notanumber\n")
	f.Add("trace demo 2\n0 1 5 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if tr.Nodes <= 1 || len(tr.Contacts) == 0 {
			t.Fatalf("parser returned a degenerate trace: %d nodes, %d contacts",
				tr.Nodes, len(tr.Contacts))
		}
		for i, c := range tr.Contacts {
			if err := c.Validate(tr.Nodes); err != nil {
				t.Fatalf("contact %d invalid after successful parse: %v", i, err)
			}
			if i > 0 && c.Start < tr.Contacts[i-1].Start {
				t.Fatalf("contacts unsorted at %d", i)
			}
		}
		// A parsed trace must round-trip through the writer.
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if back.Nodes != tr.Nodes || len(back.Contacts) != len(tr.Contacts) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.Nodes, len(back.Contacts), tr.Nodes, len(tr.Contacts))
		}
	})
}
