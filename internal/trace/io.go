package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The text format mirrors the CRAWDAD one-contact-per-line convention:
//
//	# comments and blank lines are ignored
//	trace <name> <nodes>
//	<nodeA> <nodeB> <startSeconds> <endSeconds>
//
// Times are fractional seconds from the trace epoch.

// ErrFormat is returned by Read for malformed input.
var ErrFormat = errors.New("trace: malformed trace file")

// Write serializes t to w in the text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# contact trace: %d contacts\n", len(t.Contacts)); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	if _, err := fmt.Fprintf(bw, "trace %s %d\n", sanitizeName(t.Name), t.Nodes); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, c := range t.Contacts {
		_, err := fmt.Fprintf(bw, "%d %d %s %s\n",
			c.A, c.B,
			strconv.FormatFloat(c.Start.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(c.End.Seconds(), 'f', 3, 64))
		if err != nil {
			return fmt.Errorf("trace: write contact: %w", err)
		}
	}
	return bw.Flush()
}

// Read parses a trace from r.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		name     string
		nodes    int
		contacts []Contact
		sawHdr   bool
		lineNo   int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if !sawHdr {
			if len(fields) != 3 || fields[0] != "trace" {
				return nil, fmt.Errorf("%w: line %d: expected \"trace <name> <nodes>\"", ErrFormat, lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: node count: %v", ErrFormat, lineNo, err)
			}
			name, nodes, sawHdr = fields[1], n, true
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("%w: line %d: expected 4 fields, got %d", ErrFormat, lineNo, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: node A: %v", ErrFormat, lineNo, err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: node B: %v", ErrFormat, lineNo, err)
		}
		start, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: start: %v", ErrFormat, lineNo, err)
		}
		end, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: end: %v", ErrFormat, lineNo, err)
		}
		contacts = append(contacts, Contact{
			A:     NodeID(a),
			B:     NodeID(b),
			Start: time.Duration(start * float64(time.Second)),
			End:   time.Duration(end * float64(time.Second)),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if !sawHdr {
		return nil, fmt.Errorf("%w: missing header", ErrFormat)
	}
	t, err := New(name, nodes, contacts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return t, nil
}

func sanitizeName(name string) string {
	if name == "" {
		return "unnamed"
	}
	return strings.Join(strings.Fields(name), "-")
}
