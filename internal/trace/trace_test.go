package trace

import (
	"errors"
	"math"
	"testing"
	"time"
)

func minute(n int) time.Duration { return time.Duration(n) * time.Minute }

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := New("sample", 4, []Contact{
		{A: 2, B: 3, Start: minute(10), End: minute(12)},
		{A: 0, B: 1, Start: minute(0), End: minute(5)},
		{A: 1, B: 2, Start: minute(3), End: minute(4)},
		{A: 0, B: 1, Start: minute(20), End: minute(25)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewSortsContacts(t *testing.T) {
	tr := sampleTrace(t)
	for i := 1; i < len(tr.Contacts); i++ {
		if tr.Contacts[i].Start < tr.Contacts[i-1].Start {
			t.Fatalf("contacts not sorted at %d", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	valid := []Contact{{A: 0, B: 1, Start: 0, End: minute(1)}}
	tests := []struct {
		name     string
		nodes    int
		contacts []Contact
	}{
		{name: "one node", nodes: 1, contacts: valid},
		{name: "no contacts", nodes: 2, contacts: nil},
		{name: "node out of range", nodes: 2, contacts: []Contact{{A: 0, B: 5, Start: 0, End: minute(1)}}},
		{name: "negative node", nodes: 2, contacts: []Contact{{A: -1, B: 1, Start: 0, End: minute(1)}}},
		{name: "self contact", nodes: 2, contacts: []Contact{{A: 1, B: 1, Start: 0, End: minute(1)}}},
		{name: "negative start", nodes: 2, contacts: []Contact{{A: 0, B: 1, Start: -minute(1), End: minute(1)}}},
		{name: "zero duration", nodes: 2, contacts: []Contact{{A: 0, B: 1, Start: minute(1), End: minute(1)}}},
		{name: "end before start", nodes: 2, contacts: []Contact{{A: 0, B: 1, Start: minute(2), End: minute(1)}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New("x", tt.nodes, tt.contacts); err == nil {
				t.Error("invalid trace accepted")
			}
		})
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []Contact{
		{A: 0, B: 1, Start: minute(5), End: minute(6)},
		{A: 0, B: 1, Start: minute(0), End: minute(1)},
	}
	tr, err := New("copy", 2, in)
	if err != nil {
		t.Fatal(err)
	}
	in[0].A = 1
	in[0].B = 0
	if tr.Contacts[1].A != 0 {
		t.Error("trace aliases caller slice")
	}
}

func TestStats(t *testing.T) {
	tr := sampleTrace(t)
	s := tr.Stats()
	if s.Nodes != 4 || s.Contacts != 4 {
		t.Errorf("got %d nodes / %d contacts, want 4/4", s.Nodes, s.Contacts)
	}
	if s.Span != minute(25) {
		t.Errorf("span = %v, want 25m", s.Span)
	}
	wantMean := (minute(5) + minute(1) + minute(2) + minute(5)) / 4
	if s.MeanDuration != wantMean {
		t.Errorf("mean duration = %v, want %v", s.MeanDuration, wantMean)
	}
	// Distinct peers: 0:{1}, 1:{0,2}, 2:{1,3}, 3:{2} -> mean 6/4.
	if math.Abs(s.MeanDegree-1.5) > 1e-12 {
		t.Errorf("mean degree = %g, want 1.5", s.MeanDegree)
	}
}

func TestCentrality(t *testing.T) {
	tr := sampleTrace(t)
	c := tr.Centrality()
	want := []float64{1.0 / 3, 2.0 / 3, 2.0 / 3, 1.0 / 3}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Errorf("centrality[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

func TestContactCounts(t *testing.T) {
	tr := sampleTrace(t)
	got := tr.ContactCounts()
	want := []int{2, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSlice(t *testing.T) {
	tr := sampleTrace(t)
	sub, err := tr.Slice("window", minute(2), minute(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Contacts) != 2 {
		t.Fatalf("got %d contacts, want 2", len(sub.Contacts))
	}
	if sub.Contacts[0].Start != minute(1) { // 3m rebased by 2m
		t.Errorf("rebased start = %v, want 1m", sub.Contacts[0].Start)
	}
	if _, err := tr.Slice("empty", minute(100), minute(200)); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty window error = %v, want ErrEmpty", err)
	}
}

func TestContactDuration(t *testing.T) {
	c := Contact{A: 0, B: 1, Start: minute(3), End: minute(10)}
	if c.Duration() != minute(7) {
		t.Errorf("duration = %v, want 7m", c.Duration())
	}
}

func TestPairCoverage(t *testing.T) {
	tr := sampleTrace(t)
	// 4 nodes -> 6 pairs; contacts cover {0,1}, {1,2}, {2,3} = 3 pairs.
	if got := tr.PairCoverage(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("pair coverage = %g, want 0.5", got)
	}
}

func TestInterContactTimes(t *testing.T) {
	tr, err := New("gaps", 2, []Contact{
		{A: 0, B: 1, Start: minute(0), End: minute(5)},
		{A: 0, B: 1, Start: minute(15), End: minute(16)},
		{A: 0, B: 1, Start: minute(36), End: minute(40)},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.InterContactTimes()
	if s.Samples != 2 {
		t.Fatalf("samples = %d, want 2", s.Samples)
	}
	// Gaps: 15-5=10m and 36-16=20m.
	if s.Mean != minute(15) {
		t.Errorf("mean gap = %v, want 15m", s.Mean)
	}
	if s.Median != minute(20) {
		t.Errorf("median gap = %v, want 20m (upper of two)", s.Median)
	}
}

func TestInterContactTimesNoRepeats(t *testing.T) {
	tr, err := New("single", 3, []Contact{
		{A: 0, B: 1, Start: minute(0), End: minute(1)},
		{A: 1, B: 2, Start: minute(2), End: minute(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.InterContactTimes(); s.Samples != 0 {
		t.Errorf("no repeated pairs but %d samples", s.Samples)
	}
}

func TestInterContactTimesOrientationInsensitive(t *testing.T) {
	tr, err := New("flip", 2, []Contact{
		{A: 0, B: 1, Start: minute(0), End: minute(1)},
		{A: 1, B: 0, Start: minute(11), End: minute(12)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.InterContactTimes(); s.Samples != 1 || s.Mean != minute(10) {
		t.Errorf("flipped pair gap: %+v", s)
	}
}
