package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Nodes != tr.Nodes || len(got.Contacts) != len(tr.Contacts) {
		t.Fatalf("header mismatch: %+v vs %+v", got.Stats(), tr.Stats())
	}
	for i := range tr.Contacts {
		a, b := tr.Contacts[i], got.Contacts[i]
		if a.A != b.A || a.B != b.B {
			t.Errorf("contact %d nodes: %v vs %v", i, a, b)
		}
		if d := a.Start - b.Start; d > time.Millisecond || d < -time.Millisecond {
			t.Errorf("contact %d start drift %v", i, d)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := `# a comment

trace demo 3
# another comment
0 1 0.0 60.0

1 2 30.0 90.0
`
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 3 || len(tr.Contacts) != 2 {
		t.Errorf("got %d nodes / %d contacts", tr.Nodes, len(tr.Contacts))
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "empty", in: ""},
		{name: "missing header", in: "0 1 0.0 60.0\n"},
		{name: "bad header keyword", in: "trail demo 3\n0 1 0 60\n"},
		{name: "bad node count", in: "trace demo three\n0 1 0 60\n"},
		{name: "short contact line", in: "trace demo 3\n0 1 0.0\n"},
		{name: "long contact line", in: "trace demo 3\n0 1 0.0 60.0 99\n"},
		{name: "non-numeric node", in: "trace demo 3\nx 1 0.0 60.0\n"},
		{name: "non-numeric time", in: "trace demo 3\n0 1 zero 60.0\n"},
		{name: "node out of range", in: "trace demo 3\n0 7 0.0 60.0\n"},
		{name: "end before start", in: "trace demo 3\n0 1 60.0 10.0\n"},
		{name: "no contacts", in: "trace demo 3\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.in)); !errors.Is(err, ErrFormat) {
				t.Errorf("error = %v, want ErrFormat", err)
			}
		})
	}
}

func TestWriteSanitizesName(t *testing.T) {
	tr, err := New("name with  spaces", 2, []Contact{{A: 0, B: 1, Start: 0, End: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("round trip with spaced name: %v", err)
	}
	if got.Name != "name-with-spaces" {
		t.Errorf("name = %q", got.Name)
	}
}

// Property: any structurally valid generated trace round-trips through the
// text format preserving node pairs and second-resolution times.
func TestRoundTripProperty(t *testing.T) {
	prop := func(raw []struct {
		A, B     uint8
		Start    uint16
		Duration uint8
	}) bool {
		if len(raw) == 0 {
			return true
		}
		nodes := 16
		contacts := make([]Contact, 0, len(raw))
		for _, r := range raw {
			a := NodeID(int(r.A) % nodes)
			b := NodeID(int(r.B) % nodes)
			if a == b {
				b = (b + 1) % NodeID(nodes)
			}
			contacts = append(contacts, Contact{
				A:     a,
				B:     b,
				Start: time.Duration(r.Start) * time.Second,
				End:   time.Duration(r.Start)*time.Second + time.Duration(int(r.Duration)+1)*time.Second,
			})
		}
		tr, err := New("prop", nodes, contacts)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Contacts) != len(tr.Contacts) {
			return false
		}
		for i := range tr.Contacts {
			if tr.Contacts[i].A != got.Contacts[i].A || tr.Contacts[i].B != got.Contacts[i].B {
				return false
			}
			if tr.Contacts[i].Start != got.Contacts[i].Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
