// Package trace models the human contact traces that drive the B-SUB
// evaluation (Section VII-A): sequences of pairwise node contacts with
// start and end times, as recorded by the CRAWDAD Haggle (Infocom'06) and
// MIT Reality Bluetooth loggers.
//
// The package provides the in-memory representation, a line-oriented text
// format for persistence, and the statistics that populate Table I of the
// paper (node count, contact count, duration) plus the per-node degree and
// centrality measures B-SUB's broker allocation and workload model consume.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// NodeID identifies a node (a person's device) within a trace. IDs are
// dense integers in [0, Nodes).
type NodeID int

// Contact is a single pairwise meeting: nodes A and B are within radio
// range from Start to End (both offsets from the trace epoch).
type Contact struct {
	A, B  NodeID
	Start time.Duration
	End   time.Duration
}

// Duration returns the contact's length.
func (c Contact) Duration() time.Duration { return c.End - c.Start }

// Validate reports structural problems with a single contact record.
func (c Contact) Validate(nodes int) error {
	switch {
	case c.A < 0 || int(c.A) >= nodes:
		return fmt.Errorf("trace: node %d out of range [0,%d)", c.A, nodes)
	case c.B < 0 || int(c.B) >= nodes:
		return fmt.Errorf("trace: node %d out of range [0,%d)", c.B, nodes)
	case c.A == c.B:
		return fmt.Errorf("trace: self-contact at node %d", c.A)
	case c.Start < 0:
		return fmt.Errorf("trace: negative start %v", c.Start)
	case c.End <= c.Start:
		return fmt.Errorf("trace: non-positive duration (%v..%v)", c.Start, c.End)
	}
	return nil
}

// Trace is an immutable contact trace: a node population plus contacts
// sorted by start time.
type Trace struct {
	Name     string
	Nodes    int
	Contacts []Contact
}

// ErrEmpty is returned when a trace has no contacts or no nodes.
var ErrEmpty = errors.New("trace: empty trace")

// New builds a Trace after validating and sorting the contacts by start
// time (ties broken by end, then node ids, for determinism).
func New(name string, nodes int, contacts []Contact) (*Trace, error) {
	if nodes <= 1 {
		return nil, fmt.Errorf("%w: %d nodes", ErrEmpty, nodes)
	}
	if len(contacts) == 0 {
		return nil, fmt.Errorf("%w: no contacts", ErrEmpty)
	}
	for i, c := range contacts {
		if err := c.Validate(nodes); err != nil {
			return nil, fmt.Errorf("contact %d: %w", i, err)
		}
	}
	sorted := make([]Contact, len(contacts))
	copy(sorted, contacts)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return &Trace{Name: name, Nodes: nodes, Contacts: sorted}, nil
}

// Span returns the time of the last contact end; the trace covers [0, Span].
func (t *Trace) Span() time.Duration {
	var max time.Duration
	for _, c := range t.Contacts {
		if c.End > max {
			max = c.End
		}
	}
	return max
}

// Stats summarizes a trace in the shape of the paper's Table I, extended
// with the aggregate statistics the workload model needs.
type Stats struct {
	Name            string
	Nodes           int
	Contacts        int
	Span            time.Duration
	MeanDuration    time.Duration
	MeanDegree      float64 // distinct peers per node over the whole trace
	ContactsPerHour float64
}

// Stats computes the trace's summary statistics.
func (t *Trace) Stats() Stats {
	var totalDur time.Duration
	peers := make([]map[NodeID]struct{}, t.Nodes)
	for i := range peers {
		peers[i] = make(map[NodeID]struct{})
	}
	for _, c := range t.Contacts {
		totalDur += c.Duration()
		peers[c.A][c.B] = struct{}{}
		peers[c.B][c.A] = struct{}{}
	}
	degSum := 0
	for _, p := range peers {
		degSum += len(p)
	}
	span := t.Span()
	cph := 0.0
	if span > 0 {
		cph = float64(len(t.Contacts)) / span.Hours()
	}
	return Stats{
		Name:            t.Name,
		Nodes:           t.Nodes,
		Contacts:        len(t.Contacts),
		Span:            span,
		MeanDuration:    totalDur / time.Duration(len(t.Contacts)),
		MeanDegree:      float64(degSum) / float64(t.Nodes),
		ContactsPerHour: cph,
	}
}

// Centrality returns each node's degree centrality: the number of distinct
// peers it contacts across the trace, normalized by (Nodes-1). The paper
// uses centrality as the measure of "social standing" that scales a node's
// message generation rate (Section VII-A).
func (t *Trace) Centrality() []float64 {
	peers := make([]map[NodeID]struct{}, t.Nodes)
	for i := range peers {
		peers[i] = make(map[NodeID]struct{})
	}
	for _, c := range t.Contacts {
		peers[c.A][c.B] = struct{}{}
		peers[c.B][c.A] = struct{}{}
	}
	out := make([]float64, t.Nodes)
	for i, p := range peers {
		out[i] = float64(len(p)) / float64(t.Nodes-1)
	}
	return out
}

// ContactCounts returns the number of contacts each node participates in.
func (t *Trace) ContactCounts() []int {
	out := make([]int, t.Nodes)
	for _, c := range t.Contacts {
		out[c.A]++
		out[c.B]++
	}
	return out
}

// Slice returns a new trace restricted to contacts that start within
// [from, to), rebased so the window start becomes time zero. It mirrors the
// paper's use of "the 3 day records from the MIT Reality trace".
func (t *Trace) Slice(name string, from, to time.Duration) (*Trace, error) {
	var out []Contact
	for _, c := range t.Contacts {
		if c.Start >= from && c.Start < to {
			out = append(out, Contact{A: c.A, B: c.B, Start: c.Start - from, End: c.End - from})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no contacts in [%v,%v)", ErrEmpty, from, to)
	}
	return New(name, t.Nodes, out)
}

// PairCoverage returns the fraction of distinct node pairs that meet at
// least once in the trace. Real human traces are sparse — most strangers
// never cross paths — and this is the statistic the synthetic generator's
// CrossLinkProb is calibrated against.
func (t *Trace) PairCoverage() float64 {
	seen := make(map[[2]NodeID]struct{})
	for _, c := range t.Contacts {
		a, b := c.A, c.B
		if a > b {
			a, b = b, a
		}
		seen[[2]NodeID{a, b}] = struct{}{}
	}
	total := t.Nodes * (t.Nodes - 1) / 2
	return float64(len(seen)) / float64(total)
}

// InterContactStats summarizes the gaps between successive contacts of the
// same pair, the distribution that governs store-carry-forward delay.
type InterContactStats struct {
	// Samples is the number of pair gaps observed.
	Samples int
	// Mean is the average gap.
	Mean time.Duration
	// Median is the 50th-percentile gap.
	Median time.Duration
	// P90 is the 90th-percentile gap.
	P90 time.Duration
}

// InterContactTimes computes the inter-contact gap distribution: for every
// pair with repeated contacts, the times from one contact's end to the
// next contact's start.
func (t *Trace) InterContactTimes() InterContactStats {
	type pairKey struct{ a, b NodeID }
	lastEnd := make(map[pairKey]time.Duration)
	var gaps []time.Duration
	for _, c := range t.Contacts { // contacts are start-sorted
		a, b := c.A, c.B
		if a > b {
			a, b = b, a
		}
		k := pairKey{a, b}
		if prev, ok := lastEnd[k]; ok && c.Start > prev {
			gaps = append(gaps, c.Start-prev)
		}
		if c.End > lastEnd[k] {
			lastEnd[k] = c.End
		}
	}
	if len(gaps) == 0 {
		return InterContactStats{}
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	var sum time.Duration
	for _, g := range gaps {
		sum += g
	}
	return InterContactStats{
		Samples: len(gaps),
		Mean:    sum / time.Duration(len(gaps)),
		Median:  gaps[len(gaps)/2],
		P90:     gaps[len(gaps)*9/10],
	}
}
