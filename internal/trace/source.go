package trace

// Source is a time-ordered stream of contacts. Stored traces and synthetic
// generators implement it, so the simulator can replay a materialized
// []Contact or consume contacts straight off a generator without ever
// holding the full schedule in memory (the million-node path).
//
// Contacts must be produced in the same total order trace.New sorts into:
// ascending (Start, End, A, B). Next returns ok=false once the stream is
// exhausted; after that every call returns ok=false.
type Source interface {
	// Next returns the next contact in time order.
	Next() (c Contact, ok bool)
	// Nodes returns the population size the stream draws node IDs from.
	Nodes() int
}

// cursor streams a materialized trace's contacts.
type cursor struct {
	t *Trace
	i int
}

// Source returns a Source that replays the trace's contacts in order. Each
// call returns an independent cursor; the trace itself is not consumed.
func (t *Trace) Source() Source { return &cursor{t: t} }

func (c *cursor) Nodes() int { return c.t.Nodes }

func (c *cursor) Next() (Contact, bool) {
	if c.i >= len(c.t.Contacts) {
		return Contact{}, false
	}
	ct := c.t.Contacts[c.i]
	c.i++
	return ct, true
}

// Collect drains a Source into a slice. Intended for tests and for small
// populations where a materialized trace is still convenient; at scale the
// simulator consumes the Source directly.
func Collect(s Source) []Contact {
	var out []Contact
	for {
		c, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, c)
	}
}
