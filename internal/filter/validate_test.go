package filter_test

import (
	"strings"
	"testing"
	"time"

	"bsub/internal/bloofi"
	"bsub/internal/filter"
	"bsub/internal/tcbf"
)

var validCfg = tcbf.Config{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}

// TestBackendValidateBrokenConfigs is the per-backend broken-config
// regression suite: every backend must reject its own bad tuning and the
// shared bad geometry at the Validate boundary, before any filter
// exists, and New must refuse the same configurations. Failure messages
// name the backend and the offending parameter.
func TestBackendValidateBrokenConfigs(t *testing.T) {
	cases := []struct {
		name       string
		backend    filter.Backend
		cfg        tcbf.Config
		partitions int
		wantErr    string // substring the error must carry
	}{
		// Shared geometry checks, enforced through every backend.
		{"tcbf-zero-m", filter.Packed{}, tcbf.Config{M: 0, K: 4, Initial: 10}, 1, "bit-vector length"},
		{"tcbf-zero-k", filter.Packed{}, tcbf.Config{M: 256, K: 0, Initial: 10}, 1, "hash count"},
		{"tcbf-zero-initial", filter.Packed{}, tcbf.Config{M: 256, K: 4}, 1, "initial counter"},
		{"tcbf-negative-decay", filter.Packed{}, tcbf.Config{M: 256, K: 4, Initial: 10, DecayPerMinute: -1}, 1, "decay factor"},
		{"tcbf-zero-partitions", filter.Packed{}, validCfg, 0, "partition count"},
		{"tcbf-too-many-partitions", filter.Packed{}, validCfg, 256, "partition count"},

		// Retouched: the fill bound must be a usable ratio.
		{"retouched-fill-negative", filter.Retouched{MaxFill: -0.5}, validCfg, 1, "fill bound"},
		{"retouched-fill-above-one", filter.Retouched{MaxFill: 1.5}, validCfg, 1, "fill bound"},
		{"retouched-bad-partitions", filter.Retouched{}, validCfg, 300, "partition count"},
		{"retouched-bad-geometry", filter.Retouched{}, tcbf.Config{M: -8, K: 4, Initial: 10}, 1, "bit-vector length"},

		// Autoscale: growth trigger in (0,1), layer cap in [1,16], and the
		// top layer's doubled geometry must still be constructible.
		{"autoscale-trigger-negative", filter.Autoscale{GrowAt: -0.1}, validCfg, 1, "growth trigger"},
		{"autoscale-trigger-one", filter.Autoscale{GrowAt: 1}, validCfg, 1, "growth trigger"},
		{"autoscale-layer-cap-negative", filter.Autoscale{MaxLayers: -2}, validCfg, 1, "layer cap"},
		{"autoscale-layer-cap-huge", filter.Autoscale{MaxLayers: 17}, validCfg, 1, "layer cap"},
		{"autoscale-bad-geometry", filter.Autoscale{}, tcbf.Config{M: 256, K: 100, Initial: 10}, 1, "hash count"},

		// Bloofi: fan-out in [2,16] and the leaf cap must hold one full
		// inner node.
		{"bloofi-branching-one", bloofi.Backend{Branching: 1}, validCfg, 1, "branching"},
		{"bloofi-branching-huge", bloofi.Backend{Branching: 17}, validCfg, 1, "branching"},
		{"bloofi-leaves-below-branching", bloofi.Backend{Branching: 4, MaxLeaves: 2}, validCfg, 1, "leaf cap"},
		{"bloofi-bad-geometry", bloofi.Backend{}, tcbf.Config{M: 256, K: 4, Initial: -3}, 1, "initial counter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.backend.Validate(tc.cfg, tc.partitions)
			if err == nil {
				t.Fatalf("%s.Validate accepted broken config %+v partitions=%d",
					tc.backend.Name(), tc.cfg, tc.partitions)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s.Validate error %q does not name the problem (want %q)",
					tc.backend.Name(), err, tc.wantErr)
			}
			if _, err := tc.backend.New(tc.cfg, tc.partitions, time.Hour); err == nil {
				t.Errorf("%s.New built a filter Validate rejects", tc.backend.Name())
			}
		})
	}
}

// TestBackendValidateAcceptsDefaults is the positive control: every
// backend at zero-value tuning accepts the evaluation geometry, and its
// New yields an empty filter.
func TestBackendValidateAcceptsDefaults(t *testing.T) {
	backends := []filter.Backend{
		filter.Packed{}, filter.Retouched{}, filter.Autoscale{}, bloofi.Backend{},
	}
	for _, b := range backends {
		t.Run(b.Name(), func(t *testing.T) {
			if err := b.Validate(validCfg, 1); err != nil {
				t.Fatalf("%s.Validate rejected the evaluation geometry: %v", b.Name(), err)
			}
			f, err := b.New(validCfg, 1, time.Hour)
			if err != nil {
				t.Fatalf("%s.New: %v", b.Name(), err)
			}
			if f.SetBits() != 0 {
				t.Errorf("%s.New returned a non-empty filter (%d set bits)", b.Name(), f.SetBits())
			}
		})
	}
}

// TestBackendValidateTopLayerGeometry pins the autoscale-specific check:
// a base geometry whose doubled top layer overflows the hasher's 32-bit
// position space must be rejected even though the base layer alone is
// fine.
func TestBackendValidateTopLayerGeometry(t *testing.T) {
	base := tcbf.Config{M: 1 << 28, K: 4, Initial: 10}
	if err := (filter.Packed{}).Validate(base, 1); err != nil {
		t.Fatalf("base geometry must be valid on its own: %v", err)
	}
	if err := (filter.Autoscale{MaxLayers: 16}).Validate(base, 1); err == nil {
		t.Error("autoscale accepted a base geometry whose top layer cannot be built")
	}
}
