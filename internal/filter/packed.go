package filter

import (
	"time"

	"bsub/internal/tcbf"
)

// Packed is the default backend: the paper's partitioned packed-counter
// TCBF, unchanged. Its Filter is a thin wrapper around *tcbf.Partitioned
// — every method either promotes the already-annotated hot-path method
// or devirtualizes the peer with a pointer type assertion, so the seam
// adds no allocations and no measurable dispatch cost to the contact
// loop (see BenchmarkEngineContact and TestContactAllocationFree).
type Packed struct{}

// Name implements Backend.
func (Packed) Name() string { return "tcbf" }

// Laws implements Backend: packed TCBF is the reference — it keeps every
// contract property.
func (Packed) Laws() Laws {
	return Laws{
		NoFalseNegatives: true,
		MergeCommutative: true,
		AdditiveAMerge:   true,
		ExactCounters:    true,
		RoundTripExact:   true,
	}
}

// Validate implements Backend.
func (Packed) Validate(cfg tcbf.Config, partitions int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	return validatePartitions(partitions)
}

// New implements Backend.
func (Packed) New(cfg tcbf.Config, partitions int, now time.Duration) (Filter, error) {
	p, err := tcbf.NewPartitioned(cfg, partitions, now)
	if err != nil {
		return nil, err
	}
	return &packedFilter{p}, nil
}

// validatePartitions mirrors tcbf.NewPartitioned's range check so a bad
// partition count is caught at the Validate boundary, before any filter
// exists.
func validatePartitions(partitions int) error {
	if partitions < 1 || partitions > 255 {
		return errPartitions(partitions)
	}
	return nil
}

// packedFilter adapts *tcbf.Partitioned to the Filter interface. The
// embedded pointer promotes every same-signature method; only the
// operations whose contract mentions another Filter (merge, preference)
// need devirtualizing overrides.
type packedFilter struct {
	*tcbf.Partitioned
}

// AMerge implements Filter.
//
//bsub:hotpath
func (p *packedFilter) AMerge(other Filter, now time.Duration) error {
	o, ok := other.(*packedFilter)
	if !ok {
		return errPeerBackend("tcbf", other)
	}
	return p.Partitioned.AMerge(o.Partitioned, now)
}

// MMerge implements Filter.
//
//bsub:hotpath
func (p *packedFilter) MMerge(other Filter, now time.Duration) error {
	o, ok := other.(*packedFilter)
	if !ok {
		return errPeerBackend("tcbf", other)
	}
	return p.Partitioned.MMerge(o.Partitioned, now)
}

// PreferencePre implements Filter with the receiver as self.
//
//bsub:hotpath
func (p *packedFilter) PreferencePre(k tcbf.PreKey, peer Filter, now time.Duration) (float64, error) {
	o, ok := peer.(*packedFilter)
	if !ok {
		return 0, errPeerBackend("tcbf", peer)
	}
	return tcbf.PreferencePartitionedPre(k, o.Partitioned, p.Partitioned, now)
}
