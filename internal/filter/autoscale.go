package filter

import (
	"encoding/binary"
	"fmt"
	"time"

	"bsub/internal/tcbf"
)

// Autoscale defaults, used when the corresponding field is zero.
const (
	// DefaultGrowAt is the fill ratio at which a fresh layer is added.
	DefaultGrowAt = 0.5
	// DefaultMaxLayers bounds the layer stack; with geometry doubling
	// per layer, 8 layers give 255x the base capacity.
	DefaultMaxLayers = 8
)

// Autoscale is a scalable-Bloom-filter backend in the spirit of Almeida
// et al.: instead of hand-tuning Config.M to the expected load, the
// filter starts at the configured base geometry and, whenever the newest
// layer's fill ratio crosses GrowAt, adds a fresh layer with twice the
// previous bit-vector length. Inserts go to the newest layer (keys
// already present anywhere are left to their existing counters), queries
// OR across layers, and the preferential query uses the best counter any
// layer holds. Nothing is ever rehashed: the double-hashing digests are
// geometry-independent, so each layer derives its own positions from the
// same precomputed key.
type Autoscale struct {
	// GrowAt is the newest layer's fill-ratio growth trigger; zero means
	// DefaultGrowAt. Must be in (0, 1).
	GrowAt float64
	// MaxLayers bounds the stack; zero means DefaultMaxLayers. Must be
	// in [1, 16].
	MaxLayers int
}

// Name implements Backend.
func (Autoscale) Name() string { return "autoscale" }

// Laws implements Backend: layers only add bits, so there are no false
// negatives, and layer-wise merges commute; but a key's counters live in
// whichever layer it entered, so MinCounter does not track the additive
// reference (merging two filters that learned a key in different layers
// yields the max of the two counters, not the sum).
func (Autoscale) Laws() Laws {
	return Laws{
		NoFalseNegatives: true,
		MergeCommutative: true,
		RoundTripExact:   true,
	}
}

func (a Autoscale) growAt() float64 {
	if a.GrowAt == 0 {
		return DefaultGrowAt
	}
	return a.GrowAt
}

func (a Autoscale) maxLayers() int {
	if a.MaxLayers == 0 {
		return DefaultMaxLayers
	}
	return a.MaxLayers
}

// Validate implements Backend. Every layer geometry up to the cap must
// be constructible, not just the base one.
func (a Autoscale) Validate(cfg tcbf.Config, partitions int) error {
	if g := a.growAt(); g <= 0 || g >= 1 {
		return fmt.Errorf("filter: autoscale growth trigger %g outside (0,1)", g)
	}
	if l := a.maxLayers(); l < 1 || l > 16 {
		return fmt.Errorf("filter: autoscale layer cap %d outside [1,16]", l)
	}
	if err := validatePartitions(partitions); err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	top := cfg
	top.M = cfg.M << (a.maxLayers() - 1)
	if err := top.Validate(); err != nil {
		return fmt.Errorf("filter: autoscale top layer: %w", err)
	}
	return nil
}

// New implements Backend.
func (a Autoscale) New(cfg tcbf.Config, partitions int, now time.Duration) (Filter, error) {
	if err := a.Validate(cfg, partitions); err != nil {
		return nil, err
	}
	f := &autoscaleFilter{
		cfg:       cfg,
		growAt:    a.growAt(),
		maxLayers: a.maxLayers(),
	}
	if err := f.ensureLayers(1, now); err != nil {
		return nil, err
	}
	f.active = 1
	return f, nil
}

// autoscaleWireMagic tags the layered wire format; it is distinct from
// both tcbf magic bytes so a misrouted buffer fails loudly.
const autoscaleWireMagic = 0xA5

// autoscaleFilter is a stack of TCBF layers with doubling geometry.
// layers[:active] are live; deactivated layers (after Reset) are kept
// and recycled on regrowth.
type autoscaleFilter struct {
	cfg       tcbf.Config // base geometry; DecayPerMinute tracks retunes
	growAt    float64
	maxLayers int
	layers    []*tcbf.Filter
	active    int
	merged    bool
}

// layerConfig returns layer i's geometry: base M doubled per level.
func (f *autoscaleFilter) layerConfig(i int) tcbf.Config {
	cfg := f.cfg
	cfg.M = f.cfg.M << i
	return cfg
}

// ensureLayers makes at least n layers exist (allocating or recycling),
// all carrying the current decay factor.
func (f *autoscaleFilter) ensureLayers(n int, now time.Duration) error {
	for len(f.layers) < n {
		l, err := tcbf.New(f.layerConfig(len(f.layers)), now)
		if err != nil {
			return err
		}
		f.layers = append(f.layers, l)
	}
	for i := f.active; i < n; i++ {
		f.layers[i].Reset(now)
		if err := f.layers[i].SetDecayFactor(f.cfg.DecayPerMinute, now); err != nil {
			return err
		}
	}
	if n > f.active {
		f.active = n
	}
	return nil
}

// live returns the active layer slice.
func (f *autoscaleFilter) live() []*tcbf.Filter { return f.layers[:f.active] }

// Config implements Filter (base geometry; layers above it double M).
func (f *autoscaleFilter) Config() tcbf.Config { return f.cfg }

// Partitions implements Filter: layering replaces partitioning, so the
// stack always reports a single partition.
func (f *autoscaleFilter) Partitions() int { return 1 }

// Reset implements Filter, collapsing back to the base layer.
func (f *autoscaleFilter) Reset(now time.Duration) {
	for _, l := range f.live() {
		l.Reset(now)
	}
	f.active = 1
	f.merged = false
}

// Advance implements Filter.
func (f *autoscaleFilter) Advance(now time.Duration) error {
	for _, l := range f.live() {
		if err := l.Advance(now); err != nil {
			return err
		}
	}
	return nil
}

// SetDecayFactor implements Filter.
func (f *autoscaleFilter) SetDecayFactor(perMinute float64, now time.Duration) error {
	for _, l := range f.live() {
		if err := l.SetDecayFactor(perMinute, now); err != nil {
			return err
		}
	}
	f.cfg.DecayPerMinute = perMinute
	return nil
}

// maybeGrow adds a layer when the newest one crosses the growth trigger
// and the cap allows it.
func (f *autoscaleFilter) maybeGrow(now time.Duration) error {
	if f.active >= f.maxLayers {
		return nil
	}
	if f.layers[f.active-1].FillRatio() <= f.growAt {
		return nil
	}
	return f.ensureLayers(f.active+1, now)
}

// Insert implements Filter.
func (f *autoscaleFilter) Insert(key string, now time.Duration) error {
	return f.InsertPre(tcbf.Precompute(key), now)
}

// InsertAll implements Filter.
func (f *autoscaleFilter) InsertAll(keys []string, now time.Duration) error {
	for _, k := range keys {
		if err := f.Insert(k, now); err != nil {
			return err
		}
	}
	return nil
}

// InsertPre implements Filter. A key already present in any layer keeps
// its existing counters (the TCBF's "already-set counters are left
// unchanged" rule, lifted to the stack); otherwise it enters the newest
// layer, growing the stack first if that layer is past the trigger.
func (f *autoscaleFilter) InsertPre(k tcbf.PreKey, now time.Duration) error {
	if f.merged {
		return fmt.Errorf("filter: autoscale insert %q: %w", k.Key, tcbf.ErrMerged)
	}
	if err := f.Advance(now); err != nil {
		return err
	}
	for _, l := range f.live() {
		ok, err := l.ContainsPre(k, now)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
	if err := f.maybeGrow(now); err != nil {
		return err
	}
	return f.layers[f.active-1].InsertPre(k, now)
}

// InsertAllPre implements Filter.
func (f *autoscaleFilter) InsertAllPre(keys []tcbf.PreKey, now time.Duration) error {
	for i := range keys {
		if err := f.InsertPre(keys[i], now); err != nil {
			return err
		}
	}
	return nil
}

// Contains implements Filter.
func (f *autoscaleFilter) Contains(key string, now time.Duration) (bool, error) {
	return f.ContainsPre(tcbf.Precompute(key), now)
}

// ContainsPre implements Filter: present in the stack means present in
// at least one layer.
func (f *autoscaleFilter) ContainsPre(k tcbf.PreKey, now time.Duration) (bool, error) {
	for _, l := range f.live() {
		ok, err := l.ContainsPre(k, now)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// ContainsAnyPre implements Filter.
func (f *autoscaleFilter) ContainsAnyPre(keys []tcbf.PreKey, now time.Duration) (bool, error) {
	for i := range keys {
		ok, err := f.ContainsPre(keys[i], now)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// MinCounterPre implements Filter: the key's strength is the best
// minimum counter any layer gives it (its true layer, or a stronger
// cross-layer collision).
func (f *autoscaleFilter) MinCounterPre(k tcbf.PreKey, now time.Duration) (float64, error) {
	best := 0.0
	for _, l := range f.live() {
		c, err := l.MinCounterPre(k, now)
		if err != nil {
			return 0, err
		}
		if c > best {
			best = c
		}
	}
	return best, nil
}

// PreferencePre implements Filter with the receiver as self, mirroring
// the Section IV-A formula over the stacked counters.
func (f *autoscaleFilter) PreferencePre(k tcbf.PreKey, peer Filter, now time.Duration) (float64, error) {
	o, ok := peer.(*autoscaleFilter)
	if !ok {
		return 0, errPeerBackend("autoscale", peer)
	}
	pf, err := o.MinCounterPre(k, now)
	if err != nil {
		return 0, fmt.Errorf("peer: %w", err)
	}
	g, err := f.MinCounterPre(k, now)
	if err != nil {
		return 0, fmt.Errorf("self: %w", err)
	}
	if g == 0 {
		return pf, nil
	}
	return pf - g, nil
}

// merge aligns the two stacks and combines them layer-wise.
func (f *autoscaleFilter) merge(other Filter, now time.Duration, additive bool) error {
	o, ok := other.(*autoscaleFilter)
	if !ok {
		return errPeerBackend("autoscale", other)
	}
	if f.cfg.M != o.cfg.M || f.cfg.K != o.cfg.K || f.cfg.Initial != o.cfg.Initial {
		return fmt.Errorf("%w: autoscale base (%d,%d,C=%g) vs (%d,%d,C=%g)", tcbf.ErrGeometry,
			f.cfg.M, f.cfg.K, f.cfg.Initial, o.cfg.M, o.cfg.K, o.cfg.Initial)
	}
	if err := f.ensureLayers(o.active, now); err != nil {
		return err
	}
	for i := 0; i < o.active; i++ {
		var err error
		if additive {
			err = f.layers[i].AMerge(o.layers[i], now)
		} else {
			err = f.layers[i].MMerge(o.layers[i], now)
		}
		if err != nil {
			return err
		}
	}
	// Layers above o.active only need their clocks advanced.
	if err := f.Advance(now); err != nil {
		return err
	}
	f.merged = true
	return nil
}

// AMerge implements Filter.
func (f *autoscaleFilter) AMerge(other Filter, now time.Duration) error {
	return f.merge(other, now, true)
}

// MMerge implements Filter.
func (f *autoscaleFilter) MMerge(other Filter, now time.Duration) error {
	return f.merge(other, now, false)
}

// Encode implements Filter.
func (f *autoscaleFilter) Encode(mode tcbf.CounterMode) ([]byte, error) {
	return f.EncodeTo(nil, mode)
}

// EncodeTo implements Filter: a 2-byte header (magic, layer count)
// followed by length-prefixed per-layer TCBF encodings, empty layers
// compressed to a zero length — the partitioned format's shape with its
// own magic, since the receiver must rebuild doubling geometry rather
// than equal partitions.
func (f *autoscaleFilter) EncodeTo(dst []byte, mode tcbf.CounterMode) ([]byte, error) {
	dst = append(dst, autoscaleWireMagic, byte(f.active))
	for _, l := range f.live() {
		if l.SetBits() == 0 {
			dst = binary.BigEndian.AppendUint32(dst, 0)
			continue
		}
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		var err error
		dst, err = l.EncodeTo(dst, mode)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	return dst, nil
}

// DecodeInto implements Filter, reusing the layer stack in place. The
// wire layer count must fit the cap and every layer's geometry must
// match the doubling schedule.
func (f *autoscaleFilter) DecodeInto(data []byte, now time.Duration) error {
	if len(data) < 2 {
		return fmt.Errorf("filter: autoscale decode: truncated header")
	}
	if data[0] != autoscaleWireMagic {
		return fmt.Errorf("filter: autoscale decode: bad magic 0x%02x", data[0])
	}
	n := int(data[1])
	if n < 1 || n > f.maxLayers {
		return fmt.Errorf("filter: autoscale decode: wire has %d layers, cap is %d", n, f.maxLayers)
	}
	// Deactivate first so ensureLayers resets recycled layers; then grow
	// to the wire's count.
	f.active = 0
	if err := f.ensureLayers(n, now); err != nil {
		return err
	}
	rest := data[2:]
	for _, l := range f.live() {
		if len(rest) < 4 {
			return fmt.Errorf("filter: autoscale decode: truncated layer length")
		}
		ln := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if ln == 0 {
			l.Reset(now)
			if err := l.SetDecayFactor(f.cfg.DecayPerMinute, now); err != nil {
				return err
			}
			continue
		}
		if len(rest) < ln {
			return fmt.Errorf("filter: autoscale decode: truncated layer body")
		}
		if err := l.DecodeInto(rest[:ln], now); err != nil {
			return err
		}
		rest = rest[ln:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("filter: autoscale decode: %d trailing bytes", len(rest))
	}
	f.merged = true
	return nil
}

// SetBits implements Filter.
func (f *autoscaleFilter) SetBits() int {
	total := 0
	for _, l := range f.live() {
		total += l.SetBits()
	}
	return total
}

// EstimatedFPR implements Filter: a stacked query is a false positive
// when any layer fires, so the joint rate is 1 - prod(1 - fpr_i).
func (f *autoscaleFilter) EstimatedFPR() float64 {
	miss := 1.0
	for _, l := range f.live() {
		miss *= 1 - l.EstimatedFPR()
	}
	return 1 - miss
}
