// Package filter defines the interface seam between the forwarding
// engine and its interest-filter implementation. B-SUB's behavior is a
// function of the filter it forwards with: the paper's TCBF buys compact
// interest encoding with false-positive forwardings, and the related
// work shows that trade is tunable — Retouched Bloom Filters accept
// selected false negatives to cut wasted cost, scalable filters grow
// geometry with observed load, and Bloofi-style trees aggregate many
// downstream filters behind one logarithmic check. The Filter interface
// captures exactly the operations internal/engine performs on its relay
// filters (insert/contains/batch/decay/merge/encode/preference), so
// those designs can be swapped behind the seam and ablated on identical
// traces.
//
// The packed TCBF remains the default backend and the seam is free on
// the hot path: Packed's Filter is a thin pointer wrapper around
// *tcbf.Partitioned, method dispatch through the interface does not
// allocate, and the engine's contact loop stays at 0 allocs/op.
package filter

import (
	"fmt"
	"time"

	"bsub/internal/tcbf"
)

// Filter is the engine-facing filter contract: everything a node's relay
// filter must support over one contact — settle decay, batch-insert the
// node's genuine interests, answer existential and preferential queries
// for carried messages, merge the peer's filter in, and encode/decode
// itself for the wire. Times are simulation clocks threaded explicitly,
// as everywhere in the deterministic core.
//
// Implementations are not safe for concurrent use; the engine serializes
// access per node.
type Filter interface {
	// Config returns the decay/geometry configuration the filter was
	// built from. For adaptive backends this is the base configuration;
	// current geometry may differ.
	Config() tcbf.Config
	// Partitions returns the Section VI-D partition count (1 when the
	// backend does not partition).
	Partitions() int

	// Reset returns the filter to its freshly-constructed empty state
	// with all clocks at now, so scratch filters can be reused across
	// contacts instead of reallocated.
	Reset(now time.Duration)
	// Advance settles time decay up to now.
	Advance(now time.Duration) error
	// SetDecayFactor retunes the decay factor after settling decay —
	// the Section V-B feedback controller's knob.
	SetDecayFactor(perMinute float64, now time.Duration) error

	Insert(key string, now time.Duration) error
	InsertAll(keys []string, now time.Duration) error
	InsertPre(k tcbf.PreKey, now time.Duration) error
	InsertAllPre(keys []tcbf.PreKey, now time.Duration) error

	Contains(key string, now time.Duration) (bool, error)
	ContainsPre(k tcbf.PreKey, now time.Duration) (bool, error)
	ContainsAnyPre(keys []tcbf.PreKey, now time.Duration) (bool, error)
	// MinCounterPre returns the key's minimum counter — the TCBF
	// membership strength backing the preferential query. Plain-BF-like
	// backends report a constant positive value for contained keys.
	MinCounterPre(k tcbf.PreKey, now time.Duration) (float64, error)
	// PreferencePre runs the Section IV-A preferential query with the
	// receiver as self: positive means peer is the better carrier for k.
	// peer must come from the same backend.
	PreferencePre(k tcbf.PreKey, peer Filter, now time.Duration) (float64, error)

	// AMerge folds other into the receiver additively (consumer→broker
	// reinforcement); MMerge by maximum (broker↔broker, the Fig. 6
	// bogus-counter fix). other must come from the same backend.
	AMerge(other Filter, now time.Duration) error
	MMerge(other Filter, now time.Duration) error

	Encode(mode tcbf.CounterMode) ([]byte, error)
	// EncodeTo appends the wire encoding to dst and returns the extended
	// slice — the allocation-free variant for caller-reused buffers.
	EncodeTo(dst []byte, mode tcbf.CounterMode) ([]byte, error)
	// DecodeInto reconstructs the filter from data in place, reusing the
	// receiver's storage; on error the receiver is unspecified and must
	// be Reset before reuse.
	DecodeInto(data []byte, now time.Duration) error

	// SetBits returns the number of set positions; EstimatedFPR the
	// fill-ratio false-positive estimate (Eq. 7 mean for partitioned
	// backends).
	SetBits() int
	EstimatedFPR() float64
}

// Laws declares which contract properties a backend keeps and which it
// deliberately relaxes. The conformance suite reads these to decide what
// to assert: every backend is run against the same differential model,
// but e.g. a retouched filter is *allowed* bounded false negatives while
// tcbf is not.
type Laws struct {
	// NoFalseNegatives: a key inserted and not yet decayed away is
	// always reported present.
	NoFalseNegatives bool
	// BoundedFalseNegatives: false negatives may occur, but only for
	// keys whose reference counter is at or below the backend's reported
	// cutoff (Retouched-BF selected clearing).
	BoundedFalseNegatives bool
	// MergeCommutative: A.Merge(B) and B.Merge(A) yield equal counter
	// state (given equal clocks).
	MergeCommutative bool
	// AdditiveAMerge: AMerge accumulates per-position counters by
	// saturating addition, exactly as one flat TCBF would, so repeated
	// reinforcement sums. Backends that reshard on merge — a Bloofi
	// absorb adds a leaf, autoscale merges layer-wise — keep membership
	// but only max-like counter strength, and decay therefore erodes
	// their merged keys on the single-insert timescale, not the summed
	// one.
	AdditiveAMerge bool
	// ExactCounters: MinCounterPre matches the collision-aware reference
	// model exactly (filter counter ≥ reference counter, equal absent
	// collisions).
	ExactCounters bool
	// RoundTripExact: Encode→DecodeInto reproduces counter state exactly
	// (up to the counter mode's declared precision).
	RoundTripExact bool
}

// Backend constructs Filters of one implementation. Backends are small
// comparable value types so engine configs can be compared for arena
// compatibility.
type Backend interface {
	// Name is the backend's ablation-row identifier (e.g. "tcbf",
	// "retouched", "autoscale", "bloofi").
	Name() string
	// Validate rejects an inconsistent configuration before any filter
	// is built — the interface-boundary geometry check; engines must
	// call it before New.
	Validate(cfg tcbf.Config, partitions int) error
	// New builds an empty filter with all clocks at now.
	New(cfg tcbf.Config, partitions int, now time.Duration) (Filter, error)
	// Laws reports the contract properties this backend keeps.
	Laws() Laws
}

// Default is the backend the engine uses when none is configured: the
// paper's packed partitioned TCBF.
var Default Backend = Packed{}

// MustNew is Backend.New for known-validated parameters.
//
//bsub:coldpath
func MustNew(b Backend, cfg tcbf.Config, partitions int, now time.Duration) Filter {
	f, err := b.New(cfg, partitions, now)
	if err != nil {
		panic(fmt.Sprintf("filter: %s backend rejected validated config: %v", b.Name(), err))
	}
	return f
}

// errPeerBackend builds the cross-backend merge/preference error.
//
//bsub:coldpath
func errPeerBackend(want string, got Filter) error {
	return fmt.Errorf("filter: %s backend cannot operate on a %T peer", want, got)
}

// errPartitions builds the out-of-range partition-count error.
//
//bsub:coldpath
func errPartitions(partitions int) error {
	return fmt.Errorf("filter: partition count must be in [1,255], got %d", partitions)
}
