package filter

import (
	"fmt"
	"time"

	"bsub/internal/tcbf"
)

// DefaultRetouchMaxFill is the fill-ratio bound Retouched clears down to
// when Retouched.MaxFill is zero.
const DefaultRetouchMaxFill = 0.5

// Retouched is the Retouched-Bloom-Filter backend (Donnet et al.,
// "Retouched Bloom Filters: Allowing Networked Applications to Trade Off
// Selected False Positives Against False Negatives"): a decorator over
// the packed partitioned TCBF that, after every counter-raising operation
// (insert, A-merge, M-merge), clears the set positions with the lowest
// counters until the fill ratio is back under MaxFill. Cleared bits turn
// would-be false positives into false negatives — but only *selected*
// ones: because hash collisions can only inflate a position's counter, a
// key's minimum filter counter is at least its true (collision-free)
// counter, so a single clearing pass can drop a key only if its counter
// mass at that moment is at or below the pass's largest cleared value.
// Reinforcement compounds across passes, though — a merge can re-add
// counter mass to a position an earlier pass cleared, so the lifetime a
// key has "lost" to retouching is bounded by the *sum* of the passes'
// largest cleared values, not their maximum. That cumulative bound is
// tracked and exposed as the filter's Cutoff: every false negative is a
// key whose un-retouched remaining lifetime was at most Cutoff — the
// low-value keys whose forwarding was most likely wasted traffic.
type Retouched struct {
	// MaxFill is the fill-ratio bound retouching clears down to; zero
	// means DefaultRetouchMaxFill. Must be in (0, 1].
	MaxFill float64
}

// Name implements Backend.
func (Retouched) Name() string { return "retouched" }

// Laws implements Backend: retouching deliberately relaxes the
// no-false-negative guarantee to the bounded, selected form, and clears
// counters, so MinCounter no longer tracks the reference model. The wire
// format is the packed TCBF's, so round-trips stay exact, and retouching
// is a deterministic function of the merged counter state, so merges
// still commute.
func (Retouched) Laws() Laws {
	return Laws{
		BoundedFalseNegatives: true,
		MergeCommutative:      true,
		AdditiveAMerge:        true,
		RoundTripExact:        true,
	}
}

func (r Retouched) maxFill() float64 {
	if r.MaxFill == 0 {
		return DefaultRetouchMaxFill
	}
	return r.MaxFill
}

// Validate implements Backend.
func (r Retouched) Validate(cfg tcbf.Config, partitions int) error {
	if mf := r.maxFill(); mf <= 0 || mf > 1 {
		return fmt.Errorf("filter: retouch fill bound %g outside (0,1]", mf)
	}
	return Packed{}.Validate(cfg, partitions)
}

// New implements Backend.
func (r Retouched) New(cfg tcbf.Config, partitions int, now time.Duration) (Filter, error) {
	if err := r.Validate(cfg, partitions); err != nil {
		return nil, err
	}
	p, err := tcbf.NewPartitioned(cfg, partitions, now)
	if err != nil {
		return nil, err
	}
	return &retouchedFilter{Partitioned: p, maxFill: r.maxFill()}, nil
}

// retouchedFilter decorates *tcbf.Partitioned with post-operation
// retouching. The embedded pointer promotes the query/encode surface;
// every counter-raising operation is overridden to retouch afterwards.
type retouchedFilter struct {
	*tcbf.Partitioned
	maxFill float64
	// cutoff accumulates the largest counter value cleared by each
	// retouching pass since the last Reset — the false-negative bound: a
	// key reported absent despite being live lost at most this much true
	// counter mass to clearing in total, however merges re-added and
	// re-cleared it along the way.
	cutoff float64
}

// Cutoff returns the current false-negative bound: every false negative
// this filter can produce is a key whose true (collision-free) counter
// would have been at most this value had no bits ever been cleared. Zero
// means no bits have been cleared and the filter has no false negatives.
func (f *retouchedFilter) Cutoff() float64 { return f.cutoff }

func (f *retouchedFilter) retouch(now time.Duration) error {
	c, err := f.Partitioned.Retouch(f.maxFill, now)
	f.cutoff += c
	return err
}

// Insert implements Filter.
func (f *retouchedFilter) Insert(key string, now time.Duration) error {
	if err := f.Partitioned.Insert(key, now); err != nil {
		return err
	}
	return f.retouch(now)
}

// InsertAll implements Filter.
func (f *retouchedFilter) InsertAll(keys []string, now time.Duration) error {
	if err := f.Partitioned.InsertAll(keys, now); err != nil {
		return err
	}
	return f.retouch(now)
}

// InsertPre implements Filter.
func (f *retouchedFilter) InsertPre(k tcbf.PreKey, now time.Duration) error {
	if err := f.Partitioned.InsertPre(k, now); err != nil {
		return err
	}
	return f.retouch(now)
}

// InsertAllPre implements Filter.
func (f *retouchedFilter) InsertAllPre(keys []tcbf.PreKey, now time.Duration) error {
	if err := f.Partitioned.InsertAllPre(keys, now); err != nil {
		return err
	}
	return f.retouch(now)
}

// AMerge implements Filter.
func (f *retouchedFilter) AMerge(other Filter, now time.Duration) error {
	o, ok := other.(*retouchedFilter)
	if !ok {
		return errPeerBackend("retouched", other)
	}
	if err := f.Partitioned.AMerge(o.Partitioned, now); err != nil {
		return err
	}
	return f.retouch(now)
}

// MMerge implements Filter.
func (f *retouchedFilter) MMerge(other Filter, now time.Duration) error {
	o, ok := other.(*retouchedFilter)
	if !ok {
		return errPeerBackend("retouched", other)
	}
	if err := f.Partitioned.MMerge(o.Partitioned, now); err != nil {
		return err
	}
	return f.retouch(now)
}

// PreferencePre implements Filter with the receiver as self.
func (f *retouchedFilter) PreferencePre(k tcbf.PreKey, peer Filter, now time.Duration) (float64, error) {
	o, ok := peer.(*retouchedFilter)
	if !ok {
		return 0, errPeerBackend("retouched", peer)
	}
	return tcbf.PreferencePartitionedPre(k, o.Partitioned, f.Partitioned, now)
}

// Reset implements Filter; the false-negative bound restarts with the
// counters.
func (f *retouchedFilter) Reset(now time.Duration) {
	f.Partitioned.Reset(now)
	f.cutoff = 0
}

// DecodeInto implements Filter. The decoded state is a peer's filter
// whose clearing history is unknown here, so the local cutoff restarts;
// the bound only ever describes clearings this instance performed.
func (f *retouchedFilter) DecodeInto(data []byte, now time.Duration) error {
	f.cutoff = 0
	return f.Partitioned.DecodeInto(data, now)
}
