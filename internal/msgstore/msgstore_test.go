package msgstore

import (
	"testing"
	"time"

	"bsub/internal/workload"
)

func msg(id int) workload.Message {
	return workload.Message{ID: id, Key: "k", Origin: 0, Size: 10, CreatedAt: 0}
}

func TestAddHasRemove(t *testing.T) {
	s := New()
	if s.Has(1) {
		t.Fatal("empty store has message")
	}
	s.Add(msg(1), time.Hour, 3)
	if !s.Has(1) {
		t.Fatal("store lost message")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Remove(1)
	if s.Has(1) {
		t.Fatal("remove failed")
	}
}

func TestLiveSortedAndPurges(t *testing.T) {
	s := New()
	s.Add(msg(3), time.Hour, 0)
	s.Add(msg(1), time.Hour, 0)
	s.Add(msg(2), time.Minute, 0) // expires early
	live := s.Live(30 * time.Minute)
	if len(live) != 2 || live[0].ID != 1 || live[1].ID != 3 {
		t.Fatalf("live = %+v", live)
	}
	if s.Has(2) {
		t.Error("expired entry not purged")
	}
}

func TestLiveAtExactExpiry(t *testing.T) {
	s := New()
	s.Add(msg(1), time.Hour, 0)
	if got := s.Live(time.Hour); len(got) != 1 {
		t.Error("message expired at exactly TTL boundary; should still be live")
	}
	if got := s.Live(time.Hour + 1); len(got) != 0 {
		t.Error("message survived past expiry")
	}
}

func TestCopies(t *testing.T) {
	s := New()
	s.Add(msg(1), time.Hour, 3)
	if s.Copies(1) != 3 {
		t.Fatalf("copies = %d", s.Copies(1))
	}
	if left := s.DecrementCopies(1); left != 2 {
		t.Fatalf("after decrement: %d", left)
	}
	s.DecrementCopies(1)
	if left := s.DecrementCopies(1); left != 0 {
		t.Fatalf("final decrement: %d", left)
	}
	if left := s.DecrementCopies(1); left != 0 {
		t.Fatalf("decrement below zero: %d", left)
	}
	if s.Copies(99) != 0 {
		t.Error("absent message has copies")
	}
	if s.DecrementCopies(99) != 0 {
		t.Error("decrement of absent message")
	}
}

func TestPurge(t *testing.T) {
	s := New()
	s.Add(msg(1), time.Minute, 0)
	s.Add(msg(2), time.Hour, 0)
	s.Purge(30 * time.Minute)
	if s.Has(1) || !s.Has(2) {
		t.Errorf("purge wrong: has1=%v has2=%v", s.Has(1), s.Has(2))
	}
}

func TestAddReplaces(t *testing.T) {
	s := New()
	s.Add(msg(1), time.Minute, 1)
	s.Add(msg(1), time.Hour, 5)
	if s.Copies(1) != 5 {
		t.Errorf("replace did not update copies: %d", s.Copies(1))
	}
	if len(s.Live(30*time.Minute)) != 1 {
		t.Error("replaced entry expired early")
	}
}

func TestLiveOrderAfterChurn(t *testing.T) {
	s := New()
	// Interleave adds, removes, re-adds, and Live calls to exercise the
	// incremental index.
	s.Add(msg(5), time.Hour, 0)
	s.Add(msg(2), time.Hour, 0)
	if got := s.Live(0); len(got) != 2 || got[0].ID != 2 || got[1].ID != 5 {
		t.Fatalf("live = %+v", got)
	}
	s.Add(msg(9), time.Hour, 0)
	s.Add(msg(1), time.Hour, 0)
	s.Remove(5)
	s.Add(msg(5), time.Hour, 0) // re-add while index slot is stale
	s.Add(msg(3), time.Hour, 0)
	got := s.Live(0)
	want := []int{1, 2, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("live = %+v", got)
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("live[%d] = %d, want %d", i, got[i].ID, id)
		}
	}
}

func TestLiveManyRandomOrderStable(t *testing.T) {
	s := New()
	ids := []int{77, 3, 41, 12, 9, 55, 23, 8, 99, 0}
	for _, id := range ids {
		s.Add(msg(id), time.Hour, 0)
		// Interleave reads so merging happens in several rounds.
		_ = s.Live(0)
	}
	got := s.Live(0)
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Fatalf("live not strictly ascending at %d: %v", i, got)
		}
	}
	if len(got) != len(ids) {
		t.Fatalf("live lost entries: %d vs %d", len(got), len(ids))
	}
}
