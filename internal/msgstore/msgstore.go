// Package msgstore provides the per-node message buffer shared by every
// protocol implementation: a keyed store of message copies with lazy
// TTL-based expiry and deterministic (ID-ordered) iteration.
//
// Live is called once or twice per contact on hot simulation paths, so the
// store maintains an ID-ordered index incrementally: new IDs accumulate in
// a small pending list that is sorted and merged into the main index on
// the next read, instead of re-sorting the whole buffer every contact.
package msgstore

import (
	"sort"
	"time"

	"bsub/internal/workload"
)

type entry struct {
	msg       workload.Message
	expiresAt time.Duration
	copies    int
}

// Store holds message copies for one node. The zero value is not usable;
// construct with New. Not safe for concurrent use.
type Store struct {
	entries map[int]entry
	// sorted is an ascending index of (possibly stale) message IDs; stale
	// entries are dropped during Live's sweep.
	sorted []int
	// pending are IDs added since the last Live call.
	pending []int
}

// New returns an empty store.
func New() *Store { return &Store{entries: make(map[int]entry)} }

// Add inserts (or replaces) a copy of msg expiring at expiresAt, with the
// given replication budget (producer-side copy counter; pass 0 when the
// copy itself will not be replicated further).
func (s *Store) Add(msg workload.Message, expiresAt time.Duration, copies int) {
	if _, exists := s.entries[msg.ID]; !exists {
		s.pending = append(s.pending, msg.ID)
	}
	s.entries[msg.ID] = entry{msg: msg, expiresAt: expiresAt, copies: copies}
}

// Has reports whether the store holds message id (possibly expired).
func (s *Store) Has(id int) bool {
	_, ok := s.entries[id]
	return ok
}

// Remove drops message id if present. The index entry is swept lazily.
func (s *Store) Remove(id int) { delete(s.entries, id) }

// Len returns the number of stored messages, including not-yet-purged
// expired ones.
func (s *Store) Len() int { return len(s.entries) }

// Copies returns the remaining replication budget for message id, or zero
// if absent.
func (s *Store) Copies(id int) int { return s.entries[id].copies }

// DecrementCopies lowers the replication budget for message id and reports
// the remaining count. The caller removes the message when it hits zero if
// the protocol requires ("the message is removed from the producer's
// memory after its copy number reaches the limit").
func (s *Store) DecrementCopies(id int) int {
	e, ok := s.entries[id]
	if !ok || e.copies == 0 {
		return 0
	}
	e.copies--
	s.entries[id] = e
	return e.copies
}

// Live returns the unexpired messages sorted by ID, purging expired
// entries (and sweeping stale index slots) as a side effect. The returned
// slice is valid until the next Store call.
func (s *Store) Live(now time.Duration) []workload.Message {
	s.settleIndex()
	out := make([]workload.Message, 0, len(s.entries))
	kept := s.sorted[:0]
	for _, id := range s.sorted {
		e, ok := s.entries[id]
		if !ok {
			continue // removed: sweep
		}
		if now > e.expiresAt {
			delete(s.entries, id)
			continue
		}
		kept = append(kept, id)
		out = append(out, e.msg)
	}
	s.sorted = kept
	return out
}

// Purge drops expired entries without returning the survivors.
func (s *Store) Purge(now time.Duration) {
	for id, e := range s.entries {
		if now > e.expiresAt {
			delete(s.entries, id)
		}
	}
}

// settleIndex merges pending IDs into the sorted index.
func (s *Store) settleIndex() {
	if len(s.pending) == 0 {
		return
	}
	sort.Ints(s.pending)
	if len(s.sorted) == 0 {
		s.sorted = append(s.sorted, s.pending...)
		s.pending = s.pending[:0]
		return
	}
	merged := make([]int, 0, len(s.sorted)+len(s.pending))
	i, j := 0, 0
	for i < len(s.sorted) && j < len(s.pending) {
		switch {
		case s.sorted[i] < s.pending[j]:
			merged = append(merged, s.sorted[i])
			i++
		case s.sorted[i] > s.pending[j]:
			merged = append(merged, s.pending[j])
			j++
		default: // re-added ID already indexed
			merged = append(merged, s.sorted[i])
			i, j = i+1, j+1
		}
	}
	merged = append(merged, s.sorted[i:]...)
	merged = append(merged, s.pending[j:]...)
	s.sorted = merged
	s.pending = s.pending[:0]
}
