package metrics

import (
	"math"
	"testing"
	"time"
)

func TestEmptyReport(t *testing.T) {
	r := NewCollector("x").Report()
	if r.DeliveryRatio() != 0 || r.MeanDelay() != 0 || r.ForwardingsPerDelivered() != 0 || r.FPR() != 0 {
		t.Errorf("empty report has non-zero derived metrics: %s", r)
	}
}

func TestDeliveryRatioPerMessage(t *testing.T) {
	c := NewCollector("x")
	c.MessageCreated(true)
	c.MessageCreated(true)
	c.MessageCreated(false) // nobody subscribed: excluded from denominator
	c.GenuineDelivery(0, 100, time.Minute)
	r := c.Report()
	if got := r.DeliveryRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("delivery ratio = %g, want 0.5", got)
	}
	if r.Created != 3 || r.Deliverable != 2 {
		t.Errorf("created/deliverable = %d/%d, want 3/2", r.Created, r.Deliverable)
	}
}

func TestFirstDeliveryDefinesDelay(t *testing.T) {
	c := NewCollector("x")
	c.MessageCreated(true)
	c.GenuineDelivery(0, 100, time.Minute)
	c.GenuineDelivery(0, 100, 5*time.Minute) // later consumer: ignored
	r := c.Report()
	if r.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", r.Delivered)
	}
	if r.MeanDelay() != time.Minute {
		t.Errorf("mean delay = %v, want the first delivery's 1m", r.MeanDelay())
	}
}

func TestMeanDelayAveragesMessages(t *testing.T) {
	c := NewCollector("x")
	c.MessageCreated(true)
	c.MessageCreated(true)
	c.GenuineDelivery(0, 100, time.Minute)
	c.GenuineDelivery(1, 101, 3*time.Minute)
	if got := c.Report().MeanDelay(); got != 2*time.Minute {
		t.Errorf("mean delay = %v, want 2m", got)
	}
}

func TestForwardingsPerDelivered(t *testing.T) {
	c := NewCollector("x")
	c.MessageCreated(true)
	c.MessageCreated(true)
	for i := 0; i < 6; i++ {
		c.Forwarding()
	}
	c.GenuineDelivery(0, 100, time.Minute)
	c.GenuineDelivery(1, 101, time.Minute)
	if got := c.Report().ForwardingsPerDelivered(); math.Abs(got-3) > 1e-12 {
		t.Errorf("fwd/delivered = %g, want 3", got)
	}
}

func TestFPRCountsMessagesOnce(t *testing.T) {
	c := NewCollector("x")
	for i := 0; i < 4; i++ {
		c.MessageCreated(true)
	}
	c.GenuineDelivery(0, 100, time.Minute)
	c.GenuineDelivery(1, 101, time.Minute)
	c.GenuineDelivery(2, 102, time.Minute)
	c.FalseDelivery(3)
	c.FalseDelivery(3) // second false consumer of same message: once
	r := c.Report()
	if r.FalseDeliveries != 1 {
		t.Fatalf("false deliveries = %d, want 1", r.FalseDeliveries)
	}
	if got := r.FPR(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("FPR = %g, want 1/4", got)
	}
}

func TestMessageBothGenuineAndFalse(t *testing.T) {
	c := NewCollector("x")
	c.MessageCreated(true)
	c.GenuineDelivery(0, 100, time.Minute)
	c.FalseDelivery(0)
	r := c.Report()
	if r.Delivered != 1 || r.FalseDeliveries != 1 {
		t.Errorf("delivered/false = %d/%d, want 1/1", r.Delivered, r.FalseDeliveries)
	}
	if got := r.FPR(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FPR = %g, want 0.5", got)
	}
}

func TestByteAccounting(t *testing.T) {
	c := NewCollector("x")
	c.ControlBytes(10)
	c.ControlBytes(5)
	c.DataBytes(140)
	c.LateDrop()
	r := c.Report()
	if r.ControlBytes != 15 || r.DataBytes != 140 || r.LateDrops != 1 {
		t.Errorf("bytes: %+v", r)
	}
}

func TestStringIncludesProtocol(t *testing.T) {
	r := NewCollector("B-SUB").Report()
	if got := r.String(); len(got) == 0 || got[:5] != "B-SUB" {
		t.Errorf("String() = %q", got)
	}
}

func TestDelayPercentile(t *testing.T) {
	c := NewCollector("x")
	for i := 1; i <= 10; i++ {
		c.MessageCreated(true)
		c.GenuineDelivery(i, 100+i, time.Duration(i)*time.Minute)
	}
	r := c.Report()
	if got := r.DelayPercentile(0); got != time.Minute {
		t.Errorf("p0 = %v, want 1m", got)
	}
	if got := r.DelayPercentile(0.5); got != 6*time.Minute {
		t.Errorf("p50 = %v, want 6m", got)
	}
	if got := r.DelayPercentile(0.9); got != 10*time.Minute {
		t.Errorf("p90 = %v, want 10m", got)
	}
	if got := r.DelayPercentile(1); got != 10*time.Minute {
		t.Errorf("p100 = %v, want 10m", got)
	}
	if got := (Report{}).DelayPercentile(0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}
