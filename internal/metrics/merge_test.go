package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// TestMinDelayWins: delivery delay is order-independent — recording the
// later delivery first must not change the answer.
func TestMinDelayWins(t *testing.T) {
	c := NewCollector("x")
	c.MessageCreated(true)
	c.GenuineDelivery(0, 100, 5*time.Minute)
	c.GenuineDelivery(0, 101, time.Minute) // earlier delivery, recorded later
	r := c.Report()
	if r.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", r.Delivered)
	}
	if r.MeanDelay() != time.Minute {
		t.Errorf("mean delay = %v, want the earliest delivery's 1m", r.MeanDelay())
	}
}

// TestMergeExact: splitting an event stream across two collectors and
// merging must reproduce the single-collector report field for field,
// including overlapping (message, consumer) delivery events.
func TestMergeExact(t *testing.T) {
	one := NewCollector("p")
	a, b := NewCollector("p"), NewCollector("p")

	feed := func(c *Collector, half int) {
		if half == 0 {
			c.MessageCreated(true)
			c.MessageCreated(false)
			c.GenuineDelivery(0, 1, 2*time.Minute)
			c.GenuineDelivery(0, 2, time.Minute)
			c.FalseDelivery(3)
			c.Forwarding()
			c.Replication(true)
			c.ControlBytes(10)
			c.Contact()
		} else {
			c.MessageCreated(true)
			c.GenuineDelivery(0, 1, 3*time.Minute) // duplicate pair, later delay
			c.GenuineDelivery(7, 9, time.Hour)
			c.FalseDelivery(3) // duplicate false message
			c.Forwarding()
			c.Forwarding()
			c.Replication(false)
			c.DataBytes(99)
			c.LateDrop()
			c.Contact()
		}
	}
	feed(one, 0)
	feed(one, 1)
	feed(a, 0)
	feed(b, 1)
	a.Merge(b)

	got, want := a.Report(), one.Report()
	if got.Created != want.Created || got.Deliverable != want.Deliverable ||
		got.Delivered != want.Delivered || got.DeliveryEvents != want.DeliveryEvents ||
		got.FalseDeliveries != want.FalseDeliveries || got.Forwardings != want.Forwardings ||
		got.Replications != want.Replications || got.FalseInjections != want.FalseInjections ||
		got.ControlBytes != want.ControlBytes || got.DataBytes != want.DataBytes ||
		got.LateDrops != want.LateDrops || got.Contacts != want.Contacts {
		t.Fatalf("merged report differs:\ngot  %+v\nwant %+v", got, want)
	}
	if got.MeanDelay() != want.MeanDelay() {
		t.Errorf("merged mean delay %v, want %v", got.MeanDelay(), want.MeanDelay())
	}
	if got.DelayPercentile(0.9) != want.DelayPercentile(0.9) {
		t.Errorf("merged p90 %v, want %v", got.DelayPercentile(0.9), want.DelayPercentile(0.9))
	}
}

// TestMergeRandomizedPartition: for random event streams, any partition of
// events across any number of collectors merges to the sequential report.
func TestMergeRandomizedPartition(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shards := 1 + rng.Intn(7)
		parts := make([]*Collector, shards)
		for i := range parts {
			parts[i] = NewCollector("p")
		}
		one := NewCollector("p")

		apply := func(c *Collector, op int, rng *rand.Rand) {
			switch op % 6 {
			case 0:
				c.MessageCreated(rng.Intn(2) == 0)
			case 1:
				c.GenuineDelivery(rng.Intn(10), rng.Intn(8), time.Duration(1+rng.Intn(3600))*time.Second)
			case 2:
				c.FalseDelivery(rng.Intn(10))
			case 3:
				c.Forwarding()
			case 4:
				c.Replication(rng.Intn(2) == 0)
			case 5:
				c.Contact()
			}
		}
		for i := 0; i < 200; i++ {
			op := rng.Intn(6)
			// The same op with the same draws goes to both the sequential
			// collector and one random shard.
			r1 := rand.New(rand.NewSource(seed*1000 + int64(i)))
			r2 := rand.New(rand.NewSource(seed*1000 + int64(i)))
			apply(one, op, r1)
			apply(parts[rng.Intn(shards)], op, r2)
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			merged.Merge(p)
		}
		got, want := merged.Report(), one.Report()
		if got.Delivered != want.Delivered || got.DeliveryEvents != want.DeliveryEvents ||
			got.MeanDelay() != want.MeanDelay() || got.Forwardings != want.Forwardings ||
			got.FalseDeliveries != want.FalseDeliveries || got.Contacts != want.Contacts {
			t.Fatalf("seed %d: merged %v != sequential %v", seed, got, want)
		}
	}
}
