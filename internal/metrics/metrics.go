// Package metrics collects the three evaluation metrics of Section VII
// (delivery ratio, delay, overhead) plus the false-positive rate of
// delivered messages (Fig. 9(d)).
//
// Accounting follows the paper's per-message convention:
//
//   - A message is "deliverable" when at least one node other than its
//     producer subscribes to its key.
//   - It is "delivered" when the first interested consumer receives it;
//     the delivery ratio is delivered / deliverable messages and the delay
//     is that first arrival's latency ("we only consider the delay of
//     delivered messages").
//   - Overhead is total message forwardings divided by delivered messages
//     ("dividing the number of forwardings in the network by the number of
//     messages that have been delivered").
//   - The FPR is "the ratio of the number of falsely delivered messages to
//     the total number of delivered messages": a message counts as falsely
//     delivered when a Bloom-filter false positive hands it to a consumer
//     who never subscribed.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Collector accumulates raw simulation events. It is not safe for
// concurrent use; the sharded simulator gives each worker its own
// collector and combines them with Merge at epoch barriers.
type Collector struct {
	protocol    string
	created     int
	deliverable int

	delivered map[int]time.Duration // message -> first genuine delivery delay
	events    map[pairKey]struct{}  // distinct (message, consumer) deliveries
	falseMsg  map[int]struct{}      // messages with >= 1 false delivery

	forwardings     int
	replications    int
	falseInjections int
	controlBytes    int64
	dataBytes       int64
	lateDrops       int
	contacts        int
}

type pairKey struct {
	msg  int
	node int
}

// NewCollector returns an empty collector labelled with the protocol name.
func NewCollector(protocol string) *Collector {
	return &Collector{
		protocol:  protocol,
		delivered: make(map[int]time.Duration),
		events:    make(map[pairKey]struct{}),
		falseMsg:  make(map[int]struct{}),
	}
}

// MessageCreated records a generated message and whether any consumer
// subscribes to its key (making it deliverable).
func (c *Collector) MessageCreated(deliverable bool) {
	c.created++
	if deliverable {
		c.deliverable++
	}
}

// GenuineDelivery records a delivery to an interested consumer. The
// earliest genuine delivery of each message defines its delay; each
// distinct (message, consumer) pair counts as one delivery event for the
// overhead metric. Keeping the minimum delay (rather than the first
// recorded one) makes the operation order-independent, so shard-local
// collectors fed out of global time order still merge to the exact
// sequential answer.
func (c *Collector) GenuineDelivery(msgID, consumer int, delay time.Duration) {
	c.events[pairKey{msg: msgID, node: consumer}] = struct{}{}
	if cur, ok := c.delivered[msgID]; ok && cur <= delay {
		return
	}
	c.delivered[msgID] = delay
}

// FalseDelivery records a delivery to a consumer that was not interested
// in the message — the cost of a Bloom-filter false positive. A message is
// counted falsely delivered at most once.
func (c *Collector) FalseDelivery(msgID int) {
	c.falseMsg[msgID] = struct{}{}
}

// Forwarding records one message copy moving between two nodes.
func (c *Collector) Forwarding() { c.forwardings++ }

// Replication records a producer-to-broker copy, flagging whether the
// relay-filter match that triggered it was a false positive (the broker
// relays no genuine interest in the message — ground truth the simulator
// keeps outside the filters). These are Section VI-B's falsely injected
// messages.
func (c *Collector) Replication(falsePositive bool) {
	c.replications++
	if falsePositive {
		c.falseInjections++
	}
}

// ControlBytes records protocol control traffic (filters, identities).
func (c *Collector) ControlBytes(n int) { c.controlBytes += int64(n) }

// DataBytes records message payload traffic.
func (c *Collector) DataBytes(n int) { c.dataBytes += int64(n) }

// LateDrop records a delivery attempt after the message's TTL, which the
// simulator refuses.
func (c *Collector) LateDrop() { c.lateDrops++ }

// Contact records one executed contact session; the scale sweep divides
// the total by wall time for its contacts-per-second throughput figure.
func (c *Collector) Contact() { c.contacts++ }

// Merge folds other into c. Every constituent is merged exactly — counters
// sum, delivery-event and false-delivery sets union, per-message delays
// take the minimum — so merging shard-local collectors in any order yields
// the same totals as one sequential collector observing every event
// (Merge is commutative and associative over disjoint or overlapping event
// sets). other is left unchanged.
func (c *Collector) Merge(other *Collector) {
	c.created += other.created
	c.deliverable += other.deliverable
	c.forwardings += other.forwardings
	c.replications += other.replications
	c.falseInjections += other.falseInjections
	c.controlBytes += other.controlBytes
	c.dataBytes += other.dataBytes
	c.lateDrops += other.lateDrops
	c.contacts += other.contacts
	for id, d := range other.delivered {
		if cur, ok := c.delivered[id]; !ok || d < cur {
			c.delivered[id] = d
		}
	}
	for k := range other.events {
		c.events[k] = struct{}{}
	}
	for id := range other.falseMsg {
		c.falseMsg[id] = struct{}{}
	}
}

// Report freezes the collector into an immutable summary.
func (c *Collector) Report() Report {
	var total time.Duration
	delays := make([]time.Duration, 0, len(c.delivered))
	for _, d := range c.delivered {
		total += d
		delays = append(delays, d)
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	return Report{
		Protocol:        c.protocol,
		Created:         c.created,
		Deliverable:     c.deliverable,
		Delivered:       len(c.delivered),
		DeliveryEvents:  len(c.events),
		FalseDeliveries: len(c.falseMsg),
		Forwardings:     c.forwardings,
		Replications:    c.replications,
		FalseInjections: c.falseInjections,
		ControlBytes:    c.controlBytes,
		DataBytes:       c.dataBytes,
		LateDrops:       c.lateDrops,
		Contacts:        c.contacts,
		totalDelay:      total,
		sortedDelays:    delays,
	}
}

// Report is an immutable metrics summary.
type Report struct {
	Protocol        string
	Created         int
	Deliverable     int
	Delivered       int
	DeliveryEvents  int
	FalseDeliveries int
	Forwardings     int
	Replications    int
	FalseInjections int
	ControlBytes    int64
	DataBytes       int64
	LateDrops       int
	Contacts        int
	totalDelay      time.Duration
	sortedDelays    []time.Duration
}

// DeliveryRatio returns delivered / deliverable messages, in [0, 1].
func (r Report) DeliveryRatio() float64 {
	if r.Deliverable == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Deliverable)
}

// MeanDelay returns the mean first-delivery delay of delivered messages.
func (r Report) MeanDelay() time.Duration {
	if r.Delivered == 0 {
		return 0
	}
	return r.totalDelay / time.Duration(r.Delivered)
}

// DelayPercentile returns the p-quantile (p in [0,1]) of first-delivery
// delays; zero when nothing was delivered. The mean alone hides the tail
// that store-carry-forward networks are famous for.
func (r Report) DelayPercentile(p float64) time.Duration {
	if len(r.sortedDelays) == 0 {
		return 0
	}
	if p <= 0 {
		return r.sortedDelays[0]
	}
	if p >= 1 {
		return r.sortedDelays[len(r.sortedDelays)-1]
	}
	idx := int(p * float64(len(r.sortedDelays)))
	if idx >= len(r.sortedDelays) {
		idx = len(r.sortedDelays) - 1
	}
	return r.sortedDelays[idx]
}

// ForwardingsPerDelivered returns total forwardings divided by delivery
// events (Fig. 7(c)/8(c)): "dividing the number of forwardings in the
// network by the number of messages that have been delivered". Counting
// each delivered message instance makes PULL's overhead exactly 1, as the
// paper reports.
func (r Report) ForwardingsPerDelivered() float64 {
	if r.DeliveryEvents == 0 {
		return 0
	}
	return float64(r.Forwardings) / float64(r.DeliveryEvents)
}

// InjectionFPR returns falsely injected / all producer-to-broker
// replications: the empirical counterpart of the Eq. 1 relay-filter
// false-positive rate (Section VI-B).
func (r Report) InjectionFPR() float64 {
	if r.Replications == 0 {
		return 0
	}
	return float64(r.FalseInjections) / float64(r.Replications)
}

// FPR returns falsely delivered / all delivered messages (Fig. 9(d)).
func (r Report) FPR() float64 {
	total := r.Delivered + r.FalseDeliveries
	if total == 0 {
		return 0
	}
	return float64(r.FalseDeliveries) / float64(total)
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%s: delivery=%.3f delay=%s fwd/delivered=%.2f fpr=%.4f (delivered %d/%d, false %d, fwd %d)",
		r.Protocol, r.DeliveryRatio(), r.MeanDelay().Round(time.Second),
		r.ForwardingsPerDelivered(), r.FPR(),
		r.Delivered, r.Deliverable, r.FalseDeliveries, r.Forwardings)
}
