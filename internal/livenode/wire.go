// Package livenode is the prototype HUNET system the paper leaves as
// future work ("A prototype HUNET system will be our future work"): a
// live, wire-level implementation of a B-SUB node that runs the protocol
// over real TCP connections instead of inside the simulator.
//
// Each process owns one node. When two devices come into contact (the
// caller dials Meet), the pair runs one half-duplex contact session that
// mirrors Section V:
//
//	HELLO exchange          identity, role, degree
//	election step           PROMOTE / DEMOTE per the Section V-B rules
//	genuine filter          consumer -> broker interest propagation, one
//	                        direction derived from the election outcome
//	relay filters           broker<->broker, preferential forwarding,
//	                        then M-merge
//	interest BF + messages  direct and broker-mediated delivery
//
// All filters travel in the Section VI-C compact encoding (package tcbf's
// wire format); messages are length-prefixed binary frames.
//
// All protocol decisions come from the transport-agnostic engine package
// (internal/engine): a session drives an engine.Session step by step and
// ships the resulting byte encodings as frames. This package owns only
// framing, deadlines, acknowledgements, and concurrency.
//
// # Concurrency
//
// A node runs sessions with distinct peers in parallel, bounded by
// Config.MaxSessions. All protocol state lives in a single engine.Node
// guarded by one mutex, which a session takes only around individual
// engine calls, never across network I/O: the engine snapshots filters
// at the start of each phase and merges after the exchange
// (snapshot–exchange–commit), and message copies are claimed through the
// engine immediately before they travel, so two sessions can never spend
// the same copy.
//
// A node at capacity answers an inbound contact with a single BUSY frame
// instead of slamming the connection; the dialer's Meet sees ErrPeerBusy
// and retries with exponential backoff, up to Config.MeetAttempts times.
// Every contact attempt — completed, failed, refused — is recorded as a
// SessionStats record (see Config.OnSession) and aggregated into the
// counters returned by Node.Stats.
//
// # Failure model
//
// Human contacts end without warning, so a session must be safe to sever
// at any byte. Every frame carries a CRC32 trailer in its header; a flaky
// link surfaces as ErrCorruptFrame instead of decoder garbage. Each frame
// read and write is bounded by its own deadline (Config.SessionTimeout),
// so a stalled peer is detected within one timeout however long the
// healthy transfer runs. Message hand-off is acknowledged: a copy claimed
// from a store is spent only when the receiver's frameMsgAck arrives, and
// a claim whose ACK never comes is refunded when the session aborts —
// copy counts are conserved across severed contacts, and the receiver
// dedups by message ID, so a lost ACK can never double-deliver.
package livenode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"bsub/internal/workload"
)

// Frame types of the contact-session protocol.
const (
	frameHello byte = iota + 1
	frameElection
	frameGenuine
	frameRelay
	frameInterestBF
	frameMessage
	frameEndMessages
	frameBye
	// frameBusy is a responder's whole answer when it is at MaxSessions
	// capacity: sent instead of the HELLO reply, then the connection
	// closes. The dialer maps it to ErrPeerBusy and may retry.
	frameBusy
	// frameMsgAck acknowledges one frameMessage by message ID. The sender
	// of a claimed copy treats the copy as spent only once the ACK
	// arrives; until then an aborted session refunds the claim.
	frameMsgAck
	// frameGossip is a membership datagram riding outside contact
	// sessions: a dialer opens a connection, sends one gossip frame, and
	// reads one gossip frame back. The payload is opaque to this package
	// (the mesh layer's membership codec); the responder answers through
	// Config.GossipHandler without taking a session slot, so heartbeats
	// keep flowing while every contact slot is busy.
	frameGossip
)

// protoVersion is the contact-protocol version announced in the HELLO.
// v2 added the CRC32 frame trailer and per-message ACKs; v3 is the
// engine-driven protocol — the genuine filter travels in one direction
// only (consumer -> broker, derived from the election outcome) and relay
// filters use the partitioned encoding. Mismatched peers must fail fast
// instead of trading garbage frames.
const protoVersion = 3

// maxFrameBytes bounds a frame body; filters are tens of bytes and
// messages are capped at 140 B payloads, so 64 KiB is generous.
const maxFrameBytes = 64 * 1024

// frameHeaderLen is the wire size of a frame header:
// type (1) + body length (4) + CRC32 of type, length, and body (4).
const frameHeaderLen = 9

// ieeeTable is the CRC32 table shared by frame writers and readers.
var ieeeTable = crc32.MakeTable(crc32.IEEE)

var (
	// ErrFrameTooLarge is returned when a peer announces an oversized frame.
	ErrFrameTooLarge = errors.New("livenode: frame exceeds size limit")
	// ErrProtocol is returned on any wire-protocol violation.
	ErrProtocol = errors.New("livenode: protocol violation")
	// ErrCorruptFrame is returned when a frame fails its CRC32 check — a
	// flaky link flipped bits in flight.
	ErrCorruptFrame = errors.New("livenode: frame failed CRC check")
	// ErrVersionMismatch is returned when the peer's HELLO announces a
	// different contact-protocol version.
	ErrVersionMismatch = errors.New("livenode: peer speaks a different protocol version")
)

// frameCRC computes the header's CRC32 over the type byte, the length
// field, and the body.
func frameCRC(hdr []byte, body []byte) uint32 {
	sum := crc32.Update(0, ieeeTable, hdr[:5])
	return crc32.Update(sum, ieeeTable, body)
}

// writeFrame sends one type-tagged, length-prefixed, CRC-trailed frame.
// Header and body are coalesced into a single Write so a fault or a
// concurrent close between syscalls can never emit a bare header, and a
// frame costs one syscall instead of two.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	if len(body) > maxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	buf := make([]byte, frameHeaderLen+len(body))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:], uint32(len(body)))
	copy(buf[frameHeaderLen:], body)
	binary.BigEndian.PutUint32(buf[5:], frameCRC(buf[:5], buf[frameHeaderLen:]))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("livenode: write frame: %w", err)
	}
	return nil
}

// readFrame receives one frame and verifies its CRC.
func readFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("livenode: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("livenode: read frame body: %w", err)
	}
	if want := binary.BigEndian.Uint32(hdr[5:]); frameCRC(hdr[:5], body) != want {
		return 0, nil, fmt.Errorf("%w: frame type %d, %d-byte body", ErrCorruptFrame, hdr[0], n)
	}
	return hdr[0], body, nil
}

// expectFrame reads a frame and verifies its type.
func expectFrame(r io.Reader, want byte) ([]byte, error) {
	typ, body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("%w: got frame %d, want %d", ErrProtocol, typ, want)
	}
	return body, nil
}

// hello is the identity handshake payload.
type hello struct {
	ID     uint32
	Broker bool
	Degree uint16
}

func (h hello) encode() []byte {
	out := make([]byte, 8)
	out[0] = protoVersion
	binary.BigEndian.PutUint32(out[1:], h.ID)
	if h.Broker {
		out[5] = 1
	}
	binary.BigEndian.PutUint16(out[6:], h.Degree)
	return out
}

func decodeHello(body []byte) (hello, error) {
	if len(body) != 8 {
		return hello{}, fmt.Errorf("%w: hello is %d bytes", ErrProtocol, len(body))
	}
	if body[0] != protoVersion {
		return hello{}, fmt.Errorf("%w: peer speaks v%d, this node v%d",
			ErrVersionMismatch, body[0], protoVersion)
	}
	if body[5] > 1 {
		return hello{}, fmt.Errorf("%w: hello broker byte %d", ErrProtocol, body[5])
	}
	return hello{
		ID:     binary.BigEndian.Uint32(body[1:]),
		Broker: body[5] == 1,
		Degree: binary.BigEndian.Uint16(body[6:]),
	}, nil
}

// encodeAck serializes a frameMsgAck body: the acknowledged message ID.
func encodeAck(id int) []byte {
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], uint64(id))
	return out[:]
}

// decodeAck parses a frameMsgAck body.
func decodeAck(body []byte) (int, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("%w: ack is %d bytes", ErrProtocol, len(body))
	}
	return int(binary.BigEndian.Uint64(body)), nil
}

// encodeMessage serializes a message with its payload for the wire.
func encodeMessage(m workload.Message, payload []byte) ([]byte, error) {
	keys := m.MatchKeys()
	if len(keys) > 255 {
		return nil, fmt.Errorf("%w: %d keys", ErrProtocol, len(keys))
	}
	out := make([]byte, 0, 32+len(payload))
	out = binary.BigEndian.AppendUint64(out, uint64(m.ID))
	out = binary.BigEndian.AppendUint32(out, uint32(m.Origin))
	out = binary.BigEndian.AppendUint64(out, uint64(m.CreatedAt))
	out = append(out, byte(len(keys)))
	for _, k := range keys {
		if len(k) > 255 {
			return nil, fmt.Errorf("%w: key of %d bytes", ErrProtocol, len(k))
		}
		out = append(out, byte(len(k)))
		out = append(out, k...)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return out, nil
}

// decodeMessage parses a wire message.
func decodeMessage(body []byte) (workload.Message, []byte, error) {
	var m workload.Message
	if len(body) < 21 {
		return m, nil, fmt.Errorf("%w: short message frame", ErrProtocol)
	}
	m.ID = int(binary.BigEndian.Uint64(body))
	m.Origin = int(binary.BigEndian.Uint32(body[8:]))
	m.CreatedAt = time.Duration(binary.BigEndian.Uint64(body[12:]))
	nKeys := int(body[20])
	if nKeys == 0 {
		return m, nil, fmt.Errorf("%w: message without keys", ErrProtocol)
	}
	rest := body[21:]
	keys := make([]workload.Key, 0, nKeys)
	for i := 0; i < nKeys; i++ {
		if len(rest) < 1 {
			return m, nil, fmt.Errorf("%w: truncated key table", ErrProtocol)
		}
		kl := int(rest[0])
		rest = rest[1:]
		if len(rest) < kl {
			return m, nil, fmt.Errorf("%w: truncated key", ErrProtocol)
		}
		keys = append(keys, workload.Key(rest[:kl]))
		rest = rest[kl:]
	}
	if len(rest) < 4 {
		return m, nil, fmt.Errorf("%w: missing payload length", ErrProtocol)
	}
	pl := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) != pl {
		return m, nil, fmt.Errorf("%w: payload length mismatch", ErrProtocol)
	}
	m.Key = keys[0]
	if len(keys) > 1 {
		m.Extra = keys[1:]
	}
	m.Size = pl
	payload := make([]byte, pl)
	copy(payload, rest)
	return m, payload, nil
}
