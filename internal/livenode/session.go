package livenode

import (
	"fmt"
	"io"
	"time"

	"bsub/internal/core"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// runSession executes one contact session over conn. The caller holds
// n.mu for the whole session; initiator selects which side of the
// half-duplex lockstep this node plays. Phases mirror Section V:
//
//  0. HELLO exchange (identity, role, degree)
//  1. election (PROMOTE/DEMOTE per the Section V-B rules)
//  2. genuine filters (consumer -> broker interest propagation)
//  3. relay filters + preferential forwarding (broker <-> broker)
//  4. interest-BF pulls (direct delivery + producer->broker replication)
//  5. BYE
func (n *Node) runSession(conn io.ReadWriter, initiator bool) error {
	now := n.cfg.Clock()
	n.purgeLocked(now)

	// Phase 0: HELLO.
	self := hello{ID: n.cfg.ID, Broker: n.broker, Degree: uint16(min(n.degreeLocked(now), 1<<16-1))}
	var peer hello
	err := n.lockstep(conn, initiator,
		func() error { return writeFrame(conn, frameHello, self.encode()) },
		func() error {
			body, err := expectFrame(conn, frameHello)
			if err != nil {
				return err
			}
			peer, err = decodeHello(body)
			return err
		})
	if err != nil {
		return err
	}
	if peer.ID == n.cfg.ID {
		return fmt.Errorf("%w: peer claims our ID %d", ErrProtocol, peer.ID)
	}
	n.meetings[peer.ID] = now

	// Phase 1: election. Each side announces one action for the peer.
	myAction := n.electLocked(peer, now)
	var peerAction byte
	err = n.lockstep(conn, initiator,
		func() error { return writeFrame(conn, frameElection, []byte{myAction}) },
		func() error {
			body, err := expectFrame(conn, frameElection)
			if err != nil {
				return err
			}
			if len(body) != 1 || body[0] > electDemote {
				return fmt.Errorf("%w: bad election frame", ErrProtocol)
			}
			peerAction = body[0]
			return nil
		})
	if err != nil {
		return err
	}
	switch peerAction {
	case electPromote:
		n.becomeBroker(now)
	case electDemote:
		n.becomeUser()
	}
	peerBroker := peer.Broker
	switch myAction {
	case electPromote:
		peerBroker = true
		n.sightings[peer.ID] = brokerSighting{at: now, degree: int(peer.Degree)}
	case electDemote:
		peerBroker = false
		delete(n.sightings, peer.ID)
	}

	// Phase 2: genuine filters.
	genuine, err := n.genuineFilterLocked(now)
	if err != nil {
		return err
	}
	gBytes, err := genuine.Encode(tcbf.CountersUniform)
	if err != nil {
		return err
	}
	err = n.lockstep(conn, initiator,
		func() error { return writeFrame(conn, frameGenuine, gBytes) },
		func() error {
			body, err := expectFrame(conn, frameGenuine)
			if err != nil {
				return err
			}
			peerGenuine, err := tcbf.Decode(body, n.filterCfg, now)
			if err != nil {
				return err
			}
			if n.broker && n.relay != nil {
				return n.relay.AMerge(peerGenuine, now)
			}
			return nil
		})
	if err != nil {
		return err
	}

	// Phase 3: relay exchange between brokers.
	if n.broker && peerBroker && n.relay != nil {
		if err := n.relayPhase(conn, initiator, now); err != nil {
			return err
		}
	}

	// Phase 4: interest pulls, initiator first.
	first, second := initiator, !initiator
	for _, phase := range []struct {
		asker bool // does this node ask (vs answer)?
	}{{first}, {second}} {
		if phase.asker {
			if err := n.askDelivery(conn, peer.ID, now); err != nil {
				return err
			}
			if n.broker && n.relay != nil {
				if err := n.askReplication(conn, now); err != nil {
					return err
				}
			}
		} else {
			if err := n.answerDelivery(conn, peer.ID, now); err != nil {
				return err
			}
			if peerBroker {
				if err := n.answerReplication(conn, now); err != nil {
					return err
				}
			}
		}
	}

	// Phase 5: BYE.
	return n.lockstep(conn, initiator,
		func() error { return writeFrame(conn, frameBye, nil) },
		func() error {
			_, err := expectFrame(conn, frameBye)
			return err
		})
}

// lockstep runs send/recv in initiator-first order.
func (n *Node) lockstep(_ io.ReadWriter, initiator bool, send, recv func() error) error {
	if initiator {
		if err := send(); err != nil {
			return err
		}
		return recv()
	}
	if err := recv(); err != nil {
		return err
	}
	return send()
}

// Election actions.
const (
	electNone byte = iota
	electPromote
	electDemote
)

// electLocked runs the Section V-B allocation step against the peer and
// returns the action to announce. Brokers themselves do not perform it.
func (n *Node) electLocked(peer hello, now time.Duration) byte {
	if n.broker {
		return electNone
	}
	if peer.Broker {
		n.sightings[peer.ID] = brokerSighting{at: now, degree: int(peer.Degree)}
	}
	count, meanDegree := n.brokersInWindowLocked(now)
	switch {
	case count < n.cfg.Protocol.BrokerLow && !peer.Broker:
		return electPromote
	case count > n.cfg.Protocol.BrokerHigh && peer.Broker &&
		float64(peer.Degree) < meanDegree:
		delete(n.sightings, peer.ID)
		return electDemote
	}
	return electNone
}

// relayPhase exchanges relay filters, runs preferential forwarding both
// ways, then merges (M-merge by default).
func (n *Node) relayPhase(conn io.ReadWriter, initiator bool, now time.Duration) error {
	if err := n.relay.Advance(now); err != nil {
		return err
	}
	rBytes, err := n.relay.Encode(tcbf.CountersFull)
	if err != nil {
		return err
	}
	var peerRelay *tcbf.Filter
	err = n.lockstep(conn, initiator,
		func() error { return writeFrame(conn, frameRelay, rBytes) },
		func() error {
			body, err := expectFrame(conn, frameRelay)
			if err != nil {
				return err
			}
			peerRelay, err = tcbf.Decode(body, n.filterCfg, now)
			return err
		})
	if err != nil {
		return err
	}

	// Forwarding decisions use the pre-merge filters; initiator sends its
	// candidates first.
	sendCands := func() error {
		for id, s := range n.carried {
			best := 0.0
			for _, k := range s.msg.MatchKeys() {
				pref, err := tcbf.Preference(k, peerRelay, n.relay, now)
				if err != nil {
					return err
				}
				if pref > best {
					best = pref
				}
			}
			if best <= 0 {
				continue
			}
			body, err := encodeMessage(s.msg, s.payload)
			if err != nil {
				return err
			}
			if err := writeFrame(conn, frameMessage, body); err != nil {
				return err
			}
			delete(n.carried, id)
		}
		return writeFrame(conn, frameEndMessages, nil)
	}
	recvCands := func() error {
		for {
			typ, body, err := readFrame(conn)
			if err != nil {
				return err
			}
			if typ == frameEndMessages {
				return nil
			}
			if typ != frameMessage {
				return fmt.Errorf("%w: frame %d during relay forwarding", ErrProtocol, typ)
			}
			msg, payload, err := decodeMessage(body)
			if err != nil {
				return err
			}
			n.acceptCarried(msg, payload, now)
		}
	}
	if err := n.lockstep(conn, initiator, sendCands, recvCands); err != nil {
		return err
	}

	if n.cfg.Protocol.BrokerMerge == core.BrokerMergeAdditive {
		return n.relay.AMerge(peerRelay, now)
	}
	return n.relay.MMerge(peerRelay, now)
}

// acceptCarried stores a relayed copy (and claims it if we want it).
func (n *Node) acceptCarried(msg workload.Message, payload []byte, now time.Duration) {
	if now > msg.CreatedAt+n.cfg.TTL {
		return
	}
	if n.wantsLocked(&msg) {
		n.deliverLocked(msg, payload, false)
	}
	if _, dup := n.carried[msg.ID]; dup {
		return
	}
	n.carried[msg.ID] = &storedMessage{
		msg:       msg,
		payload:   payload,
		expiresAt: msg.CreatedAt + n.cfg.TTL,
	}
}

// Interest-BF purposes.
const (
	pullDelivery byte = iota + 1
	pullReplication
)

// askDelivery requests messages matching our interests and ingests the
// response.
func (n *Node) askDelivery(conn io.ReadWriter, peerID uint32, now time.Duration) error {
	genuine, err := n.genuineFilterLocked(now)
	if err != nil {
		return err
	}
	fBytes, err := genuine.Encode(tcbf.CountersNone)
	if err != nil {
		return err
	}
	if err := writeFrame(conn, frameInterestBF, append([]byte{pullDelivery}, fBytes...)); err != nil {
		return err
	}
	for {
		typ, body, err := readFrame(conn)
		if err != nil {
			return err
		}
		if typ == frameEndMessages {
			return nil
		}
		if typ != frameMessage {
			return fmt.Errorf("%w: frame %d during delivery pull", ErrProtocol, typ)
		}
		msg, payload, err := decodeMessage(body)
		if err != nil {
			return err
		}
		if now > msg.CreatedAt+n.cfg.TTL {
			continue
		}
		// The match was probabilistic (Bloom filter); deliver only if we
		// really want it — a mismatch is a false-positive transfer.
		if n.wantsLocked(&msg) {
			n.deliverLocked(msg, payload, msg.Origin == int(peerID))
		}
	}
}

// answerDelivery serves the peer's delivery request from our produced
// messages (direct) and carried copies (broker-mediated; removed after
// forwarding, per Section V-D).
func (n *Node) answerDelivery(conn io.ReadWriter, peerID uint32, now time.Duration) error {
	filter, err := n.readInterestBF(conn, pullDelivery, now)
	if err != nil {
		return err
	}
	bf := filter.ToBloom()
	for _, s := range n.produced {
		if now > s.expiresAt || s.sentTo(peerID) {
			continue
		}
		if !anyWireKeyIn(&s.msg, bf.Contains) {
			continue
		}
		body, err := encodeMessage(s.msg, s.payload)
		if err != nil {
			return err
		}
		if err := writeFrame(conn, frameMessage, body); err != nil {
			return err
		}
		s.markSent(peerID)
	}
	for id, s := range n.carried {
		if now > s.expiresAt {
			continue
		}
		if !anyWireKeyIn(&s.msg, bf.Contains) {
			continue
		}
		body, err := encodeMessage(s.msg, s.payload)
		if err != nil {
			return err
		}
		if err := writeFrame(conn, frameMessage, body); err != nil {
			return err
		}
		delete(n.carried, id)
	}
	return writeFrame(conn, frameEndMessages, nil)
}

// askReplication advertises our relay filter and stores the returned
// copies.
func (n *Node) askReplication(conn io.ReadWriter, now time.Duration) error {
	if err := n.relay.Advance(now); err != nil {
		return err
	}
	fBytes, err := n.relay.Encode(tcbf.CountersNone)
	if err != nil {
		return err
	}
	if err := writeFrame(conn, frameInterestBF, append([]byte{pullReplication}, fBytes...)); err != nil {
		return err
	}
	for {
		typ, body, err := readFrame(conn)
		if err != nil {
			return err
		}
		if typ == frameEndMessages {
			return nil
		}
		if typ != frameMessage {
			return fmt.Errorf("%w: frame %d during replication pull", ErrProtocol, typ)
		}
		msg, payload, err := decodeMessage(body)
		if err != nil {
			return err
		}
		n.acceptCarried(msg, payload, now)
	}
}

// answerReplication replicates matching produced messages to the broker,
// bounded by the copy limit; a message leaves our memory when its copies
// are exhausted.
func (n *Node) answerReplication(conn io.ReadWriter, now time.Duration) error {
	filter, err := n.readInterestBF(conn, pullReplication, now)
	if err != nil {
		return err
	}
	bf := filter.ToBloom()
	for id, s := range n.produced {
		if now > s.expiresAt || s.copies == 0 {
			continue
		}
		if !anyWireKeyIn(&s.msg, bf.Contains) {
			continue
		}
		body, err := encodeMessage(s.msg, s.payload)
		if err != nil {
			return err
		}
		if err := writeFrame(conn, frameMessage, body); err != nil {
			return err
		}
		s.copies--
		if s.copies == 0 {
			delete(n.produced, id)
		}
	}
	return writeFrame(conn, frameEndMessages, nil)
}

// readInterestBF reads and validates an interest-BF frame of the expected
// purpose.
func (n *Node) readInterestBF(conn io.Reader, purpose byte, now time.Duration) (*tcbf.Filter, error) {
	body, err := expectFrame(conn, frameInterestBF)
	if err != nil {
		return nil, err
	}
	if len(body) < 1 || body[0] != purpose {
		return nil, fmt.Errorf("%w: interest BF purpose mismatch", ErrProtocol)
	}
	return tcbf.Decode(body[1:], n.filterCfg, now)
}

func anyWireKeyIn(m *workload.Message, contains func(string) bool) bool {
	for _, k := range m.MatchKeys() {
		if contains(k) {
			return true
		}
	}
	return false
}

func (s *storedMessage) sentTo(peer uint32) bool {
	_, ok := s.sent[peer]
	return ok
}

func (s *storedMessage) markSent(peer uint32) {
	if s.sent == nil {
		s.sent = make(map[uint32]struct{})
	}
	s.sent[peer] = struct{}{}
}
