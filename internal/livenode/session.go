package livenode

import (
	"fmt"
	"io"
	"time"

	"bsub/internal/core"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// session is one contact session in flight. Sessions with distinct peers
// run concurrently: each holds one slot of the node's MaxSessions
// semaphore and touches the node's locked state regions only briefly,
// never across network I/O. Role decisions (broker or not) are pinned
// per-session at HELLO/election time so the wire protocol stays in
// lockstep even if a concurrent session changes the node's role
// mid-flight.
type session struct {
	n         *Node
	conn      io.ReadWriter
	initiator bool
	stats     SessionStats

	// timeout bounds each single frame read or write; the deadline is
	// re-armed per frame (see readFrame/writeFrame), so a healthy long
	// transfer is never cut while a stalled peer is caught within one
	// timeout.
	timeout time.Duration
	// dl arms those per-frame deadlines when the transport supports them
	// (TCP connections and net.Pipe do); nil otherwise.
	dl deadlineConn

	// selfBroker is this session's view of our role: the role announced
	// in HELLO, updated only by this session's own election result.
	selfBroker bool
	// relay is the broker relay filter pinned for this session. It is
	// usually the node's shared filter (all operations on it take
	// n.roleMu); when a concurrent session demoted us mid-flight it is
	// a throwaway replacement kept only to preserve protocol lockstep.
	relay *tcbf.Filter
}

// deadlineConn is the subset of net.Conn the session uses to arm
// per-frame I/O deadlines.
type deadlineConn interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// writeFrame sends one frame under a fresh write deadline and accounts it.
func (s *session) writeFrame(typ byte, body []byte) error {
	if s.dl != nil {
		_ = s.dl.SetWriteDeadline(time.Now().Add(s.timeout))
	}
	if err := writeFrame(s.conn, typ, body); err != nil {
		return err
	}
	s.stats.FramesOut++
	s.stats.BytesOut += int64(frameHeaderLen + len(body))
	return nil
}

// readFrame receives one frame under a fresh read deadline and accounts it.
func (s *session) readFrame() (byte, []byte, error) {
	if s.dl != nil {
		_ = s.dl.SetReadDeadline(time.Now().Add(s.timeout))
	}
	typ, body, err := readFrame(s.conn)
	if err != nil {
		return typ, body, err
	}
	s.stats.FramesIn++
	s.stats.BytesIn += int64(frameHeaderLen + len(body))
	return typ, body, nil
}

// expectFrame reads a frame and verifies its type.
func (s *session) expectFrame(want byte) ([]byte, error) {
	typ, body, err := s.readFrame()
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("%w: got frame %d, want %d", ErrProtocol, typ, want)
	}
	return body, nil
}

// sendClaimed writes a claimed message frame and waits for the peer's
// ACK. The claim is spent only when the ACK arrives; on any failure —
// torn write, severed link, missing ACK — undo refunds the claim to its
// store and the error aborts the session. The receiver dedups by message
// ID, so a copy resent after a lost ACK can never double-deliver.
func (s *session) sendClaimed(id int, body []byte, undo func()) error {
	err := s.writeFrame(frameMessage, body)
	if err == nil {
		err = s.awaitAck(id)
	}
	if err != nil {
		undo()
		s.stats.MsgsRefunded++
		return err
	}
	return nil
}

// awaitAck blocks for the frameMsgAck of message id.
func (s *session) awaitAck(id int) error {
	body, err := s.expectFrame(frameMsgAck)
	if err != nil {
		return err
	}
	got, err := decodeAck(body)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("%w: ack for message %d, want %d", ErrProtocol, got, id)
	}
	return nil
}

// writeAck acknowledges a received message after it has been processed
// (delivered and/or stored), committing the sender's claim.
func (s *session) writeAck(id int) error {
	return s.writeFrame(frameMsgAck, encodeAck(id))
}

// lockstep runs send/recv in initiator-first order.
func (s *session) lockstep(send, recv func() error) error {
	if s.initiator {
		if err := send(); err != nil {
			return err
		}
		return recv()
	}
	if err := recv(); err != nil {
		return err
	}
	return send()
}

// run executes one contact session over s.conn. Phases mirror Section V:
//
//	0. HELLO exchange (identity, role, degree)
//	1. election (PROMOTE/DEMOTE per the Section V-B rules)
//	2. genuine filters (consumer -> broker interest propagation)
//	3. relay filters + preferential forwarding (broker <-> broker)
//	4. interest-BF pulls (direct delivery + producer->broker replication)
//	5. BYE
func (s *session) run(now time.Duration) error {
	n := s.n
	n.purge(now)

	// Phase 0: HELLO. The role and degree we announce are snapshotted
	// here and pinned for the session.
	n.roleMu.Lock()
	self := hello{ID: n.cfg.ID, Broker: n.broker, Degree: uint16(min(n.degreeLocked(now), 1<<16-1))}
	n.roleMu.Unlock()
	s.selfBroker = self.Broker
	var peer hello
	err := s.lockstep(
		func() error { return s.writeFrame(frameHello, self.encode()) },
		func() error {
			typ, body, err := s.readFrame()
			if err != nil {
				return err
			}
			if typ == frameBusy {
				return ErrPeerBusy
			}
			if typ != frameHello {
				return fmt.Errorf("%w: got frame %d, want %d", ErrProtocol, typ, frameHello)
			}
			peer, err = decodeHello(body)
			return err
		})
	if err != nil {
		return err
	}
	if peer.ID == n.cfg.ID {
		return fmt.Errorf("%w: peer claims our ID %d", ErrProtocol, peer.ID)
	}
	s.stats.Peer = peer.ID
	s.stats.Phase = PhaseHello
	n.roleMu.Lock()
	n.meetings[peer.ID] = now
	n.roleMu.Unlock()

	// Phase 1: election. Each side announces one action for the peer.
	n.roleMu.Lock()
	myAction := n.electLocked(peer, s.selfBroker, now)
	n.roleMu.Unlock()
	var peerAction byte
	err = s.lockstep(
		func() error { return s.writeFrame(frameElection, []byte{myAction}) },
		func() error {
			body, err := s.expectFrame(frameElection)
			if err != nil {
				return err
			}
			if len(body) != 1 || body[0] > electDemote {
				return fmt.Errorf("%w: bad election frame", ErrProtocol)
			}
			peerAction = body[0]
			return nil
		})
	if err != nil {
		return err
	}
	peerBroker := peer.Broker
	n.roleMu.Lock()
	switch peerAction {
	case electPromote:
		n.becomeBrokerLocked(now)
		s.selfBroker = true
	case electDemote:
		n.becomeUserLocked()
		s.selfBroker = false
	}
	switch myAction {
	case electPromote:
		peerBroker = true
		n.sightings[peer.ID] = brokerSighting{at: now, degree: int(peer.Degree)}
	case electDemote:
		peerBroker = false
		delete(n.sightings, peer.ID)
	}
	if s.selfBroker {
		s.relay = n.relay
		if s.relay == nil {
			// A concurrent session demoted us between HELLO and here.
			// The peer still expects the broker side of the protocol, so
			// speak it against a throwaway filter; its merges are
			// discarded with it.
			s.relay = tcbf.MustNew(n.filterCfg, now)
		}
	}
	n.roleMu.Unlock()
	s.stats.Phase = PhaseElection

	// Phase 2: genuine filters.
	genuine, err := n.genuineFilter(now)
	if err != nil {
		return err
	}
	gBytes, err := genuine.Encode(tcbf.CountersUniform)
	if err != nil {
		return err
	}
	err = s.lockstep(
		func() error { return s.writeFrame(frameGenuine, gBytes) },
		func() error {
			body, err := s.expectFrame(frameGenuine)
			if err != nil {
				return err
			}
			peerGenuine, err := tcbf.Decode(body, n.filterCfg, now)
			if err != nil {
				return err
			}
			if s.selfBroker {
				n.roleMu.Lock()
				defer n.roleMu.Unlock()
				return s.relay.AMerge(peerGenuine, now)
			}
			return nil
		})
	if err != nil {
		return err
	}
	s.stats.Phase = PhaseGenuine

	// Phase 3: relay exchange between brokers.
	if s.selfBroker && peerBroker {
		if err := s.relayPhase(now); err != nil {
			return err
		}
		s.stats.Phase = PhaseRelay
	}

	// Phase 4: interest pulls, initiator first.
	for _, asker := range []bool{s.initiator, !s.initiator} {
		if asker {
			if err := s.askDelivery(peer.ID, now); err != nil {
				return err
			}
			if s.selfBroker {
				if err := s.askReplication(now); err != nil {
					return err
				}
			}
		} else {
			if err := s.answerDelivery(peer.ID, now); err != nil {
				return err
			}
			if peerBroker {
				if err := s.answerReplication(now); err != nil {
					return err
				}
			}
		}
	}
	s.stats.Phase = PhasePull

	// Phase 5: BYE.
	return s.lockstep(
		func() error { return s.writeFrame(frameBye, nil) },
		func() error {
			_, err := s.expectFrame(frameBye)
			return err
		})
}

// Election actions.
const (
	electNone byte = iota
	electPromote
	electDemote
)

// electLocked runs the Section V-B allocation step against the peer and
// returns the action to announce. Brokers themselves do not perform it.
// roleMu held; selfBroker is the session's pinned view of our role.
func (n *Node) electLocked(peer hello, selfBroker bool, now time.Duration) byte {
	if selfBroker {
		return electNone
	}
	if peer.Broker {
		n.sightings[peer.ID] = brokerSighting{at: now, degree: int(peer.Degree)}
	}
	count, meanDegree := n.brokersInWindowLocked(now)
	switch {
	case count < n.cfg.Protocol.BrokerLow && !peer.Broker:
		return electPromote
	case count > n.cfg.Protocol.BrokerHigh && peer.Broker &&
		float64(peer.Degree) < meanDegree:
		delete(n.sightings, peer.ID)
		return electDemote
	}
	return electNone
}

// relayPhase exchanges relay filters, runs preferential forwarding both
// ways, then merges (M-merge by default). The filter is snapshotted
// before the exchange and merged after it; forwarding decisions use the
// pre-merge filters.
func (s *session) relayPhase(now time.Duration) error {
	n := s.n
	n.roleMu.Lock()
	err := s.relay.Advance(now)
	var rBytes []byte
	if err == nil {
		rBytes, err = s.relay.Encode(tcbf.CountersFull)
	}
	n.roleMu.Unlock()
	if err != nil {
		return err
	}
	var peerRelay *tcbf.Filter
	err = s.lockstep(
		func() error { return s.writeFrame(frameRelay, rBytes) },
		func() error {
			body, err := s.expectFrame(frameRelay)
			if err != nil {
				return err
			}
			peerRelay, err = tcbf.Decode(body, n.filterCfg, now)
			return err
		})
	if err != nil {
		return err
	}

	// Initiator sends its candidates first.
	sendCands := func() error {
		for _, c := range s.carriedSnapshot() {
			best := 0.0
			n.roleMu.Lock()
			for _, k := range c.stored.msg.MatchKeys() {
				pref, err := tcbf.Preference(k, peerRelay, s.relay, now)
				if err != nil {
					n.roleMu.Unlock()
					return err
				}
				if pref > best {
					best = pref
				}
			}
			n.roleMu.Unlock()
			if best <= 0 {
				continue
			}
			body, err := encodeMessage(c.stored.msg, c.stored.payload)
			if err != nil {
				return err
			}
			// Claim the copy before it travels: a concurrent session may
			// already have forwarded it, and two sessions must never
			// spend the same carried copy.
			n.storeMu.Lock()
			_, present := n.carried[c.id]
			delete(n.carried, c.id)
			n.storeMu.Unlock()
			if !present {
				continue
			}
			if err := s.sendClaimed(c.id, body, func() {
				n.storeMu.Lock()
				n.carried[c.id] = c.stored
				n.storeMu.Unlock()
			}); err != nil {
				return err
			}
		}
		return s.writeFrame(frameEndMessages, nil)
	}
	recvCands := func() error {
		for {
			typ, body, err := s.readFrame()
			if err != nil {
				return err
			}
			if typ == frameEndMessages {
				return nil
			}
			if typ != frameMessage {
				return fmt.Errorf("%w: frame %d during relay forwarding", ErrProtocol, typ)
			}
			msg, payload, err := decodeMessage(body)
			if err != nil {
				return err
			}
			n.acceptCarried(msg, payload, now)
			if err := s.writeAck(msg.ID); err != nil {
				return err
			}
		}
	}
	if err := s.lockstep(sendCands, recvCands); err != nil {
		return err
	}

	n.roleMu.Lock()
	defer n.roleMu.Unlock()
	if n.cfg.Protocol.BrokerMerge == core.BrokerMergeAdditive {
		return s.relay.AMerge(peerRelay, now)
	}
	return s.relay.MMerge(peerRelay, now)
}

// storedRef pairs a store key with the message it held when snapshotted.
type storedRef struct {
	id     int
	stored *storedMessage
}

// carriedSnapshot copies the carried index under storeMu; callers must
// re-check (claim) each entry before spending it.
func (s *session) carriedSnapshot() []storedRef {
	s.n.storeMu.Lock()
	defer s.n.storeMu.Unlock()
	out := make([]storedRef, 0, len(s.n.carried))
	for id, sm := range s.n.carried {
		out = append(out, storedRef{id: id, stored: sm})
	}
	return out
}

// producedSnapshot copies the produced index under storeMu.
func (s *session) producedSnapshot() []storedRef {
	s.n.storeMu.Lock()
	defer s.n.storeMu.Unlock()
	out := make([]storedRef, 0, len(s.n.produced))
	for id, sm := range s.n.produced {
		out = append(out, storedRef{id: id, stored: sm})
	}
	return out
}

// acceptCarried stores a relayed copy (and claims it if we want it).
func (n *Node) acceptCarried(msg workload.Message, payload []byte, now time.Duration) {
	if now > msg.CreatedAt+n.cfg.TTL {
		return
	}
	if n.wants(&msg) {
		n.deliver(msg, payload, false)
	}
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if _, dup := n.carried[msg.ID]; dup {
		return
	}
	n.carried[msg.ID] = &storedMessage{
		msg:       msg,
		payload:   payload,
		expiresAt: msg.CreatedAt + n.cfg.TTL,
	}
}

// Interest-BF purposes.
const (
	pullDelivery byte = iota + 1
	pullReplication
)

// askDelivery requests messages matching our interests and ingests the
// response.
func (s *session) askDelivery(peerID uint32, now time.Duration) error {
	n := s.n
	genuine, err := n.genuineFilter(now)
	if err != nil {
		return err
	}
	fBytes, err := genuine.Encode(tcbf.CountersNone)
	if err != nil {
		return err
	}
	if err := s.writeFrame(frameInterestBF, append([]byte{pullDelivery}, fBytes...)); err != nil {
		return err
	}
	for {
		typ, body, err := s.readFrame()
		if err != nil {
			return err
		}
		if typ == frameEndMessages {
			return nil
		}
		if typ != frameMessage {
			return fmt.Errorf("%w: frame %d during delivery pull", ErrProtocol, typ)
		}
		msg, payload, err := decodeMessage(body)
		if err != nil {
			return err
		}
		// The match was probabilistic (Bloom filter); deliver only if the
		// copy is live and we really want it — a mismatch is a
		// false-positive transfer. Either way the copy is ACKed: the ACK
		// confirms receipt, not interest.
		if now <= msg.CreatedAt+n.cfg.TTL && n.wants(&msg) {
			n.deliver(msg, payload, msg.Origin == int(peerID))
		}
		if err := s.writeAck(msg.ID); err != nil {
			return err
		}
	}
}

// answerDelivery serves the peer's delivery request from our produced
// messages (direct) and carried copies (broker-mediated; removed after
// forwarding, per Section V-D). Each copy is claimed under the store
// lock immediately before it travels and refunded unless the peer ACKs
// it — a contact severed mid-transfer loses no copies.
func (s *session) answerDelivery(peerID uint32, now time.Duration) error {
	n := s.n
	filter, err := s.readInterestBF(pullDelivery, now)
	if err != nil {
		return err
	}
	bf := filter.ToBloom()
	for _, c := range s.producedSnapshot() {
		n.storeMu.Lock()
		sm, ok := n.produced[c.id]
		if !ok || now > sm.expiresAt || sm.sentTo(peerID) || !anyWireKeyIn(&sm.msg, bf.Contains) {
			n.storeMu.Unlock()
			continue
		}
		body, err := encodeMessage(sm.msg, sm.payload)
		if err != nil {
			n.storeMu.Unlock()
			return err
		}
		sm.markSent(peerID)
		n.storeMu.Unlock()
		if err := s.sendClaimed(c.id, body, func() {
			n.storeMu.Lock()
			delete(sm.sent, peerID)
			n.storeMu.Unlock()
		}); err != nil {
			return err
		}
	}
	for _, c := range s.carriedSnapshot() {
		n.storeMu.Lock()
		sm, ok := n.carried[c.id]
		if !ok || now > sm.expiresAt || !anyWireKeyIn(&sm.msg, bf.Contains) {
			n.storeMu.Unlock()
			continue
		}
		body, err := encodeMessage(sm.msg, sm.payload)
		if err != nil {
			n.storeMu.Unlock()
			return err
		}
		delete(n.carried, c.id)
		n.storeMu.Unlock()
		if err := s.sendClaimed(c.id, body, func() {
			n.storeMu.Lock()
			n.carried[c.id] = sm
			n.storeMu.Unlock()
		}); err != nil {
			return err
		}
	}
	return s.writeFrame(frameEndMessages, nil)
}

// askReplication advertises our relay filter and stores the returned
// copies.
func (s *session) askReplication(now time.Duration) error {
	n := s.n
	n.roleMu.Lock()
	err := s.relay.Advance(now)
	var fBytes []byte
	if err == nil {
		fBytes, err = s.relay.Encode(tcbf.CountersNone)
	}
	n.roleMu.Unlock()
	if err != nil {
		return err
	}
	if err := s.writeFrame(frameInterestBF, append([]byte{pullReplication}, fBytes...)); err != nil {
		return err
	}
	for {
		typ, body, err := s.readFrame()
		if err != nil {
			return err
		}
		if typ == frameEndMessages {
			return nil
		}
		if typ != frameMessage {
			return fmt.Errorf("%w: frame %d during replication pull", ErrProtocol, typ)
		}
		msg, payload, err := decodeMessage(body)
		if err != nil {
			return err
		}
		n.acceptCarried(msg, payload, now)
		if err := s.writeAck(msg.ID); err != nil {
			return err
		}
	}
}

// answerReplication replicates matching produced messages to the broker,
// bounded by the copy limit; a message leaves our memory when its copies
// are exhausted. A copy is claimed (decremented) under the store lock
// before it travels and refunded if the peer's ACK never arrives.
func (s *session) answerReplication(now time.Duration) error {
	n := s.n
	filter, err := s.readInterestBF(pullReplication, now)
	if err != nil {
		return err
	}
	bf := filter.ToBloom()
	for _, c := range s.producedSnapshot() {
		n.storeMu.Lock()
		sm, ok := n.produced[c.id]
		if !ok || now > sm.expiresAt || sm.copies == 0 || !anyWireKeyIn(&sm.msg, bf.Contains) {
			n.storeMu.Unlock()
			continue
		}
		body, err := encodeMessage(sm.msg, sm.payload)
		if err != nil {
			n.storeMu.Unlock()
			return err
		}
		sm.copies--
		removed := sm.copies == 0
		if removed {
			delete(n.produced, c.id)
		}
		n.storeMu.Unlock()
		if err := s.sendClaimed(c.id, body, func() {
			n.storeMu.Lock()
			sm.copies++
			if removed {
				n.produced[c.id] = sm
			}
			n.storeMu.Unlock()
		}); err != nil {
			return err
		}
	}
	return s.writeFrame(frameEndMessages, nil)
}

// readInterestBF reads and validates an interest-BF frame of the expected
// purpose.
func (s *session) readInterestBF(purpose byte, now time.Duration) (*tcbf.Filter, error) {
	body, err := s.expectFrame(frameInterestBF)
	if err != nil {
		return nil, err
	}
	if len(body) < 1 || body[0] != purpose {
		return nil, fmt.Errorf("%w: interest BF purpose mismatch", ErrProtocol)
	}
	return tcbf.Decode(body[1:], s.n.filterCfg, now)
}

func anyWireKeyIn(m *workload.Message, contains func(string) bool) bool {
	for _, k := range m.MatchKeys() {
		if contains(k) {
			return true
		}
	}
	return false
}

func (s *storedMessage) sentTo(peer uint32) bool {
	_, ok := s.sent[peer]
	return ok
}

func (s *storedMessage) markSent(peer uint32) {
	if s.sent == nil {
		s.sent = make(map[uint32]struct{})
	}
	s.sent[peer] = struct{}{}
}
