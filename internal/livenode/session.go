package livenode

import (
	"fmt"
	"io"
	"time"

	"bsub/internal/engine"
)

// session is one contact session in flight: the wire half of a contact.
// Every protocol decision — election, filter contents, forwarding choices,
// copy claims — comes from the engine.Session; this type only moves the
// engine's byte steps across the connection in frames.
//
// Sessions with distinct peers run concurrently: each holds one slot of
// the node's MaxSessions semaphore and takes n.mu only for engine calls,
// never across network I/O. The engine session pins the roles and relay
// filter at HELLO/election time, so the wire protocol stays in lockstep
// even if a concurrent session changes the node's role mid-flight.
type session struct {
	n         *Node
	conn      io.ReadWriter
	initiator bool
	stats     SessionStats

	// timeout bounds each single frame read or write; the deadline is
	// re-armed per frame (see readFrame/writeFrame), so a healthy long
	// transfer is never cut while a stalled peer is caught within one
	// timeout.
	timeout time.Duration
	// dl arms those per-frame deadlines when the transport supports them
	// (TCP connections and net.Pipe do); nil otherwise.
	dl deadlineConn

	// es is the engine session driving this contact. Its claims commit on
	// the peer's MSGACK and are refunded (aborted) when the contact dies.
	es *engine.Session

	// preTyp/preBody hold a first frame handleInbound already read off
	// the wire (to route gossip before taking a session slot); the first
	// readFrame consumes them. preTyp zero means none.
	preTyp  byte
	preBody []byte
}

// deadlineConn is the subset of net.Conn the session uses to arm
// per-frame I/O deadlines.
type deadlineConn interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// writeFrame sends one frame under a fresh write deadline and accounts it.
func (s *session) writeFrame(typ byte, body []byte) error {
	if s.dl != nil {
		_ = s.dl.SetWriteDeadline(time.Now().Add(s.timeout))
	}
	if err := writeFrame(s.conn, typ, body); err != nil {
		return err
	}
	s.stats.FramesOut++
	s.stats.BytesOut += int64(frameHeaderLen + len(body))
	return nil
}

// readFrame receives one frame under a fresh read deadline and accounts
// it. A frame pre-read by handleInbound is consumed first.
func (s *session) readFrame() (byte, []byte, error) {
	if s.preTyp != 0 {
		typ, body := s.preTyp, s.preBody
		s.preTyp, s.preBody = 0, nil
		s.stats.FramesIn++
		s.stats.BytesIn += int64(frameHeaderLen + len(body))
		return typ, body, nil
	}
	if s.dl != nil {
		_ = s.dl.SetReadDeadline(time.Now().Add(s.timeout))
	}
	typ, body, err := readFrame(s.conn)
	if err != nil {
		return typ, body, err
	}
	s.stats.FramesIn++
	s.stats.BytesIn += int64(frameHeaderLen + len(body))
	return typ, body, nil
}

// expectFrame reads a frame and verifies its type.
func (s *session) expectFrame(want byte) ([]byte, error) {
	typ, body, err := s.readFrame()
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("%w: got frame %d, want %d", ErrProtocol, typ, want)
	}
	return body, nil
}

// sendClaimed moves one claimed message copy across the wire. The claim
// commits only when the peer's ACK arrives; on any failure — torn write,
// severed link, missing ACK — the claim is aborted, refunding the copy to
// its store, and the error ends the session. The receiver dedups by
// message ID, so a copy resent after a lost ACK can never double-deliver.
func (s *session) sendClaimed(c *engine.Claim) error {
	body, err := encodeMessage(c.Msg(), c.Payload())
	if err == nil {
		err = s.writeFrame(frameMessage, body)
	}
	if err == nil {
		err = s.awaitAck(c.Msg().ID)
	}
	if err != nil {
		s.n.mu.Lock()
		c.Abort()
		s.n.mu.Unlock()
		s.stats.MsgsRefunded++
		return err
	}
	c.Commit()
	return nil
}

// awaitAck blocks for the frameMsgAck of message id.
func (s *session) awaitAck(id int) error {
	body, err := s.expectFrame(frameMsgAck)
	if err != nil {
		return err
	}
	got, err := decodeAck(body)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("%w: ack for message %d, want %d", ErrProtocol, got, id)
	}
	return nil
}

// writeAck acknowledges a received message after it has been processed
// (delivered and/or stored), committing the sender's claim.
func (s *session) writeAck(id int) error {
	return s.writeFrame(frameMsgAck, encodeAck(id))
}

// lockstep runs send/recv in initiator-first order.
func (s *session) lockstep(send, recv func() error) error {
	if s.initiator {
		if err := send(); err != nil {
			return err
		}
		return recv()
	}
	if err := recv(); err != nil {
		return err
	}
	return send()
}

// run executes one contact session over s.conn. Phases mirror Section V:
//
//  0. HELLO exchange (identity, role, degree)
//  1. election (PROMOTE/DEMOTE per the Section V-B rules)
//  2. genuine filter (consumer -> broker interest propagation; one
//     direction, both sides derive it from the shared election outcome)
//  3. relay filters + preferential forwarding (broker <-> broker)
//  4. interest-BF pulls (direct delivery + producer->broker replication)
//  5. BYE
func (s *session) run(now time.Duration) error {
	n := s.n

	// Phase 0: HELLO. BeginContact snapshots the role and degree this
	// session announces; the engine pins them for the contact.
	n.mu.Lock()
	n.eng.Purge(now)
	s.es = n.eng.BeginContact(nil, now)
	self := s.es.Hello()
	n.mu.Unlock()
	wireSelf := hello{
		ID:     n.cfg.ID,
		Broker: self.Broker,
		Degree: uint16(min(self.Degree, 1<<16-1)),
	}
	var peer hello
	err := s.lockstep(
		func() error { return s.writeFrame(frameHello, wireSelf.encode()) },
		func() error {
			typ, body, err := s.readFrame()
			if err != nil {
				return err
			}
			if typ == frameBusy {
				return ErrPeerBusy
			}
			if typ != frameHello {
				return fmt.Errorf("%w: got frame %d, want %d", ErrProtocol, typ, frameHello)
			}
			peer, err = decodeHello(body)
			return err
		})
	if err != nil {
		return err
	}
	if peer.ID == n.cfg.ID {
		return fmt.Errorf("%w: peer claims our ID %d", ErrProtocol, peer.ID)
	}
	s.stats.Peer = peer.ID
	s.stats.Phase = PhaseHello

	// Phase 1: election. Each side announces one action for the peer;
	// the engine settles both (including the mutual-promotion tie-break).
	n.mu.Lock()
	s.es.SetPeer(engine.Hello{ID: int(peer.ID), Broker: peer.Broker, Degree: int(peer.Degree)})
	myAction := s.es.Elect()
	n.mu.Unlock()
	var peerAction byte
	err = s.lockstep(
		func() error { return s.writeFrame(frameElection, []byte{byte(myAction)}) },
		func() error {
			body, err := s.expectFrame(frameElection)
			if err != nil {
				return err
			}
			if len(body) != 1 || body[0] > electDemote {
				return fmt.Errorf("%w: bad election frame", ErrProtocol)
			}
			peerAction = body[0]
			return nil
		})
	if err != nil {
		return err
	}
	n.mu.Lock()
	s.es.Apply(myAction, engine.Action(peerAction))
	n.mu.Unlock()
	s.stats.Phase = PhaseElection

	// Phase 2: genuine filter, consumer -> broker only. Both sides agree
	// on the direction because both computed the same election outcome.
	switch {
	case s.es.SendsGenuine():
		n.mu.Lock()
		data, err := s.es.GenuineOut()
		n.mu.Unlock()
		if err != nil {
			return err
		}
		if err := s.writeFrame(frameGenuine, data); err != nil {
			return err
		}
	case s.es.ReceivesGenuine():
		body, err := s.expectFrame(frameGenuine)
		if err != nil {
			return err
		}
		n.mu.Lock()
		err = s.es.AbsorbGenuine(body)
		n.mu.Unlock()
		if err != nil {
			return err
		}
		if n.cfg.OnPeerGenuine != nil {
			n.cfg.OnPeerGenuine(peer.ID, body)
		}
	}
	s.stats.Phase = PhaseGenuine

	// Phase 3: relay exchange between brokers.
	if s.es.RelayExchange() {
		if err := s.relayPhase(now); err != nil {
			return err
		}
		s.stats.Phase = PhaseRelay
	}

	// Phase 4: interest pulls, initiator first.
	for _, asker := range []bool{s.initiator, !s.initiator} {
		if asker {
			if err := s.askDelivery(peer.ID, now); err != nil {
				return err
			}
			if s.es.SelfBroker() {
				if err := s.askReplication(now); err != nil {
					return err
				}
			}
		} else {
			if err := s.answerDelivery(); err != nil {
				return err
			}
			if s.es.PeerBroker() {
				if err := s.answerReplication(); err != nil {
					return err
				}
			}
		}
	}
	s.stats.Phase = PhasePull

	// Phase 5: BYE.
	return s.lockstep(
		func() error { return s.writeFrame(frameBye, nil) },
		func() error {
			_, err := s.expectFrame(frameBye)
			return err
		})
}

// Election actions; the byte values match engine.Action.
const (
	electNone byte = iota
	electPromote
	electDemote
)

// relayPhase exchanges relay filters, runs preferential forwarding both
// ways, then merges (M-merge by default). The engine snapshots the peer's
// pre-merge filter, so forwarding decisions never see merged state.
func (s *session) relayPhase(now time.Duration) error {
	n := s.n
	n.mu.Lock()
	rBytes, err := s.es.RelayOut()
	n.mu.Unlock()
	if err != nil {
		return err
	}
	err = s.lockstep(
		func() error { return s.writeFrame(frameRelay, rBytes) },
		func() error {
			body, err := s.expectFrame(frameRelay)
			if err != nil {
				return err
			}
			n.mu.Lock()
			err = s.es.SetPeerRelay(body)
			n.mu.Unlock()
			return err
		})
	if err != nil {
		return err
	}

	// Initiator sends its candidates first. Each copy is claimed through
	// the engine immediately before it travels — a concurrent session may
	// already have spent it, and two sessions must never move the same
	// carried copy.
	sendCands := func() error {
		n.mu.Lock()
		cands, err := s.es.ForwardCandidates()
		n.mu.Unlock()
		if err != nil {
			return err
		}
		for _, c := range cands {
			n.mu.Lock()
			claim, ok := s.es.ClaimCarried(c.Msg.ID)
			n.mu.Unlock()
			if claim == nil {
				if !ok {
					break
				}
				continue
			}
			if err := s.sendClaimed(claim); err != nil {
				return err
			}
		}
		return s.writeFrame(frameEndMessages, nil)
	}
	recvCands := func() error {
		for {
			typ, body, err := s.readFrame()
			if err != nil {
				return err
			}
			if typ == frameEndMessages {
				return nil
			}
			if typ != frameMessage {
				return fmt.Errorf("%w: frame %d during relay forwarding", ErrProtocol, typ)
			}
			msg, payload, err := decodeMessage(body)
			if err != nil {
				return err
			}
			n.acceptCarried(msg, payload, now)
			if err := s.writeAck(msg.ID); err != nil {
				return err
			}
		}
	}
	if err := s.lockstep(sendCands, recvCands); err != nil {
		return err
	}

	n.mu.Lock()
	err = s.es.MergeRelay()
	n.mu.Unlock()
	return err
}

// Interest-BF purposes.
const (
	pullDelivery byte = iota + 1
	pullReplication
)

// askDelivery requests messages matching our interests and ingests the
// response.
func (s *session) askDelivery(peerID uint32, now time.Duration) error {
	n := s.n
	n.mu.Lock()
	fBytes, err := s.es.InterestOut()
	n.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.writeFrame(frameInterestBF, append([]byte{pullDelivery}, fBytes...)); err != nil {
		return err
	}
	for {
		typ, body, err := s.readFrame()
		if err != nil {
			return err
		}
		if typ == frameEndMessages {
			return nil
		}
		if typ != frameMessage {
			return fmt.Errorf("%w: frame %d during delivery pull", ErrProtocol, typ)
		}
		msg, payload, err := decodeMessage(body)
		if err != nil {
			return err
		}
		// The match was probabilistic (Bloom filter); the engine counts a
		// delivery only if the copy is live and we really want it — a
		// mismatch is a false-positive transfer. Either way the copy is
		// ACKed: the ACK confirms receipt, not interest.
		n.mu.Lock()
		acc := n.eng.ReceiveDelivery(msg, int(peerID), now)
		n.mu.Unlock()
		if acc.Delivered {
			n.deliver(msg, payload, acc.Direct)
		}
		if err := s.writeAck(msg.ID); err != nil {
			return err
		}
	}
}

// answerDelivery serves the peer's delivery request from our produced
// messages (direct) and carried copies (broker-mediated; a carried
// delivery hands the copy off, per Section V-D). Each copy is claimed
// through the engine immediately before it travels and refunded unless
// the peer ACKs it — a contact severed mid-transfer loses no copies.
func (s *session) answerDelivery() error {
	n := s.n
	body, err := s.readPull(pullDelivery)
	if err != nil {
		return err
	}
	n.mu.Lock()
	transfers, err := s.es.DeliveryMatches(body)
	n.mu.Unlock()
	if err != nil {
		return err
	}
	for _, t := range transfers {
		n.mu.Lock()
		var claim *engine.Claim
		var ok bool
		if t.Carried {
			claim, ok = s.es.ClaimCarried(t.Msg.ID)
		} else {
			claim, ok = s.es.ClaimDirect(t.Msg.ID)
		}
		n.mu.Unlock()
		if claim == nil {
			if !ok {
				break
			}
			continue
		}
		if err := s.sendClaimed(claim); err != nil {
			return err
		}
	}
	return s.writeFrame(frameEndMessages, nil)
}

// askReplication advertises our relay filter and stores the returned
// copies.
func (s *session) askReplication(now time.Duration) error {
	n := s.n
	n.mu.Lock()
	fBytes, err := s.es.RelayAdvertOut()
	n.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.writeFrame(frameInterestBF, append([]byte{pullReplication}, fBytes...)); err != nil {
		return err
	}
	for {
		typ, body, err := s.readFrame()
		if err != nil {
			return err
		}
		if typ == frameEndMessages {
			return nil
		}
		if typ != frameMessage {
			return fmt.Errorf("%w: frame %d during replication pull", ErrProtocol, typ)
		}
		msg, payload, err := decodeMessage(body)
		if err != nil {
			return err
		}
		n.acceptCarried(msg, payload, now)
		if err := s.writeAck(msg.ID); err != nil {
			return err
		}
	}
}

// answerReplication replicates matching produced messages to the broker,
// bounded by the copy limit; an exhausted message stops replicating but
// stays in the produced store until TTL so later contacts can still serve
// matching subscribers directly. A copy is claimed (decremented) through
// the engine before it travels and refunded if the peer's ACK never
// arrives.
func (s *session) answerReplication() error {
	n := s.n
	body, err := s.readPull(pullReplication)
	if err != nil {
		return err
	}
	n.mu.Lock()
	transfers, err := s.es.ReplicationMatches(body)
	n.mu.Unlock()
	if err != nil {
		return err
	}
	for _, t := range transfers {
		n.mu.Lock()
		claim, ok := s.es.ClaimReplication(t.Msg.ID)
		n.mu.Unlock()
		if claim == nil {
			if !ok {
				break
			}
			continue
		}
		if err := s.sendClaimed(claim); err != nil {
			return err
		}
	}
	return s.writeFrame(frameEndMessages, nil)
}

// readPull reads an interest-BF frame of the expected purpose and returns
// its filter bytes for the engine to decode.
func (s *session) readPull(purpose byte) ([]byte, error) {
	body, err := s.expectFrame(frameInterestBF)
	if err != nil {
		return nil, err
	}
	if len(body) < 1 || body[0] != purpose {
		return nil, fmt.Errorf("%w: interest BF purpose mismatch", ErrProtocol)
	}
	return body[1:], nil
}
