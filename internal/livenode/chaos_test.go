package livenode

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"bsub/internal/core"
	"bsub/internal/faultnet"
	"bsub/internal/tcbf"
	"bsub/internal/testutil"
	"bsub/internal/workload"
)

// faultnet's frame-exact cuts parse the livenode header layout; if the
// wire format changes, the two must move together.
func TestFaultnetUnderstandsOurFraming(t *testing.T) {
	if faultnet.FrameHeaderLen != frameHeaderLen {
		t.Fatalf("faultnet.FrameHeaderLen = %d, livenode frameHeaderLen = %d",
			faultnet.FrameHeaderLen, frameHeaderLen)
	}
}

// interestBytes encodes a counter-less interest filter over keys, as a
// hand-rolled wire peer would send in an interest-BF frame.
func interestBytes(t *testing.T, n *Node, now time.Duration, keys ...workload.Key) []byte {
	t.Helper()
	f, err := tcbf.New(n.filterCfg, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.InsertAll(keys, now); err != nil {
		t.Fatal(err)
	}
	out, err := f.Encode(tcbf.CountersNone)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// advertBytes encodes a partitioned counter-less relay advert over keys,
// as a hand-rolled broker peer would send in a replication pull.
func advertBytes(t *testing.T, n *Node, now time.Duration, keys ...workload.Key) []byte {
	t.Helper()
	parts := n.cfg.Protocol.RelayPartitions
	if parts < 1 {
		parts = 1
	}
	f := tcbf.MustNewPartitioned(n.filterCfg, parts, now)
	if err := f.InsertAll(keys, now); err != nil {
		t.Fatal(err)
	}
	out, err := f.Encode(tcbf.CountersNone)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// pullOneMessageWithoutAck speaks phases 0–2 (HELLO, election, genuine) of
// the contact protocol against node from the initiator side, then sends
// one interest-BF pull request and reads back one frameMessage — which it
// never ACKs. Returns with the message frame consumed and the session
// parked exactly inside the sender's awaitAck.
//
// In both callers the node ends up the consumer side of the genuine phase
// (it elects this peer a broker, or the peer announced itself as one), so
// the harness reads the node's genuine frame and never sends its own.
// A non-nil emptyDeliveryPull runs an empty delivery pull first so the
// responder moves on to the replication answer.
func pullOneMessageWithoutAck(t *testing.T, conn net.Conn, peerHello hello, pullPurpose byte, pullBody, emptyDeliveryPull []byte) {
	t.Helper()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrame(conn, frameHello, peerHello.encode()); err != nil {
		t.Fatal(err)
	}
	if _, err := expectFrame(conn, frameHello); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameElection, []byte{electNone}); err != nil {
		t.Fatal(err)
	}
	if _, err := expectFrame(conn, frameElection); err != nil {
		t.Fatal(err)
	}
	if _, err := expectFrame(conn, frameGenuine); err != nil {
		t.Fatal(err)
	}
	if emptyDeliveryPull != nil {
		if err := writeFrame(conn, frameInterestBF, append([]byte{pullDelivery}, emptyDeliveryPull...)); err != nil {
			t.Fatal(err)
		}
		if _, err := expectFrame(conn, frameEndMessages); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeFrame(conn, frameInterestBF, append([]byte{pullPurpose}, pullBody...)); err != nil {
		t.Fatal(err)
	}
	if _, err := expectFrame(conn, frameMessage); err != nil {
		t.Fatal(err)
	}
	// The copy is in flight and unACKed: vanish, as a peer walking out
	// of radio range the moment the frame landed.
}

// TestSeverBeforeAckRefundsCarriedCopy is the regression test for the
// pre-ACK silent-loss bug: a carried copy was spent the moment
// writeFrame returned, so a contact severed right after the message
// frame — before the receiver processed it — destroyed the copy. With
// ACKed hand-off the claim must be refunded.
func TestSeverBeforeAckRefundsCarriedCopy(t *testing.T) {
	clock := newMeshClock(time.Hour)
	node := startNode(t, 1, clock, nil)
	now := clock.now()
	node.acceptCarried(workload.Message{
		ID:        4242,
		Key:       "hot",
		Origin:    7,
		CreatedAt: now,
	}, []byte("precious copy"), now)
	if node.CarriedCount() != 1 {
		t.Fatal("carried copy not planted")
	}

	local, remote := net.Pipe()
	defer local.Close()
	done := make(chan error, 1)
	go func() { done <- node.runContact(remote, false) }()

	pullOneMessageWithoutAck(t, local, hello{ID: 99}, pullDelivery,
		interestBytes(t, node, now, "hot"), nil)
	local.Close() // sever before the ACK

	err := <-done
	if err == nil {
		t.Fatal("severed session reported success")
	}
	if node.CarriedCount() != 1 {
		t.Fatalf("carried copies after severed, unACKed hand-off = %d, want 1 (refunded)",
			node.CarriedCount())
	}
	c := node.Stats()
	if c.MsgsRefunded != 1 {
		t.Errorf("MsgsRefunded = %d, want 1", c.MsgsRefunded)
	}
	if c.Severed != 1 {
		t.Errorf("Severed = %d, want 1 (got outcome %v)", c.Severed, err)
	}
}

// TestSeverBeforeAckRefundsReplicationCopy covers the produced-store
// variant: a replication hand-off decrements the copy budget when
// claimed; severing before the ACK must refund the copy — including
// re-inserting a message the claim had removed at copies == 0.
func TestSeverBeforeAckRefundsReplicationCopy(t *testing.T) {
	clock := newMeshClock(time.Hour)
	node := startNode(t, 1, clock, nil)
	now := clock.now()
	id, err := node.Publish([]byte("replicate me"), "hot")
	if err != nil {
		t.Fatal(err)
	}
	copyLimit := core.DefaultConfig(0.01).CopyLimit

	local, remote := net.Pipe()
	defer local.Close()
	done := make(chan error, 1)
	go func() { done <- node.runContact(remote, false) }()

	// Present as a broker so the responder answers a replication pull;
	// the empty delivery pull runs first to stay in protocol lockstep.
	pullOneMessageWithoutAck(t, local, hello{ID: 99, Broker: true}, pullReplication,
		advertBytes(t, node, now, "hot"), interestBytes(t, node, now))
	local.Close() // sever before the ACK

	if err := <-done; err == nil {
		t.Fatal("severed session reported success")
	}
	node.mu.Lock()
	copies := node.eng.ProducedCopies(id)
	node.mu.Unlock()
	if copies == 0 {
		t.Fatal("produced message vanished after severed, unACKed replication")
	}
	if copies != copyLimit {
		t.Errorf("copies = %d, want %d (claim refunded)", copies, copyLimit)
	}
	if c := node.Stats(); c.MsgsRefunded != 1 {
		t.Errorf("MsgsRefunded = %d, want 1", c.MsgsRefunded)
	}
}

// TestTimedOutOutcome: a peer that connects and then stalls must be cut
// by the per-frame deadline and accounted as a timeout.
func TestTimedOutOutcome(t *testing.T) {
	clock := newMeshClock(time.Hour)
	cfg := Config{
		ID:             1,
		Protocol:       core.DefaultConfig(0.01),
		TTL:            time.Hour,
		Clock:          clock.now,
		SessionTimeout: 50 * time.Millisecond,
	}
	node, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })

	local, remote := net.Pipe()
	defer local.Close()
	defer remote.Close()
	done := make(chan error, 1)
	go func() { done <- node.runContact(remote, false) }()
	// Never send the HELLO; the responder's first frame read must expire.
	err = <-done
	if err == nil {
		t.Fatal("stalled session reported success")
	}
	if c := node.Stats(); c.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1 (err %v)", c.TimedOut, err)
	}
}

// TestCorruptOutcome: a bit flip in flight must surface as
// ErrCorruptFrame and be accounted as corruption, not a decoder panic.
func TestCorruptOutcome(t *testing.T) {
	clock := newMeshClock(time.Hour)
	a := startNode(t, 1, clock, nil)
	b := startNode(t, 2, clock, nil)

	ca, cb := net.Pipe()
	// Flip a bit inside the initiator's HELLO frame body.
	fa := faultnet.Wrap(ca, faultnet.Plan{FlipMask: 0x10, FlipByte: frameHeaderLen + 2})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = a.runContact(fa, true); fa.Close() }()
	go func() { defer wg.Done(); _ = b.runContact(cb, false); cb.Close() }()
	wg.Wait()

	if c := b.Stats(); c.Corrupt != 1 {
		t.Errorf("responder Corrupt = %d, want 1", c.Corrupt)
	}
}

// chaosPlan deterministically cycles through every fault mode, with
// seeded offsets so a failure reproduces bit-for-bit.
func chaosPlan(rng *rand.Rand, mode int) faultnet.Plan {
	switch mode % 6 {
	case 0:
		return faultnet.Plan{Latency: time.Millisecond}
	case 1:
		return faultnet.Plan{FlipMask: 1 << uint(rng.Intn(8)), FlipByte: int64(10 + rng.Intn(400))}
	case 2:
		return faultnet.Plan{CutWriteAfter: int64(20 + rng.Intn(600))}
	case 3:
		return faultnet.Plan{CutReadAfter: int64(20 + rng.Intn(600))}
	case 4:
		return faultnet.Plan{Seed: rng.Int63(), PartialWrites: true}
	default:
		return faultnet.Plan{CutWriteAfterFrames: 1 + rng.Intn(10)}
	}
}

// TestChaosFaultySessionsConserveCopies drives many concurrent sessions
// through every fault mode and asserts the failure-model invariants:
// message copies are conserved (nothing a severed contact touched is
// lost), no message is ever delivered twice, the nodes still serve clean
// contacts afterwards, and no goroutine leaks.
func TestChaosFaultySessionsConserveCopies(t *testing.T) {
	const chaosRounds = 8
	testutil.CheckGoroutineLeaks(t)
	clock := newMeshClock(time.Hour)

	type recorder struct {
		mu   sync.Mutex
		seen map[int]int
	}
	topics := []workload.Key{"alpha", "beta", "gamma", "delta", "omega"}
	nodes := make([]*Node, len(topics))
	recs := make([]*recorder, len(topics))
	for i := range nodes {
		rec := &recorder{seen: make(map[int]int)}
		recs[i] = rec
		n, err := Listen("127.0.0.1:0", Config{
			ID:             uint32(i + 1),
			Protocol:       core.DefaultConfig(0.01),
			TTL:            12 * time.Hour,
			Clock:          clock.now,
			SessionTimeout: 2 * time.Second,
			OnDeliver: func(d Delivery) {
				rec.mu.Lock()
				rec.seen[d.Message.ID]++
				rec.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		n.Subscribe(topics[i])
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	// Every node publishes one message for every other node's topic.
	type published struct {
		id     int
		key    workload.Key
		origin int
	}
	var pubs []published
	for i, n := range nodes {
		for j, topic := range topics {
			if i == j {
				continue
			}
			id, err := n.Publish([]byte("chaos payload"), topic)
			if err != nil {
				t.Fatal(err)
			}
			pubs = append(pubs, published{id: id, key: topic, origin: i})
		}
	}

	// Storm: six pipe contacts per round, all concurrent — the hub
	// (nodes[0]) runs four sessions at once while the peers pair off —
	// each through a different deterministic fault plan. Errors are the
	// point; panics, deadlocks, and lost copies are the bugs.
	rng := rand.New(rand.NewSource(1))
	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {3, 4}}
	mode := 0
	for round := 0; round < chaosRounds; round++ {
		var wg sync.WaitGroup
		for _, p := range pairs {
			dialer, responder := nodes[p[0]], nodes[p[1]]
			ca, cb := net.Pipe()
			fc := faultnet.Wrap(ca, chaosPlan(rng, mode))
			mode++
			wg.Add(2)
			go func() { defer wg.Done(); _ = dialer.runContact(fc, true); fc.Close() }()
			go func() { defer wg.Done(); _ = responder.runContact(cb, false); cb.Close() }()
		}
		wg.Wait()
		clock.advance(time.Minute)
	}

	// The faults must actually have registered as failures.
	var faults uint64
	for _, n := range nodes {
		c := n.Stats()
		faults += c.Severed + c.Corrupt + c.TimedOut
	}
	if faults == 0 {
		t.Error("chaos storm produced no severed/corrupt/timed-out sessions")
	}

	// Recovery: clean full-mesh contacts over real TCP. Every node must
	// still serve a clean session, and — because severed hand-offs were
	// refunded, never lost — every subscriber must end up with every
	// matching message exactly once.
	for round := 0; round < 5; round++ {
		for i := range nodes {
			for j := range nodes {
				if i == j {
					continue
				}
				if err := nodes[i].Meet(nodes[j].Addr()); err != nil {
					t.Fatalf("clean contact %d->%d after chaos failed: %v", i, j, err)
				}
			}
		}
		clock.advance(time.Minute)
	}

	for j, rec := range recs {
		rec.mu.Lock()
		for _, p := range pubs {
			if p.origin == j || p.key != topics[j] {
				continue
			}
			if got := rec.seen[p.id]; got != 1 {
				t.Errorf("node %d saw message %d (%s) %d times, want exactly 1 — copies not conserved",
					j, p.id, p.key, got)
			}
		}
		for id, count := range rec.seen {
			if count > 1 {
				t.Errorf("node %d saw message %d delivered %d times", j, id, count)
			}
		}
		rec.mu.Unlock()
	}

	// Shutdown must release every session goroutine; the leak check
	// registered at the top verifies it after cleanup.
	for _, n := range nodes {
		_ = n.Close()
	}
}
