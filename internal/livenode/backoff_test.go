package livenode

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"bsub/internal/core"
	"bsub/internal/testutil"
)

// TestJitteredBackoffSpread is the regression test for the pure-doubling
// backoff: every retry delay must land inside the equal-jitter window
// [backoff/2, backoff), and the samples must actually spread instead of
// collapsing onto the ceiling.
func TestJitteredBackoffSpread(t *testing.T) {
	const backoff = 200 * time.Millisecond
	rng := rand.New(rand.NewSource(7))
	seen := map[time.Duration]bool{}
	var lo, hi time.Duration = backoff, 0
	for i := 0; i < 1000; i++ {
		d := jitteredBackoff(backoff, rng.Float64())
		if d < backoff/2 || d >= backoff {
			t.Fatalf("delay %v outside the jitter window [%v, %v)", d, backoff/2, backoff)
		}
		seen[d] = true
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if len(seen) < 100 {
		t.Errorf("1000 samples produced only %d distinct delays — not jittered", len(seen))
	}
	// The draws must cover most of the window, not cluster at one edge.
	if lo > backoff/2+backoff/8 {
		t.Errorf("smallest delay %v sits far from the window floor %v", lo, backoff/2)
	}
	if hi < backoff-backoff/8 {
		t.Errorf("largest delay %v sits far from the window ceiling %v", hi, backoff)
	}
}

// TestMeetRetriesCounted: every BUSY-driven retry must surface in the
// MeetRetries counter.
func TestMeetRetriesCounted(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newMeshClock(time.Hour)
	n, err := Listen("127.0.0.1:0", Config{
		ID:           1,
		Protocol:     core.DefaultConfig(0.01),
		TTL:          time.Hour,
		Clock:        clock.now,
		MeetAttempts: 3,
		MeetBackoff:  time.Millisecond,
		DialTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })

	// A dead address fails every attempt; attempts-1 retries follow.
	dead := reservedDeadAddr(t)
	if err := n.Meet(dead); err == nil {
		t.Fatal("meet against a dead address succeeded")
	}
	if c := n.Stats(); c.MeetRetries != 2 {
		t.Errorf("MeetRetries = %d, want 2 (3 attempts)", c.MeetRetries)
	}
}

// reservedDeadAddr returns a loopback address that refuses connections:
// the port was bound and released, so nothing listens there.
func reservedDeadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// TestGossipExchange: gossip frames must round-trip outside contact
// sessions, hit the configured handler, and bump both sides' counters.
func TestGossipExchange(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newMeshClock(time.Hour)
	var got []byte
	responder, err := Listen("127.0.0.1:0", Config{
		ID:       2,
		Protocol: core.DefaultConfig(0.01),
		TTL:      time.Hour,
		Clock:    clock.now,
		GossipHandler: func(payload []byte) []byte {
			got = append([]byte(nil), payload...)
			return []byte("pong")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = responder.Close() })
	dialer := startNode(t, 1, clock, nil)

	reply, err := dialer.Gossip(responder.Addr(), []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong" || string(got) != "ping" {
		t.Errorf("gossip round trip: sent %q got %q, handler saw %q", "ping", reply, got)
	}
	if c := dialer.Stats(); c.GossipSent != 1 {
		t.Errorf("dialer GossipSent = %d, want 1", c.GossipSent)
	}
	if c := responder.Stats(); c.GossipAnswered != 1 {
		t.Errorf("responder GossipAnswered = %d, want 1", c.GossipAnswered)
	}
}

// TestGossipWithoutHandlerDropped: a node with no GossipHandler must drop
// inbound gossip without answering — and without burning a session slot.
func TestGossipWithoutHandlerDropped(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newMeshClock(time.Hour)
	responder := startNode(t, 2, clock, nil)
	dialer := startNode(t, 1, clock, nil)

	if _, err := dialer.Gossip(responder.Addr(), []byte("ping")); err == nil {
		t.Fatal("gossip against a handler-less node succeeded")
	}
	if c := responder.Stats(); c.GossipAnswered != 0 {
		t.Errorf("GossipAnswered = %d, want 0", c.GossipAnswered)
	}
	// The node must still serve ordinary contacts.
	if err := dialer.Meet(responder.Addr()); err != nil {
		t.Fatalf("contact after dropped gossip: %v", err)
	}
}

// TestDialHook: Config.Dial must carry every outbound connection — Meet
// and Gossip — so a fabric can interpose on the transport.
func TestDialHook(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	clock := newMeshClock(time.Hour)
	responder, err := Listen("127.0.0.1:0", Config{
		ID:            2,
		Protocol:      core.DefaultConfig(0.01),
		TTL:           time.Hour,
		Clock:         clock.now,
		GossipHandler: func(payload []byte) []byte { return payload },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = responder.Close() })

	dials := 0
	refuse := errors.New("interposed transport says no")
	dialer, err := Listen("127.0.0.1:0", Config{
		ID:           1,
		Protocol:     core.DefaultConfig(0.01),
		TTL:          time.Hour,
		Clock:        clock.now,
		MeetAttempts: 1,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			dials++
			if dials > 2 {
				return nil, refuse
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dialer.Close() })

	if err := dialer.Meet(responder.Addr()); err != nil {
		t.Fatalf("meet through the dial hook: %v", err)
	}
	if _, err := dialer.Gossip(responder.Addr(), []byte("x")); err != nil {
		t.Fatalf("gossip through the dial hook: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dial hook saw %d dials, want 2", dials)
	}
	// Once the hook refuses, the failure surfaces unwrapped-able.
	if err := dialer.Meet(responder.Addr()); !errors.Is(err, refuse) {
		t.Errorf("meet with refusing hook: err = %v, want %v", err, refuse)
	}
}
