package livenode

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsub/internal/core"
	"bsub/internal/workload"
)

// meshClock is a controllable time base shared by every node in a test.
type meshClock struct {
	ns atomic.Int64
}

func (c *meshClock) now() time.Duration      { return time.Duration(c.ns.Load()) }
func (c *meshClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func newMeshClock(start time.Duration) *meshClock {
	c := &meshClock{}
	c.ns.Store(int64(start))
	return c
}

// sink collects deliveries thread-safely.
type sink struct {
	mu   sync.Mutex
	msgs []Delivery
}

func (s *sink) deliver(d Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, d)
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) payloads() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.msgs))
	for i, d := range s.msgs {
		out[i] = string(d.Payload)
	}
	return out
}

func startNode(t *testing.T, id uint32, clock *meshClock, out *sink) *Node {
	t.Helper()
	cfg := Config{
		ID:       id,
		Protocol: core.DefaultConfig(0.01),
		TTL:      2 * time.Hour,
		Clock:    clock.now,
	}
	if out != nil {
		cfg.OnDeliver = out.deliver
	}
	n, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Config{ID: 1, Protocol: core.DefaultConfig(0.1)}); err == nil {
		t.Error("zero TTL accepted")
	}
	bad := core.DefaultConfig(0.1)
	bad.FilterM = 0
	if _, err := Listen("127.0.0.1:0", Config{ID: 1, Protocol: bad, TTL: time.Hour}); err == nil {
		t.Error("invalid protocol config accepted")
	}
}

func TestDirectDeliveryOverTCP(t *testing.T) {
	clock := newMeshClock(time.Hour)
	var got sink
	producer := startNode(t, 1, clock, nil)
	consumer := startNode(t, 2, clock, &got)
	consumer.Subscribe("news")

	if _, err := producer.Publish([]byte("hello hunet"), "news"); err != nil {
		t.Fatal(err)
	}
	if err := producer.Meet(consumer.Addr()); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatalf("consumer received %d messages, want 1", got.count())
	}
	if got.payloads()[0] != "hello hunet" {
		t.Errorf("payload = %q", got.payloads()[0])
	}
	if !gotDirect(&got, 0) {
		t.Error("direct delivery not flagged Direct")
	}
}

func gotDirect(s *sink, i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.msgs[i].Direct
}

func TestNoDuplicateDeliveries(t *testing.T) {
	clock := newMeshClock(time.Hour)
	var got sink
	producer := startNode(t, 1, clock, nil)
	consumer := startNode(t, 2, clock, &got)
	consumer.Subscribe("news")
	if _, err := producer.Publish([]byte("x"), "news"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := producer.Meet(consumer.Addr()); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Minute)
	}
	if got.count() != 1 {
		t.Fatalf("consumer received %d copies, want 1", got.count())
	}
}

func TestBrokerBootstrapAndRelayOverTCP(t *testing.T) {
	// 0 and 2 never meet; 1 is the hub. After warm-up meetings promote a
	// broker and propagate interests, a message published at 0 must reach
	// 2 through 1.
	clock := newMeshClock(time.Hour)
	var got sink
	n0 := startNode(t, 10, clock, nil)
	n1 := startNode(t, 11, clock, nil)
	n2 := startNode(t, 12, clock, &got)
	n2.Subscribe("transit")

	// Warm-up: both edges meet twice so the election runs and n2's
	// interest lands in the broker's relay filter.
	for i := 0; i < 2; i++ {
		if err := n0.Meet(n1.Addr()); err != nil {
			t.Fatal(err)
		}
		clock.advance(5 * time.Minute)
		if err := n2.Meet(n1.Addr()); err != nil {
			t.Fatal(err)
		}
		clock.advance(5 * time.Minute)
	}
	if !n1.IsBroker() && !n0.IsBroker() && !n2.IsBroker() {
		t.Fatal("no broker emerged from warm-up")
	}

	if _, err := n0.Publish([]byte("line 4 delayed"), "transit"); err != nil {
		t.Fatal(err)
	}
	// Producer meets hub (replication), hub meets consumer (delivery).
	if err := n0.Meet(n1.Addr()); err != nil {
		t.Fatal(err)
	}
	clock.advance(5 * time.Minute)
	if err := n2.Meet(n1.Addr()); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatalf("consumer received %d messages via broker, want 1", got.count())
	}
	if gotDirect(&got, 0) {
		t.Error("broker-mediated delivery flagged Direct")
	}
}

func TestTTLExpiryOverTCP(t *testing.T) {
	clock := newMeshClock(time.Hour)
	var got sink
	producer := startNode(t, 1, clock, nil)
	consumer := startNode(t, 2, clock, &got)
	consumer.Subscribe("news")
	if _, err := producer.Publish([]byte("stale"), "news"); err != nil {
		t.Fatal(err)
	}
	clock.advance(3 * time.Hour) // TTL is 2h
	if err := producer.Meet(consumer.Addr()); err != nil {
		t.Fatal(err)
	}
	if got.count() != 0 {
		t.Fatalf("expired message delivered %d times", got.count())
	}
}

func TestMultiKeyDeliveryOverTCP(t *testing.T) {
	clock := newMeshClock(time.Hour)
	var got sink
	producer := startNode(t, 1, clock, nil)
	consumer := startNode(t, 2, clock, &got)
	consumer.Subscribe("secondary")
	if _, err := producer.Publish([]byte("multi"), "primary", "secondary"); err != nil {
		t.Fatal(err)
	}
	if err := producer.Meet(consumer.Addr()); err != nil {
		t.Fatal(err)
	}
	if got.count() != 1 {
		t.Fatalf("multi-key message delivered %d times, want 1", got.count())
	}
}

func TestPublishValidation(t *testing.T) {
	clock := newMeshClock(time.Hour)
	n := startNode(t, 1, clock, nil)
	if _, err := n.Publish([]byte("x")); err == nil {
		t.Error("publish without keys accepted")
	}
	big := make([]byte, workload.MaxMessageBytes+1)
	if _, err := n.Publish(big, "k"); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestSubscribeDedups(t *testing.T) {
	clock := newMeshClock(time.Hour)
	n := startNode(t, 1, clock, nil)
	n.Subscribe("a", "b", "a")
	n.Subscribe("b")
	if got := n.Interests(); len(got) != 2 {
		t.Errorf("interests = %v, want deduplicated {a,b}", got)
	}
}

func TestMessageIDsUniqueAcrossNodes(t *testing.T) {
	clock := newMeshClock(time.Hour)
	a := startNode(t, 1, clock, nil)
	b := startNode(t, 2, clock, nil)
	seen := make(map[int]struct{})
	for i := 0; i < 5; i++ {
		for _, n := range []*Node{a, b} {
			id, err := n.Publish([]byte("x"), "k")
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := seen[id]; dup {
				t.Fatalf("duplicate message ID %d", id)
			}
			seen[id] = struct{}{}
		}
	}
}

// --- Wire-format unit tests ---------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHello, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameHello || string(body) != "abc" {
		t.Errorf("round trip: typ=%d body=%q", typ, body)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameBye, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(&buf)
	if err != nil || typ != frameBye || len(body) != 0 {
		t.Errorf("empty frame: typ=%d body=%v err=%v", typ, body, err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameMessage, make([]byte, maxFrameBytes+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write error = %v", err)
	}
	// An adversarial header announcing a huge frame must be rejected
	// before any body allocation, whatever its CRC field claims.
	buf.Reset()
	buf.Write([]byte{frameMessage, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	if _, _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read error = %v", err)
	}
}

func TestFrameCRCDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameMessage, []byte("fragile payload")); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Any single-byte corruption outside the length field must surface
	// as ErrCorruptFrame (length-field damage may also surface as a
	// size-limit or truncation error; those are covered elsewhere).
	for _, pos := range []int{0, 5, 6, 7, 8, frameHeaderLen, len(clean) - 1} {
		corrupt := append([]byte(nil), clean...)
		corrupt[pos] ^= 0x20
		if _, _, err := readFrame(bytes.NewReader(corrupt)); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("flip at byte %d: error = %v, want ErrCorruptFrame", pos, err)
		}
	}
	if _, body, err := readFrame(bytes.NewReader(clean)); err != nil || string(body) != "fragile payload" {
		t.Errorf("clean frame rejected: %q, %v", body, err)
	}
}

func TestHelloVersionMismatch(t *testing.T) {
	bad := hello{ID: 3}.encode()
	bad[0] = protoVersion + 1
	if _, err := decodeHello(bad); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("future-version hello error = %v, want ErrVersionMismatch", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	id := int(uint64(7)<<32 | 123)
	got, err := decodeAck(encodeAck(id))
	if err != nil || got != id {
		t.Errorf("ack round trip = %d, %v; want %d", got, err, id)
	}
	if _, err := decodeAck([]byte{1, 2, 3}); !errors.Is(err, ErrProtocol) {
		t.Errorf("short ack error = %v, want ErrProtocol", err)
	}
}

func TestExpectFrameMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHello, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := expectFrame(&buf, frameBye); !errors.Is(err, ErrProtocol) {
		t.Errorf("type mismatch error = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := hello{ID: 42, Broker: true, Degree: 7}
	out, err := decodeHello(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
	if _, err := decodeHello([]byte{1, 2}); !errors.Is(err, ErrProtocol) {
		t.Errorf("short hello error = %v", err)
	}
}

func TestMessageWireRoundTrip(t *testing.T) {
	msg := workload.Message{
		ID:        int(uint64(3)<<32 | 9),
		Key:       "primary",
		Extra:     []workload.Key{"tag-a", "tag-b"},
		Origin:    3,
		Size:      5,
		CreatedAt: 90 * time.Minute,
	}
	body, err := encodeMessage(msg, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, payload, err := decodeMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "hello" {
		t.Errorf("payload = %q", payload)
	}
	if !reflect.DeepEqual(got.MatchKeys(), msg.MatchKeys()) {
		t.Errorf("keys = %v, want %v", got.MatchKeys(), msg.MatchKeys())
	}
	if got.ID != msg.ID || got.Origin != msg.Origin || got.CreatedAt != msg.CreatedAt {
		t.Errorf("header fields: %+v vs %+v", got, msg)
	}
}

func TestDecodeMessageRejectsCorrupt(t *testing.T) {
	msg := workload.Message{ID: 1, Key: "k", Origin: 2, CreatedAt: time.Minute}
	body, err := encodeMessage(msg, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
	}{
		{name: "empty", data: nil},
		{name: "short", data: body[:10]},
		{name: "truncated keys", data: body[:22]},
		{name: "truncated payload", data: body[:len(body)-2]},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := decodeMessage(tt.data); !errors.Is(err, ErrProtocol) {
				t.Errorf("error = %v, want ErrProtocol", err)
			}
		})
	}
}

func TestConcurrentMeetingsDoNotDeadlock(t *testing.T) {
	// Nodes dialing each other simultaneously must never deadlock: a
	// responder at capacity answers BUSY and the dialer backs off and
	// retries, like a radio that is already occupied.
	clock := newMeshClock(time.Hour)
	var got sink
	mesh := make([]*Node, 6)
	for i := range mesh {
		mesh[i] = startNode(t, uint32(100+i), clock, &got)
		mesh[i].Subscribe("topic")
	}
	if _, err := mesh[0].Publish([]byte("fanout"), "topic"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for round := 0; round < 5; round++ {
		for i := range mesh {
			for j := range mesh {
				if i == j {
					continue
				}
				wg.Add(1)
				go func(a, b int) {
					defer wg.Done()
					// Errors (busy peers, refused sessions) are expected
					// under contention; panics and deadlocks are not.
					_ = mesh[a].Meet(mesh[b].Addr())
				}(i, j)
			}
		}
		wg.Wait()
		clock.advance(time.Minute)
	}
	// The storm may legitimately yield zero completed sessions (all
	// radios busy refusing each other); what it must never do is wedge
	// the mesh. Sequential meetings afterwards must still work and
	// deliver the message.
	for i := 1; i < len(mesh); i++ {
		if err := mesh[0].Meet(mesh[i].Addr()); err != nil {
			t.Fatalf("sequential meet after the storm failed: %v", err)
		}
		clock.advance(time.Minute)
	}
	if got.count() == 0 {
		t.Error("no deliveries even after sequential post-storm meetings")
	}
}

func TestCloseIsIdempotentAndStopsServing(t *testing.T) {
	clock := newMeshClock(time.Hour)
	n := startNode(t, 1, clock, nil)
	addr := n.Addr()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	other := startNode(t, 2, clock, nil)
	if err := other.Meet(addr); err == nil {
		t.Error("meeting a closed node succeeded")
	}
}

func TestCopyLimitOverTCP(t *testing.T) {
	// A producer replicating to many brokers must stop at CopyLimit
	// copies; afterwards the message is gone from its memory and further
	// brokers receive nothing.
	clock := newMeshClock(time.Hour)
	producer := startNode(t, 1, clock, nil)
	brokers := make([]*Node, 5)
	for i := range brokers {
		brokers[i] = startNode(t, uint32(10+i), clock, nil)
		brokers[i].Subscribe("elsewhere") // so relay filters match via interest
	}
	// Warm-up: node 10 walks the others. Mutual promotions resolve to the
	// higher-ID side (11, 12, 13 become brokers); at the fourth meeting
	// node 10 has seen T_l brokers, stops designating, and is itself
	// promoted by 14's unilateral verdict — four brokers total.
	for i := 1; i < len(brokers); i++ {
		if err := brokers[0].Meet(brokers[i].Addr()); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Minute)
	}
	// A helper consumer plants the "hot" interest in every broker's relay
	// filter (the helper meets only brokers, so it is never promoted).
	helper := startNode(t, 99, clock, nil)
	helper.Subscribe("hot")
	brokerCount := 0
	for _, b := range brokers {
		if !b.IsBroker() {
			continue
		}
		brokerCount++
		if err := helper.Meet(b.Addr()); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Minute)
	}
	if brokerCount < 4 {
		t.Fatalf("only %d brokers formed from pairwise warm-up", brokerCount)
	}
	if helper.IsBroker() {
		t.Fatal("helper was promoted despite meeting only brokers")
	}

	if _, err := producer.Publish([]byte("x"), "hot"); err != nil {
		t.Fatal(err)
	}
	for _, b := range brokers {
		if err := producer.Meet(b.Addr()); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Minute)
	}
	carried := 0
	for _, b := range brokers {
		carried += b.CarriedCount()
	}
	limit := core.DefaultConfig(0.01).CopyLimit
	if carried > limit {
		t.Errorf("%d carried copies exceed the copy limit %d", carried, limit)
	}
}

func TestListenAcceptsPartitionedRelay(t *testing.T) {
	// The engine supports partitioned relay filters everywhere, so the
	// live node does too (it used to reject them).
	cfg := core.DefaultConfig(0.1)
	cfg.RelayPartitions = 4
	n, err := Listen("127.0.0.1:0", Config{ID: 1, Protocol: cfg, TTL: time.Hour})
	if err != nil {
		t.Fatalf("partitioned relay filters rejected: %v", err)
	}
	_ = n.Close()
}

func TestDemotionOverTCP(t *testing.T) {
	// White-box: preload a user with more broker sightings than T_u, all
	// well-connected; when it meets a zero-degree broker, the election
	// must demote it over the wire.
	clock := newMeshClock(time.Hour)
	user := startNode(t, 1, clock, nil)
	weak := startNode(t, 2, clock, nil)

	weak.mu.Lock()
	weak.eng.Promote(clock.now())
	weak.mu.Unlock()

	user.mu.Lock()
	for i := 10; i < 17; i++ { // 7 sightings > T_u = 5
		user.eng.RecordBrokerSighting(i, 20, clock.now())
	}
	user.mu.Unlock()

	if err := user.Meet(weak.Addr()); err != nil {
		t.Fatal(err)
	}
	if weak.IsBroker() {
		t.Error("below-average broker not demoted over the wire")
	}
	if user.ID() != 1 || weak.ID() != 2 {
		t.Error("node IDs wrong")
	}
}

func TestProducerNeverDeliversToItself(t *testing.T) {
	// A producer subscribed to its own topic must not count a broker-
	// returned copy of its own message as a delivery.
	clock := newMeshClock(time.Hour)
	var got sink
	producer := startNode(t, 1, clock, &got)
	producer.Subscribe("loop")
	hub := startNode(t, 2, clock, nil)

	if _, err := producer.Publish([]byte("echo?"), "loop"); err != nil {
		t.Fatal(err)
	}
	// Repeated meetings: hub becomes a broker, picks up the producer's
	// interest AND a copy of the message, then serves the producer back.
	for i := 0; i < 4; i++ {
		if err := producer.Meet(hub.Addr()); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Minute)
	}
	if got.count() != 0 {
		t.Errorf("producer received its own message %d times", got.count())
	}
}
