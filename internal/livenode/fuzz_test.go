package livenode

import (
	"bytes"
	"testing"
	"time"

	"bsub/internal/workload"
)

// FuzzDecodeMessage hardens the message decoder against adversarial peers.
func FuzzDecodeMessage(f *testing.F) {
	seed, err := encodeMessage(workload.Message{
		ID:        77,
		Key:       "alpha",
		Extra:     []workload.Key{"beta"},
		Origin:    3,
		CreatedAt: time.Minute,
	}, []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 25))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, payload, err := decodeMessage(data)
		if err != nil {
			return
		}
		if len(msg.MatchKeys()) == 0 {
			t.Fatal("decoded message without keys")
		}
		if msg.Size != len(payload) {
			t.Fatalf("size %d != payload %d", msg.Size, len(payload))
		}
		// A successfully decoded message must re-encode.
		if _, err := encodeMessage(msg, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

// FuzzReadFrame hardens the CRC framing: adversarial bytes must never
// decode to an oversized body, a well-formed frame must round-trip, and
// a single corrupted byte must be rejected.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHello, []byte("body")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{frameMessage, 0, 0, 0, 5, 1, 2})
	f.Add(bytes.Repeat([]byte{0}, frameHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Adversarial decode must not panic and must bound the body.
		if typ, body, err := readFrame(bytes.NewReader(data)); err == nil {
			if len(body) > maxFrameBytes {
				t.Fatalf("frame type %d with oversized body %d", typ, len(body))
			}
			// A frame that decoded must re-encode to the bytes it was
			// decoded from (canonical framing).
			var re bytes.Buffer
			if err := writeFrame(&re, typ, body); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(re.Bytes(), data[:re.Len()]) {
				t.Fatal("decoded frame re-encodes differently")
			}
		}

		// Treat data as a frame body: it must round-trip...
		body := data
		if len(body) > maxFrameBytes {
			body = body[:maxFrameBytes]
		}
		var wire bytes.Buffer
		if err := writeFrame(&wire, frameMessage, body); err != nil {
			t.Fatalf("write: %v", err)
		}
		clean := append([]byte(nil), wire.Bytes()...)
		typ, got, err := readFrame(bytes.NewReader(clean))
		if err != nil || typ != frameMessage || !bytes.Equal(got, body) {
			t.Fatalf("round trip: typ=%d err=%v", typ, err)
		}
		// ...and corrupting one byte of the type, CRC, or body (never
		// the length field, whose damage may legitimately surface as a
		// size/truncation error instead) must be rejected.
		positions := []int{0, 5, 6, 7, 8}
		if len(body) > 0 {
			positions = append(positions, frameHeaderLen+int(uint(len(data))%uint(len(body))))
		}
		pos := positions[int(uint(len(data)))%len(positions)]
		clean[pos] ^= 1 << (uint(len(data)) % 8)
		if _, _, err := readFrame(bytes.NewReader(clean)); err == nil {
			t.Fatalf("corrupted byte %d accepted", pos)
		}
	})
}

// TestReadFrameTruncationTable: every strict prefix of a valid frame —
// the torn writes a severed contact produces — must fail cleanly, never
// panic or decode.
func TestReadFrameTruncationTable(t *testing.T) {
	for _, tt := range []struct {
		name string
		typ  byte
		body []byte
	}{
		{name: "empty body", typ: frameBye, body: nil},
		{name: "short body", typ: frameElection, body: []byte{electNone}},
		{name: "message body", typ: frameMessage, body: bytes.Repeat([]byte("x"), 64)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := writeFrame(&buf, tt.typ, tt.body); err != nil {
				t.Fatal(err)
			}
			full := buf.Bytes()
			for n := 0; n < len(full); n++ {
				typ, body, err := readFrame(bytes.NewReader(full[:n]))
				if err == nil {
					t.Fatalf("prefix of %d/%d bytes decoded: typ=%d body=%q",
						n, len(full), typ, body)
				}
			}
			if typ, body, err := readFrame(bytes.NewReader(full)); err != nil ||
				typ != tt.typ || !bytes.Equal(body, tt.body) {
				t.Fatalf("full frame: typ=%d err=%v", typ, err)
			}
		})
	}
}

// FuzzDecodeHello hardens the handshake decoder.
func FuzzDecodeHello(f *testing.F) {
	f.Add(hello{ID: 9, Broker: true, Degree: 4}.encode())
	f.Add([]byte{})
	// Non-canonical broker byte: must be rejected, not silently coerced.
	f.Add([]byte{protoVersion, 48, 48, 48, 48, 48, 48, 48})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err != nil {
			return
		}
		if got := h.encode(); !bytes.Equal(got, data) {
			t.Fatalf("hello round trip changed bytes: %v vs %v", got, data)
		}
	})
}
