package livenode

import (
	"bytes"
	"testing"
	"time"

	"bsub/internal/workload"
)

// FuzzDecodeMessage hardens the message decoder against adversarial peers.
func FuzzDecodeMessage(f *testing.F) {
	seed, err := encodeMessage(workload.Message{
		ID:        77,
		Key:       "alpha",
		Extra:     []workload.Key{"beta"},
		Origin:    3,
		CreatedAt: time.Minute,
	}, []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 25))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, payload, err := decodeMessage(data)
		if err != nil {
			return
		}
		if len(msg.MatchKeys()) == 0 {
			t.Fatal("decoded message without keys")
		}
		if msg.Size != len(payload) {
			t.Fatalf("size %d != payload %d", msg.Size, len(payload))
		}
		// A successfully decoded message must re-encode.
		if _, err := encodeMessage(msg, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}

// FuzzReadFrame hardens the frame reader.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameHello, []byte("body")); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{frameMessage, 0, 0, 0, 5, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(body) > maxFrameBytes {
			t.Fatalf("frame type %d with oversized body %d", typ, len(body))
		}
	})
}

// FuzzDecodeHello hardens the handshake decoder.
func FuzzDecodeHello(f *testing.F) {
	f.Add(hello{ID: 9, Broker: true, Degree: 4}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err != nil {
			return
		}
		if got := h.encode(); !bytes.Equal(got, data) {
			t.Fatalf("hello round trip changed bytes: %v vs %v", got, data)
		}
	})
}
